// Tenant hibernation/rehydration bit-identity: evicting a session to its
// compact checkpoint and rebuilding it later must not perturb the stream.
// Covered per model kind (scalar / distance / LDP / residual), per board backend
// (flat / treap), mid-stream at every round boundary, and across repeated
// hibernate-rehydrate cycles.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/generators.h"
#include "exp/schemes.h"
#include "fleet/session_fleet.h"
#include "fleet/tenant.h"
#include "game/public_board.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"
#include "ml/linreg.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

void ExpectRecordsBitIdentical(const std::vector<RoundRecord>& a,
                               const std::vector<RoundRecord>& b) {
  GameSummary sa;
  sa.rounds = a;
  GameSummary sb;
  sb.rounds = b;
  ExpectSummaryBitIdentical(sa, sb);
}

class HibernationTest : public ::testing::Test {
 protected:
  HibernationTest()
      : pool_(UniformPool(4000, 11)), data_(MakeControl(21, 80)),
        population_(UniformPool(3000, 31)), mechanism_(2.0),
        regression_(MakeSyntheticRegression(600, 3, 0.05, 47)) {}

  TenantSpec SpecFor(TenantModelKind model, BoardBackend backend) {
    TenantSpec spec;
    spec.name = TenantModelKindName(model) + "/" +
                std::string(BoardBackendName(backend));
    spec.model = model;
    spec.scheme = SchemeId::kElastic05;
    spec.game.round_size = 40;
    spec.game.bootstrap_size = 80;
    spec.game.attack_ratio = 0.15;
    spec.game.board_capacity = 2000;
    spec.game.board_backend = backend;
    switch (model) {
      case TenantModelKind::kScalar:
        spec.scalar_pool = &pool_;
        break;
      case TenantModelKind::kDistance:
        spec.dataset = &data_;
        break;
      case TenantModelKind::kLdp:
        spec.ldp_population = &population_;
        spec.ldp_mechanism = &mechanism_;
        attacks_.push_back(std::make_unique<InputManipulationAttack>(1.0));
        spec.ldp_attack = attacks_.back().get();
        break;
      case TenantModelKind::kResidual:
        // The fitted-model reference is the interesting hibernation case:
        // its scratch must be rebuilt from the checkpoint alone.
        spec.regression = &regression_;
        spec.reference = TenantReferenceKind::kFittedModel;
        break;
    }
    return spec;
  }

  // A fresh one-tenant fleet in per-tenant mode.
  SessionFleet MakeFleet(const TenantSpec& spec) {
    FleetConfig config;
    config.threads = 1;
    config.seed = 909;
    SessionFleet fleet(config, {spec});
    EXPECT_TRUE(fleet.Bootstrap().ok());
    EXPECT_TRUE(fleet.BeginPerTenantStepping().ok());
    return fleet;
  }

  std::vector<double> pool_;
  Dataset data_;
  std::vector<double> population_;
  PiecewiseMechanism mechanism_;
  std::vector<std::unique_ptr<LdpAttack>> attacks_;
  RegressionData regression_;
};

// The core contract, swept over every (model kind, board backend) cell:
// for every split point k in a 8-round stream, playing k rounds,
// hibernating, rehydrating and playing the rest equals the uninterrupted
// stream bit for bit.
TEST_F(HibernationTest, MidStreamHibernationIsBitIdenticalEverywhere) {
  const int kRounds = 8;
  const TenantModelKind kinds[] = {TenantModelKind::kScalar,
                                   TenantModelKind::kDistance,
                                   TenantModelKind::kLdp,
                                   TenantModelKind::kResidual};
  const BoardBackend backends[] = {BoardBackend::kFlat, BoardBackend::kTreap};
  for (TenantModelKind model : kinds) {
    for (BoardBackend backend : backends) {
      TenantSpec spec = SpecFor(model, backend);
      SCOPED_TRACE(spec.name);

      SessionFleet reference = MakeFleet(spec);
      for (int r = 0; r < kRounds; ++r) {
        ASSERT_TRUE(reference.StepTenant(0).ok());
      }
      std::vector<RoundRecord> expected =
          reference.TenantRounds(0).ValueOrDie();

      for (int split = 0; split <= kRounds; ++split) {
        SCOPED_TRACE("split after round " + std::to_string(split));
        SessionFleet fleet = MakeFleet(spec);
        for (int r = 0; r < split; ++r) {
          ASSERT_TRUE(fleet.StepTenant(0).ok());
        }
        ASSERT_TRUE(fleet.HibernateTenant(0).ok());
        EXPECT_FALSE(fleet.TenantResident(0));
        EXPECT_EQ(fleet.ResidentTenants(), 0u);
        // Parked tenants still answer for their history.
        ExpectRecordsBitIdentical(
            std::vector<RoundRecord>(expected.begin(),
                                     expected.begin() + split),
            fleet.TenantRounds(0).ValueOrDie());
        ASSERT_TRUE(fleet.RehydrateTenant(0).ok());
        EXPECT_TRUE(fleet.TenantResident(0));
        for (int r = split; r < kRounds; ++r) {
          ASSERT_TRUE(fleet.StepTenant(0).ok());
        }
        ExpectRecordsBitIdentical(expected, fleet.TenantRounds(0).ValueOrDie());
      }
    }
  }
}

// Repeated park/rebuild cycles — including several in a row with no round
// in between — accumulate no drift.
TEST_F(HibernationTest, RepeatedCyclesAccumulateNoDrift) {
  for (BoardBackend backend : {BoardBackend::kFlat, BoardBackend::kTreap}) {
    TenantSpec spec = SpecFor(TenantModelKind::kDistance, backend);
    SCOPED_TRACE(spec.name);
    SessionFleet reference = MakeFleet(spec);
    for (int r = 0; r < 6; ++r) ASSERT_TRUE(reference.StepTenant(0).ok());

    SessionFleet fleet = MakeFleet(spec);
    for (int r = 0; r < 6; ++r) {
      ASSERT_TRUE(fleet.HibernateTenant(0).ok());
      ASSERT_TRUE(fleet.RehydrateTenant(0).ok());
      ASSERT_TRUE(fleet.HibernateTenant(0).ok());
      ASSERT_TRUE(fleet.RehydrateTenant(0).ok());
      ASSERT_TRUE(fleet.StepTenant(0).ok());
    }
    ExpectRecordsBitIdentical(reference.TenantRounds(0).ValueOrDie(),
                              fleet.TenantRounds(0).ValueOrDie());
  }
}

// Finish() must account hibernated tenants from their parked checkpoints:
// a fleet finished while parked reports the same per-tenant books as one
// finished while resident.
TEST_F(HibernationTest, FinishAccountsParkedTenants) {
  TenantSpec spec = SpecFor(TenantModelKind::kScalar, BoardBackend::kFlat);
  SessionFleet resident = MakeFleet(spec);
  for (int r = 0; r < 5; ++r) ASSERT_TRUE(resident.StepTenant(0).ok());
  FleetSummary expected = resident.Finish();

  SessionFleet parked = MakeFleet(spec);
  for (int r = 0; r < 5; ++r) ASSERT_TRUE(parked.StepTenant(0).ok());
  ASSERT_TRUE(parked.HibernateTenant(0).ok());
  FleetSummary actual = parked.Finish();
  ASSERT_EQ(actual.tenants.size(), 1u);
  ExpectSummaryBitIdentical(expected.tenants[0], actual.tenants[0]);
  EXPECT_EQ(expected.total_received, actual.total_received);
  EXPECT_EQ(expected.total_kept, actual.total_kept);
}

// Mode and state guards: the per-tenant surface refuses outside
// per-tenant mode, double hibernation/rehydration is refused, and a
// hibernated tenant cannot step.
TEST_F(HibernationTest, GuardsRejectInvalidTransitions) {
  TenantSpec spec = SpecFor(TenantModelKind::kScalar, BoardBackend::kFlat);
  FleetConfig config;
  config.threads = 1;
  SessionFleet fleet(config, {spec});
  ASSERT_TRUE(fleet.Bootstrap().ok());

  // Lockstep mode: per-tenant calls are refused.
  EXPECT_EQ(fleet.StepTenant(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.HibernateTenant(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.RehydrateTenant(0).code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(fleet.BeginPerTenantStepping().ok());
  // Per-tenant mode: lockstep stepping is refused.
  EXPECT_EQ(fleet.StepRound().status().code(),
            StatusCode::kFailedPrecondition);

  EXPECT_EQ(fleet.StepTenant(7).status().code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(fleet.HibernateTenant(0).ok());
  EXPECT_EQ(fleet.HibernateTenant(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.StepTenant(0).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.RehydrateTenant(0).ok());
  EXPECT_EQ(fleet.RehydrateTenant(0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.StepTenant(0).ok());

  // Re-Bootstrap returns the fleet to lockstep mode.
  ASSERT_TRUE(fleet.Bootstrap().ok());
  EXPECT_FALSE(fleet.per_tenant_mode());
  EXPECT_TRUE(fleet.StepRound().ok());
}

}  // namespace
}  // namespace itrim
