// SessionFleet tests: thread-count determinism, fleet checkpoint/restore,
// heterogeneous-tenant aggregation against a sequential oracle loop, and
// per-field config rejection (FleetConfig and TenantSpec).
#include "fleet/session_fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "fleet/tenant.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

void ExpectQuantilesBitIdentical(const FleetQuantiles& a,
                                 const FleetQuantiles& b) {
  EXPECT_TRUE(BitEqual(a.p10, b.p10));
  EXPECT_TRUE(BitEqual(a.p50, b.p50));
  EXPECT_TRUE(BitEqual(a.p90, b.p90));
}

void ExpectFleetSummaryBitIdentical(const FleetSummary& a,
                                    const FleetSummary& b) {
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    SCOPED_TRACE("tenant " + std::to_string(i));
    ExpectSummaryBitIdentical(a.tenants[i], b.tenants[i]);
  }
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    SCOPED_TRACE("aggregate round " + std::to_string(i));
    EXPECT_EQ(a.rounds[i].round, b.rounds[i].round);
    EXPECT_EQ(a.rounds[i].tenants, b.rounds[i].tenants);
    EXPECT_EQ(a.rounds[i].benign_received, b.rounds[i].benign_received);
    EXPECT_EQ(a.rounds[i].poison_received, b.rounds[i].poison_received);
    EXPECT_EQ(a.rounds[i].benign_kept, b.rounds[i].benign_kept);
    EXPECT_EQ(a.rounds[i].poison_kept, b.rounds[i].poison_kept);
    EXPECT_TRUE(BitEqual(a.rounds[i].trim_rate, b.rounds[i].trim_rate));
    EXPECT_TRUE(BitEqual(a.rounds[i].poison_acceptance,
                         b.rounds[i].poison_acceptance));
    ExpectQuantilesBitIdentical(a.rounds[i].tenant_trim_rate,
                                b.rounds[i].tenant_trim_rate);
    ExpectQuantilesBitIdentical(a.rounds[i].tenant_poison_acceptance,
                                b.rounds[i].tenant_poison_acceptance);
    ExpectQuantilesBitIdentical(a.rounds[i].tenant_quality,
                                b.rounds[i].tenant_quality);
  }
  ExpectQuantilesBitIdentical(a.untrimmed_poison_fraction,
                              b.untrimmed_poison_fraction);
  ExpectQuantilesBitIdentical(a.benign_loss_fraction, b.benign_loss_fraction);
  ExpectQuantilesBitIdentical(a.poison_survival_rate, b.poison_survival_rate);
  EXPECT_EQ(a.total_received, b.total_received);
  EXPECT_EQ(a.total_kept, b.total_kept);
  EXPECT_EQ(a.total_poison_kept, b.total_poison_kept);
}

// Shared data sources + per-tenant LDP attacks for heterogeneous fleets.
// Sources are owned here and borrowed by the specs, like production code
// would hold them.
class SessionFleetTest : public ::testing::Test {
 protected:
  SessionFleetTest()
      : pool_(UniformPool(4000, 11)), data_(MakeControl(21, 80)),
        population_(UniformPool(3000, 31)), mechanism_(2.0) {}

  // A tenant population cycling through model kinds, schemes and attack
  // ratios: the heterogeneous mix of the issue.
  std::vector<TenantSpec> HeterogeneousSpecs(size_t count) {
    std::vector<SchemeId> schemes = AllSchemes();
    std::vector<TenantSpec> specs;
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      TenantSpec spec;
      spec.name = "tenant-" + std::to_string(i);
      spec.model = static_cast<TenantModelKind>(i % 3);
      spec.scheme = schemes[i % schemes.size()];
      spec.game.round_size = 40 + 10 * (i % 3);
      spec.game.bootstrap_size = 80;
      spec.game.attack_ratio = 0.1 + 0.05 * static_cast<double>(i % 4);
      spec.game.board_capacity = 2000;
      spec.game.round_mass_trimming = (i % 2) == 0;
      switch (spec.model) {
        case TenantModelKind::kScalar:
          spec.scalar_pool = &pool_;
          break;
        case TenantModelKind::kDistance:
          spec.dataset = &data_;
          break;
        case TenantModelKind::kLdp:
          spec.ldp_population = &population_;
          spec.ldp_mechanism = &mechanism_;
          attacks_.push_back(std::make_unique<InputManipulationAttack>(1.0));
          spec.ldp_attack = attacks_.back().get();
          break;
      }
      specs.push_back(spec);
    }
    return specs;
  }

  std::vector<double> pool_;
  Dataset data_;
  std::vector<double> population_;
  PiecewiseMechanism mechanism_;
  std::vector<std::unique_ptr<LdpAttack>> attacks_;
};

// --------------------------------------------------------------------------
// Determinism: 1 thread vs N threads, and vs shard-size choices
// --------------------------------------------------------------------------

TEST_F(SessionFleetTest, OneVsManyThreadsBitIdentical) {
  auto run = [&](int threads, int shard_size) {
    FleetConfig config;
    config.rounds = 6;
    config.threads = threads;
    config.shard_size = shard_size;
    config.seed = 77;
    SessionFleet fleet(config, HeterogeneousSpecs(24));
    return fleet.RunToCompletion().ValueOrDie();
  };
  FleetSummary serial = run(1, 0);
  FleetSummary parallel = run(4, 0);
  FleetSummary tiny_shards = run(3, 1);
  FleetSummary one_shard = run(4, 1000);
  ExpectFleetSummaryBitIdentical(serial, parallel);
  ExpectFleetSummaryBitIdentical(serial, tiny_shards);
  ExpectFleetSummaryBitIdentical(serial, one_shard);
}

// --------------------------------------------------------------------------
// Checkpoint / restore
// --------------------------------------------------------------------------

TEST_F(SessionFleetTest, CheckpointRestoreResumesBitIdentically) {
  FleetConfig config;
  config.rounds = 10;
  config.threads = 2;
  config.seed = 345;

  // Reference: uninterrupted run.
  SessionFleet reference(config, HeterogeneousSpecs(12));
  FleetSummary full = reference.RunToCompletion().ValueOrDie();

  // Interrupted run: 4 rounds, checkpoint mid-stream, restore into a
  // fresh fleet, 6 more rounds.
  SessionFleet first(config, HeterogeneousSpecs(12));
  ASSERT_TRUE(first.Bootstrap().ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(first.StepRound().ok());
  FleetCheckpoint checkpoint = first.Checkpoint();
  EXPECT_EQ(checkpoint.next_round, 5);
  ASSERT_EQ(checkpoint.sessions.size(), 12u);

  SessionFleet resumed(config, HeterogeneousSpecs(12));
  ASSERT_TRUE(resumed.Restore(checkpoint).ok());
  EXPECT_EQ(resumed.next_round(), 5);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(resumed.StepRound().ok());

  // Everything matches: per-tenant books, and the aggregates the restored
  // fleet rebuilt for rounds it never itself played.
  ExpectFleetSummaryBitIdentical(full, resumed.Finish());
}

// A checkpoint whose round counter disagrees with the per-session record
// counts (hand-edited, corrupted, or non-lockstep) must be rejected, not
// fed into the aggregate rebuild — and the rejection must leave the
// fleet's live state untouched (all-or-nothing Restore).
TEST_F(SessionFleetTest, RestoreRejectsInconsistentRoundCounts) {
  FleetConfig config;
  config.rounds = 4;
  SessionFleet fleet(config, HeterogeneousSpecs(3));
  ASSERT_TRUE(fleet.Bootstrap().ok());
  ASSERT_TRUE(fleet.StepRound().ok());
  ASSERT_TRUE(fleet.StepRound().ok());
  FleetCheckpoint checkpoint = fleet.Checkpoint();

  FleetCheckpoint inflated = checkpoint;
  inflated.next_round = 7;  // sessions only carry 2 round records
  EXPECT_EQ(fleet.Restore(inflated).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(fleet.bootstrapped());

  FleetCheckpoint negative = checkpoint;
  negative.next_round = 0;
  EXPECT_EQ(fleet.Restore(negative).code(), StatusCode::kInvalidArgument);

  // One session privately ahead of the lockstep counter is just as bad.
  FleetCheckpoint skewed = checkpoint;
  skewed.sessions[1].next_round = 9;
  EXPECT_EQ(fleet.Restore(skewed).code(), StatusCode::kInvalidArgument);

  // Record round indices that don't count 1..k betray a reordered or
  // hand-spliced record log.
  FleetCheckpoint shuffled = checkpoint;
  shuffled.sessions[0].records[0].round = 2;
  shuffled.sessions[0].records[1].round = 1;
  EXPECT_EQ(fleet.Restore(shuffled).code(), StatusCode::kInvalidArgument);

  // The untouched checkpoint still restores fine afterwards.
  ASSERT_TRUE(fleet.Restore(checkpoint).ok());
  EXPECT_TRUE(fleet.bootstrapped());
  EXPECT_EQ(fleet.next_round(), 3);
}

TEST_F(SessionFleetTest, RestoreRejectsTenantCountMismatch) {
  FleetConfig config;
  config.rounds = 3;
  SessionFleet fleet(config, HeterogeneousSpecs(4));
  ASSERT_TRUE(fleet.Bootstrap().ok());
  ASSERT_TRUE(fleet.StepRound().ok());
  FleetCheckpoint checkpoint = fleet.Checkpoint();
  checkpoint.sessions.pop_back();
  Status status = fleet.Restore(checkpoint);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // All-or-nothing: the rejected restore must not have torn down the
  // live fleet.
  EXPECT_TRUE(fleet.bootstrapped());
  EXPECT_EQ(fleet.next_round(), 2);
}

TEST_F(SessionFleetTest, RestoreRejectsOversizedBoardSnapshot) {
  FleetConfig config;
  config.rounds = 3;
  std::vector<TenantSpec> specs = HeterogeneousSpecs(3);
  for (TenantSpec& spec : specs) spec.game.board_capacity = 64;
  SessionFleet fleet(config, specs);
  ASSERT_TRUE(fleet.Bootstrap().ok());
  ASSERT_TRUE(fleet.StepRound().ok());
  FleetCheckpoint checkpoint = fleet.Checkpoint();

  FleetCheckpoint oversized = checkpoint;
  oversized.sessions[2].board.values.resize(
      65, oversized.sessions[2].board.values.empty()
              ? 0.0
              : oversized.sessions[2].board.values.back());
  oversized.sessions[2].board.total_recorded = 65;
  EXPECT_EQ(fleet.Restore(oversized).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(fleet.bootstrapped());

  // A board claiming fewer total recordings than values it holds is
  // internally inconsistent.
  FleetCheckpoint shrunk = checkpoint;
  shrunk.sessions[0].board.total_recorded = 0;
  if (!shrunk.sessions[0].board.values.empty()) {
    EXPECT_EQ(fleet.Restore(shrunk).code(), StatusCode::kInvalidArgument);
  }

  ASSERT_TRUE(fleet.Restore(checkpoint).ok());
}

// The regression the all-or-nothing contract exists for: a corrupted
// checkpoint thrown at a mid-stream fleet must bounce off — the fleet
// keeps stepping and finishes bit-identical to a never-interrupted run.
TEST_F(SessionFleetTest, RejectedRestoreLeavesFleetBitIdentical) {
  FleetConfig config;
  config.rounds = 6;
  SessionFleet reference(config, HeterogeneousSpecs(6));
  FleetSummary full = reference.RunToCompletion().ValueOrDie();

  SessionFleet fleet(config, HeterogeneousSpecs(6));
  ASSERT_TRUE(fleet.Bootstrap().ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(fleet.StepRound().ok());

  // Corrupt a copy of the fleet's own checkpoint three different ways and
  // throw each at the live fleet.
  FleetCheckpoint checkpoint = fleet.Checkpoint();
  FleetCheckpoint truncated = checkpoint;
  truncated.sessions.pop_back();
  EXPECT_FALSE(fleet.Restore(truncated).ok());
  FleetCheckpoint inflated = checkpoint;
  inflated.next_round = 99;
  EXPECT_FALSE(fleet.Restore(inflated).ok());
  FleetCheckpoint skewed = checkpoint;
  skewed.sessions[0].records.pop_back();
  EXPECT_FALSE(fleet.Restore(skewed).ok());

  // The fleet never noticed: remaining rounds play out bit-identically.
  EXPECT_TRUE(fleet.bootstrapped());
  EXPECT_EQ(fleet.next_round(), 4);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(fleet.StepRound().ok());
  ExpectFleetSummaryBitIdentical(full, fleet.Finish());
}

// --------------------------------------------------------------------------
// Heterogeneous aggregation vs a sequential oracle loop
// --------------------------------------------------------------------------

TEST_F(SessionFleetTest, MatchesSequentialOracleLoop) {
  const size_t kTenants = 9;
  const int kRounds = 5;
  FleetConfig config;
  config.rounds = kRounds;
  config.threads = 4;
  config.seed = 2024;

  std::vector<TenantSpec> specs = HeterogeneousSpecs(kTenants);
  SessionFleet fleet(config, specs);
  FleetSummary summary = fleet.RunToCompletion().ValueOrDie();

  // Oracle: materialize the same tenants with the same derived seeds and
  // run them one by one, entirely outside the fleet machinery.
  std::vector<TenantSpec> oracle_specs = HeterogeneousSpecs(kTenants);
  ASSERT_EQ(summary.tenants.size(), kTenants);
  size_t benign_received = 0, poison_received = 0;
  size_t benign_kept = 0, poison_kept = 0;
  for (size_t i = 0; i < kTenants; ++i) {
    SCOPED_TRACE("tenant " + std::to_string(i));
    Tenant tenant =
        MaterializeTenant(oracle_specs[i], DeriveTenantSeed(config.seed, i))
            .ValueOrDie();
    ASSERT_TRUE(tenant.session->Bootstrap().ok());
    for (int r = 0; r < kRounds; ++r) {
      ASSERT_TRUE(tenant.session->Step().ok());
    }
    GameSummary expected = tenant.session->Finish();
    ExpectSummaryBitIdentical(expected, summary.tenants[i]);
    benign_received += expected.TotalBenignReceived();
    poison_received += expected.TotalPoisonReceived();
    benign_kept += expected.TotalBenignKept();
    poison_kept += expected.TotalPoisonKept();
  }

  // Aggregates re-derived from the oracle runs.
  ASSERT_EQ(summary.rounds.size(), static_cast<size_t>(kRounds));
  size_t agg_benign_received = 0, agg_poison_received = 0;
  size_t agg_benign_kept = 0, agg_poison_kept = 0;
  for (const FleetRoundAggregate& round : summary.rounds) {
    EXPECT_EQ(round.tenants, kTenants);
    agg_benign_received += round.benign_received;
    agg_poison_received += round.poison_received;
    agg_benign_kept += round.benign_kept;
    agg_poison_kept += round.poison_kept;
    EXPECT_GE(round.trim_rate, 0.0);
    EXPECT_LE(round.trim_rate, 1.0);
    EXPECT_GE(round.poison_acceptance, 0.0);
    EXPECT_LE(round.poison_acceptance, 1.0);
    EXPECT_LE(round.tenant_trim_rate.p10, round.tenant_trim_rate.p90);
    EXPECT_LE(round.tenant_poison_acceptance.p10,
              round.tenant_poison_acceptance.p90);
  }
  EXPECT_EQ(agg_benign_received, benign_received);
  EXPECT_EQ(agg_poison_received, poison_received);
  EXPECT_EQ(agg_benign_kept, benign_kept);
  EXPECT_EQ(agg_poison_kept, poison_kept);
  EXPECT_EQ(summary.total_received, benign_received + poison_received);
  EXPECT_EQ(summary.total_kept, benign_kept + poison_kept);
  EXPECT_EQ(summary.total_poison_kept, poison_kept);
}

// Groundtruth tenants are the clean reference: no poison ever arrives.
TEST_F(SessionFleetTest, GroundtruthTenantRunsClean) {
  TenantSpec spec;
  spec.model = TenantModelKind::kScalar;
  spec.scheme = SchemeId::kGroundtruth;
  spec.scalar_pool = &pool_;
  spec.game.attack_ratio = 0.3;  // forced to 0 at materialization
  spec.game.round_size = 50;
  spec.game.bootstrap_size = 50;
  FleetConfig config;
  config.rounds = 4;
  SessionFleet fleet(config, {spec});
  FleetSummary summary = fleet.RunToCompletion().ValueOrDie();
  EXPECT_EQ(summary.tenants[0].TotalPoisonReceived(), 0u);
  EXPECT_EQ(summary.total_poison_kept, 0u);
}

// Fixed per-tenant seeds: two identical specs produce identical streams
// when derivation is off, distinct streams when it is on.
TEST_F(SessionFleetTest, SeedDerivationTogglesTenantIndependence) {
  TenantSpec spec;
  spec.model = TenantModelKind::kScalar;
  spec.scheme = SchemeId::kElastic05;
  spec.scalar_pool = &pool_;
  spec.game.round_size = 60;
  spec.game.bootstrap_size = 60;
  spec.game.seed = 99;

  FleetConfig verbatim;
  verbatim.rounds = 4;
  verbatim.derive_tenant_seeds = false;
  SessionFleet twins(verbatim, {spec, spec});
  FleetSummary twin_summary = twins.RunToCompletion().ValueOrDie();
  ExpectSummaryBitIdentical(twin_summary.tenants[0], twin_summary.tenants[1]);

  FleetConfig derived;
  derived.rounds = 4;
  SessionFleet cousins(derived, {spec, spec});
  FleetSummary cousin_summary = cousins.RunToCompletion().ValueOrDie();
  // Same config, different derived streams: the clean bootstrap samples
  // alone make the boards differ, so cutoffs diverge.
  bool any_difference = false;
  for (size_t r = 0; r < cousin_summary.tenants[0].rounds.size(); ++r) {
    if (!BitEqual(cousin_summary.tenants[0].rounds[r].cutoff,
                  cousin_summary.tenants[1].rounds[r].cutoff)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

// --------------------------------------------------------------------------
// Validation: fleet-level and per-tenant, one field at a time
// --------------------------------------------------------------------------

TEST_F(SessionFleetTest, StepBeforeBootstrapFails) {
  SessionFleet fleet(FleetConfig{}, HeterogeneousSpecs(2));
  EXPECT_EQ(fleet.StepRound().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SessionFleetTest, RejectsEachInvalidFleetConfigField) {
  auto expect_rejected = [&](FleetConfig config, const char* label) {
    EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument)
        << label;
    SessionFleet fleet(config, HeterogeneousSpecs(2));
    EXPECT_EQ(fleet.Bootstrap().code(), StatusCode::kInvalidArgument)
        << label;
    EXPECT_EQ(fleet.RunToCompletion().status().code(),
              StatusCode::kInvalidArgument)
        << label;
  };

  FleetConfig config;
  config.rounds = 0;
  expect_rejected(config, "rounds");
  config = FleetConfig{};
  config.threads = -1;
  expect_rejected(config, "threads");
  config = FleetConfig{};
  config.shard_size = -1;
  expect_rejected(config, "shard_size");

  EXPECT_TRUE(FleetConfig{}.Validate().ok());
}

TEST_F(SessionFleetTest, RejectsEmptyTenantList) {
  SessionFleet fleet(FleetConfig{}, {});
  EXPECT_EQ(fleet.Bootstrap().code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionFleetTest, RejectsEachInvalidTenantSpecField) {
  auto expect_rejected = [&](TenantSpec spec, const char* label) {
    EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidArgument) << label;
    FleetConfig config;
    config.rounds = 2;
    // The offending tenant rides second so the error must carry its index.
    SessionFleet fleet(config, {HeterogeneousSpecs(1)[0], spec});
    Status status = fleet.Bootstrap();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << label;
    EXPECT_NE(status.message().find("tenant #1"), std::string::npos)
        << label << ": " << status.message();
  };

  std::vector<double> empty_pool;
  TenantSpec spec;
  spec.model = TenantModelKind::kScalar;
  spec.scalar_pool = nullptr;
  expect_rejected(spec, "null scalar_pool");
  spec.scalar_pool = &empty_pool;
  expect_rejected(spec, "empty scalar_pool");

  spec = TenantSpec{};
  spec.model = TenantModelKind::kDistance;
  spec.dataset = nullptr;
  expect_rejected(spec, "null dataset");
  Dataset empty_data;
  spec.dataset = &empty_data;
  expect_rejected(spec, "empty dataset");

  spec = TenantSpec{};
  spec.model = TenantModelKind::kLdp;
  spec.ldp_mechanism = &mechanism_;
  attacks_.push_back(std::make_unique<InputManipulationAttack>(1.0));
  spec.ldp_attack = attacks_.back().get();
  spec.ldp_population = nullptr;
  expect_rejected(spec, "null ldp_population");
  spec.ldp_population = &population_;
  spec.ldp_mechanism = nullptr;
  expect_rejected(spec, "null ldp_mechanism");
  spec.ldp_mechanism = &mechanism_;
  spec.ldp_attack = nullptr;
  expect_rejected(spec, "null ldp_attack with poison");
  // ...but a poison-free LDP tenant does not need an attack.
  spec.game.attack_ratio = 0.0;
  EXPECT_TRUE(spec.Validate().ok());
  // ...and neither does a Groundtruth (clean reference) LDP tenant, whose
  // attack_ratio is forced to 0 at materialization.
  spec.game.attack_ratio = 0.2;
  spec.scheme = SchemeId::kGroundtruth;
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_TRUE(
      MaterializeTenant(spec, /*seed=*/5).ValueOrDie().session != nullptr);

  // Game-config fields are validated through the same path.
  spec = TenantSpec{};
  spec.model = TenantModelKind::kScalar;
  spec.scalar_pool = &pool_;
  spec.game.rounds = 0;
  expect_rejected(spec, "game.rounds");
  spec.game = GameConfig{};
  spec.game.round_size = 0;
  expect_rejected(spec, "game.round_size");
  spec.game = GameConfig{};
  spec.game.attack_ratio = -0.1;
  expect_rejected(spec, "game.attack_ratio");
  spec.game = GameConfig{};
  spec.game.tth = 1.0;
  expect_rejected(spec, "game.tth");
  spec.game = GameConfig{};
  spec.game.bootstrap_size = 0;
  expect_rejected(spec, "game.bootstrap_size");
}

}  // namespace
}  // namespace itrim
