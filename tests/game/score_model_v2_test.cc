// Differential tests of the ScoreModel v2 batched scoring surface.
//
// The v2 contract has two halves, both asserted here at the bit level:
//
//   1. ScoreInto (the batched kernel path) equals ScoreIntoScalar (the
//      retained per-observation reference) for every model kind, batch
//      size and dispatch variant — the batch is an optimization, never a
//      semantic change.
//   2. A full game stream produces bit-identical GameSummarys whether the
//      kernels dispatch to the generic or the auto-vectorized build,
//      across every scheme and data setting.
//
// Plus the span plumbing around them: mismatched spans are rejected with
// InvalidArgument, external AppendBenignBatch ingest scores like the
// simulation path, and scores()/is_poison() stay parallel views.
#include "game/score_model.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "game/kernels.h"
#include "game/public_board.h"
#include "game/session.h"
#include "game/strategies.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"
#include "ldp/report_score_model.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

using kernels::Variant;

struct VariantGuard {
  ~VariantGuard() { kernels::ResetVariant(); }
};

const size_t kBatchSizes[] = {0, 1, 2, 3, 4, 5, 17, 64, 257};

// Bootstraps a distance model over an unlabeled control-chart sample so the
// percentile geometry exists before scoring.
class DistanceModelFixture {
 public:
  DistanceModelFixture() : data_(MakeControl(35, 40)), model_(&data_) {
    data_.labels.clear();  // external ingest needs an unlabeled source
    Rng rng(71);
    EXPECT_TRUE(model_.BeginRun().ok());
    EXPECT_TRUE(model_.Bootstrap(120, &rng, &board_).ok());
  }

  Dataset data_;
  DistanceScoreModel model_;
  PublicBoard board_;
};

// Flattens `count` source rows (sampled with replacement) into one span.
std::vector<double> FlatRows(const Dataset& data, size_t count, Rng* rng) {
  std::vector<double> flat;
  flat.reserve(count * data.dims());
  for (size_t i = 0; i < count; ++i) {
    const auto& row = data.rows[rng->UniformInt(data.rows.size())];
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

void ExpectBatchEqualsScalar(const ScoreModel& model,
                             std::span<const double> obs, size_t count) {
  std::vector<double> batch(count, -1.0), scalar(count, -2.0);
  ASSERT_TRUE(model.ScoreInto(obs, batch).ok());
  ASSERT_TRUE(model.ScoreIntoScalar(obs, scalar).ok());
  for (size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(BitEqual(batch[i], scalar[i])) << "i=" << i;
  }
}

TEST(ScoreIntoDifferentialTest, IdentityBatchEqualsScalarReference) {
  std::vector<double> pool = UniformPool(500, 3);
  IdentityScoreModel model(&pool);
  ASSERT_TRUE(model.BeginRun().ok());
  Rng rng(5);
  for (size_t n : kBatchSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<double> obs(n);
    for (double& v : obs) v = rng.Uniform(-5.0, 5.0);
    ExpectBatchEqualsScalar(model, obs, n);
  }
}

TEST(ScoreIntoDifferentialTest, LdpBatchEqualsScalarReference) {
  std::vector<double> population = UniformPool(500, 7);
  PiecewiseMechanism mechanism(2.0);
  InputManipulationAttack attack(1.0);
  LdpReportScoreModel model(&population, &mechanism, &attack, 0.9);
  Rng rng(9);
  for (size_t n : kBatchSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<double> obs(n);
    for (double& v : obs) v = rng.Uniform(-3.0, 3.0);
    ExpectBatchEqualsScalar(model, obs, n);
  }
}

TEST(ScoreIntoDifferentialTest, DistanceBatchEqualsScalarReference) {
  DistanceModelFixture fx;
  Rng rng(11);
  for (size_t n : kBatchSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<double> obs = FlatRows(fx.data_, n, &rng);
    ExpectBatchEqualsScalar(fx.model_, obs, n);
  }
}

TEST(ScoreIntoDifferentialTest, DistanceBatchEqualsScalarUnderBothVariants) {
  if (!kernels::VectorAvailable()) {
    GTEST_SKIP() << "no AVX2: single-variant machine";
  }
  VariantGuard guard;
  DistanceModelFixture fx;
  Rng rng(13);
  const size_t n = 129;
  std::vector<double> obs = FlatRows(fx.data_, n, &rng);
  std::vector<double> generic(n), vector(n), scalar(n);
  kernels::ForceVariant(Variant::kGeneric);
  ASSERT_TRUE(fx.model_.ScoreInto(obs, generic).ok());
  ASSERT_TRUE(fx.model_.ScoreIntoScalar(obs, scalar).ok());
  kernels::ForceVariant(Variant::kVector);
  ASSERT_TRUE(fx.model_.ScoreInto(obs, vector).ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(BitEqual(generic[i], vector[i])) << "i=" << i;
    EXPECT_TRUE(BitEqual(generic[i], scalar[i])) << "i=" << i;
  }
}

TEST(ScoreIntoSpanCheckTest, MismatchedSpansAreInvalidArgument) {
  std::vector<double> pool = UniformPool(100, 17);
  IdentityScoreModel model(&pool);
  std::vector<double> obs(10), out(9);
  EXPECT_EQ(model.ScoreInto(obs, out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model.ScoreIntoScalar(obs, out).code(),
            StatusCode::kInvalidArgument);

  DistanceModelFixture fx;
  const size_t dims = fx.data_.dims();
  ASSERT_GT(dims, 1u);
  // One double short of a whole number of rows.
  std::vector<double> rows(5 * dims - 1), scores(5);
  EXPECT_EQ(fx.model_.ScoreInto(rows, scores).code(),
            StatusCode::kInvalidArgument);
}

TEST(ExternalIngestTest, IdentityIngestAppendsVerbatim) {
  std::vector<double> pool = UniformPool(100, 19);
  IdentityScoreModel model(&pool);
  ASSERT_TRUE(model.BeginRun().ok());
  model.BeginRound(4);
  const std::vector<double> obs = {0.25, -1.5, 3.75, 0.0};
  ASSERT_TRUE(model.AppendBenignBatch(obs).ok());
  std::span<const double> scores = model.scores();
  std::span<const char> poison = model.is_poison();
  ASSERT_EQ(scores.size(), obs.size());
  ASSERT_EQ(poison.size(), obs.size());
  for (size_t i = 0; i < obs.size(); ++i) {
    EXPECT_TRUE(BitEqual(scores[i], obs[i]));
    EXPECT_EQ(poison[i], 0);
  }
}

TEST(ExternalIngestTest, DistanceIngestScoresLikeScalarPath) {
  DistanceModelFixture fx;
  Rng rng(23);
  const size_t n = 37;
  std::vector<double> obs = FlatRows(fx.data_, n, &rng);
  fx.model_.BeginRound(n);
  ASSERT_TRUE(fx.model_.AppendBenignBatch(obs).ok());
  std::span<const double> scores = fx.model_.scores();
  ASSERT_EQ(scores.size(), n);
  const size_t dims = fx.data_.dims();
  for (size_t i = 0; i < n; ++i) {
    double expect = 0.0;
    ASSERT_TRUE(fx.model_
                    .ScoreIntoScalar(
                        std::span<const double>(obs).subspan(i * dims, dims),
                        std::span<double>(&expect, 1))
                    .ok());
    EXPECT_TRUE(BitEqual(scores[i], expect)) << "i=" << i;
  }
}

TEST(ExternalIngestTest, DistanceIngestRejectsLabeledAndUnbootstrapped) {
  Dataset labeled = MakeControl(41, 30);
  ASSERT_TRUE(labeled.labeled());
  DistanceScoreModel model(&labeled);
  std::vector<double> obs(labeled.dims(), 0.0);
  // Not bootstrapped yet: no geometry to score against.
  EXPECT_EQ(model.AppendBenignBatch(obs).code(),
            StatusCode::kFailedPrecondition);
  Rng rng(43);
  PublicBoard board;
  ASSERT_TRUE(model.BeginRun().ok());
  ASSERT_TRUE(model.Bootstrap(60, &rng, &board).ok());
  // Bootstrapped but labeled: external rows carry no labels.
  EXPECT_EQ(model.AppendBenignBatch(obs).code(),
            StatusCode::kFailedPrecondition);
  // Partial rows are rejected outright.
  Dataset unlabeled = labeled;
  unlabeled.labels.clear();
  DistanceScoreModel umodel(&unlabeled);
  ASSERT_TRUE(umodel.BeginRun().ok());
  PublicBoard uboard;
  ASSERT_TRUE(umodel.Bootstrap(60, &rng, &uboard).ok());
  std::vector<double> partial(unlabeled.dims() + 1, 0.0);
  EXPECT_EQ(umodel.AppendBenignBatch(partial).code(),
            StatusCode::kInvalidArgument);
}

// The headline end-to-end gate: a full game stream is bit-identical under
// both kernel builds, across every scheme and all three data settings.
class VariantStreamEquivalenceTest
    : public ::testing::TestWithParam<SchemeId> {};

TEST_P(VariantStreamEquivalenceTest, ScalarAndDistanceStreamsBitIdentical) {
  if (!kernels::VectorAvailable()) {
    GTEST_SKIP() << "no AVX2: single-variant machine";
  }
  VariantGuard guard;
  std::vector<double> pool = UniformPool(2000, 29);
  Dataset data = MakeControl(31, 50);
  GameConfig config;
  config.rounds = 6;
  config.round_size = 80;
  config.attack_ratio = 0.2;
  config.bootstrap_size = 100;
  config.seed = 12345;

  for (bool distance : {false, true}) {
    SCOPED_TRACE(distance ? "distance" : "scalar");
    GameSummary per_variant[2];
    for (Variant variant : {Variant::kGeneric, Variant::kVector}) {
      kernels::ForceVariant(variant);
      SchemeInstance scheme = MakeScheme(GetParam(), config.tth);
      GameSummary summary;
      if (distance) {
        DistanceScoreModel model(&data);
        TrimmingSession session(config, &model, scheme.collector.get(),
                                scheme.adversary.get(), scheme.quality.get());
        summary = session.RunToCompletion().ValueOrDie();
      } else {
        IdentityScoreModel model(&pool);
        TrimmingSession session(config, &model, scheme.collector.get(),
                                scheme.adversary.get(), scheme.quality.get());
        summary = session.RunToCompletion().ValueOrDie();
      }
      per_variant[variant == Variant::kVector ? 1 : 0] = summary;
    }
    ExpectSummaryBitIdentical(per_variant[0], per_variant[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, VariantStreamEquivalenceTest,
                         ::testing::ValuesIn(AllSchemes()),
                         [](const auto& info) {
                           // Scheme names carry '.'/'-'; gtest parameter
                           // names must be alphanumeric.
                           std::string name(SchemeName(info.param));
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(
                                 static_cast<unsigned char>(c));
                           });
                           return name;
                         });

TEST(VariantStreamEquivalenceLdpTest, LdpStreamBitIdentical) {
  if (!kernels::VectorAvailable()) {
    GTEST_SKIP() << "no AVX2: single-variant machine";
  }
  VariantGuard guard;
  std::vector<double> population = UniformPool(1500, 37);
  for (double& v : population) v = 2.0 * v - 1.0;
  PiecewiseMechanism mechanism(2.0);
  GameConfig config;
  config.rounds = 6;
  config.round_size = 80;
  config.attack_ratio = 0.15;
  config.bootstrap_size = 100;
  config.seed = 777;

  GameSummary per_variant[2];
  for (Variant variant : {Variant::kGeneric, Variant::kVector}) {
    kernels::ForceVariant(variant);
    InputManipulationAttack attack(1.0);
    LdpReportScoreModel model(&population, &mechanism, &attack, config.tth);
    ElasticCollector collector(0.5);
    TrimmingSession session(config, &model, &collector, nullptr, nullptr);
    per_variant[variant == Variant::kVector ? 1 : 0] =
        session.RunToCompletion().ValueOrDie();
  }
  ExpectSummaryBitIdentical(per_variant[0], per_variant[1]);
}

// The engine's batched no-adversary poison path (AppendPoisonBatch) must be
// a pure dispatch-count optimization: records bit-identical to the default
// per-observation loop, which a wrapper model pins here.
class LoopingPoisonLdpModel : public LdpReportScoreModel {
 public:
  using LdpReportScoreModel::LdpReportScoreModel;
  Status AppendPoisonBatch(std::span<const double> positions, Rng* rng,
                           const PublicBoard& board) override {
    // Deliberately the base-class default loop, not the batched override.
    return ScoreModel::AppendPoisonBatch(positions, rng, board);
  }
};

TEST(PoisonBatchEquivalenceTest, BatchedPoisonMatchesPerObservationLoop) {
  std::vector<double> population = UniformPool(1500, 41);
  for (double& v : population) v = 2.0 * v - 1.0;
  PiecewiseMechanism mechanism(2.0);
  GameConfig config;
  config.rounds = 5;
  config.round_size = 60;
  config.attack_ratio = 0.25;
  config.bootstrap_size = 80;
  config.seed = 999;

  GameSummary batched, looped;
  {
    InputManipulationAttack attack(1.0);
    LdpReportScoreModel model(&population, &mechanism, &attack, config.tth);
    ElasticCollector collector(0.5);
    TrimmingSession session(config, &model, &collector, nullptr, nullptr);
    batched = session.RunToCompletion().ValueOrDie();
  }
  {
    InputManipulationAttack attack(1.0);
    LoopingPoisonLdpModel model(&population, &mechanism, &attack, config.tth);
    ElasticCollector collector(0.5);
    TrimmingSession session(config, &model, &collector, nullptr, nullptr);
    looped = session.RunToCompletion().ValueOrDie();
  }
  ExpectSummaryBitIdentical(batched, looped);
}

}  // namespace
}  // namespace itrim
