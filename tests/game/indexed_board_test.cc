#include "game/indexed_board.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "game/public_board.h"
#include "stats/quantile.h"

namespace itrim {
namespace {

TEST(IndexedBoardTest, EmptyBoard) {
  IndexedBoard board;
  EXPECT_EQ(board.size(), 0u);
  EXPECT_FALSE(board.Quantile(0.5).ok());
  EXPECT_DOUBLE_EQ(board.PercentileRank(1.0), 0.0);
  EXPECT_FALSE(board.EraseOne(1.0));
}

TEST(IndexedBoardTest, KthTracksSortedOrder) {
  IndexedBoard board;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) board.Insert(v);
  ASSERT_EQ(board.size(), 5u);
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(board.Kth(k), static_cast<double>(k + 1));
  }
}

TEST(IndexedBoardTest, DuplicatesCountedIndividually) {
  IndexedBoard board;
  for (double v : {2.0, 2.0, 2.0, 1.0}) board.Insert(v);
  EXPECT_EQ(board.size(), 4u);
  EXPECT_EQ(board.CountLessEqual(2.0), 4u);
  EXPECT_EQ(board.CountLessEqual(1.5), 1u);
  EXPECT_TRUE(board.EraseOne(2.0));
  EXPECT_EQ(board.size(), 3u);
  EXPECT_EQ(board.CountLessEqual(2.0), 3u);
  EXPECT_TRUE(board.EraseOne(2.0));
  EXPECT_TRUE(board.EraseOne(2.0));
  EXPECT_FALSE(board.EraseOne(2.0));
  EXPECT_EQ(board.size(), 1u);
  EXPECT_DOUBLE_EQ(board.Kth(0), 1.0);
}

TEST(IndexedBoardTest, QuantileMatchesSortedOracleExactly) {
  IndexedBoard board;
  std::vector<double> values;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    double v = rng.Uniform(-3.0, 3.0);
    board.Insert(v);
    values.push_back(v);
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.001, 0.1, 0.25, 0.5, 0.9, 0.95, 0.999, 1.0}) {
    EXPECT_EQ(board.Quantile(q).ValueOrDie(), QuantileSorted(sorted, q))
        << "q=" << q;
  }
  for (int i = 0; i < 50; ++i) {
    double x = rng.Uniform(-4.0, 4.0);
    EXPECT_EQ(board.PercentileRank(x), PercentileRankSorted(sorted, x))
        << "x=" << x;
  }
}

TEST(IndexedBoardTest, NanProbeMatchesUpperBoundSemantics) {
  IndexedBoard board;
  for (double v : {1.0, 2.0, 3.0}) board.Insert(v);
  // std::upper_bound(sorted, NaN) returns end() (count = n): every
  // comparison NaN < v is false.
  EXPECT_DOUBLE_EQ(board.PercentileRank(std::nan("")), 1.0);
}

// ---------------------------------------------------------------------------
// Randomized property sweep: the indexed structure against a plain multiset
// oracle under interleaved insert / erase / clear.
// ---------------------------------------------------------------------------

TEST(IndexedBoardTest, PropertyAgainstMultisetOracle) {
  IndexedBoard board;
  std::vector<double> oracle;  // unsorted mirror
  Rng rng(99);
  for (int op = 0; op < 6000; ++op) {
    double roll = rng.Uniform();
    if (roll < 0.55 || oracle.empty()) {
      double v = rng.Uniform(-10.0, 10.0);
      if (rng.Bernoulli(0.25)) v = std::round(v);  // force duplicates
      board.Insert(v);
      oracle.push_back(v);
    } else if (roll < 0.75) {
      size_t idx = static_cast<size_t>(rng.UniformInt(oracle.size()));
      double v = oracle[idx];
      EXPECT_TRUE(board.EraseOne(v));
      oracle[idx] = oracle.back();
      oracle.pop_back();
    } else if (roll < 0.995) {
      ASSERT_EQ(board.size(), oracle.size());
      std::vector<double> sorted = oracle;
      std::sort(sorted.begin(), sorted.end());
      size_t k = static_cast<size_t>(rng.UniformInt(sorted.size()));
      EXPECT_EQ(board.Kth(k), sorted[k]);
      double q = rng.Uniform();
      EXPECT_EQ(board.Quantile(q).ValueOrDie(), QuantileSorted(sorted, q));
      double x = rng.Uniform(-11.0, 11.0);
      EXPECT_EQ(board.PercentileRank(x), PercentileRankSorted(sorted, x));
    } else {
      board.Clear();
      oracle.clear();
    }
  }
}

// ---------------------------------------------------------------------------
// PublicBoard end-to-end: the indexed backend against the seed
// sort-per-invalidation semantics, including the reservoir-capacity
// (downsample) path where records *replace* existing slots.
// ---------------------------------------------------------------------------

// The seed board's query semantics: sort the slot array, apply the oracle.
double OracleQuantile(const PublicBoard& board, double q) {
  std::vector<double> sorted = board.values();
  std::sort(sorted.begin(), sorted.end());
  return QuantileSorted(sorted, q);
}

double OracleRank(const PublicBoard& board, double x) {
  std::vector<double> sorted = board.values();
  std::sort(sorted.begin(), sorted.end());
  return PercentileRankSorted(sorted, x);
}

// Free-list pool stress: Reserve() then long erase/insert churn at a fixed
// multiset size, the steady state of a capacity-bounded reservoir. Every
// erase feeds the node pool the next insert must drain, so any free-list
// corruption (stale links, double reuse, count drift) surfaces as a
// divergence from the sorted oracle replayed alongside.
TEST(IndexedBoardTest, PooledChurnMatchesSortedOracleBitForBit) {
  IndexedBoard board;
  board.Reserve(256);
  std::vector<double> oracle;
  Rng rng(9001);
  for (int i = 0; i < 256; ++i) {
    double v = rng.Uniform(-3.0, 3.0);
    if (rng.Bernoulli(0.25)) v = std::round(v);  // duplicate pressure
    board.Insert(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  for (int cycle = 0; cycle < 4000; ++cycle) {
    // Erase one existing value (by rank, so duplicates are hit too)...
    size_t victim_rank = static_cast<size_t>(rng.UniformInt(oracle.size()));
    double victim = oracle[static_cast<size_t>(victim_rank)];
    ASSERT_TRUE(board.EraseOne(victim));
    oracle.erase(oracle.begin() + static_cast<long>(victim_rank));
    // ...then insert a fresh one through the recycled node.
    double v = rng.Uniform(-3.0, 3.0);
    if (rng.Bernoulli(0.25)) v = std::round(v);
    board.Insert(v);
    oracle.insert(std::upper_bound(oracle.begin(), oracle.end(), v), v);

    ASSERT_EQ(board.size(), oracle.size());
    if (cycle % 7 == 0) {
      size_t k = static_cast<size_t>(rng.UniformInt(oracle.size()));
      ASSERT_EQ(board.Kth(k), oracle[k]) << "cycle " << cycle;
      double q = rng.Uniform();
      ASSERT_EQ(board.Quantile(q).ValueOrDie(), QuantileSorted(oracle, q))
          << "cycle " << cycle;
      double x = rng.Uniform(-3.5, 3.5);
      ASSERT_EQ(board.PercentileRank(x), PercentileRankSorted(oracle, x))
          << "cycle " << cycle;
    }
  }
}

// Clear() must reset the pool cleanly: a reused board is indistinguishable
// from a fresh one under the same op stream.
TEST(IndexedBoardTest, ClearResetsPoolForBitIdenticalReuse) {
  IndexedBoard reused;
  Rng fill(31337);
  for (int i = 0; i < 500; ++i) reused.Insert(fill.Uniform());
  reused.Clear();
  EXPECT_EQ(reused.size(), 0u);

  IndexedBoard fresh;
  Rng a(555), b(555);
  for (int i = 0; i < 300; ++i) {
    double va = a.Uniform(-1.0, 1.0);
    double vb = b.Uniform(-1.0, 1.0);
    reused.Insert(va);
    fresh.Insert(vb);
  }
  ASSERT_EQ(reused.size(), fresh.size());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_EQ(reused.Quantile(q).ValueOrDie(),
              fresh.Quantile(q).ValueOrDie());
  }
}

class PublicBoardOracleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PublicBoardOracleTest, InterleavedStreamMatchesSortedOracle) {
  const size_t capacity = GetParam();
  PublicBoard board(capacity, /*seed=*/5);
  Rng rng(2718);
  for (int op = 0; op < 8000; ++op) {
    double roll = rng.Uniform();
    if (roll < 0.7 || board.size() == 0) {
      board.RecordOne(rng.Uniform(-2.0, 2.0));
    } else if (roll < 0.997) {
      double q = rng.Uniform();
      EXPECT_EQ(board.Quantile(q).ValueOrDie(), OracleQuantile(board, q));
      double x = rng.Uniform(-2.5, 2.5);
      EXPECT_EQ(board.PercentileRank(x), OracleRank(board, x));
    } else {
      board.Clear();
      EXPECT_EQ(board.size(), 0u);
      EXPECT_FALSE(board.Quantile(0.5).ok());
    }
    if (capacity > 0) {
      EXPECT_LE(board.size(), capacity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, PublicBoardOracleTest,
                         ::testing::Values(0u, 100u, 1000u));

TEST(PublicBoardSnapshotTest, SaveRestoreRoundTrips) {
  PublicBoard board(50, /*seed=*/8);
  Rng rng(12);
  for (int i = 0; i < 500; ++i) board.RecordOne(rng.Uniform());
  PublicBoard::Snapshot snapshot = board.Save();

  // Continue both the original and a restored copy with the same stream;
  // they must stay bit-identical (values, reservoir decisions, queries).
  // Snapshots restore into a board of the same configured capacity.
  PublicBoard restored(50, /*seed=*/0);
  ASSERT_TRUE(restored.Restore(snapshot).ok());
  EXPECT_EQ(restored.size(), board.size());
  EXPECT_EQ(restored.total_recorded(), board.total_recorded());
  Rng follow_a(77), follow_b(77);
  for (int i = 0; i < 300; ++i) {
    board.RecordOne(follow_a.Uniform());
    restored.RecordOne(follow_b.Uniform());
  }
  EXPECT_EQ(board.values(), restored.values());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(board.Quantile(q).ValueOrDie(),
              restored.Quantile(q).ValueOrDie());
  }
}

}  // namespace
}  // namespace itrim
