#include "game/collection_game.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"

namespace itrim {
namespace {

std::vector<double> UniformPool(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pool;
  for (size_t i = 0; i < n; ++i) pool.push_back(rng.Uniform());
  return pool;
}

GameConfig SmallConfig() {
  GameConfig c;
  c.rounds = 10;
  c.round_size = 200;
  c.attack_ratio = 0.2;
  c.tth = 0.9;
  c.bootstrap_size = 500;
  c.seed = 12;
  return c;
}

TEST(GameConfigTest, Validation) {
  GameConfig c = SmallConfig();
  EXPECT_TRUE(c.Validate().ok());
  c.rounds = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.round_size = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.attack_ratio = -0.1;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.tth = 1.0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.bootstrap_size = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(ScalarGameTest, OstrichKeepsEverything) {
  auto pool = UniformPool(2000, 1);
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.99);
  ScalarCollectionGame game(SmallConfig(), &pool, &collector, &adversary,
                            nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  ASSERT_EQ(summary.rounds.size(), 10u);
  for (const auto& r : summary.rounds) {
    EXPECT_EQ(r.benign_kept, r.benign_received);
    EXPECT_EQ(r.poison_kept, r.poison_received);
    EXPECT_EQ(r.poison_received, 40u);  // 0.2 * 200
  }
  EXPECT_DOUBLE_EQ(summary.BenignLossFraction(), 0.0);
  EXPECT_DOUBLE_EQ(summary.PoisonSurvivalRate(), 1.0);
  EXPECT_NEAR(summary.UntrimmedPoisonFraction(), 0.2 / 1.2, 1e-9);
}

TEST(ScalarGameTest, StaticThresholdBlocksHighPoison) {
  auto pool = UniformPool(2000, 2);
  StaticCollector collector(0.9, "static");
  FixedPercentileAdversary adversary(0.99);  // always above the cutoff
  ScalarCollectionGame game(SmallConfig(), &pool, &collector, &adversary,
                            nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_DOUBLE_EQ(summary.PoisonSurvivalRate(), 0.0);
  // Static trimming pays ~10% benign loss every round.
  EXPECT_NEAR(summary.BenignLossFraction(), 0.1, 0.03);
}

TEST(ScalarGameTest, PoisonJustBelowThresholdEvades) {
  auto pool = UniformPool(2000, 3);
  StaticCollector collector(0.9, "static");
  ThresholdOffsetAdversary adversary(-0.01);  // the ideal attack
  ScalarCollectionGame game(SmallConfig(), &pool, &collector, &adversary,
                            nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_GT(summary.PoisonSurvivalRate(), 0.95);
}

TEST(ScalarGameTest, PoisonValueMatchesBoardQuantile) {
  auto pool = UniformPool(5000, 4);
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.95);
  GameConfig config = SmallConfig();
  config.rounds = 1;
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  // With a uniform pool, the 95th-percentile poison value is ~0.95; every
  // retained poison flag should sit near it.
  const auto& retained = game.retained();
  const auto& is_poison = game.retained_is_poison();
  for (size_t i = 0; i < retained.size(); ++i) {
    if (is_poison[i]) {
      EXPECT_NEAR(retained[i], 0.95, 0.05);
    }
  }
  EXPECT_EQ(summary.rounds[0].poison_received, 40u);
}

TEST(ScalarGameTest, DeterministicInSeed) {
  auto pool = UniformPool(2000, 5);
  auto run = [&pool](uint64_t seed) {
    StaticCollector collector(0.9, "static");
    UniformRangeAdversary adversary(0.85, 1.0);  // some poison survives
    GameConfig config = SmallConfig();
    config.seed = seed;
    ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
    return game.Run().ValueOrDie().UntrimmedPoisonFraction();
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(ScalarGameTest, EmptyPoolFails) {
  std::vector<double> pool;
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.9);
  ScalarCollectionGame game(SmallConfig(), &pool, &collector, &adversary,
                            nullptr);
  EXPECT_FALSE(game.Run().ok());
}

TEST(ScalarGameTest, ZeroAttackRatioMeansNoPoison) {
  auto pool = UniformPool(1000, 6);
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.99);
  GameConfig config = SmallConfig();
  config.attack_ratio = 0.0;
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_EQ(summary.TotalPoisonKept(), 0u);
  EXPECT_DOUBLE_EQ(summary.UntrimmedPoisonFraction(), 0.0);
  for (const auto& r : summary.rounds) {
    EXPECT_TRUE(std::isnan(r.injection_percentile));
  }
}

TEST(ScalarGameTest, TitfortatTriggersOnBadQuality) {
  auto pool = UniformPool(3000, 7);
  // Trigger as soon as the defect share exceeds ~50%.
  TitfortatCollector collector(+0.01, -0.03, /*trigger_quality=*/0.5);
  MixedPercentileAdversary adversary(0.0);  // pure defect play at the 90th
  DefectShareQuality quality(0.90, 0.99);
  GameConfig config = SmallConfig();
  ScalarCollectionGame game(config, &pool, &collector, &adversary, &quality);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_GT(summary.termination_round, 0);
  EXPECT_LE(summary.termination_round, 3);
}

TEST(ScalarGameTest, RoundMassTrimmingRemovesExactFraction) {
  auto pool = UniformPool(2000, 8);
  StaticCollector collector(0.9, "static");
  FixedPercentileAdversary adversary(0.99);
  GameConfig config = SmallConfig();
  config.round_mass_trimming = true;
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  for (const auto& r : summary.rounds) {
    size_t received = r.benign_received + r.poison_received;
    size_t kept = r.benign_kept + r.poison_kept;
    EXPECT_EQ(received - kept,
              static_cast<size_t>(std::ceil(0.1 * received)));
  }
}

// Regression: the degenerate all-trimmed game (threshold 0 with round-mass
// semantics removes every value of every round) must leave the summary
// fraction helpers well defined — no 0/0 from the zero-kept denominator.
TEST(ScalarGameTest, DegenerateAllTrimmedGameHasDefinedFractions) {
  auto pool = UniformPool(1000, 14);
  StaticCollector collector(0.0, "trim-everything");
  FixedPercentileAdversary adversary(0.99);
  GameConfig config = SmallConfig();
  config.round_mass_trimming = true;
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  ASSERT_EQ(summary.TotalKept(), 0u);
  EXPECT_DOUBLE_EQ(summary.UntrimmedPoisonFraction(), 0.0);
  EXPECT_DOUBLE_EQ(summary.PoisonSurvivalRate(), 0.0);
  EXPECT_DOUBLE_EQ(summary.BenignLossFraction(), 1.0);
  EXPECT_FALSE(std::isnan(summary.UntrimmedPoisonFraction()));
  EXPECT_TRUE(game.retained().empty());
}

// Regression: no poison received at all (attack_ratio 0) combined with
// total trimming — every helper denominator is zero simultaneously.
TEST(ScalarGameTest, AllTrimmedWithoutPoisonStillDefined) {
  auto pool = UniformPool(1000, 15);
  StaticCollector collector(0.0, "trim-everything");
  FixedPercentileAdversary adversary(0.99);
  GameConfig config = SmallConfig();
  config.round_mass_trimming = true;
  config.attack_ratio = 0.0;
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_EQ(summary.TotalKept(), 0u);
  EXPECT_DOUBLE_EQ(summary.UntrimmedPoisonFraction(), 0.0);
  EXPECT_DOUBLE_EQ(summary.PoisonSurvivalRate(), 0.0);
  EXPECT_DOUBLE_EQ(summary.BenignLossFraction(), 1.0);
}

// An empty summary (no rounds played) must also stay finite.
TEST(GameSummaryTest, EmptySummaryFractionsAreZero) {
  GameSummary summary;
  EXPECT_DOUBLE_EQ(summary.UntrimmedPoisonFraction(), 0.0);
  EXPECT_DOUBLE_EQ(summary.BenignLossFraction(), 0.0);
  EXPECT_DOUBLE_EQ(summary.PoisonSurvivalRate(), 0.0);
  EXPECT_EQ(summary.TotalKept(), 0u);
}

TEST(DistanceGameTest, RunsOnMultiDimData) {
  Dataset data = MakeControl(9);
  StaticCollector collector(0.9, "static");
  FixedPercentileAdversary adversary(0.99);
  GameConfig config = SmallConfig();
  config.rounds = 5;
  DistanceCollectionGame game(config, &data, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_EQ(summary.rounds.size(), 5u);
  const Dataset& retained = game.retained_data();
  EXPECT_GT(retained.rows.size(), 0u);
  EXPECT_EQ(retained.rows.size(), game.retained_is_poison().size());
  EXPECT_EQ(retained.rows.size(), retained.labels.size());
  EXPECT_EQ(retained.dims(), data.dims());
  // Poison at the 99th-percentile distance is above the 90th cutoff.
  EXPECT_LT(summary.PoisonSurvivalRate(), 0.05);
}

TEST(DistanceGameTest, OstrichKeepsPoisonRows) {
  Dataset data = MakeControl(10);
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.99);
  GameConfig config = SmallConfig();
  config.rounds = 5;
  DistanceCollectionGame game(config, &data, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_DOUBLE_EQ(summary.PoisonSurvivalRate(), 1.0);
  // Poison labels must be in the valid class range.
  const Dataset& retained = game.retained_data();
  for (int label : retained.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(data.num_clusters));
  }
}

TEST(DistanceGameTest, ReferenceCentroidFromBootstrap) {
  Dataset data = MakeControl(11);
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.5);
  GameConfig config = SmallConfig();
  config.rounds = 2;
  DistanceCollectionGame game(config, &data, &collector, &adversary, nullptr);
  ASSERT_TRUE(game.Run().ok());
  EXPECT_EQ(game.reference_centroid().size(), data.dims());
}

TEST(DistanceGameTest, EmptySourceFails) {
  Dataset data;
  data.num_clusters = 1;
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.9);
  DistanceCollectionGame game(SmallConfig(), &data, &collector, &adversary,
                              nullptr);
  EXPECT_FALSE(game.Run().ok());
}

// Property sweep over attack ratios: bookkeeping identities always hold.
class GameAccountingTest : public ::testing::TestWithParam<double> {};

TEST_P(GameAccountingTest, CountsAreConsistent) {
  const double ratio = GetParam();
  auto pool = UniformPool(2000, 13);
  StaticCollector collector(0.9, "static");
  UniformRangeAdversary adversary(0.85, 1.0);
  GameConfig config = SmallConfig();
  config.attack_ratio = ratio;
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  size_t expected_poison = static_cast<size_t>(
      std::llround(ratio * static_cast<double>(config.round_size)));
  for (const auto& r : summary.rounds) {
    EXPECT_EQ(r.benign_received, config.round_size);
    EXPECT_EQ(r.poison_received, expected_poison);
    EXPECT_LE(r.benign_kept, r.benign_received);
    EXPECT_LE(r.poison_kept, r.poison_received);
  }
  EXPECT_EQ(game.retained().size(), summary.TotalKept());
  EXPECT_EQ(game.retained_is_poison().size(), summary.TotalKept());
}

INSTANTIATE_TEST_SUITE_P(AttackRatios, GameAccountingTest,
                         ::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5));

}  // namespace
}  // namespace itrim
