#include "game/lagrangian.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace itrim {
namespace {

TEST(FreePotentialTest, Theorem1ConstantVelocity) {
  // Equilibrium state: U = 0, so both utilities evolve at constant rates.
  FreePotential potential;
  GameLagrangian lagrangian(1.0, 2.0, &potential);
  EulerLagrangeIntegrator integrator(&lagrangian);
  GameState initial{0.0, 1.0, 0.5, -0.25};
  auto traj = integrator.Integrate(initial, 0.01, 1000);
  for (const auto& pt : traj) {
    EXPECT_NEAR(pt.state.v_a, 0.5, 1e-10);
    EXPECT_NEAR(pt.state.v_c, -0.25, 1e-10);
    // u(r) = u0 + v r.
    EXPECT_NEAR(pt.state.u_a, 0.0 + 0.5 * pt.r, 1e-9);
    EXPECT_NEAR(pt.state.u_c, 1.0 - 0.25 * pt.r, 1e-9);
  }
}

TEST(FreePotentialTest, Theorem2LagrangianIsQuadraticInVelocity) {
  FreePotential potential;
  GameLagrangian lagrangian(3.0, 5.0, &potential);
  GameState s{7.0, -2.0, 1.5, 0.5};
  // L = m_a v_a^2/2 + m_c v_c^2/2, independent of positions.
  EXPECT_DOUBLE_EQ(lagrangian.Evaluate(s),
                   0.5 * 3.0 * 1.5 * 1.5 + 0.5 * 5.0 * 0.5 * 0.5);
  GameState shifted = s;
  shifted.u_a += 100.0;
  shifted.u_c -= 50.0;
  EXPECT_DOUBLE_EQ(lagrangian.Evaluate(shifted), lagrangian.Evaluate(s));
}

TEST(ElasticPotentialTest, EnergyAndGradients) {
  ElasticPotential potential(2.0);
  EXPECT_DOUBLE_EQ(potential.Energy(3.0, 1.0), 0.5 * 2.0 * 4.0);
  EXPECT_DOUBLE_EQ(potential.GradA(3.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(potential.GradC(3.0, 1.0), -4.0);
  // Translation invariance: only the relative coordinate matters.
  EXPECT_DOUBLE_EQ(potential.Energy(13.0, 11.0), potential.Energy(3.0, 1.0));
}

TEST(ElasticTest, Equation14AccelerationForm) {
  // m_a u-dd_a = -k (u_a - u_c); m_c u-dd_c = +k (u_a - u_c).
  ElasticPotential potential(3.0);
  GameLagrangian lagrangian(2.0, 4.0, &potential);
  GameState s{1.0, 0.0, 0.0, 0.0};
  double a_a, a_c;
  lagrangian.Accelerations(s, &a_a, &a_c);
  EXPECT_DOUBLE_EQ(a_a, -3.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(a_c, +3.0 * 1.0 / 4.0);
}

TEST(Theorem4Test, RelativeUtilityOscillates) {
  // The relative utility w = u_a - u_c must follow A cos(w r + phi).
  const double m_a = 1.0, m_c = 1.0, k = 4.0;
  ElasticPotential potential(k);
  GameLagrangian lagrangian(m_a, m_c, &potential);
  EulerLagrangeIntegrator integrator(&lagrangian);
  GameState initial{0.5, -0.5, 0.0, 0.0};
  auto solution = SolveElasticOscillator(m_a, m_c, k, initial).ValueOrDie();
  // Reduced mass 0.5 -> omega = sqrt(4 / 0.5) = sqrt(8).
  EXPECT_NEAR(solution.omega, std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(solution.amplitude, 1.0, 1e-12);

  auto traj = integrator.Integrate(initial, 0.001, 5000);
  for (size_t i = 0; i < traj.size(); i += 250) {
    double w = traj[i].state.u_a - traj[i].state.u_c;
    EXPECT_NEAR(w, solution.Relative(traj[i].r), 1e-5) << "r=" << traj[i].r;
  }
}

TEST(Theorem4Test, PeriodMatchesReducedMass) {
  auto solution =
      SolveElasticOscillator(2.0, 3.0, 5.0, GameState{1.0, 0.0, 0.0, 0.0})
          .ValueOrDie();
  double mu = 2.0 * 3.0 / 5.0;
  EXPECT_NEAR(solution.period, 2.0 * M_PI / std::sqrt(5.0 / mu), 1e-12);
}

TEST(Theorem4Test, NonzeroInitialVelocityPhase) {
  GameState initial{0.0, 0.0, 1.0, -1.0};  // w0 = 0, wdot0 = 2
  auto solution = SolveElasticOscillator(1.0, 1.0, 1.0, initial).ValueOrDie();
  // w(0) must be 0 and w'(0) = 2.
  EXPECT_NEAR(solution.Relative(0.0), 0.0, 1e-12);
  double h = 1e-7;
  double wdot0 = (solution.Relative(h) - solution.Relative(-h)) / (2.0 * h);
  EXPECT_NEAR(wdot0, 2.0, 1e-4);
}

TEST(SolveElasticOscillatorTest, RejectsBadParameters) {
  GameState s;
  EXPECT_FALSE(SolveElasticOscillator(-1.0, 1.0, 1.0, s).ok());
  EXPECT_FALSE(SolveElasticOscillator(1.0, 1.0, 0.0, s).ok());
  EXPECT_FALSE(SolveElasticOscillator(1.0, 0.0, 1.0, s).ok());
}

TEST(EnergyConservationTest, RK4ConservesEnergy) {
  ElasticPotential potential(2.5);
  GameLagrangian lagrangian(1.0, 2.0, &potential);
  EulerLagrangeIntegrator integrator(&lagrangian);
  GameState initial{1.0, -1.0, 0.3, 0.1};
  auto traj = integrator.Integrate(initial, 0.01, 2000);
  double e0 = lagrangian.Energy(traj.front().state);
  for (const auto& pt : traj) {
    EXPECT_NEAR(lagrangian.Energy(pt.state), e0, 1e-6);
  }
}

TEST(ActionTest, LeastActionPrinciple) {
  // Axiom 1: the physical trajectory minimizes the action among nearby
  // paths with the same endpoints. Perturb the true free-particle path by a
  // sine bump that vanishes at both ends; the action must increase.
  FreePotential potential;
  GameLagrangian lagrangian(1.0, 1.0, &potential);
  EulerLagrangeIntegrator integrator(&lagrangian);
  GameState initial{0.0, 0.0, 1.0, -1.0};
  const double dr = 0.01;
  const int steps = 200;
  auto traj = integrator.Integrate(initial, dr, steps);
  double s_true = Action(lagrangian, traj);

  for (double amplitude : {0.05, 0.2, 0.5}) {
    auto perturbed = traj;
    double total_r = dr * steps;
    for (auto& pt : perturbed) {
      double bump = amplitude * std::sin(M_PI * pt.r / total_r);
      double bump_dot = amplitude * M_PI / total_r *
                        std::cos(M_PI * pt.r / total_r);
      pt.state.u_a += bump;
      pt.state.v_a += bump_dot;
    }
    EXPECT_GT(Action(lagrangian, perturbed), s_true)
        << "amplitude=" << amplitude;
  }
}

TEST(ActionTest, EmptyAndSingleton) {
  FreePotential potential;
  GameLagrangian lagrangian(1.0, 1.0, &potential);
  EXPECT_DOUBLE_EQ(Action(lagrangian, {}), 0.0);
  EXPECT_DOUBLE_EQ(Action(lagrangian, {{0.0, GameState{}}}), 0.0);
}

// Property sweep: for any spring constant, the measured oscillation period
// of the integrated system matches the analytic 2*pi/omega.
class OscillatorSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(OscillatorSweepTest, MeasuredPeriodMatchesAnalytic) {
  const double k = GetParam();
  ElasticPotential potential(k);
  GameLagrangian lagrangian(1.0, 1.0, &potential);
  EulerLagrangeIntegrator integrator(&lagrangian);
  GameState initial{1.0, -1.0, 0.0, 0.0};
  auto solution = SolveElasticOscillator(1.0, 1.0, k, initial).ValueOrDie();
  const double dr = solution.period / 2000.0;
  auto traj = integrator.Integrate(initial, dr, 4000);  // two periods
  // Find the first two downward zero crossings of w(r).
  double first = -1.0, second = -1.0;
  for (size_t i = 1; i < traj.size(); ++i) {
    double w_prev = traj[i - 1].state.u_a - traj[i - 1].state.u_c;
    double w_cur = traj[i].state.u_a - traj[i].state.u_c;
    if (w_prev > 0.0 && w_cur <= 0.0) {
      double t = traj[i - 1].r +
                 dr * w_prev / (w_prev - w_cur);  // linear interpolation
      if (first < 0.0) {
        first = t;
      } else {
        second = t;
        break;
      }
    }
  }
  ASSERT_GT(second, 0.0);
  EXPECT_NEAR(second - first, solution.period, solution.period * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(SpringConstants, OscillatorSweepTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 10.0));

}  // namespace
}  // namespace itrim
