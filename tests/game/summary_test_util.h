// Shared helpers for the determinism/bit-identity test suites.
//
// Every suite that asserts "these two game streams are the same stream"
// (session_test, session_property_test, session_fleet_test) compares
// GameSummarys field by field at the bit level — one comparator here so a
// new RoundRecord field extends every determinism gate at once.
// bench/bench_fleet.cc keeps its own gtest-free comparison for the same
// reason bench_micro_board keeps its own oracle: bench binaries do not
// link GoogleTest.
#ifndef ITRIM_TESTS_GAME_SUMMARY_TEST_UTIL_H_
#define ITRIM_TESTS_GAME_SUMMARY_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "game/session.h"

namespace itrim {

/// \brief Bitwise double equality: NaNs of equal payload compare equal,
/// +0.0 and -0.0 do not — exactly the "same stream" notion the
/// determinism contracts promise.
inline bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// \brief Asserts two game books are bit-identical, field by field.
inline void ExpectSummaryBitIdentical(const GameSummary& a,
                                      const GameSummary& b) {
  EXPECT_EQ(a.termination_round, b.termination_round);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    const RoundRecord& ra = a.rounds[i];
    const RoundRecord& rb = b.rounds[i];
    EXPECT_EQ(ra.round, rb.round) << "round " << i;
    EXPECT_TRUE(BitEqual(ra.collector_percentile, rb.collector_percentile))
        << "collector_percentile, round " << i;
    EXPECT_TRUE(BitEqual(ra.injection_percentile, rb.injection_percentile))
        << "injection_percentile, round " << i;
    EXPECT_TRUE(BitEqual(ra.cutoff, rb.cutoff)) << "cutoff, round " << i;
    EXPECT_TRUE(BitEqual(ra.quality, rb.quality)) << "quality, round " << i;
    EXPECT_EQ(ra.benign_received, rb.benign_received) << "round " << i;
    EXPECT_EQ(ra.poison_received, rb.poison_received) << "round " << i;
    EXPECT_EQ(ra.benign_kept, rb.benign_kept) << "round " << i;
    EXPECT_EQ(ra.poison_kept, rb.poison_kept) << "round " << i;
  }
}

/// \brief A benign scalar data source: n uniform values in [0, 1).
inline std::vector<double> UniformPool(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) pool.push_back(rng.Uniform());
  return pool;
}

}  // namespace itrim

#endif  // ITRIM_TESTS_GAME_SUMMARY_TEST_UTIL_H_
