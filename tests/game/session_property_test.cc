// Randomized property tests of the streaming TrimmingSession engine.
//
// For random game configurations and strategy pairs (every scheme of
// Section VI-A, scalar and distance data settings, both trim semantics,
// bounded and unbounded boards) the engine must satisfy:
//
//   1. Step-by-step equals RunToCompletion: driving the stream manually
//      (Bootstrap + Step x rounds + Finish) is bit-identical to the batch
//      shape, and the records returned by Step() are the records in the
//      summary.
//   2. Checkpoint/Restore at *every* round k resumes bit-identically: the
//      interrupted stream, restored into a fresh session with fresh
//      strategy objects, finishes exactly like the uninterrupted one.
//   3. GameSummary invariants: per round, kept <= received for both
//      populations, accepted + trimmed = received, and every derived
//      fraction lies in [0, 1].
//
// The paper's strategies are all replay-exact (their state is a function
// of the observation history), which is precisely what property 2
// exercises; a strategy drawing private randomness inside Observe() would
// fail it (see the session.h header contract).
#include "game/session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "game/score_model.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

enum class DataKind { kScalar, kDistance };

// One randomly drawn game setup. The scheme instance (strategy pair +
// quality) is rebuilt per session so no state leaks between runs.
struct TrialSetup {
  DataKind kind = DataKind::kScalar;
  SchemeId scheme = SchemeId::kElastic05;
  GameConfig config;

  std::string Describe() const {
    return std::string(kind == DataKind::kScalar ? "scalar" : "distance") +
           "/" + SchemeName(scheme) + " rounds=" +
           std::to_string(config.rounds) + " round_size=" +
           std::to_string(config.round_size) + " attack_ratio=" +
           std::to_string(config.attack_ratio) + " capacity=" +
           std::to_string(config.board_capacity) +
           (config.round_mass_trimming ? " round_mass" : " board_ref") +
           " seed=" + std::to_string(config.seed);
  }
};

TrialSetup DrawTrial(Rng* rng, DataKind kind) {
  const std::vector<SchemeId> schemes = AllSchemes();
  TrialSetup trial;
  trial.kind = kind;
  trial.scheme = schemes[rng->UniformInt(schemes.size())];
  trial.config.rounds = 2 + static_cast<int>(rng->UniformInt(6));
  trial.config.round_size = 20 + rng->UniformInt(70);
  trial.config.attack_ratio =
      rng->Bernoulli(0.2) ? 0.0 : rng->Uniform(0.02, 0.35);
  trial.config.tth = rng->Uniform(0.82, 0.96);
  trial.config.bootstrap_size = 40 + rng->UniformInt(110);
  const size_t capacities[] = {0, 64, 4096};
  trial.config.board_capacity = capacities[rng->UniformInt(3)];
  trial.config.round_mass_trimming = rng->Bernoulli(0.5);
  trial.config.seed = rng->NextU64();
  return trial;
}

// Drives the session-construction boilerplate of one trial: fresh scheme
// objects, fresh model over the shared data source, then hands the session
// to `body`.
class PropertyHarness {
 public:
  PropertyHarness()
      : pool_(UniformPool(3000, 5)), data_(MakeControl(35, 60)) {}

  template <typename Body>
  void WithSession(const TrialSetup& trial, Body body,
                   bool retain_survivors = true) {
    SchemeInstance scheme = MakeScheme(trial.scheme, trial.config.tth);
    if (trial.kind == DataKind::kScalar) {
      IdentityScoreModel model(&pool_);
      model.set_retain_survivors(retain_survivors);
      TrimmingSession session(trial.config, &model, scheme.collector.get(),
                              scheme.adversary.get(), scheme.quality.get());
      body(&session);
    } else {
      DistanceScoreModel model(&data_);
      model.set_retain_survivors(retain_survivors);
      TrimmingSession session(trial.config, &model, scheme.collector.get(),
                              scheme.adversary.get(), scheme.quality.get());
      body(&session);
    }
  }

 private:
  std::vector<double> pool_;
  Dataset data_;
};

void ExpectSummaryInvariants(const GameSummary& summary,
                             const GameConfig& config) {
  size_t expected_round = 0;
  for (const RoundRecord& record : summary.rounds) {
    ++expected_round;
    EXPECT_EQ(record.round, static_cast<int>(expected_round));
    EXPECT_EQ(record.benign_received, config.round_size);
    EXPECT_LE(record.benign_kept, record.benign_received);
    EXPECT_LE(record.poison_kept, record.poison_received);
    // accepted + trimmed = received, population by population: the keep
    // mask partitions the round, nothing is created or double-counted.
    size_t received = record.benign_received + record.poison_received;
    size_t kept = record.benign_kept + record.poison_kept;
    size_t trimmed = (record.benign_received - record.benign_kept) +
                     (record.poison_received - record.poison_kept);
    EXPECT_EQ(kept + trimmed, received);
    if (!std::isnan(record.quality)) {
      EXPECT_GE(record.quality, 0.0);
      EXPECT_LE(record.quality, 1.0);
    }
  }
  for (double fraction :
       {summary.UntrimmedPoisonFraction(), summary.BenignLossFraction(),
        summary.PoisonSurvivalRate()}) {
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
  }
  EXPECT_LE(summary.TotalKept(), summary.TotalReceived());
  EXPECT_EQ(summary.TotalReceived(),
            summary.TotalBenignReceived() + summary.TotalPoisonReceived());
  EXPECT_GE(summary.termination_round, 0);
  EXPECT_LE(summary.termination_round,
            static_cast<int>(summary.rounds.size()));
}

class SessionPropertyTest : public ::testing::TestWithParam<DataKind> {
 protected:
  PropertyHarness harness_;
};

TEST_P(SessionPropertyTest, StepByStepEqualsRunToCompletion) {
  Rng rng(GetParam() == DataKind::kScalar ? 901 : 902);
  const int kTrials = GetParam() == DataKind::kScalar ? 24 : 12;
  for (int t = 0; t < kTrials; ++t) {
    TrialSetup trial = DrawTrial(&rng, GetParam());
    SCOPED_TRACE(trial.Describe());

    GameSummary batch;
    harness_.WithSession(trial, [&](TrimmingSession* session) {
      batch = session->RunToCompletion().ValueOrDie();
    });

    harness_.WithSession(trial, [&](TrimmingSession* session) {
      ASSERT_TRUE(session->Bootstrap().ok());
      std::vector<RoundRecord> stepped;
      for (int r = 1; r <= trial.config.rounds; ++r) {
        stepped.push_back(session->Step().ValueOrDie());
      }
      GameSummary manual = session->Finish();
      ExpectSummaryBitIdentical(batch, manual);
      // The records Step() hands back are the records in the book.
      ASSERT_EQ(stepped.size(), manual.rounds.size());
      for (size_t i = 0; i < stepped.size(); ++i) {
        EXPECT_EQ(stepped[i].round, manual.rounds[i].round);
        EXPECT_TRUE(BitEqual(stepped[i].cutoff, manual.rounds[i].cutoff));
        EXPECT_EQ(stepped[i].benign_kept, manual.rounds[i].benign_kept);
        EXPECT_EQ(stepped[i].poison_kept, manual.rounds[i].poison_kept);
      }
      ExpectSummaryInvariants(manual, trial.config);
    });
  }
}

TEST_P(SessionPropertyTest, CheckpointAtEveryRoundResumesBitIdentically) {
  Rng rng(GetParam() == DataKind::kScalar ? 903 : 904);
  const int kTrials = GetParam() == DataKind::kScalar ? 10 : 6;
  for (int t = 0; t < kTrials; ++t) {
    TrialSetup trial = DrawTrial(&rng, GetParam());
    SCOPED_TRACE(trial.Describe());

    GameSummary reference;
    harness_.WithSession(trial, [&](TrimmingSession* session) {
      reference = session->RunToCompletion().ValueOrDie();
    });

    for (int k = 0; k <= trial.config.rounds; ++k) {
      SCOPED_TRACE("checkpoint after round " + std::to_string(k));
      SessionCheckpoint checkpoint;
      harness_.WithSession(trial, [&](TrimmingSession* session) {
        ASSERT_TRUE(session->Bootstrap().ok());
        for (int r = 0; r < k; ++r) ASSERT_TRUE(session->Step().ok());
        checkpoint = session->Checkpoint();
      });
      harness_.WithSession(trial, [&](TrimmingSession* session) {
        ASSERT_TRUE(session->Restore(checkpoint).ok());
        EXPECT_EQ(session->next_round(), k + 1);
        for (int r = k; r < trial.config.rounds; ++r) {
          ASSERT_TRUE(session->Step().ok());
        }
        ExpectSummaryBitIdentical(reference, session->Finish());
      });
    }
  }
}

// The retained-survivor store is an output sink, never an input: switching
// it off (the streaming/fleet mode) must leave every record of the game
// bit-identical.
TEST_P(SessionPropertyTest, RetentionToggleNeverChangesRecords) {
  Rng rng(GetParam() == DataKind::kScalar ? 905 : 906);
  const int kTrials = GetParam() == DataKind::kScalar ? 12 : 8;
  for (int t = 0; t < kTrials; ++t) {
    TrialSetup trial = DrawTrial(&rng, GetParam());
    SCOPED_TRACE(trial.Describe());

    GameSummary retaining, streaming;
    harness_.WithSession(
        trial,
        [&](TrimmingSession* session) {
          retaining = session->RunToCompletion().ValueOrDie();
        },
        /*retain_survivors=*/true);
    harness_.WithSession(
        trial,
        [&](TrimmingSession* session) {
          streaming = session->RunToCompletion().ValueOrDie();
        },
        /*retain_survivors=*/false);
    ExpectSummaryBitIdentical(retaining, streaming);
  }
}

INSTANTIATE_TEST_SUITE_P(DataSettings, SessionPropertyTest,
                         ::testing::Values(DataKind::kScalar,
                                           DataKind::kDistance),
                         [](const auto& info) {
                           return info.param == DataKind::kScalar
                                      ? "Scalar"
                                      : "Distance";
                         });

}  // namespace
}  // namespace itrim
