// Bit-identity contract of the dispatched scoring kernels (game/kernels.h):
// the generic and auto-vectorized builds must return identical bytes for
// every input, including NaN/inf payloads and awkward sizes around the
// 4-lane stride. A forced-variant sweep drives each public kernel through
// both builds and compares bitwise; scalar oracles written in the
// documented operation order pin the semantics themselves.
#include "game/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace itrim {
namespace {

using kernels::Variant;

// True bitwise equality (EXPECT_DOUBLE_EQ treats -0.0 == 0.0 and fails on
// NaN; the dispatch contract is about bytes).
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// The documented reduction: lane k accumulates indices == k (mod 4), lanes
// combine as (a0 + a1) + (a2 + a3), tail peels into lanes 0..2 in order.
double OracleSquaredDistance(const double* a, const double* b, size_t n) {
  double l[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t k = 0; k < 4; ++k) {
      const double d = a[i + k] - b[i + k];
      l[k] += d * d;
    }
  }
  for (size_t k = 0; i < n; ++i, ++k) {
    const double d = a[i] - b[i];
    l[k] += d * d;
  }
  return (l[0] + l[1]) + (l[2] + l[3]);
}

// Same reduction shape for the dot product (the library-wide prediction
// definition behind LaneDot / AbsResidualsToModel).
double OracleLaneDot(const double* a, const double* b, size_t n) {
  double l[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t k = 0; k < 4; ++k) {
      l[k] += a[i + k] * b[i + k];
    }
  }
  for (size_t k = 0; i < n; ++i, ++k) {
    l[k] += a[i] * b[i];
  }
  return (l[0] + l[1]) + (l[2] + l[3]);
}

// NaN-tolerant bit equality for the specials sweep: when +inf and -inf
// products land in lanes that cancel, the combine yields a NaN whose sign
// and payload depend on FP-add operand order — which IEEE 754 leaves to
// the implementation, so the two kernel TUs may legitimately disagree on
// those bits. Finite inputs (the only ones LaneDot ever sees in the
// library: model weights and feature rows) keep the strict SameBits
// contract via the dedicated tests below.
bool SameBitsOrBothNan(double a, double b) {
  return SameBits(a, b) || (std::isnan(a) && std::isnan(b));
}

struct VariantGuard {
  ~VariantGuard() { kernels::ResetVariant(); }
};

// Sizes straddling the 4-lane stride, the vector width, and zero.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                         31, 63, 64, 100, 255, 256, 301};

std::vector<double> RandomValues(size_t n, Rng* rng, bool with_specials) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng->Uniform(-10.0, 10.0);
  }
  if (with_specials && n >= 4) {
    v[0] = std::nan("");
    v[n / 2] = std::numeric_limits<double>::infinity();
    v[n / 3] = -std::numeric_limits<double>::infinity();
    v[n - 1] = v[n / 4];  // duplicate
  }
  return v;
}

TEST(KernelsDispatchTest, ActiveVariantMatchesCpu) {
  VariantGuard guard;
  kernels::ResetVariant();
  if (kernels::VectorAvailable()) {
    EXPECT_EQ(kernels::ActiveVariant(), Variant::kVector);
  } else {
    EXPECT_EQ(kernels::ActiveVariant(), Variant::kGeneric);
  }
}

TEST(KernelsDispatchTest, ForceAndResetRoundTrip) {
  VariantGuard guard;
  kernels::ForceVariant(Variant::kGeneric);
  EXPECT_EQ(kernels::ActiveVariant(), Variant::kGeneric);
  kernels::ForceVariant(Variant::kVector);
  if (kernels::VectorAvailable()) {
    EXPECT_EQ(kernels::ActiveVariant(), Variant::kVector);
  } else {
    // Forcing an unavailable build is ignored, not honored unsafely.
    EXPECT_EQ(kernels::ActiveVariant(), Variant::kGeneric);
  }
  kernels::ResetVariant();
  EXPECT_EQ(kernels::ActiveVariant(), kernels::VectorAvailable()
                                          ? Variant::kVector
                                          : Variant::kGeneric);
}

TEST(KernelsDispatchTest, VariantNames) {
  EXPECT_STREQ(kernels::VariantName(Variant::kGeneric), "generic");
  EXPECT_STREQ(kernels::VariantName(Variant::kVector), "vector");
}

TEST(KernelsTest, MaskAtMostSemantics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, std::nan(""),
                                 -std::numeric_limits<double>::infinity()};
  std::vector<char> keep(v.size(), 42);
  size_t kept = kernels::MaskAtMost(v.data(), v.size(), 2.0, keep.data());
  // NaN never compares greater, so it is kept (legacy trim semantics).
  EXPECT_EQ(kept, 4u);
  EXPECT_EQ(keep[0], 1);
  EXPECT_EQ(keep[1], 1);  // tie at the cutoff survives
  EXPECT_EQ(keep[2], 0);
  EXPECT_EQ(keep[3], 1);
  EXPECT_EQ(keep[4], 1);
}

TEST(KernelsTest, MaskInBandSemantics) {
  const std::vector<double> v = {-3.0, -1.0, 0.0, 1.0, 3.0, std::nan("")};
  std::vector<char> keep(v.size(), 42);
  size_t kept =
      kernels::MaskInBand(v.data(), v.size(), -1.0, 1.0, keep.data());
  EXPECT_EQ(kept, 4u);
  EXPECT_EQ(keep[0], 0);
  EXPECT_EQ(keep[1], 1);
  EXPECT_EQ(keep[2], 1);
  EXPECT_EQ(keep[3], 1);
  EXPECT_EQ(keep[4], 0);
  EXPECT_EQ(keep[5], 1);  // NaN kept, matching MaskAtMost
}

TEST(KernelsTest, CountsMatchScalarOracle) {
  Rng rng(0xC0117ULL);
  for (size_t n : kSizes) {
    std::vector<double> v = RandomValues(n, &rng, /*with_specials=*/true);
    const double cutoff = 0.5;
    size_t greater = 0, at_least = 0;
    for (double x : v) {
      if (x > cutoff) ++greater;
      if (x >= cutoff) ++at_least;
    }
    EXPECT_EQ(kernels::CountGreater(v.data(), n, cutoff), greater) << n;
    EXPECT_EQ(kernels::CountAtLeast(v.data(), n, cutoff), at_least) << n;
  }
}

TEST(KernelsTest, SquaredDistanceMatchesDocumentedAssociation) {
  Rng rng(0xD157ULL);
  for (size_t n : kSizes) {
    std::vector<double> a = RandomValues(n, &rng, /*with_specials=*/false);
    std::vector<double> b = RandomValues(n, &rng, /*with_specials=*/false);
    const double got = kernels::SquaredDistance(a.data(), b.data(), n);
    EXPECT_TRUE(SameBits(got, OracleSquaredDistance(a.data(), b.data(), n)))
        << "n=" << n;
    // Loose cross-check against the naive sequential sum.
    double naive = 0.0;
    for (size_t i = 0; i < n; ++i) {
      naive += (a[i] - b[i]) * (a[i] - b[i]);
    }
    EXPECT_NEAR(got, naive, 1e-9 * (1.0 + naive)) << "n=" << n;
  }
}

TEST(KernelsTest, SmallSizesDegenerateToSequentialSum) {
  // For n <= 4 the lane combination must reproduce the plain left-to-right
  // sum (historical scalar values of the seed implementation).
  Rng rng(0x5E0ULL);
  for (size_t n = 0; n <= 4; ++n) {
    std::vector<double> a = RandomValues(n, &rng, false);
    std::vector<double> b = RandomValues(n, &rng, false);
    double seq = 0.0;
    for (size_t i = 0; i < n; ++i) seq += (a[i] - b[i]) * (a[i] - b[i]);
    EXPECT_TRUE(
        SameBits(kernels::SquaredDistance(a.data(), b.data(), n), seq))
        << "n=" << n;
  }
}

TEST(KernelsTest, LaneDotMatchesDocumentedAssociation) {
  Rng rng(0x1A7D07ULL);
  for (size_t n : kSizes) {
    std::vector<double> a = RandomValues(n, &rng, /*with_specials=*/false);
    std::vector<double> b = RandomValues(n, &rng, /*with_specials=*/false);
    const double got = kernels::LaneDot(a.data(), b.data(), n);
    EXPECT_TRUE(SameBits(got, OracleLaneDot(a.data(), b.data(), n)))
        << "n=" << n;
    double naive = 0.0;
    for (size_t i = 0; i < n; ++i) naive += a[i] * b[i];
    EXPECT_NEAR(got, naive, 1e-9 * (1.0 + std::fabs(naive))) << "n=" << n;
  }
}

TEST(KernelsTest, AbsResidualsToModelMatchesPerRowScalar) {
  Rng rng(0xAB5ULL);
  for (size_t dims : {1u, 2u, 3u, 4u, 5u, 8u, 17u}) {
    const size_t width = dims + 1;
    const size_t n_rows = 41;
    std::vector<double> rows = RandomValues(n_rows * width, &rng, false);
    std::vector<double> weights = RandomValues(dims, &rng, false);
    const double bias = rng.Uniform(-1.0, 1.0);
    std::vector<double> out(n_rows, -1.0);
    kernels::AbsResidualsToModel(rows.data(), n_rows, width, weights.data(),
                                 bias, out.data());
    for (size_t r = 0; r < n_rows; ++r) {
      const double* row = rows.data() + r * width;
      const double expect =
          std::fabs(row[dims] - (OracleLaneDot(weights.data(), row, dims) +
                                 bias));
      EXPECT_TRUE(SameBits(out[r], expect)) << "dims=" << dims << " r=" << r;
    }
  }
}

TEST(KernelsTest, DistancesToCenterMatchesPerRowScalar) {
  Rng rng(0xD15CULL);
  for (size_t dims : {1u, 2u, 3u, 4u, 5u, 8u, 17u}) {
    const size_t n_rows = 37;
    std::vector<double> rows = RandomValues(n_rows * dims, &rng, false);
    std::vector<double> center = RandomValues(dims, &rng, false);
    std::vector<double> out(n_rows, -1.0);
    kernels::DistancesToCenter(rows.data(), n_rows, dims, center.data(),
                               out.data());
    for (size_t r = 0; r < n_rows; ++r) {
      const double expect = std::sqrt(
          OracleSquaredDistance(rows.data() + r * dims, center.data(), dims));
      EXPECT_TRUE(SameBits(out[r], expect)) << "dims=" << dims << " r=" << r;
    }
  }
}

// The headline contract: every kernel returns identical bytes from the
// generic and the vector build, across sizes and special values.
TEST(KernelsVariantEquivalenceTest, AllKernelsBitIdenticalAcrossVariants) {
  if (!kernels::VectorAvailable()) {
    GTEST_SKIP() << "no AVX2: single-variant machine";
  }
  VariantGuard guard;
  Rng rng(0xB17B17ULL);
  for (size_t n : kSizes) {
    std::vector<double> v = RandomValues(n, &rng, /*with_specials=*/true);
    std::vector<double> w = RandomValues(n, &rng, /*with_specials=*/false);
    const double cutoff = 0.25;

    kernels::ForceVariant(Variant::kGeneric);
    std::vector<char> keep_g(n, 0), band_g(n, 0);
    const size_t mask_g = kernels::MaskAtMost(v.data(), n, cutoff,
                                              keep_g.data());
    const size_t band_kept_g =
        kernels::MaskInBand(v.data(), n, -1.0, 1.0, band_g.data());
    const size_t greater_g = kernels::CountGreater(v.data(), n, cutoff);
    const size_t at_least_g = kernels::CountAtLeast(v.data(), n, cutoff);
    const double dist_g = kernels::SquaredDistance(v.data(), w.data(), n);
    const double dot_g = kernels::LaneDot(v.data(), w.data(), n);

    kernels::ForceVariant(Variant::kVector);
    std::vector<char> keep_v(n, 0), band_v(n, 0);
    const size_t mask_v = kernels::MaskAtMost(v.data(), n, cutoff,
                                              keep_v.data());
    const size_t band_kept_v =
        kernels::MaskInBand(v.data(), n, -1.0, 1.0, band_v.data());
    const size_t greater_v = kernels::CountGreater(v.data(), n, cutoff);
    const size_t at_least_v = kernels::CountAtLeast(v.data(), n, cutoff);
    const double dist_v = kernels::SquaredDistance(v.data(), w.data(), n);
    const double dot_v = kernels::LaneDot(v.data(), w.data(), n);

    EXPECT_EQ(mask_g, mask_v) << n;
    EXPECT_EQ(keep_g, keep_v) << n;
    EXPECT_EQ(band_kept_g, band_kept_v) << n;
    EXPECT_EQ(band_g, band_v) << n;
    EXPECT_EQ(greater_g, greater_v) << n;
    EXPECT_EQ(at_least_g, at_least_v) << n;
    EXPECT_TRUE(SameBits(dist_g, dist_v)) << n;
    EXPECT_TRUE(SameBitsOrBothNan(dot_g, dot_v)) << n;
  }
}

TEST(KernelsVariantEquivalenceTest, AbsResidualsToModelBitIdentical) {
  if (!kernels::VectorAvailable()) {
    GTEST_SKIP() << "no AVX2: single-variant machine";
  }
  VariantGuard guard;
  Rng rng(0xB17AB5ULL);
  for (size_t dims : {1u, 2u, 4u, 7u, 16u, 33u}) {
    const size_t width = dims + 1;
    const size_t n_rows = 53;
    std::vector<double> rows = RandomValues(n_rows * width, &rng, false);
    std::vector<double> weights = RandomValues(dims, &rng, false);
    const double bias = rng.Uniform(-1.0, 1.0);
    std::vector<double> out_g(n_rows), out_v(n_rows);
    kernels::ForceVariant(Variant::kGeneric);
    kernels::AbsResidualsToModel(rows.data(), n_rows, width, weights.data(),
                                 bias, out_g.data());
    kernels::ForceVariant(Variant::kVector);
    kernels::AbsResidualsToModel(rows.data(), n_rows, width, weights.data(),
                                 bias, out_v.data());
    for (size_t r = 0; r < n_rows; ++r) {
      EXPECT_TRUE(SameBits(out_g[r], out_v[r]))
          << "dims=" << dims << " r=" << r;
    }
  }
}

TEST(KernelsVariantEquivalenceTest, DistancesToCenterBitIdentical) {
  if (!kernels::VectorAvailable()) {
    GTEST_SKIP() << "no AVX2: single-variant machine";
  }
  VariantGuard guard;
  Rng rng(0xB17D15ULL);
  for (size_t dims : {1u, 2u, 4u, 7u, 16u, 33u}) {
    const size_t n_rows = 53;
    std::vector<double> rows = RandomValues(n_rows * dims, &rng, false);
    std::vector<double> center = RandomValues(dims, &rng, false);
    std::vector<double> out_g(n_rows), out_v(n_rows);
    kernels::ForceVariant(Variant::kGeneric);
    kernels::DistancesToCenter(rows.data(), n_rows, dims, center.data(),
                               out_g.data());
    kernels::ForceVariant(Variant::kVector);
    kernels::DistancesToCenter(rows.data(), n_rows, dims, center.data(),
                               out_v.data());
    for (size_t r = 0; r < n_rows; ++r) {
      EXPECT_TRUE(SameBits(out_g[r], out_v[r]))
          << "dims=" << dims << " r=" << r;
    }
  }
}

}  // namespace
}  // namespace itrim
