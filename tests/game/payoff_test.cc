#include "game/payoff.h"

#include <gtest/gtest.h>

namespace itrim {
namespace {

PayoffParams DefaultParams() { return PayoffParams{10.0, 6.0, 1.0, 0.5}; }

TEST(PayoffParamsTest, DefaultOrderingValid) {
  EXPECT_TRUE(DefaultParams().Validate().ok());
}

TEST(PayoffParamsTest, RejectsViolatedOrdering) {
  PayoffParams p = DefaultParams();
  p.t_soft = -1.0;
  EXPECT_FALSE(p.Validate().ok());

  p = DefaultParams();
  p.p_soft = 0.1;  // P < T
  EXPECT_FALSE(p.Validate().ok());

  p = DefaultParams();
  p.t_hard = 0.9;  // T-bar < P
  EXPECT_FALSE(p.Validate().ok());

  p = DefaultParams();
  p.p_hard = 5.0;  // P-bar < T-bar
  EXPECT_FALSE(p.Validate().ok());
}

TEST(UltimatumGameTest, PayoffCellsMatchTableI) {
  UltimatumGame game(DefaultParams());
  // (Collector soft, Adversary soft): (-P - T, P).
  PayoffPair ss = game.Payoff(Stance::kSoft, Stance::kSoft);
  EXPECT_DOUBLE_EQ(ss.collector, -1.5);
  EXPECT_DOUBLE_EQ(ss.adversary, 1.0);
  // (Soft, Hard): (-P-bar - T, P-bar).
  PayoffPair sh = game.Payoff(Stance::kSoft, Stance::kHard);
  EXPECT_DOUBLE_EQ(sh.collector, -10.5);
  EXPECT_DOUBLE_EQ(sh.adversary, 10.0);
  // (Hard, *): (-T-bar, 0).
  PayoffPair hs = game.Payoff(Stance::kHard, Stance::kSoft);
  PayoffPair hh = game.Payoff(Stance::kHard, Stance::kHard);
  EXPECT_DOUBLE_EQ(hs.collector, -6.0);
  EXPECT_DOUBLE_EQ(hs.adversary, 0.0);
  EXPECT_EQ(hs, hh);
}

TEST(UltimatumGameTest, HardHardIsEquilibrium) {
  UltimatumGame game(DefaultParams());
  auto eqs = game.PureNashEquilibria();
  bool found = false;
  for (auto& [c, a] : eqs) {
    if (c == Stance::kHard && a == Stance::kHard) found = true;
    // (Soft, Soft) must NOT be an equilibrium: the adversary deviates to
    // Hard against a soft collector.
    EXPECT_FALSE(c == Stance::kSoft && a == Stance::kSoft);
  }
  EXPECT_TRUE(found);
}

TEST(UltimatumGameTest, PrisonersDilemmaStructure) {
  UltimatumGame game(DefaultParams());
  EXPECT_TRUE(game.HasPrisonersDilemmaStructure());
  // (Soft, Soft) Pareto-dominates (Hard, Hard).
  PayoffPair ss = game.Payoff(Stance::kSoft, Stance::kSoft);
  PayoffPair hh = game.Payoff(Stance::kHard, Stance::kHard);
  EXPECT_GT(ss.collector, hh.collector);
  EXPECT_GT(ss.adversary, hh.adversary);
}

TEST(UltimatumGameTest, CooperationGains) {
  UltimatumGame game(DefaultParams());
  // g_c = T-bar - P - T = 6 - 1 - 0.5 = 4.5; g_a = P = 1.
  EXPECT_DOUBLE_EQ(game.CollectorCooperationGain(), 4.5);
  EXPECT_DOUBLE_EQ(game.AdversaryCooperationGain(), 1.0);
  EXPECT_DOUBLE_EQ(game.SymmetricCooperationGain(), 2.75);
}

TEST(UltimatumGameTest, CooperationGainsPositiveUnderOrdering) {
  // Whenever P-bar > T-bar > P > T > 0, cooperation benefits both sides.
  for (double scale : {0.1, 1.0, 50.0}) {
    PayoffParams p{10.0 * scale, 6.0 * scale, 1.0 * scale, 0.5 * scale};
    UltimatumGame game(p);
    EXPECT_GT(game.CollectorCooperationGain(), 0.0);
    EXPECT_GT(game.AdversaryCooperationGain(), 0.0);
  }
}

TEST(StanceNameTest, Names) {
  EXPECT_EQ(StanceName(Stance::kSoft), "Soft");
  EXPECT_EQ(StanceName(Stance::kHard), "Hard");
}

// Property sweep: the (Hard, Hard) equilibrium and PD structure hold across
// the whole parameter ordering, not just the default instance.
class PayoffSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PayoffSweepTest, EquilibriumRobustAcrossParameters) {
  auto [p_hard, t_hard] = GetParam();
  PayoffParams p;
  p.p_hard = p_hard;
  p.t_hard = t_hard;
  p.p_soft = t_hard / 3.0;
  p.t_soft = t_hard / 10.0;
  ASSERT_TRUE(p.Validate().ok());
  UltimatumGame game(p);
  EXPECT_TRUE(game.HasPrisonersDilemmaStructure());
}

INSTANTIATE_TEST_SUITE_P(
    Orderings, PayoffSweepTest,
    ::testing::Values(std::make_tuple(10.0, 6.0), std::make_tuple(100.0, 6.0),
                      std::make_tuple(7.0, 6.5), std::make_tuple(1000.0, 30.0),
                      std::make_tuple(2.0, 1.5)));

}  // namespace
}  // namespace itrim
