#include "game/public_board.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace itrim {
namespace {

TEST(PublicBoardTest, EmptyQuantileFails) {
  PublicBoard board;
  EXPECT_FALSE(board.Quantile(0.5).ok());
  EXPECT_EQ(board.Quantile(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PublicBoardTest, RecordsAndQueries) {
  PublicBoard board;
  board.Record({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(board.size(), 4u);
  EXPECT_EQ(board.total_recorded(), 4u);
  EXPECT_DOUBLE_EQ(board.Quantile(0.5).ValueOrDie(), 2.5);
}

TEST(PublicBoardTest, PercentileRank) {
  PublicBoard board;
  board.Record({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(board.PercentileRank(2.5), 0.5);
  EXPECT_DOUBLE_EQ(board.PercentileRank(0.0), 0.0);
  EXPECT_DOUBLE_EQ(board.PercentileRank(10.0), 1.0);
}

TEST(PublicBoardTest, QuantileUpdatesWithNewData) {
  PublicBoard board;
  board.Record({0.0, 1.0});
  double q_before = board.Quantile(0.9).ValueOrDie();
  board.Record({10.0, 11.0, 12.0});
  double q_after = board.Quantile(0.9).ValueOrDie();
  EXPECT_GT(q_after, q_before);
}

TEST(PublicBoardTest, CapacityBoundsMemory) {
  PublicBoard board(100, 1);
  for (int i = 0; i < 10000; ++i) board.RecordOne(static_cast<double>(i));
  EXPECT_EQ(board.size(), 100u);
  EXPECT_EQ(board.total_recorded(), 10000u);
}

TEST(PublicBoardTest, ReservoirIsApproximatelyUnbiased) {
  // With uniform input, the capped board's median should track the stream
  // median.
  PublicBoard board(500, 2);
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) board.RecordOne(rng.Uniform());
  EXPECT_NEAR(board.Quantile(0.5).ValueOrDie(), 0.5, 0.08);
  EXPECT_NEAR(board.Quantile(0.9).ValueOrDie(), 0.9, 0.08);
}

TEST(PublicBoardTest, ClearResets) {
  PublicBoard board;
  board.Record({1.0, 2.0});
  board.Clear();
  EXPECT_EQ(board.size(), 0u);
  EXPECT_EQ(board.total_recorded(), 0u);
  EXPECT_FALSE(board.Quantile(0.5).ok());
}

TEST(PublicBoardTest, QuantileCacheInvalidatedByRecord) {
  PublicBoard board;
  board.Record({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(board.Quantile(1.0).ValueOrDie(), 3.0);
  board.RecordOne(100.0);
  EXPECT_DOUBLE_EQ(board.Quantile(1.0).ValueOrDie(), 100.0);
}

TEST(PublicBoardTest, UnboundedWhenCapacityZero) {
  PublicBoard board(0, 3);
  for (int i = 0; i < 5000; ++i) board.RecordOne(static_cast<double>(i));
  EXPECT_EQ(board.size(), 5000u);
}

}  // namespace
}  // namespace itrim
