#include "game/strategy_space.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace itrim {
namespace {

TEST(StrategySpaceTest, MakeValidatesBounds) {
  EXPECT_TRUE(StrategySpace::Make(0.0, 1.0).ok());
  EXPECT_FALSE(StrategySpace::Make(1.0, 0.0).ok());
  EXPECT_FALSE(StrategySpace::Make(1.0, 1.0).ok());
  EXPECT_FALSE(StrategySpace::Make(0.0, INFINITY).ok());
}

TEST(StrategySpaceTest, Contains) {
  auto space = StrategySpace::Make(0.9, 0.99).ValueOrDie();
  EXPECT_TRUE(space.Contains(0.9));
  EXPECT_TRUE(space.Contains(0.95));
  EXPECT_TRUE(space.Contains(0.99));
  EXPECT_FALSE(space.Contains(0.89));
  EXPECT_FALSE(space.Contains(1.0));
}

TEST(ReduceToMixedTest, EndpointsArePure) {
  auto space = StrategySpace::Make(2.0, 10.0).ValueOrDie();
  auto left = space.ReduceToMixed(2.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(left.p_left, 1.0);
  EXPECT_DOUBLE_EQ(left.p_right, 0.0);
  auto right = space.ReduceToMixed(10.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(right.p_left, 0.0);
  EXPECT_DOUBLE_EQ(right.p_right, 1.0);
}

TEST(ReduceToMixedTest, MidpointIsHalfHalf) {
  auto space = StrategySpace::Make(0.0, 1.0).ValueOrDie();
  auto mid = space.ReduceToMixed(0.5).ValueOrDie();
  EXPECT_DOUBLE_EQ(mid.p_left, 0.5);
  EXPECT_DOUBLE_EQ(mid.p_right, 0.5);
}

TEST(ReduceToMixedTest, PositionRoundTrips) {
  auto space = StrategySpace::Make(0.9, 0.99).ValueOrDie();
  for (double x : {0.9, 0.91, 0.945, 0.99}) {
    auto mixed = space.ReduceToMixed(x).ValueOrDie();
    EXPECT_NEAR(mixed.Position(space.x_left(), space.x_right()), x, 1e-12);
    EXPECT_NEAR(mixed.p_left + mixed.p_right, 1.0, 1e-12);
  }
}

TEST(ReduceToMixedTest, OutsideDomainErrors) {
  auto space = StrategySpace::Make(0.0, 1.0).ValueOrDie();
  EXPECT_FALSE(space.ReduceToMixed(1.5).ok());
  EXPECT_FALSE(space.ReduceToMixed(-0.1).ok());
}

TEST(ReduceDistributionTest, MeanOfDistribution) {
  // Fig 1b: any poison distribution reduces to one mixed-strategy point.
  auto space = StrategySpace::Make(0.0, 1.0).ValueOrDie();
  auto mixed = space.ReduceDistribution({0.2, 0.4, 0.6});
  EXPECT_NEAR(mixed.Position(0.0, 1.0), 0.4, 1e-12);
}

TEST(ReduceDistributionTest, ClampsOutOfDomainSamples) {
  auto space = StrategySpace::Make(0.0, 1.0).ValueOrDie();
  auto mixed = space.ReduceDistribution({-5.0, 5.0});
  EXPECT_NEAR(mixed.Position(0.0, 1.0), 0.5, 1e-12);
}

TEST(ReduceDistributionTest, EmptyDefaultsToLeft) {
  auto space = StrategySpace::Make(0.0, 1.0).ValueOrDie();
  auto mixed = space.ReduceDistribution({});
  EXPECT_DOUBLE_EQ(mixed.p_left, 1.0);
}

TEST(SolveBalancePointTest, LinearCrossing) {
  // P(x) = x (rising poison loss), T(x) = 1 - x (falling trim overhead):
  // balance point at x = 0.5 (Fig 1a).
  auto result = SolveBalancePoint([](double x) { return x; },
                                  [](double x) { return 1.0 - x; }, 0.0, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(*result, 0.5, 1e-9);
}

TEST(SolveBalancePointTest, NonlinearCrossing) {
  auto result =
      SolveBalancePoint([](double x) { return x * x; },
                        [](double x) { return std::exp(-3.0 * x); }, 0.0, 2.0);
  ASSERT_TRUE(result.ok());
  double x = *result;
  EXPECT_NEAR(x * x, std::exp(-3.0 * x), 1e-8);
}

TEST(SolveBalancePointTest, NoSignChangeFails) {
  auto result = SolveBalancePoint([](double) { return 2.0; },
                                  [](double) { return 1.0; }, 0.0, 1.0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolveBalancePointTest, EndpointRoot) {
  auto result = SolveBalancePoint([](double x) { return x; },
                                  [](double) { return 0.0; }, 0.0, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 0.0);
}

TEST(SolveBalancePointTest, InvalidBracketRejected) {
  auto result = SolveBalancePoint([](double x) { return x; },
                                  [](double x) { return 1 - x; }, 1.0, 0.0);
  EXPECT_FALSE(result.ok());
}

// Property: reduction is linear — reducing a mixture of two distributions
// equals mixing the reductions.
class MixtureLinearityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixtureLinearityTest, ReductionIsLinear) {
  Rng rng(GetParam());
  auto space = StrategySpace::Make(0.9, 0.99).ValueOrDie();
  std::vector<double> d1, d2, merged;
  for (int i = 0; i < 100; ++i) {
    d1.push_back(rng.Uniform(0.9, 0.99));
    d2.push_back(rng.Uniform(0.9, 0.99));
  }
  merged = d1;
  merged.insert(merged.end(), d2.begin(), d2.end());
  double pos1 = space.ReduceDistribution(d1).Position(0.9, 0.99);
  double pos2 = space.ReduceDistribution(d2).Position(0.9, 0.99);
  double pos_merged = space.ReduceDistribution(merged).Position(0.9, 0.99);
  EXPECT_NEAR(pos_merged, 0.5 * (pos1 + pos2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixtureLinearityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace itrim
