#include "game/variants.h"

#include <gtest/gtest.h>

#include "game/collection_game.h"

namespace itrim {
namespace {

RoundContext Ctx(int round, double tth = 0.9) {
  RoundContext ctx;
  ctx.round = round;
  ctx.tth = tth;
  return ctx;
}

RoundObservation Obs(int round, double quality) {
  return RoundObservation{round, 0.91, 0.9, quality, 100, 90};
}

TEST(TitForTwoTatsTest, SingleBadRoundTolerated) {
  TitForTwoTatsCollector c(+0.01, -0.03, 0.8);
  c.Observe(Obs(1, 0.5));  // bad
  EXPECT_FALSE(c.triggered());
  c.Observe(Obs(2, 0.95));  // good resets the streak
  c.Observe(Obs(3, 0.5));   // bad again, still only one in a row
  EXPECT_FALSE(c.triggered());
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(4)), 0.91);
}

TEST(TitForTwoTatsTest, TwoConsecutiveBadRoundsTrigger) {
  TitForTwoTatsCollector c(+0.01, -0.03, 0.8);
  c.Observe(Obs(1, 0.5));
  c.Observe(Obs(2, 0.5));
  EXPECT_TRUE(c.triggered());
  EXPECT_EQ(c.termination_round(), 2);
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(3)), 0.87);
  // Permanent, like the paper's rigid trigger.
  c.Observe(Obs(3, 1.0));
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(4)), 0.87);
}

TEST(TitForTwoTatsTest, ResetRestores) {
  TitForTwoTatsCollector c(+0.01, -0.03, 0.8);
  c.Observe(Obs(1, 0.5));
  c.Observe(Obs(2, 0.5));
  ASSERT_TRUE(c.triggered());
  c.Reset();
  EXPECT_FALSE(c.triggered());
  EXPECT_EQ(c.termination_round(), 0);
}

TEST(TitForTwoTatsTest, NanQualityIgnored) {
  TitForTwoTatsCollector c(+0.01, -0.03, 0.8);
  c.Observe(Obs(1, std::nan("")));
  c.Observe(Obs(2, std::nan("")));
  EXPECT_FALSE(c.triggered());
}

TEST(GenerousTitfortatTest, PenaltyWindowExpires) {
  GenerousTitfortatCollector c(+0.01, -0.03, 0.8, /*generosity=*/0.0,
                               /*penalty_rounds=*/2, /*seed=*/1);
  c.Observe(Obs(1, 0.5));  // trigger: penalty for 2 rounds
  EXPECT_EQ(c.triggers(), 1);
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(2)), 0.87);
  c.Observe(Obs(2, 1.0));
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(3)), 0.87);
  c.Observe(Obs(3, 1.0));
  // Forgiven: back to soft.
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(4)), 0.91);
}

TEST(GenerousTitfortatTest, FullGenerosityNeverPunishes) {
  GenerousTitfortatCollector c(+0.01, -0.03, 0.8, /*generosity=*/1.0,
                               /*penalty_rounds=*/3, /*seed=*/2);
  for (int r = 1; r <= 20; ++r) c.Observe(Obs(r, 0.1));
  EXPECT_EQ(c.triggers(), 0);
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(21)), 0.91);
}

TEST(GenerousTitfortatTest, PartialGenerosityForgivesFraction) {
  GenerousTitfortatCollector c(+0.01, -0.03, 0.8, /*generosity=*/0.5,
                               /*penalty_rounds=*/0, /*seed=*/3);
  for (int r = 1; r <= 2000; ++r) c.Observe(Obs(r, 0.1));
  // About half of the 2000 defections should have been punished.
  EXPECT_GT(c.triggers(), 850);
  EXPECT_LT(c.triggers(), 1150);
}

TEST(GenerousTitfortatTest, RecordsFirstTrigger) {
  GenerousTitfortatCollector c(+0.01, -0.03, 0.8, 0.0, 1, 4);
  c.Observe(Obs(1, 0.95));
  c.Observe(Obs(2, 0.5));
  EXPECT_EQ(c.termination_round(), 2);
}

TEST(PavlovTest, WinStayLoseShift) {
  PavlovCollector c(+0.01, -0.03, 0.8);
  EXPECT_FALSE(c.playing_hard());
  c.Observe(Obs(1, 1.0));  // win: stay soft
  EXPECT_FALSE(c.playing_hard());
  c.Observe(Obs(2, 0.5));  // lose: shift to hard
  EXPECT_TRUE(c.playing_hard());
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(3)), 0.87);
  c.Observe(Obs(3, 0.5));  // lose again: shift back to soft
  EXPECT_FALSE(c.playing_hard());
  EXPECT_EQ(c.termination_round(), 2);
}

TEST(PavlovTest, ResetRestoresSoft) {
  PavlovCollector c(+0.01, -0.03, 0.8);
  c.Observe(Obs(1, 0.1));
  ASSERT_TRUE(c.playing_hard());
  c.Reset();
  EXPECT_FALSE(c.playing_hard());
}

// The variants must slot into a real game: two-tats tolerates the jittery
// adversary longer than the rigid trigger.
TEST(VariantsGameTest, TwoTatsTerminatesNoEarlierThanTitfortat) {
  Rng rng(9);
  std::vector<double> pool;
  for (int i = 0; i < 5000; ++i) pool.push_back(rng.Uniform());
  GameConfig config;
  config.rounds = 30;
  config.round_size = 400;
  config.attack_ratio = 0.2;
  config.tth = 0.9;
  config.seed = 21;

  auto run = [&](CollectorStrategy* collector) {
    MixedPercentileAdversary adversary(0.5);
    NoisyDefectShareQuality quality(0.90, 0.99, 0.02, 0.05, 77);
    ScalarCollectionGame game(config, &pool, collector, &adversary,
                              &quality);
    GameSummary summary = game.Run().ValueOrDie();
    return summary.termination_round == 0 ? config.rounds + 1
                                          : summary.termination_round;
  };
  TitfortatCollector rigid(+0.01, -0.03, 0.45);
  TitForTwoTatsCollector tolerant(+0.01, -0.03, 0.45);
  EXPECT_GE(run(&tolerant), run(&rigid));
}

}  // namespace
}  // namespace itrim
