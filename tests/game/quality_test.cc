#include "game/quality.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "game/public_board.h"

namespace itrim {
namespace {

// A board over uniform [0, 1] data so quantiles are predictable.
PublicBoard MakeUniformBoard(size_t n = 5000, uint64_t seed = 3) {
  PublicBoard board;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) board.RecordOne(rng.Uniform());
  return board;
}

std::vector<double> UniformRound(size_t n, Rng* rng) {
  std::vector<double> out;
  for (size_t i = 0; i < n; ++i) out.push_back(rng->Uniform());
  return out;
}

TEST(TailMassQualityTest, CleanDataScoresNearOne) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(5);
  TailMassQuality quality(0.9);
  auto round = UniformRound(2000, &rng);
  EXPECT_GT(quality.Evaluate(round, board), 0.97);
}

TEST(TailMassQualityTest, PoisonDropsQualityByAttackMass) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(7);
  TailMassQuality quality(0.9);
  auto round = UniformRound(1000, &rng);
  // Add 20% poison above the 0.9 quantile.
  for (int i = 0; i < 250; ++i) round.push_back(0.99);
  double q = quality.Evaluate(round, board);
  EXPECT_NEAR(q, 1.0 - 0.2, 0.03);
}

TEST(TailMassQualityTest, EmptyBoardScoresOne) {
  PublicBoard board;
  TailMassQuality quality(0.9);
  const std::vector<double> round = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quality.Evaluate(round, board), 1.0);
}

TEST(DefectShareQualityTest, EquilibriumPlayScoresHigh) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(9);
  DefectShareQuality quality(0.90, 0.99);
  auto round = UniformRound(1000, &rng);
  // All poison above the 99th percentile: equilibrium position.
  for (int i = 0; i < 200; ++i) round.push_back(0.999);
  EXPECT_GT(quality.Evaluate(round, board), 0.85);
}

TEST(DefectShareQualityTest, DefectPlayScoresLow) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(11);
  DefectShareQuality quality(0.90, 0.99);
  auto round = UniformRound(1000, &rng);
  // All poison inside the defect band (0.90, 0.99).
  for (int i = 0; i < 200; ++i) round.push_back(0.945);
  EXPECT_LT(quality.Evaluate(round, board), 0.15);
}

TEST(DefectShareQualityTest, MixedPlayScoresBetween) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(13);
  DefectShareQuality quality(0.90, 0.99);
  auto round = UniformRound(1000, &rng);
  for (int i = 0; i < 100; ++i) round.push_back(0.999);  // equilibrium half
  for (int i = 0; i < 100; ++i) round.push_back(0.945);  // defect half
  double q = quality.Evaluate(round, board);
  EXPECT_GT(q, 0.3);
  EXPECT_LT(q, 0.7);
}

TEST(DefectShareQualityTest, CleanRoundScoresOne) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(15);
  DefectShareQuality quality(0.90, 0.99);
  auto round = UniformRound(500, &rng);
  EXPECT_GT(quality.Evaluate(round, board), 0.4);  // no mass -> neutral/1
}

TEST(NoisyDefectShareQualityTest, NoiseIsBoundedToUnitInterval) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(17);
  NoisyDefectShareQuality quality(0.90, 0.99, 0.2, 0.2, 77);
  auto round = UniformRound(500, &rng);
  for (int i = 0; i < 50; ++i) {
    double q = quality.Evaluate(round, board);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

TEST(NoisyDefectShareQualityTest, ZeroNoiseMatchesInner) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(19);
  auto round = UniformRound(800, &rng);
  for (int i = 0; i < 150; ++i) round.push_back(0.999);
  DefectShareQuality inner(0.90, 0.99);
  NoisyDefectShareQuality noisy(0.90, 0.99, 0.0, 0.0, 5);
  EXPECT_DOUBLE_EQ(noisy.Evaluate(round, board),
                   inner.Evaluate(round, board));
}

TEST(NoisyDefectShareQualityTest, JitterVariesAcrossCalls) {
  PublicBoard board = MakeUniformBoard();
  Rng rng(21);
  auto round = UniformRound(800, &rng);
  for (int i = 0; i < 150; ++i) round.push_back(0.999);
  NoisyDefectShareQuality noisy(0.90, 0.99, 0.01, 0.02, 6);
  double a = noisy.Evaluate(round, board);
  double b = noisy.Evaluate(round, board);
  EXPECT_NE(a, b);
}

TEST(TitfortatTriggerQualityTest, SubtractsRedundancy) {
  EXPECT_DOUBLE_EQ(TitfortatTriggerQuality(0.95, 0.05), 0.9);
}

}  // namespace
}  // namespace itrim
