#include "game/equilibrium.h"

#include <gtest/gtest.h>

#include <cmath>

namespace itrim {
namespace {

TEST(ComplianceSettingTest, Validation) {
  ComplianceSetting s{1.0, 0.1, 0.9, 0.5};
  EXPECT_TRUE(s.Validate().ok());
  s.d = 1.0;
  EXPECT_FALSE(s.Validate().ok());
  s.d = 0.9;
  s.p = 1.5;
  EXPECT_FALSE(s.Validate().ok());
  s.p = 0.5;
  s.g_ac = 0.0;
  EXPECT_FALSE(s.Validate().ok());
  s.g_ac = 1.0;
  s.delta = -0.1;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(ComplianceValueTest, ClosedForms) {
  ComplianceSetting s{2.0, 0.5, 0.9, 0.5};
  // g_com = (g_ac - delta) / (1 - d) = 1.5 / 0.1 = 15.
  EXPECT_NEAR(ComplianceValue(s), 15.0, 1e-12);
  // g_def = g_ac / (1 - d p) = 2 / 0.55.
  EXPECT_NEAR(DefectionValue(s), 2.0 / 0.55, 1e-12);
}

TEST(Theorem3Test, BoundaryFormula) {
  // delta* = (d - dp)/(1 - dp) g_ac.
  EXPECT_NEAR(MaxSustainableCompromise(1.0, 0.9, 0.5),
              (0.9 - 0.45) / (1.0 - 0.45), 1e-12);
}

TEST(Theorem3Test, ComplianceIffDeltaBelowBoundary) {
  double g_ac = 3.0, d = 0.95, p = 0.4;
  double boundary = MaxSustainableCompromise(g_ac, d, p);
  ComplianceSetting below{g_ac, boundary * 0.99, d, p};
  ComplianceSetting above{g_ac, boundary * 1.01, d, p};
  EXPECT_TRUE(AdversaryComplies(below));
  EXPECT_FALSE(AdversaryComplies(above));
}

TEST(Theorem3Test, ComplianceEquivalentToValueComparison) {
  // delta < delta* must coincide with g_com > g_def (the theorem's proof).
  for (double d : {0.5, 0.8, 0.95}) {
    for (double p : {0.0, 0.3, 0.7, 0.99}) {
      for (double delta : {0.0, 0.1, 0.5, 0.9}) {
        ComplianceSetting s{1.0, delta, d, p};
        bool by_boundary = AdversaryComplies(s);
        bool by_values = ComplianceValue(s) > DefectionValue(s);
        EXPECT_EQ(by_boundary, by_values)
            << "d=" << d << " p=" << p << " delta=" << delta;
      }
    }
  }
}

TEST(Theorem3Test, PerfectEvasionForcesDefection) {
  // p = 1: the defector is never flagged, so no positive compromise
  // sustains compliance (boundary = 0).
  EXPECT_DOUBLE_EQ(MaxSustainableCompromise(1.0, 0.9, 1.0), 0.0);
  ComplianceSetting s{1.0, 0.01, 0.9, 1.0};
  EXPECT_FALSE(AdversaryComplies(s));
}

TEST(Theorem3Test, CertainDetectionMaximizesBoundary) {
  // p = 0: boundary = d * g_ac, the largest possible compromise.
  EXPECT_NEAR(MaxSustainableCompromise(2.0, 0.9, 0.0), 1.8, 1e-12);
}

TEST(Theorem3Test, BoundaryMonotoneDecreasingInP) {
  double prev = MaxSustainableCompromise(1.0, 0.9, 0.0);
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    double cur = MaxSustainableCompromise(1.0, 0.9, p);
    EXPECT_LT(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(SimulateDefectionTest, MatchesClosedForm) {
  Rng rng(17);
  for (double p : {0.0, 0.3, 0.6, 0.9}) {
    ComplianceSetting s{1.0, 0.0, 0.9, p};
    double simulated = SimulateDefectionValue(s, 20000, &rng);
    EXPECT_NEAR(simulated, DefectionValue(s), 0.05 * DefectionValue(s))
        << "p=" << p;
  }
}

TEST(TitfortatCompromiseBoundaryTest, UsesSymmetricGain) {
  UltimatumGame game(PayoffParams{10.0, 6.0, 1.0, 0.5});
  double d = 0.9, p = 0.5;
  double expected =
      MaxSustainableCompromise(game.SymmetricCooperationGain(), d, p);
  EXPECT_DOUBLE_EQ(TitfortatCompromiseBoundary(game, d, p), expected);
}

// Parameterized sweep of the compliance condition as a property:
// raising the discount d always helps cooperation.
class DiscountSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DiscountSweepTest, BoundaryIncreasesWithDiscount) {
  double p = GetParam();
  double prev = -1.0;
  for (double d = 0.1; d < 1.0; d += 0.1) {
    double boundary = MaxSustainableCompromise(1.0, d, p);
    EXPECT_GT(boundary, prev) << "d=" << d << " p=" << p;
    prev = boundary;
  }
}

INSTANTIATE_TEST_SUITE_P(JudgmentProbabilities, DiscountSweepTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.95));

}  // namespace
}  // namespace itrim
