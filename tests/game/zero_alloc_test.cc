// The zero-allocation contract of the streaming round hot path.
//
// ISSUE 4's tentpole claims steady-state TrimmingSession::Step() and
// (serial) SessionFleet::StepRound() perform zero heap allocations once
// scratch capacity is warm. These tests measure that claim directly with
// the counting allocator from bench/alloc_counter.h (linked into this
// binary via itrim_bench): warm the engine up, snapshot the calling
// thread's counters, play more rounds, and require an exact zero delta.
//
// The contract is defined for sessions whose score model has
// retain_survivors off (the streaming/fleet shape — an ever-growing
// survivor store is inherently allocating) and for fleets on the serial
// fast path (thread pools hand work to other threads through type-erased
// tasks; the 1-thread path is the one that must stay clean, and the only
// one a thread-local counter can observe faithfully).
#include "game/session.h"

#include <memory>
#include <vector>

#include "bench/alloc_counter.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "fleet/session_fleet.h"
#include "game/score_model.h"
#include "game/strategies.h"
#include "gtest/gtest.h"
#include "game/reference_policy.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"
#include "ldp/report_score_model.h"
#include "ml/linreg.h"
#include "ml/residual_score_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itrim {
namespace {

// Steps `rounds` rounds and returns the allocation delta on this thread.
uint64_t AllocationsOver(TrimmingSession* session, int rounds) {
  bench::AllocCounts before = bench::ThreadAllocCounts();
  for (int i = 0; i < rounds; ++i) {
    auto record = session->Step();
    EXPECT_TRUE(record.ok()) << record.status().ToString();
  }
  return (bench::ThreadAllocCounts() - before).allocations;
}

GameConfig StreamingConfig(bool round_mass_trimming) {
  GameConfig config;
  config.rounds = 200;  // generous horizon: records_ reserve covers the test
  config.round_size = 60;
  config.attack_ratio = 0.15;
  config.bootstrap_size = 80;
  config.board_capacity = 64;  // small cap: exercises reservoir replacement
  config.round_mass_trimming = round_mass_trimming;
  config.seed = 97;
  return config;
}

constexpr int kWarmupRounds = 20;
constexpr int kMeasuredRounds = 50;

TEST(ZeroAllocTest, CountingAllocatorSeesThisThread) {
  bench::AllocCounts before = bench::ThreadAllocCounts();
  { std::vector<double> v(1000, 1.0); }
  bench::AllocCounts delta = bench::ThreadAllocCounts() - before;
  EXPECT_GE(delta.allocations, 1u);
  EXPECT_GE(delta.bytes, 1000 * sizeof(double));
  EXPECT_GE(delta.deallocations, 1u);
}

TEST(ZeroAllocTest, ScalarSessionSteadyStateStepIsAllocationFree) {
  std::vector<double> pool;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) pool.push_back(rng.Uniform());
  for (bool round_mass : {false, true}) {
    SCOPED_TRACE(round_mass ? "round_mass" : "board_reference");
    IdentityScoreModel model(&pool);
    model.set_retain_survivors(false);
    ElasticCollector collector(0.5);
    ElasticAdversary adversary(0.5);
    TailMassQuality quality(0.9);
    TrimmingSession session(StreamingConfig(round_mass), &model, &collector,
                            &adversary, &quality);
    ASSERT_TRUE(session.Bootstrap().ok());
    AllocationsOver(&session, kWarmupRounds);
    EXPECT_EQ(AllocationsOver(&session, kMeasuredRounds), 0u);
  }
}

TEST(ZeroAllocTest, DistanceSessionSteadyStateStepIsAllocationFree) {
  Dataset data = MakeControl(5, 80);
  for (bool round_mass : {false, true}) {
    SCOPED_TRACE(round_mass ? "round_mass" : "board_reference");
    DistanceScoreModel model(&data);
    model.set_retain_survivors(false);
    ElasticCollector collector(0.1);
    ElasticAdversary adversary(0.1);
    TrimmingSession session(StreamingConfig(round_mass), &model, &collector,
                            &adversary, nullptr);
    ASSERT_TRUE(session.Bootstrap().ok());
    AllocationsOver(&session, kWarmupRounds);
    EXPECT_EQ(AllocationsOver(&session, kMeasuredRounds), 0u);
  }
}

TEST(ZeroAllocTest, LdpSessionSteadyStateStepIsAllocationFree) {
  std::vector<double> population;
  Rng rng(13);
  for (int i = 0; i < 1500; ++i) population.push_back(rng.Uniform(-1.0, 1.0));
  PiecewiseMechanism mechanism(2.0);
  InputManipulationAttack attack(1.0);
  GameConfig config = StreamingConfig(false);
  LdpReportScoreModel model(&population, &mechanism, &attack, config.tth);
  model.set_retain_survivors(false);
  ElasticCollector collector(0.5);
  TrimmingSession session(config, &model, &collector, nullptr, nullptr);
  ASSERT_TRUE(session.Bootstrap().ok());
  AllocationsOver(&session, kWarmupRounds);
  EXPECT_EQ(AllocationsOver(&session, kMeasuredRounds), 0u);
}

// The residual workload's hot path — batched kernel scoring plus a full
// refit-and-reselect inside FittedModelReference::TrimRound every round —
// must also settle to zero: the regressor's normal-equation scratch, the
// policy's residual/order/gather buffers and the model's row store are all
// reused once warm.
TEST(ZeroAllocTest, ResidualSessionSteadyStateStepIsAllocationFree) {
  RegressionData source = MakeSyntheticRegression(800, 3, 0.05, 59);
  for (bool fitted : {false, true}) {
    SCOPED_TRACE(fitted ? "fitted_model" : "percentile");
    ResidualScoreModel model(&source);
    model.set_retain_survivors(false);
    ElasticCollector collector(0.5);
    ElasticAdversary adversary(0.5);
    FittedModelReference reference;
    TrimmingSession session(StreamingConfig(false), &model, &collector,
                            &adversary, nullptr,
                            fitted ? &reference : nullptr);
    ASSERT_TRUE(session.Bootstrap().ok());
    AllocationsOver(&session, kWarmupRounds);
    EXPECT_EQ(AllocationsOver(&session, kMeasuredRounds), 0u);
  }
}

// The observability contract (ISSUE 10): recording into attached metric
// slots and trace rings is wait-free on preallocated storage, so the
// steady-state hot path stays allocation-free with metrics ENABLED — the
// session arm of the same proof the plain arms above run unobserved.
TEST(ZeroAllocTest, InstrumentedSessionSteadyStateStepIsAllocationFree) {
  std::vector<double> pool;
  Rng rng(41);
  for (int i = 0; i < 2000; ++i) pool.push_back(rng.Uniform());
  obs::MetricsRegistry registry;
  obs::MetricSlot* slot = registry.AddSlot("session");
  obs::TraceBuffer trace(256);
  IdentityScoreModel model(&pool);
  model.set_retain_survivors(false);
  ElasticCollector collector(0.5);
  ElasticAdversary adversary(0.5);
  TailMassQuality quality(0.9);
  TrimmingSession session(StreamingConfig(false), &model, &collector,
                          &adversary, &quality);
  SessionObs sinks;
  sinks.metrics = slot;
  sinks.trace = &trace;
  sinks.tenant = 3;
  session.set_observability(sinks);
  ASSERT_TRUE(session.Bootstrap().ok());
  AllocationsOver(&session, kWarmupRounds);
  EXPECT_EQ(AllocationsOver(&session, kMeasuredRounds), 0u);
  if constexpr (obs::kEnabled) {
    // The recording actually happened — this arm must not pass vacuously.
    EXPECT_EQ(slot->Get(obs::Counter::kSessionRoundsPlayed),
              static_cast<uint64_t>(kWarmupRounds + kMeasuredRounds));
    EXPECT_GT(trace.recorded(), 0u);
  }
}

// Fleet arm of the instrumented proof: round wall-time histogram and the
// tenant-quantile gauges recorded every StepRound, still zero allocations.
TEST(ZeroAllocTest, InstrumentedSerialFleetStepRoundIsAllocationFree) {
  std::vector<double> pool;
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) pool.push_back(rng.Uniform());
  std::vector<TenantSpec> specs;
  for (size_t i = 0; i < 6; ++i) {
    TenantSpec spec;
    spec.model = TenantModelKind::kScalar;
    spec.scalar_pool = &pool;
    spec.game = StreamingConfig((i % 2) == 0);
    specs.push_back(spec);
  }
  FleetConfig config;
  config.rounds = 200;
  config.threads = 1;
  config.seed = 37;
  SessionFleet fleet(config, std::move(specs));
  obs::MetricsRegistry registry;
  obs::MetricSlot* fleet_slot = registry.AddSlot("fleet");
  obs::TraceBuffer trace(512);
  fleet.AttachObservability(fleet_slot);
  ASSERT_TRUE(fleet.Bootstrap().ok());
  for (size_t i = 0; i < fleet.num_tenants(); ++i) {
    SessionObs sinks;
    sinks.metrics = fleet_slot;
    sinks.trace = &trace;
    sinks.tenant = i;
    ASSERT_TRUE(fleet.AttachTenantObservability(i, sinks).ok());
  }
  for (int r = 0; r < kWarmupRounds; ++r) {
    ASSERT_TRUE(fleet.StepRound().ok());
  }
  bench::AllocCounts before = bench::ThreadAllocCounts();
  for (int r = 0; r < kMeasuredRounds; ++r) {
    ASSERT_TRUE(fleet.StepRound().ok());
  }
  EXPECT_EQ((bench::ThreadAllocCounts() - before).allocations, 0u);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(fleet_slot->Get(obs::Counter::kSessionRoundsPlayed),
              static_cast<uint64_t>(6 * (kWarmupRounds + kMeasuredRounds)));
    EXPECT_EQ(fleet_slot->Get(obs::Gauge::kFleetRound),
              static_cast<double>(kWarmupRounds + kMeasuredRounds));
  }
}

// The retaining mode is *expected* to allocate (that is what an append-only
// survivor store does); this guards the test methodology against a silent
// counting-allocator regression that would make every measurement zero.
TEST(ZeroAllocTest, RetainingSessionDoesAllocate) {
  std::vector<double> pool;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) pool.push_back(rng.Uniform());
  IdentityScoreModel model(&pool);
  ASSERT_TRUE(model.retain_survivors());  // batch-game default
  ElasticCollector collector(0.5);
  ElasticAdversary adversary(0.5);
  TrimmingSession session(StreamingConfig(false), &model, &collector,
                          &adversary, nullptr);
  ASSERT_TRUE(session.Bootstrap().ok());
  AllocationsOver(&session, kWarmupRounds);
  EXPECT_GT(AllocationsOver(&session, kMeasuredRounds), 0u);
}

// Fleet counterpart: a heterogeneous serial fleet's StepRound settles to
// zero allocations once the per-round scratch is warm.
TEST(ZeroAllocTest, SerialFleetSteadyStateStepRoundIsAllocationFree) {
  std::vector<double> pool;
  std::vector<double> population;
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) pool.push_back(rng.Uniform());
  for (int i = 0; i < 1500; ++i) population.push_back(rng.Uniform(-1.0, 1.0));
  Dataset data = MakeControl(7, 60);
  PiecewiseMechanism mechanism(2.0);
  RegressionData regression = MakeSyntheticRegression(800, 2, 0.05, 67);
  std::vector<std::unique_ptr<LdpAttack>> attacks;

  const std::vector<SchemeId> schemes = AllSchemes();
  std::vector<TenantSpec> specs;
  const size_t tenants = 12;
  for (size_t i = 0; i < tenants; ++i) {
    TenantSpec spec;
    spec.model = static_cast<TenantModelKind>(i % 4);
    spec.scheme = schemes[i % schemes.size()];
    spec.game = StreamingConfig((i % 2) == 0);
    ASSERT_FALSE(spec.retain_survivors);  // the fleet default is streaming
    switch (spec.model) {
      case TenantModelKind::kScalar:
        spec.scalar_pool = &pool;
        break;
      case TenantModelKind::kDistance:
        spec.dataset = &data;
        break;
      case TenantModelKind::kLdp:
        spec.ldp_population = &population;
        spec.ldp_mechanism = &mechanism;
        attacks.push_back(std::make_unique<InputManipulationAttack>(1.0));
        spec.ldp_attack = attacks.back().get();
        break;
      case TenantModelKind::kResidual:
        spec.regression = &regression;
        // Alternate the two reference policies across residual tenants.
        spec.reference = (i % 8) < 4 ? TenantReferenceKind::kFittedModel
                                     : TenantReferenceKind::kPercentile;
        break;
    }
    specs.push_back(spec);
  }

  FleetConfig config;
  config.rounds = 200;
  config.threads = 1;  // the serial fast path is the zero-alloc contract
  config.seed = 31;
  SessionFleet fleet(config, std::move(specs));
  ASSERT_TRUE(fleet.Bootstrap().ok());
  for (int r = 0; r < kWarmupRounds; ++r) {
    ASSERT_TRUE(fleet.StepRound().ok());
  }
  bench::AllocCounts before = bench::ThreadAllocCounts();
  for (int r = 0; r < kMeasuredRounds; ++r) {
    ASSERT_TRUE(fleet.StepRound().ok());
  }
  EXPECT_EQ((bench::ThreadAllocCounts() - before).allocations, 0u);
}

}  // namespace
}  // namespace itrim
