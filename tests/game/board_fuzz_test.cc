// Differential fuzzing of the IndexedBoard order statistics against the
// sorted oracle, concentrated on the path indexed_board_test.cc covers
// least: the board_capacity reservoir boundary, where every record past
// capacity becomes an EraseOne(old slot value) + Insert(new value) pair on
// the index while the multiset size stays pinned at the cap.
//
// The interleavings are adversarial rather than uniform: monotone runs
// (degenerate insertion orders for a balanced tree), duplicate floods
// (equal-key split/merge ties), sign-flipping extremes (interpolation
// across huge gaps), and hover loops that keep the size oscillating
// exactly at the boundary. Every check is exact — bitwise agreement with
// QuantileSorted / PercentileRankSorted over the same multiset — so any
// divergence, however small, is a treap bug, not noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "game/indexed_board.h"
#include "game/public_board.h"
#include "stats/quantile.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

// Adversarial value generators; `step` counts calls so monotone patterns
// keep marching across Clear()s.
enum class ValuePattern {
  kUniform,
  kAscending,
  kDescending,
  kDuplicateFlood,
  kSignFlipExtremes,
};

std::string PatternName(ValuePattern p) {
  switch (p) {
    case ValuePattern::kUniform:
      return "Uniform";
    case ValuePattern::kAscending:
      return "Ascending";
    case ValuePattern::kDescending:
      return "Descending";
    case ValuePattern::kDuplicateFlood:
      return "DuplicateFlood";
    case ValuePattern::kSignFlipExtremes:
      return "SignFlipExtremes";
  }
  return "Unknown";
}

double DrawValue(ValuePattern pattern, size_t step, Rng* rng) {
  switch (pattern) {
    case ValuePattern::kUniform:
      return rng->Uniform(-4.0, 4.0);
    case ValuePattern::kAscending:
      return static_cast<double>(step) + rng->Uniform() * 0.25;
    case ValuePattern::kDescending:
      return -static_cast<double>(step) - rng->Uniform() * 0.25;
    case ValuePattern::kDuplicateFlood:
      // Five distinct keys only: every split/merge hits equal-key ties.
      return static_cast<double>(rng->UniformInt(5));
    case ValuePattern::kSignFlipExtremes:
      return (step % 2 == 0 ? 1.0 : -1.0) *
             (rng->Bernoulli(0.5) ? 1e300 : 1e-300);
  }
  return 0.0;
}

// Exhaustive cross-check of one multiset state: every k, every boundary q,
// and ranks probed at the stored values themselves (the <= tie path) plus
// nudges on both sides.
void CheckAllOrderStatistics(const IndexedBoard& board,
                             std::vector<double> mirror) {
  std::sort(mirror.begin(), mirror.end());
  ASSERT_EQ(board.size(), mirror.size());
  if (mirror.empty()) {
    EXPECT_FALSE(board.Quantile(0.5).ok());
    EXPECT_TRUE(BitEqual(board.PercentileRank(0.0), 0.0));
    return;
  }
  for (size_t k = 0; k < mirror.size(); ++k) {
    ASSERT_TRUE(BitEqual(board.Kth(k), mirror[k])) << "k=" << k;
  }
  const size_t n = mirror.size();
  std::vector<double> probes = {0.0, 1.0, 0.5};
  for (size_t i = 0; i < n; ++i) {
    // The prctile interpolation knots (i + 0.5) / n and the raw ranks.
    probes.push_back((static_cast<double>(i) + 0.5) / static_cast<double>(n));
    probes.push_back(static_cast<double>(i) / static_cast<double>(n));
  }
  for (double q : probes) {
    ASSERT_TRUE(BitEqual(board.Quantile(q).ValueOrDie(),
                         QuantileSorted(mirror, q)))
        << "q=" << q;
  }
  for (size_t i = 0; i < n; ++i) {
    for (double x : {mirror[i], std::nextafter(mirror[i], 1e308),
                     std::nextafter(mirror[i], -1e308)}) {
      ASSERT_TRUE(BitEqual(board.PercentileRank(x),
                           PercentileRankSorted(mirror, x)))
          << "x=" << x;
    }
  }
}

class BoardFuzzTest : public ::testing::TestWithParam<ValuePattern> {};

// Phase 1: the raw index under reservoir-shaped churn. Fill to a boundary
// B, then hover: each op replaces a random resident value (EraseOne +
// Insert — the exact call pair PublicBoard::RecordOne issues past
// capacity), with occasional dips below and bursts above the boundary.
TEST_P(BoardFuzzTest, ReservoirShapedChurnMatchesSortedOracle) {
  const ValuePattern pattern = GetParam();
  SCOPED_TRACE(PatternName(pattern));
  for (size_t boundary : {1u, 2u, 3u, 8u, 33u}) {
    SCOPED_TRACE("boundary " + std::to_string(boundary));
    IndexedBoard board;
    std::vector<double> mirror;  // unsorted multiset mirror
    Rng rng(1000 + boundary);
    size_t step = 0;
    for (int op = 0; op < 1200; ++op) {
      double roll = rng.Uniform();
      if (mirror.size() < boundary ||
          (roll < 0.15 && mirror.size() < 2 * boundary)) {
        double v = DrawValue(pattern, step++, &rng);
        board.Insert(v);
        mirror.push_back(v);
      } else if (roll < 0.85 || mirror.empty()) {
        // The replacement pair, against a random resident slot.
        size_t slot = static_cast<size_t>(rng.UniformInt(mirror.size()));
        ASSERT_TRUE(board.EraseOne(mirror[slot]));
        double v = DrawValue(pattern, step++, &rng);
        board.Insert(v);
        mirror[slot] = v;
      } else {
        // Dip below the boundary.
        size_t slot = static_cast<size_t>(rng.UniformInt(mirror.size()));
        ASSERT_TRUE(board.EraseOne(mirror[slot]));
        mirror[slot] = mirror.back();
        mirror.pop_back();
      }
      if (op % 37 == 0 || mirror.size() == boundary) {
        CheckAllOrderStatistics(board, mirror);
      }
    }
    CheckAllOrderStatistics(board, mirror);
  }
}

// Phase 2: PublicBoard end to end at tiny capacities, checked after every
// single record while the stream crosses the boundary — the first
// replacement, the steady state, and a mid-stream Clear + refill.
TEST_P(BoardFuzzTest, PublicBoardAtReservoirBoundaryMatchesSortedOracle) {
  const ValuePattern pattern = GetParam();
  SCOPED_TRACE(PatternName(pattern));
  for (size_t capacity : {1u, 2u, 3u, 7u, 64u}) {
    SCOPED_TRACE("capacity " + std::to_string(capacity));
    PublicBoard board(capacity, /*seed=*/capacity * 31 + 7);
    Rng rng(500 + capacity);
    size_t step = 0;
    for (int op = 0; op < 900; ++op) {
      if (op == 450) {
        board.Clear();
        EXPECT_EQ(board.size(), 0u);
      }
      board.RecordOne(DrawValue(pattern, step++, &rng));
      ASSERT_LE(board.size(), capacity);
      std::vector<double> sorted = board.values();
      std::sort(sorted.begin(), sorted.end());
      double q = rng.Uniform();
      ASSERT_TRUE(BitEqual(board.Quantile(q).ValueOrDie(),
                           QuantileSorted(sorted, q)));
      ASSERT_TRUE(BitEqual(board.Quantile(0.0).ValueOrDie(), sorted.front()));
      ASSERT_TRUE(BitEqual(board.Quantile(1.0).ValueOrDie(), sorted.back()));
      double x = sorted[rng.UniformInt(sorted.size())];
      ASSERT_TRUE(
          BitEqual(board.PercentileRank(x), PercentileRankSorted(sorted, x)));
      ASSERT_TRUE(BitEqual(board.PercentileRank(x - 0.5),
                           PercentileRankSorted(sorted, x - 0.5)));
    }
    // The reservoir really did engage: far more arrived than is held.
    EXPECT_EQ(board.size(), std::min<size_t>(capacity, 450));
    EXPECT_EQ(board.total_recorded(), 450u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, BoardFuzzTest,
    ::testing::Values(ValuePattern::kUniform, ValuePattern::kAscending,
                      ValuePattern::kDescending,
                      ValuePattern::kDuplicateFlood,
                      ValuePattern::kSignFlipExtremes),
    [](const auto& info) { return PatternName(info.param); });

}  // namespace
}  // namespace itrim
