// Differential fuzzing of BOTH order-statistic backends (the flat B-tree
// board and the size-augmented treap) against the sorted oracle *and each
// other* in the same pass, concentrated on the path the unit tests cover
// least: the board_capacity reservoir boundary, where every record past
// capacity becomes an EraseOne(old slot value) + Insert(new value) pair on
// the index while the multiset size stays pinned at the cap.
//
// The interleavings are adversarial rather than uniform: monotone runs
// (degenerate insertion orders for a balanced tree, leaf-split stress for
// the flat board), duplicate floods (equal-key split/merge ties), sign-
// flipping extremes (interpolation across huge gaps), and hover loops that
// keep the size oscillating exactly at the boundary. Every check is exact —
// bitwise agreement with QuantileSorted / PercentileRankSorted over the
// same multiset, and bitwise agreement between the two backends — so any
// divergence, however small, is a backend bug, not noise.
//
// ITRIM_BOARD_FUZZ_OPS scales the per-case op count (default 1200 / 900).
// The sanitizer CI leg runs a short-iteration variant through this knob so
// ASan/UBSan still sweep the leaf memmove / rebalance paths without paying
// the full differential budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "game/flat_order_board.h"
#include "game/indexed_board.h"
#include "game/public_board.h"
#include "stats/quantile.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

// Per-case op budget, overridable for the short sanitizer sweep.
int FuzzOps(int default_ops) {
  if (const char* env = std::getenv("ITRIM_BOARD_FUZZ_OPS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_ops;
}

// Adversarial value generators; `step` counts calls so monotone patterns
// keep marching across Clear()s.
enum class ValuePattern {
  kUniform,
  kAscending,
  kDescending,
  kDuplicateFlood,
  kSignFlipExtremes,
};

std::string PatternName(ValuePattern p) {
  switch (p) {
    case ValuePattern::kUniform:
      return "Uniform";
    case ValuePattern::kAscending:
      return "Ascending";
    case ValuePattern::kDescending:
      return "Descending";
    case ValuePattern::kDuplicateFlood:
      return "DuplicateFlood";
    case ValuePattern::kSignFlipExtremes:
      return "SignFlipExtremes";
  }
  return "Unknown";
}

double DrawValue(ValuePattern pattern, size_t step, Rng* rng) {
  switch (pattern) {
    case ValuePattern::kUniform:
      return rng->Uniform(-4.0, 4.0);
    case ValuePattern::kAscending:
      return static_cast<double>(step) + rng->Uniform() * 0.25;
    case ValuePattern::kDescending:
      return -static_cast<double>(step) - rng->Uniform() * 0.25;
    case ValuePattern::kDuplicateFlood:
      // Five distinct keys only: every split/merge hits equal-key ties.
      return static_cast<double>(rng->UniformInt(5));
    case ValuePattern::kSignFlipExtremes:
      return (step % 2 == 0 ? 1.0 : -1.0) *
             (rng->Bernoulli(0.5) ? 1e300 : 1e-300);
  }
  return 0.0;
}

// Exhaustive cross-check of one multiset state on both backends: every k,
// every boundary q, and ranks probed at the stored values themselves (the
// <= tie path) plus nudges on both sides. Each backend is checked against
// the sorted oracle AND against the other backend, bitwise.
void CheckAllOrderStatistics(const FlatOrderBoard& flat,
                             const IndexedBoard& treap,
                             std::vector<double> mirror) {
  std::sort(mirror.begin(), mirror.end());
  ASSERT_EQ(flat.size(), mirror.size());
  ASSERT_EQ(treap.size(), mirror.size());
  if (mirror.empty()) {
    EXPECT_FALSE(flat.Quantile(0.5).ok());
    EXPECT_FALSE(treap.Quantile(0.5).ok());
    EXPECT_TRUE(BitEqual(flat.PercentileRank(0.0), 0.0));
    EXPECT_TRUE(BitEqual(treap.PercentileRank(0.0), 0.0));
    return;
  }
  for (size_t k = 0; k < mirror.size(); ++k) {
    ASSERT_TRUE(BitEqual(flat.Kth(k), mirror[k])) << "flat k=" << k;
    ASSERT_TRUE(BitEqual(treap.Kth(k), mirror[k])) << "treap k=" << k;
    ASSERT_TRUE(BitEqual(flat.Kth(k), treap.Kth(k))) << "cross k=" << k;
  }
  const size_t n = mirror.size();
  std::vector<double> probes = {0.0, 1.0, 0.5};
  for (size_t i = 0; i < n; ++i) {
    // The prctile interpolation knots (i + 0.5) / n and the raw ranks.
    probes.push_back((static_cast<double>(i) + 0.5) / static_cast<double>(n));
    probes.push_back(static_cast<double>(i) / static_cast<double>(n));
  }
  for (double q : probes) {
    const double want = QuantileSorted(mirror, q);
    ASSERT_TRUE(BitEqual(flat.Quantile(q).ValueOrDie(), want))
        << "flat q=" << q;
    ASSERT_TRUE(BitEqual(treap.Quantile(q).ValueOrDie(), want))
        << "treap q=" << q;
  }
  for (size_t i = 0; i < n; ++i) {
    for (double x : {mirror[i], std::nextafter(mirror[i], 1e308),
                     std::nextafter(mirror[i], -1e308)}) {
      const double want = PercentileRankSorted(mirror, x);
      ASSERT_TRUE(BitEqual(flat.PercentileRank(x), want)) << "flat x=" << x;
      ASSERT_TRUE(BitEqual(treap.PercentileRank(x), want)) << "treap x=" << x;
    }
  }
}

class BoardFuzzTest : public ::testing::TestWithParam<ValuePattern> {};

// Phase 1: both raw indexes under reservoir-shaped churn, fed the same op
// stream. Fill to a boundary B, then hover: each op replaces a random
// resident value (EraseOne + Insert — the exact call pair
// PublicBoard::RecordOne issues past capacity), with occasional dips below
// and bursts above the boundary.
TEST_P(BoardFuzzTest, ReservoirShapedChurnMatchesSortedOracle) {
  const ValuePattern pattern = GetParam();
  SCOPED_TRACE(PatternName(pattern));
  const int ops = FuzzOps(1200);
  for (size_t boundary : {1u, 2u, 3u, 8u, 33u}) {
    SCOPED_TRACE("boundary " + std::to_string(boundary));
    FlatOrderBoard flat;
    IndexedBoard treap;
    std::vector<double> mirror;  // unsorted multiset mirror
    Rng rng(1000 + boundary);
    size_t step = 0;
    for (int op = 0; op < ops; ++op) {
      double roll = rng.Uniform();
      if (mirror.size() < boundary ||
          (roll < 0.15 && mirror.size() < 2 * boundary)) {
        double v = DrawValue(pattern, step++, &rng);
        flat.Insert(v);
        treap.Insert(v);
        mirror.push_back(v);
      } else if (roll < 0.85 || mirror.empty()) {
        // The replacement pair, against a random resident slot.
        size_t slot = static_cast<size_t>(rng.UniformInt(mirror.size()));
        ASSERT_TRUE(flat.EraseOne(mirror[slot]));
        ASSERT_TRUE(treap.EraseOne(mirror[slot]));
        double v = DrawValue(pattern, step++, &rng);
        flat.Insert(v);
        treap.Insert(v);
        mirror[slot] = v;
      } else {
        // Dip below the boundary.
        size_t slot = static_cast<size_t>(rng.UniformInt(mirror.size()));
        ASSERT_TRUE(flat.EraseOne(mirror[slot]));
        ASSERT_TRUE(treap.EraseOne(mirror[slot]));
        mirror[slot] = mirror.back();
        mirror.pop_back();
      }
      if (op % 37 == 0 || mirror.size() == boundary) {
        CheckAllOrderStatistics(flat, treap, mirror);
      }
    }
    CheckAllOrderStatistics(flat, treap, mirror);
  }
}

// Phase 2: PublicBoard end to end at tiny capacities, one board per
// backend fed the identical stream from the same reservoir seed, checked
// after every single record while the stream crosses the boundary — the
// first replacement, the steady state, and a mid-stream Clear + refill.
// Identical seeds mean identical reservoir decisions, so the two boards
// must stay bit-identical in slot order, not just as multisets.
TEST_P(BoardFuzzTest, PublicBoardAtReservoirBoundaryMatchesSortedOracle) {
  const ValuePattern pattern = GetParam();
  SCOPED_TRACE(PatternName(pattern));
  const int ops = FuzzOps(900);
  const int clear_at = ops / 2;
  for (size_t capacity : {1u, 2u, 3u, 7u, 64u}) {
    SCOPED_TRACE("capacity " + std::to_string(capacity));
    const uint64_t seed = capacity * 31 + 7;
    PublicBoard flat(capacity, seed, BoardBackend::kFlat);
    PublicBoard treap(capacity, seed, BoardBackend::kTreap);
    Rng rng(500 + capacity);
    size_t step = 0;
    for (int op = 0; op < ops; ++op) {
      if (op == clear_at) {
        flat.Clear();
        treap.Clear();
        EXPECT_EQ(flat.size(), 0u);
      }
      double v = DrawValue(pattern, step++, &rng);
      flat.RecordOne(v);
      treap.RecordOne(v);
      ASSERT_LE(flat.size(), capacity);
      ASSERT_EQ(flat.values(), treap.values());  // same reservoir decisions
      std::vector<double> sorted = flat.values();
      std::sort(sorted.begin(), sorted.end());
      double q = rng.Uniform();
      const double want_q = QuantileSorted(sorted, q);
      ASSERT_TRUE(BitEqual(flat.Quantile(q).ValueOrDie(), want_q));
      ASSERT_TRUE(BitEqual(treap.Quantile(q).ValueOrDie(), want_q));
      ASSERT_TRUE(BitEqual(flat.Quantile(0.0).ValueOrDie(), sorted.front()));
      ASSERT_TRUE(BitEqual(flat.Quantile(1.0).ValueOrDie(), sorted.back()));
      double x = sorted[rng.UniformInt(sorted.size())];
      const double want_x = PercentileRankSorted(sorted, x);
      ASSERT_TRUE(BitEqual(flat.PercentileRank(x), want_x));
      ASSERT_TRUE(BitEqual(treap.PercentileRank(x), want_x));
      ASSERT_TRUE(BitEqual(flat.PercentileRank(x - 0.5),
                           PercentileRankSorted(sorted, x - 0.5)));
    }
    // The reservoir really did engage: far more arrived than is held.
    EXPECT_EQ(flat.size(),
              std::min<size_t>(capacity, static_cast<size_t>(clear_at)));
    EXPECT_EQ(flat.total_recorded(), static_cast<size_t>(clear_at));
    EXPECT_EQ(treap.total_recorded(), flat.total_recorded());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, BoardFuzzTest,
    ::testing::Values(ValuePattern::kUniform, ValuePattern::kAscending,
                      ValuePattern::kDescending,
                      ValuePattern::kDuplicateFlood,
                      ValuePattern::kSignFlipExtremes),
    [](const auto& info) { return PatternName(info.param); });

}  // namespace
}  // namespace itrim
