#include "game/trimmer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace itrim {
namespace {

TEST(TrimAboveValueTest, StrictlyAboveRemoved) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  auto outcome = TrimAboveValue(values, 2.0);
  EXPECT_EQ(outcome.kept_count, 2u);
  EXPECT_EQ(outcome.removed_count, 2u);
  EXPECT_EQ(outcome.keep[0], 1);
  EXPECT_EQ(outcome.keep[1], 1);  // tie at the cutoff survives
  EXPECT_EQ(outcome.keep[2], 0);
  EXPECT_EQ(outcome.keep[3], 0);
  EXPECT_DOUBLE_EQ(outcome.cutoff, 2.0);
}

TEST(TrimAboveValueTest, EmptyInput) {
  auto outcome = TrimAboveValue({}, 1.0);
  EXPECT_EQ(outcome.kept_count, 0u);
  EXPECT_EQ(outcome.removed_count, 0u);
}

TEST(TrimAtReferencePercentileTest, CutoffFromReference) {
  std::vector<double> reference = {1.0, 2.0, 3.0, 4.0, 5.0,
                                   6.0, 7.0, 8.0, 9.0, 10.0};
  std::vector<double> round = {0.5, 5.0, 9.9, 20.0};
  auto outcome =
      TrimAtReferencePercentile(round, reference, 0.9).ValueOrDie();
  // 0.9-quantile of the reference is 9.5: 9.9 and 20.0 are removed.
  EXPECT_EQ(outcome.kept_count, 2u);
  EXPECT_EQ(outcome.keep[0], 1);
  EXPECT_EQ(outcome.keep[1], 1);
  EXPECT_EQ(outcome.keep[2], 0);
  EXPECT_EQ(outcome.keep[3], 0);
}

TEST(TrimAtReferencePercentileTest, EmptyReferenceFails) {
  const std::vector<double> round = {1.0};
  auto outcome = TrimAtReferencePercentile(round, {}, 0.9);
  EXPECT_FALSE(outcome.ok());
}

TEST(TrimAtReferencePercentileTest, QAtLeastOneKeepsEverything) {
  const std::vector<double> round = {100.0};
  auto outcome = TrimAtReferencePercentile(round, {1.0}, 1.0).ValueOrDie();
  EXPECT_EQ(outcome.kept_count, 1u);
  EXPECT_TRUE(std::isinf(outcome.cutoff));
}

TEST(TrimTopFractionTest, RemovesExactCount) {
  std::vector<double> v = {5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 0.0};
  auto outcome = TrimTopFraction(v, 0.8);  // remove top 20% = 2 values
  EXPECT_EQ(outcome.removed_count, 2u);
  EXPECT_EQ(outcome.kept_count, 8u);
  // The two largest (9, 8) must be gone.
  EXPECT_EQ(outcome.keep[2], 0);
  EXPECT_EQ(outcome.keep[6], 0);
}

TEST(TrimTopFractionTest, CutoffIsSmallestRemoved) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  auto outcome = TrimTopFraction(v, 0.5);
  EXPECT_EQ(outcome.removed_count, 2u);
  EXPECT_DOUBLE_EQ(outcome.cutoff, 3.0);
}

TEST(TrimTopFractionTest, KeepAllWhenQGeOne) {
  std::vector<double> v = {1.0, 2.0};
  auto outcome = TrimTopFraction(v, 1.0);
  EXPECT_EQ(outcome.kept_count, 2u);
}

TEST(TrimTopFractionTest, RemoveAllWhenQZero) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  auto outcome = TrimTopFraction(v, 0.0);
  EXPECT_EQ(outcome.removed_count, 3u);
  EXPECT_EQ(outcome.kept_count, 0u);
}

TEST(TrimTopFractionTest, AtomAtThresholdPartiallyRemoved) {
  // 20 duplicates at the top: fraction trimming removes exactly ceil((1-q)n)
  // of them, modeling the percentile-atom behavior of the MATLAB pipeline.
  std::vector<double> v(80, 1.0);
  v.insert(v.end(), 20, 5.0);
  auto outcome = TrimTopFraction(v, 0.9);
  EXPECT_EQ(outcome.removed_count, 10u);
  size_t atoms_kept = 0;
  for (size_t i = 80; i < 100; ++i) atoms_kept += outcome.keep[i];
  EXPECT_EQ(atoms_kept, 10u);
}

TEST(ApplyMaskTest, FiltersValues) {
  std::vector<int> v = {10, 20, 30};
  std::vector<char> keep = {1, 0, 1};
  auto out = ApplyMask(v, keep);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 30);
}

TEST(DistanceTrimmerTest, ScoresAreDistances) {
  DistanceTrimmer trimmer({0.0, 0.0});
  auto scores = trimmer.Scores({{3.0, 4.0}, {0.0, 0.0}});
  EXPECT_DOUBLE_EQ(scores[0], 5.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(DistanceTrimmerTest, TrimsFarRows) {
  DistanceTrimmer trimmer({0.0});
  std::vector<std::vector<double>> rows = {{0.1}, {0.5}, {100.0}};
  std::vector<double> reference_distances;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    reference_distances.push_back(std::fabs(rng.Normal()));
  }
  auto outcome =
      trimmer.TrimRows(rows, reference_distances, 0.99).ValueOrDie();
  EXPECT_EQ(outcome.keep[0], 1);
  EXPECT_EQ(outcome.keep[1], 1);
  EXPECT_EQ(outcome.keep[2], 0);
}

TEST(DistanceTrimmerTest, EmptyReferenceFails) {
  DistanceTrimmer trimmer({0.0});
  EXPECT_FALSE(trimmer.TrimRows({{1.0}}, {}, 0.9).ok());
}

// Property: for any data, reference-percentile trimming keeps a value iff
// its value is <= the reference quantile — so keeping is monotone in q.
class TrimMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrimMonotonicityTest, KeptCountMonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> reference, round;
  for (int i = 0; i < 500; ++i) reference.push_back(rng.Normal());
  for (int i = 0; i < 200; ++i) round.push_back(rng.Normal());
  size_t prev_kept = 0;
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    auto outcome = TrimAtReferencePercentile(round, reference, q).ValueOrDie();
    EXPECT_GE(outcome.kept_count, prev_kept);
    prev_kept = outcome.kept_count;
  }
}

TEST_P(TrimMonotonicityTest, TopFractionCountExact) {
  Rng rng(GetParam() ^ 0xFF);
  std::vector<double> round;
  for (int i = 0; i < 137; ++i) round.push_back(rng.Normal());
  for (double q : {0.1, 0.37, 0.5, 0.9, 0.99}) {
    auto outcome = TrimTopFraction(round, q);
    size_t expected =
        static_cast<size_t>(std::ceil((1.0 - q) * round.size()));
    EXPECT_EQ(outcome.removed_count, expected) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrimMonotonicityTest,
                         ::testing::Values(1, 7, 13, 29, 101));

}  // namespace
}  // namespace itrim
