// Bit-identity, streaming, checkpoint and determinism tests of the
// TrimmingSession engine.
//
// The refactor's core guarantee is that the batch adapters
// (ScalarCollectionGame / DistanceCollectionGame / LdpCollectionGame's
// trimming path) reproduce the seed implementation's GameSummary bit for
// bit at fixed seed. The Legacy* functions below are line-by-line replicas
// of the pre-refactor monolithic Run() loops — including the seed
// PublicBoard's sort-per-invalidation query semantics (LegacySortBoard) —
// and every scheme of the paper's five experiment pipelines is pitted
// against the session-backed implementation.
#include "game/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "game/collection_game.h"
#include "game/score_model.h"
#include "game/trimmer.h"
#include "ldp/attacks.h"
#include "ldp/ldp_game.h"
#include "ldp/mechanism.h"
#include "stats/quantile.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

// --------------------------------------------------------------------------
// Seed replicas
// --------------------------------------------------------------------------

// Replica of the seed PublicBoard: full re-sort on the first query after an
// invalidating record. Deliberately independent of IndexedBoard so this
// file checks the refactor end to end. bench/bench_micro_board.cc carries
// its own copy of this frozen transcription — both are snapshots of the
// seed code and must never diverge from it (or each other).
class LegacySortBoard {
 public:
  explicit LegacySortBoard(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void RecordOne(double value) {
    ++total_recorded_;
    if (capacity_ == 0 || values_.size() < capacity_) {
      values_.push_back(value);
    } else {
      size_t j = static_cast<size_t>(rng_.UniformInt(total_recorded_));
      if (j < capacity_) values_[j] = value;
    }
    cache_valid_ = false;
  }

  Result<double> Quantile(double q) const {
    if (values_.empty()) {
      return Status::FailedPrecondition("public board is empty");
    }
    EnsureSorted();
    return QuantileSorted(sorted_cache_, q);
  }

  double PercentileRank(double x) const {
    if (values_.empty()) return 0.0;
    EnsureSorted();
    return PercentileRankSorted(sorted_cache_, x);
  }

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const {
    if (cache_valid_) return;
    sorted_cache_ = values_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_valid_ = true;
  }

  size_t capacity_;
  size_t total_recorded_ = 0;
  Rng rng_;
  std::vector<double> values_;
  mutable std::vector<double> sorted_cache_;
  mutable bool cache_valid_ = false;
};

// The seed games evaluated quality against the (new-API) PublicBoard; the
// evaluators only use Quantile / PercentileRank / values(), so an adapter
// board fed the same records produces the same quality scores. To keep the
// replicas fully seed-faithful we mirror every record into a PublicBoard
// for the QualityEvaluation interface while all *game* queries go through
// the legacy sort board.
struct MirroredBoards {
  MirroredBoards(size_t capacity, uint64_t seed)
      : legacy(capacity, seed), quality_view(capacity, seed) {}
  void RecordOne(double v) {
    legacy.RecordOne(v);
    quality_view.RecordOne(v);
  }
  LegacySortBoard legacy;
  PublicBoard quality_view;
};

RoundContext LegacyContext(int round, const GameConfig& config,
                           const PublicBoard* board,
                           const RoundObservation* prev) {
  RoundContext ctx;
  ctx.round = round;
  ctx.tth = config.tth;
  ctx.board = board;
  if (prev != nullptr) {
    ctx.prev_collector_percentile = prev->collector_percentile;
    ctx.prev_injection_percentile = prev->injection_percentile;
    ctx.prev_quality = prev->quality;
  }
  return ctx;
}

// Line-by-line replica of the seed ScalarCollectionGame::Run().
Result<GameSummary> LegacyScalarRun(const GameConfig& config,
                                    const std::vector<double>& benign_pool,
                                    CollectorStrategy* collector,
                                    AdversaryStrategy* adversary,
                                    QualityEvaluation* quality,
                                    std::vector<double>* retained,
                                    std::vector<char>* retained_is_poison) {
  ITRIM_RETURN_NOT_OK(config.Validate());
  if (benign_pool.empty()) {
    return Status::FailedPrecondition("benign pool is empty");
  }
  Rng rng(config.seed);
  collector->Reset();
  adversary->Reset();
  MirroredBoards board(config.board_capacity,
                       config.seed ^ 0x9E3779B97F4A7C15ULL);
  retained->clear();
  retained_is_poison->clear();

  for (size_t i = 0; i < config.bootstrap_size; ++i) {
    board.RecordOne(benign_pool[rng.UniformInt(benign_pool.size())]);
  }

  GameSummary summary;
  RoundObservation prev;
  bool have_prev = false;
  double poison_quota = 0.0;

  for (int round = 1; round <= config.rounds; ++round) {
    poison_quota +=
        config.attack_ratio * static_cast<double>(config.round_size);
    const size_t poison_count = static_cast<size_t>(poison_quota);
    poison_quota -= static_cast<double>(poison_count);
    RoundContext ctx = LegacyContext(round, config, &board.quality_view,
                                     have_prev ? &prev : nullptr);
    double trim_percentile = collector->TrimPercentile(ctx);

    std::vector<double> received;
    std::vector<char> is_poison;
    received.reserve(config.round_size + poison_count);
    is_poison.reserve(config.round_size + poison_count);
    for (size_t i = 0; i < config.round_size; ++i) {
      received.push_back(benign_pool[rng.UniformInt(benign_pool.size())]);
      is_poison.push_back(0);
    }
    double injection_sum = 0.0;
    for (size_t i = 0; i < poison_count; ++i) {
      double a = adversary->InjectionPercentile(ctx, &rng);
      a = Clamp(a, 0.0, 1.0);
      injection_sum += a;
      ITRIM_ASSIGN_OR_RETURN(double value, board.legacy.Quantile(a));
      received.push_back(value);
      is_poison.push_back(1);
    }
    double injection_mean =
        poison_count > 0 ? injection_sum / static_cast<double>(poison_count)
                         : std::nan("");

    double quality_score =
        quality != nullptr ? quality->Evaluate(received, board.quality_view)
                           : 1.0;

    TrimOutcome outcome;
    if (trim_percentile >= 1.0) {
      outcome.keep.assign(received.size(), 1);
      outcome.kept_count = received.size();
      outcome.cutoff = std::numeric_limits<double>::infinity();
    } else if (config.round_mass_trimming) {
      outcome = TrimTopFraction(received, trim_percentile);
    } else {
      ITRIM_ASSIGN_OR_RETURN(
          outcome, TrimAtReferencePercentile(received, board.legacy.values(),
                                             trim_percentile));
    }

    RoundRecord record;
    record.round = round;
    record.collector_percentile = trim_percentile;
    record.injection_percentile = injection_mean;
    record.cutoff = outcome.cutoff;
    record.quality = quality_score;
    for (size_t i = 0; i < received.size(); ++i) {
      bool poison = is_poison[i] != 0;
      if (poison) {
        ++record.poison_received;
      } else {
        ++record.benign_received;
      }
      if (outcome.keep[i]) {
        if (poison) {
          ++record.poison_kept;
        } else {
          ++record.benign_kept;
        }
        retained->push_back(received[i]);
        retained_is_poison->push_back(is_poison[i]);
      }
    }
    summary.rounds.push_back(record);

    prev = RoundObservation{round,
                            trim_percentile,
                            injection_mean,
                            quality_score,
                            received.size(),
                            record.benign_kept + record.poison_kept,
                            record.poison_received,
                            record.poison_kept};
    have_prev = true;
    collector->Observe(prev);
    adversary->Observe(prev);
  }
  summary.termination_round = collector->termination_round();
  return summary;
}

// Line-by-line replica of the seed DistanceCollectionGame::Run().
Result<GameSummary> LegacyDistanceRun(const GameConfig& config,
                                      const Dataset& source,
                                      CollectorStrategy* collector,
                                      AdversaryStrategy* adversary,
                                      QualityEvaluation* quality,
                                      Dataset* retained,
                                      std::vector<char>* retained_is_poison) {
  ITRIM_RETURN_NOT_OK(config.Validate());
  if (source.rows.empty()) {
    return Status::FailedPrecondition("source dataset is empty");
  }
  Rng rng(config.seed);
  collector->Reset();
  adversary->Reset();
  MirroredBoards board(config.board_capacity,
                       config.seed ^ 0xC2B2AE3D27D4EB4FULL);
  *retained = Dataset{};
  retained->name = source.name + "/retained";
  retained->num_clusters = source.num_clusters;
  retained_is_poison->clear();

  std::vector<std::vector<double>> bootstrap;
  bootstrap.reserve(config.bootstrap_size);
  for (size_t i = 0; i < config.bootstrap_size; ++i) {
    bootstrap.push_back(source.rows[rng.UniformInt(source.rows.size())]);
  }
  PositionMap position_map;
  ITRIM_ASSIGN_OR_RETURN(position_map, PositionMap::Build(bootstrap));
  for (const auto& row : bootstrap) {
    board.RecordOne(position_map.PositionOfRow(row));
  }

  GameSummary summary;
  RoundObservation prev;
  bool have_prev = false;
  const bool labeled = source.labeled();
  double poison_quota = 0.0;

  for (int round = 1; round <= config.rounds; ++round) {
    poison_quota +=
        config.attack_ratio * static_cast<double>(config.round_size);
    const size_t poison_count = static_cast<size_t>(poison_quota);
    poison_quota -= static_cast<double>(poison_count);
    RoundContext ctx = LegacyContext(round, config, &board.quality_view,
                                     have_prev ? &prev : nullptr);
    double trim_percentile = collector->TrimPercentile(ctx);

    std::vector<std::vector<double>> received;
    std::vector<int> received_labels;
    std::vector<char> is_poison;
    received.reserve(config.round_size + poison_count);
    for (size_t i = 0; i < config.round_size; ++i) {
      size_t idx = static_cast<size_t>(rng.UniformInt(source.rows.size()));
      received.push_back(source.rows[idx]);
      if (labeled) received_labels.push_back(source.labels[idx]);
      is_poison.push_back(0);
    }

    std::vector<double> direction = rng.UnitVector(source.dims());
    {
      const auto& qdir = position_map.quantile_direction();
      double norm_sq = 0.0;
      for (size_t j = 0; j < direction.size(); ++j) {
        direction[j] = qdir[j] + 0.5 * direction[j];
        norm_sq += direction[j] * direction[j];
      }
      double inv = 1.0 / std::sqrt(norm_sq);
      for (double& v : direction) v *= inv;
    }
    double injection_sum = 0.0;
    for (size_t i = 0; i < poison_count; ++i) {
      double a = adversary->InjectionPercentile(ctx, &rng);
      a = Clamp(a, 0.0, 1.5);
      injection_sum += a;
      received.push_back(position_map.MakePoint(a, direction));
      if (labeled) {
        received_labels.push_back(static_cast<int>(
            rng.UniformInt(std::max<size_t>(1, source.num_clusters))));
      }
      is_poison.push_back(1);
    }
    double injection_mean =
        poison_count > 0 ? injection_sum / static_cast<double>(poison_count)
                         : std::nan("");

    std::vector<double> scores;
    scores.reserve(received.size());
    for (const auto& row : received) {
      scores.push_back(position_map.PositionOfRow(row));
    }
    double quality_score =
        quality != nullptr ? quality->Evaluate(scores, board.quality_view)
                           : 1.0;

    TrimOutcome outcome;
    if (trim_percentile >= 1.0) {
      outcome.keep.assign(received.size(), 1);
      outcome.kept_count = received.size();
      outcome.cutoff = std::numeric_limits<double>::infinity();
    } else if (config.round_mass_trimming) {
      outcome = TrimTopFraction(scores, trim_percentile);
    } else {
      outcome = TrimAboveValue(scores, trim_percentile);
    }

    RoundRecord record;
    record.round = round;
    record.collector_percentile = trim_percentile;
    record.injection_percentile = injection_mean;
    record.cutoff = outcome.cutoff;
    record.quality = quality_score;
    for (size_t i = 0; i < received.size(); ++i) {
      bool poison = is_poison[i] != 0;
      if (poison) {
        ++record.poison_received;
      } else {
        ++record.benign_received;
      }
      if (outcome.keep[i]) {
        if (poison) {
          ++record.poison_kept;
        } else {
          ++record.benign_kept;
        }
        retained->rows.push_back(std::move(received[i]));
        if (labeled) retained->labels.push_back(received_labels[i]);
        retained_is_poison->push_back(is_poison[i]);
      }
    }
    summary.rounds.push_back(record);

    prev = RoundObservation{round,
                            trim_percentile,
                            injection_mean,
                            quality_score,
                            received.size(),
                            record.benign_kept + record.poison_kept,
                            record.poison_received,
                            record.poison_kept};
    have_prev = true;
    collector->Observe(prev);
    adversary->Observe(prev);
  }
  summary.termination_round = collector->termination_round();
  return summary;
}

// Line-by-line replica of the seed LdpCollectionGame::RunTrimming().
Result<LdpRunResult> LegacyLdpRunTrimming(const LdpGameConfig& config,
                                          const std::vector<double>& population,
                                          const LdpMechanism& mechanism,
                                          LdpAttack* attack,
                                          CollectorStrategy* collector,
                                          QualityEvaluation* quality) {
  ITRIM_RETURN_NOT_OK(config.Validate());
  if (population.empty()) {
    return Status::FailedPrecondition("empty population");
  }
  Rng rng(config.seed);
  collector->Reset();
  MirroredBoards board(config.board_capacity, config.seed ^ 0x1234567ULL);

  for (size_t i = 0; i < config.bootstrap_size; ++i) {
    double x = population[rng.UniformInt(population.size())];
    board.RecordOne(mechanism.Perturb(x, &rng));
  }

  LdpRunResult result;
  result.true_mean = Mean(population);
  double kept_sum = 0.0;
  size_t kept_count = 0;
  RoundObservation prev;
  bool have_prev = false;
  std::vector<double> reports;
  std::vector<char> is_poison;

  for (int round = 1; round <= config.rounds; ++round) {
    RoundContext ctx;
    ctx.round = round;
    ctx.tth = config.tth;
    ctx.board = &board.quality_view;
    if (have_prev) {
      ctx.prev_collector_percentile = prev.collector_percentile;
      ctx.prev_injection_percentile = prev.injection_percentile;
      ctx.prev_quality = prev.quality;
    }
    double trim_percentile = collector->TrimPercentile(ctx);

    const size_t attackers = static_cast<size_t>(std::llround(
        config.attack_ratio * static_cast<double>(config.users_per_round)));
    reports.clear();
    is_poison.clear();
    for (size_t i = 0; i < config.users_per_round; ++i) {
      double x = population[rng.UniformInt(population.size())];
      reports.push_back(mechanism.Perturb(x, &rng));
      is_poison.push_back(0);
    }
    for (size_t i = 0; i < attackers; ++i) {
      reports.push_back(attack->PoisonReport(mechanism, &rng));
      is_poison.push_back(1);
    }

    double injection_estimate = std::nan("");
    {
      auto tail_cut = board.legacy.Quantile(config.tth);
      if (tail_cut.ok()) {
        double sum = 0.0;
        size_t count = 0;
        for (double v : reports) {
          if (v > *tail_cut) {
            sum += v;
            ++count;
          }
        }
        if (count > 0) {
          injection_estimate =
              board.legacy.PercentileRank(sum / static_cast<double>(count));
        }
      }
    }

    double quality_score =
        quality != nullptr ? quality->Evaluate(reports, board.quality_view)
                           : 1.0;

    TrimOutcome outcome;
    if (trim_percentile >= 1.0) {
      outcome.keep.assign(reports.size(), 1);
      outcome.kept_count = reports.size();
      outcome.cutoff = std::numeric_limits<double>::infinity();
    } else {
      ITRIM_ASSIGN_OR_RETURN(double upper_cut,
                             board.legacy.Quantile(trim_percentile));
      ITRIM_ASSIGN_OR_RETURN(double lower_cut,
                             board.legacy.Quantile(1.0 - trim_percentile));
      outcome.cutoff = upper_cut;
      outcome.keep.assign(reports.size(), 1);
      for (size_t i = 0; i < reports.size(); ++i) {
        if (reports[i] > upper_cut || reports[i] < lower_cut) {
          outcome.keep[i] = 0;
          ++outcome.removed_count;
        } else {
          ++outcome.kept_count;
        }
      }
    }

    RoundRecord record;
    record.round = round;
    record.collector_percentile = trim_percentile;
    record.injection_percentile = injection_estimate;
    record.cutoff = outcome.cutoff;
    record.quality = quality_score;
    for (size_t i = 0; i < reports.size(); ++i) {
      bool poison = is_poison[i] != 0;
      if (poison) {
        ++record.poison_received;
      } else {
        ++record.benign_received;
      }
      if (outcome.keep[i]) {
        if (poison) {
          ++record.poison_kept;
        } else {
          ++record.benign_kept;
        }
        kept_sum += reports[i];
        ++kept_count;
      }
    }
    result.game.rounds.push_back(record);

    prev = RoundObservation{round,
                            trim_percentile,
                            injection_estimate,
                            quality_score,
                            reports.size(),
                            record.benign_kept + record.poison_kept,
                            record.poison_received,
                            record.poison_kept};
    have_prev = true;
    collector->Observe(prev);
  }
  result.game.termination_round = collector->termination_round();
  result.estimated_mean =
      kept_count > 0 ? kept_sum / static_cast<double>(kept_count) : 0.0;
  double err = result.estimated_mean - result.true_mean;
  result.squared_error = err * err;
  return result;
}

// Bitwise comparison helpers and UniformPool live in
// tests/game/summary_test_util.h, shared with the property and fleet
// determinism suites.

// --------------------------------------------------------------------------
// Bit-identity across every scheme, both game variants, both trim semantics
// --------------------------------------------------------------------------

class SchemeBitIdentityTest : public ::testing::TestWithParam<SchemeId> {};

TEST_P(SchemeBitIdentityTest, ScalarGameMatchesSeedLoop) {
  const SchemeId id = GetParam();
  auto pool = UniformPool(3000, 21);
  for (bool round_mass : {false, true}) {
    GameConfig config;
    config.rounds = 12;
    config.round_size = 180;
    config.attack_ratio = 0.17;  // fractional quota path
    config.tth = 0.9;
    config.bootstrap_size = 400;
    config.round_mass_trimming = round_mass;
    config.seed = 1000 + static_cast<uint64_t>(id);

    SchemeOptions options;
    options.titfortat_trigger_quality = 0.8;  // let the trigger participate
    SchemeInstance legacy_scheme = MakeScheme(id, config.tth, options);
    SchemeInstance new_scheme = MakeScheme(id, config.tth, options);

    std::vector<double> legacy_retained;
    std::vector<char> legacy_flags;
    auto legacy = LegacyScalarRun(
        config, pool, legacy_scheme.collector.get(),
        legacy_scheme.adversary.get(), legacy_scheme.quality.get(),
        &legacy_retained, &legacy_flags);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

    ScalarCollectionGame game(config, &pool, new_scheme.collector.get(),
                              new_scheme.adversary.get(),
                              new_scheme.quality.get());
    auto summary = game.Run();
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();

    ExpectSummaryBitIdentical(*legacy, *summary);
    ASSERT_EQ(game.retained().size(), legacy_retained.size());
    for (size_t i = 0; i < legacy_retained.size(); ++i) {
      EXPECT_TRUE(BitEqual(game.retained()[i], legacy_retained[i]));
    }
    EXPECT_EQ(game.retained_is_poison(), legacy_flags);
  }
}

TEST_P(SchemeBitIdentityTest, DistanceGameMatchesSeedLoop) {
  const SchemeId id = GetParam();
  Dataset data = MakeControl(31, 120);
  for (bool round_mass : {false, true}) {
    GameConfig config;
    config.rounds = 8;
    config.round_size = 120;
    config.attack_ratio = 0.3;
    config.tth = 0.9;
    config.bootstrap_size = 250;
    config.round_mass_trimming = round_mass;
    config.seed = 2000 + static_cast<uint64_t>(id);

    SchemeOptions options;
    options.titfortat_trigger_quality = 0.8;
    SchemeInstance legacy_scheme = MakeScheme(id, config.tth, options);
    SchemeInstance new_scheme = MakeScheme(id, config.tth, options);

    Dataset legacy_retained;
    std::vector<char> legacy_flags;
    auto legacy = LegacyDistanceRun(
        config, data, legacy_scheme.collector.get(),
        legacy_scheme.adversary.get(), legacy_scheme.quality.get(),
        &legacy_retained, &legacy_flags);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

    DistanceCollectionGame game(config, &data, new_scheme.collector.get(),
                                new_scheme.adversary.get(),
                                new_scheme.quality.get());
    auto summary = game.Run();
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();

    ExpectSummaryBitIdentical(*legacy, *summary);
    ASSERT_EQ(game.retained_data().rows.size(), legacy_retained.rows.size());
    EXPECT_EQ(game.retained_data().rows, legacy_retained.rows);
    EXPECT_EQ(game.retained_data().labels, legacy_retained.labels);
    EXPECT_EQ(game.retained_is_poison(), legacy_flags);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeBitIdentityTest,
    ::testing::Values(SchemeId::kGroundtruth, SchemeId::kOstrich,
                      SchemeId::kBaseline09, SchemeId::kBaselineStatic,
                      SchemeId::kTitfortat, SchemeId::kElastic01,
                      SchemeId::kElastic05));

TEST(LdpBitIdentityTest, TrimmingPathMatchesSeedLoop) {
  Dataset taxi = MakeTaxi(3, 8000);
  std::vector<double> population;
  for (const auto& row : taxi.rows) population.push_back(row[0]);

  LdpGameConfig config;
  config.rounds = 6;
  config.users_per_round = 600;
  config.attack_ratio = 0.12;
  config.tth = 0.9;
  config.bootstrap_size = 600;
  config.seed = 77;

  PiecewiseMechanism mechanism(2.0);
  InputManipulationAttack attack(1.0);

  struct Defense {
    const char* label;
    bool titfortat;
  };
  for (const Defense& d : {Defense{"titfortat", true},
                           Defense{"elastic", false}}) {
    SCOPED_TRACE(d.label);
    LdpRunResult legacy, current;
    if (d.titfortat) {
      TitfortatCollector c1(+0.01, -0.03, -1.0), c2(+0.01, -0.03, -1.0);
      TailMassQuality q1(config.tth), q2(config.tth);
      legacy = LegacyLdpRunTrimming(config, population, mechanism, &attack,
                                    &c1, &q1)
                   .ValueOrDie();
      LdpCollectionGame game(config, &population, &mechanism, &attack);
      current = game.RunTrimming(&c2, &q2).ValueOrDie();
    } else {
      ElasticCollector c1(0.5), c2(0.5);
      legacy = LegacyLdpRunTrimming(config, population, mechanism, &attack,
                                    &c1, nullptr)
                   .ValueOrDie();
      LdpCollectionGame game(config, &population, &mechanism, &attack);
      current = game.RunTrimming(&c2, nullptr).ValueOrDie();
    }
    ExpectSummaryBitIdentical(legacy.game, current.game);
    EXPECT_TRUE(BitEqual(legacy.estimated_mean, current.estimated_mean));
    EXPECT_TRUE(BitEqual(legacy.true_mean, current.true_mean));
    EXPECT_TRUE(BitEqual(legacy.squared_error, current.squared_error));
  }
}

// --------------------------------------------------------------------------
// Streaming API
// --------------------------------------------------------------------------

TEST(TrimmingSessionTest, StepwiseStreamEqualsBatchRun) {
  auto pool = UniformPool(2000, 5);
  GameConfig config;
  config.rounds = 10;
  config.round_size = 150;
  config.attack_ratio = 0.2;
  config.seed = 9;

  ElasticCollector c_batch(0.5), c_stream(0.5);
  ElasticAdversary a_batch(0.5), a_stream(0.5);

  IdentityScoreModel m_batch(&pool);
  TrimmingSession batch(config, &m_batch, &c_batch, &a_batch, nullptr);
  GameSummary batch_summary = batch.RunToCompletion().ValueOrDie();

  IdentityScoreModel m_stream(&pool);
  TrimmingSession stream(config, &m_stream, &c_stream, &a_stream, nullptr);
  ASSERT_TRUE(stream.Bootstrap().ok());
  for (int round = 1; round <= config.rounds; ++round) {
    auto record = stream.Step();
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->round, round);
  }
  ExpectSummaryBitIdentical(batch_summary, stream.Finish());
  EXPECT_EQ(m_batch.retained(), m_stream.retained());
}

TEST(TrimmingSessionTest, StepBeforeBootstrapFails) {
  auto pool = UniformPool(100, 6);
  IdentityScoreModel model(&pool);
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.99);
  TrimmingSession session(GameConfig{}, &model, &collector, &adversary,
                          nullptr);
  EXPECT_EQ(session.Step().status().code(), StatusCode::kFailedPrecondition);
}

TEST(TrimmingSessionTest, NullAdversaryRejectedForPositionRequiringModels) {
  auto pool = UniformPool(200, 16);
  IdentityScoreModel model(&pool);
  StaticCollector collector(0.9, "static");
  GameConfig config;
  config.attack_ratio = 0.1;
  TrimmingSession session(config, &model, &collector, /*adversary=*/nullptr,
                          nullptr);
  Status status = session.Bootstrap();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // A poison-free session may run without an adversary.
  config.attack_ratio = 0.0;
  IdentityScoreModel clean_model(&pool);
  TrimmingSession clean(config, &clean_model, &collector, nullptr, nullptr);
  ASSERT_TRUE(clean.Bootstrap().ok());
  EXPECT_TRUE(clean.Step().ok());
}

TEST(TrimmingSessionTest, StreamRunsPastConfiguredRounds) {
  auto pool = UniformPool(500, 7);
  GameConfig config;
  config.rounds = 3;
  config.round_size = 50;
  IdentityScoreModel model(&pool);
  StaticCollector collector(0.9, "static");
  FixedPercentileAdversary adversary(0.95);
  TrimmingSession session(config, &model, &collector, &adversary, nullptr);
  ASSERT_TRUE(session.Bootstrap().ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(session.Step().ok()) << "step " << i;
  }
  EXPECT_EQ(session.Finish().rounds.size(), 7u);
}

// --------------------------------------------------------------------------
// Checkpoint / restore
// --------------------------------------------------------------------------

TEST(TrimmingSessionTest, CheckpointRestoreResumesBitIdentically) {
  Dataset data = MakeControl(41, 100);
  GameConfig config;
  config.rounds = 12;
  config.round_size = 100;
  config.attack_ratio = 0.25;
  config.seed = 13;

  // Reference: straight 12-round run.
  TitfortatCollector c_ref(+0.01, -0.03, 0.9);
  ElasticAdversary a_ref(0.5);
  DefectShareQuality q_ref(0.90, 0.99,
                           DefectShareQuality::CutoffMode::kAbsolute);
  DistanceScoreModel m_ref(&data);
  TrimmingSession reference(config, &m_ref, &c_ref, &a_ref, &q_ref);
  GameSummary full = reference.RunToCompletion().ValueOrDie();

  // Interrupted run: 6 rounds, checkpoint, restore into a *fresh* session
  // with fresh strategy objects, then 6 more rounds.
  TitfortatCollector c_first(+0.01, -0.03, 0.9);
  ElasticAdversary a_first(0.5);
  DefectShareQuality q_first(0.90, 0.99,
                             DefectShareQuality::CutoffMode::kAbsolute);
  DistanceScoreModel m_first(&data);
  TrimmingSession first(config, &m_first, &c_first, &a_first, &q_first);
  ASSERT_TRUE(first.Bootstrap().ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(first.Step().ok());
  SessionCheckpoint checkpoint = first.Checkpoint();
  EXPECT_EQ(checkpoint.next_round, 7);

  TitfortatCollector c_resumed(+0.01, -0.03, 0.9);
  ElasticAdversary a_resumed(0.5);
  DefectShareQuality q_resumed(0.90, 0.99,
                               DefectShareQuality::CutoffMode::kAbsolute);
  DistanceScoreModel m_resumed(&data);
  TrimmingSession resumed(config, &m_resumed, &c_resumed, &a_resumed,
                          &q_resumed);
  ASSERT_TRUE(resumed.Restore(checkpoint).ok());
  EXPECT_EQ(resumed.next_round(), 7);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(resumed.Step().ok());

  ExpectSummaryBitIdentical(full, resumed.Finish());
}

// --------------------------------------------------------------------------
// Thread determinism: sessions fanned out over ParallelFor
// --------------------------------------------------------------------------

TEST(TrimmingSessionTest, ParallelForOneVsManyThreadsBitIdentical) {
  Dataset data = MakeControl(51, 80);
  constexpr size_t kArms = 8;

  auto run_all = [&](int threads) {
    std::vector<GameSummary> out(kArms);
    ParallelFor(
        kArms,
        [&](size_t arm) {
          GameConfig config;
          config.rounds = 6;
          config.round_size = 80;
          config.attack_ratio = 0.2;
          config.round_mass_trimming = true;
          config.seed = 400 + arm * 7919;
          ElasticCollector collector(0.5);
          ElasticAdversary adversary(0.5);
          DistanceScoreModel model(&data);
          TrimmingSession session(config, &model, &collector, &adversary,
                                  nullptr);
          out[arm] = session.RunToCompletion().ValueOrDie();
        },
        threads);
    return out;
  };

  std::vector<GameSummary> serial = run_all(1);
  std::vector<GameSummary> parallel = run_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t arm = 0; arm < kArms; ++arm) {
    SCOPED_TRACE(arm);
    ExpectSummaryBitIdentical(serial[arm], parallel[arm]);
  }
}

// --------------------------------------------------------------------------
// Config validation surfaced from construction, one field at a time
// --------------------------------------------------------------------------

TEST(TrimmingSessionTest, RejectsEachInvalidConfigField) {
  auto pool = UniformPool(100, 8);
  OstrichCollector collector;
  FixedPercentileAdversary adversary(0.9);

  auto expect_rejected = [&](GameConfig config, const char* label) {
    IdentityScoreModel model(&pool);
    TrimmingSession session(config, &model, &collector, &adversary, nullptr);
    Status status = session.Bootstrap();
    EXPECT_FALSE(status.ok()) << label;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << label;
    // The batch adapter surfaces the same status.
    ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
    EXPECT_EQ(game.Run().status().code(), StatusCode::kInvalidArgument)
        << label;
  };

  GameConfig config;
  config.rounds = 0;
  expect_rejected(config, "rounds");
  config = GameConfig{};
  config.round_size = 0;
  expect_rejected(config, "round_size");
  config = GameConfig{};
  config.attack_ratio = -0.5;
  expect_rejected(config, "attack_ratio");
  config = GameConfig{};
  config.tth = 1.0;
  expect_rejected(config, "tth upper");
  config = GameConfig{};
  config.tth = 0.0;
  expect_rejected(config, "tth lower");
  config = GameConfig{};
  config.bootstrap_size = 0;
  expect_rejected(config, "bootstrap_size");
}

TEST(TrimmingSessionTest, LdpGameSurfacesEachInvalidConfigField) {
  auto population = UniformPool(200, 9);
  PiecewiseMechanism mechanism(2.0);
  InputManipulationAttack attack(1.0);

  auto expect_rejected = [&](LdpGameConfig config, const char* label) {
    LdpCollectionGame game(config, &population, &mechanism, &attack);
    ElasticCollector collector(0.5);
    EXPECT_EQ(game.RunTrimming(&collector, nullptr).status().code(),
              StatusCode::kInvalidArgument)
        << label;
    EXPECT_EQ(game.RunUndefended().status().code(),
              StatusCode::kInvalidArgument)
        << label;
    EXPECT_EQ(game.RunEmf(EmfConfig{}).status().code(),
              StatusCode::kInvalidArgument)
        << label;
  };

  LdpGameConfig config;
  config.rounds = 0;
  expect_rejected(config, "rounds");
  config = LdpGameConfig{};
  config.users_per_round = 0;
  expect_rejected(config, "users_per_round");
  config = LdpGameConfig{};
  config.attack_ratio = -1.0;
  expect_rejected(config, "attack_ratio");
  config = LdpGameConfig{};
  config.tth = 1.5;
  expect_rejected(config, "tth");
  config = LdpGameConfig{};
  config.bootstrap_size = 0;
  expect_rejected(config, "bootstrap_size");
}

}  // namespace
}  // namespace itrim
