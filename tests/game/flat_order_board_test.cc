// FlatOrderBoard unit + property coverage, mirroring indexed_board_test.cc
// for the treap and adding leaf-structure-targeted cases: splits at
// kLeafCapacity, merges and cross-boundary borrows at kLeafMin, duplicate
// runs spanning leaf boundaries, and the reserved-pool churn that backs the
// zero-allocation reservoir contract. Every order-statistic check is exact
// (bitwise against the sorted oracle) — the flat board promises the same
// contract as the treap, so any divergence is a bug, not noise.
#include "game/flat_order_board.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "game/indexed_board.h"
#include "stats/quantile.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

TEST(FlatOrderBoardTest, EmptyBoard) {
  FlatOrderBoard board;
  EXPECT_EQ(board.size(), 0u);
  EXPECT_FALSE(board.Quantile(0.5).ok());
  EXPECT_DOUBLE_EQ(board.PercentileRank(1.0), 0.0);
  EXPECT_FALSE(board.EraseOne(1.0));
}

TEST(FlatOrderBoardTest, KthTracksSortedOrder) {
  FlatOrderBoard board;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) board.Insert(v);
  ASSERT_EQ(board.size(), 5u);
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(board.Kth(k), static_cast<double>(k + 1));
  }
}

TEST(FlatOrderBoardTest, DuplicatesCountedIndividually) {
  FlatOrderBoard board;
  for (double v : {2.0, 2.0, 2.0, 1.0}) board.Insert(v);
  EXPECT_EQ(board.size(), 4u);
  EXPECT_EQ(board.CountLessEqual(2.0), 4u);
  EXPECT_EQ(board.CountLessEqual(1.5), 1u);
  EXPECT_TRUE(board.EraseOne(2.0));
  EXPECT_EQ(board.size(), 3u);
  EXPECT_EQ(board.CountLessEqual(2.0), 3u);
  EXPECT_TRUE(board.EraseOne(2.0));
  EXPECT_TRUE(board.EraseOne(2.0));
  EXPECT_FALSE(board.EraseOne(2.0));
  EXPECT_EQ(board.size(), 1u);
  EXPECT_DOUBLE_EQ(board.Kth(0), 1.0);
}

TEST(FlatOrderBoardTest, NanProbeMatchesUpperBoundSemantics) {
  FlatOrderBoard board;
  for (double v : {1.0, 2.0, 3.0}) board.Insert(v);
  // std::upper_bound(sorted, NaN) returns end() (count = n): every
  // comparison NaN < v is false.
  EXPECT_DOUBLE_EQ(board.PercentileRank(std::nan("")), 1.0);
  // A NaN erase probe matches nothing (no value compares equal to NaN) —
  // the treap behaves identically.
  EXPECT_FALSE(board.EraseOne(std::nan("")));
  EXPECT_EQ(board.size(), 3u);
}

// Ascending, descending and duplicate-flood fills across several leaf
// splits: the insertion orders that degenerate a naive structure, sized to
// cross the one-leaf, two-leaf and many-leaf regimes.
TEST(FlatOrderBoardTest, LeafSplitsPreserveOrderAcrossFillPatterns) {
  const size_t kN = FlatOrderBoard::kLeafCapacity * 5 + 7;
  for (int pattern = 0; pattern < 3; ++pattern) {
    SCOPED_TRACE(pattern == 0   ? "ascending"
                 : pattern == 1 ? "descending"
                                : "duplicate-flood");
    FlatOrderBoard board;
    std::vector<double> mirror;
    for (size_t i = 0; i < kN; ++i) {
      double v = pattern == 0   ? static_cast<double>(i)
                 : pattern == 1 ? static_cast<double>(kN - i)
                                : static_cast<double>(i % 3);
      board.Insert(v);
      mirror.push_back(v);
      if (i % 17 == 0 || i + 1 == kN) {
        std::vector<double> sorted = mirror;
        std::sort(sorted.begin(), sorted.end());
        ASSERT_EQ(board.size(), sorted.size());
        for (size_t k = 0; k < sorted.size(); ++k) {
          ASSERT_TRUE(BitEqual(board.Kth(k), sorted[k])) << "k=" << k;
        }
      }
    }
  }
}

// Drains a multi-leaf board value by value, forcing every rebalance shape
// (borrow from right, borrow from left, merge, lone-leaf shrink) while
// checking full order statistics against the shrinking mirror.
TEST(FlatOrderBoardTest, ErasureDrainsThroughMergesAndBorrows) {
  const size_t kN = FlatOrderBoard::kLeafCapacity * 4;
  FlatOrderBoard board;
  std::vector<double> mirror;
  Rng rng(77);
  for (size_t i = 0; i < kN; ++i) {
    double v = rng.Uniform(-2.0, 2.0);
    if (rng.Bernoulli(0.3)) v = std::round(v * 4.0) / 4.0;  // duplicates
    board.Insert(v);
    mirror.push_back(v);
  }
  std::sort(mirror.begin(), mirror.end());
  while (!mirror.empty()) {
    // Alternate draining ends and middle so underflow hits first, last and
    // interior leaves.
    size_t k = mirror.size() % 3 == 0   ? 0
               : mirror.size() % 3 == 1 ? mirror.size() - 1
                                        : mirror.size() / 2;
    double victim = mirror[k];
    ASSERT_TRUE(board.EraseOne(victim));
    mirror.erase(mirror.begin() + static_cast<long>(k));
    ASSERT_EQ(board.size(), mirror.size());
    if (mirror.size() % 13 == 0 && !mirror.empty()) {
      for (size_t i = 0; i < mirror.size(); ++i) {
        // Numeric equality: round() yields -0.0s, and among equal keys the
        // stored zero's sign bit may sit in either slot (as in the treap).
        ASSERT_EQ(board.Kth(i), mirror[i]);
      }
      double q = rng.Uniform();
      ASSERT_TRUE(BitEqual(board.Quantile(q).ValueOrDie(),
                           QuantileSorted(mirror, q)));
      double x = rng.Uniform(-2.5, 2.5);
      ASSERT_TRUE(BitEqual(board.PercentileRank(x),
                           PercentileRankSorted(mirror, x)));
    }
  }
  EXPECT_EQ(board.size(), 0u);
  EXPECT_FALSE(board.Quantile(0.5).ok());
}

// Equal keys flooding across multiple leaves: erase must always remove an
// instance (first occurrence) and counts must stay exact while runs of one
// value straddle leaf boundaries.
TEST(FlatOrderBoardTest, DuplicateRunsSpanningLeavesStayExact) {
  FlatOrderBoard board;
  std::vector<double> mirror;
  const size_t kRun = FlatOrderBoard::kLeafCapacity * 2 + 11;
  for (double key : {1.0, 2.0, 3.0}) {
    for (size_t i = 0; i < kRun; ++i) {
      board.Insert(key);
      mirror.push_back(key);
    }
  }
  std::sort(mirror.begin(), mirror.end());
  EXPECT_EQ(board.CountLessEqual(1.0), kRun);
  EXPECT_EQ(board.CountLessEqual(2.0), 2 * kRun);
  EXPECT_EQ(board.CountLessEqual(2.5), 2 * kRun);
  Rng rng(5);
  while (!mirror.empty()) {
    double key = mirror[rng.UniformInt(mirror.size())];
    ASSERT_TRUE(board.EraseOne(key));
    mirror.erase(std::find(mirror.begin(), mirror.end(), key));
    ASSERT_EQ(board.size(), mirror.size());
    if (mirror.size() % 29 == 0 && !mirror.empty()) {
      for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        ASSERT_TRUE(BitEqual(board.Quantile(q).ValueOrDie(),
                             QuantileSorted(mirror, q)));
      }
    }
  }
}

// Deterministic construction that forces the borrow rebalance (adjacent
// pair too full to merge): a 50-element left leaf next to a leaf drained to
// one under the minimum must steal exactly one element across the shared
// boundary, in both directions.
TEST(FlatOrderBoardTest, UnderflowBorrowsAcrossLeafBoundary) {
  constexpr size_t kCap = FlatOrderBoard::kLeafCapacity;
  constexpr size_t kMin = FlatOrderBoard::kLeafMin;
  FlatOrderBoard board;
  std::vector<double> mirror;
  auto insert = [&](double v, size_t times) {
    for (size_t i = 0; i < times; ++i) {
      board.Insert(v);
      mirror.push_back(v);
    }
  };
  auto erase = [&](double v, size_t times) {
    for (size_t i = 0; i < times; ++i) {
      ASSERT_TRUE(board.EraseOne(v));
      mirror.erase(std::find(mirror.begin(), mirror.end(), v));
    }
  };
  auto check = [&]() {
    std::vector<double> sorted = mirror;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(board.size(), sorted.size());
    for (size_t k = 0; k < sorted.size(); ++k) {
      ASSERT_TRUE(BitEqual(board.Kth(k), sorted[k])) << "k=" << k;
    }
  };
  // Ascending fill of kCap + 1 distinct values splits into two leaves with
  // disjoint ranges: [0, kCap/2) and [kCap/2, kCap].
  for (size_t i = 0; i <= kCap; ++i) insert(static_cast<double>(i), 1);
  // Pad the left leaf (values < kCap/2) to kCap - kMin + 2 so a merge with
  // a (kMin - 1)-sized sibling would overflow by one — borrow territory.
  insert(static_cast<double>(kCap / 2) - 0.5, kCap - kMin + 2 - kCap / 2);
  // Drain the right leaf to kMin - 1: it must borrow the left leaf's
  // largest (the 31.5 pad value) across the boundary.
  for (size_t i = 0; i < kCap / 2 + 2 - kMin; ++i) {
    erase(static_cast<double>(kCap - i), 1);
  }
  check();
  // Mirror image: pad the *right* leaf until it cannot merge, then
  // underflow the left leaf so it borrows the right leaf's smallest.
  board.Clear();
  mirror.clear();
  for (size_t i = 0; i <= kCap; ++i) insert(static_cast<double>(i), 1);
  insert(static_cast<double>(kCap) + 0.5, kCap - kMin + 2 - (kCap / 2 + 1));
  erase(0.0, 1);
  for (size_t i = 1; i <= kCap / 2 - kMin; ++i) {
    erase(static_cast<double>(i), 1);
  }
  check();
}

TEST(FlatOrderBoardTest, QuantileMatchesSortedOracleExactly) {
  FlatOrderBoard board;
  std::vector<double> values;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    double v = rng.Uniform(-3.0, 3.0);
    board.Insert(v);
    values.push_back(v);
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.001, 0.1, 0.25, 0.5, 0.9, 0.95, 0.999, 1.0}) {
    EXPECT_EQ(board.Quantile(q).ValueOrDie(), QuantileSorted(sorted, q))
        << "q=" << q;
  }
  for (int i = 0; i < 50; ++i) {
    double x = rng.Uniform(-4.0, 4.0);
    EXPECT_EQ(board.PercentileRank(x), PercentileRankSorted(sorted, x))
        << "x=" << x;
  }
}

// Randomized property sweep against a multiset oracle *and* the treap in
// lockstep — insert / erase / clear interleavings with duplicate pressure.
// The treap comparison is the backend-vs-backend half of the bit-identity
// contract at the raw-structure level.
TEST(FlatOrderBoardTest, PropertyAgainstMultisetOracleAndTreap) {
  FlatOrderBoard board;
  IndexedBoard treap;
  std::vector<double> oracle;  // unsorted mirror
  Rng rng(99);
  for (int op = 0; op < 6000; ++op) {
    double roll = rng.Uniform();
    if (roll < 0.55 || oracle.empty()) {
      double v = rng.Uniform(-10.0, 10.0);
      if (rng.Bernoulli(0.25)) v = std::round(v);  // force duplicates
      board.Insert(v);
      treap.Insert(v);
      oracle.push_back(v);
    } else if (roll < 0.75) {
      size_t idx = static_cast<size_t>(rng.UniformInt(oracle.size()));
      double v = oracle[idx];
      EXPECT_TRUE(board.EraseOne(v));
      EXPECT_TRUE(treap.EraseOne(v));
      oracle[idx] = oracle.back();
      oracle.pop_back();
    } else if (roll < 0.995) {
      ASSERT_EQ(board.size(), oracle.size());
      std::vector<double> sorted = oracle;
      std::sort(sorted.begin(), sorted.end());
      size_t k = static_cast<size_t>(rng.UniformInt(sorted.size()));
      // Kth compares numerically: ±0.0 instances are multiset-equal, so
      // their relative order among equal keys is backend-unspecified.
      EXPECT_EQ(board.Kth(k), sorted[k]);
      EXPECT_EQ(board.Kth(k), treap.Kth(k));
      double q = rng.Uniform();
      EXPECT_TRUE(BitEqual(board.Quantile(q).ValueOrDie(),
                           QuantileSorted(sorted, q)));
      EXPECT_TRUE(BitEqual(board.Quantile(q).ValueOrDie(),
                           treap.Quantile(q).ValueOrDie()));
      double x = rng.Uniform(-11.0, 11.0);
      EXPECT_TRUE(BitEqual(board.PercentileRank(x),
                           PercentileRankSorted(sorted, x)));
      EXPECT_TRUE(BitEqual(board.PercentileRank(x), treap.PercentileRank(x)));
    } else {
      board.Clear();
      treap.Clear();
      oracle.clear();
    }
  }
}

// Reserved-pool stress: Reserve() then long erase/insert churn at a fixed
// multiset size — the steady state of a capacity-bounded reservoir, where
// merged-away leaves feed the slot free list that later splits drain. Any
// slot-recycling corruption (stale order entries, Fenwick drift) surfaces
// as divergence from the sorted oracle replayed alongside.
TEST(FlatOrderBoardTest, PooledChurnMatchesSortedOracleBitForBit) {
  FlatOrderBoard board;
  board.Reserve(256);
  std::vector<double> oracle;
  Rng rng(9001);
  for (int i = 0; i < 256; ++i) {
    double v = rng.Uniform(-3.0, 3.0);
    if (rng.Bernoulli(0.25)) v = std::round(v);  // duplicate pressure
    board.Insert(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  for (int cycle = 0; cycle < 4000; ++cycle) {
    size_t victim_rank = static_cast<size_t>(rng.UniformInt(oracle.size()));
    double victim = oracle[victim_rank];
    ASSERT_TRUE(board.EraseOne(victim));
    oracle.erase(oracle.begin() + static_cast<long>(victim_rank));
    double v = rng.Uniform(-3.0, 3.0);
    if (rng.Bernoulli(0.25)) v = std::round(v);
    board.Insert(v);
    oracle.insert(std::upper_bound(oracle.begin(), oracle.end(), v), v);

    ASSERT_EQ(board.size(), oracle.size());
    if (cycle % 7 == 0) {
      size_t k = static_cast<size_t>(rng.UniformInt(oracle.size()));
      ASSERT_EQ(board.Kth(k), oracle[k]) << "cycle " << cycle;
      double q = rng.Uniform();
      ASSERT_EQ(board.Quantile(q).ValueOrDie(), QuantileSorted(oracle, q))
          << "cycle " << cycle;
      double x = rng.Uniform(-3.5, 3.5);
      ASSERT_EQ(board.PercentileRank(x), PercentileRankSorted(oracle, x))
          << "cycle " << cycle;
    }
  }
}

// Clear() must reset the pool cleanly: a reused board is indistinguishable
// from a fresh one under the same op stream.
TEST(FlatOrderBoardTest, ClearResetsPoolForBitIdenticalReuse) {
  FlatOrderBoard reused;
  Rng fill(31337);
  for (int i = 0; i < 500; ++i) reused.Insert(fill.Uniform());
  reused.Clear();
  EXPECT_EQ(reused.size(), 0u);

  FlatOrderBoard fresh;
  Rng a(555), b(555);
  for (int i = 0; i < 300; ++i) {
    reused.Insert(a.Uniform(-1.0, 1.0));
    fresh.Insert(b.Uniform(-1.0, 1.0));
  }
  ASSERT_EQ(reused.size(), fresh.size());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_EQ(reused.Quantile(q).ValueOrDie(), fresh.Quantile(q).ValueOrDie());
  }
}

}  // namespace
}  // namespace itrim
