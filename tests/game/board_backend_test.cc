// Cross-backend PublicBoard contract: the two order-statistic backends
// (flat B-tree board and treap) are interchangeable not just per query but
// across *snapshots* — a Snapshot taken under one backend restores into a
// board configured with the other, and the resumed stream is bit-identical
// (values, reservoir decisions, every quantile/rank). Exercised at both
// the PublicBoard level and end to end through TrimmingSession
// checkpoint/restore with the backend swapped at the restore boundary.
//
// Also covers the capacity-mismatch Restore error path: a snapshot holding
// more values than the target board's configured capacity is rejected with
// InvalidArgument and leaves the target untouched.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "game/public_board.h"
#include "game/score_model.h"
#include "game/session.h"
#include "game/strategies.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

TEST(BoardBackendTest, NamesAndDefault) {
  EXPECT_STREQ(BoardBackendName(BoardBackend::kFlat), "flat");
  EXPECT_STREQ(BoardBackendName(BoardBackend::kTreap), "treap");
  PublicBoard board;
  EXPECT_EQ(board.backend(), BoardBackend::kFlat);
  GameConfig config;
  EXPECT_EQ(config.board_backend, BoardBackend::kFlat);
}

// One follow-on stream, applied to two boards; asserts they stay
// bit-identical in slot order and in every query along the way.
void ExpectBoardsTrackBitIdentically(PublicBoard* a, PublicBoard* b,
                                     uint64_t follow_seed) {
  Rng fa(follow_seed), fb(follow_seed);
  for (int i = 0; i < 400; ++i) {
    a->RecordOne(fa.Uniform(-2.0, 2.0));
    b->RecordOne(fb.Uniform(-2.0, 2.0));
    ASSERT_EQ(a->values(), b->values()) << "record " << i;
    double q = fa.Uniform();
    ASSERT_TRUE(BitEqual(q, fb.Uniform()));
    ASSERT_TRUE(BitEqual(a->Quantile(q).ValueOrDie(),
                         b->Quantile(q).ValueOrDie()))
        << "record " << i;
    double x = fa.Uniform(-2.5, 2.5);
    fb.Uniform(-2.5, 2.5);
    ASSERT_TRUE(BitEqual(a->PercentileRank(x), b->PercentileRank(x)))
        << "record " << i;
  }
}

class CrossBackendSnapshotTest
    : public ::testing::TestWithParam<std::pair<BoardBackend, BoardBackend>> {
};

TEST_P(CrossBackendSnapshotTest, SnapshotRestoresAcrossBackends) {
  const auto [from, to] = GetParam();
  SCOPED_TRACE(std::string(BoardBackendName(from)) + " -> " +
               BoardBackendName(to));
  // Source board runs well past capacity so the snapshot carries live
  // reservoir state (total_recorded > size, mid-stream rng).
  PublicBoard source(/*capacity=*/50, /*seed=*/8, from);
  Rng rng(12);
  for (int i = 0; i < 500; ++i) source.RecordOne(rng.Uniform());
  PublicBoard::Snapshot snapshot = source.Save();

  PublicBoard restored(/*capacity=*/50, /*seed=*/0, to);
  ASSERT_TRUE(restored.Restore(snapshot).ok());
  EXPECT_EQ(restored.backend(), to);
  EXPECT_EQ(restored.size(), source.size());
  EXPECT_EQ(restored.total_recorded(), source.total_recorded());
  EXPECT_EQ(restored.values(), source.values());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    ASSERT_TRUE(BitEqual(restored.Quantile(q).ValueOrDie(),
                         source.Quantile(q).ValueOrDie()))
        << "q=" << q;
  }
  for (double x : {-0.5, 0.0, 0.25, 0.5, 0.75, 1.0, 1.5}) {
    ASSERT_TRUE(BitEqual(restored.PercentileRank(x), source.PercentileRank(x)))
        << "x=" << x;
  }
  // Both continue under the same stream: the restored rng snapshot makes
  // reservoir replacement decisions identical regardless of backend.
  ExpectBoardsTrackBitIdentically(&source, &restored, /*follow_seed=*/77);
}

INSTANTIATE_TEST_SUITE_P(
    Directions, CrossBackendSnapshotTest,
    ::testing::Values(
        std::make_pair(BoardBackend::kTreap, BoardBackend::kFlat),
        std::make_pair(BoardBackend::kFlat, BoardBackend::kTreap),
        std::make_pair(BoardBackend::kFlat, BoardBackend::kFlat),
        std::make_pair(BoardBackend::kTreap, BoardBackend::kTreap)),
    [](const auto& info) {
      return std::string(BoardBackendName(info.param.first)) + "To" +
             BoardBackendName(info.param.second);
    });

TEST(BoardBackendTest, RestoreRejectsOverCapacitySnapshot) {
  for (BoardBackend to : {BoardBackend::kFlat, BoardBackend::kTreap}) {
    SCOPED_TRACE(BoardBackendName(to));
    PublicBoard big(/*capacity=*/0, /*seed=*/3);
    Rng rng(21);
    for (int i = 0; i < 80; ++i) big.RecordOne(rng.Uniform());
    PublicBoard::Snapshot snapshot = big.Save();

    PublicBoard small(/*capacity=*/50, /*seed=*/3, to);
    small.RecordOne(0.25);
    Status status = small.Restore(snapshot);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    // The failed restore left the target untouched.
    EXPECT_EQ(small.size(), 1u);
    EXPECT_EQ(small.total_recorded(), 1u);
    EXPECT_TRUE(BitEqual(small.Quantile(0.5).ValueOrDie(), 0.25));
  }
}

// End to end: a session checkpointed under one backend resumes under the
// other and finishes bit-identical to an uninterrupted reference run —
// the SessionCheckpoint is backend-portable, not just the raw Snapshot.
TEST(BoardBackendTest, SessionCheckpointRestoresAcrossBackends) {
  Dataset data = MakeControl(41, 100);
  GameConfig config;
  config.rounds = 12;
  config.round_size = 100;
  config.attack_ratio = 0.25;
  config.board_capacity = 300;  // small enough that the reservoir engages
  config.seed = 13;

  auto run_reference = [&](BoardBackend backend) {
    GameConfig ref_config = config;
    ref_config.board_backend = backend;
    TitfortatCollector collector(+0.01, -0.03, 0.9);
    ElasticAdversary adversary(0.5);
    DistanceScoreModel model(&data);
    TrimmingSession session(ref_config, &model, &collector, &adversary,
                            nullptr);
    return session.RunToCompletion().ValueOrDie();
  };
  GameSummary flat_full = run_reference(BoardBackend::kFlat);
  GameSummary treap_full = run_reference(BoardBackend::kTreap);
  // The backends are bit-identical end to end on a straight run.
  ExpectSummaryBitIdentical(flat_full, treap_full);

  // Interrupted run under the treap, resumed under the flat board.
  GameConfig first_config = config;
  first_config.board_backend = BoardBackend::kTreap;
  TitfortatCollector c_first(+0.01, -0.03, 0.9);
  ElasticAdversary a_first(0.5);
  DistanceScoreModel m_first(&data);
  TrimmingSession first(first_config, &m_first, &c_first, &a_first, nullptr);
  ASSERT_TRUE(first.Bootstrap().ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(first.Step().ok());
  SessionCheckpoint checkpoint = first.Checkpoint();

  GameConfig resumed_config = config;
  resumed_config.board_backend = BoardBackend::kFlat;
  TitfortatCollector c_resumed(+0.01, -0.03, 0.9);
  ElasticAdversary a_resumed(0.5);
  DistanceScoreModel m_resumed(&data);
  TrimmingSession resumed(resumed_config, &m_resumed, &c_resumed, &a_resumed,
                          nullptr);
  ASSERT_TRUE(resumed.Restore(checkpoint).ok());
  EXPECT_EQ(resumed.board().backend(), BoardBackend::kFlat);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(resumed.Step().ok());

  ExpectSummaryBitIdentical(flat_full, resumed.Finish());
}

// Session restore propagates the board's capacity-mismatch error instead
// of silently truncating the record.
TEST(BoardBackendTest, SessionRestoreSurfacesBoardCapacityMismatch) {
  Dataset data = MakeControl(41, 100);
  GameConfig config;
  config.rounds = 6;
  config.round_size = 100;
  config.attack_ratio = 0.25;
  config.board_capacity = 0;  // unbounded source: board grows past 500
  config.seed = 13;
  TitfortatCollector collector(+0.01, -0.03, 0.9);
  ElasticAdversary adversary(0.5);
  DistanceScoreModel model(&data);
  TrimmingSession session(config, &model, &collector, &adversary, nullptr);
  ASSERT_TRUE(session.Bootstrap().ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(session.Step().ok());
  SessionCheckpoint checkpoint = session.Checkpoint();
  ASSERT_GT(checkpoint.board.values.size(), 100u);

  GameConfig small_config = config;
  small_config.board_capacity = 100;
  TitfortatCollector c2(+0.01, -0.03, 0.9);
  ElasticAdversary a2(0.5);
  DistanceScoreModel m2(&data);
  TrimmingSession target(small_config, &m2, &c2, &a2, nullptr);
  Status status = target.Restore(checkpoint);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace itrim
