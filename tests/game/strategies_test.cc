#include "game/strategies.h"

#include <gtest/gtest.h>

#include <cmath>

namespace itrim {
namespace {

RoundContext Ctx(int round, double tth = 0.9) {
  RoundContext ctx;
  ctx.round = round;
  ctx.tth = tth;
  return ctx;
}

TEST(OstrichTest, NeverTrims) {
  OstrichCollector c;
  EXPECT_GE(c.TrimPercentile(Ctx(1)), 1.0);
  EXPECT_GE(c.TrimPercentile(Ctx(100)), 1.0);
  EXPECT_EQ(c.termination_round(), 0);
}

TEST(StaticTest, ConstantThreshold) {
  StaticCollector c(0.93, "X");
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(1)), 0.93);
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(50)), 0.93);
  EXPECT_EQ(c.name(), "X");
}

TEST(TitfortatTest, SoftUntilTriggered) {
  TitfortatCollector c(+0.01, -0.03, /*trigger_quality=*/0.8);
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(1)), 0.91);
  // A good round does not trigger.
  c.Observe(RoundObservation{1, 0.91, 0.95, 0.9, 100, 95});
  EXPECT_FALSE(c.triggered());
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(2)), 0.91);
  // A bad round triggers permanently.
  c.Observe(RoundObservation{2, 0.91, 0.95, 0.5, 100, 95});
  EXPECT_TRUE(c.triggered());
  EXPECT_EQ(c.termination_round(), 2);
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(3)), 0.87);
  // Later good rounds do not untrigger (rigid trigger strategy).
  c.Observe(RoundObservation{3, 0.87, 0.95, 1.0, 100, 95});
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(4)), 0.87);
}

TEST(TitfortatTest, ResetClearsTrigger) {
  TitfortatCollector c(+0.01, -0.03, 0.8);
  c.Observe(RoundObservation{1, 0.91, 0.95, 0.0, 100, 95});
  ASSERT_TRUE(c.triggered());
  c.Reset();
  EXPECT_FALSE(c.triggered());
  EXPECT_EQ(c.termination_round(), 0);
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(1)), 0.91);
}

TEST(TitfortatTest, NanQualityNeverTriggers) {
  TitfortatCollector c(+0.01, -0.03, 0.8);
  c.Observe(RoundObservation{1, 0.91, 0.95, std::nan(""), 100, 95});
  EXPECT_FALSE(c.triggered());
}

TEST(ElasticCollectorTest, InitialOffsetThenResponds) {
  ElasticCollector c(0.5);
  // Round 1: Tth - 3%.
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(1)), 0.87);
  // Observed injection at 0.99: T(2) = 0.9 + 0.5*(0.99 - 0.9 - 0.01) = 0.94.
  c.Observe(RoundObservation{1, 0.87, 0.99, 1.0, 100, 90});
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(2)), 0.94);
  // Observed injection at 0.90: T(3) = 0.9 + 0.5*(-0.01) = 0.895.
  c.Observe(RoundObservation{2, 0.94, 0.90, 1.0, 100, 90});
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(3)), 0.895);
}

TEST(ElasticCollectorTest, CleanRoundRelaxesToTth) {
  ElasticCollector c(0.5);
  c.TrimPercentile(Ctx(1));
  c.Observe(RoundObservation{1, 0.87, std::nan(""), 1.0, 100, 100});
  EXPECT_DOUBLE_EQ(c.TrimPercentile(Ctx(2)), 0.9);
}

TEST(ElasticCollectorTest, NameEncodesK) {
  EXPECT_EQ(ElasticCollector(0.1).name(), "Elastic0.1");
  EXPECT_EQ(ElasticCollector(0.5).name(), "Elastic0.5");
}

TEST(FixedPercentileAdversaryTest, Constant) {
  FixedPercentileAdversary a(0.99);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(a.InjectionPercentile(Ctx(1), &rng), 0.99);
  EXPECT_DOUBLE_EQ(a.InjectionPercentile(Ctx(9), &rng), 0.99);
}

TEST(UniformRangeAdversaryTest, StaysInRange) {
  UniformRangeAdversary a(0.9, 1.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double x = a.InjectionPercentile(Ctx(1), &rng);
    EXPECT_GE(x, 0.9);
    EXPECT_LT(x, 1.0);
  }
}

TEST(ThresholdOffsetAdversaryTest, TracksCollector) {
  ThresholdOffsetAdversary a(-0.01);
  Rng rng(3);
  // Round 1: no observation yet -> relative to Tth.
  EXPECT_DOUBLE_EQ(a.InjectionPercentile(Ctx(1), &rng), 0.89);
  RoundContext ctx = Ctx(2);
  ctx.prev_collector_percentile = 0.95;
  EXPECT_DOUBLE_EQ(a.InjectionPercentile(ctx, &rng), 0.94);
}

TEST(ElasticAdversaryTest, CoupledUpdate) {
  ElasticAdversary a(0.5);
  Rng rng(4);
  // Round 1: Tth + 1%.
  EXPECT_DOUBLE_EQ(a.InjectionPercentile(Ctx(1), &rng), 0.91);
  // Observed collector at 0.87: A(2) = 0.9 - 0.03 + 0.5*(0.87-0.9) = 0.855.
  a.Observe(RoundObservation{1, 0.87, 0.91, 1.0, 100, 90});
  EXPECT_DOUBLE_EQ(a.InjectionPercentile(Ctx(2), &rng), 0.855);
}

TEST(ElasticAdversaryTest, ResetRestoresInitialPlay) {
  ElasticAdversary a(0.5);
  Rng rng(5);
  a.Observe(RoundObservation{1, 0.87, 0.91, 1.0, 100, 90});
  a.Reset();
  EXPECT_DOUBLE_EQ(a.InjectionPercentile(Ctx(1), &rng), 0.91);
}

TEST(MixedPercentileAdversaryTest, ExtremesArePure) {
  Rng rng(6);
  MixedPercentileAdversary always_hi(1.0);
  MixedPercentileAdversary always_lo(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(always_hi.InjectionPercentile(Ctx(1), &rng), 0.99);
    EXPECT_DOUBLE_EQ(always_lo.InjectionPercentile(Ctx(1), &rng), 0.90);
  }
}

TEST(MixedPercentileAdversaryTest, MixesAtRateP) {
  Rng rng(7);
  MixedPercentileAdversary a(0.3);
  int hi = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (a.InjectionPercentile(Ctx(1), &rng) > 0.95) ++hi;
  }
  EXPECT_NEAR(static_cast<double>(hi) / n, 0.3, 0.02);
}

// Property: the coupled Elastic pair converges to the analytic fixed point
// A* = Tth - (3% + 1% k^2)/(1 - k^2).
class ElasticConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(ElasticConvergenceTest, ConvergesToFixedPoint) {
  const double k = GetParam();
  const double tth = 0.9;
  ElasticCollector collector(k);
  ElasticAdversary adversary(k);
  Rng rng(8);
  double t = 0.0, a = 0.0;
  // Convergence rate is k^2 per two rounds; 400 rounds suffice even at
  // k = 0.9 (0.81^200 ~ 5e-19).
  for (int round = 1; round <= 400; ++round) {
    RoundContext ctx = Ctx(round, tth);
    t = collector.TrimPercentile(ctx);
    a = adversary.InjectionPercentile(ctx, &rng);
    RoundObservation obs{round, t, a, 1.0, 100, 90};
    collector.Observe(obs);
    adversary.Observe(obs);
  }
  double a_star = tth - (0.03 + 0.01 * k * k) / (1.0 - k * k);
  double t_star = tth + k * ((a_star - tth) - 0.01);
  EXPECT_NEAR(a, a_star, 1e-9) << "k=" << k;
  EXPECT_NEAR(t, t_star, 1e-9) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, ElasticConvergenceTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace itrim
