#include "game/position_map.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "data/generators.h"

namespace itrim {
namespace {

std::vector<std::vector<double>> GaussianSample(size_t n, size_t dims,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(dims);
    for (auto& v : row) v = rng.Normal();
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(PositionMapTest, ValidatesInput) {
  EXPECT_FALSE(PositionMap::Build({}).ok());
  EXPECT_FALSE(PositionMap::Build({{1.0}}).ok());
  EXPECT_FALSE(PositionMap::Build({{1.0}, {1.0, 2.0}}).ok());
  // Constant sample: no spread around the centroid.
  EXPECT_FALSE(PositionMap::Build({{1.0, 1.0}, {1.0, 1.0}}).ok());
}

TEST(PositionMapTest, DistanceIsMonotoneInPosition) {
  auto map = PositionMap::Build(GaussianSample(2000, 8, 1)).ValueOrDie();
  double prev = -1.0;
  for (double a = 0.0; a <= 1.3; a += 0.01) {
    double d = map.DistanceAt(a);
    EXPECT_GE(d, prev) << "a=" << a;
    prev = d;
  }
}

TEST(PositionMapTest, RoundTripPositionDistance) {
  auto map = PositionMap::Build(GaussianSample(2000, 8, 2)).ValueOrDie();
  for (double a : {0.55, 0.7, 0.85, 0.9, 0.95, 0.99, 1.0, 1.1}) {
    EXPECT_NEAR(map.PositionOf(map.DistanceAt(a)), a, 0.006) << "a=" << a;
  }
}

TEST(PositionMapTest, MakePointHasRequestedPosition) {
  auto map = PositionMap::Build(GaussianSample(2000, 8, 3)).ValueOrDie();
  Rng rng(4);
  auto dir = rng.UnitVector(8);
  for (double a : {0.87, 0.9, 0.99}) {
    auto point = map.MakePoint(a, dir);
    EXPECT_NEAR(map.PositionOfRow(point), a, 0.006) << "a=" << a;
  }
}

TEST(PositionMapTest, ExtrapolatesBeyondDomain) {
  auto map = PositionMap::Build(GaussianSample(2000, 8, 5)).ValueOrDie();
  double d1 = map.DistanceAt(1.0);
  EXPECT_NEAR(map.DistanceAt(1.5), 1.5 * d1, 1e-9);
  EXPECT_NEAR(map.PositionOf(2.0 * d1), 2.0, 1e-9);
}

TEST(PositionMapTest, ShrinksTowardCentroid) {
  auto map = PositionMap::Build(GaussianSample(2000, 8, 6)).ValueOrDie();
  EXPECT_NEAR(map.DistanceAt(0.0), 0.0, 1e-12);
  EXPECT_NEAR(map.PositionOfRow(map.centroid()), 0.0, 1e-9);
}

TEST(PositionMapTest, ControlGeometryMatchesProbe) {
  // The calibration facts DESIGN.md relies on: benign loss at threshold
  // T = 0.9 is ~12%, and ~0 at T >= 0.95 (Fig 4 vs Fig 5 overhead).
  Dataset control = MakeControl(21);
  auto map = PositionMap::Build(control.rows).ValueOrDie();
  size_t above_90 = 0, above_95 = 0;
  for (const auto& row : control.rows) {
    double pos = map.PositionOfRow(row);
    if (pos > 0.90) ++above_90;
    if (pos > 0.95) ++above_95;
  }
  double frac_90 = static_cast<double>(above_90) / control.size();
  double frac_95 = static_cast<double>(above_95) / control.size();
  EXPECT_NEAR(frac_90, 0.12, 0.05);
  EXPECT_LT(frac_95, 0.01);
}

TEST(PositionMapTest, DamageGapBetweenPositions) {
  // Poison at position 0.99 must be much farther out than at 0.87 — the
  // damage gap behind the Ostrich-vs-defenses ordering.
  Dataset control = MakeControl(22);
  auto map = PositionMap::Build(control.rows).ValueOrDie();
  EXPECT_GT(map.DistanceAt(0.99), 1.5 * map.DistanceAt(0.87));
}

// Property sweep: the map stays consistent across datasets.
class PositionMapDatasetTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PositionMapDatasetTest, InverseConsistency) {
  auto data = MakeByName(GetParam(), 7, 0.1).ValueOrDie();
  auto map = PositionMap::Build(data.rows).ValueOrDie();
  for (double a : {0.6, 0.8, 0.9, 0.99}) {
    EXPECT_NEAR(map.PositionOf(map.DistanceAt(a)), a, 0.01)
        << GetParam() << " a=" << a;
  }
  // Benign rows score mostly below 1 (within the observed domain).
  size_t above_one = 0;
  for (const auto& row : data.rows) {
    if (map.PositionOfRow(row) > 1.0) ++above_one;
  }
  EXPECT_LT(static_cast<double>(above_one) / data.size(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Datasets, PositionMapDatasetTest,
                         ::testing::Values("control", "vehicle", "letter",
                                           "creditcard"));

}  // namespace
}  // namespace itrim
