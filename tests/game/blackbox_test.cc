#include "game/blackbox.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "game/collection_game.h"

namespace itrim {
namespace {

std::vector<double> UniformPool(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pool;
  for (size_t i = 0; i < n; ++i) pool.push_back(rng.Uniform());
  return pool;
}

TEST(ProbingAdversaryTest, BinarySearchAgainstStaticThreshold) {
  // Black-box attacker vs a static collector at 0.9: after enough rounds
  // the probe bracket must converge to the true threshold.
  auto pool = UniformPool(5000, 1);
  GameConfig config;
  config.rounds = 25;
  config.round_size = 400;
  config.attack_ratio = 0.1;
  config.tth = 0.9;
  config.seed = 3;
  StaticCollector collector(0.9, "static");
  ProbingAdversary adversary(0.5, 1.0);
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_NEAR(adversary.bracket_lo(), 0.9, 0.03);
  // Late rounds should be injecting just below the threshold (surviving).
  size_t late_kept = 0, late_received = 0;
  for (size_t i = summary.rounds.size() - 5; i < summary.rounds.size(); ++i) {
    late_kept += summary.rounds[i].poison_kept;
    late_received += summary.rounds[i].poison_received;
  }
  EXPECT_GT(static_cast<double>(late_kept) /
                static_cast<double>(late_received),
            0.6);
}

TEST(ProbingAdversaryTest, RecoversIdealAttackUtility) {
  // The black-box prober should approach (not exceed) the white-box ideal
  // attack's survival against the same static defense.
  auto pool = UniformPool(5000, 2);
  GameConfig config;
  config.rounds = 30;
  config.round_size = 400;
  config.attack_ratio = 0.1;
  config.tth = 0.9;
  config.seed = 5;

  StaticCollector c1(0.9, "static");
  ThresholdOffsetAdversary white_box(-0.01);
  ScalarCollectionGame g1(config, &pool, &c1, &white_box, nullptr);
  double ideal = g1.Run().ValueOrDie().PoisonSurvivalRate();

  StaticCollector c2(0.9, "static");
  ProbingAdversary black_box(0.5, 1.0);
  ScalarCollectionGame g2(config, &pool, &c2, &black_box, nullptr);
  double probed = g2.Run().ValueOrDie().PoisonSurvivalRate();

  EXPECT_GT(probed, 0.5 * ideal);   // learns most of the ideal utility
  EXPECT_LE(probed, ideal + 0.05);  // but cannot beat white-box knowledge
}

TEST(ProbingAdversaryTest, ResetRestoresBracket) {
  ProbingAdversary adversary(0.5, 1.0);
  RoundContext ctx;
  Rng rng(1);
  adversary.InjectionPercentile(ctx, &rng);
  RoundObservation obs;
  obs.poison_received = 10;
  obs.poison_kept = 10;
  adversary.Observe(obs);
  EXPECT_GT(adversary.bracket_lo(), 0.5);
  adversary.Reset();
  EXPECT_DOUBLE_EQ(adversary.bracket_lo(), 0.5);
  EXPECT_DOUBLE_EQ(adversary.bracket_hi(), 1.0);
}

TEST(ProbingAdversaryTest, NoPoisonFeedbackLeavesBracket) {
  ProbingAdversary adversary(0.5, 1.0);
  RoundObservation obs;  // poison_received = 0
  adversary.Observe(obs);
  EXPECT_DOUBLE_EQ(adversary.bracket_lo(), 0.5);
  EXPECT_DOUBLE_EQ(adversary.bracket_hi(), 1.0);
}

TEST(ProbingAdversaryTest, TrimmedProbeLowersUpperBound) {
  ProbingAdversary adversary(0.5, 1.0);
  RoundContext ctx;
  Rng rng(2);
  double probe = adversary.InjectionPercentile(ctx, &rng);
  EXPECT_DOUBLE_EQ(probe, 0.75);
  RoundObservation obs;
  obs.poison_received = 10;
  obs.poison_kept = 0;  // everything trimmed: threshold below the probe
  adversary.Observe(obs);
  EXPECT_DOUBLE_EQ(adversary.bracket_hi(), 0.75);
}

TEST(ProbingAdversaryTest, ChasesAdaptiveCollector) {
  // Against an Elastic collector both sides adapt; the game must stay
  // well-behaved and the prober must keep a meaningful survival rate.
  auto pool = UniformPool(5000, 7);
  GameConfig config;
  config.rounds = 40;
  config.round_size = 400;
  config.attack_ratio = 0.1;
  config.tth = 0.9;
  config.seed = 11;
  ElasticCollector collector(0.5);
  ProbingAdversary adversary(0.5, 1.0);
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  GameSummary summary = game.Run().ValueOrDie();
  EXPECT_GT(summary.PoisonSurvivalRate(), 0.2);
  EXPECT_LT(summary.BenignLossFraction(), 0.3);
}

}  // namespace
}  // namespace itrim
