// ReferencePolicy seam: the explicit PercentileReference is the default
// (bit for bit), the fitted-model policy validates its model, and its trim
// keeps exactly the budgeted lowest-residual rows.
#include "game/reference_policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "data/generators.h"
#include "game/public_board.h"
#include "game/score_model.h"
#include "game/session.h"
#include "game/strategies.h"
#include "ml/residual_score_model.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

GameConfig SmallConfig(uint64_t seed) {
  GameConfig config;
  config.rounds = 8;
  config.round_size = 50;
  config.attack_ratio = 0.2;
  config.bootstrap_size = 80;
  config.seed = seed;
  return config;
}

// Passing an explicit PercentileReference must be indistinguishable from
// passing nothing — the policy extraction cannot move a single bit.
TEST(ReferencePolicyTest, ExplicitPercentileMatchesDefaultBitForBit) {
  Dataset data = MakeControl(17, 60);

  DistanceScoreModel m_default(&data);
  ElasticCollector c_default(0.5);
  ElasticAdversary a_default(0.5);
  TrimmingSession with_default(SmallConfig(7), &m_default, &c_default,
                               &a_default, nullptr);
  ASSERT_TRUE(with_default.Bootstrap().ok());
  ASSERT_TRUE(with_default.RunToCompletion().ok());

  DistanceScoreModel m_explicit(&data);
  ElasticCollector c_explicit(0.5);
  ElasticAdversary a_explicit(0.5);
  PercentileReference percentile;
  TrimmingSession with_explicit(SmallConfig(7), &m_explicit, &c_explicit,
                                &a_explicit, nullptr, &percentile);
  ASSERT_TRUE(with_explicit.Bootstrap().ok());
  ASSERT_TRUE(with_explicit.RunToCompletion().ok());

  ExpectSummaryBitIdentical(with_default.Finish(), with_explicit.Finish());
}

TEST(ReferencePolicyTest, DefaultPolicyIsSharedAndNamed) {
  PercentileReference* shared = DefaultReferencePolicy();
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared, DefaultReferencePolicy());
  EXPECT_EQ(shared->name(), "percentile");
  FittedModelReference fitted;
  EXPECT_EQ(fitted.name(), "fitted_model");
}

// The fitted-model policy refuses models that cannot hand it observations;
// the session surfaces that at Bootstrap() rather than mid-round.
TEST(ReferencePolicyTest, FittedModelValidateRejectsScalarModels) {
  std::vector<double> pool = UniformPool(500, 13);
  IdentityScoreModel model(&pool);
  FittedModelReference reference;
  EXPECT_EQ(reference.Validate(model).code(), StatusCode::kInvalidArgument);

  ElasticCollector collector(0.5);
  ElasticAdversary adversary(0.5);
  TrimmingSession session(SmallConfig(3), &model, &collector, &adversary,
                          nullptr, &reference);
  EXPECT_EQ(session.Bootstrap().code(), StatusCode::kInvalidArgument);

  RegressionData source = MakeSyntheticRegression(200, 2, 0.1, 5);
  ResidualScoreModel residual(&source);
  EXPECT_TRUE(reference.Validate(residual).ok());
  FittedModelReference::Options bad;
  bad.max_refits = 0;
  EXPECT_EQ(FittedModelReference(bad).Validate(residual).code(),
            StatusCode::kInvalidArgument);
}

// Driving TrimRound directly: a threshold q keeps exactly the
// floor(q * n) lowest-residual rows (clamped to leave enough to fit), and
// every kept row's residual against the final refit sits at or below the
// reported cutoff's selection-time contract: the kept count matches and
// poisoned extremes fall outside the kept set.
TEST(ReferencePolicyTest, FittedModelTrimKeepsBudgetedLowestResidualRows) {
  RegressionData source = MakeSyntheticRegression(300, 2, 0.05, 17);
  ResidualScoreModel model(&source);
  Rng rng(29);
  PublicBoard board;
  ASSERT_TRUE(model.BeginRun().ok());
  ASSERT_TRUE(model.Bootstrap(100, &rng, &board).ok());

  model.BeginRound(40);
  model.AppendBenignBatch(36, &rng);
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(model.AppendPoison(1.4, &rng, board).ok());
  }

  FittedModelReference reference;
  TrimOutcome outcome;
  ASSERT_TRUE(reference.TrimRound(0.9, &model, board, &outcome).ok());
  const size_t n = model.scores().size();
  ASSERT_EQ(n, 40u);
  ASSERT_EQ(outcome.keep.size(), n);
  EXPECT_EQ(outcome.kept_count, 36u);  // floor(0.9 * 40)
  EXPECT_EQ(outcome.removed_count, 4u);
  // Far-out poison (position 1.4: beyond every bootstrap residual) must be
  // among the removed rows.
  std::span<const char> poison = model.is_poison();
  for (size_t i = 0; i < n; ++i) {
    if (poison[i]) {
      EXPECT_EQ(outcome.keep[i], 0) << "poison row " << i << " survived";
    }
  }

  // A keep-everything threshold keeps everything and reports +inf cutoff.
  ASSERT_TRUE(reference.TrimRound(1.0, &model, board, &outcome).ok());
  EXPECT_EQ(outcome.kept_count, n);
  EXPECT_TRUE(std::isinf(outcome.cutoff));
}

}  // namespace
}  // namespace itrim
