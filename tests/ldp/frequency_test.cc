#include "ldp/frequency.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace itrim {
namespace {

// Zipf-ish truth over a small domain.
std::vector<double> MakeTruth(size_t domain) {
  std::vector<double> truth(domain);
  double total = 0.0;
  for (size_t v = 0; v < domain; ++v) {
    truth[v] = 1.0 / static_cast<double>(v + 1);
    total += truth[v];
  }
  for (double& t : truth) t /= total;
  return truth;
}

size_t SampleItem(const std::vector<double>& truth, Rng* rng) {
  return rng->Categorical(truth);
}

template <typename Oracle>
std::vector<double> EstimateHonest(const Oracle& oracle,
                                   const std::vector<double>& truth, size_t n,
                                   Rng* rng) {
  ReportAggregator agg(oracle.report_width());
  for (size_t i = 0; i < n; ++i) {
    agg.Add(oracle.Perturb(SampleItem(truth, rng), rng));
  }
  return oracle.Estimate(agg.bit_counts(), agg.count());
}

TEST(GrrTest, Validation) {
  EXPECT_FALSE(GrrOracle::Make(1, 1.0).ok());
  EXPECT_FALSE(GrrOracle::Make(8, 0.0).ok());
  EXPECT_TRUE(GrrOracle::Make(8, 1.0).ok());
}

TEST(GrrTest, ReportIsOneHot) {
  auto oracle = GrrOracle::Make(8, 1.0).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    auto report = oracle.Perturb(3, &rng);
    EXPECT_EQ(std::accumulate(report.begin(), report.end(), 0), 1);
  }
}

TEST(GrrTest, TruthProbabilityMatchesFormula) {
  auto oracle = GrrOracle::Make(10, 2.0).ValueOrDie();
  double e = std::exp(2.0);
  EXPECT_NEAR(oracle.p(), e / (e + 9.0), 1e-12);
  Rng rng(2);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (oracle.Perturb(4, &rng)[4]) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, oracle.p(), 0.01);
}

TEST(GrrTest, EstimatesAreUnbiased) {
  auto oracle = GrrOracle::Make(8, 1.5).ValueOrDie();
  auto truth = MakeTruth(8);
  Rng rng(3);
  auto estimate = EstimateHonest(oracle, truth, 200000, &rng);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(estimate[v], truth[v], 0.02) << "v=" << v;
  }
}

TEST(OueTest, Validation) {
  EXPECT_FALSE(OueOracle::Make(1, 1.0).ok());
  EXPECT_FALSE(OueOracle::Make(8, -1.0).ok());
  EXPECT_TRUE(OueOracle::Make(8, 1.0).ok());
}

TEST(OueTest, EstimatesAreUnbiased) {
  auto oracle = OueOracle::Make(8, 1.0).ValueOrDie();
  auto truth = MakeTruth(8);
  Rng rng(4);
  auto estimate = EstimateHonest(oracle, truth, 100000, &rng);
  for (size_t v = 0; v < truth.size(); ++v) {
    EXPECT_NEAR(estimate[v], truth[v], 0.02) << "v=" << v;
  }
}

TEST(OueTest, ColdBitRateMatchesQ) {
  auto oracle = OueOracle::Make(16, 2.0).ValueOrDie();
  Rng rng(5);
  int cold_hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    auto report = oracle.Perturb(0, &rng);
    cold_hits += report[7];
  }
  EXPECT_NEAR(static_cast<double>(cold_hits) / n, oracle.q(), 0.01);
}

TEST(AggregatorTest, CountsBits) {
  ReportAggregator agg(3);
  agg.Add({1, 0, 1});
  agg.Add({0, 0, 1});
  EXPECT_EQ(agg.count(), 2u);
  EXPECT_EQ(agg.bit_counts()[0], 1u);
  EXPECT_EQ(agg.bit_counts()[1], 0u);
  EXPECT_EQ(agg.bit_counts()[2], 2u);
}

TEST(MgaTest, InflatesTargetsUnderOue) {
  const size_t domain = 16;
  auto oracle = OueOracle::Make(domain, 1.0).ValueOrDie();
  auto truth = MakeTruth(domain);
  std::vector<size_t> targets = {13, 14, 15};  // unpopular items
  Rng rng(6);
  MaximalGainAttack attack(targets);

  ReportAggregator agg(domain);
  const size_t honest = 20000, attackers = 1000;
  for (size_t i = 0; i < honest; ++i) {
    agg.Add(oracle.Perturb(SampleItem(truth, &rng), &rng));
  }
  for (size_t i = 0; i < attackers; ++i) {
    agg.Add(attack.PoisonReport(oracle, &rng));
  }
  auto estimate = oracle.Estimate(agg.bit_counts(), agg.count());
  double gain = FrequencyGain(estimate, truth, targets);
  // Each attacker contributes roughly 1/(n(p - q)) per target; with 5%
  // attackers and 3 targets the joint gain is substantial.
  EXPECT_GT(gain, 0.15);
}

TEST(MgaTest, StrongerThanInputManipulation) {
  const size_t domain = 16;
  auto oracle = OueOracle::Make(domain, 1.0).ValueOrDie();
  auto truth = MakeTruth(domain);
  std::vector<size_t> targets = {15};
  auto run = [&](FrequencyAttack& attack) {
    Rng rng(7);
    ReportAggregator agg(domain);
    for (size_t i = 0; i < 20000; ++i) {
      agg.Add(oracle.Perturb(SampleItem(truth, &rng), &rng));
    }
    for (size_t i = 0; i < 1000; ++i) {
      agg.Add(attack.PoisonReport(oracle, &rng));
    }
    auto estimate = oracle.Estimate(agg.bit_counts(), agg.count());
    return FrequencyGain(estimate, truth, targets);
  };
  MaximalGainAttack mga(targets);
  FrequencyInputManipulation evasive(targets);
  EXPECT_GT(run(mga), run(evasive));
  EXPECT_GT(run(evasive), 0.0);  // the evasive attack still gains
}

TEST(MgaTest, GrrReportsStayOneHot) {
  auto oracle = GrrOracle::Make(8, 1.0).ValueOrDie();
  MaximalGainAttack attack({2, 5});
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    auto report = attack.PoisonReport(oracle, &rng);
    EXPECT_EQ(std::accumulate(report.begin(), report.end(), 0), 1);
    EXPECT_TRUE(report[2] == 1 || report[5] == 1);
  }
}

TEST(TrimOueTest, DropsMultiTargetForgeries) {
  const size_t domain = 32;
  auto oracle = OueOracle::Make(domain, 1.0).ValueOrDie();
  auto truth = MakeTruth(domain);
  Rng rng(9);
  std::vector<std::vector<uint8_t>> reports;
  for (size_t i = 0; i < 2000; ++i) {
    reports.push_back(oracle.Perturb(SampleItem(truth, &rng), &rng));
  }
  // MGA forgeries claiming 24 targets at once: far more set bits than any
  // plausible honest report (honest OUE reports at eps=1 average ~9 of the
  // 32 bits; the 4-sigma cutoff sits near 18).
  std::vector<size_t> targets(24);
  for (size_t t = 0; t < targets.size(); ++t) targets[t] = domain - 1 - t;
  MaximalGainAttack attack(targets);
  size_t poison_start = reports.size();
  for (size_t i = 0; i < 200; ++i) {
    reports.push_back(attack.PoisonReport(oracle, &rng));
  }
  auto keep = TrimOueReports(reports, oracle);
  size_t honest_kept = 0, poison_kept = 0;
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i < poison_start) {
      honest_kept += keep[i];
    } else {
      poison_kept += keep[i];
    }
  }
  EXPECT_GT(static_cast<double>(honest_kept) / poison_start, 0.99);
  EXPECT_EQ(poison_kept, 0u);
}

TEST(TrimOueTest, EvasiveForgeriesSurvive) {
  // Input-manipulation reports are protocol-compliant, so the structural
  // trim cannot remove them — the evasion property that motivates the
  // paper's game-theoretic treatment.
  const size_t domain = 32;
  auto oracle = OueOracle::Make(domain, 1.0).ValueOrDie();
  Rng rng(10);
  FrequencyInputManipulation attack({31});
  std::vector<std::vector<uint8_t>> reports;
  for (size_t i = 0; i < 500; ++i) {
    reports.push_back(attack.PoisonReport(oracle, &rng));
  }
  auto keep = TrimOueReports(reports, oracle);
  size_t kept = 0;
  for (char k : keep) kept += k;
  EXPECT_GT(static_cast<double>(kept) / reports.size(), 0.95);
}

TEST(FrequencyGainTest, SumsTargetDeltas) {
  std::vector<double> est = {0.5, 0.3, 0.2};
  std::vector<double> truth = {0.6, 0.2, 0.2};
  EXPECT_DOUBLE_EQ(FrequencyGain(est, truth, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(FrequencyGain(est, truth, {1}), 0.1);
  EXPECT_DOUBLE_EQ(FrequencyGain(est, truth, {9}), 0.0);  // out of range
}

// Property sweep: both oracles stay unbiased across epsilon.
struct OracleCase {
  const char* oracle;
  double epsilon;
};

class FrequencySweepTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(FrequencySweepTest, UnbiasedAcrossEpsilon) {
  const auto& param = GetParam();
  const size_t domain = 8;
  auto truth = MakeTruth(domain);
  Rng rng(11);
  std::vector<double> estimate;
  if (std::string(param.oracle) == "grr") {
    auto oracle = GrrOracle::Make(domain, param.epsilon).ValueOrDie();
    estimate = EstimateHonest(oracle, truth, 150000, &rng);
  } else {
    auto oracle = OueOracle::Make(domain, param.epsilon).ValueOrDie();
    estimate = EstimateHonest(oracle, truth, 150000, &rng);
  }
  for (size_t v = 0; v < domain; ++v) {
    EXPECT_NEAR(estimate[v], truth[v], 0.03)
        << param.oracle << " eps=" << param.epsilon << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Oracles, FrequencySweepTest,
    ::testing::Values(OracleCase{"grr", 0.5}, OracleCase{"grr", 2.0},
                      OracleCase{"grr", 4.0}, OracleCase{"oue", 0.5},
                      OracleCase{"oue", 2.0}, OracleCase{"oue", 4.0}));

}  // namespace
}  // namespace itrim
