#include "ldp/attacks.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace itrim {
namespace {

TEST(InputManipulationTest, ReportsAreProtocolCompliant) {
  // Poison reports from input manipulation must be distributed exactly like
  // an honest user holding the fake input: mean = fake input.
  PiecewiseMechanism mech(1.0);
  InputManipulationAttack attack(1.0);
  Rng rng(1);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += attack.PoisonReport(mech, &rng);
  EXPECT_NEAR(acc / n, 1.0, 0.03);
}

TEST(InputManipulationTest, ReportsStayInDomain) {
  PiecewiseMechanism mech(1.0);
  InputManipulationAttack attack(1.0);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    double r = attack.PoisonReport(mech, &rng);
    EXPECT_GE(r, mech.report_lo());
    EXPECT_LE(r, mech.report_hi());
  }
}

TEST(InputManipulationTest, CustomFakeInput) {
  DuchiMechanism mech(2.0);
  InputManipulationAttack attack(-1.0);  // skew downward
  Rng rng(3);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += attack.PoisonReport(mech, &rng);
  EXPECT_NEAR(acc / n, -1.0, 0.05);
}

TEST(GeneralManipulationTest, ReportsDomainMaximum) {
  DuchiMechanism mech(1.0);
  GeneralManipulationAttack attack(1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(attack.PoisonReport(mech, &rng), mech.c());
  }
}

TEST(GeneralManipulationTest, FractionScalesReport) {
  PiecewiseMechanism mech(1.0);
  GeneralManipulationAttack attack(0.5);
  Rng rng(5);
  EXPECT_DOUBLE_EQ(attack.PoisonReport(mech, &rng), 0.5 * mech.c());
}

TEST(GeneralManipulationTest, UnboundedDomainCapped) {
  LaplaceMechanism mech(1.0);
  GeneralManipulationAttack attack(1.0);
  Rng rng(6);
  double r = attack.PoisonReport(mech, &rng);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_GT(r, 1.0);  // beyond the honest input domain
}

TEST(GeneralManipulationTest, StrongerThanInputManipulation) {
  // The general attack's poison mean exceeds the evasive attack's — the
  // evasiveness/effectiveness trade-off of the related work.
  PiecewiseMechanism mech(1.0);
  GeneralManipulationAttack general(1.0);
  InputManipulationAttack input(1.0);
  Rng rng(7);
  double general_mean = 0.0, input_mean = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    general_mean += general.PoisonReport(mech, &rng);
    input_mean += input.PoisonReport(mech, &rng);
  }
  EXPECT_GT(general_mean / n, input_mean / n + 0.5);
}

TEST(AttackNamesTest, Names) {
  InputManipulationAttack a;
  GeneralManipulationAttack b;
  EXPECT_EQ(a.name(), "input_manipulation");
  EXPECT_EQ(b.name(), "general_manipulation");
}

}  // namespace
}  // namespace itrim
