#include "ldp/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace itrim {
namespace {

// Empirical mean of many perturbations of x.
double EmpiricalMean(const LdpMechanism& mech, double x, int n, Rng* rng) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += mech.Perturb(x, rng);
  return acc / n;
}

class UnbiasednessTest
    : public ::testing::TestWithParam<std::tuple<std::string, double, double>> {
};

TEST_P(UnbiasednessTest, ReportsAreUnbiased) {
  auto [name, epsilon, x] = GetParam();
  auto mech = MakeMechanism(name, epsilon).ValueOrDie();
  Rng rng(77);
  double mean = EmpiricalMean(*mech, x, 200000, &rng);
  EXPECT_NEAR(mean, x, 0.05) << name << " eps=" << epsilon << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, UnbiasednessTest,
    ::testing::Combine(::testing::Values("laplace", "duchi", "piecewise"),
                       ::testing::Values(0.5, 1.0, 3.0),
                       ::testing::Values(-1.0, -0.3, 0.0, 0.7, 1.0)));

TEST(LaplaceTest, NoiseScaleMatchesSensitivity) {
  LaplaceMechanism mech(2.0);  // scale = 2/eps = 1
  Rng rng(5);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double noise = mech.Perturb(0.0, &rng);
    acc += noise * noise;
  }
  // Var = 2 b^2 = 2.
  EXPECT_NEAR(acc / n, 2.0, 0.1);
  EXPECT_TRUE(std::isinf(mech.report_hi()));
}

TEST(DuchiTest, BinaryOutputAtPlusMinusC) {
  DuchiMechanism mech(1.0);
  Rng rng(6);
  double c = mech.c();
  EXPECT_NEAR(c, (std::exp(1.0) + 1.0) / (std::exp(1.0) - 1.0), 1e-12);
  for (int i = 0; i < 1000; ++i) {
    double r = mech.Perturb(0.3, &rng);
    EXPECT_TRUE(r == c || r == -c);
  }
  EXPECT_DOUBLE_EQ(mech.report_hi(), c);
  EXPECT_DOUBLE_EQ(mech.report_lo(), -c);
}

TEST(DuchiTest, ProbabilityRespectsEpsilonBound) {
  // LDP requires P[+C | x] / P[+C | x'] <= e^eps for all pairs x, x'.
  double eps = 1.0;
  DuchiMechanism mech(eps);
  Rng rng(7);
  auto p_plus = [&](double x) {
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      if (mech.Perturb(x, &rng) > 0) ++hits;
    }
    return static_cast<double>(hits) / n;
  };
  double hi = p_plus(1.0), lo = p_plus(-1.0);
  EXPECT_LT(hi / lo, std::exp(eps) * 1.05);
  EXPECT_GT(hi / lo, std::exp(eps) * 0.9);
}

TEST(PiecewiseTest, ReportsWithinDomain) {
  PiecewiseMechanism mech(1.0);
  Rng rng(8);
  double c = mech.c();
  for (int i = 0; i < 10000; ++i) {
    double r = mech.Perturb(rng.Uniform(-1.0, 1.0), &rng);
    EXPECT_GE(r, -c);
    EXPECT_LE(r, c);
  }
}

TEST(PiecewiseTest, ConcentratesAroundTruth) {
  PiecewiseMechanism mech(3.0);
  Rng rng(9);
  // Reports for x = 0.5 should fall near 0.5 much more often than near -0.5.
  int near_true = 0, near_false = 0;
  for (int i = 0; i < 20000; ++i) {
    double r = mech.Perturb(0.5, &rng);
    if (std::fabs(r - 0.5) < 0.3) ++near_true;
    if (std::fabs(r + 0.5) < 0.3) ++near_false;
  }
  EXPECT_GT(near_true, 3 * near_false);
}

TEST(PiecewiseTest, DomainShrinksWithEpsilon) {
  PiecewiseMechanism tight(5.0), loose(0.5);
  EXPECT_LT(tight.c(), loose.c());
}

TEST(MechanismTest, InputClampedToDomain) {
  PiecewiseMechanism mech(1.0);
  Rng rng(10);
  double c = mech.c();
  // x far outside [-1,1] must still produce in-domain reports.
  for (int i = 0; i < 1000; ++i) {
    double r = mech.Perturb(50.0, &rng);
    EXPECT_GE(r, -c);
    EXPECT_LE(r, c);
  }
}

TEST(MakeMechanismTest, FactoryDispatch) {
  EXPECT_EQ(MakeMechanism("laplace", 1.0).ValueOrDie()->name(), "laplace");
  EXPECT_EQ(MakeMechanism("duchi", 1.0).ValueOrDie()->name(), "duchi");
  EXPECT_EQ(MakeMechanism("piecewise", 1.0).ValueOrDie()->name(),
            "piecewise");
  EXPECT_FALSE(MakeMechanism("exponential", 1.0).ok());
  EXPECT_FALSE(MakeMechanism("laplace", 0.0).ok());
  EXPECT_FALSE(MakeMechanism("laplace", -1.0).ok());
}

TEST(MechanismTest, EpsilonAccessor) {
  EXPECT_DOUBLE_EQ(MakeMechanism("duchi", 2.5).ValueOrDie()->epsilon(), 2.5);
}

}  // namespace
}  // namespace itrim
