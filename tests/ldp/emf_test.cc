#include "ldp/emf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"

namespace itrim {
namespace {

std::vector<double> HonestReports(const LdpMechanism& mech, double x_mean,
                                  size_t n, Rng* rng) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(mech.Perturb(rng->Uniform(x_mean - 0.3, x_mean + 0.3),
                               rng));
  }
  return out;
}

ReportModel BuildModel(const PiecewiseMechanism& mech) {
  return ReportModel::Build(mech, mech.report_lo(), mech.report_hi())
      .ValueOrDie();
}

TEST(ReportModelTest, ValidatesInput) {
  PiecewiseMechanism mech(2.0);
  EXPECT_FALSE(ReportModel::Build(mech, 1.0, -1.0).ok());
  EXPECT_FALSE(ReportModel::Build(mech, -INFINITY, 1.0).ok());
  EXPECT_FALSE(ReportModel::Build(mech, -1.0, 1.0, 1).ok());
  EXPECT_FALSE(ReportModel::Build(mech, -1.0, 1.0, 20, 40, 0).ok());
}

TEST(ReportModelTest, ColumnsAreDistributions) {
  PiecewiseMechanism mech(2.0);
  ReportModel model = BuildModel(mech);
  for (size_t x = 0; x < model.input_bins; ++x) {
    double total = 0.0;
    for (size_t r = 0; r < model.report_bins; ++r) {
      double p = model.conditional[r * model.input_bins + x];
      EXPECT_GT(p, 0.0);  // smoothing keeps everything positive
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ReportModelTest, MassConcentratesNearInput) {
  // Piecewise reports cluster around the true value: the conditional column
  // for input ~0.8 must put more mass on high report bins than low ones.
  PiecewiseMechanism mech(3.0);
  ReportModel model = BuildModel(mech);
  size_t x_hi = model.input_bins - 2;
  double high_mass = 0.0, low_mass = 0.0;
  for (size_t r = 0; r < model.report_bins; ++r) {
    double p = model.conditional[r * model.input_bins + x_hi];
    if (r >= model.report_bins / 2) {
      high_mass += p;
    } else {
      low_mass += p;
    }
  }
  EXPECT_GT(high_mass, 2.0 * low_mass);
}

TEST(ReportModelTest, InputBinCenters) {
  PiecewiseMechanism mech(2.0);
  ReportModel model = BuildModel(mech);
  EXPECT_NEAR(model.InputBinCenter(0), -1.0 + 1.0 / model.input_bins, 1e-12);
  EXPECT_NEAR(model.InputBinCenter(model.input_bins - 1),
              1.0 - 1.0 / model.input_bins, 1e-12);
}

TEST(EmfTest, ValidatesInput) {
  PiecewiseMechanism mech(2.0);
  ReportModel model = BuildModel(mech);
  EXPECT_FALSE(FitEmFilter(model, {}, EmfConfig{}).ok());
  ReportModel broken = model;
  broken.conditional.pop_back();
  EXPECT_FALSE(FitEmFilter(broken, {1.0}, EmfConfig{}).ok());
}

TEST(EmfTest, CleanDataEstimatesLowBeta) {
  PiecewiseMechanism mech(2.0);
  ReportModel model = BuildModel(mech);
  Rng rng(1);
  auto reports = HonestReports(mech, 0.0, 8000, &rng);
  auto fit = FitEmFilter(model, reports, EmfConfig{}).ValueOrDie();
  // Honest reports lie on the manifold {M theta}; only sampling noise can
  // be attributed to the attack component.
  EXPECT_LT(fit.beta, 0.06);
}

TEST(EmfTest, CleanInputHistogramRecoversMean) {
  PiecewiseMechanism mech(2.0);
  ReportModel model = BuildModel(mech);
  Rng rng(2);
  auto reports = HonestReports(mech, 0.4, 8000, &rng);
  auto fit = FitEmFilter(model, reports, EmfConfig{}).ValueOrDie();
  EXPECT_NEAR(fit.InputMean(model), 0.4, 0.1);
}

TEST(EmfTest, DetectsSeparableGeneralAttack) {
  // General manipulation piles reports at the domain maximum — no honest
  // input distribution can produce that atom, so EMF attributes it to the
  // attack and down-weights it.
  PiecewiseMechanism mech(2.0);
  ReportModel model = BuildModel(mech);
  GeneralManipulationAttack attack(1.0);
  Rng rng(3);
  auto reports = HonestReports(mech, 0.0, 4000, &rng);
  for (int i = 0; i < 1000; ++i) {
    reports.push_back(attack.PoisonReport(mech, &rng));
  }
  auto fit = FitEmFilter(model, reports, EmfConfig{}).ValueOrDie();
  EXPECT_GT(fit.beta, 0.10);
  double poison_weight = 0.0, honest_weight = 0.0;
  for (size_t i = 0; i < 4000; ++i) honest_weight += fit.weights[i];
  for (size_t i = 4000; i < 5000; ++i) poison_weight += fit.weights[i];
  EXPECT_LT(poison_weight / 1000.0, 0.45);
  EXPECT_GT(honest_weight / 4000.0, 0.75);
}

TEST(EmfTest, FilteredMeanBeatsUnfilteredOnGeneralAttack) {
  PiecewiseMechanism mech(2.0);
  ReportModel model = BuildModel(mech);
  GeneralManipulationAttack attack(1.0);
  Rng rng(4);
  auto reports = HonestReports(mech, 0.0, 4000, &rng);
  for (int i = 0; i < 800; ++i) {
    reports.push_back(attack.PoisonReport(mech, &rng));
  }
  auto fit = FitEmFilter(model, reports, EmfConfig{}).ValueOrDie();
  double unfiltered = 0.0;
  for (double r : reports) unfiltered += r;
  unfiltered /= static_cast<double>(reports.size());
  double filtered = fit.WeightedMean(reports);
  EXPECT_LT(std::fabs(filtered), std::fabs(unfiltered));
}

TEST(EmfTest, InputManipulationEvadesTheFilter) {
  // The evasive attack perturbs a counterfeit input *through the protocol*,
  // so its reports lie exactly on the honest manifold: EMF absorbs them
  // into theta and keeps their weights high — the failure mode the paper's
  // game-theoretic trimming addresses.
  PiecewiseMechanism mech(2.0);
  ReportModel model = BuildModel(mech);
  GeneralManipulationAttack general(1.0);
  InputManipulationAttack evasive(1.0);
  Rng rng(5);

  auto run = [&](LdpAttack& attack) {
    Rng local(6);
    auto reports = HonestReports(mech, 0.0, 4000, &local);
    for (int i = 0; i < 800; ++i) {
      reports.push_back(attack.PoisonReport(mech, &local));
    }
    auto fit = FitEmFilter(model, reports, EmfConfig{}).ValueOrDie();
    double poison_weight = 0.0;
    for (size_t i = 4000; i < 4800; ++i) poison_weight += fit.weights[i];
    return poison_weight / 800.0;  // mean honesty weight of the poison
  };
  double general_weight = run(general);
  double evasive_weight = run(evasive);
  EXPECT_GT(evasive_weight, general_weight + 0.2);
  EXPECT_GT(evasive_weight, 0.7);  // evasive poison passes nearly untouched
}

TEST(EmfTest, WeightsHaveUnitRange) {
  PiecewiseMechanism mech(1.0);
  ReportModel model = BuildModel(mech);
  Rng rng(7);
  auto reports = HonestReports(mech, 0.2, 3000, &rng);
  auto fit = FitEmFilter(model, reports, EmfConfig{}).ValueOrDie();
  for (double w : fit.weights) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
  EXPECT_EQ(fit.weights.size(), reports.size());
}

TEST(EmfResultTest, WeightedMeanEdgeCases) {
  EmfResult r;
  EXPECT_DOUBLE_EQ(r.WeightedMean({1.0}), 0.0);  // size mismatch
  r.weights = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(r.WeightedMean({2.0, 6.0}), 5.0);
}

TEST(EmfTest, HistogramsAreNormalized) {
  PiecewiseMechanism mech(1.5);
  ReportModel model = BuildModel(mech);
  GeneralManipulationAttack attack(1.0);
  Rng rng(8);
  auto reports = HonestReports(mech, 0.0, 2000, &rng);
  for (int i = 0; i < 500; ++i) {
    reports.push_back(attack.PoisonReport(mech, &rng));
  }
  auto fit = FitEmFilter(model, reports, EmfConfig{}).ValueOrDie();
  double attack_total = 0.0, input_total = 0.0;
  for (double f : fit.attack_frequencies) attack_total += f;
  for (double f : fit.input_frequencies) input_total += f;
  EXPECT_NEAR(attack_total, 1.0, 1e-9);
  EXPECT_NEAR(input_total, 1.0, 1e-9);
}

}  // namespace
}  // namespace itrim
