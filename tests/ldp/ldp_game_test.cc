#include "ldp/ldp_game.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "data/generators.h"

namespace itrim {
namespace {

std::vector<double> TaxiPopulation(size_t n = 20000, uint64_t seed = 3) {
  Dataset taxi = MakeTaxi(seed, n);
  std::vector<double> population;
  for (const auto& row : taxi.rows) population.push_back(row[0]);
  return population;
}

LdpGameConfig SmallConfig() {
  LdpGameConfig c;
  c.rounds = 5;
  c.users_per_round = 2000;
  c.attack_ratio = 0.1;
  c.tth = 0.9;
  c.bootstrap_size = 2000;
  c.seed = 42;
  return c;
}

TEST(LdpGameConfigTest, Validation) {
  LdpGameConfig c = SmallConfig();
  EXPECT_TRUE(c.Validate().ok());
  c.rounds = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.users_per_round = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SmallConfig();
  c.tth = 0.0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(LdpGameTest, CleanEstimateIsAccurate) {
  auto population = TaxiPopulation();
  PiecewiseMechanism mech(3.0);
  InputManipulationAttack attack(1.0);
  LdpGameConfig config = SmallConfig();
  config.attack_ratio = 0.0;
  LdpCollectionGame game(config, &population, &mech, &attack);
  auto result = game.RunUndefended().ValueOrDie();
  EXPECT_NEAR(result.estimated_mean, result.true_mean, 0.05);
  EXPECT_LT(result.squared_error, 0.01);
}

TEST(LdpGameTest, UndefendedAttackSkewsMean) {
  auto population = TaxiPopulation();
  PiecewiseMechanism mech(3.0);
  InputManipulationAttack attack(1.0);
  LdpGameConfig config = SmallConfig();
  config.attack_ratio = 0.3;
  LdpCollectionGame game(config, &population, &mech, &attack);
  auto result = game.RunUndefended().ValueOrDie();
  // 30% attackers reporting x=1 pull the mean upward noticeably.
  EXPECT_GT(result.estimated_mean, result.true_mean + 0.1);
}

TEST(LdpGameTest, TrimmingReducesAttackBias) {
  auto population = TaxiPopulation();
  PiecewiseMechanism mech(3.0);
  LdpGameConfig config = SmallConfig();
  config.attack_ratio = 0.2;

  InputManipulationAttack attack_a(1.0);
  LdpCollectionGame undefended_game(config, &population, &mech, &attack_a);
  double undefended = undefended_game.RunUndefended().ValueOrDie()
                          .squared_error;

  InputManipulationAttack attack_b(1.0);
  LdpCollectionGame trimmed_game(config, &population, &mech, &attack_b);
  ElasticCollector collector(0.5);
  double trimmed =
      trimmed_game.RunTrimming(&collector, nullptr).ValueOrDie()
          .squared_error;
  EXPECT_LT(trimmed, undefended);
}

TEST(LdpGameTest, TrimmingRecordsRounds) {
  auto population = TaxiPopulation();
  PiecewiseMechanism mech(2.0);
  InputManipulationAttack attack(1.0);
  LdpGameConfig config = SmallConfig();
  LdpCollectionGame game(config, &population, &mech, &attack);
  TitfortatCollector collector(+0.01, -0.03, -1.0);
  TailMassQuality quality(config.tth);
  auto result = game.RunTrimming(&collector, &quality).ValueOrDie();
  ASSERT_EQ(result.game.rounds.size(), 5u);
  for (const auto& r : result.game.rounds) {
    EXPECT_EQ(r.benign_received, config.users_per_round);
    EXPECT_EQ(r.poison_received,
              static_cast<size_t>(0.1 * config.users_per_round));
    EXPECT_GT(r.benign_kept, 0u);
  }
}

TEST(LdpGameTest, EmfRunsAndEstimatesBeta) {
  auto population = TaxiPopulation();
  PiecewiseMechanism mech(2.0);
  InputManipulationAttack attack(1.0);
  LdpGameConfig config = SmallConfig();
  config.attack_ratio = 0.2;
  LdpCollectionGame game(config, &population, &mech, &attack);
  auto result = game.RunEmf(EmfConfig{}).ValueOrDie();
  EXPECT_GT(result.emf_beta, 0.0);
  EXPECT_TRUE(std::isfinite(result.estimated_mean));
}

TEST(LdpGameTest, TrimmingBeatsEmfAgainstEvasiveAttack) {
  // The paper's Fig 9 claim: against input manipulation, interactive
  // trimming outperforms the EM filter.
  auto population = TaxiPopulation(30000, 5);
  PiecewiseMechanism mech(2.0);
  LdpGameConfig config = SmallConfig();
  config.attack_ratio = 0.25;
  config.rounds = 8;
  double trim_mse = 0.0, emf_mse = 0.0;
  for (uint64_t rep = 0; rep < 3; ++rep) {
    LdpGameConfig rep_config = config;
    rep_config.seed = 100 + rep;
    InputManipulationAttack attack(1.0);
    LdpCollectionGame game(rep_config, &population, &mech, &attack);
    ElasticCollector collector(0.5);
    trim_mse += game.RunTrimming(&collector, nullptr).ValueOrDie()
                    .squared_error;
    emf_mse += game.RunEmf(EmfConfig{}).ValueOrDie().squared_error;
  }
  EXPECT_LT(trim_mse, emf_mse);
}

TEST(LdpGameTest, DeterministicInSeed) {
  auto population = TaxiPopulation();
  PiecewiseMechanism mech(2.0);
  InputManipulationAttack attack(1.0);
  LdpGameConfig config = SmallConfig();
  auto run = [&](uint64_t seed) {
    LdpGameConfig c = config;
    c.seed = seed;
    LdpCollectionGame game(c, &population, &mech, &attack);
    ElasticCollector collector(0.1);
    return game.RunTrimming(&collector, nullptr).ValueOrDie().estimated_mean;
  };
  EXPECT_DOUBLE_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(LdpGameTest, EmptyPopulationFails) {
  std::vector<double> population;
  PiecewiseMechanism mech(2.0);
  InputManipulationAttack attack(1.0);
  LdpCollectionGame game(SmallConfig(), &population, &mech, &attack);
  EXPECT_FALSE(game.RunUndefended().ok());
  ElasticCollector collector(0.5);
  EXPECT_FALSE(game.RunTrimming(&collector, nullptr).ok());
  EXPECT_FALSE(game.RunEmf(EmfConfig{}).ok());
}

// Property: across privacy budgets, the clean (no-attack) trimming pipeline
// keeps the squared error bounded — the defense must not destroy utility.
class EpsilonSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonSweepTest, CleanPipelineKeepsUtility) {
  auto population = TaxiPopulation();
  PiecewiseMechanism mech(GetParam());
  InputManipulationAttack attack(1.0);
  LdpGameConfig config = SmallConfig();
  config.attack_ratio = 0.0;
  LdpCollectionGame game(config, &population, &mech, &attack);
  ElasticCollector collector(0.5);
  auto result = game.RunTrimming(&collector, nullptr).ValueOrDie();
  EXPECT_LT(result.squared_error, 0.05) << "eps=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonSweepTest,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace itrim
