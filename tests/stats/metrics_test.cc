#include "stats/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace itrim {
namespace {

TEST(SseTest, KnownValue) {
  EXPECT_DOUBLE_EQ(SumSquaredError({1.0, 2.0}, {0.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(SumSquaredError({}, {}), 0.0);
}

TEST(ClusteringSseTest, AssignedCentroids) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}, {10.0}};
  std::vector<std::vector<double>> centroids = {{0.5}, {10.0}};
  std::vector<size_t> assignment = {0, 0, 1};
  EXPECT_DOUBLE_EQ(ClusteringSse(points, centroids, assignment), 0.5);
}

TEST(MseTest, KnownValue) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1.0, 3.0}, {2.0, 1.0}), 2.5);
  EXPECT_DOUBLE_EQ(MeanSquaredError({}, {}), 0.0);
}

TEST(CentroidSetDistanceTest, IdenticalSetsZero) {
  std::vector<std::vector<double>> a = {{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(CentroidSetDistance(a, a), 0.0);
}

TEST(CentroidSetDistanceTest, PermutationInvariant) {
  std::vector<std::vector<double>> a = {{0.0, 0.0}, {5.0, 5.0}};
  std::vector<std::vector<double>> b = {{5.0, 5.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(CentroidSetDistance(a, b), 0.0);
}

TEST(CentroidSetDistanceTest, SimpleOffset) {
  std::vector<std::vector<double>> a = {{0.0}, {10.0}};
  std::vector<std::vector<double>> b = {{1.0}, {10.0}};
  EXPECT_DOUBLE_EQ(CentroidSetDistance(a, b), 1.0);
}

TEST(CentroidSetDistanceTest, UnequalSizesMatchGreedy) {
  std::vector<std::vector<double>> a = {{0.0}};
  std::vector<std::vector<double>> b = {{2.0}, {100.0}};
  // Only one pair can match: |0-2| = 2.
  EXPECT_DOUBLE_EQ(CentroidSetDistance(a, b), 2.0);
}

TEST(ConfusionMatrixTest, AccuracyAndCounts) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(1, 1);
  cm.Add(2, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.Count(0, 0), 2u);
  EXPECT_EQ(cm.Count(2, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, EmptyAccuracyZero) {
  ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
}

TEST(ConfusionMatrixTest, PpvAndFdr) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);  // true 0 predicted 0
  cm.Add(1, 0);  // true 1 predicted 0 (false discovery for class 0)
  cm.Add(1, 1);
  EXPECT_DOUBLE_EQ(cm.Ppv(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.Fdr(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.Ppv(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.Fdr(1), 0.0);
}

TEST(ConfusionMatrixTest, UnpredictedClassPpvZero) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  EXPECT_DOUBLE_EQ(cm.Ppv(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.Fdr(2), 0.0);
}

TEST(ConfusionMatrixTest, Recall) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Add(0, 1);
  cm.Add(0, 1);
  EXPECT_NEAR(cm.Recall(0), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.0);
}

TEST(ConfusionMatrixTest, MacroPpvIgnoresUnused) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(1, 0);
  cm.Add(1, 1);
  // Class 0 PPV = .5, class 1 PPV = 1, class 2 unused.
  EXPECT_DOUBLE_EQ(cm.MacroPpv(), 0.75);
}

TEST(ConfusionMatrixTest, PerfectClassifier) {
  ConfusionMatrix cm(4);
  for (size_t c = 0; c < 4; ++c) {
    for (int i = 0; i < 5; ++i) cm.Add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(cm.Ppv(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.Recall(c), 1.0);
  }
}

}  // namespace
}  // namespace itrim
