#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace itrim {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  s.AddAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.AddAll({0.0, 2.0});
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(11);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Normal(2.0, 3.0);
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  // Welford must not catastrophically cancel with a large common offset.
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

}  // namespace
}  // namespace itrim
