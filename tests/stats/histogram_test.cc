#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace itrim {
namespace {

TEST(HistogramTest, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.BinOf(0.5), 0u);
  EXPECT_EQ(h.BinOf(9.5), 9u);
  EXPECT_EQ(h.BinOf(5.0), 5u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.BinOf(-5.0), 0u);
  EXPECT_EQ(h.BinOf(15.0), 9u);
  EXPECT_EQ(h.BinOf(10.0), 9u);  // hi boundary goes to the last bin
}

TEST(HistogramTest, CountsAccumulate) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.1);
  h.Add(0.9);
  EXPECT_DOUBLE_EQ(h.Count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.Count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(HistogramTest, WeightedAdds) {
  Histogram h(0.0, 1.0, 2);
  h.AddWeighted(0.25, 2.5);
  EXPECT_DOUBLE_EQ(h.Count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 2.5);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.125);
  EXPECT_DOUBLE_EQ(h.BinCenter(3), 0.875);
}

TEST(HistogramTest, FrequenciesSumToOne) {
  Histogram h(-1.0, 1.0, 8);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.Add(rng.Uniform(-1.0, 1.0));
  auto f = h.Frequencies();
  double total = 0.0;
  for (double x : f) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, EmptyFrequenciesAllZero) {
  Histogram h(0.0, 1.0, 4);
  for (double f : h.Frequencies()) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.5);
  h.Clear();
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.Count(2), 0.0);
}

TEST(HistogramTest, UniformDataFillsBinsEvenly) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(7);
  const int n = 100000;
  for (int i = 0; i < n; ++i) h.Add(rng.Uniform());
  for (auto f : h.Frequencies()) EXPECT_NEAR(f, 0.1, 0.01);
}

}  // namespace
}  // namespace itrim
