#include "stats/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace itrim {
namespace {

TEST(QuantileSortedTest, SingleElement) {
  std::vector<double> v = {3.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0), 3.0);
}

TEST(QuantileSortedTest, MedianOfTwoInterpolates) {
  std::vector<double> v = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.5), 2.0);
}

TEST(QuantileSortedTest, MatlabPrctileBreakpoints) {
  // MATLAB: prctile([1 2 3 4], 50) = 2.5; prctile([1 2 3 4], 25) = 1.5.
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.25), 1.5);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.75), 3.5);
}

TEST(QuantileSortedTest, ExtremesClampToMinMax) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0), 5.0);
  // Below 1/(2n) and above 1 - 1/(2n) the estimate saturates.
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.05), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.95), 5.0);
}

TEST(QuantileSortedTest, OutOfRangeQClamped) {
  std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.5), 2.0);
}

TEST(QuantileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(QuantileTest, MonotoneInQ) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.Normal());
  std::sort(v.begin(), v.end());
  double prev = QuantileSorted(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    double cur = QuantileSorted(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(QuantilesTest, MultipleAtOnceMatchSingle) {
  std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 3.0};
  auto qs = Quantiles(v, {0.1, 0.5, 0.9});
  EXPECT_DOUBLE_EQ(qs[1], Quantile(v, 0.5));
  EXPECT_EQ(qs.size(), 3u);
}

TEST(EmpiricalCdfTest, Values) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(EmpiricalCdf(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(EmpiricalCdf(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(EmpiricalCdf({}, 1.0), 0.0);
}

TEST(PercentileRankSortedTest, Values) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(PercentileRankSorted(v, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(PercentileRankSorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileRankSorted(v, 9.0), 1.0);
}

TEST(QuantileRankInverseTest, RankOfQuantileIsApproxQ) {
  Rng rng(9);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(rng.Uniform());
  std::sort(v.begin(), v.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    double value = QuantileSorted(v, q);
    double rank = PercentileRankSorted(v, value);
    EXPECT_NEAR(rank, q, 0.01);
  }
}

// --- P2 online estimator ----------------------------------------------------

TEST(P2QuantileTest, ExactForFewSamples) {
  P2Quantile est(0.5);
  est.Add(3.0);
  est.Add(1.0);
  est.Add(2.0);
  EXPECT_DOUBLE_EQ(est.Estimate(), 2.0);
  EXPECT_EQ(est.count(), 3u);
}

TEST(P2QuantileTest, EmptyReturnsZero) {
  P2Quantile est(0.9);
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
}

class P2AccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(P2AccuracyTest, TracksUniformQuantile) {
  const double q = GetParam();
  P2Quantile est(q);
  Rng rng(101);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    double x = rng.Uniform();
    est.Add(x);
    all.push_back(x);
  }
  double exact = Quantile(all, q);
  EXPECT_NEAR(est.Estimate(), exact, 0.02) << "q=" << q;
}

TEST_P(P2AccuracyTest, TracksNormalQuantile) {
  const double q = GetParam();
  P2Quantile est(q);
  Rng rng(202);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    double x = rng.Normal();
    est.Add(x);
    all.push_back(x);
  }
  double exact = Quantile(all, q);
  EXPECT_NEAR(est.Estimate(), exact, 0.08) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2AccuracyTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95,
                                           0.99));

}  // namespace
}  // namespace itrim
