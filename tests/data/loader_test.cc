#include "data/loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace itrim {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/itrim_loader_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  std::string path_;
};

TEST_F(LoaderTest, LoadsUnlabeled) {
  WriteFile("1,2\n3,4\n5,6\n");
  LoadOptions opts;
  opts.normalize = false;
  auto ds = LoadCsvDataset(path_, "test", opts);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_EQ(ds->dims(), 2u);
  EXPECT_FALSE(ds->labeled());
}

TEST_F(LoaderTest, ExtractsLabelColumn) {
  WriteFile("1,2,0\n3,4,1\n5,6,1\n");
  LoadOptions opts;
  opts.label_column = 2;
  opts.normalize = false;
  opts.num_clusters = 2;
  auto ds = LoadCsvDataset(path_, "test", opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dims(), 2u);
  ASSERT_TRUE(ds->labeled());
  EXPECT_EQ(ds->labels[0], 0);
  EXPECT_EQ(ds->labels[2], 1);
  EXPECT_EQ(ds->num_clusters, 2u);
}

TEST_F(LoaderTest, LabelColumnInMiddle) {
  WriteFile("7,0,9\n8,1,10\n");
  LoadOptions opts;
  opts.label_column = 1;
  opts.normalize = false;
  auto ds = LoadCsvDataset(path_, "test", opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->rows[0][0], 7.0);
  EXPECT_DOUBLE_EQ(ds->rows[0][1], 9.0);
  EXPECT_EQ(ds->labels[1], 1);
}

TEST_F(LoaderTest, NormalizesWhenAsked) {
  WriteFile("0\n10\n");
  LoadOptions opts;
  opts.normalize = true;
  auto ds = LoadCsvDataset(path_, "test", opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->rows[0][0], -1.0);
  EXPECT_DOUBLE_EQ(ds->rows[1][0], 1.0);
}

TEST_F(LoaderTest, HeaderSkipped) {
  WriteFile("x,y\n1,2\n");
  LoadOptions opts;
  opts.has_header = true;
  opts.normalize = false;
  auto ds = LoadCsvDataset(path_, "test", opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 1u);
}

TEST_F(LoaderTest, RejectsOutOfRangeLabelColumn) {
  WriteFile("1,2\n");
  LoadOptions opts;
  opts.label_column = 5;
  auto ds = LoadCsvDataset(path_, "test", opts);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kOutOfRange);
}

TEST_F(LoaderTest, RejectsEmptyFile) {
  WriteFile("");
  auto ds = LoadCsvDataset(path_, "test", LoadOptions{});
  EXPECT_FALSE(ds.ok());
}

}  // namespace
}  // namespace itrim
