#include "data/dataset.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace itrim {
namespace {

Dataset MakeTiny() {
  Dataset ds;
  ds.name = "tiny";
  ds.rows = {{0.0, 1.0}, {2.0, 3.0}, {4.0, 5.0}};
  ds.labels = {0, 1, 0};
  ds.num_clusters = 2;
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset ds = MakeTiny();
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.dims(), 2u);
  EXPECT_TRUE(ds.labeled());
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsLabelMismatch) {
  Dataset ds = MakeTiny();
  ds.labels.pop_back();
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsRaggedRows) {
  Dataset ds = MakeTiny();
  ds.rows[1].push_back(9.0);
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsZeroClusters) {
  Dataset ds = MakeTiny();
  ds.num_clusters = 0;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(NormalizeMinMaxTest, MapsIntoUnitRange) {
  Dataset ds = MakeTiny();
  NormalizeMinMax(&ds);
  for (const auto& row : ds.rows) {
    for (double v : row) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(ds.rows[0][0], -1.0);
  EXPECT_DOUBLE_EQ(ds.rows[2][0], 1.0);
  EXPECT_DOUBLE_EQ(ds.rows[1][0], 0.0);
}

TEST(NormalizeMinMaxTest, ConstantFeatureMapsToZero) {
  Dataset ds;
  ds.rows = {{5.0, 1.0}, {5.0, 2.0}};
  NormalizeMinMax(&ds);
  EXPECT_DOUBLE_EQ(ds.rows[0][0], 0.0);
  EXPECT_DOUBLE_EQ(ds.rows[1][0], 0.0);
}

TEST(SampleWithReplacementTest, SizeAndMembership) {
  Dataset ds = MakeTiny();
  Rng rng(3);
  Dataset sample = SampleWithReplacement(ds, 50, &rng);
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_EQ(sample.labels.size(), 50u);
  for (size_t i = 0; i < sample.size(); ++i) {
    bool found = false;
    for (size_t j = 0; j < ds.size(); ++j) {
      if (sample.rows[i] == ds.rows[j] &&
          sample.labels[i] == ds.labels[j]) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(TrainTestSplitTest, PartitionsData) {
  Dataset ds;
  for (int i = 0; i < 100; ++i) {
    ds.rows.push_back({static_cast<double>(i)});
    ds.labels.push_back(i % 3);
  }
  Rng rng(5);
  auto [train, test] = TrainTestSplit(ds, 0.7, &rng);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
  EXPECT_EQ(train.labels.size(), 70u);
}

TEST(AppendTest, ConcatenatesRowsAndLabels) {
  Dataset a = MakeTiny();
  Dataset b = MakeTiny();
  Append(&a, b);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(a.labels.size(), 6u);
}

}  // namespace
}  // namespace itrim
