#include "data/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/math_util.h"

namespace itrim {
namespace {

TEST(ControlTest, MatchesTableII) {
  Dataset ds = MakeControl(1);
  EXPECT_EQ(ds.size(), 600u);     // 6 classes x 100
  EXPECT_EQ(ds.dims(), 60u);
  EXPECT_EQ(ds.num_clusters, 6u);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(ControlTest, SixBalancedClasses) {
  Dataset ds = MakeControl(1);
  std::vector<int> counts(6, 0);
  for (int label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 6);
    ++counts[label];
  }
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(ControlTest, DeterministicInSeed) {
  Dataset a = MakeControl(42), b = MakeControl(42), c = MakeControl(43);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_NE(a.rows, c.rows);
}

TEST(ControlTest, NormalizedIntoUnitRange) {
  Dataset ds = MakeControl(7);
  for (const auto& row : ds.rows) {
    for (double v : row) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(ControlTest, TrendClassesAreMonotoneOnAverage) {
  Dataset ds = MakeControl(5);
  // Class 2 = increasing trend, class 3 = decreasing; compare mean of the
  // last third against the first third of each series.
  double inc_gap = 0.0, dec_gap = 0.0;
  int inc_count = 0, dec_count = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    double head = 0.0, tail = 0.0;
    for (int t = 0; t < 20; ++t) head += ds.rows[i][t];
    for (int t = 40; t < 60; ++t) tail += ds.rows[i][t];
    double gap = (tail - head) / 20.0;
    if (ds.labels[i] == 2) {
      inc_gap += gap;
      ++inc_count;
    } else if (ds.labels[i] == 3) {
      dec_gap += gap;
      ++dec_count;
    }
  }
  EXPECT_GT(inc_gap / inc_count, 0.1);
  EXPECT_LT(dec_gap / dec_count, -0.1);
}

TEST(VehicleTest, MatchesTableII) {
  Dataset ds = MakeVehicle(2);
  EXPECT_EQ(ds.size(), 752u);
  EXPECT_EQ(ds.dims(), 18u);
  EXPECT_EQ(ds.num_clusters, 4u);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(LetterTest, MatchesTableII) {
  Dataset ds = MakeLetter(3, 2600);  // scaled down for test speed
  EXPECT_EQ(ds.size(), 2600u);
  EXPECT_EQ(ds.dims(), 16u);
  EXPECT_EQ(ds.num_clusters, 26u);
  std::set<int> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 26u);
}

TEST(TaxiTest, OneDimensionalNormalized) {
  Dataset ds = MakeTaxi(4, 20000);
  EXPECT_EQ(ds.size(), 20000u);
  EXPECT_EQ(ds.dims(), 1u);
  EXPECT_EQ(ds.num_clusters, 1u);
  for (const auto& row : ds.rows) {
    EXPECT_GE(row[0], -1.0);
    EXPECT_LE(row[0], 1.0);
  }
}

TEST(TaxiTest, RushHourBimodality) {
  Dataset ds = MakeTaxi(4, 50000);
  // More mass near the evening rush (~18.5h -> +0.54) than at 3am (-0.75).
  int evening = 0, night = 0;
  for (const auto& row : ds.rows) {
    if (row[0] > 0.45 && row[0] < 0.65) ++evening;
    if (row[0] > -0.85 && row[0] < -0.65) ++night;
  }
  EXPECT_GT(evening, 2 * night);
}

TEST(CreditcardTest, SkewedClassStructure) {
  Dataset ds = MakeCreditcard(5, 5000);
  EXPECT_EQ(ds.size(), 5000u);
  EXPECT_EQ(ds.dims(), 31u);
  EXPECT_EQ(ds.num_clusters, 4u);
  std::vector<int> counts(4, 0);
  for (int label : ds.labels) ++counts[label];
  EXPECT_EQ(counts[0], 5000 - 21);  // bulk
  EXPECT_EQ(counts[1], 8);          // fraud cluster
  EXPECT_EQ(counts[2], 8);          // premium cluster
  EXPECT_EQ(counts[3], 5);          // green segment
}

TEST(CreditcardTest, RareClassesAreOutliers) {
  Dataset ds = MakeCreditcard(6, 4000);
  // Compute the bulk centroid and check the rare points sit far out.
  std::vector<std::vector<double>> bulk;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.labels[i] == 0) bulk.push_back(ds.rows[i]);
  }
  auto center = Centroid(bulk);
  double bulk_mean_dist = 0.0;
  for (const auto& row : bulk) {
    bulk_mean_dist += EuclideanDistance(row, center);
  }
  bulk_mean_dist /= static_cast<double>(bulk.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.labels[i] == 1 || ds.labels[i] == 2) {
      EXPECT_GT(EuclideanDistance(ds.rows[i], center), 1.5 * bulk_mean_dist);
    }
  }
}

TEST(MakeByNameTest, DispatchesAllNames) {
  for (const char* name :
       {"control", "vehicle", "letter", "taxi", "creditcard"}) {
    auto ds = MakeByName(name, 1, 0.02);
    ASSERT_TRUE(ds.ok()) << name;
    EXPECT_GT(ds->size(), 0u);
  }
}

TEST(MakeByNameTest, RejectsUnknownAndBadScale) {
  EXPECT_FALSE(MakeByName("mnist", 1).ok());
  EXPECT_FALSE(MakeByName("control", 1, 0.0).ok());
  EXPECT_FALSE(MakeByName("control", 1, 1.5).ok());
}

}  // namespace
}  // namespace itrim
