#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace itrim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproachesHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, LaplaceMomentsMatch) {
  Rng rng(29);
  const int n = 200000;
  const double b = 1.5;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Laplace(b);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  // Var(Laplace(b)) = 2 b^2 = 4.5.
  EXPECT_NEAR(sum_sq / n, 2.0 * b * b, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalZeroTotalReturnsSize) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.Categorical(weights), weights.size());
}

TEST(RngTest, UnitVectorHasUnitNorm) {
  Rng rng(47);
  for (size_t dim : {1u, 2u, 16u, 60u}) {
    auto v = rng.UnitVector(dim);
    ASSERT_EQ(v.size(), dim);
    double norm_sq = 0.0;
    for (double x : v) norm_sq += x * x;
    EXPECT_NEAR(norm_sq, 1.0, 1e-12);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(59);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(61);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(67);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(71);
  Rng child = a.Fork();
  // The child stream should not replay the parent's stream.
  Rng b(71);
  b.NextU64();  // align with the Fork() consumption
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(0), b(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace itrim
