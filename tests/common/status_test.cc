#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace itrim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_TRUE(Status::OK().message().empty());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  std::vector<Case> cases = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("c"), StatusCode::kFailedPrecondition},
      {Status::NotFound("d"), StatusCode::kNotFound},
      {Status::AlreadyExists("e"), StatusCode::kAlreadyExists},
      {Status::Internal("f"), StatusCode::kInternal},
      {Status::NotImplemented("g"), StatusCode::kNotImplemented},
      {Status::IOError("h"), StatusCode::kIOError},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.ValueOr(-1), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  ITRIM_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  int h = 0;
  ITRIM_ASSIGN_OR_RETURN(h, Half(x));
  ITRIM_ASSIGN_OR_RETURN(h, Half(h));
  return h;
}

TEST(MacroTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

}  // namespace
}  // namespace itrim
