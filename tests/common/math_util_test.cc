#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace itrim {
namespace {

TEST(ClampTest, Bounds) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(AlmostEqualTest, TolerancesWork) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1));
  EXPECT_TRUE(AlmostEqual(1e9, 1e9 + 1.0, 1e-9, 1e-8));
}

TEST(DistanceTest, SquaredAndEuclidean) {
  std::vector<double> a = {0.0, 0.0};
  std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(NormTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(Norm({}), 0.0);
}

TEST(DotTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

TEST(AxpyTest, InPlaceUpdate) {
  std::vector<double> a = {1.0, 2.0};
  Axpy(2.0, {10.0, 20.0}, &a);
  EXPECT_DOUBLE_EQ(a[0], 21.0);
  EXPECT_DOUBLE_EQ(a[1], 42.0);
}

TEST(MeanTest, Values) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VarianceTest, Values) {
  EXPECT_DOUBLE_EQ(Variance({1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({0.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(CentroidTest, ComponentwiseMean) {
  auto c = Centroid({{0.0, 0.0}, {2.0, 4.0}});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_TRUE(Centroid({}).empty());
}

TEST(LerpTest, Endpoints) {
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(LinspaceTest, EvenSpacing) {
  auto v = Linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
}

TEST(LinspaceTest, ExactEndpointDespiteRounding) {
  auto v = Linspace(1.0, 5.0, 7);
  EXPECT_DOUBLE_EQ(v.back(), 5.0);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
}

}  // namespace
}  // namespace itrim
