#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace itrim {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/itrim_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, ReadsNumericMatrix) {
  WriteFile("1,2,3\n4,5,6\n");
  auto result = ReadCsv(path_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_DOUBLE_EQ((*result)[0][0], 1.0);
  EXPECT_DOUBLE_EQ((*result)[1][2], 6.0);
}

TEST_F(CsvTest, SkipsHeader) {
  WriteFile("a,b\n1,2\n");
  auto result = ReadCsv(path_, /*skip_header=*/true);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
}

TEST_F(CsvTest, SkipsBlankLines) {
  WriteFile("1,2\n\n3,4\n");
  auto result = ReadCsv(path_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST_F(CsvTest, RejectsNonNumeric) {
  WriteFile("1,2\nx,4\n");
  auto result = ReadCsv(path_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, RejectsRaggedRows) {
  WriteFile("1,2\n3\n");
  auto result = ReadCsv(path_);
  EXPECT_FALSE(result.ok());
}

TEST_F(CsvTest, MissingFileIsIOError) {
  auto result = ReadCsv("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, RoundTripWriteRead) {
  std::vector<std::vector<double>> rows = {{1.5, -2.0}, {0.25, 3.0}};
  ASSERT_TRUE(WriteCsv(path_, rows, {"x", "y"}).ok());
  auto result = ReadCsv(path_, /*skip_header=*/true);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_DOUBLE_EQ((*result)[0][0], 1.5);
  EXPECT_DOUBLE_EQ((*result)[1][1], 3.0);
}

TEST(SplitCsvLineTest, BasicSplit) {
  auto f = SplitCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
}

TEST(SplitCsvLineTest, TrailingComma) {
  auto f = SplitCsvLine("a,b,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_TRUE(f[2].empty());
}

TEST(SplitCsvLineTest, SingleField) {
  auto f = SplitCsvLine("42");
  ASSERT_EQ(f.size(), 1u);
}

}  // namespace
}  // namespace itrim
