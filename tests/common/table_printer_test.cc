#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace itrim {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.BeginRow();
  t.AddCell("alpha");
  t.AddNumber(1.5, 2);
  t.BeginRow();
  t.AddCell("beta");
  t.AddInt(42);
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxxxxxxxx", "y"});
  std::ostringstream os;
  t.Print(os);
  // Each line must have the same length (aligned table).
  std::istringstream is(os.str());
  std::string line;
  size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinterTest, AddCellWithoutBeginRowStartsRow) {
  TablePrinter t({"x"});
  t.AddCell("implicit");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, NumberPrecision) {
  TablePrinter t({"v"});
  t.BeginRow();
  t.AddNumber(3.14159, 3);
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(PrintBannerTest, ContainsTitle) {
  std::ostringstream os;
  PrintBanner(os, "Fig 4");
  EXPECT_NE(os.str().find("Fig 4"), std::string::npos);
}

}  // namespace
}  // namespace itrim
