#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace itrim {
namespace {

TEST(ThreadPoolTest, SubmittedWorkCompletes) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  auto f = pool.Submit([] {});
  f.wait();
}

TEST(ThreadPoolTest, SubmitExceptionLandsInFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool* a = ThreadPool::Global();
  ThreadPool* b = ThreadPool::Global();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; }, jobs);
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool touched = false;
  ParallelFor(0, [&](size_t) { touched = true; }, 4);
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, SingleJobEqualsSerialOrder) {
  // jobs=1 must run inline, in index order, on the calling thread.
  std::vector<size_t> order;
  std::thread::id caller = std::this_thread::get_id();
  bool on_caller = true;
  ParallelFor(
      16,
      [&](size_t i) {
        order.push_back(i);
        if (std::this_thread::get_id() != caller) on_caller = false;
      },
      1);
  EXPECT_TRUE(on_caller);
  std::vector<size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, OrderedReductionMatchesSerialBitwise) {
  // The contract the experiment runners rely on: per-index slots reduced in
  // index order give the same double, bit for bit, at any width.
  auto run = [](int jobs) {
    std::vector<double> slot(1000);
    ParallelFor(
        slot.size(),
        [&](size_t i) {
          double x = 1.0 / (static_cast<double>(i) + 1.37);
          slot[i] = x * x - 0.25 * x;
        },
        jobs);
    double acc = 0.0;
    for (double v : slot) acc += v;
    return acc;
  };
  double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(5));
  EXPECT_EQ(serial, run(32));
}

TEST(ParallelForTest, PropagatesLowestIndexException) {
  for (int jobs : {1, 4}) {
    try {
      ParallelFor(
          64,
          [](size_t i) {
            if (i % 2 == 1) throw std::out_of_range(std::to_string(i));
          },
          jobs);
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::out_of_range& e) {
      // Lowest *pending* failing index; with jobs=1 this is exactly the
      // first failure, like a serial loop.
      if (jobs == 1) {
        EXPECT_STREQ(e.what(), "1");
      }
      EXPECT_GE(std::stoi(e.what()), 1);
    }
  }
}

TEST(ParallelForTest, NestedCallsFallBackToSerial) {
  std::atomic<int> counter{0};
  ParallelFor(
      4,
      [&](size_t) {
        // Inner call must not wait on the pool from a pool worker.
        ParallelFor(8, [&](size_t) { ++counter; }, 4);
      },
      4);
  EXPECT_EQ(counter.load(), 32);
}

// -- Shutdown-path audit pins (the lost-wakeup / lost-task regressions) ----

TEST(ThreadPoolTest, ShutdownIsIdempotentAndJoins) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) pool.Submit([&counter] { ++counter; });
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 20);  // queue drained before the join
  pool.Shutdown();  // second call must be a no-op, not a hang or crash
  pool.Shutdown();
}

TEST(ThreadPoolTest, SubmitAfterShutdownStillResolvesTheFuture) {
  // The lost-task hang this pins: a task enqueued after the workers have
  // seen stop_ and exited would sit unexecuted forever and its future
  // would never resolve. Post-shutdown Submits must run inline instead.
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> counter{0};
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  auto f = pool.Submit([&] {
    ++counter;
    ran_on = std::this_thread::get_id();
  });
  f.wait();  // must not hang
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(ran_on, caller);

  // The inline path routes exceptions into the future like a worker would.
  auto g = pool.Submit([] { throw std::runtime_error("late"); });
  EXPECT_THROW(g.get(), std::runtime_error);
}

TEST(ParallelForShardsTest, ShardCountBelowJobCountVisitsEverythingOnce) {
  // shard_size large enough that num_shards < jobs: the excess jobs must
  // idle out, not deadlock or double-visit.
  for (size_t shard_size : {static_cast<size_t>(100), static_cast<size_t>(7),
                            static_cast<size_t>(1)}) {
    for (int jobs : {1, 4, 8}) {
      std::vector<std::atomic<int>> hits(23);
      for (auto& h : hits) h = 0;
      ParallelForShards(
          hits.size(), shard_size,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) ++hits[i];
          },
          jobs);
      for (size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "index " << i << " shard_size " << shard_size << " jobs "
            << jobs;
      }
    }
  }
}

TEST(ParallelForShardsTest, SingleElementAndAutoShardSize) {
  // n == 1 takes the serial fast path regardless of the job request.
  std::atomic<int> hits{0};
  ParallelForShards(
      1, 0, [&](size_t begin, size_t end) {
        hits += static_cast<int>(end - begin);
      },
      8);
  EXPECT_EQ(hits.load(), 1);
  ParallelForShards(0, 0, [&](size_t, size_t) { ++hits; }, 8);
  EXPECT_EQ(hits.load(), 1);  // empty range is a no-op
}

TEST(ParallelForShardsTest, ExceptionInAShardPropagates) {
  // The exception path must release every runner (pool helpers and the
  // caller) before rethrowing — a lost wakeup here hangs the test.
  for (int jobs : {1, 4}) {
    EXPECT_THROW(
        ParallelForShards(
            64, 4,
            [](size_t begin, size_t) {
              if (begin >= 32) throw std::runtime_error("shard boom");
            },
            jobs),
        std::runtime_error);
  }
}

TEST(ParallelForTest, JobsExceedingPoolSizeStillComplete) {
  // Requests wider than the shared pool spawn dedicated helper threads;
  // all of them must be joined even when the work is trivial.
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; },
              ThreadPool::Global()->num_threads() + 7);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(DefaultNumThreadsTest, PositiveAndRespectsEnv) {
  EXPECT_GE(DefaultNumThreads(), 1);
#if !defined(_WIN32)
  ::setenv("ITRIM_THREADS", "3", 1);
  EXPECT_EQ(DefaultNumThreads(), 3);
  ::setenv("ITRIM_THREADS", "not-a-number", 1);
  EXPECT_GE(DefaultNumThreads(), 1);
  ::unsetenv("ITRIM_THREADS");
#endif
}

}  // namespace
}  // namespace itrim
