// Regression tests pinning the headline reproduction claims recorded in
// EXPERIMENTS.md — cheap, deterministic versions of the bench results, so a
// library change that breaks a paper-level claim fails CI rather than being
// discovered in a bench rerun.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "data/generators.h"
#include "exp/experiments.h"
#include "exp/schemes.h"
#include "game/collection_game.h"
#include "game/payoff.h"
#include "game/position_map.h"
#include "ldp/attacks.h"
#include "ldp/ldp_game.h"
#include "ldp/mechanism.h"

namespace itrim {
namespace {

// --- Table IV: the k = 0.1 column matches the paper within 0.5 % ----------

TEST(PaperClaims, TableIVK01ColumnMatchesPaper) {
  const double paper[] = {0.43281,  0.28887,  0.21667, 0.17333, 0.14444,
                          0.12381,  0.10833,  0.096296, 0.086667};
  int idx = 0;
  for (int n = 10; n <= 50; n += 5, ++idx) {
    double measured = 100.0 * ElasticRoundwiseCost(0.1, n);
    EXPECT_NEAR(measured, paper[idx], 0.005 * paper[idx])
        << "Round_no=" << n;
  }
}

TEST(PaperClaims, TableIVEquilibriumMagnitudes) {
  // |A* - Tth| = 3.0404 % (k=0.1) and 4.3333 % (k=0.5) — the constants the
  // paper's printed columns divide by Round_no.
  EXPECT_NEAR(TraceElasticDynamics(0.1, 2).fixed_point_adversary, -0.0304040,
              1e-6);
  EXPECT_NEAR(TraceElasticDynamics(0.5, 2).fixed_point_adversary, -0.0433333,
              1e-6);
}

// --- Table I: unique tough/tough equilibrium --------------------------------

TEST(PaperClaims, TableIUniqueHardHardEquilibrium) {
  UltimatumGame game(PayoffParams{});
  auto eqs = game.PureNashEquilibria();
  ASSERT_EQ(eqs.size(), 1u);
  EXPECT_EQ(eqs[0].first, Stance::kHard);
  EXPECT_EQ(eqs[0].second, Stance::kHard);
  EXPECT_TRUE(game.HasPrisonersDilemmaStructure());
}

// --- Fig 4 vs Fig 5: the threshold controls the trimming overhead ----------

TEST(PaperClaims, ConservativeThresholdRemovesOverhead) {
  // At Tth = 0.9 a clean round loses ~12 % benign mass to trimming; at the
  // Fig-5 threshold 0.97 the overhead all but vanishes — the paper's
  // "more conservative, diminishing the overhead at lower attack ratios".
  Dataset data = MakeControl(33);
  auto run = [&](double tth) {
    StaticCollector collector(tth, "static");
    FixedPercentileAdversary adversary(0.99);
    GameConfig config;
    config.rounds = 8;
    config.round_size = 200;
    config.attack_ratio = 0.0;
    config.tth = tth;
    config.seed = 9;
    DistanceCollectionGame game(config, &data, &collector, &adversary,
                                nullptr);
    return game.Run().ValueOrDie().BenignLossFraction();
  };
  double loss_aggressive = run(0.9);
  double loss_conservative = run(0.97);
  EXPECT_GT(loss_aggressive, 0.06);
  EXPECT_LT(loss_conservative, 0.01);
}

// --- Fig 4 high band: the damage gap behind Ostrich's collapse -------------

TEST(PaperClaims, PositionDamageGapExists) {
  Dataset control = MakeControl(21);
  auto map = PositionMap::Build(control.rows).ValueOrDie();
  // The 99th-percentile injection point is far outside the data hull while
  // the defenses' equilibrium positions (~0.87-0.92) stay inside it.
  EXPECT_GT(map.DistanceAt(0.99), 1.4 * map.DistanceAt(0.92));
  double max_benign = 0.0;
  for (const auto& row : control.rows) {
    max_benign = std::max(max_benign,
                          EuclideanDistance(row, map.centroid()));
  }
  EXPECT_GT(map.DistanceAt(0.99), 1.2 * max_benign);
}

// --- Fig 9: trimming beats EMF; small-epsilon inflation --------------------

TEST(PaperClaims, Fig9TrimmingBeatsEmfAndInflectsAtSmallEpsilon) {
  Dataset taxi = MakeTaxi(3, 20000);
  std::vector<double> population;
  for (const auto& row : taxi.rows) population.push_back(row[0]);

  auto mse_at = [&](double eps, bool emf) {
    double acc = 0.0;
    const int reps = 3;
    for (int rep = 0; rep < reps; ++rep) {
      PiecewiseMechanism mech(eps);
      InputManipulationAttack attack(1.0);
      LdpGameConfig config;
      config.rounds = 6;
      config.users_per_round = 1500;
      config.attack_ratio = 0.25;
      config.seed = 700 + static_cast<uint64_t>(rep);
      LdpCollectionGame game(config, &population, &mech, &attack);
      if (emf) {
        acc += game.RunEmf(EmfConfig{}).ValueOrDie().squared_error;
      } else {
        ElasticCollector collector(0.5);
        acc += game.RunTrimming(&collector, nullptr).ValueOrDie()
                   .squared_error;
      }
    }
    return acc / reps;
  };
  // EMF trails trimming at a moderate budget.
  EXPECT_LT(mse_at(2.5, false), mse_at(2.5, true));
  // Trimming pays for heavy perturbation: eps=1 worse than eps=3.
  EXPECT_GT(mse_at(1.0, false), mse_at(3.0, false));
}

// --- Table III endpoints ----------------------------------------------------

TEST(PaperClaims, TableIIIEndpoints) {
  NonEquilibriumConfig config;
  config.repetitions = 4;
  config.round_size = 1000;
  auto rows = RunNonEquilibriumExperiment(config, {0.0, 1.0}).ValueOrDie();
  // p = 0: the trigger threshold 1.05 is unreachable -> never terminates.
  EXPECT_DOUBLE_EQ(rows[0].avg_termination_round, config.rounds);
  // p = 1: equilibrium play still trips the noisy judgement well before the
  // horizon.
  EXPECT_LT(rows[1].avg_termination_round, config.rounds - 4);
  // Deviating from equilibrium does not pay: the Elastic defense tolerates
  // less poison from the p = 1 adversary than it concedes at p = 0, but the
  // p = 0 poison sits at a worthless position (the 90th percentile).
  EXPECT_GT(rows[0].elastic_untrimmed, rows[1].elastic_untrimmed);
}

// --- Fig 7/8 setup sanity: groundtruth quality ------------------------------

TEST(PaperClaims, GroundtruthLearnersAreStrong) {
  SvmExperimentConfig config;
  config.repetitions = 1;
  config.rounds = 5;
  config.round_size = 100;
  auto svm = RunSvmExperiment(config).ValueOrDie();
  EXPECT_GT(svm.groundtruth_accuracy, 0.93);  // paper: 96.8 %
}

}  // namespace
}  // namespace itrim
