// Cross-module integration tests: full defense pipelines exercising the
// paper's headline claims end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "exp/experiments.h"
#include "exp/schemes.h"
#include "game/collection_game.h"
#include "game/equilibrium.h"
#include "ldp/attacks.h"
#include "ldp/ldp_game.h"
#include "ldp/mechanism.h"
#include "ml/kmeans.h"
#include "ml/svm.h"
#include "stats/metrics.h"

namespace itrim {
namespace {

// --- Claim: at high attack ratios, adaptive trimming beats no defense -----

TEST(EndToEndKmeans, AdaptiveTrimmingBeatsOstrichUnderHeavyAttack) {
  Dataset data = MakeControl(21);
  auto run_scheme = [&](SchemeId id) {
    double dist_acc = 0.0;
    for (uint64_t rep = 0; rep < 3; ++rep) {
      SchemeInstance scheme = MakeScheme(id, 0.9);
      GameConfig config;
      config.rounds = 10;
      config.round_size = 150;
      config.attack_ratio = 0.4;
      config.tth = 0.9;
      config.round_mass_trimming = true;  // the Fig 4 pipeline semantics
      config.seed = 1000 + rep;
      DistanceCollectionGame game(config, &data, scheme.collector.get(),
                                  scheme.adversary.get(),
                                  scheme.quality.get());
      EXPECT_TRUE(game.Run().ok());
      KMeansConfig km;
      km.k = 6;
      km.restarts = 2;
      km.seed = rep;
      auto model = KMeans(game.retained_data().rows, km).ValueOrDie();
      KMeansConfig km_clean = km;
      auto gt = KMeans(data.rows, km_clean).ValueOrDie();
      dist_acc += CentroidSetDistance(model.centroids, gt.centroids);
    }
    return dist_acc / 3.0;
  };
  double ostrich = run_scheme(SchemeId::kOstrich);
  double elastic = run_scheme(SchemeId::kElastic05);
  double titfortat = run_scheme(SchemeId::kTitfortat);
  EXPECT_LT(elastic, ostrich);
  EXPECT_LT(titfortat, ostrich);
}

// --- Claim: the ideal attack defeats a static threshold ------------------

TEST(EndToEndGame, StaticThresholdFullyEvadedAdaptivePartiallyEvaded) {
  Dataset data = MakeControl(22);
  GameConfig config;
  config.rounds = 10;
  config.round_size = 200;
  config.attack_ratio = 0.3;
  config.tth = 0.9;
  config.seed = 77;

  SchemeInstance stat = MakeScheme(SchemeId::kBaselineStatic, 0.9);
  DistanceCollectionGame static_game(config, &data, stat.collector.get(),
                                     stat.adversary.get(), nullptr);
  double static_survival =
      static_game.Run().ValueOrDie().PoisonSurvivalRate();
  // The ideal attack sneaks everything below the static threshold.
  EXPECT_GT(static_survival, 0.95);

  SchemeInstance elastic = MakeScheme(SchemeId::kElastic05, 0.9);
  DistanceCollectionGame elastic_game(config, &data, elastic.collector.get(),
                                      elastic.adversary.get(), nullptr);
  GameSummary summary = elastic_game.Run().ValueOrDie();
  // The Elastic equilibrium keeps the poison mild: its converged position
  // sits ~4% below Tth, far below the static scheme's just-below-threshold
  // injections.
  double mean_injection = 0.0;
  for (const auto& r : summary.rounds) {
    mean_injection += r.injection_percentile;
  }
  mean_injection /= summary.rounds.size();
  EXPECT_LT(mean_injection, 0.89);
}

// --- Claim (Theorem 3): compliance is decided by the delta boundary -------

TEST(EndToEndEquilibrium, SimulatedRepeatedGameMatchesTheorem3) {
  UltimatumGame game(PayoffParams{10.0, 6.0, 1.0, 0.5});
  double g_ac = game.SymmetricCooperationGain();
  Rng rng(11);
  for (double p : {0.2, 0.6}) {
    double d = 0.9;
    double boundary = TitfortatCompromiseBoundary(game, d, p);
    // Just below the boundary: compliance value wins; just above: defection.
    ComplianceSetting comply{g_ac, boundary * 0.9, d, p};
    ComplianceSetting defect{g_ac, boundary * 1.1, d, p};
    double defect_value = SimulateDefectionValue(comply, 20000, &rng);
    EXPECT_GT(ComplianceValue(comply), defect_value * 0.98);
    EXPECT_LT(ComplianceValue(defect), DefectionValue(defect) * 1.02);
  }
}

// --- Claim: SVM accuracy ordering under the Fig 7 setup ------------------

TEST(EndToEndSvm, DefensesPreserveAccuracyUnderHeavyAttack) {
  SvmExperimentConfig config;
  config.repetitions = 1;
  config.rounds = 8;
  config.round_size = 120;
  auto result = RunSvmExperiment(config).ValueOrDie();
  ASSERT_EQ(result.schemes.size(), 6u);
  EXPECT_GT(result.groundtruth_accuracy, 0.9);
  double elastic05 = 0.0, baseline_static = 0.0;
  for (const auto& s : result.schemes) {
    EXPECT_GT(s.accuracy, 0.5) << s.scheme;
    EXPECT_LE(s.accuracy, result.groundtruth_accuracy + 0.05) << s.scheme;
    if (s.scheme == "Elastic0.5") elastic05 = s.accuracy;
    if (s.scheme == "Baselinestatic") baseline_static = s.accuracy;
  }
  // Our scheme must not lose to the fully-evaded static baseline.
  EXPECT_GE(elastic05, baseline_static - 0.02);
}

// --- Claim (Fig 9): trimming beats EMF under evasive LDP poisoning --------

TEST(EndToEndLdp, TrimmingSchemesBeatEmf) {
  LdpExperimentConfig config;
  config.population_size = 20000;
  config.epsilons = {2.0};
  config.repetitions = 3;
  config.rounds = 6;
  config.users_per_round = 1500;
  config.attack_ratio = 0.25;
  auto result = RunLdpExperiment(config).ValueOrDie();
  double emf = 0.0, best_trim = 1e18;
  for (const auto& s : result.series) {
    if (s.scheme == "EMF") {
      emf = s.mse[0];
    } else {
      best_trim = std::min(best_trim, s.mse[0]);
    }
  }
  EXPECT_LT(best_trim, emf);
}

// --- Claim: irrational adversaries gain less (Table III direction) --------

TEST(EndToEndNonEquilibrium, ElasticPunishesEquilibriumDeviation) {
  NonEquilibriumConfig config;
  config.repetitions = 8;
  config.round_size = 600;
  auto rows =
      RunNonEquilibriumExperiment(config, {0.0, 0.5, 1.0}).ValueOrDie();
  ASSERT_EQ(rows.size(), 3u);
  // Elastic adapts: the more predictable the high-position play (p -> 1),
  // the less poison survives.
  EXPECT_GT(rows[0].elastic_untrimmed, rows[2].elastic_untrimmed);
}

// --- Public board: the percentile reference stays calibrated --------------

TEST(EndToEndBoard, ReferenceStaysCalibratedUnderHeavyAttack) {
  // The board is anchored on the clean round-0 calibration sample, so the
  // percentile domain both parties speak in cannot be poisoned or
  // self-truncated: after 15 heavily-poisoned rounds its quantiles still
  // match the clean distribution's.
  Rng rng(31);
  std::vector<double> pool;
  for (int i = 0; i < 5000; ++i) pool.push_back(rng.Uniform());
  GameConfig config;
  config.rounds = 15;
  config.round_size = 300;
  config.attack_ratio = 0.5;
  config.tth = 0.9;
  config.seed = 5;
  config.bootstrap_size = 2000;
  StaticCollector collector(0.9, "static");
  FixedPercentileAdversary adversary(0.99);
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  ASSERT_TRUE(game.Run().ok());
  EXPECT_NEAR(game.board().Quantile(0.90).ValueOrDie(), 0.90, 0.03);
  EXPECT_NEAR(game.board().Quantile(0.99).ValueOrDie(), 0.99, 0.03);
  // And the cutoff consequently stayed put: benign loss ~ 10% per round,
  // no truncation spiral.
  GameSummary replay = game.Run().ValueOrDie();
  EXPECT_NEAR(replay.BenignLossFraction(), 0.1, 0.03);
}

}  // namespace
}  // namespace itrim
