// Property-based suites: invariants that must hold across randomized
// configurations of the whole stack (TEST_P sweeps serve as the
// property-testing harness).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"
#include "exp/experiments.h"
#include "exp/schemes.h"
#include "game/collection_game.h"
#include "game/lagrangian.h"
#include "game/strategies.h"
#include "ldp/attacks.h"
#include "ldp/ldp_game.h"
#include "ldp/mechanism.h"

namespace itrim {
namespace {

// ---------------------------------------------------------------------------
// Property: game bookkeeping identities hold for every scheme and ratio.
// ---------------------------------------------------------------------------

struct GameCase {
  SchemeId scheme;
  double attack_ratio;
  uint64_t seed;
};

class SchemeInvariantTest : public ::testing::TestWithParam<GameCase> {};

TEST_P(SchemeInvariantTest, AccountingAndDomainInvariants) {
  const GameCase& param = GetParam();
  Dataset data = MakeControl(param.seed);
  SchemeInstance scheme = MakeScheme(param.scheme, 0.9);
  GameConfig config;
  config.rounds = 8;
  config.round_size = 150;
  config.attack_ratio = param.attack_ratio;
  config.tth = 0.9;
  config.seed = param.seed;
  DistanceCollectionGame game(config, &data, scheme.collector.get(),
                              scheme.adversary.get(), scheme.quality.get());
  GameSummary summary = game.Run().ValueOrDie();

  // (1) Every round's kept counts never exceed received counts.
  for (const auto& r : summary.rounds) {
    EXPECT_LE(r.benign_kept, r.benign_received);
    EXPECT_LE(r.poison_kept, r.poison_received);
    // (2) Thresholds are percentiles (or the no-trim sentinel).
    EXPECT_GE(r.collector_percentile, 0.0);
  }
  // (3) Retained-state sizes agree with the summary.
  EXPECT_EQ(game.retained_data().rows.size(), summary.TotalKept());
  EXPECT_EQ(game.retained_is_poison().size(), summary.TotalKept());
  // (4) Fractions live in [0, 1].
  EXPECT_GE(summary.UntrimmedPoisonFraction(), 0.0);
  EXPECT_LE(summary.UntrimmedPoisonFraction(), 1.0);
  EXPECT_GE(summary.BenignLossFraction(), 0.0);
  EXPECT_LE(summary.BenignLossFraction(), 1.0);
  // (5) Deterministic replay.
  SchemeInstance scheme2 = MakeScheme(param.scheme, 0.9);
  DistanceCollectionGame game2(config, &data, scheme2.collector.get(),
                               scheme2.adversary.get(),
                               scheme2.quality.get());
  GameSummary replay = game2.Run().ValueOrDie();
  EXPECT_DOUBLE_EQ(replay.UntrimmedPoisonFraction(),
                   summary.UntrimmedPoisonFraction());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndRatios, SchemeInvariantTest,
    ::testing::Values(GameCase{SchemeId::kOstrich, 0.05, 1},
                      GameCase{SchemeId::kOstrich, 0.5, 2},
                      GameCase{SchemeId::kBaseline09, 0.2, 3},
                      GameCase{SchemeId::kBaselineStatic, 0.3, 4},
                      GameCase{SchemeId::kTitfortat, 0.2, 5},
                      GameCase{SchemeId::kTitfortat, 0.5, 6},
                      GameCase{SchemeId::kElastic01, 0.25, 7},
                      GameCase{SchemeId::kElastic05, 0.25, 8},
                      GameCase{SchemeId::kElastic05, 0.5, 9}));

// ---------------------------------------------------------------------------
// Property: trimming overhead rises as the threshold tightens (clean data).
// ---------------------------------------------------------------------------

class OverheadMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(OverheadMonotonicityTest, TighterThresholdMoreBenignLoss) {
  const double tth = GetParam();
  Rng rng(13);
  std::vector<double> pool;
  for (int i = 0; i < 4000; ++i) pool.push_back(rng.Normal());
  GameConfig config;
  config.rounds = 6;
  config.round_size = 400;
  config.attack_ratio = 0.0;
  config.tth = tth;
  config.seed = 17;
  StaticCollector tight(tth - 0.05, "tight");
  StaticCollector loose(tth, "loose");
  FixedPercentileAdversary adversary(0.99);
  ScalarCollectionGame game_tight(config, &pool, &tight, &adversary, nullptr);
  ScalarCollectionGame game_loose(config, &pool, &loose, &adversary, nullptr);
  double loss_tight = game_tight.Run().ValueOrDie().BenignLossFraction();
  double loss_loose = game_loose.Run().ValueOrDie().BenignLossFraction();
  EXPECT_GT(loss_tight, loss_loose);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, OverheadMonotonicityTest,
                         ::testing::Values(0.8, 0.9, 0.95, 0.97));

// ---------------------------------------------------------------------------
// Property: poison survival is monotone in the injection position relative
// to a static threshold — inject below, survive; inject above, die.
// ---------------------------------------------------------------------------

class EvasionBoundaryTest : public ::testing::TestWithParam<double> {};

TEST_P(EvasionBoundaryTest, SurvivalFlipsAtThreshold) {
  const double offset = GetParam();
  Rng rng(19);
  std::vector<double> pool;
  for (int i = 0; i < 4000; ++i) pool.push_back(rng.Uniform());
  GameConfig config;
  config.rounds = 5;
  config.round_size = 400;
  config.attack_ratio = 0.1;
  config.tth = 0.9;
  config.seed = 23;
  StaticCollector collector(0.9, "static");
  FixedPercentileAdversary adversary(0.9 + offset);
  ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
  double survival = game.Run().ValueOrDie().PoisonSurvivalRate();
  if (offset <= 0.0) {
    EXPECT_GT(survival, 0.9) << "offset=" << offset;
  } else {
    EXPECT_LT(survival, 0.35) << "offset=" << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, EvasionBoundaryTest,
                         ::testing::Values(-0.05, -0.02, 0.0, 0.03, 0.08));

// ---------------------------------------------------------------------------
// Property: energy conservation of the Euler-Lagrange integrator across
// random masses, spring constants, and initial conditions.
// ---------------------------------------------------------------------------

class EnergySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnergySweepTest, RandomOscillatorConservesEnergy) {
  Rng rng(GetParam());
  double m_a = rng.Uniform(0.5, 5.0);
  double m_c = rng.Uniform(0.5, 5.0);
  double k = rng.Uniform(0.1, 10.0);
  ElasticPotential potential(k);
  GameLagrangian lagrangian(m_a, m_c, &potential);
  EulerLagrangeIntegrator integrator(&lagrangian);
  GameState initial{rng.Uniform(-2, 2), rng.Uniform(-2, 2),
                    rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
  auto traj = integrator.Integrate(initial, 0.005, 4000);
  double e0 = lagrangian.Energy(traj.front().state);
  double max_drift = 0.0;
  for (const auto& pt : traj) {
    max_drift =
        std::max(max_drift, std::fabs(lagrangian.Energy(pt.state) - e0));
  }
  EXPECT_LT(max_drift, 1e-6 * std::max(1.0, std::fabs(e0)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergySweepTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Property: LDP mechanisms stay unbiased when composed with the attack
// pipeline's clamping, across epsilons and inputs.
// ---------------------------------------------------------------------------

struct LdpCase {
  const char* mechanism;
  double epsilon;
};

class LdpCompositionTest : public ::testing::TestWithParam<LdpCase> {};

TEST_P(LdpCompositionTest, RoundGenerationPreservesMeanWithoutAttack) {
  const LdpCase& param = GetParam();
  Dataset taxi = MakeTaxi(7, 10000);
  std::vector<double> population;
  for (const auto& row : taxi.rows) population.push_back(row[0]);
  auto mech = MakeMechanism(param.mechanism, param.epsilon).ValueOrDie();
  InputManipulationAttack attack(1.0);
  LdpGameConfig config;
  config.rounds = 4;
  config.users_per_round = 3000;
  config.attack_ratio = 0.0;
  config.seed = 29;
  LdpCollectionGame game(config, &population, mech.get(), &attack);
  auto result = game.RunUndefended().ValueOrDie();
  EXPECT_NEAR(result.estimated_mean, result.true_mean,
              6.0 / std::sqrt(12000.0) * (2.0 / param.epsilon + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, LdpCompositionTest,
    ::testing::Values(LdpCase{"laplace", 1.0}, LdpCase{"laplace", 4.0},
                      LdpCase{"duchi", 1.0}, LdpCase{"duchi", 4.0},
                      LdpCase{"piecewise", 1.0}, LdpCase{"piecewise", 4.0}));

// ---------------------------------------------------------------------------
// Property: Elastic dynamics converge for every k in (0, 1) and the
// roundwise cost vanishes with the horizon.
// ---------------------------------------------------------------------------

class ElasticKSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ElasticKSweepTest, CostVanishesWithHorizon) {
  const double k = GetParam();
  double prev = 1e18;
  for (int n : {5, 10, 20, 40, 80}) {
    double cost = ElasticRoundwiseCost(k, n);
    EXPECT_LT(cost, prev) << "n=" << n;
    prev = cost;
  }
  // Cumulative cost converges: doubling the horizon halves roundwise cost.
  EXPECT_NEAR(ElasticRoundwiseCost(k, 80),
              ElasticRoundwiseCost(k, 40) / 2.0,
              0.1 * ElasticRoundwiseCost(k, 40));
}

INSTANTIATE_TEST_SUITE_P(Ks, ElasticKSweepTest,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace itrim
