// TraceBuffer behavior: ordered single-writer windows, wraparound loss
// accounting, the packed kind/tenant metadata, and seqlock safety under a
// concurrent reader. Under ITRIM_OBS=0 the ring is storage-free and
// snapshots are empty — asserted here too, so both builds stay covered.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace itrim::obs {
namespace {

TEST(TraceKindTest, EveryKindHasAName) {
  for (int k = 0; k < static_cast<int>(TraceKind::kNumKinds); ++k) {
    const char* name = TraceKindName(static_cast<TraceKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    // snake_case, usable as a stable JSON identifier.
    for (const char* p = name; *p != '\0'; ++p) {
      EXPECT_TRUE((*p >= 'a' && *p <= 'z') || *p == '_') << name;
    }
  }
}

TEST(TraceBufferTest, RecordsInOrderWithMonotonicTimestamps) {
  TraceBuffer trace(64);
  trace.Record(TraceKind::kRoundStart, 7, 1.0);
  trace.Record(TraceKind::kTrimDecision, 7, 12.0);
  trace.Record(TraceKind::kRoundEnd, 7, 0.93);

  std::vector<TraceEvent> events;
  trace.Snapshot(&events);
  if constexpr (kEnabled) {
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, TraceKind::kRoundStart);
    EXPECT_EQ(events[1].kind, TraceKind::kTrimDecision);
    EXPECT_EQ(events[2].kind, TraceKind::kRoundEnd);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[2].seq, 2u);
    for (const TraceEvent& ev : events) EXPECT_EQ(ev.tenant, 7u);
    EXPECT_EQ(events[1].value, 12.0);
    EXPECT_EQ(events[2].value, 0.93);
    EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
    EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
    EXPECT_EQ(trace.recorded(), 3u);
    EXPECT_EQ(trace.dropped(), 0u);
  } else {
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(trace.recorded(), 0u);
  }
}

TEST(TraceBufferTest, CapacityRoundsUpToAPowerOfTwo) {
  TraceBuffer trace(24);
  if constexpr (kEnabled) {
    EXPECT_EQ(trace.capacity(), 32u);
  }
  TraceBuffer tiny(0);
  if constexpr (kEnabled) {
    EXPECT_GE(tiny.capacity(), 1u);
  }
}

TEST(TraceBufferTest, WraparoundKeepsTheNewestWindowAndCountsDrops) {
  if constexpr (!kEnabled) GTEST_SKIP() << "storage compiled out";
  TraceBuffer trace(8);
  for (int i = 0; i < 20; ++i) {
    trace.Record(TraceKind::kRoundEnd, 1, static_cast<double>(i));
  }
  std::vector<TraceEvent> events;
  trace.Snapshot(&events);
  ASSERT_EQ(events.size(), trace.capacity());
  // The retained window is the newest `capacity` events, oldest first.
  EXPECT_EQ(events.front().value, 12.0);
  EXPECT_EQ(events.back().value, 19.0);
  EXPECT_EQ(trace.recorded(), 20u);
  EXPECT_EQ(trace.dropped(), 20u - trace.capacity());
}

TEST(TraceBufferTest, TenantIdsSurviveUpTo56Bits) {
  if constexpr (!kEnabled) GTEST_SKIP() << "storage compiled out";
  TraceBuffer trace(4);
  const uint64_t big = (uint64_t{1} << 56) - 1;
  trace.Record(TraceKind::kHibernate, big, 3.0);
  std::vector<TraceEvent> events;
  trace.Snapshot(&events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tenant, big);
  EXPECT_EQ(events[0].kind, TraceKind::kHibernate);
}

TEST(TraceBufferTest, SnapshotRacesWritersWithoutTearing) {
  if constexpr (!kEnabled) GTEST_SKIP() << "storage compiled out";
  TraceBuffer trace(64);
  std::atomic<bool> stop{false};
  // Two writers hammer the ring (the multi-writer shape: a worker plus a
  // producer on the backpressure path) while this thread snapshots.
  auto writer = [&](uint64_t tenant) {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      trace.Record(TraceKind::kRoundEnd, tenant, static_cast<double>(i++));
    }
  };
  std::thread w1(writer, 1), w2(writer, 2);
  std::vector<TraceEvent> events;
  for (int i = 0; i < 200; ++i) {
    trace.Snapshot(&events);
    for (const TraceEvent& ev : events) {
      // A torn read would surface as an impossible kind/tenant combo.
      EXPECT_EQ(ev.kind, TraceKind::kRoundEnd);
      EXPECT_TRUE(ev.tenant == 1u || ev.tenant == 2u);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  w1.join();
  w2.join();
}

}  // namespace
}  // namespace itrim::obs
