// MetricsRegistry / MetricSlot behavior: the fixed catalog's metadata, hot
// path recording into per-shard slots, scrape-time merging, build-info
// pairs, and the optional ScrapeSampler thread. Everything except the
// storage-dependent value checks also runs (as no-ops) under ITRIM_OBS=0,
// so a disabled build keeps the API surface compiling and inert.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/sampler.h"

namespace itrim::obs {
namespace {

TEST(MetricsCatalogTest, EveryMetricHasDistinctNonEmptyMetadata) {
  std::vector<std::string> names;
  for (int c = 0; c < kNumCounters; ++c) {
    const CounterInfo& info = MetaOf(static_cast<Counter>(c));
    ASSERT_NE(info.name, nullptr);
    ASSERT_NE(info.help, nullptr);
    EXPECT_GT(std::strlen(info.name), 0u);
    EXPECT_GT(std::strlen(info.help), 0u);
    names.push_back(info.name);
  }
  for (int g = 0; g < kNumGauges; ++g) {
    const GaugeInfo& info = MetaOf(static_cast<Gauge>(g));
    EXPECT_GT(std::strlen(info.name), 0u);
    names.push_back(info.name);
  }
  for (int h = 0; h < kNumHistograms; ++h) {
    const HistogramInfo& info = MetaOf(static_cast<Histogram>(h));
    EXPECT_GT(std::strlen(info.name), 0u);
    names.push_back(info.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "metric names must be unique across kinds";
}

TEST(MetricsCatalogTest, HistogramBoundsAreAscendingAndFitTheSlot) {
  for (int h = 0; h < kNumHistograms; ++h) {
    const HistogramInfo& info = MetaOf(static_cast<Histogram>(h));
    ASSERT_GT(info.bounds.size(), 0u) << info.name;
    ASSERT_LE(info.bounds.size(), static_cast<size_t>(kMaxBuckets))
        << info.name;
    for (size_t i = 1; i < info.bounds.size(); ++i) {
      EXPECT_LT(info.bounds[i - 1], info.bounds[i]) << info.name;
    }
  }
}

TEST(MetricsRegistryTest, SlotsRecordAndScrapeMerges) {
  MetricsRegistry registry;
  MetricSlot* a = registry.AddSlot("shard0");
  MetricSlot* b = registry.AddSlot("shard1");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(registry.num_slots(), 2u);

  a->Inc(Counter::kIngestEventsAccepted);
  a->Inc(Counter::kIngestEventsAccepted, 4);
  b->Inc(Counter::kIngestEventsAccepted, 2);
  a->Set(Gauge::kIngestQueueDepth, 3.0);
  b->Set(Gauge::kIngestQueueDepth, 5.0);

  MetricsSnapshot snap = registry.Scrape();
  ASSERT_EQ(snap.slots.size(), 2u);
  EXPECT_EQ(snap.slots[0].label, "shard0");
  EXPECT_EQ(snap.slots[1].label, "shard1");

  const int c = static_cast<int>(Counter::kIngestEventsAccepted);
  const int g = static_cast<int>(Gauge::kIngestQueueDepth);
  if constexpr (kEnabled) {
    EXPECT_EQ(snap.slots[0].counters[c], 5u);
    EXPECT_EQ(snap.slots[1].counters[c], 2u);
    EXPECT_EQ(snap.merged.counters[c], 7u);
    EXPECT_EQ(snap.slots[0].gauges[g], 3.0);
    EXPECT_EQ(snap.merged.gauges[g], 8.0);  // gauges sum across slots
    EXPECT_EQ(a->Get(Counter::kIngestEventsAccepted), 5u);
    EXPECT_EQ(b->Get(Gauge::kIngestQueueDepth), 5.0);
  } else {
    EXPECT_EQ(snap.merged.counters[c], 0u);
    EXPECT_EQ(snap.merged.gauges[g], 0.0);
  }
}

TEST(MetricsRegistryTest, HistogramObservationsLandInTheRightBucket) {
  MetricsRegistry registry;
  MetricSlot* slot = registry.AddSlot("w");
  // kIngestPopBatchSize bounds: 1, 2, 4, 8, ... 512 (powers of two).
  const HistogramInfo& info = MetaOf(Histogram::kIngestPopBatchSize);
  slot->Observe(Histogram::kIngestPopBatchSize, 1.0);    // <= 1: bucket 0
  slot->Observe(Histogram::kIngestPopBatchSize, 3.0);    // <= 4: bucket 2
  slot->Observe(Histogram::kIngestPopBatchSize, 1e6);    // +Inf overflow

  MetricsSnapshot snap = registry.Scrape();
  const HistogramValue& merged =
      snap.merged.histograms[static_cast<int>(Histogram::kIngestPopBatchSize)];
  ASSERT_EQ(merged.counts.size(), info.bounds.size() + 1);
  if constexpr (kEnabled) {
    EXPECT_EQ(merged.count, 3u);
    EXPECT_DOUBLE_EQ(merged.sum, 1.0 + 3.0 + 1e6);
    EXPECT_EQ(merged.counts[0], 1u);
    EXPECT_EQ(merged.counts[2], 1u);
    EXPECT_EQ(merged.counts[info.bounds.size()], 1u);  // overflow bucket
    uint64_t total = 0;
    for (uint64_t n : merged.counts) total += n;
    EXPECT_EQ(total, merged.count);
  } else {
    EXPECT_EQ(merged.count, 0u);
  }
}

TEST(MetricsRegistryTest, InfoPairsMergeLastWriteWins) {
  MetricsRegistry registry;
  registry.SetInfo("kernel", "generic");
  registry.SetInfo("board", "flat");
  registry.SetInfo("kernel", "vector");  // overwrites
  MetricsSnapshot snap = registry.Scrape();
  ASSERT_EQ(snap.info.size(), 2u);
  bool saw_kernel = false;
  for (const auto& [key, value] : snap.info) {
    if (key == "kernel") {
      saw_kernel = true;
      EXPECT_EQ(value, "vector");
    }
  }
  EXPECT_TRUE(saw_kernel);
}

TEST(MetricsRegistryTest, ScrapeIsSafeWhileWritersRecord) {
  MetricsRegistry registry;
  MetricSlot* slot = registry.AddSlot("hot");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      slot->Inc(Counter::kSessionRoundsPlayed);
      slot->Observe(Histogram::kPoolTaskUs, 2.0);
    }
  });
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = registry.Scrape();
    const HistogramValue& h =
        snap.merged.histograms[static_cast<int>(Histogram::kPoolTaskUs)];
    uint64_t total = 0;
    for (uint64_t n : h.counts) total += n;
    // Bucket counts are incremented before the count cell, so the summed
    // buckets can only run ahead of `count`, never behind.
    EXPECT_GE(total, h.count);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  MetricsSnapshot snap = registry.Scrape();
  if constexpr (kEnabled) {
    EXPECT_EQ(
        snap.merged.counters[static_cast<int>(Counter::kSessionRoundsPlayed)],
        slot->Get(Counter::kSessionRoundsPlayed));
  }
}

TEST(ScrapeSamplerTest, ValidatesItsInputsAndLifecycle) {
  MetricsRegistry registry;
  ScrapeSampler null_registry(nullptr, std::chrono::milliseconds(10),
                              [](const MetricsSnapshot&) {});
  EXPECT_EQ(null_registry.Start().code(), StatusCode::kInvalidArgument);
  ScrapeSampler null_callback(&registry, std::chrono::milliseconds(10),
                              nullptr);
  EXPECT_EQ(null_callback.Start().code(), StatusCode::kInvalidArgument);

  std::atomic<uint64_t> seen{0};
  ScrapeSampler sampler(&registry, std::chrono::milliseconds(5),
                        [&](const MetricsSnapshot&) { ++seen; });
  EXPECT_FALSE(sampler.running());
  ASSERT_TRUE(sampler.Start().ok());
  EXPECT_TRUE(sampler.running());
  EXPECT_EQ(sampler.Start().code(), StatusCode::kFailedPrecondition);
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  // Stop takes a final flush sample, so at least one snapshot was seen.
  EXPECT_GE(sampler.samples(), 1u);
  EXPECT_EQ(seen.load(), sampler.samples());
  sampler.Stop();  // idempotent
}

TEST(ScrapeSamplerTest, ObservesConcurrentRecording) {
  MetricsRegistry registry;
  MetricSlot* slot = registry.AddSlot("w");
  std::atomic<uint64_t> last_seen{0};
  ScrapeSampler sampler(
      &registry, std::chrono::milliseconds(1),
      [&](const MetricsSnapshot& snap) {
        last_seen.store(snap.merged.counters[static_cast<int>(
                            Counter::kPoolTasksExecuted)],
                        std::memory_order_relaxed);
      });
  ASSERT_TRUE(sampler.Start().ok());
  for (int i = 0; i < 1000; ++i) slot->Inc(Counter::kPoolTasksExecuted);
  sampler.Stop();
  if constexpr (kEnabled) {
    // The final flush sample runs after Stop is requested, so it sees
    // everything recorded before Stop() was called.
    EXPECT_EQ(last_seen.load(), 1000u);
  }
}

TEST(MonotonicClockTest, NeverGoesBackwards) {
  int64_t prev = MonotonicNowNs();
  for (int i = 0; i < 1000; ++i) {
    int64_t now = MonotonicNowNs();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace itrim::obs
