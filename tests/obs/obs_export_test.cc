// Exporter contracts: Prometheus text exposition shape (the format
// tools/promlint.py lints in CI), BENCH-style metrics JSON, trace JSON and
// the text-file writer.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace itrim::obs {
namespace {

MetricsSnapshot SampleSnapshot() {
  MetricsRegistry registry;
  MetricSlot* a = registry.AddSlot("shard0");
  MetricSlot* b = registry.AddSlot("shard1");
  a->Inc(Counter::kIngestEventsAccepted, 5);
  b->Inc(Counter::kIngestEventsAccepted, 2);
  a->Set(Gauge::kIngestQueueDepth, 3.0);
  a->Observe(Histogram::kIngestPopBatchSize, 1.0);
  a->Observe(Histogram::kIngestPopBatchSize, 100.0);
  registry.SetInfo("kernel", "generic");
  registry.SetInfo("board", "flat");
  return registry.Scrape();
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(PrometheusTextTest, EmitsWellFormedFamilies) {
  std::string text = PrometheusText(SampleSnapshot());

  // Counter family: HELP/TYPE headers, `_total` suffix, slot labels.
  EXPECT_TRUE(Contains(text, "# HELP itrim_ingest_events_accepted_total"));
  EXPECT_TRUE(
      Contains(text, "# TYPE itrim_ingest_events_accepted_total counter"));
  if constexpr (kEnabled) {
    EXPECT_TRUE(Contains(
        text, "itrim_ingest_events_accepted_total{slot=\"shard0\"} 5"));
    EXPECT_TRUE(Contains(
        text, "itrim_ingest_events_accepted_total{slot=\"shard1\"} 2"));
  }

  // Gauge family.
  EXPECT_TRUE(Contains(text, "# TYPE itrim_ingest_queue_depth gauge"));

  // Histogram family: cumulative buckets ending at +Inf, _sum and _count.
  EXPECT_TRUE(Contains(text, "# TYPE itrim_ingest_pop_batch_size histogram"));
  EXPECT_TRUE(Contains(text, "le=\"+Inf\""));
  EXPECT_TRUE(Contains(text, "itrim_ingest_pop_batch_size_sum"));
  EXPECT_TRUE(Contains(text, "itrim_ingest_pop_batch_size_count"));

  // Build identity.
  EXPECT_TRUE(Contains(text, "# TYPE itrim_build_info gauge"));
  EXPECT_TRUE(Contains(text, "kernel=\"generic\""));
  EXPECT_TRUE(Contains(text, "board=\"flat\""));

  // Exposition format basics: every non-comment line is `name{labels} value`
  // or `name value`, and the text ends with a newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_TRUE(line.rfind("itrim_", 0) == 0) << line;
  }
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulative) {
  if constexpr (!kEnabled) GTEST_SKIP() << "storage compiled out";
  std::string text = PrometheusText(SampleSnapshot());
  // Two observations on shard0 (1.0 and 100.0): the +Inf bucket of the
  // shard0 sample must read 2 (cumulative), not 1.
  const std::string needle =
      "itrim_ingest_pop_batch_size_bucket{slot=\"shard0\",le=\"+Inf\"} 2";
  EXPECT_TRUE(Contains(text, needle)) << text;
}

TEST(MetricsJsonTest, EmitsMergedAndPerSlotCases) {
  std::string json = MetricsJson(SampleSnapshot());
  EXPECT_TRUE(Contains(json, "\"schema_version\": 1"));
  EXPECT_TRUE(Contains(json, "\"kind\": \"obs_scrape\""));
  EXPECT_TRUE(Contains(json, "\"name\": \"merged\""));
  EXPECT_TRUE(Contains(json, "\"name\": \"slot/shard0\""));
  EXPECT_TRUE(Contains(json, "\"name\": \"slot/shard1\""));
  EXPECT_TRUE(Contains(json, "\"histograms\""));
  EXPECT_TRUE(Contains(json, "\"bounds\""));
  EXPECT_TRUE(Contains(json, "\"counts\""));
  EXPECT_TRUE(Contains(json, "\"kernel\": \"generic\""));
  if constexpr (kEnabled) {
    EXPECT_TRUE(Contains(json, "\"ingest_events_accepted\": 7"));
  }
}

TEST(TracesJsonTest, EmitsEventsWithKindNames) {
  std::vector<TraceEvent> events;
  TraceEvent ev;
  ev.seq = 4;
  ev.ts_ns = 123456789;
  ev.kind = TraceKind::kTrimDecision;
  ev.tenant = 9;
  ev.value = 17.0;
  events.push_back(ev);

  std::string json = TracesJson(events, /*dropped=*/3);
  EXPECT_TRUE(Contains(json, "\"kind\": \"obs_trace\""));
  EXPECT_TRUE(Contains(json, "\"dropped\": 3"));
  EXPECT_TRUE(Contains(json, "\"trim_decision\""));
  EXPECT_TRUE(Contains(json, "\"tenant\": 9"));
  EXPECT_TRUE(Contains(json, "\"ts_ns\": 123456789"));
}

TEST(WriteTextFileTest, RoundTripsAndReportsErrors) {
  const std::string path =
      ::testing::TempDir() + "/obs_export_test_scratch.prom";
  ASSERT_TRUE(WriteTextFile(path, "itrim_up 1\n").ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "itrim_up 1\n");
  std::remove(path.c_str());

  EXPECT_EQ(WriteTextFile("/nonexistent-dir-xyz/file.prom", "x").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace itrim::obs
