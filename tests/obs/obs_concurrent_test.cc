// Concurrency contract of the observability layer against a live ingest
// service: producer threads submit while a scraper thread loops Scrape()
// and TraceSnapshot() — the shape the TSan CI leg exercises — and after the
// dust settles the merged counters must equal the ground truth computed
// from what was actually submitted, and the per-tenant records must be
// bit-identical to a solo replay without any observability attached.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "fleet/session_fleet.h"
#include "fleet/tenant.h"
#include "ingest/ingest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

std::vector<TenantSpec> ScalarSpecs(const std::vector<double>* pool,
                                    size_t count, int round_size) {
  std::vector<TenantSpec> specs;
  specs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TenantSpec spec;
    spec.name = "tenant-" + std::to_string(i);
    spec.model = TenantModelKind::kScalar;
    spec.scalar_pool = pool;
    spec.game.round_size = round_size;
    spec.game.bootstrap_size = 60;
    spec.game.attack_ratio = 0.1;
    spec.game.board_capacity = 1500;
    specs.push_back(spec);
  }
  return specs;
}

TEST(ObsConcurrentTest, ScraperRacesIngestAndTotalsMatchGroundTruth) {
  const std::vector<double> pool = UniformPool(3000, 77);
  constexpr size_t kTenants = 6;
  constexpr int kRoundSize = 20;
  constexpr int kEventsPerTenant = 40;  // 2 reports each -> 4 rounds/tenant

  FleetConfig fleet_config;
  fleet_config.seed = 99;
  SessionFleet fleet(fleet_config, ScalarSpecs(&pool, kTenants, kRoundSize));
  ASSERT_TRUE(fleet.Bootstrap().ok());

  IngestConfig config;
  config.shards = 2;
  config.trace_capacity = 4096;
  config.observe_rounds = true;
  IngestService service(config, &fleet);
  ASSERT_TRUE(service.Start().ok());

  // Scraper: hammers the full read surface while workers play rounds.
  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop_scraper.load(std::memory_order_relaxed)) {
      obs::MetricsSnapshot snap = service.Scrape();
      (void)obs::PrometheusText(snap);
      (void)service.TraceSnapshot();
      (void)service.Stats();
      ++scrapes;
    }
  });

  // Two producers split the tenants between them.
  auto produce = [&](size_t first_tenant) {
    for (int e = 0; e < kEventsPerTenant; ++e) {
      for (size_t t = first_tenant; t < kTenants; t += 2) {
        ASSERT_TRUE(service.Submit({t, 2}).ok());
      }
    }
  };
  std::thread p0(produce, 0), p1(produce, 1);
  p0.join();
  p1.join();
  ASSERT_TRUE(service.Flush().ok());
  stop_scraper.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GE(scrapes.load(), 1u);
  ASSERT_TRUE(service.Stop().ok());

  // Ground truth from the submitted arithmetic.
  constexpr uint64_t kEvents = kTenants * kEventsPerTenant;
  constexpr uint64_t kReports = kEvents * 2;
  constexpr uint64_t kRounds =
      kTenants * (kEventsPerTenant * 2 / kRoundSize);

  IngestStats stats = service.Stats();
  obs::MetricsSnapshot snap = service.Scrape();
  const auto counter = [&](obs::Counter c) {
    return snap.merged.counters[static_cast<int>(c)];
  };
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(stats.events_accepted, kEvents);
    EXPECT_EQ(stats.reports_enqueued, kReports);
    EXPECT_EQ(stats.rounds_played, kRounds);
    EXPECT_EQ(counter(obs::Counter::kIngestEventsAccepted), kEvents);
    EXPECT_EQ(counter(obs::Counter::kIngestReportsEnqueued), kReports);
    EXPECT_EQ(counter(obs::Counter::kIngestRoundsPlayed), kRounds);
    // Session instrumentation agrees with the ingest view.
    EXPECT_EQ(counter(obs::Counter::kSessionRoundsPlayed), kRounds);
    EXPECT_EQ(counter(obs::Counter::kSessionBenignReceived) +
                  counter(obs::Counter::kSessionPoisonReceived),
              counter(obs::Counter::kSessionBenignKept) +
                  counter(obs::Counter::kSessionPoisonKept) +
                  counter(obs::Counter::kSessionObservationsTrimmed));
    // Queue depth gauge reads zero after Flush+Stop.
    EXPECT_EQ(snap.merged.gauges[static_cast<int>(
                  obs::Gauge::kIngestQueueDepth)],
              0.0);
    // Every played round left a start/end trace pair.
    std::vector<obs::TraceEvent> traces = service.TraceSnapshot();
    uint64_t starts = 0;
    uint64_t ends = 0;
    int64_t prev_ts = 0;
    for (const obs::TraceEvent& ev : traces) {
      EXPECT_GE(ev.ts_ns, prev_ts);  // merged snapshot is time-sorted
      prev_ts = ev.ts_ns;
      if (ev.kind == obs::TraceKind::kRoundStart) ++starts;
      if (ev.kind == obs::TraceKind::kRoundEnd) ++ends;
    }
    EXPECT_EQ(service.TraceDropped(), 0u);
    EXPECT_EQ(starts, kRounds);
    EXPECT_EQ(ends, kRounds);
  }

  // Bit-identity: the instrumented, scraped, traced run produced exactly
  // the records of a bare solo replay (observability is write-only).
  SessionFleet replay(fleet_config, ScalarSpecs(&pool, kTenants, kRoundSize));
  ASSERT_TRUE(replay.Bootstrap().ok());
  ASSERT_TRUE(replay.BeginPerTenantStepping().ok());
  for (size_t t = 0; t < kTenants; ++t) {
    const uint64_t rounds = kEventsPerTenant * 2 / kRoundSize;
    for (uint64_t r = 0; r < rounds; ++r) {
      ASSERT_TRUE(replay.StepTenant(t).ok());
    }
  }
  for (size_t t = 0; t < kTenants; ++t) {
    std::vector<RoundRecord> ingested = fleet.TenantRounds(t).ValueOrDie();
    std::vector<RoundRecord> solo = replay.TenantRounds(t).ValueOrDie();
    ASSERT_EQ(ingested.size(), solo.size()) << "tenant " << t;
    for (size_t r = 0; r < solo.size(); ++r) {
      EXPECT_TRUE(BitEqual(ingested[r].cutoff, solo[r].cutoff));
      EXPECT_TRUE(BitEqual(ingested[r].quality, solo[r].quality));
      EXPECT_EQ(ingested[r].benign_kept, solo[r].benign_kept);
      EXPECT_EQ(ingested[r].poison_kept, solo[r].poison_kept);
    }
  }
}

TEST(ObsConcurrentTest, HibernationChurnKeepsSinksAndCounters) {
  const std::vector<double> pool = UniformPool(3000, 78);
  constexpr size_t kTenants = 5;
  constexpr int kRoundSize = 20;

  FleetConfig fleet_config;
  SessionFleet fleet(fleet_config, ScalarSpecs(&pool, kTenants, kRoundSize));
  ASSERT_TRUE(fleet.Bootstrap().ok());

  IngestConfig config;
  config.shards = 1;
  config.max_resident_per_shard = 2;
  config.trace_capacity = 1024;
  config.observe_rounds = true;
  IngestService service(config, &fleet);
  ASSERT_TRUE(service.Start().ok());

  // Round-robin traffic forces eviction churn with a resident cap of 2.
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t t = 0; t < kTenants; ++t) {
      ASSERT_TRUE(service.Submit({t, kRoundSize}).ok());
      ASSERT_TRUE(service.Flush().ok());
    }
  }
  ASSERT_TRUE(service.Stop().ok());

  if constexpr (obs::kEnabled) {
    IngestStats stats = service.Stats();
    EXPECT_GT(stats.hibernations, 0u);
    EXPECT_GT(stats.rehydrations, 0u);
    EXPECT_GE(stats.hibernations, stats.rehydrations);
    EXPECT_LE(stats.resident_tenants, 2u);
    // Sinks survive hibernation: every round of every tenant was counted,
    // including rounds played by rehydrated sessions.
    obs::MetricsSnapshot snap = service.Scrape();
    EXPECT_EQ(snap.merged.counters[static_cast<int>(
                  obs::Counter::kSessionRoundsPlayed)],
              static_cast<uint64_t>(3 * kTenants));
    // Hibernate/rehydrate transitions were traced.
    uint64_t hib = 0;
    uint64_t rehyd = 0;
    for (const obs::TraceEvent& ev : service.TraceSnapshot()) {
      if (ev.kind == obs::TraceKind::kHibernate) ++hib;
      if (ev.kind == obs::TraceKind::kRehydrate) ++rehyd;
    }
    EXPECT_EQ(hib, stats.hibernations);
    EXPECT_EQ(rehyd, stats.rehydrations);
  }
}

TEST(ObsConcurrentTest, RegistryInjectionSharesOneScrapeSurface) {
  const std::vector<double> pool = UniformPool(2000, 79);
  FleetConfig fleet_config;
  SessionFleet fleet(fleet_config, ScalarSpecs(&pool, 2, 20));
  ASSERT_TRUE(fleet.Bootstrap().ok());

  obs::MetricsRegistry registry;
  obs::MetricSlot* fleet_slot = registry.AddSlot("fleet");
  fleet.AttachObservability(fleet_slot);

  IngestConfig config;
  config.shards = 1;
  config.metrics = &registry;
  IngestService service(config, &fleet);
  EXPECT_EQ(service.metrics_registry(), &registry);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Submit({0, 20}).ok());
  ASSERT_TRUE(service.Flush().ok());
  ASSERT_TRUE(service.Stop().ok());

  obs::MetricsSnapshot snap = service.Scrape();
  // fleet + ingest + shard0 slots all live in the injected registry.
  ASSERT_EQ(snap.slots.size(), 3u);
  EXPECT_EQ(snap.slots[0].label, "fleet");
  EXPECT_EQ(snap.slots[1].label, "ingest");
  EXPECT_EQ(snap.slots[2].label, "shard0");
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(snap.merged.counters[static_cast<int>(
                  obs::Counter::kIngestRoundsPlayed)],
              1u);
    bool saw_kernel = false;
    for (const auto& [key, value] : snap.info) {
      if (key == "kernel") saw_kernel = true;
    }
    EXPECT_TRUE(saw_kernel);
  }
}

}  // namespace
}  // namespace itrim
