// Regression tests for the shared bench flag parsing (src/bench/flags.h),
// especially the --jobs / ITRIM_THREADS / hardware precedence that used to
// be copy-pasted (and drifting) across the bench mains.
#include "bench/flags.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/env.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace itrim::bench {
namespace {

// Builds a mutable argv from string literals (ParseFlags takes char**).
class ArgvFixture {
 public:
  explicit ArgvFixture(std::vector<std::string> args)
      : storage_(std::move(args)) {
    for (std::string& arg : storage_) pointers_.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

// Scoped environment override restoring the previous value on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(BenchFlagsTest, DefaultsAreEmpty) {
  ArgvFixture args({"bench"});
  BenchFlags flags = ParseFlags(args.argc(), args.argv());
  EXPECT_FALSE(flags.smoke);
  EXPECT_EQ(flags.jobs, 0);
  ASSERT_EQ(flags.argv.size(), 1u);
  EXPECT_EQ(flags.argv[0], "bench");
}

TEST(BenchFlagsTest, ParsesBothJobsSpellingsAndSmoke) {
  {
    ArgvFixture args({"bench", "--jobs=3", "--smoke"});
    BenchFlags flags = ParseFlags(args.argc(), args.argv());
    EXPECT_TRUE(flags.smoke);
    EXPECT_EQ(flags.jobs, 3);
  }
  {
    ArgvFixture args({"bench", "--jobs", "5"});
    BenchFlags flags = ParseFlags(args.argc(), args.argv());
    EXPECT_FALSE(flags.smoke);
    EXPECT_EQ(flags.jobs, 5);
  }
}

TEST(BenchFlagsTest, IgnoresUnknownAndMalformedArguments) {
  ArgvFixture args({"bench", "--jobs=-2", "--jobs", "zero", "--other=1"});
  BenchFlags flags = ParseFlags(args.argc(), args.argv());
  EXPECT_EQ(flags.jobs, 0);
  EXPECT_FALSE(flags.smoke);
}

TEST(BenchFlagsTest, FlagBeatsEnvironment) {
  ScopedEnv env("ITRIM_THREADS", "7");
  ArgvFixture args({"bench", "--jobs", "2"});
  BenchFlags flags = ParseFlags(args.argc(), args.argv());
  EXPECT_EQ(EffectiveJobs(flags), 2);
}

TEST(BenchFlagsTest, EnvironmentBeatsHardwareWhenFlagAbsent) {
  ScopedEnv env("ITRIM_THREADS", "7");
  ArgvFixture args({"bench"});
  BenchFlags flags = ParseFlags(args.argc(), args.argv());
  EXPECT_EQ(EffectiveJobs(flags), 7);
}

TEST(BenchFlagsTest, HardwareIsTheLastResort) {
  ScopedEnv env("ITRIM_THREADS", nullptr);
  ArgvFixture args({"bench"});
  BenchFlags flags = ParseFlags(args.argc(), args.argv());
  EXPECT_EQ(EffectiveJobs(flags), DefaultNumThreads());
  EXPECT_GE(EffectiveJobs(flags), 1);
}

TEST(BenchEnvTest, EnvIntAndScaleParseWithFallbacks) {
  {
    ScopedEnv env("ITRIM_TEST_KNOB", "41");
    EXPECT_EQ(EnvInt("ITRIM_TEST_KNOB", 7), 41);
  }
  {
    ScopedEnv env("ITRIM_TEST_KNOB", nullptr);
    EXPECT_EQ(EnvInt("ITRIM_TEST_KNOB", 7), 7);
  }
  {
    ScopedEnv env("ITRIM_TEST_KNOB", "0.25");
    EXPECT_DOUBLE_EQ(EnvScale("ITRIM_TEST_KNOB", 1.0), 0.25);
  }
  {
    // Out-of-range scales fall back rather than distorting a bench grid.
    ScopedEnv env("ITRIM_TEST_KNOB", "3.5");
    EXPECT_DOUBLE_EQ(EnvScale("ITRIM_TEST_KNOB", 1.0), 1.0);
  }
}

}  // namespace
}  // namespace itrim::bench
