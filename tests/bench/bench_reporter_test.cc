// Tests of the BENCH_<name>.json reporter (src/bench/reporter.h): case
// bookkeeping, derived rates, escaping, the output-directory knob, and the
// measurement loop discipline it feeds from.
#include "bench/reporter.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/measure.h"
#include "gtest/gtest.h"

namespace itrim::bench {
namespace {

BenchFlags FlagsFor(std::vector<std::string> argv_strings) {
  BenchFlags flags;
  flags.argv = std::move(argv_strings);
  return flags;
}

TEST(BenchReporterTest, JsonCarriesSchemaContextAndCases) {
  BenchFlags flags = FlagsFor({"bench_x", "--smoke"});
  flags.smoke = true;
  flags.jobs = 2;
  BenchReporter reporter("x", flags);
  reporter.AddCase("alpha")
      .Iterations(4)
      .Ops(4000)
      .WallMs(20.0)
      .Allocations(0)
      .Counter("tenants", 1000);
  reporter.AddCase("gate_only").Ok();

  std::string json = reporter.ToJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"x\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  // 4000 ops over 20 ms: 5000 ns/op, 200000 ops/s.
  EXPECT_NE(json.find("\"ns_per_op\": 5000"), std::string::npos);
  EXPECT_NE(json.find("\"ops_per_sec\": 200000"), std::string::npos);
  EXPECT_NE(json.find("\"allocations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"allocs_per_op\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"tenants\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"pass\": 1"), std::string::npos);
}

TEST(BenchReporterTest, EscapesStringsAndOmitsRatesWithoutTiming) {
  BenchReporter reporter("esc", FlagsFor({"a\"b\\c"}));
  reporter.AddCase("quote\"case").Ok();
  std::string json = reporter.ToJson();
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"case"), std::string::npos);
  // A correctness-only case has no timing: no derived rate keys at all.
  EXPECT_EQ(json.find("ns_per_op"), std::string::npos);
  EXPECT_EQ(json.find("ops_per_sec"), std::string::npos);
}

TEST(BenchReporterTest, WritesToOutDirOverride) {
  std::string dir = ::testing::TempDir();
  setenv("ITRIM_BENCH_OUT_DIR", dir.c_str(), 1);
  BenchReporter reporter("outdir_probe", FlagsFor({"bench"}));
  reporter.AddCase("only").Ok();
  Status status = reporter.WriteJson();
  ASSERT_TRUE(status.ok()) << status.ToString();

  std::string expected_prefix = dir;
  if (!expected_prefix.empty() && expected_prefix.back() != '/') {
    expected_prefix += '/';
  }
  // output_path() re-reads the env on every call, so check before unset.
  EXPECT_EQ(reporter.output_path(),
            expected_prefix + "BENCH_outdir_probe.json");
  unsetenv("ITRIM_BENCH_OUT_DIR");
  std::ifstream in(expected_prefix + "BENCH_outdir_probe.json");
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"bench\": \"outdir_probe\""),
            std::string::npos);
  std::remove((expected_prefix + "BENCH_outdir_probe.json").c_str());
}

TEST(BenchMeasureTest, MeasureLoopHonorsFloorsAndCountsIterations) {
  MeasureOptions options;
  options.warmup_iters = 1;
  options.min_iters = 5;
  options.min_time_ms = 0.0;
  options.repetitions = 2;
  int calls = 0;
  Measurement m = MeasureLoop(options, [&] { ++calls; });
  EXPECT_GE(m.iterations, 5u);
  // warmup + two repetitions of >= 5.
  EXPECT_GE(calls, 11);
  EXPECT_GE(m.wall_ms, 0.0);
}

TEST(BenchMeasureTest, MeasureLoopCountsAllocations) {
  MeasureOptions options;
  options.warmup_iters = 0;
  options.min_iters = 3;
  options.min_time_ms = 0.0;
  Measurement with_allocs = MeasureLoop(options, [] {
    std::vector<double> v(256, 1.0);
    (void)v;
  });
  EXPECT_GE(with_allocs.allocs.allocations, 3u);

  Measurement without_allocs = MeasureLoop(options, [] {
    volatile double x = 1.0;
    (void)x;
  });
  EXPECT_EQ(without_allocs.allocs.allocations, 0u);
}

TEST(BenchReporterTest, MeasureCaseRecordsDerivedOps) {
  BenchReporter reporter("measured", FlagsFor({"bench"}));
  MeasureOptions options;
  options.warmup_iters = 0;
  options.min_iters = 2;
  options.min_time_ms = 0.0;
  BenchCase& c = reporter.MeasureCase("case", options, 100, [] {});
  EXPECT_GE(c.iterations, 2u);
  EXPECT_EQ(c.ops, c.iterations * 100);
  EXPECT_TRUE(c.has_allocations);
}

}  // namespace
}  // namespace itrim::bench
