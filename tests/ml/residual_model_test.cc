// ResidualScoreModel in the interactive game: batch-vs-scalar scoring
// bit-identity across kernel variants, full sessions under both trim
// references, checkpoint/restore bit-identity at every split point, board
// backend independence, and fleet thread-count determinism.
#include "ml/residual_score_model.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fleet/session_fleet.h"
#include "fleet/tenant.h"
#include "game/kernels.h"
#include "game/public_board.h"
#include "game/reference_policy.h"
#include "game/session.h"
#include "game/strategies.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

using kernels::Variant;

struct VariantGuard {
  ~VariantGuard() { kernels::ResetVariant(); }
};

GameConfig ResidualConfig(uint64_t seed, BoardBackend backend) {
  GameConfig config;
  config.rounds = 10;
  config.round_size = 60;
  config.attack_ratio = 0.2;
  config.bootstrap_size = 120;
  config.board_capacity = 512;
  config.board_backend = backend;
  config.seed = seed;
  return config;
}

TEST(ResidualScoreModelTest, BatchScoringEqualsScalarAcrossSizesAndVariants) {
  RegressionData source = MakeSyntheticRegression(300, 4, 0.1, 21);
  ResidualScoreModel model(&source);
  Rng rng(5);
  PublicBoard board;
  ASSERT_TRUE(model.BeginRun().ok());
  ASSERT_TRUE(model.Bootstrap(100, &rng, &board).ok());
  const size_t width = model.ObsWidth();
  ASSERT_EQ(width, source.dims + 1);

  Rng obs_rng(9);
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 16u, 33u, 100u}) {
    std::vector<double> obs(n * width);
    for (double& v : obs) v = obs_rng.Uniform(-2.0, 2.0);
    std::vector<double> scalar(n);
    ASSERT_TRUE(model.ScoreIntoScalar(obs, scalar).ok());
    for (Variant variant : {Variant::kGeneric, Variant::kVector}) {
      VariantGuard guard;
      kernels::ForceVariant(variant);
      std::vector<double> batch(n, -1.0);
      ASSERT_TRUE(model.ScoreInto(obs, batch).ok());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(BitEqual(batch[i], scalar[i]))
            << "n=" << n << " i=" << i << " variant="
            << kernels::VariantName(variant);
      }
    }
  }
}

TEST(ResidualScoreModelTest, RejectsDegenerateSources) {
  RegressionData empty;
  empty.dims = 2;
  ResidualScoreModel no_rows(&empty);
  EXPECT_EQ(no_rows.BeginRun().code(), StatusCode::kFailedPrecondition);

  RegressionData no_dims;
  no_dims.ys = {1.0, 2.0};
  ResidualScoreModel zero_dims(&no_dims);
  EXPECT_EQ(zero_dims.BeginRun().code(), StatusCode::kFailedPrecondition);
}

// A full session under each (adversary, reference) pairing runs to
// completion and trims: the model integrates with the round protocol.
TEST(ResidualScoreModelTest, SessionRunsUnderBothReferences) {
  RegressionData source = MakeSyntheticRegression(500, 3, 0.1, 33);
  for (bool fitted : {false, true}) {
    SCOPED_TRACE(fitted ? "fitted_model" : "percentile");
    ResidualScoreModel model(&source);
    ElasticCollector collector(0.5);
    FlipShiftAdversary adversary;
    FittedModelReference reference;
    TrimmingSession session(ResidualConfig(71, BoardBackend::kFlat), &model,
                            &collector, &adversary, nullptr,
                            fitted ? &reference : nullptr);
    ASSERT_TRUE(session.Bootstrap().ok());
    auto summary = session.RunToCompletion();
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    size_t received = 0, kept = 0;
    for (const RoundRecord& r : summary.ValueOrDie().rounds) {
      received += r.benign_received + r.poison_received;
      kept += r.benign_kept + r.poison_kept;
    }
    EXPECT_GT(received, 0u);
    EXPECT_LT(kept, received);  // something was trimmed
    EXPECT_GT(kept, 0u);
  }
}

// Checkpoint/restore bit-identity at EVERY split point, for both trim
// references and both poison shapes.
TEST(ResidualScoreModelTest, CheckpointRestoreBitIdenticalAtEverySplit) {
  RegressionData source = MakeSyntheticRegression(400, 2, 0.1, 47);
  const int kRounds = 8;
  for (PoisonShape shape : {PoisonShape::kFlipShift, PoisonShape::kLeverage}) {
    for (bool fitted : {false, true}) {
      SCOPED_TRACE(std::string(PoisonShapeName(shape)) + "/" +
                   (fitted ? "fitted_model" : "percentile"));
      GameConfig config = ResidualConfig(83, BoardBackend::kFlat);
      config.rounds = kRounds;

      auto run_rounds = [&](TrimmingSession* session, int n) {
        for (int i = 0; i < n; ++i) ASSERT_TRUE(session->Step().ok());
      };

      ResidualScoreModel m_ref(&source, shape);
      ElasticCollector c_ref(0.5);
      OptimalRegressionAdversary a_ref;
      FittedModelReference r_ref;
      TrimmingSession reference(config, &m_ref, &c_ref, &a_ref, nullptr,
                                fitted ? &r_ref : nullptr);
      ASSERT_TRUE(reference.Bootstrap().ok());
      run_rounds(&reference, kRounds);
      GameSummary expected = reference.Finish();

      for (int split = 0; split <= kRounds; ++split) {
        SCOPED_TRACE("split after round " + std::to_string(split));
        ResidualScoreModel m_first(&source, shape);
        ElasticCollector c_first(0.5);
        OptimalRegressionAdversary a_first;
        FittedModelReference r_first;
        TrimmingSession first(config, &m_first, &c_first, &a_first, nullptr,
                              fitted ? &r_first : nullptr);
        ASSERT_TRUE(first.Bootstrap().ok());
        run_rounds(&first, split);
        SessionCheckpoint checkpoint = first.Checkpoint();

        ResidualScoreModel m_resumed(&source, shape);
        ElasticCollector c_resumed(0.5);
        OptimalRegressionAdversary a_resumed;
        FittedModelReference r_resumed;
        TrimmingSession resumed(config, &m_resumed, &c_resumed, &a_resumed,
                                nullptr, fitted ? &r_resumed : nullptr);
        ASSERT_TRUE(resumed.Restore(checkpoint).ok());
        run_rounds(&resumed, kRounds - split);
        ExpectSummaryBitIdentical(expected, resumed.Finish());
      }
    }
  }
}

// The board backend is an implementation detail: flat and treap boards
// produce the same game stream bit for bit.
TEST(ResidualScoreModelTest, BoardBackendsProduceIdenticalStreams) {
  RegressionData source = MakeSyntheticRegression(400, 3, 0.1, 59);
  GameSummary summaries[2];
  const BoardBackend backends[] = {BoardBackend::kFlat, BoardBackend::kTreap};
  for (int b = 0; b < 2; ++b) {
    ResidualScoreModel model(&source);
    ElasticCollector collector(0.5);
    FlipShiftAdversary adversary;
    FittedModelReference reference;
    TrimmingSession session(ResidualConfig(91, backends[b]), &model,
                            &collector, &adversary, nullptr, &reference);
    ASSERT_TRUE(session.Bootstrap().ok());
    ASSERT_TRUE(session.RunToCompletion().ok());
    summaries[b] = session.Finish();
  }
  ExpectSummaryBitIdentical(summaries[0], summaries[1]);
}

// Residual tenants in a fleet: 1-thread and N-thread lockstep runs are bit
// identical, with both reference kinds mixed across the tenant population.
TEST(ResidualScoreModelTest, FleetThreadCountInvariantForResidualTenants) {
  RegressionData source = MakeSyntheticRegression(400, 2, 0.1, 67);
  std::vector<TenantSpec> specs;
  for (size_t i = 0; i < 8; ++i) {
    TenantSpec spec;
    spec.name = "residual-" + std::to_string(i);
    spec.model = TenantModelKind::kResidual;
    spec.regression = &source;
    spec.regression_poison =
        (i % 2 == 0) ? PoisonShape::kFlipShift : PoisonShape::kLeverage;
    spec.reference = (i % 3 == 0) ? TenantReferenceKind::kFittedModel
                                  : TenantReferenceKind::kPercentile;
    spec.scheme = SchemeId::kElastic05;
    spec.game = ResidualConfig(0, BoardBackend::kFlat);
    specs.push_back(spec);
  }

  std::vector<std::vector<RoundRecord>> per_thread_records[2];
  const int thread_counts[] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    FleetConfig config;
    config.rounds = 6;
    config.threads = thread_counts[t];
    config.seed = 4242;
    SessionFleet fleet(config, specs);
    ASSERT_TRUE(fleet.Bootstrap().ok());
    for (int r = 0; r < 6; ++r) ASSERT_TRUE(fleet.StepRound().ok());
    for (size_t i = 0; i < specs.size(); ++i) {
      per_thread_records[t].push_back(fleet.TenantRounds(i).ValueOrDie());
    }
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    GameSummary a, b;
    a.rounds = per_thread_records[0][i];
    b.rounds = per_thread_records[1][i];
    ExpectSummaryBitIdentical(a, b);
  }
}

// Spec validation: the fitted-model reference is rejected outside the
// residual kind, and with bad options — with the tenant named in the error.
TEST(ResidualScoreModelTest, TenantSpecValidatesReferenceOptions) {
  RegressionData source = MakeSyntheticRegression(100, 2, 0.1, 11);
  std::vector<double> pool = UniformPool(100, 3);

  TenantSpec scalar_spec;
  scalar_spec.model = TenantModelKind::kScalar;
  scalar_spec.scalar_pool = &pool;
  scalar_spec.reference = TenantReferenceKind::kFittedModel;
  EXPECT_EQ(scalar_spec.Validate().code(), StatusCode::kInvalidArgument);

  TenantSpec residual_spec;
  residual_spec.name = "tenant-under-test";
  residual_spec.model = TenantModelKind::kResidual;
  residual_spec.regression = &source;
  residual_spec.reference = TenantReferenceKind::kFittedModel;
  EXPECT_TRUE(residual_spec.Validate().ok());
  residual_spec.fitted_reference.max_refits = 0;
  EXPECT_EQ(residual_spec.Validate().code(), StatusCode::kInvalidArgument);
  residual_spec.fitted_reference.max_refits = 20;
  residual_spec.fitted_reference.tol = -1.0;
  EXPECT_EQ(residual_spec.Validate().code(), StatusCode::kInvalidArgument);

  // A fleet surfaces the failure with the tenant index and name attached.
  residual_spec.fitted_reference.tol = 1e-4;
  residual_spec.regression = nullptr;
  FleetConfig config;
  config.threads = 1;
  SessionFleet fleet(config, {residual_spec});
  Status status = fleet.Bootstrap();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("tenant-under-test"), std::string::npos)
      << status.ToString();
}

// Residual tenants hibernate and rehydrate bit-identically at every round
// boundary, under both trim references.
TEST(ResidualScoreModelTest, HibernationBitIdenticalAtEverySplit) {
  RegressionData source = MakeSyntheticRegression(300, 2, 0.1, 71);
  const int kRounds = 6;
  for (TenantReferenceKind reference : {TenantReferenceKind::kPercentile,
                                        TenantReferenceKind::kFittedModel}) {
    SCOPED_TRACE(reference == TenantReferenceKind::kFittedModel
                     ? "fitted_model"
                     : "percentile");
    TenantSpec spec;
    spec.model = TenantModelKind::kResidual;
    spec.regression = &source;
    spec.reference = reference;
    spec.scheme = SchemeId::kElastic05;
    spec.game = ResidualConfig(0, BoardBackend::kFlat);

    auto make_fleet = [&]() {
      FleetConfig config;
      config.threads = 1;
      config.seed = 515;
      SessionFleet fleet(config, {spec});
      EXPECT_TRUE(fleet.Bootstrap().ok());
      EXPECT_TRUE(fleet.BeginPerTenantStepping().ok());
      return fleet;
    };

    SessionFleet reference_fleet = make_fleet();
    for (int r = 0; r < kRounds; ++r) {
      ASSERT_TRUE(reference_fleet.StepTenant(0).ok());
    }
    std::vector<RoundRecord> expected =
        reference_fleet.TenantRounds(0).ValueOrDie();

    for (int split = 0; split <= kRounds; ++split) {
      SCOPED_TRACE("split after round " + std::to_string(split));
      SessionFleet fleet = make_fleet();
      for (int r = 0; r < split; ++r) ASSERT_TRUE(fleet.StepTenant(0).ok());
      ASSERT_TRUE(fleet.HibernateTenant(0).ok());
      ASSERT_TRUE(fleet.RehydrateTenant(0).ok());
      for (int r = split; r < kRounds; ++r) {
        ASSERT_TRUE(fleet.StepTenant(0).ok());
      }
      GameSummary a, b;
      a.rounds = expected;
      b.rounds = fleet.TenantRounds(0).ValueOrDie();
      ExpectSummaryBitIdentical(a, b);
    }
  }
}

}  // namespace
}  // namespace itrim
