// Linear-regression substrate: closed-form exactness, SGD determinism,
// the flip-and-shift attack shape, and the golden 1-D refit-loop oracle of
// the Trim defense.
#include "ml/linreg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"

namespace itrim {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(LinearRegressorTest, ClosedFormRecoversNoiselessModel) {
  for (size_t dims : {1u, 2u, 3u, 5u}) {
    LinearModel truth;
    RegressionData data =
        MakeSyntheticRegression(200, dims, /*noise=*/0.0, 77 + dims, &truth);
    LinearRegressor regressor;
    LinearModel fit;
    ASSERT_TRUE(regressor.FitClosedForm(data.xs, data.ys, dims, &fit).ok());
    ASSERT_EQ(fit.weights.size(), dims);
    for (size_t j = 0; j < dims; ++j) {
      EXPECT_NEAR(fit.weights[j], truth.weights[j], 1e-9) << "dims=" << dims;
    }
    EXPECT_NEAR(fit.bias, truth.bias, 1e-9) << "dims=" << dims;
  }
}

TEST(LinearRegressorTest, ClosedFormMatchesHandComputed1D) {
  // y = 2x + 1 exactly: the normal equations must return (2, 1).
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0, 9.0};
  LinearRegressor regressor;
  LinearModel fit;
  ASSERT_TRUE(regressor.FitClosedForm(xs, ys, 1, &fit).ok());
  EXPECT_NEAR(fit.weights[0], 2.0, 1e-12);
  EXPECT_NEAR(fit.bias, 1.0, 1e-12);
  EXPECT_NEAR(fit.Predict(std::span<const double>(&xs[3], 1)), 7.0, 1e-10);
}

TEST(LinearRegressorTest, ClosedFormRejectsBadShapesAndSingularSystems) {
  LinearRegressor regressor;
  LinearModel fit;
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_EQ(regressor.FitClosedForm(xs, ys, 2, &fit).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(regressor.FitClosedForm({}, {}, 1, &fit).code(),
            StatusCode::kInvalidArgument);
  // One point cannot pin down slope and intercept.
  const std::vector<double> one_x = {1.0};
  const std::vector<double> one_y = {2.0};
  EXPECT_EQ(regressor.FitClosedForm(one_x, one_y, 1, &fit).code(),
            StatusCode::kFailedPrecondition);
  // Constant feature column: collinear with the bias column.
  const std::vector<double> const_x = {3.0, 3.0, 3.0, 3.0};
  const std::vector<double> any_y = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(regressor.FitClosedForm(const_x, any_y, 1, &fit).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LinearRegressorTest, SgdIsDeterministicUnderSeedAndConverges) {
  LinearModel truth;
  RegressionData data =
      MakeSyntheticRegression(300, 2, /*noise=*/0.0, 404, &truth);
  SgdOptions options;
  options.epochs = 300;
  LinearRegressor regressor;
  LinearModel a, b;
  Rng rng_a(99), rng_b(99);
  ASSERT_TRUE(regressor
                  .FitMiniBatchSgd(data.xs, data.ys, data.dims, options,
                                   &rng_a, &a)
                  .ok());
  ASSERT_TRUE(regressor
                  .FitMiniBatchSgd(data.xs, data.ys, data.dims, options,
                                   &rng_b, &b)
                  .ok());
  for (size_t j = 0; j < data.dims; ++j) {
    EXPECT_TRUE(SameBits(a.weights[j], b.weights[j])) << j;
    EXPECT_NEAR(a.weights[j], truth.weights[j], 0.05) << j;
  }
  EXPECT_TRUE(SameBits(a.bias, b.bias));
  EXPECT_NEAR(a.bias, truth.bias, 0.05);
}

TEST(FlipShiftPoisonTest, AppendsTailRowsFlippedAcrossReference) {
  LinearModel truth;
  RegressionData data =
      MakeSyntheticRegression(250, 3, /*noise=*/0.1, 31, &truth);
  LinearRegressor regressor;
  LinearModel reference;
  ASSERT_TRUE(
      regressor.FitClosedForm(data.xs, data.ys, data.dims, &reference).ok());
  const size_t clean = data.size();
  const double eps = 0.12;
  const double shift = 3.0;
  Rng rng(55);
  const size_t poison = FlipShiftPoison(&data, reference, eps, shift, &rng);
  EXPECT_EQ(poison, static_cast<size_t>(
                        std::floor(eps * static_cast<double>(clean))));
  ASSERT_EQ(data.size(), clean + poison);
  for (size_t p = clean; p < data.size(); ++p) {
    const double* x = data.xs.data() + p * data.dims;
    const double resid =
        std::fabs(data.ys[p] - reference.Predict({x, data.dims}));
    // Each poison residual is the donor's residual plus the shift, so it
    // can never be closer to the reference than `shift`.
    EXPECT_GE(resid, shift - 1e-9) << "p=" << p;
  }
  // eps <= 0 appends nothing.
  RegressionData copy = data;
  EXPECT_EQ(FlipShiftPoison(&copy, reference, 0.0, shift, &rng), 0u);
  EXPECT_EQ(copy.size(), data.size());
}

// The golden refit-loop oracle: five points exactly on y = 2x + 1 plus one
// gross outlier. With eps_hat = 0.2 the keep budget is exactly the five
// clean points, so regardless of the random initial subset the loop must
// converge to the clean line, keep exactly the clean indices, and report a
// (numerically) zero kept MSE.
TEST(TrimDefenseTest, GoldenRefitLoopMatchesHandComputed1DOracle) {
  RegressionData data;
  data.dims = 1;
  data.xs = {0.0, 1.0, 2.0, 3.0, 4.0, 2.0};
  data.ys = {1.0, 3.0, 5.0, 7.0, 9.0, 100.0};
  TrimOptions options;
  options.eps_hat = 0.2;  // keep_n = floor(6 / 1.2) = 5
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    auto result = TrimDefense(data, options, &rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const TrimResult& trim = result.ValueOrDie();
    ASSERT_EQ(trim.kept.size(), 5u) << "seed=" << seed;
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(trim.kept[i], i) << "seed=" << seed;
    }
    EXPECT_NEAR(trim.model.weights[0], 2.0, 1e-9) << "seed=" << seed;
    EXPECT_NEAR(trim.model.bias, 1.0, 1e-9) << "seed=" << seed;
    EXPECT_LT(trim.kept_mse, 1e-12) << "seed=" << seed;
    // Full MSE is dominated by the outlier: (100 - 5)^2 / 6 by hand.
    EXPECT_NEAR(trim.full_mse, 95.0 * 95.0 / 6.0, 1e-6) << "seed=" << seed;
    EXPECT_GE(trim.iterations, 1) << "seed=" << seed;
  }
}

TEST(TrimDefenseTest, RejectsBadOptions) {
  RegressionData data = MakeSyntheticRegression(50, 1, 0.1, 9);
  Rng rng(1);
  TrimOptions options;
  options.eps_hat = 1.0;
  EXPECT_EQ(TrimDefense(data, options, &rng).status().code(),
            StatusCode::kInvalidArgument);
  options.eps_hat = -0.1;
  EXPECT_EQ(TrimDefense(data, options, &rng).status().code(),
            StatusCode::kInvalidArgument);
  options.eps_hat = 0.1;
  options.max_iters = 0;
  EXPECT_EQ(TrimDefense(data, options, &rng).status().code(),
            StatusCode::kInvalidArgument);
  options.max_iters = 20;
  EXPECT_EQ(TrimDefense(data, options, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace itrim
