#include "ml/svm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace itrim {
namespace {

Dataset MakeTwoBlobs(uint64_t seed, size_t per_class, double gap = 4.0) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "blobs";
  ds.num_clusters = 2;
  for (size_t i = 0; i < per_class; ++i) {
    ds.rows.push_back({rng.Normal(-gap / 2, 1.0), rng.Normal(0.0, 1.0)});
    ds.labels.push_back(0);
    ds.rows.push_back({rng.Normal(gap / 2, 1.0), rng.Normal(0.0, 1.0)});
    ds.labels.push_back(1);
  }
  return ds;
}

TEST(SvmTest, SeparatesLinearlySeparableData) {
  Dataset ds = MakeTwoBlobs(1, 200, 8.0);
  auto model = LinearSvm::Train(ds, SvmConfig{}).ValueOrDie();
  EXPECT_GT(model.Evaluate(ds), 0.99);
  EXPECT_EQ(model.classes(), 2u);
  EXPECT_EQ(model.dims(), 2u);
}

TEST(SvmTest, OverlappingDataStillLearns) {
  Dataset ds = MakeTwoBlobs(2, 300, 2.0);
  auto model = LinearSvm::Train(ds, SvmConfig{}).ValueOrDie();
  EXPECT_GT(model.Evaluate(ds), 0.75);
}

TEST(SvmTest, MultiClassOnControl) {
  Dataset control = MakeControl(3);
  auto model = LinearSvm::Train(control, SvmConfig{}).ValueOrDie();
  EXPECT_EQ(model.classes(), 6u);
  // The synthetic control classes are nearly linearly separable.
  EXPECT_GT(model.Evaluate(control), 0.9);
}

TEST(SvmTest, DecisionValueConsistentWithPredict) {
  Dataset ds = MakeTwoBlobs(4, 100);
  auto model = LinearSvm::Train(ds, SvmConfig{}).ValueOrDie();
  for (size_t i = 0; i < 20; ++i) {
    int predicted = model.Predict(ds.rows[i]);
    double own = model.DecisionValue(static_cast<size_t>(predicted),
                                     ds.rows[i]);
    for (size_t c = 0; c < model.classes(); ++c) {
      EXPECT_GE(own, model.DecisionValue(c, ds.rows[i]) - 1e-12);
    }
  }
}

TEST(SvmTest, ValidatesInput) {
  Dataset empty;
  EXPECT_FALSE(LinearSvm::Train(empty, SvmConfig{}).ok());

  Dataset unlabeled;
  unlabeled.rows = {{1.0}};
  EXPECT_FALSE(LinearSvm::Train(unlabeled, SvmConfig{}).ok());

  Dataset negative;
  negative.rows = {{1.0}};
  negative.labels = {-1};
  EXPECT_FALSE(LinearSvm::Train(negative, SvmConfig{}).ok());

  Dataset ds = MakeTwoBlobs(5, 10);
  SvmConfig bad;
  bad.c = 0.0;
  EXPECT_FALSE(LinearSvm::Train(ds, bad).ok());
}

TEST(SvmTest, DeterministicInSeed) {
  Dataset ds = MakeTwoBlobs(6, 100, 3.0);
  SvmConfig config;
  config.seed = 9;
  auto a = LinearSvm::Train(ds, config).ValueOrDie();
  auto b = LinearSvm::Train(ds, config).ValueOrDie();
  for (size_t i = 0; i < ds.rows.size(); ++i) {
    EXPECT_EQ(a.Predict(ds.rows[i]), b.Predict(ds.rows[i]));
  }
}

TEST(SvmTest, BiasHandlesOffsetData) {
  // Both blobs on one side of the origin: requires a working bias term.
  Rng rng(7);
  Dataset ds;
  ds.num_clusters = 2;
  for (int i = 0; i < 200; ++i) {
    ds.rows.push_back({rng.Normal(5.0, 0.5)});
    ds.labels.push_back(0);
    ds.rows.push_back({rng.Normal(8.0, 0.5)});
    ds.labels.push_back(1);
  }
  auto model = LinearSvm::Train(ds, SvmConfig{}).ValueOrDie();
  EXPECT_GT(model.Evaluate(ds), 0.98);
}

TEST(SvmTest, EvaluateOnEmptyDataIsZero) {
  Dataset ds = MakeTwoBlobs(8, 50);
  auto model = LinearSvm::Train(ds, SvmConfig{}).ValueOrDie();
  Dataset empty;
  EXPECT_DOUBLE_EQ(model.Evaluate(empty), 0.0);
}

// Property: accuracy improves (or holds) as the class gap widens.
class GapSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(GapSweepTest, WiderGapAtLeastAsAccurate) {
  double gap = GetParam();
  Dataset narrow = MakeTwoBlobs(10, 150, gap);
  Dataset wide = MakeTwoBlobs(10, 150, gap + 3.0);
  double acc_narrow =
      LinearSvm::Train(narrow, SvmConfig{}).ValueOrDie().Evaluate(narrow);
  double acc_wide =
      LinearSvm::Train(wide, SvmConfig{}).ValueOrDie().Evaluate(wide);
  EXPECT_GE(acc_wide, acc_narrow - 0.02);
}

INSTANTIATE_TEST_SUITE_P(Gaps, GapSweepTest,
                         ::testing::Values(1.0, 2.0, 4.0, 6.0));

}  // namespace
}  // namespace itrim
