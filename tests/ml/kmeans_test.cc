#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/math_util.h"
#include "common/rng.h"
#include "data/generators.h"
#include "stats/metrics.h"

namespace itrim {
namespace {

// Three well-separated 2-D blobs.
std::vector<std::vector<double>> MakeBlobs(uint64_t seed, size_t per_blob,
                                           double spread = 0.2) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  const std::vector<std::vector<double>> centers = {
      {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const auto& c : centers) {
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back(
          {c[0] + rng.Normal(0.0, spread), c[1] + rng.Normal(0.0, spread)});
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  auto points = MakeBlobs(1, 100);
  KMeansConfig config;
  config.k = 3;
  config.restarts = 3;
  auto result = KMeans(points, config).ValueOrDie();
  ASSERT_EQ(result.centroids.size(), 3u);
  // Each true center must be within the blob spread of a learned centroid.
  for (const auto& truth :
       std::vector<std::vector<double>>{{0, 0}, {10, 0}, {0, 10}}) {
    double best = 1e18;
    for (const auto& c : result.centroids) {
      best = std::min(best, EuclideanDistance(truth, c));
    }
    EXPECT_LT(best, 0.5);
  }
  EXPECT_LT(result.sse / points.size(), 0.25);
}

TEST(KMeansTest, AssignmentMatchesNearestCentroid) {
  auto points = MakeBlobs(2, 50);
  KMeansConfig config;
  config.k = 3;
  auto result = KMeans(points, config).ValueOrDie();
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(result.assignment[i],
              NearestCentroid(points[i], result.centroids));
  }
}

TEST(KMeansTest, SseMatchesClusteringSse) {
  auto points = MakeBlobs(3, 40);
  KMeansConfig config;
  config.k = 3;
  auto result = KMeans(points, config).ValueOrDie();
  EXPECT_NEAR(result.sse,
              ClusteringSse(points, result.centroids, result.assignment),
              1e-9);
}

TEST(KMeansTest, ValidatesInput) {
  KMeansConfig config;
  config.k = 2;
  EXPECT_FALSE(KMeans({}, config).ok());
  EXPECT_FALSE(KMeans({{1.0}}, config).ok());  // k > n
  config.k = 0;
  EXPECT_FALSE(KMeans({{1.0}}, config).ok());
  config.k = 1;
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, config).ok());  // ragged
}

TEST(KMeansTest, KEqualsNGivesZeroSse) {
  std::vector<std::vector<double>> points = {{0.0}, {5.0}, {9.0}};
  KMeansConfig config;
  config.k = 3;
  config.restarts = 5;
  auto result = KMeans(points, config).ValueOrDie();
  EXPECT_NEAR(result.sse, 0.0, 1e-18);
}

TEST(KMeansTest, DeterministicInSeed) {
  auto points = MakeBlobs(4, 60, 1.0);
  KMeansConfig config;
  config.k = 3;
  config.seed = 42;
  auto a = KMeans(points, config).ValueOrDie();
  auto b = KMeans(points, config).ValueOrDie();
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_DOUBLE_EQ(a.sse, b.sse);
}

TEST(KMeansTest, MoreRestartsNeverWorse) {
  auto points = MakeBlobs(5, 60, 2.5);
  KMeansConfig one;
  one.k = 3;
  one.restarts = 1;
  one.seed = 7;
  KMeansConfig many = one;
  many.restarts = 8;
  double sse_one = KMeans(points, one).ValueOrDie().sse;
  double sse_many = KMeans(points, many).ValueOrDie().sse;
  EXPECT_LE(sse_many, sse_one + 1e-9);
}

TEST(KMeansTest, ConvergesOnRealisticData) {
  Dataset control = MakeControl(6);
  KMeansConfig config;
  config.k = 6;
  config.restarts = 2;
  auto result = KMeans(control.rows, config).ValueOrDie();
  EXPECT_TRUE(result.converged);
  // All 6 clusters should be populated.
  std::set<size_t> used(result.assignment.begin(), result.assignment.end());
  EXPECT_GE(used.size(), 5u);
}

TEST(EvaluateSseTest, HoldoutScoring) {
  std::vector<std::vector<double>> centroids = {{0.0}, {10.0}};
  std::vector<std::vector<double>> eval = {{1.0}, {9.0}};
  EXPECT_DOUBLE_EQ(EvaluateSse(eval, centroids), 2.0);
}

TEST(NearestCentroidTest, PicksClosest) {
  std::vector<std::vector<double>> centroids = {{0.0}, {10.0}, {20.0}};
  EXPECT_EQ(NearestCentroid({2.0}, centroids), 0u);
  EXPECT_EQ(NearestCentroid({11.0}, centroids), 1u);
  EXPECT_EQ(NearestCentroid({100.0}, centroids), 2u);
}

// Property: SSE never increases when k grows (with enough restarts).
class KSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KSweepTest, SseDecreasesWithK) {
  auto points = MakeBlobs(8, 50, 1.5);
  KMeansConfig small;
  small.k = GetParam();
  small.restarts = 6;
  small.seed = 11;
  KMeansConfig big = small;
  big.k = GetParam() + 1;
  double sse_small = KMeans(points, small).ValueOrDie().sse;
  double sse_big = KMeans(points, big).ValueOrDie().sse;
  EXPECT_LE(sse_big, sse_small * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Ks, KSweepTest, ::testing::Values(1u, 2u, 3u, 5u));

}  // namespace
}  // namespace itrim
