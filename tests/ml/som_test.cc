#include "ml/som.h"

#include <gtest/gtest.h>

#include <set>

#include "common/math_util.h"
#include "common/rng.h"
#include "data/generators.h"

namespace itrim {
namespace {

Dataset MakeBlobs(uint64_t seed, size_t per_class) {
  Rng rng(seed);
  Dataset ds;
  ds.num_clusters = 3;
  const std::vector<std::vector<double>> centers = {
      {0.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}};
  for (size_t c = 0; c < centers.size(); ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      ds.rows.push_back({centers[c][0] + rng.Normal(0.0, 0.4),
                         centers[c][1] + rng.Normal(0.0, 0.4)});
      ds.labels.push_back(static_cast<int>(c));
    }
  }
  return ds;
}

SomConfig SmallConfig() {
  SomConfig c;
  c.width = 8;
  c.height = 8;
  c.epochs = 8;
  c.seed = 3;
  return c;
}

TEST(SomTest, TrainsAndQuantizes) {
  Dataset ds = MakeBlobs(1, 100);
  auto som = Som::Train(ds, SmallConfig()).ValueOrDie();
  EXPECT_EQ(som.width(), 8u);
  EXPECT_EQ(som.height(), 8u);
  EXPECT_EQ(som.weights().size(), 64u);
  // Quantization error should be on the order of the blob spread.
  EXPECT_LT(som.QuantizationError(ds.rows), 0.6);
}

TEST(SomTest, BmuIsNearestNode) {
  Dataset ds = MakeBlobs(2, 50);
  auto som = Som::Train(ds, SmallConfig()).ValueOrDie();
  for (size_t i = 0; i < 10; ++i) {
    size_t bmu = som.BestMatchingUnit(ds.rows[i]);
    double bmu_dist = EuclideanDistance(ds.rows[i], som.weights()[bmu]);
    for (const auto& w : som.weights()) {
      EXPECT_LE(bmu_dist, EuclideanDistance(ds.rows[i], w) + 1e-12);
    }
  }
}

TEST(SomTest, SeparatedClassesOwnDistinctRegions) {
  Dataset ds = MakeBlobs(3, 150);
  auto som = Som::Train(ds, SmallConfig()).ValueOrDie();
  EXPECT_EQ(som.ClassesRepresented(ds), 3u);
  // The BMUs of different classes must not coincide.
  std::set<size_t> bmu0, bmu1;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.labels[i] == 0) bmu0.insert(som.BestMatchingUnit(ds.rows[i]));
    if (ds.labels[i] == 1) bmu1.insert(som.BestMatchingUnit(ds.rows[i]));
  }
  for (size_t n : bmu0) EXPECT_EQ(bmu1.count(n), 0u);
}

TEST(SomTest, HitMapCountsAllRows) {
  Dataset ds = MakeBlobs(4, 80);
  auto som = Som::Train(ds, SmallConfig()).ValueOrDie();
  auto hits = som.HitMap(ds.rows);
  size_t total = 0;
  for (size_t h : hits) total += h;
  EXPECT_EQ(total, ds.size());
}

TEST(SomTest, UMatrixShowsBoundaries) {
  Dataset ds = MakeBlobs(5, 150);
  auto som = Som::Train(ds, SmallConfig()).ValueOrDie();
  auto umatrix = som.UMatrix();
  ASSERT_EQ(umatrix.size(), 64u);
  // Boundary ridges: the max U-value should clearly exceed the min.
  double lo = 1e18, hi = -1e18;
  for (double u : umatrix) {
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_GT(hi, 3.0 * lo);
}

TEST(SomTest, LabelMapMarksEmptyNodes) {
  Dataset ds = MakeBlobs(6, 30);
  auto som = Som::Train(ds, SmallConfig()).ValueOrDie();
  auto labels = som.LabelMap(ds);
  ASSERT_EQ(labels.size(), 64u);
  for (int l : labels) {
    EXPECT_GE(l, -1);
    EXPECT_LT(l, 3);
  }
}

TEST(SomTest, ValidatesInput) {
  Dataset empty;
  EXPECT_FALSE(Som::Train(empty, SmallConfig()).ok());
  Dataset ds = MakeBlobs(7, 10);
  SomConfig bad = SmallConfig();
  bad.width = 0;
  EXPECT_FALSE(Som::Train(ds, bad).ok());
  bad = SmallConfig();
  bad.epochs = 0;
  EXPECT_FALSE(Som::Train(ds, bad).ok());
}

TEST(SomTest, DeterministicInSeed) {
  Dataset ds = MakeBlobs(8, 60);
  auto a = Som::Train(ds, SmallConfig()).ValueOrDie();
  auto b = Som::Train(ds, SmallConfig()).ValueOrDie();
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(SomTest, RareClassVisibleOnCreditcardShape) {
  Dataset ds = MakeCreditcard(9, 2000);
  SomConfig config;
  config.width = 12;
  config.height = 12;
  config.epochs = 6;
  auto som = Som::Train(ds, config).ValueOrDie();
  // At minimum, the bulk and the green segment should own regions.
  EXPECT_GE(som.ClassesRepresented(ds), 2u);
}

// Property: more epochs never drastically worsen quantization error.
class EpochSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(EpochSweepTest, QuantizationErrorReasonable) {
  Dataset ds = MakeBlobs(10, 100);
  SomConfig config = SmallConfig();
  config.epochs = GetParam();
  auto som = Som::Train(ds, config).ValueOrDie();
  EXPECT_LT(som.QuantizationError(ds.rows), 1.2);
}

INSTANTIATE_TEST_SUITE_P(Epochs, EpochSweepTest,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace itrim
