// Randomized properties of the Trim / iTrim defenses:
//  * eps_hat = 0 is a pure no-op (every row kept, no refit loop, model
//    bitwise equal to the plain closed-form fit);
//  * iTrim concludes eps_hat = 0 on clean data;
//  * iTrim recovers a planted contamination level to within one grid step
//    across the {0.04 .. 0.20} sweep;
//  * the iterative defense never keeps more poison than one-shot Trim.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "ml/linreg.h"

namespace itrim {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// A poisoned task: clean synthetic data plus flip-and-shift rows at `eps`,
// poisoned against the clean closed-form fit. Poison rows are the tail
// (index >= clean count).
struct PoisonedTask {
  RegressionData data;
  size_t clean = 0;
  size_t poison = 0;
};

PoisonedTask MakePoisonedTask(size_t n, size_t dims, double noise, double eps,
                              double shift, uint64_t seed) {
  PoisonedTask task;
  task.data = MakeSyntheticRegression(n, dims, noise, seed);
  task.clean = task.data.size();
  LinearRegressor regressor;
  LinearModel reference;
  Status fit = regressor.FitClosedForm(task.data.xs, task.data.ys, dims,
                                       &reference);
  EXPECT_TRUE(fit.ok()) << fit.ToString();
  Rng rng(seed ^ 0xABCDEFULL);
  task.poison = FlipShiftPoison(&task.data, reference, eps, shift, &rng);
  return task;
}

size_t PoisonKept(const TrimResult& trim, size_t clean) {
  size_t kept = 0;
  for (size_t idx : trim.kept) {
    if (idx >= clean) ++kept;
  }
  return kept;
}

TEST(TrimPropertyTest, EpsZeroIsAPureNoOp) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    PoisonedTask task =
        MakePoisonedTask(160, 2, /*noise=*/0.05, /*eps=*/0.1,
                         /*shift=*/4.0, seed);
    TrimOptions options;
    options.eps_hat = 0.0;
    Rng rng(seed * 31);
    auto result = TrimDefense(task.data, options, &rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const TrimResult& trim = result.ValueOrDie();

    // Every row survives, in order; the refit loop never ran.
    ASSERT_EQ(trim.kept.size(), task.data.size()) << "seed=" << seed;
    for (size_t i = 0; i < trim.kept.size(); ++i) {
      EXPECT_EQ(trim.kept[i], i) << "seed=" << seed;
    }
    EXPECT_EQ(trim.iterations, 0) << "seed=" << seed;
    EXPECT_TRUE(SameBits(trim.kept_mse, trim.full_mse)) << "seed=" << seed;

    // The model is the plain closed-form fit over all rows, bit for bit:
    // the degenerate "subset" is all indices in ascending order, so the
    // normal-equation accumulation visits the same rows in the same order.
    LinearRegressor regressor;
    LinearModel direct;
    ASSERT_TRUE(regressor
                    .FitClosedForm(task.data.xs, task.data.ys,
                                   task.data.dims, &direct)
                    .ok());
    ASSERT_EQ(trim.model.weights.size(), direct.weights.size());
    for (size_t j = 0; j < direct.weights.size(); ++j) {
      EXPECT_TRUE(SameBits(trim.model.weights[j], direct.weights[j]))
          << "seed=" << seed << " j=" << j;
    }
    EXPECT_TRUE(SameBits(trim.model.bias, direct.bias)) << "seed=" << seed;
  }
}

TEST(TrimPropertyTest, ITrimEstimatesZeroOnCleanData) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RegressionData data =
        MakeSyntheticRegression(400, 3, /*noise=*/0.1, seed * 7);
    ITrimOptions options;
    Rng rng(seed);
    auto result = ITrimDefense(data, options, &rng);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.ValueOrDie().eps_hat, 0.0) << "seed=" << seed;
  }
}

TEST(TrimPropertyTest, ITrimRecoversPlantedContaminationWithinOneStep) {
  const double kStep = 0.02;
  for (double eps : {0.04, 0.08, 0.12, 0.16, 0.20}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      PoisonedTask task =
          MakePoisonedTask(500, 3, /*noise=*/0.05, eps, /*shift=*/6.0,
                           seed * 97 + static_cast<uint64_t>(eps * 1000));
      ITrimOptions options;
      Rng rng(seed * 13);
      auto result = ITrimDefense(task.data, options, &rng);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const ITrimResult& itrim = result.ValueOrDie();
      EXPECT_NEAR(itrim.eps_hat, eps, kStep + 1e-9)
          << "eps=" << eps << " seed=" << seed;
      ASSERT_EQ(itrim.grid.size(), itrim.kept_mse.size());
      ASSERT_EQ(itrim.grid.size(), 13u);  // {0, 0.02, ..., 0.24}
    }
  }
}

TEST(TrimPropertyTest, IterativeTrimKeepsNoMorePoisonThanOneShot) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const double eps = 0.12;
    PoisonedTask task =
        MakePoisonedTask(400, 2, /*noise=*/0.05, eps, /*shift=*/6.0,
                         seed * 1009);
    TrimOptions one_shot;
    one_shot.eps_hat = eps;
    one_shot.max_iters = 1;
    TrimOptions iterative = one_shot;
    iterative.max_iters = 20;

    // Same seed => same initial random subset: the iterative run continues
    // exactly where the one-shot run stopped.
    Rng rng_one(seed), rng_iter(seed);
    auto one = TrimDefense(task.data, one_shot, &rng_one);
    auto iter = TrimDefense(task.data, iterative, &rng_iter);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    ASSERT_TRUE(iter.ok()) << iter.status().ToString();

    const size_t poison_one = PoisonKept(one.ValueOrDie(), task.clean);
    const size_t poison_iter = PoisonKept(iter.ValueOrDie(), task.clean);
    EXPECT_LE(poison_iter, poison_one) << "seed=" << seed;
    // With the keep budget sized to the clean count and a large shift, the
    // converged defense must exclude essentially all poison.
    EXPECT_LE(poison_iter, task.poison / 10) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace itrim
