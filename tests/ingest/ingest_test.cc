// IngestService unit behavior: the binary frame codec, config/lifecycle
// guards, the bounded queue's backpressure semantics, report coalescing
// into rounds, per-tenant token-bucket rate limiting, and the LRU
// hibernation policy bounding the resident set.
#include "ingest/ingest.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "fleet/tenant.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

// ---------------------------------------------------------------------------
// Wire frame codec
// ---------------------------------------------------------------------------

TEST(IngestFrameTest, RoundTripsThroughTheWireFormat) {
  IngestEvent event;
  event.tenant_id = 0x0123456789ABCDEFULL;
  event.reports = 0xDEADBEEF;
  unsigned char frame[kIngestFrameBytes];
  EncodeIngestEvent(event, frame);
  IngestEvent decoded =
      DecodeIngestEvent(frame, kIngestFrameBytes).ValueOrDie();
  EXPECT_EQ(decoded.tenant_id, event.tenant_id);
  EXPECT_EQ(decoded.reports, event.reports);
}

TEST(IngestFrameTest, FrameIsLittleEndian) {
  IngestEvent event;
  event.tenant_id = 0x0102030405060708ULL;
  event.reports = 0x0A0B0C0D;
  unsigned char frame[kIngestFrameBytes];
  EncodeIngestEvent(event, frame);
  EXPECT_EQ(frame[0], 0x08);
  EXPECT_EQ(frame[7], 0x01);
  EXPECT_EQ(frame[8], 0x0D);
  EXPECT_EQ(frame[11], 0x0A);
}

TEST(IngestFrameTest, RejectsBadFrames) {
  unsigned char frame[kIngestFrameBytes] = {0};
  EXPECT_EQ(DecodeIngestEvent(nullptr, kIngestFrameBytes).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeIngestEvent(frame, kIngestFrameBytes - 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeIngestEvent(frame, kIngestFrameBytes + 1).status().code(),
            StatusCode::kInvalidArgument);
  // All-zero frame carries zero reports.
  EXPECT_EQ(DecodeIngestEvent(frame, kIngestFrameBytes).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Bounded MPSC queue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, DeliversFifoInBatches) {
  BoundedMpscQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 3), 3u);
  EXPECT_EQ(queue.PopBatch(&out, 8), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BoundedQueueTest, TryPushRefusesWhenFullOrClosed) {
  BoundedMpscQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 1), 1u);
  EXPECT_TRUE(queue.TryPush(3));  // slot freed
  queue.Close();
  EXPECT_FALSE(queue.TryPush(4));  // closed
  EXPECT_FALSE(queue.Push(4));     // closed, must not block
}

TEST(BoundedQueueTest, ConsumerDrainsBacklogAfterClose) {
  BoundedMpscQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 10), 2u);
  EXPECT_EQ(queue.PopBatch(&out, 10), 0u);  // closed and drained
}

TEST(BoundedQueueTest, PushBlocksUntilConsumerFreesASlot) {
  BoundedMpscQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::thread producer([&] { EXPECT_TRUE(queue.Push(2)); });
  std::vector<int> out;
  // Pop until both items arrive; the blocked producer resumes after the
  // first pop frees the slot.
  while (out.size() < 2) queue.PopBatch(&out, 1);
  producer.join();
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedMpscQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));
}

// ---------------------------------------------------------------------------
// Service fixture
// ---------------------------------------------------------------------------

class IngestServiceTest : public ::testing::Test {
 protected:
  IngestServiceTest() : pool_(UniformPool(4000, 11)) {}

  std::vector<TenantSpec> ScalarSpecs(size_t count, int round_size = 40) {
    std::vector<TenantSpec> specs;
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      TenantSpec spec;
      spec.name = "tenant-" + std::to_string(i);
      spec.model = TenantModelKind::kScalar;
      spec.scalar_pool = &pool_;
      spec.game.round_size = round_size;
      spec.game.bootstrap_size = 80;
      spec.game.attack_ratio = 0.1;
      spec.game.board_capacity = 2000;
      specs.push_back(spec);
    }
    return specs;
  }

  std::vector<double> pool_;
};

TEST_F(IngestServiceTest, ValidatesConfigAndLifecycle) {
  FleetConfig config;
  SessionFleet fleet(config, ScalarSpecs(2));

  IngestConfig bad;
  bad.queue_capacity = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = IngestConfig{};
  bad.batch_max = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = IngestConfig{};
  bad.shards = -1;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = IngestConfig{};
  bad.rate_limit_per_sec = -1.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);

  // Start requires a bootstrapped fleet; Submit requires Start.
  IngestService service(IngestConfig{}, &fleet);
  EXPECT_EQ(service.Submit({0, 1}).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Start().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.Bootstrap().ok());
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(fleet.per_tenant_mode());

  // Bad events are rejected at the door. The counters live on the obs
  // metric slots, so an ITRIM_OBS=0 build reports zeros (the rejections
  // themselves — the statuses above — happen either way).
  EXPECT_EQ(service.Submit({99, 1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Submit({0, 0}).code(), StatusCode::kInvalidArgument);
  if (obs::kEnabled) {
    EXPECT_EQ(service.Stats().events_rejected, 3u);  // incl. pre-Start submit
  }

  EXPECT_TRUE(service.Stop().ok());
  EXPECT_TRUE(service.Stop().ok());  // idempotent
  EXPECT_EQ(service.Submit({0, 1}).code(), StatusCode::kFailedPrecondition);
}

TEST_F(IngestServiceTest, CoalescesReportsIntoRounds) {
  FleetConfig config;
  SessionFleet fleet(config, ScalarSpecs(3, /*round_size=*/40));
  ASSERT_TRUE(fleet.Bootstrap().ok());

  IngestConfig ingest;
  ingest.shards = 2;
  IngestService service(ingest, &fleet);
  ASSERT_TRUE(service.Start().ok());

  // Tenant 0: 25 + 25 reports = one round + 10 pending; +30 = second round.
  ASSERT_TRUE(service.Submit({0, 25}).ok());
  ASSERT_TRUE(service.Submit({0, 25}).ok());
  ASSERT_TRUE(service.Flush().ok());
  EXPECT_EQ(service.TrySubmit({0, 30}).code(), StatusCode::kOk);
  // Tenant 1 rides the binary API: 40 single-report frames = one round.
  for (int i = 0; i < 40; ++i) {
    IngestEvent event;
    event.tenant_id = 1;
    event.reports = 1;
    unsigned char frame[kIngestFrameBytes];
    EncodeIngestEvent(event, frame);
    ASSERT_TRUE(service.SubmitFrame(frame, kIngestFrameBytes).ok());
  }
  // Tenant 2: 39 reports — not enough for a round.
  ASSERT_TRUE(service.Submit({2, 39}).ok());
  ASSERT_TRUE(service.Flush().ok());

  EXPECT_EQ(fleet.TenantRounds(0).ValueOrDie().size(), 2u);
  EXPECT_EQ(fleet.TenantRounds(1).ValueOrDie().size(), 1u);
  EXPECT_EQ(fleet.TenantRounds(2).ValueOrDie().size(), 0u);

  if (obs::kEnabled) {
    IngestStats stats = service.Stats();
    EXPECT_EQ(stats.events_accepted, 44u);
    EXPECT_EQ(stats.reports_enqueued, 25u + 25u + 30u + 40u + 39u);
    EXPECT_EQ(stats.rounds_played, 3u);
    EXPECT_EQ(stats.reports_rate_limited, 0u);
  }
  EXPECT_TRUE(service.Stop().ok());
}

TEST_F(IngestServiceTest, TokenBucketLimitsPerTenantAdmission) {
  FleetConfig config;
  SessionFleet fleet(config, ScalarSpecs(2, /*round_size=*/40));
  ASSERT_TRUE(fleet.Bootstrap().ok());

  // A bucket that starts with exactly one round of burst and refills at a
  // rate that contributes nothing within the test's lifetime: the first
  // 40 reports are admitted, everything after is shed.
  IngestConfig ingest;
  ingest.shards = 1;
  ingest.rate_limit_per_sec = 1e-12;
  ingest.rate_limit_burst = 40.0;
  IngestService service(ingest, &fleet);
  ASSERT_TRUE(service.Start().ok());

  ASSERT_TRUE(service.Submit({0, 40}).ok());
  ASSERT_TRUE(service.Submit({0, 40}).ok());
  ASSERT_TRUE(service.Submit({0, 40}).ok());
  ASSERT_TRUE(service.Submit({1, 40}).ok());  // buckets are per-tenant
  ASSERT_TRUE(service.Flush().ok());

  EXPECT_EQ(fleet.TenantRounds(0).ValueOrDie().size(), 1u);
  EXPECT_EQ(fleet.TenantRounds(1).ValueOrDie().size(), 1u);
  if (obs::kEnabled) {
    IngestStats stats = service.Stats();
    EXPECT_EQ(stats.reports_rate_limited, 80u);
    EXPECT_EQ(stats.rounds_played, 2u);
  }
  EXPECT_TRUE(service.Stop().ok());
}

TEST_F(IngestServiceTest, HibernationBoundsTheResidentSet) {
  FleetConfig config;
  SessionFleet fleet(config, ScalarSpecs(6, /*round_size=*/40));
  ASSERT_TRUE(fleet.Bootstrap().ok());

  IngestConfig ingest;
  ingest.shards = 1;
  ingest.max_resident_per_shard = 2;
  IngestService service(ingest, &fleet);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.Stats().resident_tenants, 6u);

  for (uint64_t t = 0; t < 6; ++t) {
    ASSERT_TRUE(service.Submit({t, 40}).ok());
  }
  ASSERT_TRUE(service.Flush().ok());

  // The fleet's residency is the behavioral fact; the Stats() view of it
  // rides the obs hibernation counters, so it only agrees when obs is on.
  EXPECT_LE(fleet.ResidentTenants(), 2u);
  if (obs::kEnabled) {
    IngestStats stats = service.Stats();
    EXPECT_LE(stats.resident_tenants, 2u);
    EXPECT_GE(stats.hibernations, 4u);
    EXPECT_EQ(stats.rounds_played, 6u);
    EXPECT_EQ(fleet.ResidentTenants(), stats.resident_tenants);
  }

  // Traffic for a hibernated tenant rehydrates it transparently.
  const uint64_t parked = 0;
  ASSERT_FALSE(fleet.TenantResident(parked));
  ASSERT_TRUE(service.Submit({parked, 40}).ok());
  ASSERT_TRUE(service.Flush().ok());
  if (obs::kEnabled) {
    EXPECT_GE(service.Stats().rehydrations, 1u);
    EXPECT_LE(service.Stats().resident_tenants, 2u);
  }
  EXPECT_EQ(fleet.TenantRounds(parked).ValueOrDie().size(), 2u);
  EXPECT_LE(fleet.ResidentTenants(), 2u);
  EXPECT_TRUE(service.Stop().ok());
}

TEST_F(IngestServiceTest, StopDrainsPendingEvents) {
  FleetConfig config;
  SessionFleet fleet(config, ScalarSpecs(1, /*round_size=*/40));
  ASSERT_TRUE(fleet.Bootstrap().ok());

  IngestConfig ingest;
  ingest.shards = 1;
  IngestService service(ingest, &fleet);
  ASSERT_TRUE(service.Start().ok());
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(service.Submit({0, 1}).ok());
  }
  // No Flush: Stop itself must apply the backlog before joining.
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_EQ(fleet.TenantRounds(0).ValueOrDie().size(), 3u);
}

}  // namespace
}  // namespace itrim
