// The ingest determinism contract: a tenant's round records are a pure
// function of its own admitted arrival sequence — bit-identical to
// stepping that tenant alone — regardless of shard count, cross-tenant
// arrival interleaving, producer concurrency, queue batching, or
// hibernation cycles in between.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "fleet/session_fleet.h"
#include "fleet/tenant.h"
#include "ingest/ingest.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"

#include "game/summary_test_util.h"

namespace itrim {
namespace {

class IngestDeterminismTest : public ::testing::Test {
 protected:
  IngestDeterminismTest()
      : pool_(UniformPool(4000, 11)), data_(MakeControl(21, 80)),
        population_(UniformPool(3000, 31)), mechanism_(2.0) {}

  // Heterogeneous tenants cycling model kinds, schemes and round sizes
  // (same mix as the fleet suites).
  std::vector<TenantSpec> HeterogeneousSpecs(size_t count) {
    std::vector<SchemeId> schemes = AllSchemes();
    std::vector<TenantSpec> specs;
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      TenantSpec spec;
      spec.name = "tenant-" + std::to_string(i);
      spec.model = static_cast<TenantModelKind>(i % 3);
      spec.scheme = schemes[i % schemes.size()];
      spec.game.round_size = 40 + 10 * (i % 3);
      spec.game.bootstrap_size = 80;
      spec.game.attack_ratio = 0.1 + 0.05 * static_cast<double>(i % 4);
      spec.game.board_capacity = 2000;
      spec.game.board_backend =
          (i % 2) == 0 ? BoardBackend::kFlat : BoardBackend::kTreap;
      switch (spec.model) {
        case TenantModelKind::kScalar:
          spec.scalar_pool = &pool_;
          break;
        case TenantModelKind::kDistance:
          spec.dataset = &data_;
          break;
        case TenantModelKind::kLdp:
          spec.ldp_population = &population_;
          spec.ldp_mechanism = &mechanism_;
          attacks_.push_back(std::make_unique<InputManipulationAttack>(1.0));
          spec.ldp_attack = attacks_.back().get();
          break;
      }
      specs.push_back(spec);
    }
    return specs;
  }

  SessionFleet MakeFleet(size_t tenants) {
    FleetConfig config;
    config.threads = 1;
    config.seed = 1234;
    SessionFleet fleet(config, HeterogeneousSpecs(tenants));
    EXPECT_TRUE(fleet.Bootstrap().ok());
    return fleet;
  }

  // Reference books: tenant i stepped alone, `rounds[i]` times, in a
  // fleet the ingest service never touched.
  std::vector<std::vector<RoundRecord>> SoloReplay(
      size_t tenants, const std::vector<int>& rounds) {
    SessionFleet fleet = MakeFleet(tenants);
    EXPECT_TRUE(fleet.BeginPerTenantStepping().ok());
    std::vector<std::vector<RoundRecord>> books(tenants);
    for (size_t i = 0; i < tenants; ++i) {
      for (int r = 0; r < rounds[i]; ++r) {
        EXPECT_TRUE(fleet.StepTenant(i).ok());
      }
      books[i] = fleet.TenantRounds(i).ValueOrDie();
    }
    return books;
  }

  static void ExpectBooksBitIdentical(
      const std::vector<std::vector<RoundRecord>>& expected,
      SessionFleet& fleet) {
    for (size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE("tenant " + std::to_string(i));
      GameSummary a;
      a.rounds = expected[i];
      GameSummary b;
      b.rounds = fleet.TenantRounds(i).ValueOrDie();
      ExpectSummaryBitIdentical(a, b);
    }
  }

  std::vector<double> pool_;
  Dataset data_;
  std::vector<double> population_;
  PiecewiseMechanism mechanism_;
  std::vector<std::unique_ptr<LdpAttack>> attacks_;
};

// Shard counts, arrival interleavings and event granularities all produce
// the same books as the solo replay: the round count per tenant is a pure
// function of its cumulative admitted reports.
TEST_F(IngestDeterminismTest, ShardingAndInterleavingAreInvisible) {
  const size_t kTenants = 9;
  // Uneven traffic: tenant i receives (2 + i % 4) rounds' worth of
  // reports plus a sub-round remainder that must never play.
  std::vector<int> rounds(kTenants);
  std::vector<uint32_t> reports(kTenants);
  std::vector<TenantSpec> specs = HeterogeneousSpecs(kTenants);
  for (size_t i = 0; i < kTenants; ++i) {
    rounds[i] = 2 + static_cast<int>(i % 4);
    reports[i] = static_cast<uint32_t>(rounds[i] * specs[i].game.round_size +
                                       static_cast<int>(i % 7));
  }
  std::vector<std::vector<RoundRecord>> expected = SoloReplay(kTenants, rounds);

  for (int shards : {1, 2, 3}) {
    for (int pattern = 0; pattern < 3; ++pattern) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " pattern=" + std::to_string(pattern));
      SessionFleet fleet = MakeFleet(kTenants);
      IngestConfig config;
      config.shards = shards;
      config.queue_capacity = 64;
      config.batch_max = 16;
      IngestService service(config, &fleet);
      ASSERT_TRUE(service.Start().ok());

      std::vector<uint32_t> left = reports;
      if (pattern == 0) {
        // Round-robin single-report events across tenants.
        bool any = true;
        while (any) {
          any = false;
          for (size_t i = 0; i < kTenants; ++i) {
            if (left[i] == 0) continue;
            ASSERT_TRUE(service.Submit({i, 1}).ok());
            --left[i];
            any = true;
          }
        }
      } else if (pattern == 1) {
        // Whole per-tenant bursts, back to back.
        for (size_t i = 0; i < kTenants; ++i) {
          ASSERT_TRUE(service.Submit({i, left[i]}).ok());
        }
      } else {
        // Seeded random interleaving of random-sized events.
        Rng rng(4242);
        size_t remaining = kTenants;
        while (remaining > 0) {
          size_t i = static_cast<size_t>(rng.Uniform() *
                                         static_cast<double>(kTenants));
          if (i >= kTenants || left[i] == 0) continue;
          uint32_t chunk = 1 + static_cast<uint32_t>(rng.Uniform() * 30.0);
          if (chunk > left[i]) chunk = left[i];
          ASSERT_TRUE(service.Submit({i, chunk}).ok());
          left[i] -= chunk;
          if (left[i] == 0) --remaining;
        }
      }

      ASSERT_TRUE(service.Flush().ok());
      ExpectBooksBitIdentical(expected, fleet);
      ASSERT_TRUE(service.Stop().ok());
    }
  }
}

// Hibernation churn mid-stream changes nothing: with at most one resident
// tenant per shard, every arrival burst forces an evict/rebuild cycle,
// and the books still match the solo replay bit for bit.
TEST_F(IngestDeterminismTest, HibernationChurnIsBitIdentical) {
  const size_t kTenants = 6;
  std::vector<int> rounds(kTenants, 3);
  std::vector<std::vector<RoundRecord>> expected = SoloReplay(kTenants, rounds);

  for (int shards : {1, 2}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    SessionFleet fleet = MakeFleet(kTenants);
    IngestConfig config;
    config.shards = shards;
    config.batch_max = 4;
    config.max_resident_per_shard = 1;
    IngestService service(config, &fleet);
    ASSERT_TRUE(service.Start().ok());

    std::vector<TenantSpec> specs = HeterogeneousSpecs(kTenants);
    // Three passes of one-round bursts per tenant: every pass revisits a
    // tenant some other tenant's traffic has since evicted.
    for (int pass = 0; pass < 3; ++pass) {
      for (size_t i = 0; i < kTenants; ++i) {
        ASSERT_TRUE(
            service
                .Submit({i, static_cast<uint32_t>(specs[i].game.round_size)})
                .ok());
      }
    }
    ASSERT_TRUE(service.Flush().ok());

    if (obs::kEnabled) {  // churn counters live on the obs slots
      IngestStats stats = service.Stats();
      EXPECT_GT(stats.hibernations, 0u);
      EXPECT_GT(stats.rehydrations, 0u);
    }
    ExpectBooksBitIdentical(expected, fleet);
    ASSERT_TRUE(service.Stop().ok());
  }
}

// Concurrent producers: two submitter threads own disjoint tenant sets,
// so each tenant's arrival sequence is still well-defined while the
// cross-tenant interleaving is racy — and the books don't care.
TEST_F(IngestDeterminismTest, ConcurrentProducersPreservePerTenantOrder) {
  const size_t kTenants = 8;
  std::vector<int> rounds(kTenants, 4);
  std::vector<std::vector<RoundRecord>> expected = SoloReplay(kTenants, rounds);

  SessionFleet fleet = MakeFleet(kTenants);
  IngestConfig config;
  config.shards = 2;
  config.queue_capacity = 8;  // small: exercises Push backpressure blocking
  IngestService service(config, &fleet);
  ASSERT_TRUE(service.Start().ok());

  std::vector<TenantSpec> specs = HeterogeneousSpecs(kTenants);
  auto produce = [&](size_t begin, size_t end) {
    for (int r = 0; r < 4; ++r) {
      for (size_t i = begin; i < end; ++i) {
        uint32_t burst = static_cast<uint32_t>(specs[i].game.round_size);
        // Split each round's worth into two events for extra coalescing.
        ASSERT_TRUE(service.Submit({i, burst / 2}).ok());
        ASSERT_TRUE(service.Submit({i, burst - burst / 2}).ok());
      }
    }
  };
  std::thread first(produce, 0, kTenants / 2);
  std::thread second(produce, kTenants / 2, kTenants);
  first.join();
  second.join();
  ASSERT_TRUE(service.Flush().ok());
  ExpectBooksBitIdentical(expected, fleet);
  ASSERT_TRUE(service.Stop().ok());
}

}  // namespace
}  // namespace itrim
