#include "exp/schemes.h"

#include <gtest/gtest.h>

namespace itrim {
namespace {

TEST(SchemeNameTest, AllNamesMatchPaperLegend) {
  EXPECT_EQ(SchemeName(SchemeId::kGroundtruth), "Groundtruth");
  EXPECT_EQ(SchemeName(SchemeId::kOstrich), "Ostrich");
  EXPECT_EQ(SchemeName(SchemeId::kBaseline09), "Baseline0.9");
  EXPECT_EQ(SchemeName(SchemeId::kBaselineStatic), "Baselinestatic");
  EXPECT_EQ(SchemeName(SchemeId::kTitfortat), "Titfortat");
  EXPECT_EQ(SchemeName(SchemeId::kElastic01), "Elastic0.1");
  EXPECT_EQ(SchemeName(SchemeId::kElastic05), "Elastic0.5");
}

TEST(PlottedSchemesTest, SixSchemesInLegendOrder) {
  auto schemes = PlottedSchemes();
  ASSERT_EQ(schemes.size(), 6u);
  EXPECT_EQ(schemes.front(), SchemeId::kOstrich);
  EXPECT_EQ(schemes.back(), SchemeId::kElastic05);
}

TEST(MakeSchemeTest, AllSchemesConstruct) {
  for (SchemeId id : PlottedSchemes()) {
    SchemeInstance s = MakeScheme(id, 0.9);
    EXPECT_NE(s.collector, nullptr) << s.name;
    EXPECT_NE(s.adversary, nullptr) << s.name;
    EXPECT_EQ(s.name, SchemeName(id));
  }
}

TEST(MakeSchemeTest, OstrichNeverTrims) {
  SchemeInstance s = MakeScheme(SchemeId::kOstrich, 0.9);
  RoundContext ctx;
  ctx.tth = 0.9;
  EXPECT_GE(s.collector->TrimPercentile(ctx), 1.0);
}

TEST(MakeSchemeTest, BaselineStaticUsesTth) {
  SchemeInstance s = MakeScheme(SchemeId::kBaselineStatic, 0.95);
  RoundContext ctx;
  ctx.tth = 0.95;
  EXPECT_DOUBLE_EQ(s.collector->TrimPercentile(ctx), 0.95);
  // Its adversary plays just below the threshold.
  Rng rng(1);
  EXPECT_NEAR(s.adversary->InjectionPercentile(ctx, &rng), 0.94, 1e-12);
}

TEST(MakeSchemeTest, Baseline09FixedAtNinety) {
  SchemeInstance s = MakeScheme(SchemeId::kBaseline09, 0.97);
  RoundContext ctx;
  ctx.tth = 0.97;
  EXPECT_DOUBLE_EQ(s.collector->TrimPercentile(ctx), 0.9);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    double a = s.adversary->InjectionPercentile(ctx, &rng);
    EXPECT_GE(a, 0.9);
    EXPECT_LE(a, 1.0);
  }
}

TEST(MakeSchemeTest, TitfortatHasQualityAndNoDefaultTrigger) {
  SchemeInstance s = MakeScheme(SchemeId::kTitfortat, 0.9);
  EXPECT_NE(s.quality, nullptr);
  // Default options: never triggers (Fig 4/5 assumption).
  s.collector->Observe(RoundObservation{1, 0.91, 0.99, 0.0, 100, 90});
  EXPECT_EQ(s.collector->termination_round(), 0);
}

TEST(MakeSchemeTest, TitfortatCustomTrigger) {
  SchemeOptions opts;
  opts.titfortat_trigger_quality = 0.5;
  SchemeInstance s = MakeScheme(SchemeId::kTitfortat, 0.9, opts);
  s.collector->Observe(RoundObservation{3, 0.91, 0.99, 0.2, 100, 90});
  EXPECT_EQ(s.collector->termination_round(), 3);
}

TEST(MakeSchemeTest, ElasticPairUsesMatchingK) {
  SchemeInstance s01 = MakeScheme(SchemeId::kElastic01, 0.9);
  SchemeInstance s05 = MakeScheme(SchemeId::kElastic05, 0.9);
  EXPECT_EQ(s01.collector->name(), "Elastic0.1");
  EXPECT_EQ(s05.collector->name(), "Elastic0.5");
}

}  // namespace
}  // namespace itrim
