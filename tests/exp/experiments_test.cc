#include "exp/experiments.h"

#include <gtest/gtest.h>

#include <cmath>

namespace itrim {
namespace {

TEST(ElasticTraceTest, InitialConditionsMatchPaper) {
  ElasticTrace trace = TraceElasticDynamics(0.5, 10);
  EXPECT_DOUBLE_EQ(trace.collector[0], -0.03);  // T(1) = Tth - 3%
  EXPECT_DOUBLE_EQ(trace.adversary[0], +0.01);  // A(1) = Tth + 1%
}

TEST(ElasticTraceTest, RecurrenceStepByHand) {
  ElasticTrace trace = TraceElasticDynamics(0.5, 3);
  // T(2) = k (A(1) - 1%) = 0.5 * 0 = 0.
  EXPECT_DOUBLE_EQ(trace.collector[1], 0.0);
  // A(2) = -3% + k T(1) = -0.03 - 0.015 = -0.045.
  EXPECT_DOUBLE_EQ(trace.adversary[1], -0.045);
  // T(3) = k (A(2) - 1%) = 0.5 * (-0.055) = -0.0275.
  EXPECT_DOUBLE_EQ(trace.collector[2], -0.0275);
  // A(3) = -3% + k T(2) = -0.03.
  EXPECT_DOUBLE_EQ(trace.adversary[2], -0.03);
}

TEST(ElasticTraceTest, FixedPointFormula) {
  for (double k : {0.1, 0.5}) {
    ElasticTrace trace = TraceElasticDynamics(k, 5);
    double expected = -(0.03 + 0.01 * k * k) / (1.0 - k * k);
    EXPECT_DOUBLE_EQ(trace.fixed_point_adversary, expected);
    EXPECT_DOUBLE_EQ(trace.fixed_point_collector, k * (expected - 0.01));
  }
  // Known magnitudes quoted in DESIGN.md: |A*| = 3.0404% (k=0.1),
  // 4.3333% (k=0.5).
  EXPECT_NEAR(TraceElasticDynamics(0.1, 2).fixed_point_adversary,
              -0.030404, 1e-6);
  EXPECT_NEAR(TraceElasticDynamics(0.5, 2).fixed_point_adversary,
              -0.043333, 1e-6);
}

TEST(ElasticTraceTest, ConvergesToFixedPoint) {
  for (double k : {0.1, 0.5}) {
    ElasticTrace trace = TraceElasticDynamics(k, 100);
    EXPECT_NEAR(trace.adversary.back(), trace.fixed_point_adversary, 1e-9);
    EXPECT_NEAR(trace.collector.back(), trace.fixed_point_collector, 1e-9);
  }
}

TEST(ElasticCostTest, DecaysAsOneOverN) {
  // Once converged, the cumulative deviation is constant, so the roundwise
  // cost scales as 1/Round_no — the Table IV pattern.
  for (double k : {0.1, 0.5}) {
    double c20 = ElasticRoundwiseCost(k, 20);
    double c40 = ElasticRoundwiseCost(k, 40);
    EXPECT_NEAR(c40, c20 / 2.0, 0.05 * c20) << "k=" << k;
  }
}

TEST(ElasticCostTest, PositiveAndFinite) {
  for (int n : {5, 10, 50}) {
    for (double k : {0.1, 0.5}) {
      double c = ElasticRoundwiseCost(k, n);
      EXPECT_GT(c, 0.0);
      EXPECT_LT(c, 0.1);
    }
  }
}

TEST(KmeansExperimentTest, SmallRunProducesAllSeries) {
  KmeansExperimentConfig config;
  config.dataset = "control";
  config.attack_ratios = {0.0, 0.3};
  config.repetitions = 1;
  config.rounds = 5;
  config.round_size = 100;
  config.eval_size = 200;
  auto result = RunKmeansExperiment(config).ValueOrDie();
  EXPECT_GT(result.groundtruth_sse, 0.0);
  ASSERT_EQ(result.series.size(), 6u);
  for (const auto& series : result.series) {
    ASSERT_EQ(series.points.size(), 2u) << series.scheme;
    for (const auto& p : series.points) {
      EXPECT_TRUE(std::isfinite(p.sse));
      EXPECT_TRUE(std::isfinite(p.distance));
      EXPECT_GT(p.sse, 0.0);
    }
  }
}

TEST(KmeansExperimentTest, OstrichDegradesWithHeavyAttack) {
  KmeansExperimentConfig config;
  config.dataset = "control";
  config.attack_ratios = {0.0, 0.5};
  config.repetitions = 2;
  config.rounds = 8;
  config.round_size = 120;
  auto result = RunKmeansExperiment(config).ValueOrDie();
  const KmeansSeries* ostrich = nullptr;
  for (const auto& s : result.series) {
    if (s.scheme == "Ostrich") ostrich = &s;
  }
  ASSERT_NE(ostrich, nullptr);
  // Centroid distance must grow with the attack ratio for Ostrich.
  EXPECT_GT(ostrich->points[1].distance, ostrich->points[0].distance);
}

TEST(KmeansExperimentTest, RejectsUnknownDataset) {
  KmeansExperimentConfig config;
  config.dataset = "imagenet";
  config.attack_ratios = {0.1};
  EXPECT_FALSE(RunKmeansExperiment(config).ok());
}

TEST(NonEquilibriumTest, TerminationTrendsDownInP) {
  NonEquilibriumConfig config;
  config.repetitions = 6;
  config.round_size = 600;
  auto rows = RunNonEquilibriumExperiment(config, {0.0, 1.0}).ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  // p = 0 never triggers (threshold 1.05 unreachable).
  EXPECT_NEAR(rows[0].avg_termination_round, config.rounds, 1e-9);
  // p = 1 terminates earlier on average.
  EXPECT_LT(rows[1].avg_termination_round, config.rounds);
  // Untrimmed poison proportions are meaningful fractions.
  for (const auto& r : rows) {
    EXPECT_GE(r.titfortat_untrimmed, 0.0);
    EXPECT_LE(r.titfortat_untrimmed, 0.35);
    EXPECT_GE(r.elastic_untrimmed, 0.0);
    EXPECT_LE(r.elastic_untrimmed, 0.35);
  }
}

TEST(LdpExperimentTest, SmallSweepProducesSeries) {
  LdpExperimentConfig config;
  config.population_size = 5000;
  config.epsilons = {1.0, 3.0};
  config.repetitions = 1;
  config.rounds = 3;
  config.users_per_round = 500;
  auto result = RunLdpExperiment(config).ValueOrDie();
  ASSERT_EQ(result.series.size(), 4u);  // Titfortat, Elastic x2, EMF
  for (const auto& s : result.series) {
    ASSERT_EQ(s.mse.size(), 2u) << s.scheme;
    for (double mse : s.mse) {
      EXPECT_TRUE(std::isfinite(mse));
      EXPECT_GE(mse, 0.0);
    }
  }
}

}  // namespace
}  // namespace itrim
