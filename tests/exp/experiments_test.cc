#include "exp/experiments.h"

#include <gtest/gtest.h>

#include <cmath>

namespace itrim {
namespace {

TEST(ElasticTraceTest, InitialConditionsMatchPaper) {
  ElasticTrace trace = TraceElasticDynamics(0.5, 10);
  EXPECT_DOUBLE_EQ(trace.collector[0], -0.03);  // T(1) = Tth - 3%
  EXPECT_DOUBLE_EQ(trace.adversary[0], +0.01);  // A(1) = Tth + 1%
}

TEST(ElasticTraceTest, RecurrenceStepByHand) {
  ElasticTrace trace = TraceElasticDynamics(0.5, 3);
  // T(2) = k (A(1) - 1%) = 0.5 * 0 = 0.
  EXPECT_DOUBLE_EQ(trace.collector[1], 0.0);
  // A(2) = -3% + k T(1) = -0.03 - 0.015 = -0.045.
  EXPECT_DOUBLE_EQ(trace.adversary[1], -0.045);
  // T(3) = k (A(2) - 1%) = 0.5 * (-0.055) = -0.0275.
  EXPECT_DOUBLE_EQ(trace.collector[2], -0.0275);
  // A(3) = -3% + k T(2) = -0.03.
  EXPECT_DOUBLE_EQ(trace.adversary[2], -0.03);
}

TEST(ElasticTraceTest, FixedPointFormula) {
  for (double k : {0.1, 0.5}) {
    ElasticTrace trace = TraceElasticDynamics(k, 5);
    double expected = -(0.03 + 0.01 * k * k) / (1.0 - k * k);
    EXPECT_DOUBLE_EQ(trace.fixed_point_adversary, expected);
    EXPECT_DOUBLE_EQ(trace.fixed_point_collector, k * (expected - 0.01));
  }
  // Known magnitudes quoted in DESIGN.md: |A*| = 3.0404% (k=0.1),
  // 4.3333% (k=0.5).
  EXPECT_NEAR(TraceElasticDynamics(0.1, 2).fixed_point_adversary,
              -0.030404, 1e-6);
  EXPECT_NEAR(TraceElasticDynamics(0.5, 2).fixed_point_adversary,
              -0.043333, 1e-6);
}

TEST(ElasticTraceTest, ConvergesToFixedPoint) {
  for (double k : {0.1, 0.5}) {
    ElasticTrace trace = TraceElasticDynamics(k, 100);
    EXPECT_NEAR(trace.adversary.back(), trace.fixed_point_adversary, 1e-9);
    EXPECT_NEAR(trace.collector.back(), trace.fixed_point_collector, 1e-9);
  }
}

TEST(ElasticCostTest, DecaysAsOneOverN) {
  // Once converged, the cumulative deviation is constant, so the roundwise
  // cost scales as 1/Round_no — the Table IV pattern.
  for (double k : {0.1, 0.5}) {
    double c20 = ElasticRoundwiseCost(k, 20);
    double c40 = ElasticRoundwiseCost(k, 40);
    EXPECT_NEAR(c40, c20 / 2.0, 0.05 * c20) << "k=" << k;
  }
}

TEST(ElasticCostTest, PositiveAndFinite) {
  for (int n : {5, 10, 50}) {
    for (double k : {0.1, 0.5}) {
      double c = ElasticRoundwiseCost(k, n);
      EXPECT_GT(c, 0.0);
      EXPECT_LT(c, 0.1);
    }
  }
}

TEST(KmeansExperimentTest, SmallRunProducesAllSeries) {
  KmeansExperimentConfig config;
  config.dataset = "control";
  config.attack_ratios = {0.0, 0.3};
  config.repetitions = 1;
  config.rounds = 5;
  config.round_size = 100;
  config.eval_size = 200;
  auto result = RunKmeansExperiment(config).ValueOrDie();
  EXPECT_GT(result.groundtruth_sse, 0.0);
  ASSERT_EQ(result.series.size(), 6u);
  for (const auto& series : result.series) {
    ASSERT_EQ(series.points.size(), 2u) << series.scheme;
    for (const auto& p : series.points) {
      EXPECT_TRUE(std::isfinite(p.sse));
      EXPECT_TRUE(std::isfinite(p.distance));
      EXPECT_GT(p.sse, 0.0);
    }
  }
}

TEST(KmeansExperimentTest, OstrichDegradesWithHeavyAttack) {
  KmeansExperimentConfig config;
  config.dataset = "control";
  config.attack_ratios = {0.0, 0.5};
  config.repetitions = 2;
  config.rounds = 8;
  config.round_size = 120;
  auto result = RunKmeansExperiment(config).ValueOrDie();
  const KmeansSeries* ostrich = nullptr;
  for (const auto& s : result.series) {
    if (s.scheme == "Ostrich") ostrich = &s;
  }
  ASSERT_NE(ostrich, nullptr);
  // Centroid distance must grow with the attack ratio for Ostrich.
  EXPECT_GT(ostrich->points[1].distance, ostrich->points[0].distance);
}

TEST(KmeansExperimentTest, RejectsUnknownDataset) {
  KmeansExperimentConfig config;
  config.dataset = "imagenet";
  config.attack_ratios = {0.1};
  EXPECT_FALSE(RunKmeansExperiment(config).ok());
}

TEST(NonEquilibriumTest, TerminationTrendsDownInP) {
  NonEquilibriumConfig config;
  config.repetitions = 6;
  config.round_size = 600;
  auto rows = RunNonEquilibriumExperiment(config, {0.0, 1.0}).ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  // p = 0 never triggers (threshold 1.05 unreachable).
  EXPECT_NEAR(rows[0].avg_termination_round, config.rounds, 1e-9);
  // p = 1 terminates earlier on average.
  EXPECT_LT(rows[1].avg_termination_round, config.rounds);
  // Untrimmed poison proportions are meaningful fractions.
  for (const auto& r : rows) {
    EXPECT_GE(r.titfortat_untrimmed, 0.0);
    EXPECT_LE(r.titfortat_untrimmed, 0.35);
    EXPECT_GE(r.elastic_untrimmed, 0.0);
    EXPECT_LE(r.elastic_untrimmed, 0.35);
  }
}

TEST(KmeansExperimentTest, ThreadCountDoesNotChangeResults) {
  // The contract of the parallel experiment engine: every (scheme, ratio,
  // repetition) arm derives its own Rng streams and results are reduced in
  // arm order, so N threads reproduce the 1-thread run bit for bit.
  KmeansExperimentConfig config;
  config.dataset = "control";
  config.attack_ratios = {0.0, 0.3};
  config.repetitions = 2;
  config.rounds = 5;
  config.round_size = 100;
  config.eval_size = 200;
  config.threads = 1;
  auto serial = RunKmeansExperiment(config).ValueOrDie();
  config.threads = 4;
  auto parallel = RunKmeansExperiment(config).ValueOrDie();

  EXPECT_EQ(serial.groundtruth_sse, parallel.groundtruth_sse);
  ASSERT_EQ(serial.series.size(), parallel.series.size());
  for (size_t s = 0; s < serial.series.size(); ++s) {
    EXPECT_EQ(serial.series[s].scheme, parallel.series[s].scheme);
    ASSERT_EQ(serial.series[s].points.size(),
              parallel.series[s].points.size());
    for (size_t p = 0; p < serial.series[s].points.size(); ++p) {
      EXPECT_EQ(serial.series[s].points[p].sse,
                parallel.series[s].points[p].sse)
          << serial.series[s].scheme << " point " << p;
      EXPECT_EQ(serial.series[s].points[p].distance,
                parallel.series[s].points[p].distance)
          << serial.series[s].scheme << " point " << p;
    }
  }
}

TEST(SvmExperimentTest, ThreadCountDoesNotChangeResults) {
  SvmExperimentConfig config;
  config.repetitions = 2;
  config.rounds = 5;
  config.round_size = 80;
  config.threads = 1;
  auto serial = RunSvmExperiment(config).ValueOrDie();
  config.threads = 4;
  auto parallel = RunSvmExperiment(config).ValueOrDie();
  EXPECT_EQ(serial.groundtruth_accuracy, parallel.groundtruth_accuracy);
  ASSERT_EQ(serial.schemes.size(), parallel.schemes.size());
  for (size_t s = 0; s < serial.schemes.size(); ++s) {
    EXPECT_EQ(serial.schemes[s].accuracy, parallel.schemes[s].accuracy)
        << serial.schemes[s].scheme;
    // Covers ConfusionMatrix::Merge: per-class PPV derives from the merged
    // per-repetition matrices.
    EXPECT_EQ(serial.schemes[s].class_ppv, parallel.schemes[s].class_ppv)
        << serial.schemes[s].scheme;
  }
}

TEST(SomExperimentTest, ThreadCountDoesNotChangeResults) {
  SomExperimentConfig config;
  config.dataset_size = 600;
  config.grid = 6;
  config.epochs = 2;
  config.repetitions = 2;
  config.rounds = 4;
  config.round_size = 80;
  config.threads = 1;
  auto serial = RunSomExperiment(config).ValueOrDie();
  config.threads = 4;
  auto parallel = RunSomExperiment(config).ValueOrDie();
  ASSERT_EQ(serial.schemes.size(), parallel.schemes.size());
  for (size_t s = 0; s < serial.schemes.size(); ++s) {
    const auto& a = serial.schemes[s];
    const auto& b = parallel.schemes[s];
    EXPECT_EQ(a.classes_represented, b.classes_represented) << a.scheme;
    EXPECT_EQ(a.green_class_survives, b.green_class_survives) << a.scheme;
    EXPECT_EQ(a.fraud_point_survives, b.fraud_point_survives) << a.scheme;
    EXPECT_EQ(a.premium_point_survives, b.premium_point_survives) << a.scheme;
    EXPECT_EQ(a.quantization_error, b.quantization_error) << a.scheme;
    EXPECT_EQ(a.untrimmed_poison_fraction, b.untrimmed_poison_fraction)
        << a.scheme;
  }
}

TEST(LdpExperimentTest, ThreadCountDoesNotChangeResults) {
  LdpExperimentConfig config;
  config.population_size = 3000;
  config.epsilons = {1.0, 3.0};
  config.repetitions = 2;
  config.rounds = 3;
  config.users_per_round = 300;
  config.threads = 1;
  auto serial = RunLdpExperiment(config).ValueOrDie();
  config.threads = 4;
  auto parallel = RunLdpExperiment(config).ValueOrDie();
  ASSERT_EQ(serial.series.size(), parallel.series.size());
  for (size_t s = 0; s < serial.series.size(); ++s) {
    EXPECT_EQ(serial.series[s].scheme, parallel.series[s].scheme);
    EXPECT_EQ(serial.series[s].mse, parallel.series[s].mse)
        << serial.series[s].scheme;
  }
}

TEST(NonEquilibriumTest, ThreadCountDoesNotChangeResults) {
  NonEquilibriumConfig config;
  config.repetitions = 4;
  config.round_size = 400;
  config.rounds = 8;
  config.threads = 1;
  auto serial = RunNonEquilibriumExperiment(config, {0.2, 0.8}).ValueOrDie();
  config.threads = 8;
  auto parallel =
      RunNonEquilibriumExperiment(config, {0.2, 0.8}).ValueOrDie();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].avg_termination_round,
              parallel[i].avg_termination_round);
    EXPECT_EQ(serial[i].titfortat_untrimmed, parallel[i].titfortat_untrimmed);
    EXPECT_EQ(serial[i].elastic_untrimmed, parallel[i].elastic_untrimmed);
  }
}

TEST(LdpExperimentTest, SmallSweepProducesSeries) {
  LdpExperimentConfig config;
  config.population_size = 5000;
  config.epsilons = {1.0, 3.0};
  config.repetitions = 1;
  config.rounds = 3;
  config.users_per_round = 500;
  auto result = RunLdpExperiment(config).ValueOrDie();
  ASSERT_EQ(result.series.size(), 4u);  // Titfortat, Elastic x2, EMF
  for (const auto& s : result.series) {
    ASSERT_EQ(s.mse.size(), 2u) << s.scheme;
    for (double mse : s.mse) {
      EXPECT_TRUE(std::isfinite(mse));
      EXPECT_GE(mse, 0.0);
    }
  }
}

}  // namespace
}  // namespace itrim
