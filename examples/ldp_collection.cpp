// Example: privacy-preserving mean estimation under attack (the Section V
// case study).
//
// Honest users report their Taxi pick-up times through the Piecewise
// Mechanism; 15% of reports come from colluding input-manipulation
// attackers. We compare four defenses for one privacy budget: none,
// EMF filtering, Titfortat trimming, and Elastic trimming.
#include <cstdio>

#include "data/generators.h"
#include "game/quality.h"
#include "game/strategies.h"
#include "ldp/attacks.h"
#include "ldp/emf.h"
#include "ldp/ldp_game.h"
#include "ldp/mechanism.h"

int main(int argc, char** argv) {
  using namespace itrim;
  double epsilon = argc > 1 ? std::atof(argv[1]) : 2.0;

  Dataset taxi = MakeTaxi(/*seed=*/5, /*instances=*/50000);
  std::vector<double> population;
  for (const auto& row : taxi.rows) population.push_back(row[0]);

  PiecewiseMechanism mechanism(epsilon);
  InputManipulationAttack attack(/*fake_input=*/1.0);

  LdpGameConfig config;
  config.rounds = 10;
  config.users_per_round = 2000;
  config.attack_ratio = 0.15;
  config.tth = 0.9;
  config.bootstrap_size = 2000;
  config.seed = 11;

  std::printf("Taxi mean estimation, epsilon=%.1f, 15%% evasive attackers\n",
              epsilon);
  std::printf("%-22s %14s %14s\n", "defense", "estimate", "sq.error");

  auto report = [](const char* name, const LdpRunResult& r) {
    std::printf("%-22s %14.5f %14.6f\n", name, r.estimated_mean,
                r.squared_error);
  };

  // The configuration is validated at construction; a bad field (say
  // tth = 1.2) would surface here from every Run* with its message rather
  // than silently running.
  LdpCollectionGame game(config, &population, &mechanism, &attack);
  auto none = game.RunUndefended();
  auto emf = game.RunEmf(EmfConfig{});
  TitfortatCollector titfortat(+0.01, -0.03, /*never triggers*/ -1.0);
  TailMassQuality quality(config.tth);
  auto tft = game.RunTrimming(&titfortat, &quality);
  ElasticCollector elastic(0.5);
  auto ela = game.RunTrimming(&elastic, nullptr);
  for (const auto* r : {&none, &emf, &tft, &ela}) {
    if (!r->ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   r->status().ToString().c_str());
      return 1;
    }
  }
  std::printf("true mean: %.5f\n", none->true_mean);
  report("none (Ostrich)", *none);
  report("EMF (Du et al.)", *emf);
  report("Titfortat trimming", *tft);
  report("Elastic0.5 trimming", *ela);
  std::printf(
      "\nEMF estimated attack fraction beta=%.3f (true 0.15/1.15=%.3f); the "
      "evasive attack hides part of its mass inside the honest tail, which "
      "is why interactive trimming wins (Fig 9).\n",
      emf->emf_beta, 0.15 / 1.15);
  return 0;
}
