// Observability quickstart: instrument a fleet, scrape it, export it.
//
// The src/obs/ layer is write-only telemetry over the game engine: sessions
// and fleets record into preallocated metric slots and a fixed-capacity
// trace ring, and a scraper merges those atomics into a snapshot whenever it
// likes. Nothing here reads back into the game — the instrumented run below
// produces the same bytes it would produce with no sinks attached (and the
// whole layer compiles out under -DITRIM_OBS=OFF; this program still builds
// and runs there, it just scrapes zeros).
//
// Here: an 8-tenant scalar fleet with a fleet-level slot, one shared
// session-level slot, and a trace ring attached; a ScrapeSampler polling in
// the background while rounds play; then one final scrape exported three
// ways — Prometheus text (tools/promlint.py lints it), BENCH-style metrics
// JSON, and the trace JSON that tools/trace_dump.py renders as per-tenant
// round timelines.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "fleet/session_fleet.h"
#include "game/kernels.h"
#include "game/public_board.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

int main() {
  using namespace itrim;

  Rng rng(7);
  std::vector<double> pool;
  for (int i = 0; i < 5000; ++i) pool.push_back(rng.Uniform());

  std::vector<TenantSpec> specs;
  for (size_t i = 0; i < 8; ++i) {
    TenantSpec spec;
    spec.name = "tenant-" + std::to_string(i);
    spec.model = TenantModelKind::kScalar;
    spec.scalar_pool = &pool;
    spec.scheme = (i % 2 == 0) ? SchemeId::kElastic05 : SchemeId::kTitfortat;
    spec.game.round_size = 200;
    spec.game.bootstrap_size = 200;
    spec.game.attack_ratio = 0.1 + 0.05 * static_cast<double>(i % 4);
    specs.push_back(spec);
  }

  FleetConfig config;
  config.rounds = 10;
  config.seed = 2024;

  // The sinks. A registry owns labelled slots (one per writer domain); the
  // trace ring holds the last 256 game events. Both must outlive the fleet
  // they are attached to.
  obs::MetricsRegistry registry;
  registry.SetInfo("kernel", kernels::VariantName(kernels::ActiveVariant()));
  registry.SetInfo("board", BoardBackendName(specs[0].game.board_backend));
  obs::MetricSlot* fleet_slot = registry.AddSlot("fleet");
  obs::MetricSlot* session_slot = registry.AddSlot("sessions");
  obs::TraceBuffer trace(/*capacity=*/256);

  SessionFleet fleet(config, specs);
  fleet.AttachObservability(fleet_slot);  // fleet round gauges + wall times
  if (Status s = fleet.Bootstrap(); !s.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // Tenant sessions exist once the fleet is bootstrapped; attach their sinks
  // now (they survive hibernation/rehydration from here on).
  for (size_t i = 0; i < specs.size(); ++i) {
    SessionObs sinks;
    sinks.metrics = session_slot;  // per-round counters (shared slot is fine)
    sinks.trace = &trace;          // round/trim events, stamped per tenant
    sinks.tenant = i;
    if (Status s = fleet.AttachTenantObservability(i, sinks); !s.ok()) {
      std::fprintf(stderr, "attach failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // A background scraper, polling every 20 ms. It only reads published
  // atomics, so it cannot perturb the rounds it races.
  uint64_t live_rounds_seen = 0;
  obs::ScrapeSampler sampler(
      &registry, std::chrono::milliseconds(20),
      [&](const obs::MetricsSnapshot& snap) {
        live_rounds_seen =
            snap.merged.counters[static_cast<int>(
                obs::Counter::kSessionRoundsPlayed)];
      });
  (void)sampler.Start();

  for (int round = 1; round <= config.rounds; ++round) {
    if (auto agg = fleet.StepRound(); !agg.ok()) {
      std::fprintf(stderr, "round %d failed: %s\n", round,
                   agg.status().ToString().c_str());
      return 1;
    }
  }
  sampler.Stop();  // joins after one final flush sample

  // One authoritative scrape, then the three export formats.
  obs::MetricsSnapshot snap = registry.Scrape();
  const auto counter = [&](obs::Counter c) {
    return snap.merged.counters[static_cast<int>(c)];
  };
  std::printf("sampler took %llu snapshots (last live view: %llu rounds)\n",
              static_cast<unsigned long long>(sampler.samples()),
              static_cast<unsigned long long>(live_rounds_seen));
  std::printf("rounds played      %llu\n",
              static_cast<unsigned long long>(
                  counter(obs::Counter::kSessionRoundsPlayed)));
  std::printf("observations kept  %llu benign, %llu poison\n",
              static_cast<unsigned long long>(
                  counter(obs::Counter::kSessionBenignKept)),
              static_cast<unsigned long long>(
                  counter(obs::Counter::kSessionPoisonKept)));
  std::printf("trimmed            %llu\n",
              static_cast<unsigned long long>(
                  counter(obs::Counter::kSessionObservationsTrimmed)));

  std::string prom = obs::PrometheusText(snap);
  std::string metrics_json = obs::MetricsJson(snap);
  std::vector<obs::TraceEvent> events;
  trace.Snapshot(&events);
  std::string trace_json = obs::TracesJson(events, trace.dropped());
  std::printf("\nexports: %zu bytes Prometheus text, %zu bytes metrics "
              "JSON,\n         %zu trace events (%llu overwritten by ring "
              "wrap)\n",
              prom.size(), metrics_json.size(), events.size(),
              static_cast<unsigned long long>(trace.dropped()));

  if (obs::WriteTextFile("obs_scrape.prom", prom).ok() &&
      obs::WriteTextFile("obs_trace.json", trace_json).ok()) {
    std::printf("\nwrote obs_scrape.prom and obs_trace.json — try:\n"
                "  python3 tools/promlint.py obs_scrape.prom\n"
                "  python3 tools/trace_dump.py --tenant 0 obs_trace.json\n");
  }
  return 0;
}
