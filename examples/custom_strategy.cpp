// Example: plugging a custom collector strategy into the game, and checking
// it against the analytical model.
//
// We implement a "Generous Titfortat" variant (forgives after a fixed
// penalty window instead of defecting forever — one of the Tit-for-tat
// variants the paper mentions extending to), run it against the mixed
// adversary of Table III, and then use the Lagrangian toolkit to predict
// the oscillation period of the Elastic interaction it approximates.
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "game/collection_game.h"
#include "game/lagrangian.h"
#include "game/quality.h"
#include "game/strategies.h"

namespace {

using namespace itrim;

// Forgives `penalty_rounds` rounds after each trigger instead of
// terminating cooperation permanently.
class GenerousTitfortat : public CollectorStrategy {
 public:
  GenerousTitfortat(double soft_offset, double hard_offset,
                    double trigger_quality, int penalty_rounds)
      : soft_offset_(soft_offset), hard_offset_(hard_offset),
        trigger_quality_(trigger_quality), penalty_rounds_(penalty_rounds) {}

  std::string name() const override { return "GenerousTitfortat"; }

  double TrimPercentile(const RoundContext& ctx) override {
    return ctx.tth + (penalty_left_ > 0 ? hard_offset_ : soft_offset_);
  }

  void Observe(const RoundObservation& obs) override {
    if (penalty_left_ > 0) {
      --penalty_left_;  // serve out the punishment, then forgive
    }
    if (!std::isnan(obs.quality) && obs.quality < trigger_quality_) {
      penalty_left_ = penalty_rounds_;
      ++triggers_;
      if (first_trigger_ == 0) first_trigger_ = obs.round;
    }
  }

  void Reset() override {
    penalty_left_ = 0;
    triggers_ = 0;
    first_trigger_ = 0;
  }

  int termination_round() const override { return first_trigger_; }
  int triggers() const { return triggers_; }

 private:
  double soft_offset_;
  double hard_offset_;
  double trigger_quality_;
  int penalty_rounds_;
  int penalty_left_ = 0;
  int triggers_ = 0;
  int first_trigger_ = 0;
};

}  // namespace

int main() {
  Rng rng(3);
  std::vector<double> benign_pool;
  for (int i = 0; i < 20000; ++i) benign_pool.push_back(rng.Normal());

  GameConfig config;
  config.rounds = 30;
  config.round_size = 800;
  config.attack_ratio = 0.2;
  config.tth = 0.9;
  config.seed = 13;

  // Adversary defects half the time (p = 0.5 of Table III).
  MixedPercentileAdversary adversary(0.5);
  GenerousTitfortat collector(+0.01, -0.03, /*trigger_quality=*/0.7,
                              /*penalty_rounds=*/3);
  DefectShareQuality quality(0.90, 0.99);

  ScalarCollectionGame game(config, &benign_pool, &collector, &adversary,
                            &quality);
  auto summary = game.Run();
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("GenerousTitfortat vs mixed adversary (p=0.5):\n");
  std::printf("  triggers fired:            %d\n", collector.triggers());
  std::printf("  first trigger round:       %d\n",
              collector.termination_round());
  std::printf("  untrimmed poison fraction: %.4f\n",
              summary->UntrimmedPoisonFraction());
  std::printf("  benign loss fraction:      %.4f\n",
              summary->BenignLossFraction());

  // The analytical model: an elastic interaction with strength k couples the
  // two parties' utilities; Theorem 4 predicts oscillation with period
  // 2*pi*sqrt(mu/k).
  const double k = 0.5, m_a = 1.0, m_c = 1.0;
  auto solution = SolveElasticOscillator(
      m_a, m_c, k, GameState{/*u_a=*/1.0, /*u_c=*/0.0, 0.0, 0.0});
  if (solution.ok()) {
    std::printf(
        "\nTheorem 4 check: elastic interaction k=%.1f -> relative utility "
        "oscillates with period %.3f rounds (omega=%.3f).\n",
        k, solution->period, solution->omega);
  }

  // Verify numerically with the Euler-Lagrange integrator.
  ElasticPotential potential(k);
  GameLagrangian lagrangian(m_a, m_c, &potential);
  EulerLagrangeIntegrator integrator(&lagrangian);
  auto traj = integrator.Integrate(GameState{1.0, 0.0, 0.0, 0.0},
                                   solution->period / 400.0, 400);
  double w_end = traj.back().state.u_a - traj.back().state.u_c;
  std::printf(
      "integrating one predicted period returns the relative utility to "
      "%.6f (started at 1.0) — the paper's oscillatory steady state.\n",
      w_end);
  return 0;
}
