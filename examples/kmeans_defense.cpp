// Example: protecting a k-means pipeline on the Control workload.
//
// Reproduces a single cell of the Fig 4 experiment end to end with the
// public API: generate the dataset, run the online collection game with a
// chosen defense, train k-means on the sanitized data, and compare against
// the clean model.
#include <cstdio>
#include <string>

#include "data/generators.h"
#include "exp/schemes.h"
#include "game/score_model.h"
#include "ml/kmeans.h"
#include "stats/metrics.h"

int main(int argc, char** argv) {
  using namespace itrim;
  // Usage: kmeans_defense [attack_ratio] (default 0.3).
  double attack_ratio = argc > 1 ? std::atof(argv[1]) : 0.3;

  Dataset control = MakeControl(/*seed=*/2024);
  std::printf("dataset: %s, %zu rows x %zu dims, %zu clusters\n",
              control.name.c_str(), control.size(), control.dims(),
              control.num_clusters);

  // Clean reference model.
  KMeansConfig km;
  km.k = control.num_clusters;
  km.restarts = 2;
  auto groundtruth = KMeans(control.rows, km);
  if (!groundtruth.ok()) {
    std::fprintf(stderr, "%s\n", groundtruth.status().ToString().c_str());
    return 1;
  }

  std::printf("attack ratio: %.2f, Tth=0.90, 20 rounds\n\n", attack_ratio);
  std::printf("%-16s %12s %12s %14s %14s\n", "scheme", "eval SSE",
              "distance", "poison kept", "benign lost");
  for (SchemeId id : PlottedSchemes()) {
    SchemeInstance scheme = MakeScheme(id, 0.9);
    GameConfig config;
    config.rounds = 20;
    config.round_size = 150;
    config.attack_ratio = attack_ratio;
    config.tth = 0.9;
    config.round_mass_trimming = true;  // the Fig 4 pipeline semantics
    config.seed = 7;
    DistanceScoreModel game_model(&control);
    auto summary = RunSchemeSession(config, &scheme, &game_model);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s: %s\n", scheme.name.c_str(),
                   summary.status().ToString().c_str());
      return 1;
    }
    auto model = KMeans(game_model.retained_data().rows, km);
    if (!model.ok()) {
      std::fprintf(stderr, "%s: %s\n", scheme.name.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    double sse = EvaluateSse(control.rows, model->centroids);
    double dist =
        CentroidSetDistance(model->centroids, groundtruth->centroids);
    std::printf("%-16s %12.1f %12.4f %13.1f%% %13.1f%%\n",
                scheme.name.c_str(), sse, dist,
                100.0 * summary->UntrimmedPoisonFraction(),
                100.0 * summary->BenignLossFraction());
  }
  std::printf(
      "\nclean-model eval SSE: %.1f — compare the schemes' SSE/distance "
      "against it.\n",
      EvaluateSse(control.rows, groundtruth->centroids));
  return 0;
}
