// Quickstart: defend a streaming collection against an evasive adversary in
// ~40 lines.
//
// A collector gathers uniform data over 15 rounds while a white-box
// adversary injects 20% poison just below whatever it learned about the
// collector's threshold. We run the Elastic strategy (Algorithm 2) against
// it and print the per-round interaction plus the final bookkeeping.
#include <cstdio>

#include "common/rng.h"
#include "game/collection_game.h"
#include "game/strategies.h"

int main() {
  using namespace itrim;

  // A benign data source: 10k values in [0, 1].
  Rng rng(7);
  std::vector<double> benign_pool;
  for (int i = 0; i < 10000; ++i) benign_pool.push_back(rng.Uniform());

  // Game setup: 15 rounds of 500 values, 20% poison, nominal threshold at
  // the 90th percentile.
  GameConfig config;
  config.rounds = 15;
  config.round_size = 500;
  config.attack_ratio = 0.2;
  config.tth = 0.9;
  config.seed = 42;

  // The defense: Elastic with response strength k = 0.5.
  ElasticCollector collector(0.5);
  // The threat: an adversary that mirrors the collector's last threshold.
  ElasticAdversary adversary(0.5);

  ScalarCollectionGame game(config, &benign_pool, &collector, &adversary,
                            /*quality=*/nullptr);
  auto summary = game.Run();
  if (!summary.ok()) {
    std::fprintf(stderr, "game failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }

  std::printf("round  trim@pct  inject@pct  benign kept  poison kept\n");
  for (const auto& r : summary->rounds) {
    std::printf("%5d    %.4f      %.4f      %4zu/%zu      %3zu/%zu\n",
                r.round, r.collector_percentile, r.injection_percentile,
                r.benign_kept, r.benign_received, r.poison_kept,
                r.poison_received);
  }
  std::printf(
      "\nuntrimmed poison fraction: %.4f\nbenign loss fraction:      %.4f\n"
      "(the coupled dynamics converge: the adversary is pushed ~4%% below "
      "the nominal threshold,\n where its poison is barely distinguishable "
      "from honest data)\n",
      summary->UntrimmedPoisonFraction(), summary->BenignLossFraction());
  return 0;
}
