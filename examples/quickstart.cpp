// Quickstart: defend a streaming collection against an evasive adversary in
// ~40 lines.
//
// A collector gathers uniform data while a white-box adversary injects 20%
// poison just below whatever it learned about the collector's threshold. We
// run the Elastic strategy (Algorithm 2) against it through the streaming
// TrimmingSession API — Bootstrap() fixes the clean percentile reference,
// each Step() plays one round as it "arrives" and reports the interaction
// live, Finish() closes the book.
#include <cstdio>

#include "common/rng.h"
#include "game/score_model.h"
#include "game/session.h"
#include "game/strategies.h"

int main() {
  using namespace itrim;

  // A benign data source: 10k values in [0, 1].
  Rng rng(7);
  std::vector<double> benign_pool;
  for (int i = 0; i < 10000; ++i) benign_pool.push_back(rng.Uniform());

  // Game setup: 15 rounds of 500 values, 20% poison, nominal threshold at
  // the 90th percentile.
  GameConfig config;
  config.rounds = 15;
  config.round_size = 500;
  config.attack_ratio = 0.2;
  config.tth = 0.9;
  config.seed = 42;

  // The defense: Elastic with response strength k = 0.5.
  ElasticCollector collector(0.5);
  // The threat: an adversary that mirrors the collector's last threshold.
  ElasticAdversary adversary(0.5);

  // Scalar setting (score == value) driven one round at a time.
  IdentityScoreModel model(&benign_pool);
  TrimmingSession session(config, &model, &collector, &adversary,
                          /*quality=*/nullptr);
  if (Status s = session.Bootstrap(); !s.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("round  trim@pct  inject@pct  benign kept  poison kept\n");
  for (int round = 1; round <= config.rounds; ++round) {
    auto record = session.Step();
    if (!record.ok()) {
      std::fprintf(stderr, "round %d failed: %s\n", round,
                   record.status().ToString().c_str());
      return 1;
    }
    std::printf("%5d    %.4f      %.4f      %4zu/%zu      %3zu/%zu\n",
                record->round, record->collector_percentile,
                record->injection_percentile, record->benign_kept,
                record->benign_received, record->poison_kept,
                record->poison_received);
  }

  GameSummary summary = session.Finish();
  std::printf(
      "\nuntrimmed poison fraction: %.4f\nbenign loss fraction:      %.4f\n"
      "(the coupled dynamics converge: the adversary is pushed ~4%% below "
      "the nominal threshold,\n where its poison is barely distinguishable "
      "from honest data)\n",
      summary.UntrimmedPoisonFraction(), summary.BenignLossFraction());
  return 0;
}
