// Example: poisoning an LDP frequency oracle — the related-work setting
// (Section VII) that motivates the paper's game-theoretic defense.
//
// A population reports its favorite item through OUE under epsilon-LDP.
// 5% of reporters are attackers promoting a target item. We compare the
// blatant maximal-gain attack against the evasive input-manipulation
// attack, with and without a structural sanity trim on the reports.
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "ldp/frequency.h"

int main(int argc, char** argv) {
  using namespace itrim;
  double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  const size_t kDomain = 16;
  const size_t kHonest = 30000;
  const size_t kAttackers = 1500;
  const std::vector<size_t> kTargets = {15};  // the least popular item

  auto oracle_or = OueOracle::Make(kDomain, epsilon);
  if (!oracle_or.ok()) {
    std::fprintf(stderr, "%s\n", oracle_or.status().ToString().c_str());
    return 1;
  }
  const OueOracle& oracle = *oracle_or;

  // Zipf-like popularity.
  std::vector<double> truth(kDomain);
  double total = 0.0;
  for (size_t v = 0; v < kDomain; ++v) {
    truth[v] = 1.0 / static_cast<double>(v + 1);
    total += truth[v];
  }
  for (double& t : truth) t /= total;

  std::printf("OUE frequency estimation, domain=%zu, eps=%.1f, 5%% "
              "attackers promoting item %zu (true freq %.4f)\n\n",
              kDomain, epsilon, kTargets[0], truth[kTargets[0]]);
  std::printf("%-22s %18s %18s\n", "attack", "est. target freq",
              "after struct. trim");

  for (int kind = 0; kind < 3; ++kind) {
    Rng rng(7);
    std::unique_ptr<FrequencyAttack> attack;
    const char* label;
    if (kind == 0) {
      attack = nullptr;  // no attack
      label = "none";
    } else if (kind == 1) {
      // Forge 14 of the 16 bits: far beyond any honest report's bit count
      // (honest OUE reports average ~4.5 set bits at eps = 1).
      std::vector<size_t> wide;
      for (size_t t = 2; t < kDomain; ++t) wide.push_back(t);
      attack = std::make_unique<MaximalGainAttack>(wide);
      label = "maximal gain (wide)";
    } else {
      attack = std::make_unique<FrequencyInputManipulation>(kTargets);
      label = "input manipulation";
    }
    std::vector<std::vector<uint8_t>> reports;
    reports.reserve(kHonest + kAttackers);
    for (size_t i = 0; i < kHonest; ++i) {
      reports.push_back(oracle.Perturb(rng.Categorical(truth), &rng));
    }
    if (attack != nullptr) {
      for (size_t i = 0; i < kAttackers; ++i) {
        reports.push_back(attack->PoisonReport(oracle, &rng));
      }
    }
    auto estimate_with = [&](bool trimmed) {
      std::vector<char> keep(reports.size(), 1);
      if (trimmed) keep = TrimOueReports(reports, oracle);
      ReportAggregator agg(kDomain);
      for (size_t i = 0; i < reports.size(); ++i) {
        if (keep[i]) agg.Add(reports[i]);
      }
      return oracle.Estimate(agg.bit_counts(), agg.count())[kTargets[0]];
    };
    std::printf("%-22s %18.4f %18.4f\n", label, estimate_with(false),
                estimate_with(true));
  }
  std::printf(
      "\nthe structural trim removes only structurally impossible reports: "
      "it stops the wide\nforgery but is blind to protocol-compliant "
      "poison — the evasion gap the paper's\ninteractive trimming game "
      "addresses for numeric collection (see ldp_collection).\n");
  return 0;
}
