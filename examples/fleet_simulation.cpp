// Fleet quickstart: run many heterogeneous trimming games at once.
//
// A production collector rarely defends one stream — it defends thousands
// of tenants, each with its own data setting, defense scheme and attack
// intensity. SessionFleet shards those sessions across the thread pool and
// steps them in lockstep rounds, reducing per-round fleet aggregates
// (trim rate, poison acceptance, cross-tenant quantiles) as the streams
// advance. Results are bit-identical at any thread count.
//
// Here: 12 tenants mixing the three data settings (scalar, d-dimensional
// distance, LDP reports) and three defense schemes, stepped live with the
// fleet-wide aggregate printed per round.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "fleet/session_fleet.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"

int main() {
  using namespace itrim;

  // Shared read-only data sources, borrowed by the tenant specs.
  Rng rng(7);
  std::vector<double> pool;           // scalar tenants: values in [0, 1]
  for (int i = 0; i < 5000; ++i) pool.push_back(rng.Uniform());
  Dataset data = MakeControl(19, 80);  // distance tenants: synthetic control
  std::vector<double> population;      // LDP tenants: true values in [-1, 1]
  for (int i = 0; i < 4000; ++i) population.push_back(rng.Uniform(-1.0, 1.0));
  PiecewiseMechanism mechanism(/*epsilon=*/2.0);
  std::vector<std::unique_ptr<LdpAttack>> attacks;  // one per LDP tenant

  // 12 tenants: cycle data settings and defense schemes, vary the attack.
  const SchemeId defenses[] = {SchemeId::kElastic05, SchemeId::kTitfortat,
                               SchemeId::kBaselineStatic};
  std::vector<TenantSpec> specs;
  for (size_t i = 0; i < 12; ++i) {
    TenantSpec spec;
    spec.name = "tenant-" + std::to_string(i);
    spec.model = static_cast<TenantModelKind>(i % 3);
    spec.scheme = defenses[(i / 3) % 3];
    spec.game.round_size = 200;
    spec.game.bootstrap_size = 200;
    spec.game.attack_ratio = 0.1 + 0.05 * static_cast<double>(i % 4);
    switch (spec.model) {
      case TenantModelKind::kScalar:
        spec.scalar_pool = &pool;
        break;
      case TenantModelKind::kDistance:
        spec.dataset = &data;
        spec.game.round_mass_trimming = true;  // the ML-pipeline semantics
        break;
      case TenantModelKind::kLdp:
        spec.ldp_population = &population;
        spec.ldp_mechanism = &mechanism;
        attacks.push_back(std::make_unique<InputManipulationAttack>(1.0));
        spec.ldp_attack = attacks.back().get();
        break;
    }
    specs.push_back(spec);
  }

  FleetConfig config;
  config.rounds = 8;
  config.threads = 0;  // ITRIM_THREADS / hardware concurrency
  config.seed = 2024;  // every tenant derives its own stream from this

  SessionFleet fleet(config, specs);
  if (Status s = fleet.Bootstrap(); !s.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("round  received  kept   trim%%   poison-acc%%   "
              "tenant trim%% p10/p50/p90\n");
  for (int round = 1; round <= config.rounds; ++round) {
    auto agg = fleet.StepRound();
    if (!agg.ok()) {
      std::fprintf(stderr, "round %d failed: %s\n", round,
                   agg.status().ToString().c_str());
      return 1;
    }
    size_t received = agg->benign_received + agg->poison_received;
    size_t kept = agg->benign_kept + agg->poison_kept;
    std::printf("%5d  %8zu  %5zu  %5.1f%%       %5.1f%%      "
                "%5.1f / %4.1f / %4.1f\n",
                agg->round, received, kept, 100.0 * agg->trim_rate,
                100.0 * agg->poison_acceptance,
                100.0 * agg->tenant_trim_rate.p10,
                100.0 * agg->tenant_trim_rate.p50,
                100.0 * agg->tenant_trim_rate.p90);
  }

  FleetSummary summary = fleet.Finish();
  std::printf("\nacross %zu tenants (p10 / p50 / p90):\n",
              summary.tenants.size());
  std::printf("  untrimmed poison fraction  %.4f / %.4f / %.4f\n",
              summary.untrimmed_poison_fraction.p10,
              summary.untrimmed_poison_fraction.p50,
              summary.untrimmed_poison_fraction.p90);
  std::printf("  benign loss fraction       %.4f / %.4f / %.4f\n",
              summary.benign_loss_fraction.p10,
              summary.benign_loss_fraction.p50,
              summary.benign_loss_fraction.p90);
  std::printf("  poison survival rate       %.4f / %.4f / %.4f\n",
              summary.poison_survival_rate.p10,
              summary.poison_survival_rate.p50,
              summary.poison_survival_rate.p90);
  return 0;
}
