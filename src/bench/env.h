// Environment knobs shared by the bench binaries.
//
// Benches are sized through ITRIM_BENCH_* environment variables so one
// binary serves three regimes: the ctest --smoke entry, the PR-leg smoke
// perf gate, and the nightly full grid (which raises the knobs well past
// what a PR leg could afford). See src/bench/flags.h for the command-line
// side and README.md ("Benchmarking & perf telemetry") for the map.
#ifndef ITRIM_BENCH_ENV_H_
#define ITRIM_BENCH_ENV_H_

#include <cstdlib>
#include <string>

namespace itrim::bench {

/// \brief Integer knob from the environment with a default (e.g. repetition
/// counts: ITRIM_BENCH_REPS=100 reproduces the paper's averaging).
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

/// \brief Scale knob in (0, 1] from the environment.
inline double EnvScale(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  double v = std::atof(value);
  return v > 0.0 && v <= 1.0 ? v : fallback;
}

/// \brief String knob from the environment with a default.
inline std::string EnvString(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_ENV_H_
