// Bridges google-benchmark harnesses into the BENCH_<name>.json telemetry.
//
// bench_micro_core / bench_micro_ldp are BENCHMARK()-registered suites; the
// other benches write their JSON through BenchReporter directly. This
// header gives the gbench binaries the same contract without forking their
// benchmarks: RunGoogleBenchmarks() runs the suite with the normal console
// output and mirrors every finished run into a BenchReporter case
// (real time, iterations, items/s when the benchmark sets items
// processed), then writes BENCH_<name>.json.
//
// Header-only and included ONLY by the gbench translation units, so the
// itrim_bench library itself never links against google-benchmark (which
// is optional — those binaries are skipped when the package is missing).
#ifndef ITRIM_BENCH_GBENCH_BRIDGE_H_
#define ITRIM_BENCH_GBENCH_BRIDGE_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/reporter.h"

namespace itrim::bench {

/// \brief ConsoleReporter that also records every run into a BenchReporter.
class GBenchBridgeReporter : public benchmark::ConsoleReporter {
 public:
  explicit GBenchBridgeReporter(BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (RunFailed(run) || run.run_type != Run::RT_Iteration) continue;
      BenchCase& c = out_->AddCase(run.benchmark_name());
      c.Iterations(static_cast<uint64_t>(run.iterations));
      // real_accumulated_time is the measured loop's total wall seconds —
      // exactly the shared schema's wall_ms numerator.
      c.WallMs(run.real_accumulated_time * 1e3);
      c.Ops(static_cast<uint64_t>(run.iterations));
      for (const auto& [key, counter] : run.counters) {
        c.Counter(key, counter.value);
      }
      c.Counter("cpu_ms", run.cpu_accumulated_time * 1e3);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  // benchmark <= 1.7 exposes Run::error_occurred; 1.8+ replaced it with
  // skipped(). Probe with a requires-expression so the bridge compiles
  // against both (the dev container has 1.7.1, ubuntu-latest 24.04 ships
  // 1.8.x).
  template <typename R>
  static bool RunFailed(const R& run) {
    if constexpr (requires { run.error_occurred; }) {
      return run.error_occurred;
    } else if constexpr (requires { static_cast<bool>(run.skipped); }) {
      return static_cast<bool>(run.skipped);
    } else {
      return false;
    }
  }

  BenchReporter* out_;
};

/// \brief Drop-in BENCHMARK_MAIN() body with JSON telemetry.
inline int RunGoogleBenchmarks(const std::string& name, int argc,
                               char** argv) {
  BenchReporter reporter(name, argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  GBenchBridgeReporter bridge(&reporter);
  benchmark::RunSpecifiedBenchmarks(&bridge);
  benchmark::Shutdown();
  Status status = reporter.WriteJson();
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_GBENCH_BRIDGE_H_
