// Heap-allocation counting for benches and allocation-regression tests.
//
// Linking this translation unit (it is part of the itrim_bench library)
// replaces the global operator new/delete with counting forwarders to
// malloc/free. The counters are thread-local, so a test can bracket a
// region of its own thread and assert on exactly the allocations that
// region performed — concurrent pool workers never pollute the reading.
//
// This is how the zero-allocation contract of the streaming round hot path
// is *tested* rather than assumed: tests/game/zero_alloc_test.cc warms a
// session up, snapshots the counters, steps N more rounds and asserts the
// delta is zero; the bench binaries report the same counters per measured
// case into BENCH_<name>.json so the CI perf gate can hold the line.
//
// The forwarders add one thread-local increment per new/delete — far below
// malloc's own cost — and compose with ASan (whose malloc interceptor
// still sees every byte; our definitions simply win symbol resolution for
// the operator new family).
#ifndef ITRIM_BENCH_ALLOC_COUNTER_H_
#define ITRIM_BENCH_ALLOC_COUNTER_H_

#include <cstdint>

namespace itrim::bench {

/// \brief Monotonic counters of the calling thread's heap traffic since
/// thread start.
struct AllocCounts {
  uint64_t allocations = 0;    ///< operator new / new[] calls
  uint64_t deallocations = 0;  ///< operator delete / delete[] calls
  uint64_t bytes = 0;          ///< total bytes requested through new

  AllocCounts operator-(const AllocCounts& other) const {
    return {allocations - other.allocations,
            deallocations - other.deallocations, bytes - other.bytes};
  }
};

/// \brief Snapshot of the calling thread's counters (subtract two
/// snapshots to count a region).
AllocCounts ThreadAllocCounts();

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_ALLOC_COUNTER_H_
