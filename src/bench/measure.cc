#include "bench/measure.h"

#include <chrono>

#include "bench/env.h"

namespace itrim::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  double v = std::atof(value);
  return v >= 0.0 ? v : fallback;
}

}  // namespace

MeasureOptions MeasureOptions::FromEnv() {
  MeasureOptions options;
  options.warmup_iters = EnvInt("ITRIM_BENCH_WARMUP", options.warmup_iters);
  options.min_iters = EnvInt("ITRIM_BENCH_MIN_ITERS", options.min_iters);
  options.min_time_ms =
      EnvDouble("ITRIM_BENCH_MIN_TIME_MS", options.min_time_ms);
  options.repetitions =
      EnvInt("ITRIM_BENCH_REPETITIONS", options.repetitions);
  return options;
}

MeasureOptions MeasureOptions::Smoke() {
  MeasureOptions options;
  options.warmup_iters = 1;
  options.min_iters = 1;
  options.min_time_ms = 10.0;
  options.repetitions = 1;
  return options;
}

Measurement MeasureLoop(const MeasureOptions& options,
                        const std::function<void()>& body) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < options.warmup_iters; ++i) body();

  Measurement best;
  const int repetitions = options.repetitions < 1 ? 1 : options.repetitions;
  for (int rep = 0; rep < repetitions; ++rep) {
    Measurement m;
    AllocCounts before = ThreadAllocCounts();
    Clock::time_point start = Clock::now();
    do {
      body();
      ++m.iterations;
      m.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            start)
                      .count();
    } while (m.iterations < static_cast<uint64_t>(options.min_iters) ||
             m.wall_ms < options.min_time_ms);
    m.allocs = ThreadAllocCounts() - before;
    // Best = highest throughput (lowest time per iteration).
    if (best.iterations == 0 ||
        m.wall_ms * static_cast<double>(best.iterations) <
            best.wall_ms * static_cast<double>(m.iterations)) {
      best = m;
    }
  }
  return best;
}

}  // namespace itrim::bench
