#include "bench/reporter.h"

#include <cstdio>
#include <cstring>
#include <ctime>

#include "bench/env.h"
#include "common/thread_pool.h"

// The environment block (POSIX); used to capture every ITRIM_* knob so a
// JSON report is self-describing about how the bench was sized.
extern char** environ;

namespace itrim::bench {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[40];
  // %.17g round-trips doubles; trim to a plain integer rendering when exact.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string UtcTimestamp() {
  std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

const char* BuildType() {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

}  // namespace

BenchCase& BenchCase::From(const Measurement& m, uint64_t ops_per_iter) {
  iterations = m.iterations;
  ops = m.iterations * ops_per_iter;
  wall_ms = m.wall_ms;
  allocations = m.allocs.allocations;
  has_allocations = true;
  return *this;
}

BenchReporter::BenchReporter(std::string name, BenchFlags flags)
    : name_(std::move(name)), flags_(std::move(flags)) {}

BenchReporter::BenchReporter(std::string name, int argc, char** argv)
    : BenchReporter(std::move(name), ParseFlags(argc, argv)) {}

BenchCase& BenchReporter::AddCase(const std::string& case_name) {
  cases_.emplace_back();
  cases_.back().name = case_name;
  return cases_.back();
}

BenchCase& BenchReporter::MeasureCase(const std::string& case_name,
                                      const MeasureOptions& options,
                                      uint64_t ops_per_iter,
                                      const std::function<void()>& body) {
  Measurement m = MeasureLoop(options, body);
  return AddCase(case_name).From(m, ops_per_iter);
}

std::string BenchReporter::output_path() const {
  std::string dir = EnvString("ITRIM_BENCH_OUT_DIR", ".");
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + "BENCH_" + name_ + ".json";
}

std::string BenchReporter::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"bench\": \"" + JsonEscape(name_) + "\",\n";
  out += "  \"timestamp_utc\": \"" + UtcTimestamp() + "\",\n";
  out += "  \"context\": {\n";
  out += "    \"compiler\": \"" + JsonEscape(__VERSION__) + "\",\n";
  out += std::string("    \"build_type\": \"") + BuildType() + "\",\n";
  out += "    \"hardware_concurrency\": " +
         JsonNumber(static_cast<double>(DefaultNumThreads())) + ",\n";
  out += "    \"jobs\": " +
         JsonNumber(static_cast<double>(EffectiveJobs(flags_))) + ",\n";
  out += std::string("    \"smoke\": ") + (flags_.smoke ? "true" : "false") +
         ",\n";
  out += "    \"argv\": [";
  for (size_t i = 0; i < flags_.argv.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(flags_.argv[i]) + "\"";
  }
  out += "],\n";
  out += "    \"env\": {";
  bool first_env = true;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    if (std::strncmp(*e, "ITRIM_", 6) != 0) continue;
    const char* eq = std::strchr(*e, '=');
    if (eq == nullptr) continue;
    if (!first_env) out += ", ";
    first_env = false;
    out += "\"" + JsonEscape(std::string(*e, static_cast<size_t>(eq - *e))) +
           "\": \"" + JsonEscape(eq + 1) + "\"";
  }
  out += "}\n";
  out += "  },\n";
  out += "  \"cases\": [\n";
  for (size_t i = 0; i < cases_.size(); ++i) {
    const BenchCase& c = cases_[i];
    out += "    {\n";
    out += "      \"name\": \"" + JsonEscape(c.name) + "\",\n";
    out += "      \"iterations\": " +
           JsonNumber(static_cast<double>(c.iterations)) + ",\n";
    const uint64_t ops = c.ops > 0 ? c.ops : c.iterations;
    out += "      \"ops\": " + JsonNumber(static_cast<double>(ops)) + ",\n";
    out += "      \"wall_ms\": " + JsonNumber(c.wall_ms);
    if (ops > 0 && c.wall_ms > 0.0) {
      const double ops_d = static_cast<double>(ops);
      out += ",\n      \"ns_per_op\": " +
             JsonNumber(c.wall_ms * 1e6 / ops_d) +
             ",\n      \"ops_per_sec\": " +
             JsonNumber(ops_d / (c.wall_ms / 1e3));
    }
    if (c.has_allocations) {
      out += ",\n      \"allocations\": " +
             JsonNumber(static_cast<double>(c.allocations));
      if (ops > 0) {
        out += ",\n      \"allocs_per_op\": " +
               JsonNumber(static_cast<double>(c.allocations) /
                          static_cast<double>(ops));
      }
    }
    if (!c.counters.empty()) {
      out += ",\n      \"counters\": {";
      bool first = true;
      for (const auto& [key, value] : c.counters) {
        if (!first) out += ", ";
        first = false;
        out += "\"" + JsonEscape(key) + "\": " + JsonNumber(value);
      }
      out += "}";
    }
    if (!c.histograms.empty()) {
      out += ",\n      \"histograms\": {\n";
      bool first = true;
      for (const auto& [key, h] : c.histograms) {
        if (!first) out += ",\n";
        first = false;
        out += "        \"" + JsonEscape(key) + "\": {\"bounds\": [";
        for (size_t b = 0; b < h.bounds.size(); ++b) {
          if (b > 0) out += ", ";
          out += JsonNumber(h.bounds[b]);
        }
        out += "], \"counts\": [";
        for (size_t b = 0; b < h.counts.size(); ++b) {
          if (b > 0) out += ", ";
          out += JsonNumber(static_cast<double>(h.counts[b]));
        }
        out += "], \"sum\": " + JsonNumber(h.sum) +
               ", \"count\": " + JsonNumber(static_cast<double>(h.count)) +
               "}";
      }
      out += "\n      }";
    }
    out += "\n    }";
    if (i + 1 < cases_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

Status BenchReporter::WriteJson() const {
  const std::string path = output_path();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  std::fprintf(stderr, "bench telemetry: %s\n", path.c_str());
  return Status::OK();
}

}  // namespace itrim::bench
