// Warmup / min-time / repetition control for measured bench cases.
//
// One shared loop discipline for benches whose timed body is re-runnable
// (bench_micro_parallel, BenchReporter::MeasureCase): run the body a few
// warmup iterations (populating caches, scratch capacity and the branch
// predictor — exactly the steady state the zero-allocation contract is
// defined over), then keep iterating until both a minimum iteration count
// and a minimum wall time are met. Repetitions re-run the whole
// measurement and keep the best throughput (the standard noise floor
// estimator on shared machines). Benches that time a stateful
// non-repeatable phase (a fleet stream, an interleaved board workload)
// keep their own single-shot timers and feed the reporter directly.
#ifndef ITRIM_BENCH_MEASURE_H_
#define ITRIM_BENCH_MEASURE_H_

#include <cstdint>
#include <functional>

#include "bench/alloc_counter.h"

namespace itrim::bench {

/// \brief Knobs of one measurement; FromEnv() reads the ITRIM_BENCH_*
/// overrides so the nightly grid can deepen them without a rebuild.
struct MeasureOptions {
  int warmup_iters = 2;      ///< un-timed body runs before measuring
  int min_iters = 3;         ///< timed loop floor
  double min_time_ms = 50.0; ///< timed loop runs until this much wall time
  int repetitions = 1;       ///< measurements taken; best throughput wins

  /// \brief Defaults overridden by ITRIM_BENCH_WARMUP, ITRIM_BENCH_MIN_ITERS,
  /// ITRIM_BENCH_MIN_TIME_MS and ITRIM_BENCH_REPETITIONS.
  static MeasureOptions FromEnv();

  /// \brief Smoke preset: one warmup, one repetition, 10 ms floor — the
  /// shape the ctest entries and the CI perf gate can afford.
  static MeasureOptions Smoke();
};

/// \brief Result of one measured case.
struct Measurement {
  uint64_t iterations = 0;  ///< body runs inside the best repetition
  double wall_ms = 0.0;     ///< wall time of the best repetition
  /// Heap traffic of the best repetition's timed region (calling thread).
  AllocCounts allocs;
};

/// \brief Runs `body` under the given discipline and returns the best
/// repetition. The body should perform one unit of work per call.
Measurement MeasureLoop(const MeasureOptions& options,
                        const std::function<void()>& body);

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_MEASURE_H_
