#include "bench/alloc_counter.h"

#include <cstdlib>
#include <new>

namespace itrim::bench {
namespace {

thread_local AllocCounts t_counts;

void* CountedAlloc(std::size_t size) {
  ++t_counts.allocations;
  t_counts.bytes += size;
  // malloc(0) may return null legitimately; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  ++t_counts.allocations;
  t_counts.bytes += size;
  void* p = nullptr;
  // posix_memalign (unlike aligned_alloc) accepts any size; alignment must
  // be a power of two >= sizeof(void*), which align_val_t guarantees only
  // partially — round small alignments up.
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (posix_memalign(&p, alignment, size == 0 ? 1 : size) != 0) return nullptr;
  return p;
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  ++t_counts.deallocations;
  std::free(p);
}

}  // namespace

AllocCounts ThreadAllocCounts() { return t_counts; }

}  // namespace itrim::bench

// Global operator new/delete replacements ([new.delete.single] allows a
// program to define these); every allocation in a binary linking this TU is
// counted. Kept outside any namespace by requirement.

void* operator new(std::size_t size) {
  void* p = itrim::bench::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = itrim::bench::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return itrim::bench::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return itrim::bench::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = itrim::bench::CountedAlignedAlloc(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = itrim::bench::CountedAlignedAlloc(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return itrim::bench::CountedAlignedAlloc(size,
                                           static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return itrim::bench::CountedAlignedAlloc(size,
                                           static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { itrim::bench::CountedFree(p); }
void operator delete[](void* p) noexcept { itrim::bench::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept {
  itrim::bench::CountedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  itrim::bench::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  itrim::bench::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  itrim::bench::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  itrim::bench::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  itrim::bench::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  itrim::bench::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  itrim::bench::CountedFree(p);
}
