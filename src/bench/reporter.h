// Structured bench telemetry: every bench binary emits BENCH_<name>.json.
//
// The perf trajectory of this repo is tracked PR-over-PR from these files:
// the CI smoke leg runs each bench with --smoke, uploads the JSON as an
// artifact and diffs the fleet numbers against bench/baselines/ (see
// tools/bench_gate.py); the nightly workflow runs the full grid and
// publishes the JSON for trend plots. Console tables stay human-facing and
// unchanged — the JSON is the machine-facing contract.
//
// Schema (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",                  // BENCH_<name>.json
//     "timestamp_utc": "YYYY-MM-DDThh:mm:ssZ",
//     "context": {
//       "compiler": "...", "build_type": "Release|Debug",
//       "hardware_concurrency": N, "jobs": N, "smoke": bool,
//       "argv": [...],
//       "env": { "ITRIM_*": "..." }       // every set ITRIM_* variable
//     },
//     "cases": [
//       {
//         "name": "...",
//         "iterations": N,                // timed loop runs
//         "ops": N,                       // work items across the loop
//         "wall_ms": x,
//         "ns_per_op": x, "ops_per_sec": x,   // derived from ops/wall
//         "allocations": N, "allocs_per_op": x,  // heap traffic (timed)
//         "counters": { "<k>": x, ... },  // bench-specific extras
//         "histograms": {                  // optional distributions
//           "<k>": { "bounds": [...], "counts": [...],  // len(bounds)+1
//                    "sum": x, "count": N }
//         }
//       }
//     ]
//   }
//
// A case's `ops` is what its throughput is denominated in (tenant-rounds,
// board operations, experiment arms, ...) and is named in a counter when
// ambiguous. Cases that only gate correctness can be recorded with
// AddCase(...).Ok() — they appear with iterations = 0 and no derived rates.
#ifndef ITRIM_BENCH_REPORTER_H_
#define ITRIM_BENCH_REPORTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench/flags.h"
#include "bench/measure.h"
#include "common/status.h"

namespace itrim::bench {

/// \brief One histogram attached to a case: ascending bucket upper bounds
/// plus an implicit overflow bucket, so `counts` has `bounds.size() + 1`
/// entries and `count == sum(counts)`. tools/bench_gate.py validates these
/// invariants on every report it gates.
struct BenchHistogram {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  double sum = 0.0;
  uint64_t count = 0;
};

/// \brief One reported case; fields are set through the fluent setters so
/// call sites read as a schema.
struct BenchCase {
  std::string name;
  uint64_t iterations = 0;
  uint64_t ops = 0;
  double wall_ms = 0.0;
  uint64_t allocations = 0;
  bool has_allocations = false;
  std::map<std::string, double> counters;
  std::map<std::string, BenchHistogram> histograms;

  BenchCase& Iterations(uint64_t n) { iterations = n; return *this; }
  /// Total work items the timed region processed (throughput denominator).
  BenchCase& Ops(uint64_t n) { ops = n; return *this; }
  BenchCase& WallMs(double ms) { wall_ms = ms; return *this; }
  BenchCase& Allocations(uint64_t n) {
    allocations = n;
    has_allocations = true;
    return *this;
  }
  BenchCase& Counter(const std::string& key, double value) {
    counters[key] = value;
    return *this;
  }
  /// \brief Attaches a latency/size distribution to the case.
  BenchCase& Histogram(const std::string& key, BenchHistogram h) {
    histograms[key] = std::move(h);
    return *this;
  }
  /// \brief Adopts a MeasureLoop result wholesale (`ops_per_iter` work
  /// items per body run).
  BenchCase& From(const Measurement& m, uint64_t ops_per_iter = 1);
  /// \brief Marks a correctness-only case (no timing); records pass = 1.
  BenchCase& Ok() { return Counter("pass", 1.0); }
};

/// \brief Collects cases and writes BENCH_<name>.json.
///
/// The output directory is ITRIM_BENCH_OUT_DIR when set, else the working
/// directory. Construction captures the context (flags, compiler, ITRIM_*
/// environment); WriteJson() is explicit so a failed gate can exit without
/// publishing misleading numbers.
class BenchReporter {
 public:
  BenchReporter(std::string name, BenchFlags flags);
  BenchReporter(std::string name, int argc, char** argv);

  /// \brief Appends a case; the returned reference is valid until the next
  /// AddCase call.
  BenchCase& AddCase(const std::string& case_name);

  /// \brief Measures `body` under `options` and records one case of
  /// `ops_per_iter` work items per body run.
  BenchCase& MeasureCase(const std::string& case_name,
                         const MeasureOptions& options, uint64_t ops_per_iter,
                         const std::function<void()>& body);

  const BenchFlags& flags() const { return flags_; }
  const std::vector<BenchCase>& cases() const { return cases_; }

  /// \brief Path WriteJson() will write to.
  std::string output_path() const;

  /// \brief Serializes the report (pretty-printed, stable key order).
  std::string ToJson() const;

  /// \brief Writes output_path(); surfaces I/O failures as a Status.
  Status WriteJson() const;

 private:
  std::string name_;
  BenchFlags flags_;
  std::vector<BenchCase> cases_;
};

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_REPORTER_H_
