// Command-line flags shared by every bench binary.
//
// Before this library each bench main hand-parsed `--jobs` and `--smoke`;
// the copies had started to drift (some accepted only `--jobs=N`, some only
// the two-token form). ParseFlags is the one implementation, and
// EffectiveJobs pins the precedence contract down in one place:
//
//   --jobs N / --jobs=N  >  ITRIM_THREADS  >  hardware concurrency
//
// (tests/bench/bench_flags_test.cc is the regression test for that order).
// Thread count never changes results anywhere in the library — only
// wall-clock (see common/thread_pool.h) — so the flags feed timing and the
// JSON context, not correctness.
#ifndef ITRIM_BENCH_FLAGS_H_
#define ITRIM_BENCH_FLAGS_H_

#include <string>
#include <vector>

namespace itrim::bench {

/// \brief Parsed command line of a bench binary.
struct BenchFlags {
  /// True when `--smoke` is present: run the correctness gate plus a
  /// scaled-down timing pass (the shape ctest and the CI perf gate run).
  bool smoke = false;
  /// Value of `--jobs N` / `--jobs=N`; 0 when absent (meaning: defer to
  /// ITRIM_THREADS, then hardware concurrency).
  int jobs = 0;
  /// The raw argv (argv[0] included), captured for the JSON context.
  std::vector<std::string> argv;
};

/// \brief Parses the shared bench flags; unknown arguments are ignored so
/// binaries can layer their own on top.
BenchFlags ParseFlags(int argc, char** argv);

/// \brief Resolves the flag/environment/hardware precedence into the
/// thread count a bench should report and use: `flags.jobs` when the flag
/// was given, else ITRIM_THREADS when set to a positive integer, else the
/// hardware concurrency (never less than 1). Config structs whose
/// `threads = 0` already means "resolve downstream" take `flags.jobs`
/// verbatim instead.
int EffectiveJobs(const BenchFlags& flags);

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_FLAGS_H_
