#include "bench/flags.h"

#include <cstdlib>
#include <cstring>

#include "common/thread_pool.h"

namespace itrim::bench {

BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  flags.argv.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) flags.argv.emplace_back(argv[i]);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      int n = std::atoi(arg + 7);
      if (n > 0) flags.jobs = n;
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      int n = std::atoi(argv[i + 1]);
      if (n > 0) {
        flags.jobs = n;
        ++i;
      }
    }
  }
  return flags;
}

int EffectiveJobs(const BenchFlags& flags) {
  if (flags.jobs > 0) return flags.jobs;
  // DefaultNumThreads owns the ITRIM_THREADS-then-hardware tail of the
  // precedence chain; benches and library share one resolution.
  return DefaultNumThreads();
}

}  // namespace itrim::bench
