// ScrapeSampler: an optional background thread that scrapes a registry on a
// fixed period and hands each snapshot to a callback (push-gateway writers,
// rolling log files, test probes). It only ever calls
// MetricsRegistry::Scrape() — reads of already-published atomics — so it
// never touches session/fleet state and cannot perturb determinism.
#ifndef ITRIM_OBS_SAMPLER_H_
#define ITRIM_OBS_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace itrim::obs {

class ScrapeSampler {
 public:
  using Callback = std::function<void(const MetricsSnapshot&)>;

  /// \brief Samples `registry` every `period` and invokes `callback` with
  /// the snapshot (on the sampler thread). The registry must outlive Stop().
  ScrapeSampler(const MetricsRegistry* registry,
                std::chrono::milliseconds period, Callback callback);
  ~ScrapeSampler();

  ScrapeSampler(const ScrapeSampler&) = delete;
  ScrapeSampler& operator=(const ScrapeSampler&) = delete;

  /// \brief Starts the sampling thread; FailedPrecondition when already
  /// running or InvalidArgument for a null registry/callback.
  Status Start();

  /// \brief Stops and joins; takes one final sample before exiting so short
  /// runs still observe their tail. Idempotent.
  void Stop();

  bool running() const;

  /// \brief Snapshots taken so far (including the final flush sample).
  uint64_t samples() const;

 private:
  void Loop();

  const MetricsRegistry* registry_;
  std::chrono::milliseconds period_;
  Callback callback_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  uint64_t samples_ = 0;
};

}  // namespace itrim::obs

#endif  // ITRIM_OBS_SAMPLER_H_
