// Deterministic-safe metrics: a fixed compile-time catalog of counters,
// gauges and fixed-bucket histograms, recorded into preallocated per-shard
// slots of relaxed atomics and merged only at scrape time.
//
// Contract with the rest of the engine:
//   - Recording never allocates, never locks, and never reads or writes any
//     session/fleet state: a slot is a flat array of std::atomic words and
//     Inc/Set/Observe are single relaxed RMW/stores. The zero-allocation
//     steady-state proof (tests/game/zero_alloc_test.cc) runs with metrics
//     attached.
//   - Observability never perturbs computation or RNG, so every bit-identity
//     invariant (thread counts, kernel variants, board backends, checkpoint,
//     hibernation) holds with recording on or off. Enforced by bench_obs.
//   - The whole layer compiles out behind ITRIM_OBS=0 (CMake -DITRIM_OBS=OFF):
//     recording methods become empty inlines and the atomic storage vanishes;
//     call sites additionally guard with `if constexpr (obs::kEnabled)` so a
//     disabled build carries not even the null checks.
//
// Registration (MetricsRegistry::AddSlot) and Scrape() are setup/control-plane
// operations: they take a mutex and may allocate, and are safe to run
// concurrently with hot-path recording (the scrape reads the same atomics).
#ifndef ITRIM_OBS_METRICS_H_
#define ITRIM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#ifndef ITRIM_OBS
#define ITRIM_OBS 1
#endif

namespace itrim::obs {

inline constexpr bool kEnabled = (ITRIM_OBS != 0);

// ---------------------------------------------------------------------------
// Catalog. X-macros keep the enum, the Prometheus name and the help string in
// one place; adding a metric is one line here plus the recording call.
// Prometheus series names are prefixed `itrim_` (and `_total` for counters)
// at export time.
// ---------------------------------------------------------------------------

#define ITRIM_OBS_COUNTERS(X)                                                  \
  X(kIngestEventsAccepted, "ingest_events_accepted",                           \
    "Wire events admitted into a shard queue")                                 \
  X(kIngestEventsRejected, "ingest_events_rejected",                           \
    "Wire events rejected before enqueue (bad frame, unknown tenant, stop)")   \
  X(kIngestReportsEnqueued, "ingest_reports_enqueued",                         \
    "Reports admitted into tenant lanes after rate limiting")                  \
  X(kIngestReportsShed, "ingest_reports_shed",                                 \
    "Reports dropped by the per-tenant token-bucket rate limiter")             \
  X(kIngestRoundsPlayed, "ingest_rounds_played",                               \
    "Game rounds stepped by ingest workers")                                   \
  X(kIngestHibernations, "ingest_hibernations",                                \
    "Tenants hibernated to their checkpoints by the LRU residency cap")        \
  X(kIngestRehydrations, "ingest_rehydrations",                                \
    "Hibernated tenants restored on a fresh arrival")                          \
  X(kIngestBackpressureBlocks, "ingest_backpressure_blocks",                   \
    "Blocking Submit calls that found their shard queue full")                 \
  X(kIngestBatchesPopped, "ingest_batches_popped",                             \
    "PopBatch calls that returned at least one event")                         \
  X(kSessionRoundsPlayed, "session_rounds_played",                             \
    "Rounds committed by instrumented trimming sessions")                      \
  X(kSessionBenignReceived, "session_benign_received",                         \
    "Benign observations received by instrumented sessions")                   \
  X(kSessionPoisonReceived, "session_poison_received",                         \
    "Poison observations received by instrumented sessions")                   \
  X(kSessionBenignKept, "session_benign_kept",                                 \
    "Benign observations surviving the trim")                                  \
  X(kSessionPoisonKept, "session_poison_kept",                                 \
    "Poison observations accepted past the trim (attacker payoff)")            \
  X(kSessionObservationsTrimmed, "session_observations_trimmed",               \
    "Observations removed by trim decisions")                                  \
  X(kSessionReferenceRefits, "session_reference_refits",                       \
    "Rounds in which the reference policy refit its model")                    \
  X(kSessionRefitIterations, "session_refit_iterations",                       \
    "Total reference-model refit iterations (inner trim-refit loops)")         \
  X(kPoolTasksExecuted, "pool_tasks_executed",                                 \
    "Tasks executed by instrumented thread-pool workers")                      \
  X(kPoolIdleNanos, "pool_idle_nanos",                                         \
    "Nanoseconds instrumented pool workers spent parked waiting for work")

#define ITRIM_OBS_GAUGES(X)                                                    \
  X(kIngestQueueDepth, "ingest_queue_depth",                                   \
    "Events submitted but not yet processed (computed at scrape time)")        \
  X(kIngestResidentTenants, "ingest_resident_tenants",                         \
    "Tenants currently resident (not hibernated)")                             \
  X(kFleetRound, "fleet_round", "Last lockstep round index played")            \
  X(kFleetTrimRateP10, "fleet_trim_rate_p10",                                  \
    "Tenant-quantile p10 of the last round's trim rate")                       \
  X(kFleetTrimRateP50, "fleet_trim_rate_p50",                                  \
    "Tenant-quantile p50 of the last round's trim rate")                       \
  X(kFleetTrimRateP90, "fleet_trim_rate_p90",                                  \
    "Tenant-quantile p90 of the last round's trim rate")                       \
  X(kFleetPoisonAcceptP10, "fleet_poison_acceptance_p10",                      \
    "Tenant-quantile p10 of the last round's poison acceptance")               \
  X(kFleetPoisonAcceptP50, "fleet_poison_acceptance_p50",                      \
    "Tenant-quantile p50 of the last round's poison acceptance")               \
  X(kFleetPoisonAcceptP90, "fleet_poison_acceptance_p90",                      \
    "Tenant-quantile p90 of the last round's poison acceptance")               \
  X(kFleetQualityP10, "fleet_quality_p10",                                     \
    "Tenant-quantile p10 of the last round's collection quality")              \
  X(kFleetQualityP50, "fleet_quality_p50",                                     \
    "Tenant-quantile p50 of the last round's collection quality")              \
  X(kFleetQualityP90, "fleet_quality_p90",                                     \
    "Tenant-quantile p90 of the last round's collection quality")              \
  X(kMlEpsHat, "ml_eps_hat",                                                   \
    "Last iTrim contamination estimate (eps_hat) recorded by a defense run")

#define ITRIM_OBS_HISTOGRAMS(X)                                                \
  X(kIngestSubmitLatencyUs, "ingest_submit_latency_us",                        \
    "Producer-side Submit latency (microseconds; sampled 1-in-32 so the "      \
    "clock reads stay off the fast path)", kLatencyUsBounds)                   \
  X(kIngestPopBatchSize, "ingest_pop_batch_size",                              \
    "Events per non-empty PopBatch (arrival coalescing)", kBatchBounds)        \
  X(kIngestRoundWallUs, "ingest_round_wall_us",                                \
    "Wall time of one coalesced tenant round in an ingest worker "             \
    "(microseconds; sampled 1-in-4 per lane)", kLatencyUsBounds)               \
  X(kFleetRoundWallUs, "fleet_round_wall_us",                                  \
    "Wall time of one lockstep fleet round (microseconds)", kRoundUsBounds)    \
  X(kPoolTaskUs, "pool_task_us",                                               \
    "Thread-pool task execution time (microseconds)", kLatencyUsBounds)

enum class Counter : int {
#define ITRIM_OBS_ENUM(sym, name, help) sym,
  ITRIM_OBS_COUNTERS(ITRIM_OBS_ENUM)
#undef ITRIM_OBS_ENUM
      kNumCounters,
};

enum class Gauge : int {
#define ITRIM_OBS_ENUM(sym, name, help) sym,
  ITRIM_OBS_GAUGES(ITRIM_OBS_ENUM)
#undef ITRIM_OBS_ENUM
      kNumGauges,
};

enum class Histogram : int {
#define ITRIM_OBS_ENUM(sym, name, help, bounds) sym,
  ITRIM_OBS_HISTOGRAMS(ITRIM_OBS_ENUM)
#undef ITRIM_OBS_ENUM
      kNumHistograms,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kNumCounters);
inline constexpr int kNumGauges = static_cast<int>(Gauge::kNumGauges);
inline constexpr int kNumHistograms =
    static_cast<int>(Histogram::kNumHistograms);

// Largest bucket-bound list in the catalog; every histogram stores
// kMaxBuckets+1 counts (the last is the +Inf overflow bucket) so slots stay
// fixed-size flat arrays.
inline constexpr int kMaxBuckets = 12;

struct CounterInfo {
  const char* name;
  const char* help;
};
struct GaugeInfo {
  const char* name;
  const char* help;
};
struct HistogramInfo {
  const char* name;
  const char* help;
  std::span<const double> bounds;  // ascending upper bounds, +Inf implied
};

const CounterInfo& MetaOf(Counter c);
const GaugeInfo& MetaOf(Gauge g);
const HistogramInfo& MetaOf(Histogram h);

// ---------------------------------------------------------------------------
// MetricSlot: one writer domain's storage (a shard, the service, a pool...).
// All methods below are hot-path safe: wait-free single relaxed atomic ops,
// no allocation. Slots are created by (and owned by) a MetricsRegistry.
// ---------------------------------------------------------------------------
class MetricSlot {
 public:
  void Inc(Counter c, uint64_t n = 1) {
#if ITRIM_OBS
    counters_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
#else
    (void)c;
    (void)n;
#endif
  }

  void Set(Gauge g, double v) {
#if ITRIM_OBS
    gauges_[static_cast<int>(g)].store(v, std::memory_order_relaxed);
#else
    (void)g;
    (void)v;
#endif
  }

  void Observe(Histogram h, double v) {
#if ITRIM_OBS
    const HistogramInfo& info = MetaOf(h);
    int bucket = 0;
    const int n = static_cast<int>(info.bounds.size());
    while (bucket < n && v > info.bounds[bucket]) ++bucket;
    HistogramCells& cells = histograms_[static_cast<int>(h)];
    cells.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    cells.count.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> (C++20); libstdc++/libc++ lower it to a CAS
    // loop, which is still lock-free and allocation-free.
    cells.sum.fetch_add(v, std::memory_order_relaxed);
#else
    (void)h;
    (void)v;
#endif
  }

  uint64_t Get(Counter c) const {
#if ITRIM_OBS
    return counters_[static_cast<int>(c)].load(std::memory_order_relaxed);
#else
    (void)c;
    return 0;
#endif
  }

  double Get(Gauge g) const {
#if ITRIM_OBS
    return gauges_[static_cast<int>(g)].load(std::memory_order_relaxed);
#else
    (void)g;
    return 0.0;
#endif
  }

  const std::string& label() const { return label_; }

 private:
  friend class MetricsRegistry;
  explicit MetricSlot(std::string label) : label_(std::move(label)) {}

  std::string label_;
#if ITRIM_OBS
  struct HistogramCells {
    std::array<std::atomic<uint64_t>, kMaxBuckets + 1> counts{};
    std::atomic<double> sum{0.0};
    std::atomic<uint64_t> count{0};
  };
  std::array<std::atomic<uint64_t>, kNumCounters> counters_{};
  std::array<std::atomic<double>, kNumGauges> gauges_{};
  std::array<HistogramCells, kNumHistograms> histograms_{};
#endif
};

// ---------------------------------------------------------------------------
// Scrape snapshot: plain values, merged and per-slot views. Building one
// allocates; that is fine, Scrape() is control-plane.
// ---------------------------------------------------------------------------
struct HistogramValue {
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries (last = +Inf)
  double sum = 0.0;
  uint64_t count = 0;
};

struct SlotValues {
  std::string label;  // "" for the merged view
  std::array<uint64_t, kNumCounters> counters{};
  std::array<double, kNumGauges> gauges{};
  std::vector<HistogramValue> histograms;  // kNumHistograms entries
};

struct MetricsSnapshot {
  SlotValues merged;              // counters/histograms summed, gauges summed
  std::vector<SlotValues> slots;  // one per registered slot, in AddSlot order
  // Build/deploy identity (kernel variant, board backend, ...), exported as
  // an `itrim_build_info{...} 1` series.
  std::vector<std::pair<std::string, std::string>> info;
};

// ---------------------------------------------------------------------------
// MetricsRegistry: owns slots, hands out stable pointers, merges on Scrape.
// AddSlot/SetInfo/Scrape serialize on an internal mutex; recording into
// already-created slots never touches it.
// ---------------------------------------------------------------------------
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Creates a new slot labeled e.g. {"shard", "3"}. The returned pointer is
  // owned by the registry and stable for its lifetime.
  MetricSlot* AddSlot(std::string label);

  // Attaches a build/deploy identity pair ("kernel_variant", "avx2"), merged
  // into every snapshot. Last write per key wins.
  void SetInfo(const std::string& key, const std::string& value);

  MetricsSnapshot Scrape() const;

  size_t num_slots() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MetricSlot>> slots_;
  std::vector<std::pair<std::string, std::string>> info_;
};

// Monotonic nanosecond clock used by every obs timestamp (trace events,
// latency histograms). Never feeds back into game state.
int64_t MonotonicNowNs();

}  // namespace itrim::obs

#endif  // ITRIM_OBS_METRICS_H_
