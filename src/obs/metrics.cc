#include "obs/metrics.h"

#include <chrono>

namespace itrim::obs {
namespace {

// Bucket bounds (ascending upper edges; +Inf is implicit). Sized for the
// engine's real scales: sub-microsecond submits, ~256-event batches,
// millisecond fleet rounds. Each list must fit kMaxBuckets.
constexpr double kLatencyUsBounds[] = {0.5, 1,   2,    5,    10,   25,
                                       50,  100, 1000, 1e4,  1e5,  1e6};
constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
constexpr double kRoundUsBounds[] = {10,  25,  50,   100,  250,  500,
                                    1000, 2500, 5000, 1e4,  1e5,  1e6};

constexpr CounterInfo kCounterInfo[] = {
#define ITRIM_OBS_ROW(sym, name, help) {name, help},
    ITRIM_OBS_COUNTERS(ITRIM_OBS_ROW)
#undef ITRIM_OBS_ROW
};
constexpr GaugeInfo kGaugeInfo[] = {
#define ITRIM_OBS_ROW(sym, name, help) {name, help},
    ITRIM_OBS_GAUGES(ITRIM_OBS_ROW)
#undef ITRIM_OBS_ROW
};
const HistogramInfo kHistogramInfo[] = {
#define ITRIM_OBS_ROW(sym, name, help, bounds) {name, help, bounds},
    ITRIM_OBS_HISTOGRAMS(ITRIM_OBS_ROW)
#undef ITRIM_OBS_ROW
};

static_assert(std::size(kCounterInfo) == kNumCounters);
static_assert(std::size(kGaugeInfo) == kNumGauges);
static_assert(std::size(kHistogramInfo) == kNumHistograms);
static_assert(std::size(kLatencyUsBounds) <= kMaxBuckets);
static_assert(std::size(kBatchBounds) <= kMaxBuckets);
static_assert(std::size(kRoundUsBounds) <= kMaxBuckets);

}  // namespace

const CounterInfo& MetaOf(Counter c) {
  return kCounterInfo[static_cast<int>(c)];
}
const GaugeInfo& MetaOf(Gauge g) { return kGaugeInfo[static_cast<int>(g)]; }
const HistogramInfo& MetaOf(Histogram h) {
  return kHistogramInfo[static_cast<int>(h)];
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricSlot* MetricsRegistry::AddSlot(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(
      std::unique_ptr<MetricSlot>(new MetricSlot(std::move(label))));
  return slots_.back().get();
}

void MetricsRegistry::SetInfo(const std::string& key,
                              const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : info_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  info_.emplace_back(key, value);
}

size_t MetricsRegistry::num_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

namespace {

SlotValues ReadSlot(const MetricSlot& slot) {
  SlotValues out;
  out.label = slot.label();
  for (int c = 0; c < kNumCounters; ++c) {
    out.counters[c] = slot.Get(static_cast<Counter>(c));
  }
  for (int g = 0; g < kNumGauges; ++g) {
    out.gauges[g] = slot.Get(static_cast<Gauge>(g));
  }
  out.histograms.resize(kNumHistograms);
  for (int h = 0; h < kNumHistograms; ++h) {
    const HistogramInfo& info = MetaOf(static_cast<Histogram>(h));
    out.histograms[h].counts.assign(info.bounds.size() + 1, 0);
    // Histogram cells are private to MetricSlot; Scrape() (a friend via
    // MetricsRegistry membership) fills them in below.
  }
  return out;
}

}  // namespace

MetricsSnapshot MetricsRegistry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.info = info_;
  snap.merged.label = "";
  snap.merged.histograms.resize(kNumHistograms);
  for (int h = 0; h < kNumHistograms; ++h) {
    snap.merged.histograms[h].counts.assign(
        MetaOf(static_cast<Histogram>(h)).bounds.size() + 1, 0);
  }
  snap.slots.reserve(slots_.size());
  for (const auto& slot : slots_) {
    SlotValues values = ReadSlot(*slot);
#if ITRIM_OBS
    for (int h = 0; h < kNumHistograms; ++h) {
      const auto& cells = slot->histograms_[h];
      HistogramValue& hv = values.histograms[h];
      for (size_t b = 0; b < hv.counts.size(); ++b) {
        hv.counts[b] = cells.counts[b].load(std::memory_order_relaxed);
      }
      hv.sum = cells.sum.load(std::memory_order_relaxed);
      hv.count = cells.count.load(std::memory_order_relaxed);
    }
#endif
    for (int c = 0; c < kNumCounters; ++c) {
      snap.merged.counters[c] += values.counters[c];
    }
    for (int g = 0; g < kNumGauges; ++g) {
      snap.merged.gauges[g] += values.gauges[g];
    }
    for (int h = 0; h < kNumHistograms; ++h) {
      HistogramValue& dst = snap.merged.histograms[h];
      const HistogramValue& src = values.histograms[h];
      for (size_t b = 0; b < dst.counts.size(); ++b) {
        dst.counts[b] += src.counts[b];
      }
      dst.sum += src.sum;
      dst.count += src.count;
    }
    snap.slots.push_back(std::move(values));
  }
  return snap;
}

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace itrim::obs
