// TraceBuffer: a fixed-capacity ring of compact game events with monotonic
// timestamps. Writers (ingest workers, producers on the backpressure path,
// instrumented sessions) record with a handful of relaxed atomic stores and
// one release publish — no locks, no allocation — while Snapshot() can run
// concurrently from a scraper thread: each ring slot is a seqlock (a sequence
// stamp written around the payload), so a reader either observes a fully
// published event or skips the slot.
//
// When the ring wraps, the oldest events are overwritten; `dropped()` counts
// them so exporters can say "showing last N of M". Like the metric slots,
// everything compiles out behind ITRIM_OBS=0.
#ifndef ITRIM_OBS_TRACE_H_
#define ITRIM_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "obs/metrics.h"  // ITRIM_OBS, MonotonicNowNs

namespace itrim::obs {

// Event kinds. `value` carries one kind-specific datum:
//   kRoundStart        round index about to play
//   kRoundEnd          the round's collection quality
//   kTrimDecision      observations removed by this round's trim
//   kReferenceRefit    refit iterations the reference policy ran
//   kHibernate         rounds the tenant had played when parked
//   kRehydrate         rounds the tenant had played when restored
//   kBackpressureBlock capacity of the full shard queue
//   kRateLimitShed     reports shed by the rate limiter in this arrival
enum class TraceKind : uint8_t {
  kRoundStart = 0,
  kRoundEnd,
  kTrimDecision,
  kReferenceRefit,
  kHibernate,
  kRehydrate,
  kBackpressureBlock,
  kRateLimitShed,
  kNumKinds,
};

const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  uint64_t seq = 0;     // global record order within this buffer
  int64_t ts_ns = 0;    // MonotonicNowNs() at record time
  TraceKind kind = TraceKind::kRoundStart;
  uint64_t tenant = 0;  // tenant id, or 0 when not tenant-scoped
  double value = 0.0;   // kind-specific datum (see above)
};

class TraceBuffer {
 public:
  // Capacity is rounded up to a power of two; 0 keeps it at the 1-slot
  // minimum (callers gate tracing by not constructing/attaching a buffer).
  explicit TraceBuffer(size_t capacity);

  // Hot path. Multi-writer safe: slots are claimed with one fetch_add; a
  // reader racing a rewrite of the same slot discards it via the seq stamp.
  void Record(TraceKind kind, uint64_t tenant, double value) {
#if ITRIM_OBS
    RecordAt(MonotonicNowNs(), kind, tenant, value);
#else
    (void)kind;
    (void)tenant;
    (void)value;
#endif
  }

  // Timestamp-passing variant: callers that already hold a clock reading
  // for the same instant (a round boundary feeding both a trace event and
  // a wall-time histogram) reuse it instead of paying a second clock read.
  void RecordAt(int64_t ts_ns, TraceKind kind, uint64_t tenant,
                double value) {
#if ITRIM_OBS
    const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[seq & mask_];
    slot.seq.store(kDirty, std::memory_order_relaxed);
    slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
    slot.meta.store(PackMeta(kind, tenant), std::memory_order_relaxed);
    slot.value_bits.store(BitsOf(value), std::memory_order_relaxed);
    slot.seq.store(seq, std::memory_order_release);
#else
    (void)ts_ns;
    (void)kind;
    (void)tenant;
    (void)value;
#endif
  }

  // Copies the currently valid window (oldest retained .. newest) into *out
  // (cleared first), oldest first. Safe concurrently with writers; events
  // overwritten mid-read are skipped, so the result can have gaps under
  // heavy wrap pressure.
  void Snapshot(std::vector<TraceEvent>* out) const;

  // Total events ever recorded / overwritten-before-read capacity loss.
  uint64_t recorded() const {
#if ITRIM_OBS
    return head_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }
  uint64_t dropped() const {
    const uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  size_t capacity() const { return capacity_; }

 private:
  static constexpr uint64_t kDirty = ~uint64_t{0};

  static uint64_t PackMeta(TraceKind kind, uint64_t tenant) {
    return (static_cast<uint64_t>(kind) << 56) |
           (tenant & ((uint64_t{1} << 56) - 1));
  }
  static uint64_t BitsOf(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  }

#if ITRIM_OBS
  struct Slot {
    std::atomic<uint64_t> seq{kDirty};
    std::atomic<int64_t> ts_ns{0};
    std::atomic<uint64_t> meta{0};
    std::atomic<uint64_t> value_bits{0};
  };
  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  uint64_t mask_ = 0;
#endif
  size_t capacity_ = 0;
};

}  // namespace itrim::obs

#endif  // ITRIM_OBS_TRACE_H_
