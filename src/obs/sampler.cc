#include "obs/sampler.h"

#include <utility>

namespace itrim::obs {

ScrapeSampler::ScrapeSampler(const MetricsRegistry* registry,
                             std::chrono::milliseconds period,
                             Callback callback)
    : registry_(registry), period_(period), callback_(std::move(callback)) {}

ScrapeSampler::~ScrapeSampler() { Stop(); }

Status ScrapeSampler::Start() {
  if (registry_ == nullptr) {
    return Status::InvalidArgument("ScrapeSampler: null registry");
  }
  if (!callback_) {
    return Status::InvalidArgument("ScrapeSampler: null callback");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("ScrapeSampler: already running");
  }
  stop_requested_ = false;
  samples_ = 0;
  thread_ = std::thread(&ScrapeSampler::Loop, this);
  running_ = true;
  return Status::OK();
}

void ScrapeSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool ScrapeSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

uint64_t ScrapeSampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void ScrapeSampler::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, period_, [this] { return stop_requested_; });
    }
    MetricsSnapshot snap = registry_->Scrape();
    callback_(snap);
    std::lock_guard<std::mutex> lock(mu_);
    ++samples_;
    if (stop_requested_) return;
  }
}

}  // namespace itrim::obs
