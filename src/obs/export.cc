#include "obs/export.h"

#include <cstdio>

namespace itrim::obs {

namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string NumU(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus label values escape \, " and newline.
std::string PromLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string SlotLabel(const SlotValues& slot) {
  if (slot.label.empty()) return "";
  return "{slot=\"" + PromLabelEscape(slot.label) + "\"}";
}

std::string SlotLabelWith(const SlotValues& slot, const std::string& extra) {
  if (slot.label.empty()) return "{" + extra + "}";
  return "{slot=\"" + PromLabelEscape(slot.label) + "\"," + extra + "}";
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);

  if (!snap.info.empty()) {
    out += "# HELP itrim_build_info Build and dispatch identity of this "
           "process.\n";
    out += "# TYPE itrim_build_info gauge\n";
    out += "itrim_build_info{";
    for (size_t i = 0; i < snap.info.size(); ++i) {
      if (i > 0) out += ",";
      out += snap.info[i].first + "=\"" +
             PromLabelEscape(snap.info[i].second) + "\"";
    }
    out += "} 1\n";
  }

  for (int c = 0; c < kNumCounters; ++c) {
    const CounterInfo& info = MetaOf(static_cast<Counter>(c));
    const std::string family = std::string("itrim_") + info.name + "_total";
    out += "# HELP " + family + " " + info.help + "\n";
    out += "# TYPE " + family + " counter\n";
    for (const SlotValues& slot : snap.slots) {
      out += family + SlotLabel(slot) + " " + NumU(slot.counters[c]) + "\n";
    }
  }

  for (int g = 0; g < kNumGauges; ++g) {
    const GaugeInfo& info = MetaOf(static_cast<Gauge>(g));
    const std::string family = std::string("itrim_") + info.name;
    out += "# HELP " + family + " " + info.help + "\n";
    out += "# TYPE " + family + " gauge\n";
    for (const SlotValues& slot : snap.slots) {
      out += family + SlotLabel(slot) + " " + Num(slot.gauges[g]) + "\n";
    }
  }

  for (int h = 0; h < kNumHistograms; ++h) {
    const HistogramInfo& info = MetaOf(static_cast<Histogram>(h));
    const std::string family = std::string("itrim_") + info.name;
    out += "# HELP " + family + " " + info.help + "\n";
    out += "# TYPE " + family + " histogram\n";
    for (const SlotValues& slot : snap.slots) {
      const HistogramValue& hv = slot.histograms[h];
      uint64_t cumulative = 0;
      for (size_t b = 0; b < info.bounds.size(); ++b) {
        cumulative += hv.counts[b];
        out += family + "_bucket" +
               SlotLabelWith(slot, "le=\"" + Num(info.bounds[b]) + "\"") +
               " " + NumU(cumulative) + "\n";
      }
      out += family + "_bucket" + SlotLabelWith(slot, "le=\"+Inf\"") + " " +
             NumU(hv.count) + "\n";
      out += family + "_sum" + SlotLabel(slot) + " " + Num(hv.sum) + "\n";
      out += family + "_count" + SlotLabel(slot) + " " + NumU(hv.count) + "\n";
    }
  }

  return out;
}

namespace {

void AppendCaseJson(const SlotValues& slot, const std::string& case_name,
                    std::string* out) {
  *out += "    {\n      \"name\": \"" + JsonEscape(case_name) + "\",\n";
  *out += "      \"counters\": {";
  for (int c = 0; c < kNumCounters; ++c) {
    if (c > 0) *out += ", ";
    *out += "\"" + std::string(MetaOf(static_cast<Counter>(c)).name) +
            "\": " + NumU(slot.counters[c]);
  }
  *out += "},\n      \"gauges\": {";
  for (int g = 0; g < kNumGauges; ++g) {
    if (g > 0) *out += ", ";
    *out += "\"" + std::string(MetaOf(static_cast<Gauge>(g)).name) +
            "\": " + Num(slot.gauges[g]);
  }
  *out += "},\n      \"histograms\": {";
  for (int h = 0; h < kNumHistograms; ++h) {
    const HistogramInfo& info = MetaOf(static_cast<Histogram>(h));
    const HistogramValue& hv = slot.histograms[h];
    if (h > 0) *out += ", ";
    *out += "\"" + std::string(info.name) + "\": {\"bounds\": [";
    for (size_t b = 0; b < info.bounds.size(); ++b) {
      if (b > 0) *out += ", ";
      *out += Num(info.bounds[b]);
    }
    *out += "], \"counts\": [";
    for (size_t b = 0; b < hv.counts.size(); ++b) {
      if (b > 0) *out += ", ";
      *out += NumU(hv.counts[b]);
    }
    *out += "], \"sum\": " + Num(hv.sum) +
            ", \"count\": " + NumU(hv.count) + "}";
  }
  *out += "}\n    }";
}

}  // namespace

std::string MetricsJson(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": 1,\n  \"kind\": \"obs_scrape\",\n";
  out += "  \"info\": {";
  for (size_t i = 0; i < snap.info.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(snap.info[i].first) + "\": \"" +
           JsonEscape(snap.info[i].second) + "\"";
  }
  out += "},\n  \"cases\": [\n";
  AppendCaseJson(snap.merged, "merged", &out);
  for (const SlotValues& slot : snap.slots) {
    out += ",\n";
    AppendCaseJson(slot, "slot/" + slot.label, &out);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string TracesJson(const std::vector<TraceEvent>& events,
                       uint64_t dropped) {
  std::string out;
  out.reserve(256 + events.size() * 96);
  out += "{\n  \"schema_version\": 1,\n  \"kind\": \"obs_trace\",\n";
  out += "  \"dropped\": " + NumU(dropped) + ",\n";
  out += "  \"events\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    out += "    {\"seq\": " + NumU(ev.seq) +
           ", \"ts_ns\": " + NumU(static_cast<uint64_t>(ev.ts_ns)) +
           ", \"kind\": \"" + TraceKindName(ev.kind) + "\", \"tenant\": " +
           NumU(ev.tenant) + ", \"value\": " + Num(ev.value) + "}";
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace itrim::obs
