// Exporters for metrics snapshots and trace windows:
//   - Prometheus text exposition format (linted by tools/promlint.py in CI);
//   - BENCH-style JSON (the repo's machine-facing telemetry contract, the
//     same shape tools/bench_gate.py validates);
//   - trace JSON consumed by tools/trace_dump.py.
// All of these operate on plain snapshot values — building the text never
// touches live slots, so an exporter can run on any thread.
#ifndef ITRIM_OBS_EXPORT_H_
#define ITRIM_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itrim::obs {

/// \brief Renders a snapshot in the Prometheus text exposition format: one
/// HELP/TYPE header per family, one sample per registered slot (labeled
/// `slot="<label>"`), cumulative histogram buckets with a trailing
/// `le="+Inf"`, counters suffixed `_total`, and an `itrim_build_info` gauge
/// carrying the snapshot's identity pairs.
std::string PrometheusText(const MetricsSnapshot& snap);

/// \brief Renders a snapshot as BENCH-style JSON (schema_version 1): one
/// case per slot plus a leading "merged" case, counters/gauges as flat maps
/// and histograms as {bounds, counts, sum, count} objects.
std::string MetricsJson(const MetricsSnapshot& snap);

/// \brief Renders a trace window (e.g. a merged multi-shard snapshot) as
/// JSON: {"schema_version": 1, "kind": "obs_trace", "dropped": N,
/// "events": [{seq, ts_ns, kind, tenant, value}, ...]}.
std::string TracesJson(const std::vector<TraceEvent>& events,
                       uint64_t dropped = 0);

/// \brief Writes `content` to `path` (for OBS_*.prom / trace dumps emitted
/// next to BENCH_*.json).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace itrim::obs

#endif  // ITRIM_OBS_EXPORT_H_
