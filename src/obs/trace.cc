#include "obs/trace.h"

namespace itrim::obs {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRoundStart:
      return "round_start";
    case TraceKind::kRoundEnd:
      return "round_end";
    case TraceKind::kTrimDecision:
      return "trim_decision";
    case TraceKind::kReferenceRefit:
      return "reference_refit";
    case TraceKind::kHibernate:
      return "hibernate";
    case TraceKind::kRehydrate:
      return "rehydrate";
    case TraceKind::kBackpressureBlock:
      return "backpressure_block";
    case TraceKind::kRateLimitShed:
      return "rate_limit_shed";
    case TraceKind::kNumKinds:
      break;
  }
  return "unknown";
}

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

#if ITRIM_OBS

TraceBuffer::TraceBuffer(size_t capacity) {
  capacity_ = RoundUpPow2(capacity == 0 ? 1 : capacity);
  slots_ = std::vector<Slot>(capacity_);
  mask_ = capacity_ - 1;
}

void TraceBuffer::Snapshot(std::vector<TraceEvent>* out) const {
  out->clear();
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t start = head > capacity_ ? head - capacity_ : 0;
  out->reserve(static_cast<size_t>(head - start));
  for (uint64_t seq = start; seq < head; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    TraceEvent ev;
    ev.seq = seq;
    ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    const uint64_t bits = slot.value_bits.load(std::memory_order_relaxed);
    // Re-validate after reading the payload: a writer lapping this slot
    // mid-read stamps it kDirty first, so a changed stamp means the fields
    // above may be mixed — drop the event. The fence keeps the payload loads
    // from sinking past the second stamp check.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
    ev.kind = static_cast<TraceKind>(meta >> 56);
    ev.tenant = meta & ((uint64_t{1} << 56) - 1);
    std::memcpy(&ev.value, &bits, sizeof(ev.value));
    out->push_back(ev);
  }
}

#else  // !ITRIM_OBS

TraceBuffer::TraceBuffer(size_t capacity) {
  capacity_ = RoundUpPow2(capacity == 0 ? 1 : capacity);
}

void TraceBuffer::Snapshot(std::vector<TraceEvent>* out) const {
  out->clear();
}

#endif  // ITRIM_OBS

}  // namespace itrim::obs
