#include "data/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace itrim {

namespace {

// Original UCI synthetic-control parameters (Alcock & Manolopoulos 1999).
constexpr double kControlMean = 30.0;
constexpr double kControlNoise = 2.0;
constexpr size_t kControlLength = 60;

enum ControlClass {
  kNormal = 0,
  kCyclic = 1,
  kIncreasing = 2,
  kDecreasing = 3,
  kUpShift = 4,
  kDownShift = 5,
};

std::vector<double> ControlSeries(ControlClass cls, Rng* rng) {
  std::vector<double> y(kControlLength);
  // Shared class-level draws.
  double amplitude = rng->Uniform(10.0, 15.0);
  double period = rng->Uniform(10.0, 15.0);
  double gradient = rng->Uniform(0.2, 0.5);
  double shift = rng->Uniform(7.5, 20.0);
  double t3 = rng->Uniform(static_cast<double>(kControlLength) / 3.0,
                           2.0 * static_cast<double>(kControlLength) / 3.0);
  for (size_t t = 0; t < kControlLength; ++t) {
    double r = rng->Uniform(-3.0, 3.0);
    double base = kControlMean + r * kControlNoise;
    double ft = static_cast<double>(t);
    switch (cls) {
      case kNormal:
        y[t] = base;
        break;
      case kCyclic:
        y[t] = base + amplitude * std::sin(2.0 * M_PI * ft / period);
        break;
      case kIncreasing:
        y[t] = base + gradient * ft;
        break;
      case kDecreasing:
        y[t] = base - gradient * ft;
        break;
      case kUpShift:
        y[t] = base + (ft >= t3 ? shift : 0.0);
        break;
      case kDownShift:
        y[t] = base - (ft >= t3 ? shift : 0.0);
        break;
    }
  }
  return y;
}

}  // namespace

Dataset MakeControl(uint64_t seed, size_t instances_per_class) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "control";
  ds.num_clusters = 6;
  ds.rows.reserve(6 * instances_per_class);
  ds.labels.reserve(6 * instances_per_class);
  for (int cls = 0; cls < 6; ++cls) {
    for (size_t i = 0; i < instances_per_class; ++i) {
      ds.rows.push_back(ControlSeries(static_cast<ControlClass>(cls), &rng));
      ds.labels.push_back(cls);
    }
  }
  NormalizeMinMax(&ds);
  return ds;
}

Dataset MakeVehicle(uint64_t seed, size_t instances) {
  Rng rng(seed);
  constexpr size_t kDims = 18;
  constexpr size_t kClasses = 4;
  Dataset ds;
  ds.name = "vehicle";
  ds.num_clusters = kClasses;
  // Class means separated enough to be clusterable but with overlap, as in
  // the real silhouette features (opel/saab overlap; bus/van separable).
  std::vector<std::vector<double>> means(kClasses);
  std::vector<double> scales(kClasses);
  for (size_t c = 0; c < kClasses; ++c) {
    means[c].resize(kDims);
    for (size_t j = 0; j < kDims; ++j) means[c][j] = rng.Uniform(-4.0, 4.0);
    scales[c] = rng.Uniform(0.8, 1.6);
  }
  // Make classes 0 and 1 deliberately close (the opel/saab confusion).
  for (size_t j = 0; j < kDims; ++j) {
    means[1][j] = means[0][j] + rng.Uniform(-1.0, 1.0);
  }
  for (size_t i = 0; i < instances; ++i) {
    size_t c = i % kClasses;
    std::vector<double> row(kDims);
    for (size_t j = 0; j < kDims; ++j) {
      row[j] = rng.Normal(means[c][j], scales[c]);
    }
    ds.rows.push_back(std::move(row));
    ds.labels.push_back(static_cast<int>(c));
  }
  NormalizeMinMax(&ds);
  return ds;
}

Dataset MakeLetter(uint64_t seed, size_t instances) {
  Rng rng(seed);
  constexpr size_t kDims = 16;
  constexpr size_t kClasses = 26;
  Dataset ds;
  ds.name = "letter";
  ds.num_clusters = kClasses;
  std::vector<std::vector<double>> means(kClasses);
  for (size_t c = 0; c < kClasses; ++c) {
    means[c].resize(kDims);
    for (size_t j = 0; j < kDims; ++j) means[c][j] = rng.Uniform(3.0, 12.0);
  }
  for (size_t i = 0; i < instances; ++i) {
    size_t c = i % kClasses;
    std::vector<double> row(kDims);
    for (size_t j = 0; j < kDims; ++j) {
      // Integer pixel-statistic features in [0, 15], like the real data.
      double v = std::round(rng.Normal(means[c][j], 2.0));
      row[j] = Clamp(v, 0.0, 15.0);
    }
    ds.rows.push_back(std::move(row));
    ds.labels.push_back(static_cast<int>(c));
  }
  NormalizeMinMax(&ds);
  return ds;
}

Dataset MakeTaxi(uint64_t seed, size_t instances) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "taxi";
  ds.num_clusters = 1;
  ds.rows.reserve(instances);
  constexpr double kDaySeconds = 86340.0;
  for (size_t i = 0; i < instances; ++i) {
    // Mixture: morning rush, evening rush, daytime bulk, overnight tail —
    // the familiar bimodal NYC pick-up-time profile.
    double u = rng.Uniform();
    double seconds;
    if (u < 0.25) {
      seconds = rng.Normal(8.5 * 3600.0, 1.2 * 3600.0);   // morning rush
    } else if (u < 0.55) {
      seconds = rng.Normal(18.5 * 3600.0, 1.8 * 3600.0);  // evening rush
    } else if (u < 0.92) {
      seconds = rng.Uniform(6.0 * 3600.0, 23.0 * 3600.0);  // daytime bulk
    } else {
      seconds = rng.Uniform(0.0, 6.0 * 3600.0);            // overnight
    }
    seconds = Clamp(std::round(seconds), 0.0, kDaySeconds);
    // Normalize to [-1, 1] as in the paper.
    ds.rows.push_back({2.0 * seconds / kDaySeconds - 1.0});
  }
  return ds;
}

Dataset MakeCreditcard(uint64_t seed, size_t instances) {
  Rng rng(seed);
  constexpr size_t kDims = 31;
  Dataset ds;
  ds.name = "creditcard";
  ds.num_clusters = 4;
  assert(instances >= 64);
  // Class 0: the general public — a dense, mildly anisotropic PCA cloud.
  // Class 1: fraudulent users — a tiny, tight, far cluster (one "isolated
  //          point" on the paper's SOM).
  // Class 2: premium users — ditto, opposite orientation.
  // Class 3: "green" segment — 5 points in the upper tail of the bulk's
  //          distance distribution (~89th percentile position): distant
  //          enough to form its own SOM region, near enough that a rational
  //          trimming threshold retains it.
  const size_t kGreen = 5;
  const size_t kRare = 8;  // instances per isolated class
  const size_t bulk = instances - 2 * kRare - kGreen;
  std::vector<double> axis_scale(kDims);
  for (size_t j = 0; j < kDims; ++j) {
    // PCA-ordered variance decay; bulk distances concentrate around
    // sqrt(sum axis_scale^2) ~= 4.1.
    axis_scale[j] = 1.5 * std::pow(0.93, static_cast<double>(j)) + 0.05;
  }
  for (size_t i = 0; i < bulk; ++i) {
    std::vector<double> row(kDims);
    for (size_t j = 0; j < kDims; ++j) row[j] = rng.Normal(0.0, axis_scale[j]);
    ds.rows.push_back(std::move(row));
    ds.labels.push_back(0);
  }
  auto rare_cluster = [&](double magnitude, int label, size_t count) {
    auto dir = rng.UnitVector(kDims);
    for (size_t i = 0; i < count; ++i) {
      std::vector<double> row(kDims);
      for (size_t j = 0; j < kDims; ++j) {
        row[j] = magnitude * dir[j] + rng.Normal(0.0, 0.15);
      }
      ds.rows.push_back(std::move(row));
      ds.labels.push_back(label);
    }
  };
  rare_cluster(14.0, 1, kRare);   // fraud
  rare_cluster(-12.0, 2, kRare);  // premium (opposite orientation)
  rare_cluster(4.1, 3, kGreen);  // green segment

  NormalizeMinMax(&ds);
  return ds;
}

Result<Dataset> MakeByName(const std::string& name, uint64_t seed,
                           double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0,1], got " +
                                   std::to_string(scale));
  }
  auto scaled = [scale](size_t full) {
    return std::max<size_t>(16, static_cast<size_t>(
                                    scale * static_cast<double>(full)));
  };
  if (name == "control") {
    return MakeControl(seed, std::max<size_t>(3, scaled(600) / 6));
  }
  if (name == "vehicle") return MakeVehicle(seed, scaled(752));
  if (name == "letter") return MakeLetter(seed, scaled(20000));
  if (name == "taxi") return MakeTaxi(seed, scaled(1048575));
  if (name == "creditcard") return MakeCreditcard(seed, scaled(284807));
  return Status::NotFound("unknown dataset '" + name + "'");
}

}  // namespace itrim
