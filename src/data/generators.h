// Synthetic dataset generators matched to the paper's Table II.
//
// The paper evaluates on five real-world files (UCI CONTROL / VEHICLE /
// LETTER, NYC TAXI, OpenML CREDITCARD) that cannot be shipped offline.
// Each generator below reproduces the statistical shape the experiments
// depend on — instance count, dimensionality, cluster multiplicity and skew:
//
//   * Control — the UCI set is itself synthetic; we regenerate it from the
//     original control-chart formulas (Alcock & Manolopoulos): six classes of
//     60-point time series (normal, cyclic, up/down trend, up/down shift).
//   * Vehicle — 4-class Gaussian mixture in 18-D (silhouette features).
//   * Letter — 26-class Gaussian mixture in 16-D with integer 0..15 features.
//   * Taxi — 1-D pick-up seconds in [0, 86340]: two rush-hour peaks over a
//     daytime bulk, normalized to [-1, 1].
//   * Creditcard — heavy-skew PCA-like cloud: one bulk class, two isolated
//     single outliers (fraud / premium) and a 5-point "green" class, matching
//     the structure read off the paper's SOM figure.
//
// All generators are deterministic in the seed.
#ifndef ITRIM_DATA_GENERATORS_H_
#define ITRIM_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>

#include "data/dataset.h"

namespace itrim {

/// \brief Synthetic Control Chart Time Series: 6 classes x
/// `instances_per_class`, 60 features. Defaults reproduce Table II (600x60).
Dataset MakeControl(uint64_t seed, size_t instances_per_class = 100);

/// \brief Vehicle-silhouette-like Gaussian mixture: 4 classes, 18 features.
/// Defaults reproduce Table II (752 instances).
Dataset MakeVehicle(uint64_t seed, size_t instances = 752);

/// \brief Letter-recognition-like mixture: 26 classes, 16 integer features in
/// [0, 15]. Defaults reproduce Table II (20000 instances).
Dataset MakeLetter(uint64_t seed, size_t instances = 20000);

/// \brief NYC-taxi-like pick-up times: 1 feature normalized to [-1, 1].
/// The full-size default of Table II is 1,048,575 rows; pass a smaller
/// `instances` for fast experiments.
Dataset MakeTaxi(uint64_t seed, size_t instances = 1048575);

/// \brief Creditcard-like skewed cloud: 31 features, 4 classes with the
/// bulk/fraud/premium/green structure of the paper's SOM study.
/// Table II's full size is 284,807 rows.
Dataset MakeCreditcard(uint64_t seed, size_t instances = 284807);

/// \brief Dispatch by dataset name ("control", "vehicle", "letter", "taxi",
/// "creditcard"); `scale` in (0,1] shrinks the instance count for fast runs.
Result<Dataset> MakeByName(const std::string& name, uint64_t seed,
                           double scale = 1.0);

}  // namespace itrim

#endif  // ITRIM_DATA_GENERATORS_H_
