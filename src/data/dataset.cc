#include "data/dataset.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace itrim {

Status Dataset::Validate() const {
  if (!labels.empty() && labels.size() != rows.size()) {
    return Status::InvalidArgument(
        name + ": label count " + std::to_string(labels.size()) +
        " != row count " + std::to_string(rows.size()));
  }
  if (!rows.empty()) {
    size_t width = rows[0].size();
    for (size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() != width) {
        return Status::InvalidArgument(name + ": ragged row " +
                                       std::to_string(i));
      }
    }
  }
  if (num_clusters == 0) {
    return Status::InvalidArgument(name + ": num_clusters must be >= 1");
  }
  return Status::OK();
}

void NormalizeMinMax(Dataset* ds) {
  if (ds->rows.empty()) return;
  size_t dims = ds->dims();
  std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
  for (const auto& row : ds->rows) {
    for (size_t j = 0; j < dims; ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  for (auto& row : ds->rows) {
    for (size_t j = 0; j < dims; ++j) {
      double span = hi[j] - lo[j];
      row[j] = span > 0.0 ? 2.0 * (row[j] - lo[j]) / span - 1.0 : 0.0;
    }
  }
}

Dataset SampleWithReplacement(const Dataset& ds, size_t n, Rng* rng) {
  assert(!ds.rows.empty());
  Dataset out;
  out.name = ds.name;
  out.num_clusters = ds.num_clusters;
  out.rows.reserve(n);
  if (ds.labeled()) out.labels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t idx = static_cast<size_t>(rng->UniformInt(ds.rows.size()));
    out.rows.push_back(ds.rows[idx]);
    if (ds.labeled()) out.labels.push_back(ds.labels[idx]);
  }
  return out;
}

std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& ds,
                                           double train_fraction, Rng* rng) {
  std::vector<size_t> idx(ds.rows.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng->Shuffle(&idx);
  size_t cut = static_cast<size_t>(train_fraction *
                                   static_cast<double>(idx.size()));
  Dataset train, test;
  train.name = ds.name + "/train";
  test.name = ds.name + "/test";
  train.num_clusters = test.num_clusters = ds.num_clusters;
  for (size_t i = 0; i < idx.size(); ++i) {
    Dataset* dst = i < cut ? &train : &test;
    dst->rows.push_back(ds.rows[idx[i]]);
    if (ds.labeled()) dst->labels.push_back(ds.labels[idx[i]]);
  }
  return {std::move(train), std::move(test)};
}

void Append(Dataset* dst, const Dataset& src) {
  dst->rows.insert(dst->rows.end(), src.rows.begin(), src.rows.end());
  if (dst->labeled() && src.labeled()) {
    dst->labels.insert(dst->labels.end(), src.labels.begin(),
                       src.labels.end());
  }
}

}  // namespace itrim
