// In-memory numeric dataset representation plus common transforms.
//
// Mirrors the evaluation setup of the paper (Table II): row-major numeric
// instances, optional integer class labels, and a nominal cluster count used
// by the learners.
#ifndef ITRIM_DATA_DATASET_H_
#define ITRIM_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace itrim {

/// \brief A labeled numeric dataset (instances x features).
struct Dataset {
  std::string name;
  /// Row-major feature matrix; every row has the same length.
  std::vector<std::vector<double>> rows;
  /// Per-row class label; empty when the dataset is unlabeled.
  std::vector<int> labels;
  /// Nominal number of clusters/classes (Table II).
  size_t num_clusters = 1;

  size_t size() const { return rows.size(); }
  size_t dims() const { return rows.empty() ? 0 : rows[0].size(); }
  bool labeled() const { return !labels.empty(); }

  /// \brief Validates shape invariants (uniform width, label length).
  Status Validate() const;
};

/// \brief Min-max normalizes every feature into [-1, 1] in place.
/// Constant features map to 0.
void NormalizeMinMax(Dataset* ds);

/// \brief Samples `n` rows with replacement (labels follow rows).
Dataset SampleWithReplacement(const Dataset& ds, size_t n, Rng* rng);

/// \brief Deterministically splits into (train, test) by `train_fraction`
/// after a seeded shuffle.
std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& ds,
                                           double train_fraction, Rng* rng);

/// \brief Appends all rows (and labels when both sides are labeled) of `src`.
void Append(Dataset* dst, const Dataset& src);

}  // namespace itrim

#endif  // ITRIM_DATA_DATASET_H_
