#include "data/loader.h"

#include <cmath>

#include "common/csv.h"

namespace itrim {

Result<Dataset> LoadCsvDataset(const std::string& path,
                               const std::string& name,
                               const LoadOptions& options) {
  std::vector<std::vector<double>> raw;
  ITRIM_ASSIGN_OR_RETURN(raw, ReadCsv(path, options.has_header));
  if (raw.empty()) return Status::InvalidArgument(path + " is empty");
  Dataset ds;
  ds.name = name;
  ds.num_clusters = options.num_clusters;
  const int label_col = options.label_column;
  const size_t width = raw[0].size();
  if (label_col >= 0 && static_cast<size_t>(label_col) >= width) {
    return Status::OutOfRange("label column " + std::to_string(label_col) +
                              " out of range for width " +
                              std::to_string(width));
  }
  for (auto& row : raw) {
    std::vector<double> features;
    features.reserve(width - (label_col >= 0 ? 1 : 0));
    for (size_t j = 0; j < width; ++j) {
      if (label_col >= 0 && j == static_cast<size_t>(label_col)) {
        ds.labels.push_back(static_cast<int>(std::lround(row[j])));
      } else {
        features.push_back(row[j]);
      }
    }
    ds.rows.push_back(std::move(features));
  }
  ITRIM_RETURN_NOT_OK(ds.Validate());
  if (options.normalize) NormalizeMinMax(&ds);
  return ds;
}

}  // namespace itrim
