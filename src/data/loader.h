// CSV dataset loading so real UCI/Kaggle/OpenML files can replace the
// built-in synthetic generators without touching experiment code.
#ifndef ITRIM_DATA_LOADER_H_
#define ITRIM_DATA_LOADER_H_

#include <string>

#include "data/dataset.h"

namespace itrim {

/// \brief Options controlling CSV -> Dataset conversion.
struct LoadOptions {
  /// Column index holding the class label; -1 for unlabeled data.
  int label_column = -1;
  /// Skip the first line of the file.
  bool has_header = false;
  /// Min-max normalize features into [-1, 1] after loading.
  bool normalize = true;
  /// Nominal cluster count to record on the dataset.
  size_t num_clusters = 1;
};

/// \brief Loads a numeric CSV into a Dataset.
Result<Dataset> LoadCsvDataset(const std::string& path,
                               const std::string& name,
                               const LoadOptions& options);

}  // namespace itrim

#endif  // ITRIM_DATA_LOADER_H_
