#include "ingest/ingest.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/thread_pool.h"

namespace itrim {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// SplitMix64 finalizer: tenant ids are often dense small integers, so the
// raw id modulo shards would stripe neighboring tenants onto neighboring
// shards; the mix spreads any id pattern uniformly.
uint64_t MixTenantId(uint64_t id) {
  uint64_t z = id + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void EncodeIngestEvent(const IngestEvent& event,
                       unsigned char out[kIngestFrameBytes]) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>(event.tenant_id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<unsigned char>(event.reports >> (8 * i));
  }
}

Result<IngestEvent> DecodeIngestEvent(const unsigned char* data, size_t size) {
  if (data == nullptr || size != kIngestFrameBytes) {
    return Status::InvalidArgument(
        "ingest frame must be exactly " + std::to_string(kIngestFrameBytes) +
        " bytes, got " + std::to_string(size));
  }
  IngestEvent event;
  event.tenant_id = 0;
  for (int i = 0; i < 8; ++i) {
    event.tenant_id |= static_cast<uint64_t>(data[i]) << (8 * i);
  }
  event.reports = 0;
  for (int i = 0; i < 4; ++i) {
    event.reports |= static_cast<uint32_t>(data[8 + i]) << (8 * i);
  }
  if (event.reports == 0) {
    return Status::InvalidArgument("ingest frame carries zero reports");
  }
  return event;
}

Status IngestConfig::Validate() const {
  if (shards < 0) {
    return Status::InvalidArgument("shards must be >= 0");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (batch_max == 0) {
    return Status::InvalidArgument("batch_max must be >= 1");
  }
  if (rate_limit_per_sec < 0.0) {
    return Status::InvalidArgument("rate_limit_per_sec must be >= 0");
  }
  if (rate_limit_burst < 0.0) {
    return Status::InvalidArgument("rate_limit_burst must be >= 0");
  }
  return Status::OK();
}

IngestService::IngestService(IngestConfig config, SessionFleet* fleet)
    : config_(std::move(config)), fleet_(fleet) {}

IngestService::~IngestService() { Stop(); }

size_t IngestService::ShardOf(uint64_t tenant_id) const {
  return static_cast<size_t>(MixTenantId(tenant_id) % shards_.size());
}

Status IngestService::Start() {
  if (started_) {
    return Status::FailedPrecondition("ingest service already started");
  }
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (fleet_ == nullptr) {
    return Status::InvalidArgument("ingest service needs a fleet");
  }
  if (!fleet_->bootstrapped()) {
    return Status::FailedPrecondition(
        "fleet must be bootstrapped before ingestion starts");
  }
  ITRIM_RETURN_NOT_OK(fleet_->BeginPerTenantStepping());

  const int shard_count =
      config_.shards > 0 ? config_.shards : DefaultNumThreads();
  start_resident_ = fleet_->ResidentTenants();
  stopping_.store(false, std::memory_order_relaxed);
  stop_status_ = Status::OK();
  shards_.clear();
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
  }
  // Home assignment before any worker runs: every tenant belongs to
  // exactly one shard, so per-tenant event order is total and tenant
  // state is never touched by two threads.
  for (size_t i = 0; i < fleet_->num_tenants(); ++i) {
    Shard& shard = *shards_[ShardOf(i)];
    shard.owned.push_back(i);
    if (fleet_->TenantResident(i)) ++shard.resident_owned;
  }
  started_ = true;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->worker = std::thread([this, s] { WorkerLoop(s); });
  }
  return Status::OK();
}

Status IngestService::Admit(const IngestEvent& event, bool blocking) {
  if (!started_ || stopping_.load(std::memory_order_relaxed)) {
    events_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("ingest service is not running");
  }
  if (event.reports == 0) {
    events_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("event carries zero reports");
  }
  if (event.tenant_id >= fleet_->num_tenants()) {
    events_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("unknown tenant id " +
                                   std::to_string(event.tenant_id));
  }
  Shard& shard = *shards_[ShardOf(event.tenant_id)];
  const bool pushed =
      blocking ? shard.queue.Push(event) : shard.queue.TryPush(event);
  if (!pushed) {
    events_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (stopping_.load(std::memory_order_relaxed) || shard.queue.closed()) {
      return Status::FailedPrecondition("ingest service is stopping");
    }
    return Status::Unavailable("ingest shard queue is full");
  }
  shard.submitted.fetch_add(1, std::memory_order_release);
  shard.events_accepted.fetch_add(1, std::memory_order_relaxed);
  shard.reports_enqueued.fetch_add(event.reports, std::memory_order_relaxed);
  return Status::OK();
}

Status IngestService::Submit(const IngestEvent& event) {
  return Admit(event, /*blocking=*/true);
}

Status IngestService::TrySubmit(const IngestEvent& event) {
  return Admit(event, /*blocking=*/false);
}

Status IngestService::SubmitFrame(const unsigned char* data, size_t size) {
  ITRIM_ASSIGN_OR_RETURN(IngestEvent event, DecodeIngestEvent(data, size));
  return Submit(event);
}

bool IngestService::DrainLane(Shard& shard, uint64_t tenant_id,
                              TenantLane& lane) {
  const size_t i = static_cast<size_t>(tenant_id);
  const uint32_t round_size = static_cast<uint32_t>(lane.round_size);
  while (lane.pending >= round_size) {
    if (!fleet_->TenantResident(i)) {
      Status status = fleet_->RehydrateTenant(i);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(shard.error_mu);
        if (shard.error.ok()) shard.error = status;
        lane.pending = 0;  // drop; retrying every batch would spin
        return false;
      }
      shard.rehydrations.fetch_add(1, std::memory_order_relaxed);
      ++shard.resident_owned;
    }
    Result<RoundRecord> record = fleet_->StepTenant(i);
    if (!record.ok()) {
      std::lock_guard<std::mutex> lock(shard.error_mu);
      if (shard.error.ok()) shard.error = record.status();
      lane.pending = 0;
      return false;
    }
    shard.rounds_played.fetch_add(1, std::memory_order_relaxed);
    lane.pending -= round_size;
  }
  return true;
}

void IngestService::EnforceResidency(Shard& shard) {
  if (config_.max_resident_per_shard == 0) return;
  while (shard.resident_owned > config_.max_resident_per_shard) {
    // Least-recently-active owned tenant; tenants with no traffic yet
    // stamp 0, so they hibernate first. Ties break on the smaller id for
    // a deterministic eviction order.
    uint64_t victim = 0;
    uint64_t victim_stamp = 0;
    bool found = false;
    for (uint64_t id : shard.owned) {
      if (!fleet_->TenantResident(static_cast<size_t>(id))) continue;
      auto it = shard.lanes.find(id);
      const uint64_t stamp = it == shard.lanes.end() ? 0 : it->second.last_active_batch;
      if (!found || stamp < victim_stamp ||
          (stamp == victim_stamp && id < victim)) {
        victim = id;
        victim_stamp = stamp;
        found = true;
      }
    }
    if (!found) return;
    Status status = fleet_->HibernateTenant(static_cast<size_t>(victim));
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(shard.error_mu);
      if (shard.error.ok()) shard.error = status;
      return;
    }
    shard.hibernations.fetch_add(1, std::memory_order_relaxed);
    --shard.resident_owned;
  }
}

void IngestService::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  const double rate = config_.rate_limit_per_sec;
  const double burst = config_.rate_limit_burst > 0.0
                           ? config_.rate_limit_burst
                           : std::max(1.0, rate);
  std::vector<IngestEvent> batch;
  batch.reserve(config_.batch_max);
  uint64_t batch_counter = 0;

  for (;;) {
    batch.clear();
    const size_t taken = shard.queue.PopBatch(&batch, config_.batch_max);
    if (taken == 0) break;  // closed and fully drained
    ++batch_counter;
    const int64_t now_ns = SteadyNowNs();

    for (const IngestEvent& event : batch) {
      TenantLane& lane = shard.lanes[event.tenant_id];
      if (lane.round_size == 0) {  // first arrival: set up the lane
        lane.round_size =
            fleet_->tenant(static_cast<size_t>(event.tenant_id))
                .config.round_size;
        lane.tokens = burst;  // buckets start full
        lane.last_refill_ns = now_ns;
      }
      lane.last_active_batch = batch_counter;

      uint32_t admitted = event.reports;
      if (rate > 0.0) {
        const double elapsed =
            static_cast<double>(now_ns - lane.last_refill_ns) * 1e-9;
        lane.tokens = std::min(burst, lane.tokens + elapsed * rate);
        lane.last_refill_ns = now_ns;
        if (lane.tokens >= static_cast<double>(event.reports)) {
          lane.tokens -= static_cast<double>(event.reports);
        } else {
          admitted = 0;
          shard.reports_rate_limited.fetch_add(event.reports,
                                               std::memory_order_relaxed);
        }
      }
      lane.pending += admitted;
      if (lane.round_size > 0 &&
          lane.pending >= static_cast<uint32_t>(lane.round_size)) {
        DrainLane(shard, event.tenant_id, lane);
      }
    }

    EnforceResidency(shard);
    shard.processed.fetch_add(taken, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
    }
    flush_cv_.notify_all();
  }
}

Status IngestService::Flush() {
  if (!started_) {
    return Status::FailedPrecondition("ingest service is not running");
  }
  std::vector<uint64_t> targets(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    targets[s] = shards_[s]->submitted.load(std::memory_order_acquire);
  }
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [&] {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s]->processed.load(std::memory_order_acquire) < targets[s]) {
        return false;
      }
    }
    return true;
  });
  return Status::OK();
}

Status IngestService::Stop() {
  if (!started_) return stop_status_;
  if (!stopping_.exchange(true)) {
    for (auto& shard : shards_) shard->queue.Close();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  Status first = Status::OK();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->error_mu);
    if (first.ok() && !shard->error.ok()) first = shard->error;
  }
  stop_status_ = first;
  started_ = false;
  return stop_status_;
}

IngestStats IngestService::Stats() const {
  IngestStats stats;
  stats.events_rejected = events_rejected_.load(std::memory_order_relaxed);
  stats.resident_tenants = start_resident_;
  for (const auto& shard : shards_) {
    stats.events_accepted +=
        shard->events_accepted.load(std::memory_order_relaxed);
    stats.reports_enqueued +=
        shard->reports_enqueued.load(std::memory_order_relaxed);
    stats.reports_rate_limited +=
        shard->reports_rate_limited.load(std::memory_order_relaxed);
    stats.rounds_played += shard->rounds_played.load(std::memory_order_relaxed);
    // Rehydrations first: every rehydration is preceded by its
    // hibernation on the same shard, so this read order keeps
    // hibernations >= rehydrations even while the worker is flipping
    // tenants between the two loads.
    const uint64_t rehydrations =
        shard->rehydrations.load(std::memory_order_relaxed);
    const uint64_t hibernations =
        shard->hibernations.load(std::memory_order_relaxed);
    stats.hibernations += hibernations;
    stats.rehydrations += rehydrations;
    stats.resident_tenants -= static_cast<size_t>(hibernations - rehydrations);
  }
  return stats;
}

}  // namespace itrim
