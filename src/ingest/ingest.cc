#include "ingest/ingest.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "game/kernels.h"
#include "game/public_board.h"

namespace itrim {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// SplitMix64 finalizer: tenant ids are often dense small integers, so the
// raw id modulo shards would stripe neighboring tenants onto neighboring
// shards; the mix spreads any id pattern uniformly.
uint64_t MixTenantId(uint64_t id) {
  uint64_t z = id + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void EncodeIngestEvent(const IngestEvent& event,
                       unsigned char out[kIngestFrameBytes]) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>(event.tenant_id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<unsigned char>(event.reports >> (8 * i));
  }
}

Result<IngestEvent> DecodeIngestEvent(const unsigned char* data, size_t size) {
  if (data == nullptr || size != kIngestFrameBytes) {
    return Status::InvalidArgument(
        "ingest frame must be exactly " + std::to_string(kIngestFrameBytes) +
        " bytes, got " + std::to_string(size));
  }
  IngestEvent event;
  event.tenant_id = 0;
  for (int i = 0; i < 8; ++i) {
    event.tenant_id |= static_cast<uint64_t>(data[i]) << (8 * i);
  }
  event.reports = 0;
  for (int i = 0; i < 4; ++i) {
    event.reports |= static_cast<uint32_t>(data[8 + i]) << (8 * i);
  }
  if (event.reports == 0) {
    return Status::InvalidArgument("ingest frame carries zero reports");
  }
  return event;
}

Status IngestConfig::Validate() const {
  if (shards < 0) {
    return Status::InvalidArgument("shards must be >= 0");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (batch_max == 0) {
    return Status::InvalidArgument("batch_max must be >= 1");
  }
  if (rate_limit_per_sec < 0.0) {
    return Status::InvalidArgument("rate_limit_per_sec must be >= 0");
  }
  if (rate_limit_burst < 0.0) {
    return Status::InvalidArgument("rate_limit_burst must be >= 0");
  }
  return Status::OK();
}

IngestService::IngestService(IngestConfig config, SessionFleet* fleet)
    : config_(std::move(config)), fleet_(fleet) {
  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  // The service slot exists from birth so pre-Start rejections count too.
  service_slot_ = registry_->AddSlot("ingest");
}

IngestService::~IngestService() { Stop(); }

size_t IngestService::ShardOf(uint64_t tenant_id) const {
  return static_cast<size_t>(MixTenantId(tenant_id) % shards_.size());
}

Status IngestService::Start() {
  if (started_) {
    return Status::FailedPrecondition("ingest service already started");
  }
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (fleet_ == nullptr) {
    return Status::InvalidArgument("ingest service needs a fleet");
  }
  if (!fleet_->bootstrapped()) {
    return Status::FailedPrecondition(
        "fleet must be bootstrapped before ingestion starts");
  }
  ITRIM_RETURN_NOT_OK(fleet_->BeginPerTenantStepping());

  const int shard_count =
      config_.shards > 0 ? config_.shards : DefaultNumThreads();
  stopping_.store(false, std::memory_order_relaxed);
  stop_status_ = Status::OK();
  shards_.clear();
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
  }
  // Telemetry sinks persist across Start/Stop cycles (slots stay in the
  // registry, counters stay monotonic); grow them on demand and point the
  // fresh shards at them.
  while (shard_slots_.size() < shards_.size()) {
    shard_slots_.push_back(
        registry_->AddSlot("shard" + std::to_string(shard_slots_.size())));
  }
  if (config_.trace_capacity > 0) {
    while (shard_traces_.size() < shards_.size()) {
      shard_traces_.push_back(
          std::make_unique<obs::TraceBuffer>(config_.trace_capacity));
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->slot = shard_slots_[s];
    shards_[s]->trace =
        s < shard_traces_.size() ? shard_traces_[s].get() : nullptr;
  }
  // Fold any prior churn back in so `resident_base_ − (hibernations −
  // rehydrations)` stays exact over the lifetime counters.
  int64_t prior_churn = 0;
  for (obs::MetricSlot* slot : shard_slots_) {
    prior_churn +=
        static_cast<int64_t>(slot->Get(obs::Counter::kIngestHibernations)) -
        static_cast<int64_t>(slot->Get(obs::Counter::kIngestRehydrations));
  }
  resident_base_ =
      static_cast<int64_t>(fleet_->ResidentTenants()) + prior_churn;
  // Scrape-context identity: which kernel build and board backend this
  // service's rounds actually run on.
  registry_->SetInfo("kernel",
                     kernels::VariantName(kernels::ActiveVariant()));
  if (fleet_->num_tenants() > 0) {
    registry_->SetInfo(
        "board", BoardBackendName(fleet_->tenant(0).config.board_backend));
  }
  registry_->SetInfo("shards", std::to_string(shard_count));
  // Home assignment before any worker runs: every tenant belongs to
  // exactly one shard, so per-tenant event order is total and tenant
  // state is never touched by two threads.
  for (size_t i = 0; i < fleet_->num_tenants(); ++i) {
    Shard& shard = *shards_[ShardOf(i)];
    shard.owned.push_back(i);
    if (fleet_->TenantResident(i)) ++shard.resident_owned;
  }
  // Deep telemetry: every session reports into its home shard's slot and
  // trace ring (persisted on the Tenant, so hibernation keeps the sinks).
  if (obs::kEnabled && config_.observe_rounds) {
    for (const auto& shard : shards_) {
      for (uint64_t id : shard->owned) {
        SessionObs sinks;
        sinks.metrics = shard->slot;
        sinks.trace = shard->trace;
        sinks.tenant = id;
        ITRIM_RETURN_NOT_OK(fleet_->AttachTenantObservability(
            static_cast<size_t>(id), sinks));
      }
    }
    tenant_sinks_attached_ = true;
  }
  started_ = true;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->worker = std::thread([this, s] { WorkerLoop(s); });
  }
  return Status::OK();
}

Status IngestService::Admit(const IngestEvent& event, bool blocking) {
  if (!started_ || stopping_.load(std::memory_order_relaxed)) {
    service_slot_->Inc(obs::Counter::kIngestEventsRejected);
    return Status::FailedPrecondition("ingest service is not running");
  }
  if (event.reports == 0) {
    service_slot_->Inc(obs::Counter::kIngestEventsRejected);
    return Status::InvalidArgument("event carries zero reports");
  }
  if (event.tenant_id >= fleet_->num_tenants()) {
    service_slot_->Inc(obs::Counter::kIngestEventsRejected);
    return Status::InvalidArgument("unknown tenant id " +
                                   std::to_string(event.tenant_id));
  }
  Shard& shard = *shards_[ShardOf(event.tenant_id)];
  const bool deep = obs::kEnabled && config_.observe_rounds;
  const bool timed =
      deep && submit_tick_.fetch_add(1, std::memory_order_relaxed) %
                      kSubmitSampleEvery ==
                  0;
  const int64_t t0 = timed ? obs::MonotonicNowNs() : 0;
  // TryPush first so a full queue is observable: a blocking Submit that
  // failed the fast path is a backpressure stall, counted and traced
  // before the producer parks on Push.
  bool pushed = shard.queue.TryPush(event);
  if (!pushed && blocking) {
    if (!shard.queue.closed()) {
      shard.slot->Inc(obs::Counter::kIngestBackpressureBlocks);
      if (shard.trace != nullptr) {
        shard.trace->Record(obs::TraceKind::kBackpressureBlock,
                            event.tenant_id,
                            static_cast<double>(config_.queue_capacity));
      }
    }
    pushed = shard.queue.Push(event);
  }
  if (!pushed) {
    service_slot_->Inc(obs::Counter::kIngestEventsRejected);
    if (stopping_.load(std::memory_order_relaxed) || shard.queue.closed()) {
      return Status::FailedPrecondition("ingest service is stopping");
    }
    return Status::Unavailable("ingest shard queue is full");
  }
  shard.submitted.fetch_add(1, std::memory_order_release);
  shard.slot->Inc(obs::Counter::kIngestEventsAccepted);
  shard.slot->Inc(obs::Counter::kIngestReportsEnqueued, event.reports);
  if (timed) {
    shard.slot->Observe(
        obs::Histogram::kIngestSubmitLatencyUs,
        static_cast<double>(obs::MonotonicNowNs() - t0) / 1000.0);
  }
  return Status::OK();
}

Status IngestService::Submit(const IngestEvent& event) {
  return Admit(event, /*blocking=*/true);
}

Status IngestService::TrySubmit(const IngestEvent& event) {
  return Admit(event, /*blocking=*/false);
}

Status IngestService::SubmitFrame(const unsigned char* data, size_t size) {
  ITRIM_ASSIGN_OR_RETURN(IngestEvent event, DecodeIngestEvent(data, size));
  return Submit(event);
}

bool IngestService::DrainLane(Shard& shard, uint64_t tenant_id,
                              TenantLane& lane) {
  const size_t i = static_cast<size_t>(tenant_id);
  const uint32_t round_size = static_cast<uint32_t>(lane.round_size);
  const bool deep = obs::kEnabled && config_.observe_rounds;
  while (lane.pending >= round_size) {
    if (!fleet_->TenantResident(i)) {
      Status status = fleet_->RehydrateTenant(i);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(shard.error_mu);
        if (shard.error.ok()) shard.error = status;
        lane.pending = 0;  // drop; retrying every batch would spin
        return false;
      }
      shard.slot->Inc(obs::Counter::kIngestRehydrations);
      if (shard.trace != nullptr) {
        shard.trace->Record(
            obs::TraceKind::kRehydrate, tenant_id,
            static_cast<double>(fleet_->tenant(i).session->next_round() - 1));
      }
      ++shard.resident_owned;
    }
    // Round wall time is sampled 1-in-4 per lane: the session's own trace
    // events already stamp every round boundary, so the histogram can
    // afford to skip clock reads on the hot path.
    const bool timed = deep && (lane.wall_tick++ & 3u) == 0;
    const int64_t t0 = timed ? obs::MonotonicNowNs() : 0;
    Result<RoundRecord> record = fleet_->StepTenant(i);
    if (!record.ok()) {
      std::lock_guard<std::mutex> lock(shard.error_mu);
      if (shard.error.ok()) shard.error = record.status();
      lane.pending = 0;
      return false;
    }
    shard.slot->Inc(obs::Counter::kIngestRoundsPlayed);
    if (timed) {
      shard.slot->Observe(
          obs::Histogram::kIngestRoundWallUs,
          static_cast<double>(obs::MonotonicNowNs() - t0) / 1000.0);
    }
    lane.pending -= round_size;
  }
  return true;
}

void IngestService::EnforceResidency(Shard& shard) {
  if (config_.max_resident_per_shard == 0) return;
  while (shard.resident_owned > config_.max_resident_per_shard) {
    // Least-recently-active owned tenant; tenants with no traffic yet
    // stamp 0, so they hibernate first. Ties break on the smaller id for
    // a deterministic eviction order.
    uint64_t victim = 0;
    uint64_t victim_stamp = 0;
    bool found = false;
    for (uint64_t id : shard.owned) {
      if (!fleet_->TenantResident(static_cast<size_t>(id))) continue;
      auto it = shard.lanes.find(id);
      const uint64_t stamp = it == shard.lanes.end() ? 0 : it->second.last_active_batch;
      if (!found || stamp < victim_stamp ||
          (stamp == victim_stamp && id < victim)) {
        victim = id;
        victim_stamp = stamp;
        found = true;
      }
    }
    if (!found) return;
    // Rounds-at-park, read before the session is released.
    const int parked_rounds =
        fleet_->tenant(static_cast<size_t>(victim)).session->next_round() - 1;
    Status status = fleet_->HibernateTenant(static_cast<size_t>(victim));
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(shard.error_mu);
      if (shard.error.ok()) shard.error = status;
      return;
    }
    shard.slot->Inc(obs::Counter::kIngestHibernations);
    if (shard.trace != nullptr) {
      shard.trace->Record(obs::TraceKind::kHibernate, victim,
                          static_cast<double>(parked_rounds));
    }
    --shard.resident_owned;
  }
}

void IngestService::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  const double rate = config_.rate_limit_per_sec;
  const double burst = config_.rate_limit_burst > 0.0
                           ? config_.rate_limit_burst
                           : std::max(1.0, rate);
  std::vector<IngestEvent> batch;
  batch.reserve(config_.batch_max);
  uint64_t batch_counter = 0;

  for (;;) {
    batch.clear();
    const size_t taken = shard.queue.PopBatch(&batch, config_.batch_max);
    if (taken == 0) break;  // closed and fully drained
    ++batch_counter;
    shard.slot->Inc(obs::Counter::kIngestBatchesPopped);
    shard.slot->Observe(obs::Histogram::kIngestPopBatchSize,
                        static_cast<double>(taken));
    const int64_t now_ns = SteadyNowNs();

    for (const IngestEvent& event : batch) {
      TenantLane& lane = shard.lanes[event.tenant_id];
      if (lane.round_size == 0) {  // first arrival: set up the lane
        lane.round_size =
            fleet_->tenant(static_cast<size_t>(event.tenant_id))
                .config.round_size;
        lane.tokens = burst;  // buckets start full
        lane.last_refill_ns = now_ns;
      }
      lane.last_active_batch = batch_counter;

      uint32_t admitted = event.reports;
      if (rate > 0.0) {
        const double elapsed =
            static_cast<double>(now_ns - lane.last_refill_ns) * 1e-9;
        lane.tokens = std::min(burst, lane.tokens + elapsed * rate);
        lane.last_refill_ns = now_ns;
        if (lane.tokens >= static_cast<double>(event.reports)) {
          lane.tokens -= static_cast<double>(event.reports);
        } else {
          admitted = 0;
          shard.slot->Inc(obs::Counter::kIngestReportsShed, event.reports);
          if (shard.trace != nullptr) {
            shard.trace->Record(obs::TraceKind::kRateLimitShed,
                                event.tenant_id,
                                static_cast<double>(event.reports));
          }
        }
      }
      lane.pending += admitted;
      if (lane.round_size > 0 &&
          lane.pending >= static_cast<uint32_t>(lane.round_size)) {
        DrainLane(shard, event.tenant_id, lane);
      }
    }

    EnforceResidency(shard);
    shard.processed.fetch_add(taken, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
    }
    flush_cv_.notify_all();
  }
}

Status IngestService::Flush() {
  if (!started_) {
    return Status::FailedPrecondition("ingest service is not running");
  }
  std::vector<uint64_t> targets(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    targets[s] = shards_[s]->submitted.load(std::memory_order_acquire);
  }
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [&] {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s]->processed.load(std::memory_order_acquire) < targets[s]) {
        return false;
      }
    }
    return true;
  });
  return Status::OK();
}

Status IngestService::Stop() {
  if (!started_) return stop_status_;
  if (!stopping_.exchange(true)) {
    for (auto& shard : shards_) shard->queue.Close();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Detach per-tenant sinks: a later owner of the fleet should not keep
  // writing ingest-attributed telemetry into this service's slots.
  if (tenant_sinks_attached_) {
    for (size_t i = 0; i < fleet_->num_tenants(); ++i) {
      (void)fleet_->AttachTenantObservability(i, SessionObs{});
    }
    tenant_sinks_attached_ = false;
  }
  Status first = Status::OK();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->error_mu);
    if (first.ok() && !shard->error.ok()) first = shard->error;
  }
  stop_status_ = first;
  started_ = false;
  return stop_status_;
}

IngestStats IngestService::Stats() const {
  IngestStats stats;
  stats.events_rejected =
      service_slot_->Get(obs::Counter::kIngestEventsRejected);
  int64_t resident = resident_base_;
  for (const auto& shard : shards_) {
    const obs::MetricSlot& slot = *shard->slot;
    stats.events_accepted += slot.Get(obs::Counter::kIngestEventsAccepted);
    stats.reports_enqueued += slot.Get(obs::Counter::kIngestReportsEnqueued);
    stats.reports_rate_limited += slot.Get(obs::Counter::kIngestReportsShed);
    stats.rounds_played += slot.Get(obs::Counter::kIngestRoundsPlayed);
    // Rehydrations first: every rehydration is preceded by its
    // hibernation on the same shard, so this read order keeps
    // hibernations >= rehydrations even while the worker is flipping
    // tenants between the two loads.
    const uint64_t rehydrations = slot.Get(obs::Counter::kIngestRehydrations);
    const uint64_t hibernations = slot.Get(obs::Counter::kIngestHibernations);
    stats.hibernations += hibernations;
    stats.rehydrations += rehydrations;
    resident -= static_cast<int64_t>(hibernations - rehydrations);
  }
  stats.resident_tenants =
      static_cast<size_t>(std::max<int64_t>(0, resident));
  return stats;
}

obs::MetricsSnapshot IngestService::Scrape() const {
  // Refresh the scrape-time gauges. Depth reads `processed` before
  // `submitted` (events are submitted before they are processed), so the
  // difference can never go negative mid-flight.
  for (const auto& shard : shards_) {
    const uint64_t processed =
        shard->processed.load(std::memory_order_acquire);
    const uint64_t submitted =
        shard->submitted.load(std::memory_order_acquire);
    shard->slot->Set(obs::Gauge::kIngestQueueDepth,
                     static_cast<double>(submitted - processed));
  }
  service_slot_->Set(obs::Gauge::kIngestResidentTenants,
                     static_cast<double>(Stats().resident_tenants));
  return registry_->Scrape();
}

std::vector<obs::TraceEvent> IngestService::TraceSnapshot() const {
  std::vector<obs::TraceEvent> merged;
  std::vector<obs::TraceEvent> events;
  for (const auto& trace : shard_traces_) {
    trace->Snapshot(&events);
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return merged;
}

uint64_t IngestService::TraceDropped() const {
  uint64_t dropped = 0;
  for (const auto& trace : shard_traces_) dropped += trace->dropped();
  return dropped;
}

}  // namespace itrim
