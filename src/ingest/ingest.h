// Arrival-driven ingestion front-end over SessionFleet.
//
// The paper's game steps one round per collection window; the production
// shape is the inverse — reports *arrive*, and rounds happen because
// traffic showed up. IngestService is that front-end: producers submit
// binary IngestEvents (tenant id + report count), a hash of the tenant id
// routes every event for one tenant to exactly one shard worker, and each
// worker coalesces co-arriving reports into full rounds of the tenant's
// session via SessionFleet::StepTenant().
//
// Determinism contract: a tenant plays one round for every
// `round_size` reports admitted, so its round records are a pure function
// of its own admitted arrival sequence — bit-identical to driving that
// session alone, regardless of shard count, cross-tenant interleaving,
// queue batching, or hibernation cycles in between (session
// checkpoint/restore is bit-exact). The only nondeterministic inputs —
// wall-clock token-bucket refill and load-shedding TrySubmit — act
// *before* admission and only change which reports are admitted, never
// how admitted reports are played.
//
// Backpressure: each shard owns a bounded queue; Submit() blocks while
// the shard is `queue_capacity` events behind, TrySubmit() refuses with
// Unavailable instead (the load-shedding shape). Per-tenant token-bucket
// rate limiting and LRU hibernation of idle tenants (bounding the
// resident set per shard) run worker-side.
#ifndef ITRIM_INGEST_INGEST_H_
#define ITRIM_INGEST_INGEST_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.h"
#include "common/status.h"
#include "fleet/session_fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itrim {

/// \brief One ingestion event: `reports` co-arriving reports for a tenant.
/// `tenant_id` is the tenant's index in the backing fleet.
struct IngestEvent {
  uint64_t tenant_id = 0;
  uint32_t reports = 1;
};

/// \brief Size of the fixed binary wire frame of one IngestEvent.
inline constexpr size_t kIngestFrameBytes = 12;

/// \brief Serializes an event into the 12-byte little-endian wire frame
/// (u64 tenant_id, u32 reports) — the binary ingest API's unit.
void EncodeIngestEvent(const IngestEvent& event,
                       unsigned char out[kIngestFrameBytes]);

/// \brief Parses one wire frame. Rejects short/long buffers and frames
/// with a zero report count.
Result<IngestEvent> DecodeIngestEvent(const unsigned char* data, size_t size);

/// \brief Tuning knobs of the ingestion front-end.
struct IngestConfig {
  /// Shard workers (each owns a queue + thread); 0 = DefaultNumThreads().
  int shards = 0;
  /// Per-shard queue bound — the backpressure depth, in events.
  size_t queue_capacity = 4096;
  /// Max events a worker drains per batch (coalescing window).
  size_t batch_max = 256;
  /// Per-tenant admitted-report rate (reports/sec); 0 disables limiting.
  double rate_limit_per_sec = 0.0;
  /// Token-bucket burst capacity; 0 = max(1, rate_limit_per_sec).
  double rate_limit_burst = 0.0;
  /// Max resident (non-hibernated) tenants per shard; when a shard's
  /// active-tenant count exceeds this, the least-recently-active tenants
  /// are hibernated to their compact checkpoints. 0 = unbounded.
  size_t max_resident_per_shard = 0;

  // -- Observability (src/obs/) --------------------------------------------

  /// Registry the service's metric slots ("ingest" + one "shard<N>" per
  /// shard) live in; null = a service-owned registry. Inject one to scrape
  /// ingest counters alongside fleet/pool slots through a single exporter.
  /// Must outlive the service.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-shard game-event trace ring capacity in events (rounded up to a
  /// power of two); 0 disables tracing.
  size_t trace_capacity = 0;
  /// Deep telemetry: wires per-tenant session sinks (round/trim/refit
  /// counters and trace events land on the owning shard's slot/ring) and
  /// turns on the clock-reading histograms (submit latency, per-round
  /// wall time). Off by default — the always-on counters never read a
  /// clock on the hot path.
  bool observe_rounds = false;

  Status Validate() const;
};

/// \brief Monotonic service counters (all since construction; they
/// accumulate across Start/Stop cycles). The counters live on the
/// service's obs metric slots, so an ITRIM_OBS=0 build reports zeros for
/// everything except `resident_tenants` — which is then the residency at
/// the last Start() (hibernation churn is only visible through the
/// counters). The ingestion behavior itself is identical either way.
struct IngestStats {
  uint64_t events_accepted = 0;   ///< events enqueued (Submit + TrySubmit)
  uint64_t events_rejected = 0;   ///< bad tenant id / full TrySubmit / closed
  uint64_t reports_enqueued = 0;  ///< reports carried by accepted events
  uint64_t reports_rate_limited = 0;  ///< reports dropped by token buckets
  uint64_t rounds_played = 0;     ///< StepTenant calls across all shards
  uint64_t hibernations = 0;
  uint64_t rehydrations = 0;
  size_t resident_tenants = 0;    ///< live sessions in the backing fleet
};

/// \brief Sharded arrival-driven ingestion service.
///
/// The fleet is borrowed, must be bootstrapped before Start(), and must
/// not be driven through its lockstep surface while the service runs
/// (Start() switches it to per-tenant stepping). Submit/TrySubmit are
/// safe from any number of producer threads; Start/Stop/Flush are for
/// the owning thread.
///
///   IngestService service(config, &fleet);
///   ITRIM_RETURN_NOT_OK(service.Start());
///   service.Submit({.tenant_id = 7, .reports = 3});
///   ITRIM_RETURN_NOT_OK(service.Flush());   // all submitted work applied
///   ITRIM_RETURN_NOT_OK(service.Stop());    // drain + join workers
class IngestService {
 public:
  IngestService(IngestConfig config, SessionFleet* fleet);
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// \brief Validates the config, switches the fleet to per-tenant
  /// stepping and spawns the shard workers.
  Status Start();

  /// \brief Enqueues an event on its tenant's shard, blocking while that
  /// shard's queue is full (backpressure). Fails on an unknown tenant id,
  /// a zero report count, or a stopped service.
  Status Submit(const IngestEvent& event);

  /// \brief Like Submit() but refuses with Unavailable instead of
  /// blocking when the shard queue is full (load shedding).
  Status TrySubmit(const IngestEvent& event);

  /// \brief Decodes one binary wire frame and Submit()s it.
  Status SubmitFrame(const unsigned char* data, size_t size);

  /// \brief Blocks until every event submitted before this call has been
  /// fully applied to the fleet.
  Status Flush();

  /// \brief Closes the queues, lets the workers drain what is already
  /// queued, and joins them. Idempotent. Returns the first worker error
  /// (shard order), if any.
  Status Stop();

  /// \brief Current counters (safe to call concurrently with producers
  /// and workers).
  IngestStats Stats() const;

  const IngestConfig& config() const { return config_; }
  int shards() const { return static_cast<int>(shards_.size()); }
  bool started() const { return started_; }

  /// \brief Shard that owns `tenant_id` (exposed for tests).
  size_t ShardOf(uint64_t tenant_id) const;

  // -- Observability -------------------------------------------------------

  /// \brief Registry holding the service's metric slots — the injected
  /// one, or the service-owned default.
  obs::MetricsRegistry* metrics_registry() const { return registry_; }

  /// \brief Refreshes the scrape-time gauges (per-shard queue depth,
  /// resident tenants) and scrapes the registry. Safe concurrently with
  /// producers and workers; never touches session state.
  obs::MetricsSnapshot Scrape() const;

  /// \brief Snapshot of the per-shard trace rings, merged and sorted by
  /// timestamp. Empty when trace_capacity == 0 or under ITRIM_OBS=0.
  std::vector<obs::TraceEvent> TraceSnapshot() const;

  /// \brief Trace events lost to ring wraparound, summed over shards.
  uint64_t TraceDropped() const;

 private:
  /// Per-tenant coalescing state, owned by the tenant's shard worker.
  struct TenantLane {
    uint32_t pending = 0;       ///< admitted reports not yet played
    int round_size = 0;         ///< cached from the tenant's game config
    double tokens = 0.0;        ///< token bucket fill
    int64_t last_refill_ns = 0;  ///< steady-clock stamp of the last refill
    uint64_t last_active_batch = 0;  ///< LRU stamp (worker batch counter)
    uint32_t wall_tick = 0;  ///< 1-in-4 round-wall sampling (deep obs only)
  };

  struct Shard {
    explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

    BoundedMpscQueue<IngestEvent> queue;
    std::thread worker;
    std::unordered_map<uint64_t, TenantLane> lanes;

    // Worker-private state (no locking: one consumer per shard).
    std::vector<uint64_t> owned;  ///< tenant ids this shard is home to
    size_t resident_owned = 0;    ///< live sessions among `owned`

    // Producer- and worker-side telemetry sinks, borrowed from the
    // service (the slot from the registry, the ring from shard_traces_);
    // both persist across Start/Stop cycles. Counters that used to be
    // bespoke atomics here now live on the slot.
    obs::MetricSlot* slot = nullptr;
    obs::TraceBuffer* trace = nullptr;  ///< null = tracing disabled

    // Flush accounting: events enqueued vs events fully applied.
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> processed{0};

    // First error this shard's worker hit (sticky; the worker keeps
    // draining its queue so producers never hang on a dead shard).
    std::mutex error_mu;
    Status error;
  };

  Status Admit(const IngestEvent& event, bool blocking);
  void WorkerLoop(size_t shard_index);
  /// Plays full rounds for one lane; rehydrates its tenant first if
  /// needed. Returns false (and records the shard error) on failure.
  bool DrainLane(Shard& shard, uint64_t tenant_id, TenantLane& lane);
  /// Hibernates least-recently-active resident tenants of this shard
  /// until it is back under max_resident_per_shard.
  void EnforceResidency(Shard& shard);

  IngestConfig config_;
  SessionFleet* fleet_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  Status stop_status_;

  // Observability plumbing. The registry, the service slot (reject
  // counter + resident gauge) and the per-shard slots/trace rings are
  // created once (constructor / first Start) and persist across
  // Start/Stop cycles so the counters stay monotonic.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::MetricSlot* service_slot_ = nullptr;
  std::vector<obs::MetricSlot*> shard_slots_;
  std::vector<std::unique_ptr<obs::TraceBuffer>> shard_traces_;
  bool tenant_sinks_attached_ = false;

  // Deep observation samples Submit latency 1-in-kSubmitSampleEvery: two
  // clock reads per event would dominate the producer fast path on cheap
  // workloads (bench_obs holds the total overhead under 5%).
  static constexpr uint64_t kSubmitSampleEvery = 32;
  std::atomic<uint64_t> submit_tick_{0};

  // Residency is tracked via counters so Stats() never reads tenant state
  // that a worker may be mutating: resident = resident_base_ − (lifetime
  // hibernations − rehydrations). The base folds the churn counters'
  // values at Start() back in, so restarted services stay exact.
  int64_t resident_base_ = 0;

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
};

}  // namespace itrim

#endif  // ITRIM_INGEST_INGEST_H_
