#include "game/reference_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "game/kernels.h"
#include "game/score_model.h"

namespace itrim {

Status PercentileReference::TrimRound(double percentile, ScoreModel* model,
                                      const PublicBoard& board,
                                      TrimOutcome* out) {
  return model->TrimAtReference(percentile, board, out);
}

PercentileReference* DefaultReferencePolicy() {
  static PercentileReference shared;
  return &shared;
}

namespace {

/// De-interleaves the rows named by `selected[0..count)` out of the flat
/// [x..., y] observation block into fit buffers (resized, capacity kept).
void GatherSelected(std::span<const double> obs, size_t width,
                    const size_t* selected, size_t count,
                    std::vector<double>* xs, std::vector<double>* ys) {
  const size_t dims = width - 1;
  xs->resize(count * dims);
  ys->resize(count);
  for (size_t k = 0; k < count; ++k) {
    const double* row = obs.data() + selected[k] * width;
    std::copy(row, row + dims, xs->data() + k * dims);
    (*ys)[k] = row[dims];
  }
}

}  // namespace

Status FittedModelReference::Validate(const ScoreModel& model) const {
  if (!model.ProvidesObservations()) {
    return Status::InvalidArgument(
        "FittedModelReference needs a score model that exposes its round "
        "observations (model '" +
        model.name() + "' does not)");
  }
  if (model.ObsWidth() < 2) {
    return Status::InvalidArgument(
        "FittedModelReference needs observations of at least one feature "
        "plus the response (ObsWidth() >= 2)");
  }
  if (options_.max_refits < 1) {
    return Status::InvalidArgument(
        "FittedModelReference: max_refits must be >= 1");
  }
  if (!(options_.tol >= 0.0)) {
    return Status::InvalidArgument("FittedModelReference: tol must be >= 0");
  }
  return Status::OK();
}

Status FittedModelReference::TrimRound(double percentile, ScoreModel* model,
                                       const PublicBoard& /*board*/,
                                       TrimOutcome* out) {
  last_refit_iters_ = 0;
  const std::span<const double> obs = model->observations();
  const size_t width = model->ObsWidth();
  const size_t n = model->scores().size();
  if (width < 2) {
    return Status::FailedPrecondition(
        "FittedModelReference: model observations are not multi-column");
  }
  if (n == 0) {
    out->keep.clear();
    out->kept_count = 0;
    out->removed_count = 0;
    out->cutoff = std::numeric_limits<double>::infinity();
    return Status::OK();
  }
  if (obs.size() != n * width) {
    return Status::FailedPrecondition(
        "FittedModelReference: model did not expose this round's "
        "observations");
  }
  const size_t dims = width - 1;

  // The percentile keeps its meaning as kept mass: keep the floor(q * n)
  // lowest-residual rows, bounded below by the fit's feasibility minimum.
  size_t keep_n = percentile > 0.0
                      ? static_cast<size_t>(std::floor(
                            percentile * static_cast<double>(n)))
                      : 0;
  keep_n = std::max(keep_n, std::min(n, dims + 1));
  if (keep_n >= n) {
    out->keep.assign(n, 1);
    out->kept_count = n;
    out->removed_count = 0;
    out->cutoff = std::numeric_limits<double>::infinity();
    return Status::OK();
  }

  // Initial fit on the whole round — deterministic (no RNG, no cross-round
  // state), so a restored session replays the identical kept sets.
  order_.resize(n);
  for (size_t i = 0; i < n; ++i) order_[i] = i;
  GatherSelected(obs, width, order_.data(), n, &fit_xs_, &fit_ys_);
  ITRIM_RETURN_NOT_OK(
      regressor_.FitClosedForm(fit_xs_, fit_ys_, dims, &fit_));
  resid_.resize(n);
  prev_resid_.resize(n);
  kernels::AbsResidualsToModel(obs.data(), n, width, fit_.weights.data(),
                               fit_.bias, resid_.data());

  const double inf = std::numeric_limits<double>::infinity();
  double cutoff = inf;
  for (int iter = 0; iter < options_.max_refits; ++iter) {
    ++last_refit_iters_;
    // Total order: residual magnitude, NaN last, ties by index — the
    // selected set is independent of the sort algorithm.
    std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
      const double ka = std::isnan(resid_[a]) ? inf : resid_[a];
      const double kb = std::isnan(resid_[b]) ? inf : resid_[b];
      if (ka != kb) return ka < kb;
      return a < b;
    });
    cutoff = resid_[order_[keep_n - 1]];
    GatherSelected(obs, width, order_.data(), keep_n, &fit_xs_, &fit_ys_);
    ITRIM_RETURN_NOT_OK(
        regressor_.FitClosedForm(fit_xs_, fit_ys_, dims, &fit_));
    std::swap(prev_resid_, resid_);
    kernels::AbsResidualsToModel(obs.data(), n, width, fit_.weights.data(),
                                 fit_.bias, resid_.data());
    // Early stop on the mean absolute change in squared residuals (the
    // Trim defense's delta-MSE criterion; |r| is exact-square-comparable).
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      delta += std::fabs(prev_resid_[i] * prev_resid_[i] -
                         resid_[i] * resid_[i]);
    }
    if (delta / static_cast<double>(n) < options_.tol) break;
  }

  // The kept set is the selection the final refit trained on.
  out->keep.assign(n, 0);
  for (size_t k = 0; k < keep_n; ++k) out->keep[order_[k]] = 1;
  out->kept_count = keep_n;
  out->removed_count = n - keep_n;
  out->cutoff = cutoff;
  return Status::OK();
}

}  // namespace itrim
