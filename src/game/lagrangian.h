// Analytical model of the infinite collection game (Sections IV & V).
//
// The utility functions u_a(r), u_c(r) of adversary and collector act as
// generalized coordinates; the round index r is the continuous "time". The
// system obeys the least-action principle (Axiom 1) with Lagrangian
//
//     L = m_a u̇_a²/2 + m_c u̇_c²/2 - U(u_a, u_c).
//
// Equilibrium state (Theorems 1-2): U = 0, hence u̇ = const — utilities grow
// linearly and the parties evolve independently.
// Non-equilibrium Elastic state (Definition 2, Theorem 4):
// U = k (u_a - u_c)²/2 couples the parties like two masses on a spring; the
// relative utility oscillates as A·cos(ω r + φ) with ω = sqrt(k/μ),
// μ = m_a m_c / (m_a + m_c).
//
// Note on signs: the paper writes L = m_a u̇_a² + m_c u̇_c² + U (eq. 9) but
// derives the oscillator equations m ü + k(u_a - u_c) = 0 (eq. 14), which
// follow from the standard mechanics convention L = K - U with kinetic terms
// m u̇²/2. We implement the standard convention so that eq. 14 and
// Theorem 4 hold exactly.
#ifndef ITRIM_GAME_LAGRANGIAN_H_
#define ITRIM_GAME_LAGRANGIAN_H_

#include <functional>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief Interaction potential U(u_a, u_c) with analytic gradient.
class InteractionPotential {
 public:
  virtual ~InteractionPotential() = default;

  /// \brief Potential energy at (u_a, u_c).
  virtual double Energy(double u_a, double u_c) const = 0;
  /// \brief dU/du_a.
  virtual double GradA(double u_a, double u_c) const = 0;
  /// \brief dU/du_c.
  virtual double GradC(double u_a, double u_c) const = 0;
};

/// \brief U = 0: the Stackelberg-equilibrium (free) state of Theorem 1.
class FreePotential : public InteractionPotential {
 public:
  double Energy(double, double) const override { return 0.0; }
  double GradA(double, double) const override { return 0.0; }
  double GradC(double, double) const override { return 0.0; }
};

/// \brief U = k (u_a - u_c)² / 2: the Elastic strategy (Definition 2).
class ElasticPotential : public InteractionPotential {
 public:
  explicit ElasticPotential(double k) : k_(k) {}
  double Energy(double u_a, double u_c) const override {
    double w = u_a - u_c;
    return 0.5 * k_ * w * w;
  }
  double GradA(double u_a, double u_c) const override {
    return k_ * (u_a - u_c);
  }
  double GradC(double u_a, double u_c) const override {
    return -k_ * (u_a - u_c);
  }
  double k() const { return k_; }

 private:
  double k_;
};

/// \brief Phase-space state of the two-party system.
struct GameState {
  double u_a = 0.0;  ///< adversary utility
  double u_c = 0.0;  ///< collector utility
  double v_a = 0.0;  ///< du_a/dr
  double v_c = 0.0;  ///< du_c/dr
};

/// \brief One trajectory sample: (r, state).
struct TrajectoryPoint {
  double r = 0.0;
  GameState state;
};

/// \brief The system Lagrangian L = m_a v_a²/2 + m_c v_c²/2 - U.
class GameLagrangian {
 public:
  /// Requires positive masses; the potential is borrowed (not owned).
  GameLagrangian(double m_a, double m_c, const InteractionPotential* potential);

  /// \brief L evaluated at a state.
  double Evaluate(const GameState& s) const;

  /// \brief Total energy (kinetic + potential); conserved along solutions.
  double Energy(const GameState& s) const;

  /// \brief Euler–Lagrange accelerations:
  /// ü_a = -GradA/m_a, ü_c = -GradC/m_c (eq. 14 of the paper).
  void Accelerations(const GameState& s, double* a_a, double* a_c) const;

  double m_a() const { return m_a_; }
  double m_c() const { return m_c_; }

 private:
  double m_a_;
  double m_c_;
  const InteractionPotential* potential_;
};

/// \brief RK4 integrator for the Euler–Lagrange equations of the game.
class EulerLagrangeIntegrator {
 public:
  explicit EulerLagrangeIntegrator(const GameLagrangian* lagrangian)
      : lagrangian_(lagrangian) {}

  /// \brief Integrates from `initial` over `steps` steps of size `dr`,
  /// returning steps+1 trajectory points (including the initial one).
  std::vector<TrajectoryPoint> Integrate(const GameState& initial, double dr,
                                         int steps) const;

 private:
  GameState Derivative(const GameState& s) const;
  GameState Step(const GameState& s, double dr) const;

  const GameLagrangian* lagrangian_;
};

/// \brief Discretized action S = ∫ L dr over a trajectory (trapezoid rule).
double Action(const GameLagrangian& lagrangian,
              const std::vector<TrajectoryPoint>& trajectory);

/// \brief Closed-form parameters of the Theorem-4 oscillation of the
/// relative utility w(r) = u_a(r) - u_c(r) = A cos(ω r + φ) + drift terms.
struct OscillatorSolution {
  double omega = 0.0;      ///< angular frequency sqrt(k/μ)
  double amplitude = 0.0;  ///< A
  double phase = 0.0;      ///< φ
  double period = 0.0;     ///< 2π/ω

  /// \brief w(r) from the closed form.
  double Relative(double r) const;
};

/// \brief Solves the elastic two-body problem analytically for the relative
/// coordinate. Requires k > 0 and positive masses.
Result<OscillatorSolution> SolveElasticOscillator(double m_a, double m_c,
                                                  double k,
                                                  const GameState& initial);

}  // namespace itrim

#endif  // ITRIM_GAME_LAGRANGIAN_H_
