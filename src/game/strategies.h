// Collector and adversary strategies of the online collection game.
//
// All positions are percentiles of the public-board reference distribution
// (Section VI-A). Implemented collectors:
//   Ostrich        — never trims (accepts all poison).
//   Static         — fixed threshold (the two Baseline schemes).
//   Titfortat      — Algorithm 1: soft threshold until the quality judgement
//                    triggers, then a hard threshold forever.
//   Elastic        — Algorithm 2: T(i+1) = Tth + k (A(i) - Tth - 1%).
// Implemented adversaries:
//   FixedPercentile   — always injects at one position (Ostrich pairing: 99th).
//   UniformRange      — uniform random position in [lo, hi] (Baseline 0.9).
//   ThresholdOffset   — tracks the collector's last threshold plus an offset
//                       (the "ideal attack" of Baseline static at -1%).
//   ElasticAdversary  — A(i+1) = Tth - 3% + k (T(i) - Tth).
//   MixedPercentile   — 99th w.p. p, 90th w.p. 1-p (the Table-III study).
//
// The threat model is white-box with complete information (Section III-A):
// each party observes the other's previous-round position exactly, which is
// why RoundObservation carries the realized injection percentile.
#ifndef ITRIM_GAME_STRATEGIES_H_
#define ITRIM_GAME_STRATEGIES_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "common/rng.h"
#include "game/public_board.h"
#include "game/quality.h"

namespace itrim {

/// \brief Sentinel trim percentile meaning "keep everything".
inline constexpr double kNoTrim = 2.0;

/// \brief Inputs available to a strategy when choosing its round-i position.
struct RoundContext {
  int round = 1;          ///< 1-based round index
  double tth = 0.9;       ///< nominal threshold percentile of the scheme
  const PublicBoard* board = nullptr;  ///< public reference distribution
  /// Collector threshold percentile of round i-1 (NaN in round 1).
  double prev_collector_percentile = std::nan("");
  /// Mean injection percentile observed in round i-1 (NaN in round 1 or if
  /// no poison arrived).
  double prev_injection_percentile = std::nan("");
  /// Quality score of round i-1 (NaN in round 1).
  double prev_quality = std::nan("");
};

/// \brief What both parties observe once a round completes.
///
/// The poison counters model the *adversary's* self-knowledge: it can
/// recognize its own values on the public board and count how many
/// survived. Collector strategies must not read them (the collector cannot
/// distinguish poison from benign data — that is the whole problem).
struct RoundObservation {
  int round = 1;
  double collector_percentile = kNoTrim;
  double injection_percentile = std::nan("");  ///< realized mean position
  double quality = std::nan("");
  size_t received = 0;
  size_t kept = 0;
  size_t poison_received = 0;  ///< adversary-side knowledge only
  size_t poison_kept = 0;      ///< adversary-side knowledge only
};

/// \brief Defender side: chooses the trim percentile each round.
class CollectorStrategy {
 public:
  virtual ~CollectorStrategy() = default;
  virtual std::string name() const = 0;
  /// \brief Threshold percentile for this round; >= 1 keeps everything.
  virtual double TrimPercentile(const RoundContext& ctx) = 0;
  /// \brief Feedback after the round completes.
  virtual void Observe(const RoundObservation& /*obs*/) {}
  /// \brief Restores the initial state (for repeated experiments).
  virtual void Reset() {}
  /// \brief Round at which the judgement triggered; 0 when never.
  virtual int termination_round() const { return 0; }
};

/// \brief Attacker side: chooses an injection percentile per poison value.
class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;
  virtual std::string name() const = 0;
  /// \brief Percentile (of the board reference) for one poison value.
  virtual double InjectionPercentile(const RoundContext& ctx, Rng* rng) = 0;
  virtual void Observe(const RoundObservation& /*obs*/) {}
  virtual void Reset() {}
};

// ---------------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------------

/// \brief No defensive measures: accepts every value (the Ostrich scheme).
class OstrichCollector : public CollectorStrategy {
 public:
  std::string name() const override { return "Ostrich"; }
  double TrimPercentile(const RoundContext&) override { return kNoTrim; }
};

/// \brief Static threshold at a fixed percentile (both Baseline schemes).
class StaticCollector : public CollectorStrategy {
 public:
  explicit StaticCollector(double percentile, std::string label = "Baseline")
      : percentile_(percentile), label_(std::move(label)) {}
  std::string name() const override { return label_; }
  double TrimPercentile(const RoundContext&) override { return percentile_; }

 private:
  double percentile_;
  std::string label_;
};

/// \brief Algorithm 1: Titfortat trigger strategy.
///
/// Trims at `tth + soft_offset` until a round's quality falls below
/// `trigger_quality`; from the next round on it trims at `tth + hard_offset`
/// permanently. In the paper's Section VI-A instantiation
/// soft_offset = +1% and hard_offset = -3%.
class TitfortatCollector : public CollectorStrategy {
 public:
  TitfortatCollector(double soft_offset, double hard_offset,
                     double trigger_quality)
      : soft_offset_(soft_offset), hard_offset_(hard_offset),
        trigger_quality_(trigger_quality) {}

  std::string name() const override { return "Titfortat"; }
  double TrimPercentile(const RoundContext& ctx) override {
    return ctx.tth + (triggered_ ? hard_offset_ : soft_offset_);
  }
  void Observe(const RoundObservation& obs) override {
    if (!triggered_ && !std::isnan(obs.quality) &&
        obs.quality < trigger_quality_) {
      triggered_ = true;
      termination_round_ = obs.round;
    }
  }
  void Reset() override {
    triggered_ = false;
    termination_round_ = 0;
  }
  int termination_round() const override { return termination_round_; }
  bool triggered() const { return triggered_; }

 private:
  double soft_offset_;
  double hard_offset_;
  double trigger_quality_;
  bool triggered_ = false;
  int termination_round_ = 0;
};

/// \brief Algorithm 2: Elastic trigger strategy with forgiveness.
///
/// Round 1 trims at `tth + initial_offset` (paper: -3%); afterwards the
/// threshold responds proportionally to the adversary's observed position:
///     T(i+1) = Tth + k (A(i) - Tth + response_offset),
/// with response_offset = -1% in the paper's instantiation. When no
/// injection was observed (clean round) the threshold relaxes back to Tth.
class ElasticCollector : public CollectorStrategy {
 public:
  ElasticCollector(double k, double initial_offset = -0.03,
                   double response_offset = -0.01)
      : k_(k), initial_offset_(initial_offset),
        response_offset_(response_offset) {}

  std::string name() const override {
    return "Elastic" + FormatK();
  }
  double TrimPercentile(const RoundContext& ctx) override {
    if (ctx.round <= 1 || std::isnan(last_injection_)) {
      return ctx.round <= 1 ? ctx.tth + initial_offset_ : ctx.tth;
    }
    return ctx.tth + k_ * (last_injection_ - ctx.tth + response_offset_);
  }
  void Observe(const RoundObservation& obs) override {
    last_injection_ = obs.injection_percentile;
  }
  void Reset() override { last_injection_ = std::nan(""); }
  double k() const { return k_; }

 private:
  std::string FormatK() const;

  double k_;
  double initial_offset_;
  double response_offset_;
  double last_injection_ = std::nan("");
};

// ---------------------------------------------------------------------------
// Adversaries
// ---------------------------------------------------------------------------

/// \brief Injects every poison value at one fixed percentile.
class FixedPercentileAdversary : public AdversaryStrategy {
 public:
  explicit FixedPercentileAdversary(double percentile)
      : percentile_(percentile) {}
  std::string name() const override { return "fixed"; }
  double InjectionPercentile(const RoundContext&, Rng*) override {
    return percentile_;
  }

 private:
  double percentile_;
};

/// \brief Uniform random injection position in [lo, hi] (Baseline 0.9 foe).
class UniformRangeAdversary : public AdversaryStrategy {
 public:
  UniformRangeAdversary(double lo, double hi) : lo_(lo), hi_(hi) {}
  std::string name() const override { return "uniform_range"; }
  double InjectionPercentile(const RoundContext&, Rng* rng) override {
    return rng->Uniform(lo_, hi_);
  }

 private:
  double lo_;
  double hi_;
};

/// \brief The "ideal attack": injects relative to the collector's last
/// observed threshold (offset -1% reproduces Baseline static's adversary,
/// offset 0 reproduces the maximally-aggressive-but-compliant play used
/// against Titfortat).
class ThresholdOffsetAdversary : public AdversaryStrategy {
 public:
  explicit ThresholdOffsetAdversary(double offset) : offset_(offset) {}
  std::string name() const override { return "threshold_offset"; }
  double InjectionPercentile(const RoundContext& ctx, Rng*) override {
    double base = std::isnan(ctx.prev_collector_percentile)
                      ? ctx.tth
                      : ctx.prev_collector_percentile;
    return base + offset_;
  }

 private:
  double offset_;
};

/// \brief The elastic adversary of Section VI-A:
/// A(1) = Tth + 1%, A(i+1) = Tth + base_offset + k (T(i) - Tth),
/// base_offset = -3%.
class ElasticAdversary : public AdversaryStrategy {
 public:
  ElasticAdversary(double k, double initial_offset = 0.01,
                   double base_offset = -0.03)
      : k_(k), initial_offset_(initial_offset), base_offset_(base_offset) {}

  std::string name() const override { return "elastic_adversary"; }
  double InjectionPercentile(const RoundContext& ctx, Rng*) override {
    if (ctx.round <= 1 || std::isnan(last_threshold_)) {
      return ctx.tth + initial_offset_;
    }
    return ctx.tth + base_offset_ + k_ * (last_threshold_ - ctx.tth);
  }
  void Observe(const RoundObservation& obs) override {
    last_threshold_ = obs.collector_percentile;
  }
  void Reset() override { last_threshold_ = std::nan(""); }

 private:
  double k_;
  double initial_offset_;
  double base_offset_;
  double last_threshold_ = std::nan("");
};

/// \brief The blatant regression-poisoning play (the flip-and-shift attack
/// shape): every poison value sits far beyond the clean residual range —
/// positions around `base` > 1 extrapolate past the board's largest clean
/// residual, jittered per value so rounds do not stack on one magnitude.
/// Maximally damaging per point and maximally visible: the residual trim
/// removes it wholesale, which is exactly the bench's blatant baseline.
class FlipShiftAdversary : public AdversaryStrategy {
 public:
  explicit FlipShiftAdversary(double base = 1.25, double jitter = 0.1)
      : base_(base), jitter_(jitter) {}
  std::string name() const override { return "flip_shift"; }
  double InjectionPercentile(const RoundContext&, Rng* rng) override {
    return rng->Uniform(base_ - jitter_, base_ + jitter_);
  }

 private:
  double base_;
  double jitter_;
};

/// \brief The evasive regression-poisoning play: searches for the survival
/// boundary from adversary-side feedback. Starts at `start`; after a round
/// where every poison value survived it climbs by `step` (more damage per
/// point), and any trimmed poison drops it back two steps. State is a pure
/// function of the observation history, so checkpoint replay reconstructs
/// it exactly.
class OptimalRegressionAdversary : public AdversaryStrategy {
 public:
  explicit OptimalRegressionAdversary(double start = 0.85,
                                      double step = 0.01, double cap = 1.45)
      : start_(start), step_(step), cap_(cap), position_(start) {}
  std::string name() const override { return "optimal_regression"; }
  double InjectionPercentile(const RoundContext&, Rng*) override {
    return position_;
  }
  void Observe(const RoundObservation& obs) override {
    if (obs.poison_received == 0) return;
    if (obs.poison_kept == obs.poison_received) {
      position_ = std::min(cap_, position_ + step_);
    } else {
      position_ = std::max(0.0, position_ - 2.0 * step_);
    }
  }
  void Reset() override { position_ = start_; }

 private:
  double start_;
  double step_;
  double cap_;
  double position_;
};

/// \brief Mixed strategy of the Table-III study: position hi w.p. p,
/// position lo w.p. 1-p, drawn independently per poison value.
class MixedPercentileAdversary : public AdversaryStrategy {
 public:
  MixedPercentileAdversary(double p, double hi = 0.99, double lo = 0.90)
      : p_(p), hi_(hi), lo_(lo) {}
  std::string name() const override { return "mixed"; }
  double InjectionPercentile(const RoundContext&, Rng* rng) override {
    return rng->Bernoulli(p_) ? hi_ : lo_;
  }
  double p() const { return p_; }

 private:
  double p_;
  double hi_;
  double lo_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_STRATEGIES_H_
