// The complete trimming strategy space [xL, xR] of Section III-C.
//
// xL is the balance point where the loss from poison equals the trimming
// overhead (Fig 1a); xR is the largest value the collector believes a
// rational adversary would inject (Fig 2). Any injection point in [xL, xR]
// is a convex combination of the endpoints, i.e. a mixed strategy
// (pL, pR = 1 - pL); by additivity any poison-value *distribution* on the
// domain reduces to a single mixed-strategy point (Fig 1b), which is what
// makes the strategy space complete.
#ifndef ITRIM_GAME_STRATEGY_SPACE_H_
#define ITRIM_GAME_STRATEGY_SPACE_H_

#include <functional>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief A mixed strategy over the endpoints of [xL, xR].
struct MixedStrategy {
  double p_left = 0.0;   ///< probability mass on xL
  double p_right = 0.0;  ///< probability mass on xR (= 1 - p_left)

  /// \brief The strategy's position x = pL*xL + pR*xR.
  double Position(double x_left, double x_right) const {
    return p_left * x_left + p_right * x_right;
  }
};

/// \brief The complete strategy domain [xL, xR] for both parties.
class StrategySpace {
 public:
  /// Creates the domain; requires x_left < x_right.
  static Result<StrategySpace> Make(double x_left, double x_right);

  double x_left() const { return x_left_; }
  double x_right() const { return x_right_; }

  /// \brief True iff `x` lies in [xL, xR].
  bool Contains(double x) const { return x >= x_left_ && x <= x_right_; }

  /// \brief Reduces a single injection point to its mixed strategy
  /// (Section III-C2). Requires Contains(x).
  Result<MixedStrategy> ReduceToMixed(double x) const;

  /// \brief Reduces an arbitrary poison-value distribution (samples with
  /// weights) to a single mixed-strategy point via its mean, using the
  /// additivity argument of Fig 1b. Out-of-domain samples are clamped.
  MixedStrategy ReduceDistribution(const std::vector<double>& values) const;

 private:
  StrategySpace(double x_left, double x_right)
      : x_left_(x_left), x_right_(x_right) {}

  double x_left_;
  double x_right_;
};

/// \brief Solves for the balance point xL with P(xL) = T(xL) (Fig 1a) by
/// bisection on [lo, hi].
///
/// `poison_loss` must be non-decreasing and `trim_overhead` non-increasing
/// over the bracket, with (P - T) changing sign across it; otherwise
/// an error is returned.
Result<double> SolveBalancePoint(
    const std::function<double(double)>& poison_loss,
    const std::function<double(double)>& trim_overhead, double lo, double hi,
    double tolerance = 1e-10, int max_iterations = 200);

}  // namespace itrim

#endif  // ITRIM_GAME_STRATEGY_SPACE_H_
