// Stackelberg-equilibrium analysis of the repeated game under
// non-deterministic utility (Section V, Theorem 3).
//
// With roundwise cooperation gains g_a (adversary) and g_c (collector), the
// symmetric setting gives g_ac = (g_a + g_c)/2. The collector concedes a
// compromise δ in data utility and expects g0 = g_ac - δ per cooperative
// round. A defecting adversary is (mis)judged compliant with probability p
// because the utility function is probabilistic (e.g. LDP noise). With a
// roundwise discount rate d, compliance pays
//     g_com = g0 / (1 - d)
// and defection pays
//     g_def = g_ac / (1 - d p).
// The adversary complies iff g_com > g_def, i.e. δ < (d - dp)/(1 - dp)·g_ac.
#ifndef ITRIM_GAME_EQUILIBRIUM_H_
#define ITRIM_GAME_EQUILIBRIUM_H_

#include "common/rng.h"
#include "common/status.h"
#include "game/payoff.h"

namespace itrim {

/// \brief Parameters of the Theorem-3 setting.
struct ComplianceSetting {
  double g_ac = 1.0;   ///< symmetric cooperative roundwise gain
  double delta = 0.0;  ///< collector's utility compromise (redundancy)
  double d = 0.9;      ///< roundwise discount rate in (0, 1)
  double p = 0.5;      ///< P(defector judged compliant) in [0, 1]

  Status Validate() const;
};

/// \brief Discounted value of perpetual compliance: g0 / (1 - d).
double ComplianceValue(const ComplianceSetting& s);

/// \brief Discounted value of perpetual defection: g_ac / (1 - d p).
double DefectionValue(const ComplianceSetting& s);

/// \brief Largest compromise δ that still sustains compliance:
/// δ* = (d - dp)/(1 - dp) · g_ac (Theorem 3 boundary).
double MaxSustainableCompromise(double g_ac, double d, double p);

/// \brief True iff the adversary rationally complies (Theorem 3):
/// δ < (d - dp)/(1 - dp) · g_ac.
bool AdversaryComplies(const ComplianceSetting& s);

/// \brief Monte-Carlo estimate of the discounted gain of an always-defecting
/// adversary under probabilistic judgment; validates the closed form
/// g_ac / (1 - dp). Each episode runs until the defector is flagged
/// (probability 1-p per round) and payoffs are discounted by d.
double SimulateDefectionValue(const ComplianceSetting& s, int episodes,
                              Rng* rng, int max_rounds = 10000);

/// \brief Derives a Titfortat threshold compromise from payoffs: given the
/// ultimatum game and (p, d), returns the δ* boundary computed from
/// g_ac = (P + T̄ - P - T)/2 per Section V.
double TitfortatCompromiseBoundary(const UltimatumGame& game, double d,
                                   double p);

}  // namespace itrim

#endif  // ITRIM_GAME_EQUILIBRIUM_H_
