#include "game/indexed_board.h"

#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace itrim {

void IndexedBoard::Pull(uint32_t t) {
  Node& node = nodes_[t];
  node.count = 1 + CountOf(node.left) + CountOf(node.right);
}

uint32_t IndexedBoard::NewNode(double value) {
  uint32_t t;
  if (!free_.empty()) {
    t = free_.back();
    free_.pop_back();
    nodes_[t] = Node{};
  } else {
    t = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[t].value = value;
  nodes_[t].priority = priorities_.Next();
  return t;
}

void IndexedBoard::FreeNode(uint32_t t) { free_.push_back(t); }

uint32_t IndexedBoard::Merge(uint32_t a, uint32_t b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (nodes_[a].priority >= nodes_[b].priority) {
    nodes_[a].right = Merge(nodes_[a].right, b);
    Pull(a);
    return a;
  }
  nodes_[b].left = Merge(a, nodes_[b].left);
  Pull(b);
  return b;
}

void IndexedBoard::Split(uint32_t t, double key, bool or_equal, uint32_t* a,
                         uint32_t* b) {
  if (t == kNil) {
    *a = kNil;
    *b = kNil;
    return;
  }
  bool goes_left =
      or_equal ? (nodes_[t].value <= key) : (nodes_[t].value < key);
  if (goes_left) {
    *a = t;
    Split(nodes_[t].right, key, or_equal, &nodes_[t].right, b);
  } else {
    *b = t;
    Split(nodes_[t].left, key, or_equal, a, &nodes_[t].left);
  }
  Pull(t);
}

void IndexedBoard::Insert(double value) {
  uint32_t node = NewNode(value);
  uint32_t le, gt;
  Split(root_, value, /*or_equal=*/true, &le, &gt);
  root_ = Merge(Merge(le, node), gt);
}

bool IndexedBoard::EraseOne(double value) {
  uint32_t lt, ge, eq, gt;
  Split(root_, value, /*or_equal=*/false, &lt, &ge);
  Split(ge, value, /*or_equal=*/true, &eq, &gt);
  bool erased = eq != kNil;
  if (erased) {
    uint32_t victim = eq;
    eq = Merge(nodes_[victim].left, nodes_[victim].right);
    FreeNode(victim);
  }
  root_ = Merge(Merge(lt, eq), gt);
  return erased;
}

void IndexedBoard::Clear() {
  nodes_.clear();
  free_.clear();
  root_ = kNil;
}

void IndexedBoard::Reserve(size_t n) {
  nodes_.reserve(n);
  free_.reserve(n);
}

double IndexedBoard::Kth(size_t k) const {
  assert(k < size());
  uint32_t t = root_;
  for (;;) {
    size_t left = CountOf(nodes_[t].left);
    if (k < left) {
      t = nodes_[t].left;
    } else if (k == left) {
      return nodes_[t].value;
    } else {
      k -= left + 1;
      t = nodes_[t].right;
    }
  }
}

size_t IndexedBoard::CountLessEqual(double x) const {
  size_t count = 0;
  uint32_t t = root_;
  while (t != kNil) {
    // `!(v > x)` rather than `v <= x` so a NaN probe counts every value,
    // matching std::upper_bound over the sorted oracle.
    if (!(nodes_[t].value > x)) {
      count += CountOf(nodes_[t].left) + 1;
      t = nodes_[t].right;
    } else {
      t = nodes_[t].left;
    }
  }
  return count;
}

Result<double> IndexedBoard::Quantile(double q) const {
  const size_t n = size();
  if (n == 0) {
    return Status::FailedPrecondition("indexed board is empty");
  }
  // Literal transcription of QuantileSorted() with Kth() lookups.
  q = Clamp(q, 0.0, 1.0);
  if (n == 1) return Kth(0);
  double pos = q * static_cast<double>(n) - 0.5;
  if (pos <= 0.0) return Kth(0);
  if (pos >= static_cast<double>(n - 1)) return Kth(n - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  return Lerp(Kth(lo), Kth(lo + 1), frac);
}

double IndexedBoard::PercentileRank(double x) const {
  const size_t n = size();
  if (n == 0) return 0.0;
  return static_cast<double>(CountLessEqual(x)) / static_cast<double>(n);
}

}  // namespace itrim
