#include "game/collection_game.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "stats/quantile.h"

namespace itrim {

Status GameConfig::Validate() const {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (round_size == 0) return Status::InvalidArgument("round_size must be > 0");
  if (attack_ratio < 0.0) {
    return Status::InvalidArgument("attack_ratio must be >= 0");
  }
  if (!(tth > 0.0 && tth < 1.0)) {
    return Status::InvalidArgument("tth must be in (0,1)");
  }
  if (bootstrap_size == 0) {
    return Status::InvalidArgument("bootstrap_size must be > 0");
  }
  return Status::OK();
}

double GameSummary::UntrimmedPoisonFraction() const {
  size_t kept = TotalKept();
  if (kept == 0) return 0.0;
  return static_cast<double>(TotalPoisonKept()) / static_cast<double>(kept);
}

double GameSummary::BenignLossFraction() const {
  size_t received = 0, kept = 0;
  for (const auto& r : rounds) {
    received += r.benign_received;
    kept += r.benign_kept;
  }
  if (received == 0) return 0.0;
  return static_cast<double>(received - kept) / static_cast<double>(received);
}

double GameSummary::PoisonSurvivalRate() const {
  size_t received = 0, kept = 0;
  for (const auto& r : rounds) {
    received += r.poison_received;
    kept += r.poison_kept;
  }
  if (received == 0) return 0.0;
  return static_cast<double>(kept) / static_cast<double>(received);
}

size_t GameSummary::TotalKept() const {
  size_t n = 0;
  for (const auto& r : rounds) n += r.benign_kept + r.poison_kept;
  return n;
}

size_t GameSummary::TotalPoisonKept() const {
  size_t n = 0;
  for (const auto& r : rounds) n += r.poison_kept;
  return n;
}

size_t GameSummary::TotalBenignKept() const {
  size_t n = 0;
  for (const auto& r : rounds) n += r.benign_kept;
  return n;
}

namespace {

// Builds the context both strategies see at the start of round i.
RoundContext MakeContext(int round, const GameConfig& config,
                         const PublicBoard* board,
                         const RoundObservation* prev) {
  RoundContext ctx;
  ctx.round = round;
  ctx.tth = config.tth;
  ctx.board = board;
  if (prev != nullptr) {
    ctx.prev_collector_percentile = prev->collector_percentile;
    ctx.prev_injection_percentile = prev->injection_percentile;
    ctx.prev_quality = prev->quality;
  }
  return ctx;
}

}  // namespace

ScalarCollectionGame::ScalarCollectionGame(
    GameConfig config, const std::vector<double>* benign_pool,
    CollectorStrategy* collector, AdversaryStrategy* adversary,
    QualityEvaluation* quality)
    : config_(config), benign_pool_(benign_pool), collector_(collector),
      adversary_(adversary), quality_(quality),
      board_(config.board_capacity, config.seed ^ 0x9E3779B97F4A7C15ULL) {
  assert(benign_pool != nullptr && collector != nullptr &&
         adversary != nullptr);
}

Result<GameSummary> ScalarCollectionGame::Run() {
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (benign_pool_->empty()) {
    return Status::FailedPrecondition("benign pool is empty");
  }
  Rng rng(config_.seed);
  collector_->Reset();
  adversary_->Reset();
  board_.Clear();
  retained_.clear();
  retained_is_poison_.clear();

  // Round 0: a clean calibration sample seeds the public board and fixes
  // the percentile reference both parties speak in. Trimming against a
  // reference that absorbed its own truncated output would spiral the
  // cutoff downward; anchoring it on the clean round-0 sample (the same
  // sample Algorithm 1's QE(X0) baseline comes from) keeps the percentile
  // domain stable, while all adaptivity lives in the strategies.
  for (size_t i = 0; i < config_.bootstrap_size; ++i) {
    board_.RecordOne(
        (*benign_pool_)[rng.UniformInt(benign_pool_->size())]);
  }

  GameSummary summary;
  RoundObservation prev;
  bool have_prev = false;
  // Fractional poison accrues across rounds so that tiny attack ratios
  // (fewer than one poison value per round) still inject the right total.
  double poison_quota = 0.0;

  for (int round = 1; round <= config_.rounds; ++round) {
    poison_quota +=
        config_.attack_ratio * static_cast<double>(config_.round_size);
    const size_t poison_count = static_cast<size_t>(poison_quota);
    poison_quota -= static_cast<double>(poison_count);
    RoundContext ctx =
        MakeContext(round, config_, &board_, have_prev ? &prev : nullptr);
    double trim_percentile = collector_->TrimPercentile(ctx);

    // Benign arrivals.
    std::vector<double> received;
    std::vector<char> is_poison;
    received.reserve(config_.round_size + poison_count);
    is_poison.reserve(config_.round_size + poison_count);
    for (size_t i = 0; i < config_.round_size; ++i) {
      received.push_back(
          (*benign_pool_)[rng.UniformInt(benign_pool_->size())]);
      is_poison.push_back(0);
    }
    // Poison injection at board-percentile positions.
    double injection_sum = 0.0;
    for (size_t i = 0; i < poison_count; ++i) {
      double a = adversary_->InjectionPercentile(ctx, &rng);
      a = Clamp(a, 0.0, 1.0);
      injection_sum += a;
      ITRIM_ASSIGN_OR_RETURN(double value, board_.Quantile(a));
      received.push_back(value);
      is_poison.push_back(1);
    }
    double injection_mean =
        poison_count > 0 ? injection_sum / static_cast<double>(poison_count)
                         : std::nan("");

    // Quality is assessed on the received (pre-trim) round.
    double quality_score =
        quality_ != nullptr ? quality_->Evaluate(received, board_) : 1.0;

    // Trim.
    TrimOutcome outcome;
    if (trim_percentile >= 1.0) {
      outcome.keep.assign(received.size(), 1);
      outcome.kept_count = received.size();
      outcome.cutoff = std::numeric_limits<double>::infinity();
    } else if (config_.round_mass_trimming) {
      outcome = TrimTopFraction(received, trim_percentile);
    } else {
      ITRIM_ASSIGN_OR_RETURN(
          outcome,
          TrimAtReferencePercentile(received, board_.values(),
                                    trim_percentile));
    }

    RoundRecord record;
    record.round = round;
    record.collector_percentile = trim_percentile;
    record.injection_percentile = injection_mean;
    record.cutoff = outcome.cutoff;
    record.quality = quality_score;
    for (size_t i = 0; i < received.size(); ++i) {
      bool poison = is_poison[i] != 0;
      if (poison) {
        ++record.poison_received;
      } else {
        ++record.benign_received;
      }
      if (outcome.keep[i]) {
        if (poison) {
          ++record.poison_kept;
        } else {
          ++record.benign_kept;
        }
        retained_.push_back(received[i]);
        retained_is_poison_.push_back(is_poison[i]);
      }
    }
    summary.rounds.push_back(record);

    prev = RoundObservation{round,
                            trim_percentile,
                            injection_mean,
                            quality_score,
                            received.size(),
                            record.benign_kept + record.poison_kept,
                            record.poison_received,
                            record.poison_kept};
    have_prev = true;
    collector_->Observe(prev);
    adversary_->Observe(prev);
  }
  summary.termination_round = collector_->termination_round();
  return summary;
}

DistanceCollectionGame::DistanceCollectionGame(GameConfig config,
                                               const Dataset* source,
                                               CollectorStrategy* collector,
                                               AdversaryStrategy* adversary,
                                               QualityEvaluation* quality)
    : config_(config), source_(source), collector_(collector),
      adversary_(adversary), quality_(quality),
      distance_board_(config.board_capacity,
                      config.seed ^ 0xC2B2AE3D27D4EB4FULL) {
  assert(source != nullptr && collector != nullptr && adversary != nullptr);
}

Result<GameSummary> DistanceCollectionGame::Run() {
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (source_->rows.empty()) {
    return Status::FailedPrecondition("source dataset is empty");
  }
  Rng rng(config_.seed);
  collector_->Reset();
  adversary_->Reset();
  distance_board_.Clear();
  retained_ = Dataset{};
  retained_.name = source_->name + "/retained";
  retained_.num_clusters = source_->num_clusters;
  retained_is_poison_.clear();

  // Round 0: the clean calibration sample fixes the percentile geometry
  // (per-feature quantile-vector map) and seeds the board with benign
  // position scores.
  std::vector<std::vector<double>> bootstrap;
  bootstrap.reserve(config_.bootstrap_size);
  for (size_t i = 0; i < config_.bootstrap_size; ++i) {
    bootstrap.push_back(source_->rows[rng.UniformInt(source_->rows.size())]);
  }
  ITRIM_ASSIGN_OR_RETURN(position_map_, PositionMap::Build(bootstrap));
  centroid_ = position_map_.centroid();
  for (const auto& row : bootstrap) {
    distance_board_.RecordOne(position_map_.PositionOfRow(row));
  }

  GameSummary summary;
  RoundObservation prev;
  bool have_prev = false;
  const bool labeled = source_->labeled();
  // Fractional poison accrues across rounds (see ScalarCollectionGame).
  double poison_quota = 0.0;

  for (int round = 1; round <= config_.rounds; ++round) {
    poison_quota +=
        config_.attack_ratio * static_cast<double>(config_.round_size);
    const size_t poison_count = static_cast<size_t>(poison_quota);
    poison_quota -= static_cast<double>(poison_count);
    RoundContext ctx = MakeContext(round, config_, &distance_board_,
                                   have_prev ? &prev : nullptr);
    double trim_percentile = collector_->TrimPercentile(ctx);

    std::vector<std::vector<double>> received;
    std::vector<int> received_labels;
    std::vector<char> is_poison;
    received.reserve(config_.round_size + poison_count);
    for (size_t i = 0; i < config_.round_size; ++i) {
      size_t idx = static_cast<size_t>(rng.UniformInt(source_->rows.size()));
      received.push_back(source_->rows[idx]);
      if (labeled) received_labels.push_back(source_->labels[idx]);
      is_poison.push_back(0);
    }

    // Colluding Sybil attackers share one direction per round: the
    // data-meaningful quantile direction ("all features high"), jittered so
    // rounds do not stack on one exact ray.
    std::vector<double> direction = rng.UnitVector(source_->dims());
    {
      const auto& qdir = position_map_.quantile_direction();
      double norm_sq = 0.0;
      for (size_t j = 0; j < direction.size(); ++j) {
        direction[j] = qdir[j] + 0.5 * direction[j];
        norm_sq += direction[j] * direction[j];
      }
      double inv = 1.0 / std::sqrt(norm_sq);
      for (double& v : direction) v *= inv;
    }
    double injection_sum = 0.0;
    for (size_t i = 0; i < poison_count; ++i) {
      double a = adversary_->InjectionPercentile(ctx, &rng);
      a = Clamp(a, 0.0, 1.5);
      injection_sum += a;
      received.push_back(position_map_.MakePoint(a, direction));
      if (labeled) {
        // Opportunistic label claims: drawn at random per value, which
        // plants *contradictory* constraints at the injection point — for a
        // max-margin learner that forces slack and distorts the weights far
        // more than a consistently-labeled cluster would.
        received_labels.push_back(static_cast<int>(
            rng.UniformInt(std::max<size_t>(1, source_->num_clusters))));
      }
      is_poison.push_back(1);
    }
    double injection_mean =
        poison_count > 0 ? injection_sum / static_cast<double>(poison_count)
                         : std::nan("");

    // Score every row by its percentile position; the whole round plays out
    // in the shared percentile coordinate.
    std::vector<double> scores;
    scores.reserve(received.size());
    for (const auto& row : received) {
      scores.push_back(position_map_.PositionOfRow(row));
    }
    double quality_score =
        quality_ != nullptr ? quality_->Evaluate(scores, distance_board_)
                            : 1.0;

    TrimOutcome outcome;
    if (trim_percentile >= 1.0) {
      outcome.keep.assign(received.size(), 1);
      outcome.kept_count = received.size();
      outcome.cutoff = std::numeric_limits<double>::infinity();
    } else if (config_.round_mass_trimming) {
      outcome = TrimTopFraction(scores, trim_percentile);
    } else {
      // Positions *are* percentiles: the threshold applies directly.
      outcome = TrimAboveValue(scores, trim_percentile);
    }

    RoundRecord record;
    record.round = round;
    record.collector_percentile = trim_percentile;
    record.injection_percentile = injection_mean;
    record.cutoff = outcome.cutoff;
    record.quality = quality_score;
    for (size_t i = 0; i < received.size(); ++i) {
      bool poison = is_poison[i] != 0;
      if (poison) {
        ++record.poison_received;
      } else {
        ++record.benign_received;
      }
      if (outcome.keep[i]) {
        if (poison) {
          ++record.poison_kept;
        } else {
          ++record.benign_kept;
        }
        retained_.rows.push_back(std::move(received[i]));
        if (labeled) retained_.labels.push_back(received_labels[i]);
        retained_is_poison_.push_back(is_poison[i]);
      }
    }
    summary.rounds.push_back(record);

    prev = RoundObservation{round,
                            trim_percentile,
                            injection_mean,
                            quality_score,
                            received.size(),
                            record.benign_kept + record.poison_kept,
                            record.poison_received,
                            record.poison_kept};
    have_prev = true;
    collector_->Observe(prev);
    adversary_->Observe(prev);
  }
  summary.termination_round = collector_->termination_round();
  return summary;
}

}  // namespace itrim
