#include "game/collection_game.h"

#include <cassert>

namespace itrim {

ScalarCollectionGame::ScalarCollectionGame(
    GameConfig config, const std::vector<double>* benign_pool,
    CollectorStrategy* collector, AdversaryStrategy* adversary,
    QualityEvaluation* quality)
    : model_(benign_pool),
      session_(config, &model_, collector, adversary, quality) {
  assert(benign_pool != nullptr && collector != nullptr &&
         adversary != nullptr);
}

Result<GameSummary> ScalarCollectionGame::Run() {
  return session_.RunToCompletion();
}

DistanceCollectionGame::DistanceCollectionGame(GameConfig config,
                                               const Dataset* source,
                                               CollectorStrategy* collector,
                                               AdversaryStrategy* adversary,
                                               QualityEvaluation* quality)
    : model_(source),
      session_(config, &model_, collector, adversary, quality) {
  assert(source != nullptr && collector != nullptr && adversary != nullptr);
}

Result<GameSummary> DistanceCollectionGame::Run() {
  return session_.RunToCompletion();
}

}  // namespace itrim
