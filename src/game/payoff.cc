#include "game/payoff.h"

namespace itrim {

std::string_view StanceName(Stance s) {
  return s == Stance::kSoft ? "Soft" : "Hard";
}

Status PayoffParams::Validate() const {
  if (!(t_soft > 0.0)) {
    return Status::InvalidArgument("require T > 0");
  }
  if (!(p_soft > t_soft)) {
    return Status::InvalidArgument("require P > T");
  }
  if (!(t_hard > p_soft)) {
    return Status::InvalidArgument("require T-bar > P");
  }
  if (!(p_hard > t_hard)) {
    return Status::InvalidArgument("require P-bar > T-bar");
  }
  return Status::OK();
}

UltimatumGame::UltimatumGame(PayoffParams params) : params_(params) {}

PayoffPair UltimatumGame::Payoff(Stance c, Stance a) const {
  if (c == Stance::kHard) {
    // Hard trimming (near xL) removes any rational poison: the adversary
    // gains nothing and the collector pays the hard-trim overhead.
    return {-params_.t_hard, 0.0};
  }
  if (a == Stance::kSoft) {
    // Soft poison survives the soft trim.
    return {-params_.p_soft - params_.t_soft, params_.p_soft};
  }
  // Hard poison survives the soft trim.
  return {-params_.p_hard - params_.t_soft, params_.p_hard};
}

std::vector<std::pair<Stance, Stance>> UltimatumGame::PureNashEquilibria()
    const {
  std::vector<std::pair<Stance, Stance>> out;
  const Stance stances[2] = {Stance::kSoft, Stance::kHard};
  for (Stance c : stances) {
    for (Stance a : stances) {
      double col = Payoff(c, a).collector;
      double adv = Payoff(c, a).adversary;
      bool collector_best = true, adversary_best = true;
      for (Stance c2 : stances) {
        if (Payoff(c2, a).collector > col) collector_best = false;
      }
      for (Stance a2 : stances) {
        if (Payoff(c, a2).adversary > adv) adversary_best = false;
      }
      if (collector_best && adversary_best) out.emplace_back(c, a);
    }
  }
  return out;
}

bool UltimatumGame::HasPrisonersDilemmaStructure() const {
  // (Hard, Hard) must be an equilibrium and (Soft, Soft) must strictly
  // improve both parties over it.
  PayoffPair hard = Payoff(Stance::kHard, Stance::kHard);
  PayoffPair soft = Payoff(Stance::kSoft, Stance::kSoft);
  bool hard_is_eq = false;
  for (auto& [c, a] : PureNashEquilibria()) {
    if (c == Stance::kHard && a == Stance::kHard) hard_is_eq = true;
  }
  return hard_is_eq && soft.collector > hard.collector &&
         soft.adversary > hard.adversary;
}

double UltimatumGame::CollectorCooperationGain() const {
  return params_.t_hard - params_.p_soft - params_.t_soft;
}

double UltimatumGame::AdversaryCooperationGain() const {
  return params_.p_soft;
}

double UltimatumGame::SymmetricCooperationGain() const {
  return 0.5 * (AdversaryCooperationGain() + CollectorCooperationGain());
}

}  // namespace itrim
