#include "game/score_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace itrim {

Result<TrimOutcome> ScoreModel::TrimAtReference(double percentile,
                                                const PublicBoard& board) {
  TrimOutcome out;
  ITRIM_RETURN_NOT_OK(TrimAtReferenceInto(percentile, board, &out));
  return out;
}

size_t ScoreModel::PoisonCount(const GameConfig& config, double* quota) const {
  // Fractional poison accrues across rounds so that tiny attack ratios
  // (fewer than one poison value per round) still inject the right total.
  *quota += config.attack_ratio * static_cast<double>(config.round_size);
  const size_t count = static_cast<size_t>(*quota);
  *quota -= static_cast<double>(count);
  return count;
}

// ---------------------------------------------------------------------------
// IdentityScoreModel
// ---------------------------------------------------------------------------

IdentityScoreModel::IdentityScoreModel(const std::vector<double>* benign_pool)
    : benign_pool_(benign_pool) {}

Status IdentityScoreModel::BeginRun() {
  if (benign_pool_ == nullptr || benign_pool_->empty()) {
    return Status::FailedPrecondition("benign pool is empty");
  }
  retained_.clear();
  retained_is_poison_.clear();
  return Status::OK();
}

Status IdentityScoreModel::Bootstrap(size_t bootstrap_size, Rng* rng,
                                     PublicBoard* board) {
  for (size_t i = 0; i < bootstrap_size; ++i) {
    board->RecordOne((*benign_pool_)[rng->UniformInt(benign_pool_->size())]);
  }
  return Status::OK();
}

void IdentityScoreModel::BeginRound(size_t expected) {
  values_.clear();
  is_poison_.clear();
  values_.reserve(expected);
  is_poison_.reserve(expected);
}

void IdentityScoreModel::AppendBenign(size_t count, Rng* rng) {
  index_scratch_.resize(count);
  rng->FillUniformInt(benign_pool_->size(), index_scratch_.data(), count);
  for (size_t i = 0; i < count; ++i) {
    values_.push_back((*benign_pool_)[index_scratch_[i]]);
    is_poison_.push_back(0);
  }
}

Status IdentityScoreModel::AppendPoison(double position, Rng* /*rng*/,
                                        const PublicBoard& board) {
  // Poison "at percentile a" is the board's a-quantile value: the attack
  // plants mass exactly where the reference distribution puts that rank.
  ITRIM_ASSIGN_OR_RETURN(double value, board.Quantile(position));
  values_.push_back(value);
  is_poison_.push_back(1);
  return Status::OK();
}

Status IdentityScoreModel::TrimAtReferenceInto(double percentile,
                                               const PublicBoard& board,
                                               TrimOutcome* out) {
  ITRIM_ASSIGN_OR_RETURN(double cutoff, board.Quantile(percentile));
  TrimAboveValueInto(values_, cutoff, out);
  return Status::OK();
}

void IdentityScoreModel::Commit(const std::vector<char>& keep) {
  if (!retain_survivors_) return;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (keep[i]) {
      retained_.push_back(values_[i]);
      retained_is_poison_.push_back(is_poison_[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// DistanceScoreModel
// ---------------------------------------------------------------------------

DistanceScoreModel::DistanceScoreModel(const Dataset* source)
    : source_(source) {}

Status DistanceScoreModel::BeginRun() {
  if (source_ == nullptr || source_->rows.empty()) {
    return Status::FailedPrecondition("source dataset is empty");
  }
  labeled_ = source_->labeled();
  retained_ = Dataset{};
  retained_.name = source_->name + "/retained";
  retained_.num_clusters = source_->num_clusters;
  retained_is_poison_.clear();
  return Status::OK();
}

Status DistanceScoreModel::Bootstrap(size_t bootstrap_size, Rng* rng,
                                     PublicBoard* board) {
  // The clean calibration sample fixes the percentile geometry
  // (per-feature quantile-vector map) and seeds the board with benign
  // position scores.
  std::vector<std::vector<double>> bootstrap;
  bootstrap.reserve(bootstrap_size);
  for (size_t i = 0; i < bootstrap_size; ++i) {
    bootstrap.push_back(source_->rows[rng->UniformInt(source_->rows.size())]);
  }
  ITRIM_ASSIGN_OR_RETURN(position_map_, PositionMap::Build(bootstrap));
  centroid_ = position_map_.centroid();
  for (const auto& row : bootstrap) {
    board->RecordOne(position_map_.PositionOfRow(row));
  }
  source_scores_.resize(source_->rows.size());
  for (size_t i = 0; i < source_->rows.size(); ++i) {
    source_scores_[i] = position_map_.PositionOfRow(source_->rows[i]);
  }
  return Status::OK();
}

void DistanceScoreModel::BeginRound(size_t expected) {
  rows_used_ = 0;
  labels_.clear();
  scores_.clear();
  is_poison_.clear();
  rows_.reserve(expected);
  scores_.reserve(expected);
  is_poison_.reserve(expected);
}

std::vector<double>* DistanceScoreModel::NextRowSlot() {
  if (rows_used_ == rows_.size()) rows_.emplace_back();
  return &rows_[rows_used_++];
}

void DistanceScoreModel::AppendBenign(size_t count, Rng* rng) {
  index_scratch_.resize(count);
  rng->FillUniformInt(source_->rows.size(), index_scratch_.data(), count);
  for (size_t i = 0; i < count; ++i) {
    const size_t idx = static_cast<size_t>(index_scratch_[i]);
    if (retain_survivors_) {
      // Rows are only ever consumed by Commit(); a streaming session that
      // retains nothing never materializes them.
      const std::vector<double>& src = source_->rows[idx];
      NextRowSlot()->assign(src.begin(), src.end());
    }
    if (labeled_) labels_.push_back(source_->labels[idx]);
    scores_.push_back(source_scores_[idx]);
    is_poison_.push_back(0);
  }
}

void DistanceScoreModel::PrepareInjection(Rng* rng) {
  // Colluding Sybil attackers share one direction per round: the
  // data-meaningful quantile direction ("all features high"), jittered so
  // rounds do not stack on one exact ray.
  rng->UnitVectorInto(source_->dims(), &direction_);
  const auto& qdir = position_map_.quantile_direction();
  double norm_sq = 0.0;
  for (size_t j = 0; j < direction_.size(); ++j) {
    direction_[j] = qdir[j] + 0.5 * direction_[j];
    norm_sq += direction_[j] * direction_[j];
  }
  double inv = 1.0 / std::sqrt(norm_sq);
  for (double& v : direction_) v *= inv;
}

Status DistanceScoreModel::AppendPoison(double position, Rng* rng,
                                        const PublicBoard& /*board*/) {
  // Poison rows are freshly fabricated, so their scores are computed on
  // arrival either way; only the destination differs (a retained-round
  // slot vs a reused scratch row).
  std::vector<double>* row =
      retain_survivors_ ? NextRowSlot() : &poison_row_scratch_;
  position_map_.MakePointInto(position, direction_, row);
  if (labeled_) {
    // Opportunistic label claims: drawn at random per value, which plants
    // *contradictory* constraints at the injection point — for a max-margin
    // learner that forces slack and distorts the weights far more than a
    // consistently-labeled cluster would.
    labels_.push_back(static_cast<int>(
        rng->UniformInt(std::max<size_t>(1, source_->num_clusters))));
  }
  scores_.push_back(position_map_.PositionOfRow(*row));
  is_poison_.push_back(1);
  return Status::OK();
}

Status DistanceScoreModel::TrimAtReferenceInto(double percentile,
                                               const PublicBoard& /*board*/,
                                               TrimOutcome* out) {
  // Positions *are* percentiles: the threshold applies directly.
  TrimAboveValueInto(scores_, percentile, out);
  return Status::OK();
}

void DistanceScoreModel::Commit(const std::vector<char>& keep) {
  if (!retain_survivors_) return;
  for (size_t i = 0; i < rows_used_; ++i) {
    if (keep[i]) {
      retained_.rows.push_back(std::move(rows_[i]));
      if (labeled_) retained_.labels.push_back(labels_[i]);
      retained_is_poison_.push_back(is_poison_[i]);
    }
  }
}

}  // namespace itrim
