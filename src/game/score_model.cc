#include "game/score_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "game/kernels.h"

namespace itrim {

size_t ScoreModel::PoisonCount(const GameConfig& config, double* quota) const {
  // Fractional poison accrues across rounds so that tiny attack ratios
  // (fewer than one poison value per round) still inject the right total.
  *quota += config.attack_ratio * static_cast<double>(config.round_size);
  const size_t count = static_cast<size_t>(*quota);
  *quota -= static_cast<double>(count);
  return count;
}

Status ScoreModel::AppendPoisonBatch(std::span<const double> positions,
                                     Rng* rng, const PublicBoard& board) {
  // Default: the per-observation hook in a loop — identical RNG order, so
  // overriding this is only ever a dispatch-count optimization.
  for (double position : positions) {
    ITRIM_RETURN_NOT_OK(AppendPoison(position, rng, board));
  }
  return Status::OK();
}

Status ScoreModel::CheckScoreSpans(std::span<const double> obs,
                                   std::span<double> out) const {
  const size_t width = ObsWidth();
  if (width == 0) {
    return Status::FailedPrecondition("model has no observation width yet");
  }
  if (obs.size() != out.size() * width) {
    return Status::InvalidArgument(
        "obs span holds " + std::to_string(obs.size()) + " doubles; " +
        std::to_string(out.size()) + " scores of width " +
        std::to_string(width) + " need " +
        std::to_string(out.size() * width));
  }
  return Status::OK();
}

Status ScoreModel::ScoreInto(std::span<const double> obs,
                             std::span<double> out) const {
  return ScoreIntoScalar(obs, out);
}

Status ScoreModel::ScoreIntoScalar(std::span<const double> obs,
                                   std::span<double> out) const {
  ITRIM_RETURN_NOT_OK(CheckScoreSpans(obs, out));
  const size_t width = ObsWidth();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = ScoreObservation(obs.subspan(i * width, width));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IdentityScoreModel
// ---------------------------------------------------------------------------

IdentityScoreModel::IdentityScoreModel(const std::vector<double>* benign_pool)
    : benign_pool_(benign_pool) {}

Status IdentityScoreModel::BeginRun() {
  if (benign_pool_ == nullptr || benign_pool_->empty()) {
    return Status::FailedPrecondition("benign pool is empty");
  }
  retained_.clear();
  retained_is_poison_.clear();
  return Status::OK();
}

Status IdentityScoreModel::Bootstrap(size_t bootstrap_size, Rng* rng,
                                     PublicBoard* board) {
  for (size_t i = 0; i < bootstrap_size; ++i) {
    board->RecordOne((*benign_pool_)[rng->UniformInt(benign_pool_->size())]);
  }
  return Status::OK();
}

void IdentityScoreModel::BeginRound(size_t expected) {
  values_.clear();
  is_poison_.clear();
  values_.reserve(expected);
  is_poison_.reserve(expected);
}

void IdentityScoreModel::AppendBenignBatch(size_t count, Rng* rng) {
  index_scratch_.resize(count);
  rng->FillUniformInt(benign_pool_->size(), index_scratch_.data(), count);
  for (size_t i = 0; i < count; ++i) {
    values_.push_back((*benign_pool_)[index_scratch_[i]]);
    is_poison_.push_back(0);
  }
}

Status IdentityScoreModel::AppendBenignBatch(std::span<const double> obs) {
  values_.insert(values_.end(), obs.begin(), obs.end());
  is_poison_.insert(is_poison_.end(), obs.size(), 0);
  return Status::OK();
}

Status IdentityScoreModel::AppendPoison(double position, Rng* /*rng*/,
                                        const PublicBoard& board) {
  // Poison "at percentile a" is the board's a-quantile value: the attack
  // plants mass exactly where the reference distribution puts that rank.
  ITRIM_ASSIGN_OR_RETURN(double value, board.Quantile(position));
  values_.push_back(value);
  is_poison_.push_back(1);
  return Status::OK();
}

double IdentityScoreModel::ScoreObservation(std::span<const double> obs) const {
  // Scalar setting: the value IS the score.
  return obs[0];
}

Status IdentityScoreModel::ScoreInto(std::span<const double> obs,
                                     std::span<double> out) const {
  ITRIM_RETURN_NOT_OK(CheckScoreSpans(obs, out));
  std::copy(obs.begin(), obs.end(), out.begin());
  return Status::OK();
}

Status IdentityScoreModel::TrimAtReference(double percentile,
                                           const PublicBoard& board,
                                           TrimOutcome* out) {
  ITRIM_ASSIGN_OR_RETURN(double cutoff, board.Quantile(percentile));
  TrimAboveValueInto(values_, cutoff, out);
  return Status::OK();
}

void IdentityScoreModel::Commit(std::span<const char> keep) {
  if (!retain_survivors_) return;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (keep[i]) {
      retained_.push_back(values_[i]);
      retained_is_poison_.push_back(is_poison_[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// DistanceScoreModel
// ---------------------------------------------------------------------------

DistanceScoreModel::DistanceScoreModel(const Dataset* source)
    : source_(source) {}

Status DistanceScoreModel::BeginRun() {
  if (source_ == nullptr || source_->rows.empty()) {
    return Status::FailedPrecondition("source dataset is empty");
  }
  labeled_ = source_->labeled();
  dims_ = source_->dims();
  poison_row_scratch_.resize(dims_);
  retained_ = Dataset{};
  retained_.name = source_->name + "/retained";
  retained_.num_clusters = source_->num_clusters;
  retained_is_poison_.clear();
  return Status::OK();
}

Status DistanceScoreModel::Bootstrap(size_t bootstrap_size, Rng* rng,
                                     PublicBoard* board) {
  // The clean calibration sample fixes the percentile geometry
  // (per-feature quantile-vector map) and seeds the board with benign
  // position scores.
  std::vector<std::vector<double>> bootstrap;
  bootstrap.reserve(bootstrap_size);
  for (size_t i = 0; i < bootstrap_size; ++i) {
    bootstrap.push_back(source_->rows[rng->UniformInt(source_->rows.size())]);
  }
  ITRIM_ASSIGN_OR_RETURN(position_map_, PositionMap::Build(bootstrap));
  centroid_ = position_map_.centroid();
  // Board seeding and the source-score cache both run through the batched
  // kernel sweep; the doubles match per-row scoring exactly (the kernel
  // shares the canonical distance with PositionOfRow).
  std::vector<double> flat(bootstrap_size * dims_);
  for (size_t i = 0; i < bootstrap_size; ++i) {
    std::copy(bootstrap[i].begin(), bootstrap[i].end(),
              flat.begin() + static_cast<ptrdiff_t>(i * dims_));
  }
  std::vector<double> positions(bootstrap_size);
  position_map_.PositionsOfRows(flat, bootstrap_size, positions);
  for (double p : positions) {
    board->RecordOne(p);
  }
  const size_t n_source = source_->rows.size();
  flat.resize(n_source * dims_);
  for (size_t i = 0; i < n_source; ++i) {
    std::copy(source_->rows[i].begin(), source_->rows[i].end(),
              flat.begin() + static_cast<ptrdiff_t>(i * dims_));
  }
  source_scores_.resize(n_source);
  position_map_.PositionsOfRows(flat, n_source, source_scores_);
  return Status::OK();
}

void DistanceScoreModel::BeginRound(size_t expected) {
  rows_used_ = 0;
  labels_.clear();
  scores_.clear();
  is_poison_.clear();
  scores_.reserve(expected);
  is_poison_.reserve(expected);
}

std::span<double> DistanceScoreModel::NextRowSlot() {
  const size_t needed = (rows_used_ + 1) * dims_;
  if (row_data_.size() < needed) row_data_.resize(needed);
  return std::span<double>(row_data_.data() + rows_used_++ * dims_, dims_);
}

void DistanceScoreModel::AppendBenignBatch(size_t count, Rng* rng) {
  index_scratch_.resize(count);
  rng->FillUniformInt(source_->rows.size(), index_scratch_.data(), count);
  for (size_t i = 0; i < count; ++i) {
    const size_t idx = static_cast<size_t>(index_scratch_[i]);
    if (retain_survivors_) {
      // Rows are only ever consumed by Commit(); a streaming session that
      // retains nothing never materializes them.
      const std::vector<double>& src = source_->rows[idx];
      std::span<double> slot = NextRowSlot();
      std::copy(src.begin(), src.end(), slot.begin());
    }
    if (labeled_) labels_.push_back(source_->labels[idx]);
    scores_.push_back(source_scores_[idx]);
    is_poison_.push_back(0);
  }
}

Status DistanceScoreModel::AppendBenignBatch(std::span<const double> obs) {
  if (dims_ == 0) {
    return Status::FailedPrecondition("model is not bootstrapped");
  }
  if (labeled_) {
    return Status::FailedPrecondition(
        "labeled sources cannot ingest external rows (no labels attached)");
  }
  if (obs.size() % dims_ != 0) {
    return Status::InvalidArgument("obs span is not a whole number of rows");
  }
  const size_t n = obs.size() / dims_;
  if (retain_survivors_) {
    for (size_t i = 0; i < n; ++i) {
      std::span<double> slot = NextRowSlot();
      std::copy(obs.begin() + static_cast<ptrdiff_t>(i * dims_),
                obs.begin() + static_cast<ptrdiff_t>((i + 1) * dims_),
                slot.begin());
    }
  }
  const size_t old = scores_.size();
  scores_.resize(old + n);
  position_map_.PositionsOfRows(obs, n,
                                std::span<double>(scores_).subspan(old));
  is_poison_.insert(is_poison_.end(), n, 0);
  return Status::OK();
}

void DistanceScoreModel::PrepareInjection(Rng* rng) {
  // Colluding Sybil attackers share one direction per round: the
  // data-meaningful quantile direction ("all features high"), jittered so
  // rounds do not stack on one exact ray.
  rng->UnitVectorInto(source_->dims(), &direction_);
  const auto& qdir = position_map_.quantile_direction();
  double norm_sq = 0.0;
  for (size_t j = 0; j < direction_.size(); ++j) {
    direction_[j] = qdir[j] + 0.5 * direction_[j];
    norm_sq += direction_[j] * direction_[j];
  }
  double inv = 1.0 / std::sqrt(norm_sq);
  for (double& v : direction_) v *= inv;
}

Status DistanceScoreModel::AppendPoison(double position, Rng* rng,
                                        const PublicBoard& /*board*/) {
  // Poison rows are freshly fabricated, so their scores are computed on
  // arrival either way; only the destination differs (a retained-round
  // slot vs a reused scratch row).
  std::span<double> row =
      retain_survivors_ ? NextRowSlot() : std::span<double>(poison_row_scratch_);
  position_map_.MakePointInto(position, direction_, row);
  if (labeled_) {
    // Opportunistic label claims: drawn at random per value, which plants
    // *contradictory* constraints at the injection point — for a max-margin
    // learner that forces slack and distorts the weights far more than a
    // consistently-labeled cluster would.
    labels_.push_back(static_cast<int>(
        rng->UniformInt(std::max<size_t>(1, source_->num_clusters))));
  }
  scores_.push_back(position_map_.PositionOfRow(row));
  is_poison_.push_back(1);
  return Status::OK();
}

size_t DistanceScoreModel::ObsWidth() const {
  if (dims_ > 0) return dims_;
  return source_ != nullptr ? source_->dims() : 0;
}

double DistanceScoreModel::ScoreObservation(std::span<const double> obs) const {
  return position_map_.PositionOfRow(obs);
}

Status DistanceScoreModel::ScoreInto(std::span<const double> obs,
                                     std::span<double> out) const {
  ITRIM_RETURN_NOT_OK(CheckScoreSpans(obs, out));
  position_map_.PositionsOfRows(obs, out.size(), out);
  return Status::OK();
}

Status DistanceScoreModel::TrimAtReference(double percentile,
                                           const PublicBoard& /*board*/,
                                           TrimOutcome* out) {
  // Positions *are* percentiles: the threshold applies directly.
  TrimAboveValueInto(scores_, percentile, out);
  return Status::OK();
}

void DistanceScoreModel::Commit(std::span<const char> keep) {
  if (!retain_survivors_) return;
  for (size_t i = 0; i < rows_used_; ++i) {
    if (keep[i]) {
      const double* row = row_data_.data() + i * dims_;
      retained_.rows.emplace_back(row, row + dims_);
      if (labeled_) retained_.labels.push_back(labels_[i]);
      retained_is_poison_.push_back(is_poison_[i]);
    }
  }
}

}  // namespace itrim
