#include "game/strategies.h"

#include <cstdio>

namespace itrim {

std::string ElasticCollector::FormatK() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2g", k_);
  return buf;
}

}  // namespace itrim
