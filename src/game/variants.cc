#include "game/variants.h"

namespace itrim {

void TitForTwoTatsCollector::Observe(const RoundObservation& obs) {
  if (triggered_ || std::isnan(obs.quality)) return;
  if (obs.quality < trigger_quality_) {
    ++consecutive_bad_;
    if (consecutive_bad_ >= 2) {
      triggered_ = true;
      termination_round_ = obs.round;
    }
  } else {
    consecutive_bad_ = 0;
  }
}

void GenerousTitfortatCollector::Observe(const RoundObservation& obs) {
  if (penalty_left_ > 0) --penalty_left_;
  if (std::isnan(obs.quality) || obs.quality >= trigger_quality_) return;
  if (rng_.Bernoulli(generosity_)) return;  // forgiven
  penalty_left_ = penalty_rounds_;
  ++triggers_;
  if (first_trigger_round_ == 0) first_trigger_round_ = obs.round;
}

void PavlovCollector::Observe(const RoundObservation& obs) {
  if (std::isnan(obs.quality)) return;
  bool bad = obs.quality < trigger_quality_;
  if (bad) {
    hard_ = !hard_;
    if (first_shift_round_ == 0) first_shift_round_ = obs.round;
  }
}

}  // namespace itrim
