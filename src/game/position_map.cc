#include "game/position_map.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "stats/quantile.h"

namespace itrim {

Result<PositionMap> PositionMap::Build(
    const std::vector<std::vector<double>>& sample) {
  if (sample.size() < 2) {
    return Status::InvalidArgument("position map needs >= 2 sample rows");
  }
  const size_t dims = sample[0].size();
  if (dims == 0) return Status::InvalidArgument("zero-dimensional rows");
  for (const auto& row : sample) {
    if (row.size() != dims) {
      return Status::InvalidArgument("ragged sample matrix");
    }
  }
  PositionMap map;
  map.centroid_ = Centroid(sample);

  // Sort each feature column once; evaluate the quantile vector per knot.
  std::vector<std::vector<double>> columns(dims);
  for (size_t j = 0; j < dims; ++j) {
    columns[j].reserve(sample.size());
    for (const auto& row : sample) columns[j].push_back(row[j]);
    std::sort(columns[j].begin(), columns[j].end());
  }
  const size_t knots =
      static_cast<size_t>(std::lround((1.0 - kGridLo) / kGridStep)) + 1;
  map.grid_distance_.resize(knots);
  std::vector<double> qvec(dims);
  for (size_t i = 0; i < knots; ++i) {
    double a = kGridLo + static_cast<double>(i) * kGridStep;
    for (size_t j = 0; j < dims; ++j) {
      qvec[j] = QuantileSorted(columns[j], a);
    }
    map.grid_distance_[i] = EuclideanDistance(qvec, map.centroid_);
  }
  // Enforce monotonicity (running max): skewed features can make the raw
  // curve dip locally; the envelope keeps the inverse well-defined.
  for (size_t i = 1; i < knots; ++i) {
    map.grid_distance_[i] =
        std::max(map.grid_distance_[i], map.grid_distance_[i - 1]);
  }
  // Guard against a degenerate (constant) sample.
  if (map.grid_distance_.back() <= 0.0) {
    return Status::InvalidArgument("sample has no spread around centroid");
  }
  // Canonical adversarial direction: toward the 0.95 quantile vector.
  for (size_t j = 0; j < dims; ++j) {
    qvec[j] = QuantileSorted(columns[j], 0.95);
  }
  map.quantile_direction_.resize(dims);
  double norm = EuclideanDistance(qvec, map.centroid_);
  if (norm <= 0.0) norm = 1.0;
  for (size_t j = 0; j < dims; ++j) {
    map.quantile_direction_[j] = (qvec[j] - map.centroid_[j]) / norm;
  }
  return map;
}

double PositionMap::DistanceAt(double position) const {
  const double d_lo = grid_distance_.front();
  const double d_hi = grid_distance_.back();
  if (position <= kGridLo) {
    // Shrink linearly toward the centroid.
    return d_lo * std::max(position, 0.0) / kGridLo;
  }
  if (position >= 1.0) {
    // Extrapolate beyond the observed domain proportionally.
    return d_hi * (1.0 + (position - 1.0));
  }
  double idx = (position - kGridLo) / kGridStep;
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, grid_distance_.size() - 1);
  return Lerp(grid_distance_[lo], grid_distance_[hi],
              idx - static_cast<double>(lo));
}

double PositionMap::PositionOf(double distance) const {
  const double d_lo = grid_distance_.front();
  const double d_hi = grid_distance_.back();
  if (distance <= d_lo) {
    return d_lo > 0.0 ? kGridLo * distance / d_lo : 0.0;
  }
  if (distance >= d_hi) {
    return 1.0 + (distance - d_hi) / d_hi;
  }
  // Binary search the monotone grid, then invert the linear segment.
  auto it = std::lower_bound(grid_distance_.begin(), grid_distance_.end(),
                             distance);
  size_t hi = static_cast<size_t>(it - grid_distance_.begin());
  size_t lo = hi == 0 ? 0 : hi - 1;
  double span = grid_distance_[hi] - grid_distance_[lo];
  double frac = span > 0.0 ? (distance - grid_distance_[lo]) / span : 0.0;
  return kGridLo + (static_cast<double>(lo) + frac) * kGridStep;
}

double PositionMap::PositionOfRow(const std::vector<double>& row) const {
  return PositionOf(EuclideanDistance(row, centroid_));
}

std::vector<double> PositionMap::MakePoint(
    double position, const std::vector<double>& direction) const {
  std::vector<double> out;
  MakePointInto(position, direction, &out);
  return out;
}

void PositionMap::MakePointInto(double position,
                                const std::vector<double>& direction,
                                std::vector<double>* out) const {
  assert(direction.size() == centroid_.size());
  out->assign(centroid_.begin(), centroid_.end());
  Axpy(DistanceAt(position), direction, out);
}

}  // namespace itrim
