#include "game/position_map.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "game/kernels.h"
#include "stats/quantile.h"

namespace itrim {

Result<PositionMap> PositionMap::Build(
    const std::vector<std::vector<double>>& sample) {
  if (sample.size() < 2) {
    return Status::InvalidArgument("position map needs >= 2 sample rows");
  }
  const size_t dims = sample[0].size();
  if (dims == 0) return Status::InvalidArgument("zero-dimensional rows");
  for (const auto& row : sample) {
    if (row.size() != dims) {
      return Status::InvalidArgument("ragged sample matrix");
    }
  }
  PositionMap map;
  map.centroid_ = Centroid(sample);

  // Sort each feature column once; evaluate the quantile vector per knot.
  std::vector<std::vector<double>> columns(dims);
  for (size_t j = 0; j < dims; ++j) {
    columns[j].reserve(sample.size());
    for (const auto& row : sample) columns[j].push_back(row[j]);
    std::sort(columns[j].begin(), columns[j].end());
  }
  const size_t knots =
      static_cast<size_t>(std::lround((1.0 - kGridLo) / kGridStep)) + 1;
  map.grid_distance_.resize(knots);
  std::vector<double> qvec(dims);
  for (size_t i = 0; i < knots; ++i) {
    double a = kGridLo + static_cast<double>(i) * kGridStep;
    for (size_t j = 0; j < dims; ++j) {
      qvec[j] = QuantileSorted(columns[j], a);
    }
    map.grid_distance_[i] = EuclideanDistance(qvec, map.centroid_);
  }
  // Enforce monotonicity (running max): skewed features can make the raw
  // curve dip locally; the envelope keeps the inverse well-defined.
  for (size_t i = 1; i < knots; ++i) {
    map.grid_distance_[i] =
        std::max(map.grid_distance_[i], map.grid_distance_[i - 1]);
  }
  // Guard against a degenerate (constant) sample.
  if (map.grid_distance_.back() <= 0.0) {
    return Status::InvalidArgument("sample has no spread around centroid");
  }
  // Canonical adversarial direction: toward the 0.95 quantile vector.
  for (size_t j = 0; j < dims; ++j) {
    qvec[j] = QuantileSorted(columns[j], 0.95);
  }
  map.quantile_direction_.resize(dims);
  double norm = EuclideanDistance(qvec, map.centroid_);
  if (norm <= 0.0) norm = 1.0;
  for (size_t j = 0; j < dims; ++j) {
    map.quantile_direction_[j] = (qvec[j] - map.centroid_[j]) / norm;
  }
  map.BuildInversionIndex();
  return map;
}

void PositionMap::BuildInversionIndex() {
  inv_bucket_start_.clear();
  inv_bucket_scale_ = 0.0;
  const double d_lo = grid_distance_.front();
  const double d_hi = grid_distance_.back();
  if (!(d_hi > d_lo)) return;  // flat grid: the search branch is unreachable
  inv_bucket_scale_ = static_cast<double>(kInvBuckets) / (d_hi - d_lo);
  inv_bucket_start_.resize(kInvBuckets);
  for (size_t b = 0; b < kInvBuckets; ++b) {
    const double edge =
        d_lo + static_cast<double>(b) / inv_bucket_scale_;
    const auto it = std::lower_bound(grid_distance_.begin(),
                                     grid_distance_.end(), edge);
    inv_bucket_start_[b] =
        static_cast<uint32_t>(it - grid_distance_.begin());
  }
}

size_t PositionMap::UpperKnot(double distance) const {
  // Bucket the query, then walk to the exact lower_bound. The walk is what
  // makes the accelerator exact: a start index perturbed by FP rounding of
  // the bucket edges still converges to the same knot a binary search
  // returns, and with ~5 buckets per knot it is almost always 0 steps.
  size_t b = static_cast<size_t>((distance - grid_distance_.front()) *
                                 inv_bucket_scale_);
  if (b >= inv_bucket_start_.size()) b = inv_bucket_start_.size() - 1;
  size_t hi = inv_bucket_start_[b];
  while (hi > 0 && grid_distance_[hi - 1] >= distance) --hi;
  while (grid_distance_[hi] < distance) ++hi;
  return hi;
}

double PositionMap::DistanceAt(double position) const {
  const double d_lo = grid_distance_.front();
  const double d_hi = grid_distance_.back();
  if (position <= kGridLo) {
    // Shrink linearly toward the centroid.
    return d_lo * std::max(position, 0.0) / kGridLo;
  }
  if (position >= 1.0) {
    // Extrapolate beyond the observed domain proportionally.
    return d_hi * (1.0 + (position - 1.0));
  }
  double idx = (position - kGridLo) / kGridStep;
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, grid_distance_.size() - 1);
  return Lerp(grid_distance_[lo], grid_distance_[hi],
              idx - static_cast<double>(lo));
}

double PositionMap::PositionOf(double distance) const {
  const double d_lo = grid_distance_.front();
  const double d_hi = grid_distance_.back();
  if (distance <= d_lo) {
    return d_lo > 0.0 ? kGridLo * distance / d_lo : 0.0;
  }
  if (distance >= d_hi) {
    return 1.0 + (distance - d_hi) / d_hi;
  }
  // Locate the monotone grid segment (O(1) bucket accelerator, exact
  // lower_bound semantics), then invert the linear piece.
  size_t hi = UpperKnot(distance);
  size_t lo = hi == 0 ? 0 : hi - 1;
  double span = grid_distance_[hi] - grid_distance_[lo];
  double frac = span > 0.0 ? (distance - grid_distance_[lo]) / span : 0.0;
  return kGridLo + (static_cast<double>(lo) + frac) * kGridStep;
}

double PositionMap::PositionOfRow(std::span<const double> row) const {
  return PositionOf(EuclideanDistance(row, centroid_));
}

void PositionMap::PositionsOfRows(std::span<const double> rows, size_t n_rows,
                                  std::span<double> out) const {
  assert(rows.size() == n_rows * centroid_.size());
  assert(out.size() >= n_rows);
  // One batched distance sweep, then the grid inversion: sqrt is
  // correctly rounded and the kernel shares the canonical lane order with
  // EuclideanDistance, so this matches per-row PositionOfRow bit for bit.
  kernels::DistancesToCenter(rows.data(), n_rows, centroid_.size(),
                             centroid_.data(), out.data());
  // The inversion is PositionOf with the grid/bucket state hoisted out of
  // the per-row call: same branches, same arithmetic, same bits. In the
  // interior branch hi >= 1 always (grid[0] = d_lo < distance), so the
  // hi == 0 guard of PositionOf is dropped rather than re-checked.
  const double d_lo = grid_distance_.front();
  const double d_hi = grid_distance_.back();
  const double* grid = grid_distance_.data();
  const uint32_t* buckets = inv_bucket_start_.data();
  const size_t n_buckets = inv_bucket_start_.size();
  const double scale = inv_bucket_scale_;
  for (size_t r = 0; r < n_rows; ++r) {
    const double distance = out[r];
    if (distance <= d_lo) {
      out[r] = d_lo > 0.0 ? kGridLo * distance / d_lo : 0.0;
    } else if (distance >= d_hi) {
      out[r] = 1.0 + (distance - d_hi) / d_hi;
    } else {
      size_t b = static_cast<size_t>((distance - d_lo) * scale);
      if (b >= n_buckets) b = n_buckets - 1;
      size_t hi = buckets[b];
      while (hi > 0 && grid[hi - 1] >= distance) --hi;
      while (grid[hi] < distance) ++hi;
      const size_t lo = hi - 1;
      const double span = grid[hi] - grid[lo];
      const double frac = span > 0.0 ? (distance - grid[lo]) / span : 0.0;
      out[r] = kGridLo + (static_cast<double>(lo) + frac) * kGridStep;
    }
  }
}

std::vector<double> PositionMap::MakePoint(
    double position, std::span<const double> direction) const {
  std::vector<double> out;
  MakePointInto(position, direction, &out);
  return out;
}

void PositionMap::MakePointInto(double position,
                                std::span<const double> direction,
                                std::vector<double>* out) const {
  out->resize(centroid_.size());
  MakePointInto(position, direction, std::span<double>(*out));
}

void PositionMap::MakePointInto(double position,
                                std::span<const double> direction,
                                std::span<double> out) const {
  assert(direction.size() == centroid_.size());
  assert(out.size() == centroid_.size());
  const double scale = DistanceAt(position);
  for (size_t j = 0; j < centroid_.size(); ++j) {
    out[j] = centroid_[j] + scale * direction[j];
  }
}

}  // namespace itrim
