#include "game/quality.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "game/kernels.h"

namespace itrim {

namespace {

// Fraction of `values` strictly above `cutoff`.
double FractionAbove(std::span<const double> values, double cutoff) {
  if (values.empty()) return 0.0;
  size_t count = kernels::CountGreater(values.data(), values.size(), cutoff);
  return static_cast<double>(count) / static_cast<double>(values.size());
}

// Fraction of `values` at or above `cutoff` (atoms at the cutoff included:
// poison injected exactly at a band edge must count toward that band).
double FractionAtOrAbove(std::span<const double> values, double cutoff) {
  if (values.empty()) return 0.0;
  size_t count = kernels::CountAtLeast(values.data(), values.size(), cutoff);
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace

double TailMassQuality::Evaluate(std::span<const double> round_values,
                                 const PublicBoard& board) {
  auto q = board.Quantile(tth_);
  if (!q.ok()) return 1.0;  // no reference yet: assume clean
  double observed = FractionAbove(round_values, *q);
  double expected = 1.0 - tth_;
  return Clamp(1.0 - std::max(0.0, observed - expected), 0.0, 1.0);
}

double DefectShareQuality::Evaluate(std::span<const double> round_values,
                                    const PublicBoard& board) {
  if (round_values.empty() || board.size() == 0) return 1.0;
  double lo_cut, hi_cut, expected_band, expected_tail;
  if (mode_ == CutoffMode::kBoardQuantile) {
    auto lo = board.Quantile(band_lo_);
    auto hi = board.Quantile(band_hi_);
    if (!lo.ok() || !hi.ok()) return 1.0;
    lo_cut = *lo;
    hi_cut = *hi;
    expected_band = band_hi_ - band_lo_;
    expected_tail = 1.0 - band_hi_;
  } else {
    lo_cut = band_lo_;
    hi_cut = band_hi_;
    // Empirical clean occupancies from the calibration board.
    double board_above_lo = FractionAtOrAbove(board.values(), lo_cut);
    double board_above_hi = FractionAtOrAbove(board.values(), hi_cut);
    expected_band = board_above_lo - board_above_hi;
    expected_tail = board_above_hi;
  }
  double n = static_cast<double>(round_values.size());
  // Observed counts: equilibrium tail [hi, inf), defect band [lo, hi).
  double tail = FractionAtOrAbove(round_values, hi_cut) * n;
  double band = FractionAtOrAbove(round_values, lo_cut) * n - tail;
  // Solve for the benign count jointly with the two poison masses: with
  // poison confined to band+tail, the observations satisfy
  //   band = e_band * n_benign + defect,  tail = e_tail * n_benign + equi,
  //   n = n_benign + defect + equi,
  // which pins n_benign = (n - band - tail) / (1 - e_band - e_tail).
  // (Scaling expectations by the raw round size would over-subtract benign
  // mass and bias the defect share toward equilibrium.)
  double denom = 1.0 - expected_band - expected_tail;
  if (denom <= 0.0) return 1.0;
  double n_benign = Clamp((n - band - tail) / denom, 0.0, n);
  double est_defect = std::max(0.0, band - expected_band * n_benign);
  double est_equilibrium = std::max(0.0, tail - expected_tail * n_benign);
  double total = est_defect + est_equilibrium;
  // Below the occupancy sampling-noise floor (~3 binomial standard
  // deviations) there is no evidence of an attack and the defect share
  // would be pure noise: report full quality.
  double noise_floor =
      std::max(0.02 * n,
               3.0 * std::sqrt(n * (expected_band + expected_tail)));
  if (total <= noise_floor) return 1.0;
  return Clamp(1.0 - est_defect / total, 0.0, 1.0);
}

NoisyDefectShareQuality::NoisyDefectShareQuality(
    double band_lo, double band_hi, double sigma0, double sigma_tail,
    uint64_t seed, DefectShareQuality::CutoffMode mode)
    : inner_(band_lo, band_hi, mode), sigma0_(sigma0),
      sigma_tail_(sigma_tail), rng_(seed) {}

double NoisyDefectShareQuality::Evaluate(
    std::span<const double> round_values, const PublicBoard& board) {
  double q = inner_.Evaluate(round_values, board);
  // Estimation noise grows with the equilibrium-tail share (q itself): mass
  // deep in the sparse tail is pinned down by very few benign observations.
  double sigma = sigma0_ + sigma_tail_ * q;
  return Clamp(q + rng_.Normal(0.0, sigma), 0.0, 1.0);
}

}  // namespace itrim
