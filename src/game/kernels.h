// Batched scoring kernels behind the ScoreModel v2 hot path.
//
// Every per-observation loop the round protocol runs at scale — distance
// evaluation, tail counting, trim masking — lives here as a free function
// over raw spans, compiled twice from one shared body (kernels_impl.inc):
//
//  * generic  — the portable baseline, default optimization flags;
//  * vector   — the same translation unit built with auto-vectorization
//               (-O3 -ftree-vectorize and, on x86-64, -mavx2), selected at
//               runtime only when the CPU reports AVX2.
//
// The dispatch shim guarantees *bit-identical doubles* from both variants,
// which is what lets the engine's bit-identity suites (legacy replicas,
// session property suites, board fuzz) gate a SIMD rollout at all. The
// contract rests on three rules, enforced by construction:
//
//  1. Fixed association. FP reductions use four independent accumulator
//     lanes over strided indices, combined as (a0 + a1) + (a2 + a3) — the
//     same IEEE operation sequence whether the lanes live in scalar
//     registers or one SIMD register. (For n <= 4 the lane order degenerates
//     to the sequential sum, so tiny vectors keep their historical values.)
//  2. No contraction. Both variants compile with -ffp-contract=off and
//     without -mfma, so a mul+add never fuses into an FMA on one side only.
//  3. Exact operations elsewhere. Comparisons, integer counts and
//     correctly-rounded sqrt are bitwise variant-independent by IEEE 754.
//
// Order-sensitive sequential sums (e.g. the LDP tail-mean signal) are *not*
// kernels on purpose: vectorizing them would require reassociation.
#ifndef ITRIM_GAME_KERNELS_H_
#define ITRIM_GAME_KERNELS_H_

#include <cstddef>

namespace itrim::kernels {

/// \brief Writes keep[i] = 1 iff !(values[i] > cutoff) (NaN kept, matching
/// the engine's legacy trim semantics); returns the kept count.
size_t MaskAtMost(const double* values, size_t n, double cutoff, char* keep);

/// \brief Writes keep[i] = 1 iff !(values[i] > hi || values[i] < lo) (the
/// LDP symmetric band; NaN kept); returns the kept count.
size_t MaskInBand(const double* values, size_t n, double lo, double hi,
                  char* keep);

/// \brief Number of values strictly above `cutoff`.
size_t CountGreater(const double* values, size_t n, double cutoff);

/// \brief Number of values at or above `cutoff`.
size_t CountAtLeast(const double* values, size_t n, double cutoff);

/// \brief Squared Euclidean distance in the canonical 4-lane association
/// (lane k accumulates indices congruent to k mod 4; lanes combine as
/// (a0 + a1) + (a2 + a3)). This IS the library-wide distance definition:
/// common/math_util.h delegates here, so scalar call sites and batched
/// kernels agree bit for bit.
double SquaredDistance(const double* a, const double* b, size_t n);

/// \brief Inner product in the canonical 4-lane association (the dot-product
/// sibling of SquaredDistance). Model predictions — the linear-regression
/// fitter, the residual score model's scalar path and the batched residual
/// kernel — all evaluate w . x through this, so they agree bit for bit.
double LaneDot(const double* a, const double* b, size_t n);

/// \brief out[r] = |y_r - (w . x_r + bias)| for `n_rows` contiguous flat
/// regression observations [x_0..x_{d-1}, y] of `width` = d + 1 doubles
/// (row-major). The dot product runs in the canonical 4-lane association,
/// so the batch is bitwise-identical to per-row LaneDot evaluation.
void AbsResidualsToModel(const double* rows, size_t n_rows, size_t width,
                         const double* weights, double bias, double* out);

/// \brief out[r] = Euclidean distance of row r to `center` for `n_rows`
/// contiguous rows of width `dims` (row-major). sqrt is correctly rounded,
/// so the batch is bitwise-identical to per-row scalar evaluation.
void DistancesToCenter(const double* rows, size_t n_rows, size_t dims,
                       const double* center, double* out);

// ---------------------------------------------------------------------------
// Runtime dispatch control (tests and benches force variants; production
// code never needs to).
// ---------------------------------------------------------------------------

enum class Variant {
  kGeneric = 0,  ///< portable build, always present
  kVector = 1,   ///< auto-vectorized build, used when the CPU allows it
};

/// \brief True when the vector build may run on this CPU (x86-64 with AVX2).
bool VectorAvailable();

/// \brief Variant the free functions above currently dispatch to.
Variant ActiveVariant();

/// \brief Human-readable variant name ("generic" / "vector").
const char* VariantName(Variant variant);

/// \brief Test hook: pins dispatch to `variant`. Forcing kVector on a CPU
/// without AVX2 support is ignored (the generic build stays active).
void ForceVariant(Variant variant);

/// \brief Returns dispatch to runtime auto-detection.
void ResetVariant();

}  // namespace itrim::kernels

#endif  // ITRIM_GAME_KERNELS_H_
