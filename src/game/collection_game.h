// The round-wise online collection game (Fig 3).
//
// Each round: the collector picks a trim percentile from the public board,
// normal users contribute benign samples, the adversary injects poison at
// percentile positions of its choosing, the round is trimmed, survivors are
// recorded on the board, and both parties observe the outcome. Two variants:
//
//  * ScalarCollectionGame  — 1-D values (the LDP / Taxi setting).
//  * DistanceCollectionGame — d-dimensional rows scored through the
//    PositionMap percentile geometry (the k-means / SVM / SOM setting);
//    poison rows are fabricated at a target percentile position along a
//    shared random direction (colluding Sybil attackers).
#ifndef ITRIM_GAME_COLLECTION_GAME_H_
#define ITRIM_GAME_COLLECTION_GAME_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "game/position_map.h"
#include "game/public_board.h"
#include "game/quality.h"
#include "game/strategies.h"
#include "game/trimmer.h"

namespace itrim {

/// \brief Configuration shared by both game variants.
struct GameConfig {
  int rounds = 20;              ///< number of collection rounds
  size_t round_size = 500;      ///< benign samples per round
  double attack_ratio = 0.1;    ///< poison count = attack_ratio * round_size
  double tth = 0.9;             ///< nominal threshold percentile
  size_t bootstrap_size = 500;  ///< clean board seed (round 0)
  size_t board_capacity = 20000;  ///< reservoir cap (0 = unbounded)
  /// When true, trimming removes the top (1 - q) fraction of the received
  /// round itself instead of cutting at the board's q-quantile value.
  bool round_mass_trimming = false;
  uint64_t seed = 42;

  Status Validate() const;
};

/// \brief Per-round bookkeeping of one game run.
struct RoundRecord {
  int round = 0;
  double collector_percentile = kNoTrim;
  double injection_percentile = 0.0;  ///< mean over this round's poison
  double cutoff = 0.0;
  double quality = 1.0;
  size_t benign_received = 0;
  size_t poison_received = 0;
  size_t benign_kept = 0;
  size_t poison_kept = 0;
};

/// \brief Outcome of a full game run.
struct GameSummary {
  std::vector<RoundRecord> rounds;
  /// 0 when the collector's judgement never triggered.
  int termination_round = 0;

  /// \brief Poison kept / total kept, across all rounds.
  double UntrimmedPoisonFraction() const;
  /// \brief Benign removed / benign received, across all rounds.
  double BenignLossFraction() const;
  /// \brief Poison kept / poison received, across all rounds.
  double PoisonSurvivalRate() const;

  size_t TotalKept() const;
  size_t TotalPoisonKept() const;
  size_t TotalBenignKept() const;
};

/// \brief Scalar (1-D) collection game.
class ScalarCollectionGame {
 public:
  /// All pointers are borrowed and must outlive the game. `quality` may be
  /// null (rounds then score 1.0). The benign pool is sampled with
  /// replacement each round.
  ScalarCollectionGame(GameConfig config, const std::vector<double>* benign_pool,
                       CollectorStrategy* collector,
                       AdversaryStrategy* adversary,
                       QualityEvaluation* quality);

  /// \brief Runs the configured number of rounds from a fresh board.
  /// Strategies are Reset() at the start.
  Result<GameSummary> Run();

  /// \brief Retained values accumulated by the last Run().
  const std::vector<double>& retained() const { return retained_; }
  /// \brief Poison flags parallel to retained().
  const std::vector<char>& retained_is_poison() const {
    return retained_is_poison_;
  }
  /// \brief The public board state after the last Run().
  const PublicBoard& board() const { return board_; }

 private:
  GameConfig config_;
  const std::vector<double>* benign_pool_;
  CollectorStrategy* collector_;
  AdversaryStrategy* adversary_;
  QualityEvaluation* quality_;
  PublicBoard board_;
  std::vector<double> retained_;
  std::vector<char> retained_is_poison_;
};

/// \brief Multi-dimensional collection game with distance-based trimming.
class DistanceCollectionGame {
 public:
  /// `source` provides benign rows (sampled with replacement, labels kept).
  DistanceCollectionGame(GameConfig config, const Dataset* source,
                         CollectorStrategy* collector,
                         AdversaryStrategy* adversary,
                         QualityEvaluation* quality);

  /// \brief Runs the game; afterwards retained_data() holds the sanitized
  /// training set (poison rows carry adversary-chosen labels).
  Result<GameSummary> Run();

  /// \brief Survivor rows + labels after the last Run().
  const Dataset& retained_data() const { return retained_; }
  /// \brief Poison flags parallel to retained_data().rows.
  const std::vector<char>& retained_is_poison() const {
    return retained_is_poison_;
  }
  /// \brief Reference centroid fixed from the clean bootstrap sample.
  const std::vector<double>& reference_centroid() const { return centroid_; }

  /// \brief The percentile geometry built from the bootstrap (valid after
  /// Run()).
  const PositionMap& position_map() const { return position_map_; }

 private:
  GameConfig config_;
  const Dataset* source_;
  CollectorStrategy* collector_;
  AdversaryStrategy* adversary_;
  QualityEvaluation* quality_;
  PublicBoard distance_board_;
  PositionMap position_map_;
  std::vector<double> centroid_;
  Dataset retained_;
  std::vector<char> retained_is_poison_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_COLLECTION_GAME_H_
