// Batch adapters over the streaming collection-game engine (Fig 3).
//
// The round protocol lives in TrimmingSession (game/session.h) and the
// data-setting specifics in the ScoreModels (game/score_model.h); the two
// classes here bundle a model with a session and play the configured number
// of rounds in one Run() call:
//
//  * ScalarCollectionGame  — 1-D values (the LDP / Taxi setting).
//  * DistanceCollectionGame — d-dimensional rows scored through the
//    PositionMap percentile geometry (the k-means / SVM / SOM setting);
//    poison rows are fabricated at a target percentile position along a
//    shared random direction (colluding Sybil attackers).
//
// Both adapters reproduce the pre-refactor monolithic Run() loops bit for
// bit at fixed seed (tests/game/session_test.cc holds replicas of the seed
// loops and asserts GameSummary equality across every scheme). Incremental
// consumers should use TrimmingSession directly.
#ifndef ITRIM_GAME_COLLECTION_GAME_H_
#define ITRIM_GAME_COLLECTION_GAME_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "game/position_map.h"
#include "game/public_board.h"
#include "game/quality.h"
#include "game/score_model.h"
#include "game/session.h"
#include "game/strategies.h"
#include "game/trimmer.h"

namespace itrim {

/// \brief Scalar (1-D) collection game.
class ScalarCollectionGame {
 public:
  /// All pointers are borrowed and must outlive the game. `quality` may be
  /// null (rounds then score 1.0). The benign pool is sampled with
  /// replacement each round.
  ScalarCollectionGame(GameConfig config, const std::vector<double>* benign_pool,
                       CollectorStrategy* collector,
                       AdversaryStrategy* adversary,
                       QualityEvaluation* quality);

  /// \brief Runs the configured number of rounds from a fresh board.
  /// Strategies are Reset() at the start.
  Result<GameSummary> Run();

  /// \brief Retained values accumulated by the last Run().
  const std::vector<double>& retained() const { return model_.retained(); }
  /// \brief Poison flags parallel to retained().
  const std::vector<char>& retained_is_poison() const {
    return model_.retained_is_poison();
  }
  /// \brief The public board state after the last Run().
  const PublicBoard& board() const { return session_.board(); }
  /// \brief The underlying streaming session (for incremental use).
  TrimmingSession& session() { return session_; }

 private:
  IdentityScoreModel model_;
  TrimmingSession session_;
};

/// \brief Multi-dimensional collection game with distance-based trimming.
class DistanceCollectionGame {
 public:
  /// `source` provides benign rows (sampled with replacement, labels kept).
  DistanceCollectionGame(GameConfig config, const Dataset* source,
                         CollectorStrategy* collector,
                         AdversaryStrategy* adversary,
                         QualityEvaluation* quality);

  /// \brief Runs the game; afterwards retained_data() holds the sanitized
  /// training set (poison rows carry adversary-chosen labels).
  Result<GameSummary> Run();

  /// \brief Survivor rows + labels after the last Run().
  const Dataset& retained_data() const { return model_.retained_data(); }
  /// \brief Poison flags parallel to retained_data().rows.
  const std::vector<char>& retained_is_poison() const {
    return model_.retained_is_poison();
  }
  /// \brief Reference centroid fixed from the clean bootstrap sample.
  const std::vector<double>& reference_centroid() const {
    return model_.reference_centroid();
  }

  /// \brief The percentile geometry built from the bootstrap (valid after
  /// Run()).
  const PositionMap& position_map() const { return model_.position_map(); }

  /// \brief The underlying streaming session (for incremental use).
  TrimmingSession& session() { return session_; }

 private:
  DistanceScoreModel model_;
  TrimmingSession session_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_COLLECTION_GAME_H_
