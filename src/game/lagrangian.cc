#include "game/lagrangian.h"

#include <cassert>
#include <cmath>

namespace itrim {

GameLagrangian::GameLagrangian(double m_a, double m_c,
                               const InteractionPotential* potential)
    : m_a_(m_a), m_c_(m_c), potential_(potential) {
  assert(m_a > 0.0 && m_c > 0.0);
  assert(potential != nullptr);
}

double GameLagrangian::Evaluate(const GameState& s) const {
  double kinetic = 0.5 * m_a_ * s.v_a * s.v_a + 0.5 * m_c_ * s.v_c * s.v_c;
  return kinetic - potential_->Energy(s.u_a, s.u_c);
}

double GameLagrangian::Energy(const GameState& s) const {
  double kinetic = 0.5 * m_a_ * s.v_a * s.v_a + 0.5 * m_c_ * s.v_c * s.v_c;
  return kinetic + potential_->Energy(s.u_a, s.u_c);
}

void GameLagrangian::Accelerations(const GameState& s, double* a_a,
                                   double* a_c) const {
  *a_a = -potential_->GradA(s.u_a, s.u_c) / m_a_;
  *a_c = -potential_->GradC(s.u_a, s.u_c) / m_c_;
}

GameState EulerLagrangeIntegrator::Derivative(const GameState& s) const {
  GameState d;
  d.u_a = s.v_a;
  d.u_c = s.v_c;
  lagrangian_->Accelerations(s, &d.v_a, &d.v_c);
  return d;
}

GameState EulerLagrangeIntegrator::Step(const GameState& s, double dr) const {
  auto add = [](const GameState& a, const GameState& b, double scale) {
    return GameState{a.u_a + scale * b.u_a, a.u_c + scale * b.u_c,
                     a.v_a + scale * b.v_a, a.v_c + scale * b.v_c};
  };
  GameState k1 = Derivative(s);
  GameState k2 = Derivative(add(s, k1, dr / 2.0));
  GameState k3 = Derivative(add(s, k2, dr / 2.0));
  GameState k4 = Derivative(add(s, k3, dr));
  GameState out = s;
  out.u_a += dr / 6.0 * (k1.u_a + 2 * k2.u_a + 2 * k3.u_a + k4.u_a);
  out.u_c += dr / 6.0 * (k1.u_c + 2 * k2.u_c + 2 * k3.u_c + k4.u_c);
  out.v_a += dr / 6.0 * (k1.v_a + 2 * k2.v_a + 2 * k3.v_a + k4.v_a);
  out.v_c += dr / 6.0 * (k1.v_c + 2 * k2.v_c + 2 * k3.v_c + k4.v_c);
  return out;
}

std::vector<TrajectoryPoint> EulerLagrangeIntegrator::Integrate(
    const GameState& initial, double dr, int steps) const {
  assert(dr > 0.0 && steps >= 0);
  std::vector<TrajectoryPoint> out;
  out.reserve(static_cast<size_t>(steps) + 1);
  GameState s = initial;
  double r = 0.0;
  out.push_back({r, s});
  for (int i = 0; i < steps; ++i) {
    s = Step(s, dr);
    r += dr;
    out.push_back({r, s});
  }
  return out;
}

double Action(const GameLagrangian& lagrangian,
              const std::vector<TrajectoryPoint>& trajectory) {
  if (trajectory.size() < 2) return 0.0;
  double action = 0.0;
  for (size_t i = 1; i < trajectory.size(); ++i) {
    double dr = trajectory[i].r - trajectory[i - 1].r;
    double l0 = lagrangian.Evaluate(trajectory[i - 1].state);
    double l1 = lagrangian.Evaluate(trajectory[i].state);
    action += 0.5 * (l0 + l1) * dr;
  }
  return action;
}

double OscillatorSolution::Relative(double r) const {
  return amplitude * std::cos(omega * r + phase);
}

Result<OscillatorSolution> SolveElasticOscillator(double m_a, double m_c,
                                                  double k,
                                                  const GameState& initial) {
  if (!(m_a > 0.0 && m_c > 0.0)) {
    return Status::InvalidArgument("masses must be positive");
  }
  if (!(k > 0.0)) {
    return Status::InvalidArgument("spring constant k must be positive");
  }
  // Relative coordinate w = u_a - u_c obeys μ ẅ = -k w with the reduced
  // mass μ; the center of utility moves freely (Theorem 1 applies to it).
  double mu = m_a * m_c / (m_a + m_c);
  double omega = std::sqrt(k / mu);
  double w0 = initial.u_a - initial.u_c;
  double wdot0 = initial.v_a - initial.v_c;
  // w(r) = A cos(ω r + φ): A cos φ = w0, -A ω sin φ = wdot0.
  double amplitude =
      std::sqrt(w0 * w0 + (wdot0 / omega) * (wdot0 / omega));
  double phase = std::atan2(-wdot0 / omega, w0);
  OscillatorSolution sol;
  sol.omega = omega;
  sol.amplitude = amplitude;
  sol.phase = phase;
  sol.period = 2.0 * M_PI / omega;
  return sol;
}

}  // namespace itrim
