#include "game/session.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "game/reference_policy.h"
#include "game/score_model.h"
#include "game/trimmer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itrim {

Status GameConfig::Validate() const {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (round_size == 0) return Status::InvalidArgument("round_size must be > 0");
  if (attack_ratio < 0.0) {
    return Status::InvalidArgument("attack_ratio must be >= 0");
  }
  if (!(tth > 0.0 && tth < 1.0)) {
    return Status::InvalidArgument("tth must be in (0,1)");
  }
  if (bootstrap_size == 0) {
    return Status::InvalidArgument("bootstrap_size must be > 0");
  }
  return Status::OK();
}

void RoundLog::Clear() {
  round_.clear();
  collector_percentile_.clear();
  injection_percentile_.clear();
  cutoff_.clear();
  quality_.clear();
  benign_received_.clear();
  poison_received_.clear();
  benign_kept_.clear();
  poison_kept_.clear();
}

void RoundLog::Reserve(size_t n) {
  round_.reserve(n);
  collector_percentile_.reserve(n);
  injection_percentile_.reserve(n);
  cutoff_.reserve(n);
  quality_.reserve(n);
  benign_received_.reserve(n);
  poison_received_.reserve(n);
  benign_kept_.reserve(n);
  poison_kept_.reserve(n);
}

void RoundLog::Append(const RoundRecord& record) {
  round_.push_back(record.round);
  collector_percentile_.push_back(record.collector_percentile);
  injection_percentile_.push_back(record.injection_percentile);
  cutoff_.push_back(record.cutoff);
  quality_.push_back(record.quality);
  benign_received_.push_back(record.benign_received);
  poison_received_.push_back(record.poison_received);
  benign_kept_.push_back(record.benign_kept);
  poison_kept_.push_back(record.poison_kept);
}

void RoundLog::Assign(const std::vector<RoundRecord>& records) {
  Clear();
  Reserve(records.size());
  for (const RoundRecord& record : records) Append(record);
}

RoundRecord RoundLog::Get(size_t i) const {
  RoundRecord record;
  record.round = round_[i];
  record.collector_percentile = collector_percentile_[i];
  record.injection_percentile = injection_percentile_[i];
  record.cutoff = cutoff_[i];
  record.quality = quality_[i];
  record.benign_received = benign_received_[i];
  record.poison_received = poison_received_[i];
  record.benign_kept = benign_kept_[i];
  record.poison_kept = poison_kept_[i];
  return record;
}

std::vector<RoundRecord> RoundLog::ToVector() const {
  std::vector<RoundRecord> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(Get(i));
  return out;
}

double GameSummary::UntrimmedPoisonFraction() const {
  size_t kept = TotalKept();
  if (kept == 0) return 0.0;
  return static_cast<double>(TotalPoisonKept()) / static_cast<double>(kept);
}

double GameSummary::BenignLossFraction() const {
  size_t received = 0, kept = 0;
  for (const auto& r : rounds) {
    received += r.benign_received;
    kept += r.benign_kept;
  }
  if (received == 0) return 0.0;
  return static_cast<double>(received - kept) / static_cast<double>(received);
}

double GameSummary::PoisonSurvivalRate() const {
  size_t received = 0, kept = 0;
  for (const auto& r : rounds) {
    received += r.poison_received;
    kept += r.poison_kept;
  }
  if (received == 0) return 0.0;
  return static_cast<double>(kept) / static_cast<double>(received);
}

size_t GameSummary::TotalKept() const {
  size_t n = 0;
  for (const auto& r : rounds) n += r.benign_kept + r.poison_kept;
  return n;
}

size_t GameSummary::TotalPoisonKept() const {
  size_t n = 0;
  for (const auto& r : rounds) n += r.poison_kept;
  return n;
}

size_t GameSummary::TotalBenignKept() const {
  size_t n = 0;
  for (const auto& r : rounds) n += r.benign_kept;
  return n;
}

size_t GameSummary::TotalReceived() const {
  return TotalPoisonReceived() + TotalBenignReceived();
}

size_t GameSummary::TotalPoisonReceived() const {
  size_t n = 0;
  for (const auto& r : rounds) n += r.poison_received;
  return n;
}

size_t GameSummary::TotalBenignReceived() const {
  size_t n = 0;
  for (const auto& r : rounds) n += r.benign_received;
  return n;
}

namespace {

// Builds the context both strategies see at the start of round i.
RoundContext MakeContext(int round, const GameConfig& config,
                         const PublicBoard* board,
                         const RoundObservation* prev) {
  RoundContext ctx;
  ctx.round = round;
  ctx.tth = config.tth;
  ctx.board = board;
  if (prev != nullptr) {
    ctx.prev_collector_percentile = prev->collector_percentile;
    ctx.prev_injection_percentile = prev->injection_percentile;
    ctx.prev_quality = prev->quality;
  }
  return ctx;
}

// Reconstructs the observation both parties were shown after `record`
// completed (used to replay strategy state on Restore()).
RoundObservation ObservationFromRecord(const RoundRecord& record) {
  return RoundObservation{record.round,
                          record.collector_percentile,
                          record.injection_percentile,
                          record.quality,
                          record.benign_received + record.poison_received,
                          record.benign_kept + record.poison_kept,
                          record.poison_received,
                          record.poison_kept};
}

// Asserts before the member-init list dereferences the model.
uint64_t BoardSeedFor(const GameConfig& config, ScoreModel* model) {
  assert(model != nullptr);
  return config.seed ^ model->BoardSeedSalt();
}

}  // namespace

TrimmingSession::TrimmingSession(GameConfig config, ScoreModel* model,
                                 CollectorStrategy* collector,
                                 AdversaryStrategy* adversary,
                                 QualityEvaluation* quality,
                                 ReferencePolicy* reference)
    : config_(config), config_status_(config.Validate()), model_(model),
      collector_(collector), adversary_(adversary), quality_(quality),
      reference_(reference != nullptr ? reference : DefaultReferencePolicy()),
      board_(config.board_capacity, BoardSeedFor(config, model),
             config.board_backend),
      rng_(config.seed) {
  assert(collector != nullptr);
}

Status TrimmingSession::Bootstrap() {
  // A failed (re-)bootstrap must leave the session un-steppable, not
  // half-reset over the previous run's state.
  bootstrapped_ = false;
  ITRIM_RETURN_NOT_OK(config_status_);
  if (adversary_ == nullptr && config_.attack_ratio > 0.0 &&
      model_->RequiresAdversaryPositions()) {
    return Status::InvalidArgument(
        "score model needs an AdversaryStrategy to position its poison; "
        "pass one or set attack_ratio = 0");
  }
  ITRIM_RETURN_NOT_OK(reference_->Validate(*model_));
  ITRIM_RETURN_NOT_OK(model_->BeginRun());
  rng_ = Rng(config_.seed);
  collector_->Reset();
  if (adversary_ != nullptr) adversary_->Reset();
  board_.Clear();
  // Round 0: a clean calibration sample seeds the public board and fixes
  // the percentile reference both parties speak in. Trimming against a
  // reference that absorbed its own truncated output would spiral the
  // cutoff downward; anchoring it on the clean round-0 sample (the same
  // sample Algorithm 1's QE(X0) baseline comes from) keeps the percentile
  // domain stable, while all adaptivity lives in the strategies.
  ITRIM_RETURN_NOT_OK(model_->Bootstrap(config_.bootstrap_size, &rng_,
                                        &board_));
  prev_ = RoundObservation{};
  have_prev_ = false;
  poison_quota_ = 0.0;
  next_round_ = 1;
  records_.Clear();
  // Pre-size the per-round book so steady-state Steps within the
  // configured horizon never reallocate it (open-ended streams beyond
  // config().rounds fall back to amortized growth).
  records_.Reserve(static_cast<size_t>(config_.rounds));
  bootstrapped_ = true;
  return Status::OK();
}

Result<RoundRecord> TrimmingSession::Step() {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("session is not bootstrapped");
  }
  const int round = next_round_;
  if constexpr (obs::kEnabled) {
    if (obs_.trace != nullptr) {
      obs_.trace->Record(obs::TraceKind::kRoundStart, obs_.tenant,
                         static_cast<double>(round));
    }
  }
  const size_t poison_count = model_->PoisonCount(config_, &poison_quota_);

  RoundContext ctx =
      MakeContext(round, config_, &board_, have_prev_ ? &prev_ : nullptr);
  double trim_percentile = collector_->TrimPercentile(ctx);

  // Arrivals: benign data, then poison at percentile positions.
  model_->BeginRound(config_.round_size + poison_count);
  model_->AppendBenignBatch(config_.round_size, &rng_);
  model_->PrepareInjection(&rng_);
  double injection_sum = 0.0;
  if (adversary_ == nullptr) {
    // No adversary interleaves RNG draws with the model's poison draws, so
    // the whole head goes over in one virtual call (positions are NaN —
    // only models that materialize poison autonomously reach this path).
    if (poison_count > 0) {
      poison_pos_scratch_.assign(poison_count, std::nan(""));
      ITRIM_RETURN_NOT_OK(
          model_->AppendPoisonBatch(poison_pos_scratch_, &rng_, board_));
    }
  } else {
    // Position-guided poison stays per-observation: the adversary may draw
    // RNG inside InjectionPercentile(), and those draws interleave with
    // the model's own poison draws on one stream (bit-identity contract).
    for (size_t i = 0; i < poison_count; ++i) {
      double a = adversary_->InjectionPercentile(ctx, &rng_);
      a = Clamp(a, 0.0, model_->InjectionCap());
      injection_sum += a;
      ITRIM_RETURN_NOT_OK(model_->AppendPoison(a, &rng_, board_));
    }
  }
  double injection_mean =
      (adversary_ != nullptr && poison_count > 0)
          ? injection_sum / static_cast<double>(poison_count)
          : std::nan("");
  injection_mean = model_->InjectionSignal(board_, injection_mean);

  const std::span<const double> scores = model_->scores();
  const std::span<const char> is_poison = model_->is_poison();

  // Quality is assessed on the received (pre-trim) round.
  double quality_score =
      quality_ != nullptr ? quality_->Evaluate(scores, board_) : 1.0;

  // Trim, into the session-owned scratch outcome (no per-round heap).
  TrimOutcome& outcome = trim_scratch_;
  bool used_reference = false;
  if (trim_percentile >= 1.0) {
    outcome.keep.assign(scores.size(), 1);
    outcome.kept_count = scores.size();
    outcome.removed_count = 0;
    outcome.cutoff = std::numeric_limits<double>::infinity();
  } else if (config_.round_mass_trimming) {
    TrimTopFractionInto(scores, trim_percentile, &trim_idx_scratch_,
                        &outcome);
  } else {
    ITRIM_RETURN_NOT_OK(
        reference_->TrimRound(trim_percentile, model_, board_, &outcome));
    used_reference = true;
  }

  RoundRecord record;
  record.round = round;
  record.collector_percentile = trim_percentile;
  record.injection_percentile = injection_mean;
  record.cutoff = outcome.cutoff;
  record.quality = quality_score;
  for (size_t i = 0; i < scores.size(); ++i) {
    bool poison = is_poison[i] != 0;
    if (poison) {
      ++record.poison_received;
    } else {
      ++record.benign_received;
    }
    if (outcome.keep[i]) {
      if (poison) {
        ++record.poison_kept;
      } else {
        ++record.benign_kept;
      }
    }
  }
  model_->Commit(outcome.keep);
  records_.Append(record);
  if constexpr (obs::kEnabled) {
    if (obs_.metrics != nullptr || obs_.trace != nullptr) {
      RecordRoundObservability(record, outcome.removed_count, used_reference);
    }
  }

  prev_ = ObservationFromRecord(record);
  have_prev_ = true;
  collector_->Observe(prev_);
  if (adversary_ != nullptr) adversary_->Observe(prev_);
  ++next_round_;
  return record;
}

void TrimmingSession::RecordRoundObservability(const RoundRecord& record,
                                               size_t removed,
                                               bool used_reference) {
  if (obs_.metrics != nullptr) {
    obs::MetricSlot& m = *obs_.metrics;
    m.Inc(obs::Counter::kSessionRoundsPlayed);
    m.Inc(obs::Counter::kSessionBenignReceived, record.benign_received);
    m.Inc(obs::Counter::kSessionPoisonReceived, record.poison_received);
    m.Inc(obs::Counter::kSessionBenignKept, record.benign_kept);
    m.Inc(obs::Counter::kSessionPoisonKept, record.poison_kept);
    m.Inc(obs::Counter::kSessionObservationsTrimmed, removed);
  }
  const int refit_iters =
      used_reference ? reference_->last_refit_iterations() : 0;
  if (refit_iters > 0) {
    if (obs_.metrics != nullptr) {
      obs_.metrics->Inc(obs::Counter::kSessionReferenceRefits);
      obs_.metrics->Inc(obs::Counter::kSessionRefitIterations,
                        static_cast<uint64_t>(refit_iters));
    }
    if (obs_.trace != nullptr) {
      obs_.trace->Record(obs::TraceKind::kReferenceRefit, obs_.tenant,
                         static_cast<double>(refit_iters));
    }
  }
  if (obs_.trace != nullptr) {
    // Both events mark the same round boundary: one clock read serves the
    // pair (see TraceBuffer::RecordAt).
    const int64_t now_ns = obs::MonotonicNowNs();
    obs_.trace->RecordAt(now_ns, obs::TraceKind::kTrimDecision, obs_.tenant,
                         static_cast<double>(removed));
    obs_.trace->RecordAt(now_ns, obs::TraceKind::kRoundEnd, obs_.tenant,
                         record.quality);
  }
}

GameSummary TrimmingSession::Finish() const {
  GameSummary summary;
  summary.rounds = records_.ToVector();
  summary.termination_round = collector_->termination_round();
  return summary;
}

Result<GameSummary> TrimmingSession::RunToCompletion() {
  ITRIM_RETURN_NOT_OK(Bootstrap());
  for (int round = 1; round <= config_.rounds; ++round) {
    ITRIM_RETURN_NOT_OK(Step().status());
  }
  return Finish();
}

SessionCheckpoint TrimmingSession::Checkpoint() const {
  assert(bootstrapped_ && "Checkpoint() before Bootstrap()");
  SessionCheckpoint cp;
  cp.next_round = next_round_;
  cp.poison_quota = poison_quota_;
  cp.have_prev = have_prev_;
  cp.prev = prev_;
  cp.records = records_.ToVector();
  cp.rng = rng_.Save();
  cp.board = board_.Save();
  return cp;
}

Status TrimmingSession::Restore(const SessionCheckpoint& checkpoint) {
  // Re-run the bootstrap to rebuild model geometry (PositionMap etc.) from
  // the same round-0 draws — the bootstrap is the first RNG consumer, so a
  // fresh Rng(config.seed) replays it exactly. Then jump the stream state
  // forward to the checkpoint.
  ITRIM_RETURN_NOT_OK(Bootstrap());
  rng_.Restore(checkpoint.rng);
  ITRIM_RETURN_NOT_OK(board_.Restore(checkpoint.board));
  records_.Assign(checkpoint.records);
  // Strategy state is a function of the observation history for all the
  // paper's strategies; replaying the records reconstructs it exactly.
  for (const RoundRecord& record : checkpoint.records) {
    RoundObservation obs = ObservationFromRecord(record);
    collector_->Observe(obs);
    if (adversary_ != nullptr) adversary_->Observe(obs);
  }
  prev_ = checkpoint.prev;
  have_prev_ = checkpoint.have_prev;
  poison_quota_ = checkpoint.poison_quota;
  next_round_ = checkpoint.next_round;
  return Status::OK();
}

}  // namespace itrim
