// Distance-based sanitization (trimming) primitives.
//
// The defender computes a score d_i per data point and removes points with
// d_i above a threshold θ_d (Kloft & Laskov). Three variants are provided:
//
//  * TrimAboveValue      — scalar data, explicit cutoff value.
//  * TrimAtReferencePercentile — cutoff = percentile of a reference
//    distribution (the public board), applied to the incoming round.
//  * TrimTopFraction     — remove the top (1-q) mass fraction of the round
//    itself (the `prctile`-on-received semantics; robust to percentile atoms).
//
// Multi-dimensional rounds are reduced to scalars by the distance transform
// (distance to a reference centroid) in DistanceTrimmer.
#ifndef ITRIM_GAME_TRIMMER_H_
#define ITRIM_GAME_TRIMMER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief Result of trimming one batch: kept mask plus bookkeeping.
struct TrimOutcome {
  /// keep[i] is true iff element i survived.
  std::vector<char> keep;
  size_t kept_count = 0;
  size_t removed_count = 0;
  /// The cutoff value actually applied (+inf when nothing was trimmed).
  double cutoff = 0.0;
};

/// \brief Removes values strictly above `cutoff`.
TrimOutcome TrimAboveValue(std::span<const double> values, double cutoff);

/// \brief TrimAboveValue into caller-owned storage: `out`'s keep mask is
/// overwritten in place, so a warm TrimOutcome makes repeated trims
/// allocation-free (the streaming round loop's steady state). The masking
/// loop runs through the dispatched kernels (game/kernels.h).
void TrimAboveValueInto(std::span<const double> values, double cutoff,
                        TrimOutcome* out);

/// \brief Removes values strictly above the q-quantile of `reference`.
/// Requires a non-empty reference.
Result<TrimOutcome> TrimAtReferencePercentile(
    std::span<const double> values, const std::vector<double>& reference,
    double q);

/// \brief Removes exactly the ceil((1-q)*n) largest values of the round
/// itself (ties broken by position). q >= 1 keeps everything.
TrimOutcome TrimTopFraction(std::span<const double> values, double q);

/// \brief TrimTopFraction into caller-owned storage. `idx_scratch` holds the
/// partial-sort index permutation between calls; both it and `out` keep
/// their capacity, so a warm pair makes repeated trims allocation-free.
void TrimTopFractionInto(std::span<const double> values, double q,
                         std::vector<size_t>* idx_scratch, TrimOutcome* out);

/// \brief Applies a keep-mask, returning the surviving elements.
template <typename T>
std::vector<T> ApplyMask(const std::vector<T>& values,
                         const std::vector<char>& keep) {
  std::vector<T> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (keep[i]) out.push_back(values[i]);
  }
  return out;
}

/// \brief Distance transform for multi-dimensional rounds: scores each row
/// by Euclidean distance to a reference centroid.
class DistanceTrimmer {
 public:
  /// Captures the reference centroid (copied).
  explicit DistanceTrimmer(std::vector<double> centroid);

  /// \brief Distance scores of `rows` against the centroid.
  std::vector<double> Scores(
      const std::vector<std::vector<double>>& rows) const;

  /// \brief Removes rows whose distance exceeds the q-quantile of the
  /// reference distance sample `reference_distances`.
  Result<TrimOutcome> TrimRows(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& reference_distances,
                               double q) const;

  const std::vector<double>& centroid() const { return centroid_; }

 private:
  std::vector<double> centroid_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_TRIMMER_H_
