#include "game/public_board.h"

#include <string>

namespace itrim {

const char* BoardBackendName(BoardBackend backend) {
  return backend == BoardBackend::kFlat ? "flat" : "treap";
}

PublicBoard::PublicBoard(size_t capacity, uint64_t seed, BoardBackend backend)
    : capacity_(capacity), backend_(backend), rng_(seed) {
  if (capacity_ > 0) {
    // A bounded board's storage high-water mark is known up front; paying
    // it here keeps the record path allocation-free from the first value.
    values_.reserve(capacity_);
    if (backend_ == BoardBackend::kFlat) {
      flat_.Reserve(capacity_);
    } else {
      treap_.Reserve(capacity_);
    }
  }
}

void PublicBoard::Record(const std::vector<double>& values) {
  for (double v : values) RecordOne(v);
}

void PublicBoard::RecordOne(double value) {
  ++total_recorded_;
  if (capacity_ == 0 || values_.size() < capacity_) {
    values_.push_back(value);
    if (backend_ == BoardBackend::kFlat) {
      flat_.Insert(value);
    } else {
      treap_.Insert(value);
    }
  } else {
    // Reservoir sampling keeps the board an unbiased sample of everything
    // ever recorded while bounding memory.
    size_t j = static_cast<size_t>(rng_.UniformInt(total_recorded_));
    if (j < capacity_) {
      if (backend_ == BoardBackend::kFlat) {
        flat_.EraseOne(values_[j]);
        values_[j] = value;
        flat_.Insert(value);
      } else {
        treap_.EraseOne(values_[j]);
        values_[j] = value;
        treap_.Insert(value);
      }
    }
  }
}

Result<double> PublicBoard::Quantile(double q) const {
  if (values_.empty()) {
    return Status::FailedPrecondition("public board is empty");
  }
  return backend_ == BoardBackend::kFlat ? flat_.Quantile(q)
                                         : treap_.Quantile(q);
}

double PublicBoard::PercentileRank(double x) const {
  if (values_.empty()) return 0.0;
  return backend_ == BoardBackend::kFlat ? flat_.PercentileRank(x)
                                         : treap_.PercentileRank(x);
}

void PublicBoard::Clear() {
  values_.clear();
  flat_.Clear();
  treap_.Clear();
  total_recorded_ = 0;
}

PublicBoard::Snapshot PublicBoard::Save() const {
  return Snapshot{values_, total_recorded_, rng_.Save()};
}

Status PublicBoard::Restore(const Snapshot& snapshot) {
  if (capacity_ > 0 && snapshot.values.size() > capacity_) {
    return Status::InvalidArgument(
        "board snapshot holds " + std::to_string(snapshot.values.size()) +
        " values but this board is configured with capacity " +
        std::to_string(capacity_) +
        " — restore into a board of the source's capacity");
  }
  values_ = snapshot.values;
  total_recorded_ = snapshot.total_recorded;
  rng_.Restore(snapshot.rng);
  if (backend_ == BoardBackend::kFlat) {
    flat_.Clear();
    flat_.Reserve(capacity_);
    for (double v : values_) flat_.Insert(v);
  } else {
    treap_.Clear();
    treap_.Reserve(capacity_);
    for (double v : values_) treap_.Insert(v);
  }
  return Status::OK();
}

}  // namespace itrim
