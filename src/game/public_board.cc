#include "game/public_board.h"

#include <algorithm>

#include "stats/quantile.h"

namespace itrim {

PublicBoard::PublicBoard(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {}

void PublicBoard::Record(const std::vector<double>& values) {
  for (double v : values) RecordOne(v);
}

void PublicBoard::RecordOne(double value) {
  ++total_recorded_;
  if (capacity_ == 0 || values_.size() < capacity_) {
    values_.push_back(value);
  } else {
    // Reservoir sampling keeps the board an unbiased sample of everything
    // ever recorded while bounding memory.
    size_t j = static_cast<size_t>(rng_.UniformInt(total_recorded_));
    if (j < capacity_) values_[j] = value;
  }
  cache_valid_ = false;
}

void PublicBoard::EnsureSorted() const {
  if (cache_valid_) return;
  sorted_cache_ = values_;
  std::sort(sorted_cache_.begin(), sorted_cache_.end());
  cache_valid_ = true;
}

Result<double> PublicBoard::Quantile(double q) const {
  if (values_.empty()) {
    return Status::FailedPrecondition("public board is empty");
  }
  EnsureSorted();
  return QuantileSorted(sorted_cache_, q);
}

double PublicBoard::PercentileRank(double x) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  return PercentileRankSorted(sorted_cache_, x);
}

void PublicBoard::Clear() {
  values_.clear();
  sorted_cache_.clear();
  cache_valid_ = false;
  total_recorded_ = 0;
}

}  // namespace itrim
