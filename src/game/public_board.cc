#include "game/public_board.h"

namespace itrim {

PublicBoard::PublicBoard(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  if (capacity_ > 0) {
    // A bounded board's storage high-water mark is known up front; paying
    // it here keeps the record path allocation-free from the first value.
    values_.reserve(capacity_);
    index_.Reserve(capacity_);
  }
}

void PublicBoard::Record(const std::vector<double>& values) {
  for (double v : values) RecordOne(v);
}

void PublicBoard::RecordOne(double value) {
  ++total_recorded_;
  if (capacity_ == 0 || values_.size() < capacity_) {
    values_.push_back(value);
    index_.Insert(value);
  } else {
    // Reservoir sampling keeps the board an unbiased sample of everything
    // ever recorded while bounding memory.
    size_t j = static_cast<size_t>(rng_.UniformInt(total_recorded_));
    if (j < capacity_) {
      index_.EraseOne(values_[j]);
      values_[j] = value;
      index_.Insert(value);
    }
  }
}

Result<double> PublicBoard::Quantile(double q) const {
  if (values_.empty()) {
    return Status::FailedPrecondition("public board is empty");
  }
  return index_.Quantile(q);
}

double PublicBoard::PercentileRank(double x) const {
  if (values_.empty()) return 0.0;
  return index_.PercentileRank(x);
}

void PublicBoard::Clear() {
  values_.clear();
  index_.Clear();
  total_recorded_ = 0;
}

PublicBoard::Snapshot PublicBoard::Save() const {
  return Snapshot{values_, total_recorded_, rng_.Save()};
}

void PublicBoard::Restore(const Snapshot& snapshot) {
  values_ = snapshot.values;
  total_recorded_ = snapshot.total_recorded;
  rng_.Restore(snapshot.rng);
  index_.Clear();
  for (double v : values_) index_.Insert(v);
}

}  // namespace itrim
