#include "game/strategy_space.h"

#include <cmath>

#include "common/math_util.h"

namespace itrim {

Result<StrategySpace> StrategySpace::Make(double x_left, double x_right) {
  if (!(x_left < x_right)) {
    return Status::InvalidArgument("require x_left < x_right");
  }
  if (!std::isfinite(x_left) || !std::isfinite(x_right)) {
    return Status::InvalidArgument("strategy space bounds must be finite");
  }
  return StrategySpace(x_left, x_right);
}

Result<MixedStrategy> StrategySpace::ReduceToMixed(double x) const {
  if (!Contains(x)) {
    return Status::OutOfRange("x outside [xL, xR]");
  }
  double p_right = (x - x_left_) / (x_right_ - x_left_);
  return MixedStrategy{1.0 - p_right, p_right};
}

MixedStrategy StrategySpace::ReduceDistribution(
    const std::vector<double>& values) const {
  if (values.empty()) return MixedStrategy{1.0, 0.0};
  double acc = 0.0;
  for (double v : values) acc += Clamp(v, x_left_, x_right_);
  double mean = acc / static_cast<double>(values.size());
  double p_right = (mean - x_left_) / (x_right_ - x_left_);
  return MixedStrategy{1.0 - p_right, p_right};
}

Result<double> SolveBalancePoint(
    const std::function<double(double)>& poison_loss,
    const std::function<double(double)>& trim_overhead, double lo, double hi,
    double tolerance, int max_iterations) {
  if (!(lo < hi)) return Status::InvalidArgument("require lo < hi");
  auto gap = [&](double x) { return poison_loss(x) - trim_overhead(x); };
  double glo = gap(lo), ghi = gap(hi);
  if (glo == 0.0) return lo;
  if (ghi == 0.0) return hi;
  if (glo * ghi > 0.0) {
    return Status::FailedPrecondition(
        "P - T does not change sign over the bracket");
  }
  double a = lo, b = hi;
  for (int i = 0; i < max_iterations; ++i) {
    double mid = 0.5 * (a + b);
    double gm = gap(mid);
    if (std::fabs(gm) < tolerance || 0.5 * (b - a) < tolerance) return mid;
    if (gm * glo < 0.0) {
      b = mid;
    } else {
      a = mid;
      glo = gm;
    }
  }
  return 0.5 * (a + b);
}

}  // namespace itrim
