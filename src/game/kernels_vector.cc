// Auto-vectorized kernel build: the same bodies as kernels_generic.cc,
// compiled with -O3 -ftree-vectorize (plus -mavx2 on x86-64) and
// -ffp-contract=off — see CMakeLists.txt. The runtime dispatcher only
// selects this variant when the CPU reports AVX2, so emitting AVX2 code
// here is safe even on baseline-x86-64 deployments.
#define ITRIM_KERNEL_NAMESPACE vectorized
#include "game/kernels_impl.inc"
#undef ITRIM_KERNEL_NAMESPACE
