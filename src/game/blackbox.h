// Incomplete-information (black-box) adversaries — the paper's future-work
// direction (Section VIII): attackers who cannot observe the collector's
// strategy directly and must infer the trimming threshold from feedback.
//
// The only feedback a real attacker needs is the public board: it can check
// which of its own injected values were retained. ProbingAdversary runs a
// noisy binary search on the threshold: inject at the current estimate; if
// the poison survived, the threshold is above the estimate (push up), if it
// was trimmed, the threshold is below (back off). Against a static
// collector it converges to just below the true threshold — recovering the
// white-box "ideal attack" without white-box knowledge; against an adaptive
// collector the two searches chase each other.
#ifndef ITRIM_GAME_BLACKBOX_H_
#define ITRIM_GAME_BLACKBOX_H_

#include <algorithm>
#include <cmath>
#include <string>

#include "game/strategies.h"

namespace itrim {

/// \brief Threshold-probing adversary (black-box model).
class ProbingAdversary : public AdversaryStrategy {
 public:
  /// Searches within [lo, hi]; `safety_margin` is how far below the current
  /// upper-bound estimate it injects once the bracket tightens.
  ProbingAdversary(double lo = 0.5, double hi = 1.0,
                   double safety_margin = 0.005)
      : initial_lo_(lo), initial_hi_(hi), safety_margin_(safety_margin),
        lo_(lo), hi_(hi) {}

  std::string name() const override { return "probing"; }

  double InjectionPercentile(const RoundContext&, Rng*) override {
    // Search phase: classic bisection. Exploit phase: sit at the highest
    // position known to survive, creeping upward slowly to track drift.
    last_probe_ = converged_ ? lo_ : 0.5 * (lo_ + hi_);
    return last_probe_;
  }

  void Observe(const RoundObservation& obs) override {
    if (obs.poison_received == 0) return;
    // Majority of this round's poison surviving means the probe sat at or
    // below the threshold; otherwise it overshot.
    bool survived = obs.poison_kept * 2 >= obs.poison_received;
    if (!converged_) {
      if (survived) {
        lo_ = last_probe_;
      } else {
        hi_ = last_probe_;
      }
      if (hi_ - lo_ < 2.0 * safety_margin_) converged_ = true;
      return;
    }
    // Exploit phase (additive-increase / multiplicative-backoff).
    if (survived) {
      lo_ = std::min(initial_hi_, lo_ + 0.25 * safety_margin_);
    } else {
      lo_ = std::max(initial_lo_, lo_ - 4.0 * safety_margin_);
    }
  }

  void Reset() override {
    lo_ = initial_lo_;
    hi_ = initial_hi_;
    last_probe_ = 0.0;
    converged_ = false;
  }

  /// \brief Current bracket (for tests/diagnostics).
  double bracket_lo() const { return lo_; }
  double bracket_hi() const { return hi_; }
  /// \brief True once the bisection finished and the exploit phase began.
  bool converged() const { return converged_; }

 private:
  double initial_lo_;
  double initial_hi_;
  double safety_margin_;
  double lo_;
  double hi_;
  double last_probe_ = 0.0;
  bool converged_ = false;
};

}  // namespace itrim

#endif  // ITRIM_GAME_BLACKBOX_H_
