#include "game/equilibrium.h"

#include <cmath>

namespace itrim {

Status ComplianceSetting::Validate() const {
  if (!(d > 0.0 && d < 1.0)) {
    return Status::InvalidArgument("discount d must be in (0,1)");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("judgment probability p must be in [0,1]");
  }
  if (!(g_ac > 0.0)) {
    return Status::InvalidArgument("g_ac must be positive");
  }
  if (delta < 0.0) {
    return Status::InvalidArgument("delta must be non-negative");
  }
  return Status::OK();
}

double ComplianceValue(const ComplianceSetting& s) {
  return (s.g_ac - s.delta) / (1.0 - s.d);
}

double DefectionValue(const ComplianceSetting& s) {
  return s.g_ac / (1.0 - s.d * s.p);
}

double MaxSustainableCompromise(double g_ac, double d, double p) {
  return (d - d * p) / (1.0 - d * p) * g_ac;
}

bool AdversaryComplies(const ComplianceSetting& s) {
  return s.delta < MaxSustainableCompromise(s.g_ac, s.d, s.p);
}

double SimulateDefectionValue(const ComplianceSetting& s, int episodes,
                              Rng* rng, int max_rounds) {
  // A defector earns g_ac each round until first flagged as defecting
  // (probability 1 - p per round), after which cooperation terminates and
  // all future gains are zero. The discounted value telescopes to
  // g_ac * sum_{t>=0} (d p)^t = g_ac / (1 - d p).
  double total = 0.0;
  for (int e = 0; e < episodes; ++e) {
    double discount = 1.0;
    for (int r = 0; r < max_rounds; ++r) {
      total += discount * s.g_ac;
      if (!rng->Bernoulli(s.p)) break;  // flagged: cooperation ends
      discount *= s.d;
      if (discount < 1e-12) break;
    }
  }
  return total / static_cast<double>(episodes);
}

double TitfortatCompromiseBoundary(const UltimatumGame& game, double d,
                                   double p) {
  return MaxSustainableCompromise(game.SymmetricCooperationGain(), d, p);
}

}  // namespace itrim
