// Trigger-strategy variants beyond the paper's two main strategies.
//
// Section V notes that "numerous variants of Tit-for-tat exist, such as
// Tits-for-two-tats and Generous Tit-for-tat [and] they can also be adapted
// through Elastic strategies"; deriving their parameters is listed as future
// work. This module implements the classic variants in the collector
// interface so they can be dropped into any collection game and compared
// against the paper's Titfortat/Elastic (see bench_ablation_variants):
//
//  * TitForTwoTatsCollector — retaliates only after two *consecutive*
//    low-quality rounds; tolerant of one-off jitter, slower to punish.
//  * GenerousTitfortatCollector — retaliation lasts a fixed penalty window
//    and each trigger is ignored ("forgiven") with probability g, the
//    Nowak–Sigmund generosity that avoids permanent breakdown under noise.
//  * PavlovCollector — win-stay/lose-shift: keeps its current stance after
//    a good round, flips it after a bad one.
#ifndef ITRIM_GAME_VARIANTS_H_
#define ITRIM_GAME_VARIANTS_H_

#include <cmath>
#include <string>

#include "common/rng.h"
#include "game/strategies.h"

namespace itrim {

/// \brief Retaliates permanently only after two consecutive bad rounds.
class TitForTwoTatsCollector : public CollectorStrategy {
 public:
  TitForTwoTatsCollector(double soft_offset, double hard_offset,
                         double trigger_quality)
      : soft_offset_(soft_offset), hard_offset_(hard_offset),
        trigger_quality_(trigger_quality) {}

  std::string name() const override { return "TitForTwoTats"; }
  double TrimPercentile(const RoundContext& ctx) override {
    return ctx.tth + (triggered_ ? hard_offset_ : soft_offset_);
  }
  void Observe(const RoundObservation& obs) override;
  void Reset() override {
    triggered_ = false;
    consecutive_bad_ = 0;
    termination_round_ = 0;
  }
  int termination_round() const override { return termination_round_; }
  bool triggered() const { return triggered_; }

 private:
  double soft_offset_;
  double hard_offset_;
  double trigger_quality_;
  bool triggered_ = false;
  int consecutive_bad_ = 0;
  int termination_round_ = 0;
};

/// \brief Generous Tit-for-tat: finite punishment plus probabilistic
/// forgiveness (generosity) of detected defections.
class GenerousTitfortatCollector : public CollectorStrategy {
 public:
  /// `generosity` in [0, 1] is the probability a detected defection is
  /// forgiven outright; `penalty_rounds` is the retaliation window length.
  GenerousTitfortatCollector(double soft_offset, double hard_offset,
                             double trigger_quality, double generosity,
                             int penalty_rounds, uint64_t seed)
      : soft_offset_(soft_offset), hard_offset_(hard_offset),
        trigger_quality_(trigger_quality), generosity_(generosity),
        penalty_rounds_(penalty_rounds), rng_(seed) {}

  std::string name() const override { return "GenerousTitfortat"; }
  double TrimPercentile(const RoundContext& ctx) override {
    return ctx.tth + (penalty_left_ > 0 ? hard_offset_ : soft_offset_);
  }
  void Observe(const RoundObservation& obs) override;
  void Reset() override {
    penalty_left_ = 0;
    triggers_ = 0;
    first_trigger_round_ = 0;
  }
  /// \brief First round a (non-forgiven) trigger fired; 0 when never.
  int termination_round() const override { return first_trigger_round_; }
  /// \brief Number of non-forgiven triggers so far.
  int triggers() const { return triggers_; }

 private:
  double soft_offset_;
  double hard_offset_;
  double trigger_quality_;
  double generosity_;
  int penalty_rounds_;
  Rng rng_;
  int penalty_left_ = 0;
  int triggers_ = 0;
  int first_trigger_round_ = 0;
};

/// \brief Pavlov (win-stay/lose-shift): repeats its stance after good
/// rounds, flips after bad ones.
class PavlovCollector : public CollectorStrategy {
 public:
  PavlovCollector(double soft_offset, double hard_offset,
                  double trigger_quality)
      : soft_offset_(soft_offset), hard_offset_(hard_offset),
        trigger_quality_(trigger_quality) {}

  std::string name() const override { return "Pavlov"; }
  double TrimPercentile(const RoundContext& ctx) override {
    return ctx.tth + (hard_ ? hard_offset_ : soft_offset_);
  }
  void Observe(const RoundObservation& obs) override;
  void Reset() override {
    hard_ = false;
    first_shift_round_ = 0;
  }
  int termination_round() const override { return first_shift_round_; }
  bool playing_hard() const { return hard_; }

 private:
  double soft_offset_;
  double hard_offset_;
  double trigger_quality_;
  bool hard_ = false;
  int first_shift_round_ = 0;
};

}  // namespace itrim

#endif  // ITRIM_GAME_VARIANTS_H_
