// Score models: the data-setting-specific half of the collection game.
//
// The round protocol of Fig 3 (threshold choice, arrival, injection,
// trimming, observation) is identical across the paper's settings; what
// differs is how payloads are generated, how they are scored into the
// shared percentile coordinate, and how a reference-percentile threshold
// turns into a cutoff:
//
//  * IdentityScoreModel — 1-D values (the LDP / Taxi setting): the score is
//    the value itself, poison at percentile a materializes as the board's
//    a-quantile value, and a threshold T cuts at the board's T-quantile.
//  * DistanceScoreModel — d-dimensional rows scored through the PositionMap
//    percentile geometry (the k-means / SVM / SOM setting): poison rows are
//    fabricated at a target percentile position along a shared
//    per-round direction (colluding Sybil attackers), scores *are*
//    percentile positions, so a threshold applies directly.
//
// A ScoreModel plugs into TrimmingSession (game/session.h), which owns the
// round loop. Models also own the retained (sanitized) output of a run.
//
// v2 API shape: the engine makes one virtual call per round, not one per
// observation. Payloads live in flat structure-of-arrays storage (a round
// is `n * ObsWidth()` contiguous doubles), accessors hand out spans over
// that storage, and scoring is a batched `ScoreInto` backed by the
// dispatched kernels (game/kernels.h).
//
// Batch-vs-scalar bitwise contract: `ScoreIntoScalar` is the one public
// scalar reference path — it always loops the model's per-observation
// scoring definition (the protected `ScoreObservation` hook), never
// kernels — and `ScoreInto` must produce bit-identical doubles to it for
// every observation block. Models earn that equality the same way the
// kernels do (game/kernels.h): shared canonical FP association between the
// scalar definition and the batch sweep, no contraction, exact operations
// elsewhere. Differential tests pit the two paths against each other
// across sizes and kernel variants; benches use the scalar path as the
// pre-batching baseline. There is deliberately no second public scalar
// entry point: callers who want one score call ScoreIntoScalar on a
// one-observation span.
#ifndef ITRIM_GAME_SCORE_MODEL_H_
#define ITRIM_GAME_SCORE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "game/position_map.h"
#include "game/public_board.h"
#include "game/session.h"
#include "game/trimmer.h"

namespace itrim {

/// \brief Data-setting plugin of the TrimmingSession round loop.
///
/// The engine drives one model through a fixed sequence per round:
/// BeginRound → AppendBenignBatch → PrepareInjection → poison appends →
/// scores()/is_poison() → TrimAtReference (unless keep-all / round-mass) →
/// Commit. Implementations must consume the engine RNG only inside these
/// hooks, in this order — the batch adapters' bit-identity guarantee rests
/// on the RNG call sequence matching the seed implementation exactly.
class ScoreModel {
 public:
  virtual ~ScoreModel() = default;

  virtual std::string name() const = 0;

  /// \brief Salt XOR'd into GameConfig::seed for the board's reservoir
  /// stream (kept distinct per setting, as in the seed games).
  virtual uint64_t BoardSeedSalt() const = 0;

  /// \brief Validates the data source and clears the retained store for a
  /// fresh run.
  virtual Status BeginRun() = 0;

  /// \brief Seeds the percentile reference: records `bootstrap_size` clean
  /// scores on the board (and fixes any model geometry, e.g. PositionMap).
  virtual Status Bootstrap(size_t bootstrap_size, Rng* rng,
                           PublicBoard* board) = 0;

  /// \brief Poison count for the upcoming round. The default accrues
  /// fractional quota across rounds so tiny attack ratios still inject the
  /// right total; models with a fixed per-round head count override.
  virtual size_t PoisonCount(const GameConfig& config, double* quota) const;

  /// \brief Starts an empty round buffer (`expected` is a reserve hint).
  virtual void BeginRound(size_t expected) = 0;

  /// \brief Appends `count` benign payloads drawn from the data source —
  /// one virtual call for the whole arrival batch.
  virtual void AppendBenignBatch(size_t count, Rng* rng) = 0;

  /// \brief Appends externally supplied benign payloads: `obs` holds
  /// `obs.size() / ObsWidth()` flat observations, scored through the
  /// batched kernel path. This is the ingest surface a serving deployment
  /// (or the planned federated workload) feeds real client data through;
  /// the draw-from-source overload above is the simulation shape.
  virtual Status AppendBenignBatch(std::span<const double> obs) = 0;

  /// \brief Round-level injection setup (e.g. the colluding adversaries'
  /// shared direction). Called once per round, after the benign arrivals,
  /// regardless of the poison count.
  virtual void PrepareInjection(Rng* /*rng*/) {}

  /// \brief Highest injection percentile the model can materialize
  /// (adversary positions are clamped to [0, cap]).
  virtual double InjectionCap() const { return 1.0; }

  /// \brief True when AppendPoison needs a real percentile from an
  /// AdversaryStrategy. Models that materialize poison autonomously (the
  /// LDP report attack) override to false; the session refuses to
  /// bootstrap a poisoned game that pairs a position-requiring model with
  /// a null adversary.
  virtual bool RequiresAdversaryPositions() const { return true; }

  /// \brief Materializes one poison payload at board-percentile `position`
  /// (NaN when the session runs without an AdversaryStrategy — only
  /// reachable for models with RequiresAdversaryPositions() == false).
  ///
  /// Stays per-observation by design: adversary strategies may draw RNG
  /// inside InjectionPercentile(), so position draws and the model's own
  /// poison draws interleave on one stream; batching them would reorder
  /// the draws and break bit-identity with the seed games.
  virtual Status AppendPoison(double position, Rng* rng,
                              const PublicBoard& board) = 0;

  /// \brief Appends one poison payload per entry of `positions` in one
  /// virtual call. The engine uses this only when no AdversaryStrategy is
  /// interleaving RNG draws (positions are then all NaN); the default
  /// loops AppendPoison, so overriding is an optimization, never a
  /// semantic change.
  virtual Status AppendPoisonBatch(std::span<const double> positions,
                                   Rng* rng, const PublicBoard& board);

  /// \brief Scores of the current round (benign then poison, arrival
  /// order), in the shared percentile-comparable coordinate. A view into
  /// model-owned storage, valid until the next mutating call.
  virtual std::span<const double> scores() const = 0;

  /// \brief Poison flags parallel to scores(); same view lifetime.
  virtual std::span<const char> is_poison() const = 0;

  /// \brief Doubles per flat observation payload (1 for scalar settings,
  /// the row width for the distance setting).
  virtual size_t ObsWidth() const { return 1; }

  /// \brief True when observations() exposes the current round's flat
  /// payloads. Model-in-the-loop reference policies
  /// (game/reference_policy.h) require it; models whose payloads are
  /// consumed on arrival keep the default.
  virtual bool ProvidesObservations() const { return false; }

  /// \brief The current round's flat observation block (`scores().size() *
  /// ObsWidth()` doubles, arrival order) for models with
  /// ProvidesObservations() == true; empty otherwise. Same view lifetime
  /// as scores().
  virtual std::span<const double> observations() const { return {}; }

  /// \brief Batched scoring: `obs` holds `out.size()` flat observations of
  /// ObsWidth() doubles each; writes one score per observation. The
  /// default loops ScoreObservation; models with a vectorizable transform
  /// override with a kernel sweep (bit-identical by the kernels.h
  /// contract — see the header block above).
  virtual Status ScoreInto(std::span<const double> obs,
                           std::span<double> out) const;

  /// \brief The one public scalar reference path: always loops the
  /// per-observation scoring definition, never kernels. ScoreInto must
  /// match it bit for bit (header block above); differential tests pit the
  /// two against each other and benches use this as the pre-batching
  /// baseline.
  Status ScoreIntoScalar(std::span<const double> obs,
                         std::span<double> out) const;

  /// \brief Injection position entered into the round record and the
  /// observations. Defaults to the adversary's realized mean; models whose
  /// collector can only *estimate* the position override (LDP).
  virtual double InjectionSignal(const PublicBoard& /*board*/,
                                 double adversary_mean) const {
    return adversary_mean;
  }

  /// \brief Trims the current round's scores at reference percentile
  /// `percentile` (< 1; the keep-all and round-mass branches live in the
  /// engine), writing the outcome into caller-owned storage. `out`'s keep
  /// mask is overwritten in place so a warm TrimOutcome keeps the round
  /// loop allocation-free.
  virtual Status TrimAtReference(double percentile, const PublicBoard& board,
                                 TrimOutcome* out) = 0;

  /// \brief Moves the round's survivors (per keep mask) into the retained
  /// store (no-op while retain_survivors() is off).
  virtual void Commit(std::span<const char> keep) = 0;

  /// \brief Controls the retained (sanitized) output store. The batch game
  /// adapters keep it on — their product IS the retained data — but a
  /// long-lived streaming session or a fleet of thousands of tenants only
  /// consumes the per-round records, and an ever-growing survivor store is
  /// both an unbounded memory cost and the last steady-state heap
  /// allocation in Step(); such callers switch it off. The toggle never
  /// affects the round protocol or the RNG stream: records are
  /// bit-identical either way.
  void set_retain_survivors(bool retain) { retain_survivors_ = retain; }
  bool retain_survivors() const { return retain_survivors_; }

 protected:
  /// \brief Scores one flat observation payload of ObsWidth() doubles —
  /// the model's scoring *definition*, which both public paths must match
  /// bit for bit. Protected: external callers go through ScoreIntoScalar
  /// (the documented scalar entry point); implementations override this.
  virtual double ScoreObservation(std::span<const double> obs) const = 0;

  /// \brief Shared argument check for ScoreInto/ScoreIntoScalar.
  Status CheckScoreSpans(std::span<const double> obs,
                         std::span<double> out) const;

  bool retain_survivors_ = true;
};

/// \brief Scalar (1-D) setting: scores are the values themselves.
class IdentityScoreModel : public ScoreModel {
 public:
  /// `benign_pool` is borrowed; sampled with replacement each round.
  explicit IdentityScoreModel(const std::vector<double>* benign_pool);

  std::string name() const override { return "identity"; }
  uint64_t BoardSeedSalt() const override { return 0x9E3779B97F4A7C15ULL; }
  Status BeginRun() override;
  Status Bootstrap(size_t bootstrap_size, Rng* rng,
                   PublicBoard* board) override;
  void BeginRound(size_t expected) override;
  void AppendBenignBatch(size_t count, Rng* rng) override;
  Status AppendBenignBatch(std::span<const double> obs) override;
  Status AppendPoison(double position, Rng* rng,
                      const PublicBoard& board) override;
  std::span<const double> scores() const override { return values_; }
  std::span<const char> is_poison() const override { return is_poison_; }
  Status ScoreInto(std::span<const double> obs,
                   std::span<double> out) const override;
  Status TrimAtReference(double percentile, const PublicBoard& board,
                         TrimOutcome* out) override;
  void Commit(std::span<const char> keep) override;

  /// \brief Retained values accumulated since BeginRun().
  const std::vector<double>& retained() const { return retained_; }
  /// \brief Poison flags parallel to retained().
  const std::vector<char>& retained_is_poison() const {
    return retained_is_poison_;
  }

 protected:
  double ScoreObservation(std::span<const double> obs) const override;

 private:
  const std::vector<double>* benign_pool_;
  std::vector<double> values_;
  std::vector<char> is_poison_;
  std::vector<uint64_t> index_scratch_;  ///< batched benign-draw indices
  std::vector<double> retained_;
  std::vector<char> retained_is_poison_;
};

/// \brief Multi-dimensional setting: rows scored by PositionMap percentile
/// positions; poison fabricated along a shared per-round direction.
///
/// Round rows live in one flat structure-of-arrays pool (`row_data_`,
/// row-major, ObsWidth() doubles per row) so the batched distance kernel
/// streams them without pointer chasing and a warm round reuses the pool
/// without touching the heap.
class DistanceScoreModel : public ScoreModel {
 public:
  /// `source` is borrowed; provides benign rows (labels kept when present).
  explicit DistanceScoreModel(const Dataset* source);

  std::string name() const override { return "distance"; }
  uint64_t BoardSeedSalt() const override { return 0xC2B2AE3D27D4EB4FULL; }
  Status BeginRun() override;
  Status Bootstrap(size_t bootstrap_size, Rng* rng,
                   PublicBoard* board) override;
  void BeginRound(size_t expected) override;
  void AppendBenignBatch(size_t count, Rng* rng) override;
  Status AppendBenignBatch(std::span<const double> obs) override;
  void PrepareInjection(Rng* rng) override;
  /// Positions above 1 extrapolate beyond the observed domain (the
  /// adversary may fabricate values outside it).
  double InjectionCap() const override { return 1.5; }
  Status AppendPoison(double position, Rng* rng,
                      const PublicBoard& board) override;
  std::span<const double> scores() const override { return scores_; }
  std::span<const char> is_poison() const override { return is_poison_; }
  size_t ObsWidth() const override;
  Status ScoreInto(std::span<const double> obs,
                   std::span<double> out) const override;
  Status TrimAtReference(double percentile, const PublicBoard& board,
                         TrimOutcome* out) override;
  void Commit(std::span<const char> keep) override;

  /// \brief Survivor rows + labels accumulated since BeginRun() (poison
  /// rows carry adversary-chosen labels).
  const Dataset& retained_data() const { return retained_; }
  /// \brief Poison flags parallel to retained_data().rows.
  const std::vector<char>& retained_is_poison() const {
    return retained_is_poison_;
  }
  /// \brief Reference centroid fixed from the clean bootstrap sample.
  const std::vector<double>& reference_centroid() const { return centroid_; }
  /// \brief The percentile geometry built from the bootstrap (valid after
  /// Bootstrap()).
  const PositionMap& position_map() const { return position_map_; }

 protected:
  double ScoreObservation(std::span<const double> obs) const override;

 private:
  /// Next reusable round-row slot in the flat pool: row_data_ only grows,
  /// and rows_used_ counts the slots the current round occupies, so a warm
  /// round re-fills existing storage instead of allocating. (Rows are only
  /// materialized when retaining; a streaming session that retains nothing
  /// never touches the pool for benign arrivals.)
  std::span<double> NextRowSlot();

  const Dataset* source_;
  bool labeled_ = false;
  size_t dims_ = 0;
  PositionMap position_map_;
  std::vector<double> centroid_;
  std::vector<double> direction_;
  /// PositionOfRow of every source row, fixed once Bootstrap() builds the
  /// geometry: benign arrivals are source rows sampled with replacement,
  /// so their scores are table lookups instead of d-dimensional distance
  /// evaluations every round (the doubles are the cached results of the
  /// exact same computation — bit-identical to scoring on arrival).
  std::vector<double> source_scores_;
  std::vector<double> poison_row_scratch_;  ///< poison row when not retaining
  std::vector<double> row_data_;  ///< flat SoA row pool, rows_used_ x dims_
  size_t rows_used_ = 0;
  std::vector<uint64_t> index_scratch_;  ///< batched benign-draw indices
  std::vector<int> labels_;
  std::vector<double> scores_;
  std::vector<char> is_poison_;
  Dataset retained_;
  std::vector<char> retained_is_poison_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_SCORE_MODEL_H_
