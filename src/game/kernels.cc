// Runtime dispatch between the generic and auto-vectorized kernel builds.
//
// Detection happens once (first use); tests pin a variant with
// ForceVariant() to assert both builds emit identical doubles. The active
// variant is a relaxed atomic: concurrent fleet threads may read it while a
// test harness switches it, and either value is correct (both variants are
// bit-identical by contract).
#include "game/kernels.h"

#include <atomic>

namespace itrim::kernels {

// Declarations of the per-variant builds (defined via kernels_impl.inc in
// kernels_generic.cc / kernels_vector.cc).
#define ITRIM_DECLARE_KERNELS(ns)                                            \
  namespace ns {                                                             \
  size_t MaskAtMost(const double* values, size_t n, double cutoff,           \
                    char* keep);                                             \
  size_t MaskInBand(const double* values, size_t n, double lo, double hi,    \
                    char* keep);                                             \
  size_t CountGreater(const double* values, size_t n, double cutoff);        \
  size_t CountAtLeast(const double* values, size_t n, double cutoff);        \
  double SquaredDistance(const double* a, const double* b, size_t n);        \
  double LaneDot(const double* a, const double* b, size_t n);                \
  void AbsResidualsToModel(const double* rows, size_t n_rows, size_t width,  \
                           const double* weights, double bias, double* out); \
  void DistancesToCenter(const double* rows, size_t n_rows, size_t dims,     \
                         const double* center, double* out);                 \
  }
ITRIM_DECLARE_KERNELS(generic)
ITRIM_DECLARE_KERNELS(vectorized)
#undef ITRIM_DECLARE_KERNELS

namespace {

Variant DetectVariant() {
  return VectorAvailable() ? Variant::kVector : Variant::kGeneric;
}

std::atomic<Variant>& ActiveSlot() {
  static std::atomic<Variant> active{DetectVariant()};
  return active;
}

}  // namespace

bool VectorAvailable() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Variant ActiveVariant() {
  return ActiveSlot().load(std::memory_order_relaxed);
}

const char* VariantName(Variant variant) {
  return variant == Variant::kVector ? "vector" : "generic";
}

void ForceVariant(Variant variant) {
  if (variant == Variant::kVector && !VectorAvailable()) return;
  ActiveSlot().store(variant, std::memory_order_relaxed);
}

void ResetVariant() {
  ActiveSlot().store(DetectVariant(), std::memory_order_relaxed);
}

size_t MaskAtMost(const double* values, size_t n, double cutoff, char* keep) {
  return ActiveVariant() == Variant::kVector
             ? vectorized::MaskAtMost(values, n, cutoff, keep)
             : generic::MaskAtMost(values, n, cutoff, keep);
}

size_t MaskInBand(const double* values, size_t n, double lo, double hi,
                  char* keep) {
  return ActiveVariant() == Variant::kVector
             ? vectorized::MaskInBand(values, n, lo, hi, keep)
             : generic::MaskInBand(values, n, lo, hi, keep);
}

size_t CountGreater(const double* values, size_t n, double cutoff) {
  return ActiveVariant() == Variant::kVector
             ? vectorized::CountGreater(values, n, cutoff)
             : generic::CountGreater(values, n, cutoff);
}

size_t CountAtLeast(const double* values, size_t n, double cutoff) {
  return ActiveVariant() == Variant::kVector
             ? vectorized::CountAtLeast(values, n, cutoff)
             : generic::CountAtLeast(values, n, cutoff);
}

double SquaredDistance(const double* a, const double* b, size_t n) {
  return ActiveVariant() == Variant::kVector
             ? vectorized::SquaredDistance(a, b, n)
             : generic::SquaredDistance(a, b, n);
}

double LaneDot(const double* a, const double* b, size_t n) {
  return ActiveVariant() == Variant::kVector ? vectorized::LaneDot(a, b, n)
                                             : generic::LaneDot(a, b, n);
}

void AbsResidualsToModel(const double* rows, size_t n_rows, size_t width,
                         const double* weights, double bias, double* out) {
  if (ActiveVariant() == Variant::kVector) {
    vectorized::AbsResidualsToModel(rows, n_rows, width, weights, bias, out);
  } else {
    generic::AbsResidualsToModel(rows, n_rows, width, weights, bias, out);
  }
}

void DistancesToCenter(const double* rows, size_t n_rows, size_t dims,
                       const double* center, double* out) {
  if (ActiveVariant() == Variant::kVector) {
    vectorized::DistancesToCenter(rows, n_rows, dims, center, out);
  } else {
    generic::DistancesToCenter(rows, n_rows, dims, center, out);
  }
}

}  // namespace itrim::kernels
