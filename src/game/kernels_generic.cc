// Portable kernel build: default optimization, no ISA extensions beyond the
// project baseline. CMake compiles this TU with -ffp-contract=off so the
// doubles match the vector build (see kernels.h for the full contract).
#define ITRIM_KERNEL_NAMESPACE generic
#include "game/kernels_impl.inc"
#undef ITRIM_KERNEL_NAMESPACE
