// Percentile-position geometry for multi-dimensional rounds.
//
// The paper expresses every strategy (injection and trimming positions) as a
// *data percentile* (Section VI-A). For a d-dimensional dataset the natural
// generalization of "the value at percentile a" is the per-feature quantile
// vector q(a) = (q_1(a), ..., q_d(a)); a colluding adversary injecting "at
// percentile a" fabricates rows at distance D(a) = ||q(a) - centroid|| from
// the data centroid, and a collector trimming "at percentile T" removes rows
// farther than D(T).
//
// PositionMap captures this mapping, built once from the clean round-0
// calibration sample: a monotone grid of (position a -> distance D(a)) on
// [0.5, 1] plus its inverse. Scoring a row means mapping its centroid
// distance back to a position, so the whole game — trimming thresholds,
// injection points, quality bands — plays out in one shared percentile
// coordinate, exactly like the scalar case.
//
// Empirically (see DESIGN.md) this geometry reproduces the paper's two key
// quantitative features: benign loss under a threshold T ~= 1 - T for
// T in [0.85, 0.93] and ~0 for T >= 0.95 (the Fig 4 vs Fig 5 overhead
// difference), and poison damage that grows steeply toward a = 1 (the
// Ostrich-vs-defenses gap).
#ifndef ITRIM_GAME_POSITION_MAP_H_
#define ITRIM_GAME_POSITION_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief Monotone position <-> distance mapping for row-valued rounds.
class PositionMap {
 public:
  /// Creates an empty map; populate it via Build().
  PositionMap() = default;

  /// \brief Builds the map from a clean sample (>= 2 rows, uniform width).
  static Result<PositionMap> Build(
      const std::vector<std::vector<double>>& sample);

  /// \brief Centroid of the calibration sample.
  const std::vector<double>& centroid() const { return centroid_; }

  /// \brief Distance from the centroid representing `position`.
  ///
  /// Positions in [0.5, 1] interpolate the quantile-vector grid; positions
  /// above 1 extrapolate linearly (the adversary may fabricate values beyond
  /// the observed domain); positions below 0.5 shrink linearly to 0.
  double DistanceAt(double position) const;

  /// \brief Inverse of DistanceAt: the position whose representative
  /// distance equals `distance` (clamped/extrapolated consistently).
  double PositionOf(double distance) const;

  /// \brief Position score of a row (its centroid distance, inverted).
  double PositionOfRow(std::span<const double> row) const;

  /// \brief Batched PositionOfRow over `n_rows` contiguous rows of width
  /// centroid().size() (row-major): one kernel sweep for the distances,
  /// then the grid inversion per row. Bit-identical to per-row scoring.
  void PositionsOfRows(std::span<const double> rows, size_t n_rows,
                       std::span<double> out) const;

  /// \brief Fabricates a row at `position` along `direction` (unit vector):
  /// centroid + DistanceAt(position) * direction.
  std::vector<double> MakePoint(double position,
                                std::span<const double> direction) const;

  /// \brief MakePoint into caller-owned storage (resized, capacity reused).
  void MakePointInto(double position, std::span<const double> direction,
                     std::vector<double>* out) const;

  /// \brief MakePoint into a preallocated row of width centroid().size()
  /// (the SoA row-pool shape; no resizing, no allocation).
  void MakePointInto(double position, std::span<const double> direction,
                     std::span<double> out) const;

  /// \brief Unit direction of the upper quantile vector q(0.95) - centroid:
  /// the data-meaningful "all features high" direction a colluding adversary
  /// fabricates values along (a random direction would be nearly orthogonal
  /// to the class structure in high dimension and dilute the attack).
  const std::vector<double>& quantile_direction() const {
    return quantile_direction_;
  }

  /// \brief Number of grid knots (for introspection/tests).
  size_t grid_size() const { return grid_distance_.size(); }

 private:
  static constexpr double kGridLo = 0.5;
  static constexpr double kGridStep = 0.005;
  /// Bucket count of the inversion accelerator (~5x the knot count, so a
  /// bucket rarely spans more than one knot).
  static constexpr size_t kInvBuckets = 512;

  /// \brief Index of the first grid knot >= `distance` (the lower_bound
  /// the inversion interpolates at). O(1) via the bucket accelerator; the
  /// index is an exact integer, so the accelerated search is bitwise
  /// equivalent to a plain binary search by construction.
  size_t UpperKnot(double distance) const;

  /// \brief Populates the bucket accelerator from the finished grid.
  void BuildInversionIndex();

  std::vector<double> centroid_;
  std::vector<double> quantile_direction_;
  std::vector<double> grid_distance_;  // D(a) at a = kGridLo + i*kGridStep
  /// Inversion accelerator: bucket b (uniform over [D(lo), D(hi)]) maps to
  /// a starting knot near lower_bound(bucket lower edge); a query lands in
  /// its bucket with one multiply and walks at most a knot or two. Empty
  /// when the grid is flat (the search branch is then unreachable).
  std::vector<uint32_t> inv_bucket_start_;
  double inv_bucket_scale_ = 0.0;
};

}  // namespace itrim

#endif  // ITRIM_GAME_POSITION_MAP_H_
