#include "game/trimmer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/math_util.h"
#include "game/kernels.h"
#include "stats/quantile.h"

namespace itrim {

TrimOutcome TrimAboveValue(std::span<const double> values, double cutoff) {
  TrimOutcome out;
  TrimAboveValueInto(values, cutoff, &out);
  return out;
}

void TrimAboveValueInto(std::span<const double> values, double cutoff,
                        TrimOutcome* out) {
  out->cutoff = cutoff;
  out->keep.resize(values.size());
  out->kept_count =
      kernels::MaskAtMost(values.data(), values.size(), cutoff,
                          out->keep.data());
  out->removed_count = values.size() - out->kept_count;
}

Result<TrimOutcome> TrimAtReferencePercentile(
    std::span<const double> values, const std::vector<double>& reference,
    double q) {
  if (reference.empty()) {
    return Status::FailedPrecondition("empty reference distribution");
  }
  if (q >= 1.0) {
    TrimOutcome out;
    out.cutoff = std::numeric_limits<double>::infinity();
    out.keep.assign(values.size(), 1);
    out.kept_count = values.size();
    return out;
  }
  double cutoff = Quantile(reference, q);
  return TrimAboveValue(values, cutoff);
}

TrimOutcome TrimTopFraction(std::span<const double> values, double q) {
  TrimOutcome out;
  std::vector<size_t> idx;
  TrimTopFractionInto(values, q, &idx, &out);
  return out;
}

void TrimTopFractionInto(std::span<const double> values, double q,
                         std::vector<size_t>* idx_scratch, TrimOutcome* out) {
  out->kept_count = 0;
  out->removed_count = 0;
  out->keep.assign(values.size(), 1);
  if (q >= 1.0 || values.empty()) {
    out->cutoff = std::numeric_limits<double>::infinity();
    out->kept_count = values.size();
    return;
  }
  q = std::max(q, 0.0);
  size_t remove = static_cast<size_t>(
      std::ceil((1.0 - q) * static_cast<double>(values.size())));
  remove = std::min(remove, values.size());
  // Partial sort of indices by descending value; remove the top `remove`.
  std::vector<size_t>& idx = *idx_scratch;
  idx.resize(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::nth_element(idx.begin(), idx.begin() + static_cast<long>(remove),
                   idx.end(),
                   [&](size_t a, size_t b) { return values[a] > values[b]; });
  out->cutoff = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < remove; ++i) {
    out->keep[idx[i]] = 0;
  }
  // The reported cutoff is the smallest removed value (the effective
  // threshold); fall back to +inf when nothing was removed.
  if (remove > 0) {
    double smallest_removed = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < remove; ++i) {
      smallest_removed = std::min(smallest_removed, values[idx[i]]);
    }
    out->cutoff = smallest_removed;
  }
  out->removed_count = remove;
  out->kept_count = values.size() - remove;
}

DistanceTrimmer::DistanceTrimmer(std::vector<double> centroid)
    : centroid_(std::move(centroid)) {}

std::vector<double> DistanceTrimmer::Scores(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    out.push_back(EuclideanDistance(row, centroid_));
  }
  return out;
}

Result<TrimOutcome> DistanceTrimmer::TrimRows(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& reference_distances, double q) const {
  if (reference_distances.empty()) {
    return Status::FailedPrecondition("empty reference distance sample");
  }
  std::vector<double> scores = Scores(rows);
  return TrimAtReferencePercentile(scores, reference_distances, q);
}

}  // namespace itrim
