// Payoff model of the single-round data-collection game (Section III).
//
// The game between collector and adversary is zero-sum in the poisoning
// payoff P, but the collector additionally pays a trimming overhead T for
// benign values removed. With Soft/Hard stances for both parties the
// one-shot game is the ultimatum game of Table I: it has a unique pure Nash
// equilibrium where both parties play Hard, even though (Soft, Soft) is
// mutually preferable — the structure that motivates the repeated game.
#ifndef ITRIM_GAME_PAYOFF_H_
#define ITRIM_GAME_PAYOFF_H_

#include <array>
#include <string>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief Stance of a player in the one-shot game.
enum class Stance { kSoft = 0, kHard = 1 };

/// \brief Returns "Soft" or "Hard".
std::string_view StanceName(Stance s);

/// \brief A (collector, adversary) payoff pair.
struct PayoffPair {
  double collector = 0.0;
  double adversary = 0.0;

  bool operator==(const PayoffPair&) const = default;
};

/// \brief Payoff parameters with the paper's ordering P̄ > T̄ >> P > T > 0.
///
/// `p_hard`/`p_soft` are the adversary's gains from hard/soft poison that
/// survives trimming; `t_hard`/`t_soft` are the collector's overheads for
/// hard/soft trimming.
struct PayoffParams {
  double p_hard = 10.0;  ///< P̄: gain of surviving hard (near-xR) poison.
  double t_hard = 6.0;   ///< T̄: overhead of hard (near-xL) trimming.
  double p_soft = 1.0;   ///< P: gain of surviving soft (near-xL) poison.
  double t_soft = 0.5;   ///< T: overhead of soft (near-xR) trimming.

  /// \brief Checks the ordering P̄ > T̄ > P > T > 0 required by Table I.
  Status Validate() const;
};

/// \brief The 2x2 ultimatum game of Table I.
class UltimatumGame {
 public:
  explicit UltimatumGame(PayoffParams params);

  /// \brief Payoffs when the collector plays `c` and the adversary plays `a`.
  ///
  /// (Soft, Soft):  soft poison survives soft trim — (-P - T, +P).
  /// (Soft, Hard):  hard poison survives soft trim — (-P̄ - T, +P̄).
  /// (Hard, *):     hard trimming removes all poison — (-T̄, 0).
  PayoffPair Payoff(Stance c, Stance a) const;

  /// \brief All pure-strategy Nash equilibria (weak best responses allowed).
  std::vector<std::pair<Stance, Stance>> PureNashEquilibria() const;

  /// \brief True iff the unique *strict* equilibrium is (Hard, Hard) while
  /// (Soft, Soft) Pareto-dominates it — the prisoner's-dilemma structure the
  /// paper derives from Table I.
  bool HasPrisonersDilemmaStructure() const;

  /// \brief Collector's roundwise cooperation gain
  /// g_c = payoff(Soft,Soft).collector - payoff(Hard,Hard).collector
  ///     = T̄ - P - T  (Section V).
  double CollectorCooperationGain() const;

  /// \brief Adversary's roundwise cooperation gain g_a = P (Section V).
  double AdversaryCooperationGain() const;

  /// \brief Symmetric-axiom cooperative gain g_ac = (g_a + g_c) / 2.
  double SymmetricCooperationGain() const;

  const PayoffParams& params() const { return params_; }

 private:
  PayoffParams params_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_PAYOFF_H_
