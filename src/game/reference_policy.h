// Trim-reference policies: how a collector threshold becomes a kept set.
//
// The round protocol fixes *when* trimming happens; a ReferencePolicy fixes
// *against what*. The paper's interactive game trims at a percentile of the
// public-board reference distribution (PercentileReference — the engine's
// historical behavior, bit for bit). The regression-poisoning literature
// instead trims against a *fitted model*: refit on the current survivors,
// keep the lowest-residual points, repeat (FittedModelReference). Pulling
// the reference out of ScoreModel::TrimAtReference / TrimmingSession::Step
// into this seam lets model-in-the-loop workloads (and the planned
// federated aggregation setting) plug in without touching the engine.
//
// Policies are borrowed by the session like strategies are; a policy with
// internal scratch (FittedModelReference) must not be shared by concurrent
// sessions. The keep-all (percentile >= 1) and round-mass-trimming branches
// stay in the engine — a policy only ever sees a real reference trim.
#ifndef ITRIM_GAME_REFERENCE_POLICY_H_
#define ITRIM_GAME_REFERENCE_POLICY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "game/public_board.h"
#include "game/trimmer.h"
#include "ml/linreg.h"

namespace itrim {

class ScoreModel;

/// \brief Strategy object mapping a collector threshold to a kept set.
class ReferencePolicy {
 public:
  virtual ~ReferencePolicy() = default;

  virtual std::string name() const = 0;

  /// \brief Bootstrap-time compatibility check against the session's model
  /// (e.g. the fitted-model policy needs multi-column observations).
  virtual Status Validate(const ScoreModel& /*model*/) const {
    return Status::OK();
  }

  /// \brief Trims the model's current round at collector threshold
  /// `percentile` (< 1), overwriting `out` in place (warm TrimOutcome =>
  /// allocation-free round loop, same contract as TrimAtReference).
  virtual Status TrimRound(double percentile, ScoreModel* model,
                           const PublicBoard& board, TrimOutcome* out) = 0;

  /// \brief Model refit iterations the most recent TrimRound ran (0 for
  /// policies that never refit). Telemetry only — the observability layer
  /// records it per round; it never feeds back into the game.
  virtual int last_refit_iterations() const { return 0; }
};

/// \brief The paper's percentile reference: delegates to the model's
/// TrimAtReference (cutoff at the board's percentile / direct position
/// threshold). Stateless — one shared instance serves every session, and
/// the delegation is bit-identical to the pre-policy engine.
class PercentileReference : public ReferencePolicy {
 public:
  std::string name() const override { return "percentile"; }
  Status TrimRound(double percentile, ScoreModel* model,
                   const PublicBoard& board, TrimOutcome* out) override;
};

/// \brief Shared stateless PercentileReference instance; the session
/// default when no policy is supplied (existing call sites keep their
/// exact historical behavior).
PercentileReference* DefaultReferencePolicy();

/// \brief Model-in-the-loop reference: the round's kept set comes from
/// iteratively refitting a linear model on the lowest-residual survivors
/// (the Trim defense, run within the round).
///
/// The collector threshold keeps its percentile meaning: a threshold q
/// keeps the floor(q * n) lowest-residual observations — the same kept
/// mass a percentile cutoff would target — so collectors, adversaries and
/// equilibrium machinery transfer unchanged. The initial fit uses *all*
/// round observations (not a random subset): the policy draws no RNG and
/// carries no cross-round state, which keeps checkpoint/restore exact and
/// the policy reusable across Bootstrap() cycles. Selection is by total
/// order (residual, then index; NaN last), so the kept set is independent
/// of sort algorithm, thread count and kernel variant.
class FittedModelReference : public ReferencePolicy {
 public:
  struct Options {
    int max_refits = 20;  ///< refit loop budget (1 = one-shot Trim)
    double tol = 1e-4;    ///< early stop on mean |delta squared residual|
  };

  FittedModelReference() = default;
  explicit FittedModelReference(Options options) : options_(options) {}

  std::string name() const override { return "fitted_model"; }
  /// Requires a model that exposes its round observations with at least
  /// one feature column plus the response (ObsWidth() >= 2).
  Status Validate(const ScoreModel& model) const override;
  Status TrimRound(double percentile, ScoreModel* model,
                   const PublicBoard& board, TrimOutcome* out) override;
  int last_refit_iterations() const override { return last_refit_iters_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  int last_refit_iters_ = 0;
  // Refit-loop scratch, reused across rounds so the session's steady-state
  // Step() stays allocation-free (tests/game/zero_alloc_test.cc).
  LinearRegressor regressor_;
  LinearModel fit_;
  std::vector<double> resid_;
  std::vector<double> prev_resid_;
  std::vector<size_t> order_;
  std::vector<double> fit_xs_;
  std::vector<double> fit_ys_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_REFERENCE_POLICY_H_
