// Quality_Evaluation(): the publicly recognized data-quality standard
// (Section III-B) that both parties use to assess each round.
//
// A quality score lives in [0, 1]; 1 means "indistinguishable from clean
// data". The Titfortat strategy (Algorithm 1) triggers permanent retaliation
// when a round's quality drops below a threshold derived from the clean
// baseline QE(X0) and the redundancy Red.
#ifndef ITRIM_GAME_QUALITY_H_
#define ITRIM_GAME_QUALITY_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "game/public_board.h"

namespace itrim {

/// \brief Interface scoring a received round against the board reference.
class QualityEvaluation {
 public:
  virtual ~QualityEvaluation() = default;

  /// \brief Quality in [0, 1] of `round_values` given the reference `board`;
  /// higher is better.
  virtual double Evaluate(std::span<const double> round_values,
                          const PublicBoard& board) = 0;

  /// \brief Human-readable evaluator name.
  virtual std::string name() const = 0;
};

/// \brief Quality from excess upper-tail mass.
///
/// Clean data has (1 - tth) of its mass above the board's tth-quantile;
/// injected poison inflates that tail. QE = 1 - max(0, observed - expected),
/// a direct estimate of 1 - attack mass.
class TailMassQuality : public QualityEvaluation {
 public:
  explicit TailMassQuality(double tth) : tth_(tth) {}
  double Evaluate(std::span<const double> round_values,
                  const PublicBoard& board) override;
  std::string name() const override { return "tail_mass"; }

 private:
  double tth_;
};

/// \brief Quality from the *location* of the excess mass (Section VI-D).
///
/// Splits the upper tail into a defect band [band_lo, band_hi) and an
/// equilibrium tail [band_hi, inf). Estimated poison mass in each region is
/// the observed count minus the clean expectation; the score is
/// 1 - (defect share of total estimated poison). An adversary playing the
/// equilibrium position (above band_hi) scores ~1; one crowding the defect
/// band (just above the threshold, where trimming is costly) scores ~0.
class DefectShareQuality : public QualityEvaluation {
 public:
  /// How the band edges are interpreted.
  enum class CutoffMode {
    /// lo/hi are percentiles; cutoff values come from board quantiles and
    /// clean occupancy expectations are (hi - lo) and (1 - hi).
    kBoardQuantile,
    /// lo/hi are cutoff *values* in the score domain (e.g. percentile
    /// positions of a PositionMap game); clean occupancy expectations are
    /// measured empirically on the board.
    kAbsolute,
  };

  DefectShareQuality(double band_lo, double band_hi,
                     CutoffMode mode = CutoffMode::kBoardQuantile)
      : band_lo_(band_lo), band_hi_(band_hi), mode_(mode) {}
  double Evaluate(std::span<const double> round_values,
                  const PublicBoard& board) override;
  std::string name() const override { return "defect_share"; }

 private:
  double band_lo_;
  double band_hi_;
  CutoffMode mode_;
};

/// \brief DefectShareQuality with calibrated estimation noise.
///
/// Models the sampling error of tail-mass estimators: the variance of the
/// quality estimate grows as the poison concentrates deeper in the sparse
/// tail (few benign observations above the 99th percentile make the
/// equilibrium-mass estimate noisy). Used by the Table-III non-equilibrium
/// study, where this jitter is what occasionally trips the Titfortat trigger
/// even under equilibrium play.
class NoisyDefectShareQuality : public QualityEvaluation {
 public:
  /// `sigma0` is baseline estimation noise; `sigma_tail` scales with the
  /// estimated equilibrium-tail share of the poison.
  NoisyDefectShareQuality(
      double band_lo, double band_hi, double sigma0, double sigma_tail,
      uint64_t seed,
      DefectShareQuality::CutoffMode mode =
          DefectShareQuality::CutoffMode::kBoardQuantile);
  double Evaluate(std::span<const double> round_values,
                  const PublicBoard& board) override;
  std::string name() const override { return "noisy_defect_share"; }

 private:
  DefectShareQuality inner_;
  double sigma0_;
  double sigma_tail_;
  Rng rng_;
};

/// \brief Trigger threshold per Algorithm 1: quality below
/// `baseline_quality - redundancy` trips the Titfortat judgement.
/// (The algorithm listing writes "QE(Xi) < QE(X0) + Red" with Red acting as
/// a tolerance; the working form, used in Section VI-D, subtracts the
/// redundancy from the clean baseline.)
inline double TitfortatTriggerQuality(double baseline_quality,
                                      double redundancy) {
  return baseline_quality - redundancy;
}

}  // namespace itrim

#endif  // ITRIM_GAME_QUALITY_H_
