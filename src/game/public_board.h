// The public board of the infinite collection game (Fig 3).
//
// The collector records data on a board that the adversary can read; both
// parties derive percentile positions from it. The board therefore *is* the
// commonly-known reference distribution that percentile-denominated
// strategies are defined against. The collection games seed it with a clean
// round-0 calibration sample (the same sample Algorithm 1's QE(X0) baseline
// is measured on) and keep that reference fixed: re-recording the trimmed
// survivors would make the reference absorb its own truncation and spiral
// the cutoffs downward, so all round-to-round adaptivity lives in the
// strategies, not in reference drift.
//
// Order statistics are served by an IndexedBoard (size-augmented treap), so
// every Quantile()/PercentileRank() is O(log n) even when records and
// queries interleave — the seed implementation re-sorted the whole
// reservoir on each post-record query. Results are bit-identical to the
// sorted-oracle semantics (see indexed_board.h for the contract).
#ifndef ITRIM_GAME_PUBLIC_BOARD_H_
#define ITRIM_GAME_PUBLIC_BOARD_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "game/indexed_board.h"

namespace itrim {

/// \brief Append-only record of retained scalar observations with
/// incremental quantile queries.
///
/// Memory is bounded by reservoir downsampling once `capacity` is exceeded;
/// quantiles are computed exactly over the (possibly downsampled) record.
class PublicBoard {
 public:
  /// Creates a board retaining at most `capacity` values (0 = unbounded).
  explicit PublicBoard(size_t capacity = 0, uint64_t seed = 17);

  /// \brief Records a batch of retained values.
  void Record(const std::vector<double>& values);

  /// \brief Records one retained value.
  void RecordOne(double value);

  /// \brief q-quantile (q in [0,1]) of the recorded distribution.
  /// Returns an error when the board is empty.
  Result<double> Quantile(double q) const;

  /// \brief Percentile rank of `x` in [0,1] against the recorded data.
  double PercentileRank(double x) const;

  /// \brief Number of values currently held.
  size_t size() const { return values_.size(); }

  /// \brief Total number of values ever recorded (pre-downsampling).
  size_t total_recorded() const { return total_recorded_; }

  /// \brief All currently held values (unsorted, reservoir-slot order).
  const std::vector<double>& values() const { return values_; }

  /// \brief Drops all records.
  void Clear();

  /// \brief Serializable board state for session checkpointing.
  struct Snapshot {
    std::vector<double> values;
    size_t total_recorded = 0;
    Rng::Snapshot rng;
  };

  /// \brief Captures the current state (the order-statistic index is
  /// rebuilt on Restore, not stored).
  Snapshot Save() const;

  /// \brief Restores a previously captured state. The target board must be
  /// configured with the same capacity as the snapshot's source.
  void Restore(const Snapshot& snapshot);

 private:
  size_t capacity_;
  size_t total_recorded_ = 0;
  Rng rng_;
  std::vector<double> values_;
  IndexedBoard index_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_PUBLIC_BOARD_H_
