// The public board of the infinite collection game (Fig 3).
//
// The collector records data on a board that the adversary can read; both
// parties derive percentile positions from it. The board therefore *is* the
// commonly-known reference distribution that percentile-denominated
// strategies are defined against. The collection games seed it with a clean
// round-0 calibration sample (the same sample Algorithm 1's QE(X0) baseline
// is measured on) and keep that reference fixed: re-recording the trimmed
// survivors would make the reference absorb its own truncation and spiral
// the cutoffs downward, so all round-to-round adaptivity lives in the
// strategies, not in reference drift.
//
// Order statistics are served by one of two interchangeable backends (see
// BoardBackend): the flat B-tree-style FlatOrderBoard (default — sorted
// 64-double leaves over a Fenwick-counted flat index, cache-local) or the
// size-augmented treap IndexedBoard. Both are O(log n) per operation and
// *bit-identical* to the sorted-oracle semantics and to each other for
// every reachable multiset (see flat_order_board.h / indexed_board.h for
// the contract), so the choice is purely a performance knob — snapshots
// taken under one backend restore under the other without any change in
// the stream.
#ifndef ITRIM_GAME_PUBLIC_BOARD_H_
#define ITRIM_GAME_PUBLIC_BOARD_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "game/flat_order_board.h"
#include "game/indexed_board.h"

namespace itrim {

/// \brief Selectable order-statistic index behind PublicBoard. Both
/// backends answer every query bit-identically; they differ only in memory
/// layout and speed (the flat board wins on cache locality).
enum class BoardBackend {
  kFlat = 0,   ///< FlatOrderBoard: contiguous sorted leaves + flat index
  kTreap = 1,  ///< IndexedBoard: size-augmented treap (pointer-chasing)
};

/// \brief Human-readable backend name ("flat" / "treap").
const char* BoardBackendName(BoardBackend backend);

/// \brief Append-only record of retained scalar observations with
/// incremental quantile queries.
///
/// Memory is bounded by reservoir downsampling once `capacity` is exceeded;
/// quantiles are computed exactly over the (possibly downsampled) record.
class PublicBoard {
 public:
  /// Creates a board retaining at most `capacity` values (0 = unbounded).
  explicit PublicBoard(size_t capacity = 0, uint64_t seed = 17,
                       BoardBackend backend = BoardBackend::kFlat);

  /// \brief Records a batch of retained values.
  void Record(const std::vector<double>& values);

  /// \brief Records one retained value.
  void RecordOne(double value);

  /// \brief q-quantile (q in [0,1]) of the recorded distribution.
  /// Returns an error when the board is empty.
  Result<double> Quantile(double q) const;

  /// \brief Percentile rank of `x` in [0,1] against the recorded data.
  double PercentileRank(double x) const;

  /// \brief Number of values currently held.
  size_t size() const { return values_.size(); }

  /// \brief Total number of values ever recorded (pre-downsampling).
  size_t total_recorded() const { return total_recorded_; }

  /// \brief All currently held values (unsorted, reservoir-slot order).
  const std::vector<double>& values() const { return values_; }

  /// \brief Order-statistic backend this board was configured with.
  BoardBackend backend() const { return backend_; }

  /// \brief Drops all records.
  void Clear();

  /// \brief Serializable board state for session checkpointing. Snapshots
  /// are backend-agnostic: the order-statistic index is rebuilt on
  /// Restore, so a snapshot taken under one backend restores under the
  /// other with an identical subsequent stream.
  struct Snapshot {
    std::vector<double> values;
    size_t total_recorded = 0;
    Rng::Snapshot rng;
  };

  /// \brief Captures the current state (the order-statistic index is
  /// rebuilt on Restore, not stored).
  Snapshot Save() const;

  /// \brief Restores a previously captured state. Errors (leaving the
  /// board untouched) when the snapshot holds more values than this
  /// board's configured capacity — a snapshot from a differently
  /// configured source board.
  Status Restore(const Snapshot& snapshot);

 private:
  size_t capacity_;
  BoardBackend backend_;
  size_t total_recorded_ = 0;
  Rng rng_;
  std::vector<double> values_;
  // Only the configured backend is ever populated; the idle one stays
  // empty (a default-constructed board owns no heap memory). Dispatch is a
  // predictable branch on backend_, kept out of the templated query path.
  FlatOrderBoard flat_;
  IndexedBoard treap_;
};

}  // namespace itrim

#endif  // ITRIM_GAME_PUBLIC_BOARD_H_
