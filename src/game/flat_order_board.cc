#include "game/flat_order_board.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/math_util.h"
#include "game/kernels.h"

namespace itrim {

namespace {

// Upper-bound position of `value` inside one sorted leaf: the index of the
// first element > value, i.e. n - |{v : v > value}|. The strictly-greater
// tail count is exactly kernels::CountGreater, which sweeps the <= 64
// contiguous doubles branchlessly (vectorized when the CPU allows) — faster
// in practice than a branchy binary search at this width. NaN is handled by
// the callers (treap semantics: NaN inserts leftmost, never matches).
size_t UpperBoundInLeaf(const double* values, size_t n, double value) {
  return n - kernels::CountGreater(values, n, value);
}

// Lower-bound position: index of the first element >= value, via the
// at-least tail count (kernels::CountAtLeast).
size_t LowerBoundInLeaf(const double* values, size_t n, double value) {
  return n - kernels::CountAtLeast(values, n, value);
}

}  // namespace

uint32_t FlatOrderBoard::AllocLeaf() {
  uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    pool_[slot].n = 0;
  } else {
    slot = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  return slot;
}

size_t FlatOrderBoard::FindInsertLeaf(double value) const {
  // First leaf whose max key is > value (NaN value: every comparison is
  // false, so this is position 0 — the new NaN lands leftmost, as in the
  // treap). When every leaf max is <= value the last leaf absorbs the
  // append.
  const double* begin = max_key_.data();
  const double* end = begin + max_key_.size();
  const double* it = std::partition_point(
      begin, end, [value](double max) { return max <= value; });
  size_t pos = static_cast<size_t>(it - begin);
  return pos == order_.size() ? pos - 1 : pos;
}

void FlatOrderBoard::SplitLeaf(size_t pos) {
  const uint32_t right_slot = AllocLeaf();  // may grow pool_: refs after
  Leaf& left = pool_[order_[pos]];
  Leaf& right = pool_[right_slot];
  constexpr size_t kHalf = kLeafCapacity / 2;
  std::memcpy(right.values, left.values + kHalf, kHalf * sizeof(double));
  right.n = kHalf;
  left.n = kHalf;
  order_.insert(order_.begin() + static_cast<long>(pos) + 1, right_slot);
  max_key_.insert(max_key_.begin() + static_cast<long>(pos) + 1,
                  right.values[kHalf - 1]);
  max_key_[pos] = left.values[kHalf - 1];
  FenwickRebuild();
}

void FlatOrderBoard::Insert(double value) {
  if (order_.empty()) {
    uint32_t slot = AllocLeaf();
    Leaf& leaf = pool_[slot];
    leaf.values[0] = value;
    leaf.n = 1;
    order_.push_back(slot);
    max_key_.push_back(value);
    FenwickRebuild();
    total_ = 1;
    return;
  }
  size_t pos = FindInsertLeaf(value);
  if (pool_[order_[pos]].n == kLeafCapacity) {
    SplitLeaf(pos);
    // Re-aim at the half that now owns the upper-bound position: equal keys
    // stay left iff the left half's new max exceeds the value.
    if (max_key_[pos] <= value) ++pos;
  }
  Leaf& leaf = pool_[order_[pos]];
  const size_t idx = std::isnan(value)
                         ? 0  // treap Split: nothing compares <= NaN
                         : UpperBoundInLeaf(leaf.values, leaf.n, value);
  std::memmove(leaf.values + idx + 1, leaf.values + idx,
               (leaf.n - idx) * sizeof(double));
  leaf.values[idx] = value;
  ++leaf.n;
  max_key_[pos] = leaf.values[leaf.n - 1];
  FenwickAdd(pos, 1);
  ++total_;
}

bool FlatOrderBoard::EraseOne(double value) {
  if (total_ == 0 || std::isnan(value)) return false;
  // First leaf with max >= value; earlier leaves are entirely < value, and
  // if the value exists at all its first occurrence is in this leaf (a
  // later occurrence would force this leaf's max up to the value itself).
  const double* begin = max_key_.data();
  const double* end = begin + max_key_.size();
  const double* it = std::partition_point(
      begin, end, [value](double max) { return max < value; });
  if (it == end) return false;
  const size_t pos = static_cast<size_t>(it - begin);
  Leaf& leaf = pool_[order_[pos]];
  const size_t idx = LowerBoundInLeaf(leaf.values, leaf.n, value);
  if (idx == leaf.n || leaf.values[idx] != value) return false;
  std::memmove(leaf.values + idx, leaf.values + idx + 1,
               (leaf.n - idx - 1) * sizeof(double));
  --leaf.n;
  --total_;
  FenwickSub(pos, 1);
  if (leaf.n > 0) max_key_[pos] = leaf.values[leaf.n - 1];
  if (leaf.n < kLeafMin) RebalanceAfterErase(pos);
  return true;
}

void FlatOrderBoard::MergeLeaves(size_t pos) {
  Leaf& left = pool_[order_[pos]];
  Leaf& right = pool_[order_[pos + 1]];
  assert(left.n + right.n <= kLeafCapacity);
  std::memcpy(left.values + left.n, right.values, right.n * sizeof(double));
  left.n += right.n;
  max_key_[pos] = left.values[left.n - 1];
  free_.push_back(order_[pos + 1]);
  order_.erase(order_.begin() + static_cast<long>(pos) + 1);
  max_key_.erase(max_key_.begin() + static_cast<long>(pos) + 1);
  FenwickRebuild();
}

void FlatOrderBoard::RebalanceAfterErase(size_t pos) {
  const size_t m = LeafCount();
  if (m == 1) {
    // A lone leaf may hold any count; reclaim it only when it empties.
    if (pool_[order_[0]].n == 0) Clear();
    return;
  }
  // Merge with the adjacent sibling when the pair fits in one leaf;
  // otherwise borrow one element across the shared boundary (the erase
  // leaves the leaf exactly one short, so one element restores the
  // invariant and the donor — too full to merge with — stays well above
  // the minimum).
  const size_t left_pos = (pos + 1 < m) ? pos : pos - 1;
  Leaf& left = pool_[order_[left_pos]];
  Leaf& right = pool_[order_[left_pos + 1]];
  if (left.n + right.n <= kLeafCapacity) {
    MergeLeaves(left_pos);
    return;
  }
  if (pos == left_pos) {
    // Borrow the right sibling's smallest onto our tail.
    left.values[left.n] = right.values[0];
    ++left.n;
    std::memmove(right.values, right.values + 1,
                 (right.n - 1) * sizeof(double));
    --right.n;
    max_key_[left_pos] = left.values[left.n - 1];
    FenwickAdd(left_pos, 1);
    FenwickSub(left_pos + 1, 1);
  } else {
    // Borrow the left sibling's largest onto our head.
    std::memmove(right.values + 1, right.values, right.n * sizeof(double));
    right.values[0] = left.values[left.n - 1];
    ++right.n;
    --left.n;
    max_key_[left_pos] = left.values[left.n - 1];
    FenwickAdd(left_pos + 1, 1);
    FenwickSub(left_pos, 1);
  }
}

void FlatOrderBoard::Clear() {
  pool_.clear();
  free_.clear();
  order_.clear();
  max_key_.clear();
  fenwick_.clear();
  total_ = 0;
}

void FlatOrderBoard::Reserve(size_t n) {
  if (n == 0) return;
  // Every leaf holds >= kLeafMin values (single-leaf boards excepted), so n
  // values occupy at most n / kLeafMin leaves, +1 transiently mid-split and
  // +1 slack for the lone-leaf case.
  const size_t max_leaves = n / kLeafMin + 2;
  pool_.reserve(max_leaves);
  free_.reserve(max_leaves);
  order_.reserve(max_leaves);
  max_key_.reserve(max_leaves);
  fenwick_.reserve(max_leaves + 1);
}

void FlatOrderBoard::FenwickRebuild() {
  const size_t m = LeafCount();
  fenwick_.assign(m + 1, 0);
  // One forward pass: add each leaf count at i, push the partial into the
  // parent — O(m) total.
  for (size_t i = 1; i <= m; ++i) {
    fenwick_[i] += pool_[order_[i - 1]].n;
    const size_t parent = i + (i & (~i + 1));
    if (parent <= m) fenwick_[parent] += fenwick_[i];
  }
}

void FlatOrderBoard::FenwickAdd(size_t pos, uint32_t delta) {
  for (size_t i = pos + 1; i <= LeafCount(); i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

void FlatOrderBoard::FenwickSub(size_t pos, uint32_t delta) {
  for (size_t i = pos + 1; i <= LeafCount(); i += i & (~i + 1)) {
    fenwick_[i] -= delta;
  }
}

size_t FlatOrderBoard::FenwickPrefix(size_t pos) const {
  size_t sum = 0;
  for (size_t i = pos; i > 0; i -= i & (~i + 1)) sum += fenwick_[i];
  return sum;
}

double FlatOrderBoard::Kth(size_t k) const {
  assert(k < total_);
  // Binary-lifting descent: find the last order position whose cumulative
  // count is <= k; the remainder indexes into that leaf directly.
  const size_t m = LeafCount();
  size_t bit = 1;
  while ((bit << 1) <= m) bit <<= 1;
  size_t pos = 0;
  size_t remaining = k;
  for (; bit != 0; bit >>= 1) {
    const size_t next = pos + bit;
    if (next <= m && fenwick_[next] <= remaining) {
      pos = next;
      remaining -= fenwick_[next];
    }
  }
  return pool_[order_[pos]].values[remaining];
}

size_t FlatOrderBoard::CountLessEqual(double x) const {
  if (total_ == 0) return 0;
  // NaN probe: !(v > NaN) holds for every v, matching the treap and
  // std::upper_bound over the sorted oracle.
  if (std::isnan(x)) return total_;
  // Leaves with max <= x count wholesale; the single straddling leaf (its
  // successor's min is >= this leaf's max > x) contributes its non-greater
  // prefix via the tail-counting kernel.
  const double* begin = max_key_.data();
  const double* end = begin + max_key_.size();
  const double* it = std::partition_point(
      begin, end, [x](double max) { return max <= x; });
  const size_t pos = static_cast<size_t>(it - begin);
  size_t count = FenwickPrefix(pos);
  if (pos < LeafCount()) {
    const Leaf& leaf = pool_[order_[pos]];
    count += leaf.n - kernels::CountGreater(leaf.values, leaf.n, x);
  }
  return count;
}

Result<double> FlatOrderBoard::Quantile(double q) const {
  const size_t n = total_;
  if (n == 0) {
    return Status::FailedPrecondition("flat order board is empty");
  }
  // Literal transcription of QuantileSorted() with Kth() lookups — the
  // same lines as IndexedBoard::Quantile, so the backends are
  // bit-identical by construction.
  q = Clamp(q, 0.0, 1.0);
  if (n == 1) return Kth(0);
  double pos = q * static_cast<double>(n) - 0.5;
  if (pos <= 0.0) return Kth(0);
  if (pos >= static_cast<double>(n - 1)) return Kth(n - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  return Lerp(Kth(lo), Kth(lo + 1), frac);
}

double FlatOrderBoard::PercentileRank(double x) const {
  const size_t n = total_;
  if (n == 0) return 0.0;
  return static_cast<double>(CountLessEqual(x)) / static_cast<double>(n);
}

}  // namespace itrim
