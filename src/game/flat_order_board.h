// Flat, cache-local order statistics for the public board.
//
// IndexedBoard (the size-augmented treap) made every board operation
// O(log n), but each of those log n steps is a dependent pointer chase into
// a 32-byte node scattered across a multi-megabyte arena — at board size
// 100k the traversal works a ~3 MB set and nearly every level misses cache.
// FlatOrderBoard keeps the same multiset in a B-tree-style flat layout
// instead:
//
//   * values live in sorted *leaves* of up to kLeafCapacity (64) doubles —
//     one or two cache lines of contiguous payload per touched leaf;
//   * leaves sit in stable pool slots; a separate *order* array of slot ids
//     plus a parallel array of per-leaf max keys forms the entire inner
//     index (two small contiguous arrays, ~13 KB at 100k values);
//   * per-leaf element counts are folded into a Fenwick tree, so rank
//     arithmetic (Kth, CountLessEqual) is a short binary-lifting walk over
//     one L1-resident uint32 array instead of a root-to-leaf pointer chain.
//
// Insert/EraseOne are a binary search over the max-key array, a leaf-level
// count (kernels::CountGreater / kernels::CountAtLeast — the same batched
// tail-counting kernels the scoring path uses, auto-vectorized over the
// ≤ 64-double leaf), and a small memmove. Leaves split at kLeafCapacity and
// merge/borrow below kLeafMin, so the leaf count stays ≤ n / kLeafMin + 1
// and Reserve() can pre-size every array — a capacity-bounded reservoir
// then churns allocation-free forever, same contract as IndexedBoard.
//
// Exactness contract: identical to IndexedBoard's. For any reachable
// multiset, Kth/CountLessEqual and therefore Quantile()/PercentileRank()
// return bit-identical doubles to the sorted-oracle implementations
// QuantileSorted() / PercentileRankSorted() in stats/quantile.h (and hence
// to the treap). Insertion uses upper-bound placement among equal keys and
// EraseOne removes by value equality, matching the treap's split/merge
// semantics; a NaN probe to CountLessEqual counts every value
// (std::upper_bound semantics), a NaN EraseOne matches nothing.
// tests/game/flat_order_board_test.cc and tests/game/board_fuzz_test.cc
// pit both backends against the sorted oracle and against each other.
#ifndef ITRIM_GAME_FLAT_ORDER_BOARD_H_
#define ITRIM_GAME_FLAT_ORDER_BOARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief Dynamic multiset of doubles with cache-local order statistics
/// (drop-in alternative to IndexedBoard behind PublicBoard).
class FlatOrderBoard {
 public:
  FlatOrderBoard() = default;

  /// \brief Adds one value (duplicates allowed).
  void Insert(double value);

  /// \brief Removes one instance of `value`; false when absent (a NaN
  /// `value` matches nothing, as in the treap).
  bool EraseOne(double value);

  /// \brief Drops all values; leaf storage is kept for reuse.
  void Clear();

  /// \brief Pre-sizes the leaf pool and index arrays for `n` values so a
  /// bounded reservoir runs allocation-free forever: the min-fill invariant
  /// bounds the live leaf count by n / kLeafMin + 1, splits included.
  void Reserve(size_t n);

  /// \brief Number of values currently held.
  size_t size() const { return total_; }

  /// \brief k-th smallest value, 0-based. Requires k < size().
  double Kth(size_t k) const;

  /// \brief Number of held values <= x (NaN x counts everything, matching
  /// std::upper_bound semantics in the sorted oracle).
  size_t CountLessEqual(double x) const;

  /// \brief q-quantile with MATLAB prctile interpolation; bit-identical to
  /// QuantileSorted() over the same multiset. Errors when empty.
  Result<double> Quantile(double q) const;

  /// \brief Rank of x in [0,1]; bit-identical to PercentileRankSorted().
  /// Returns 0 when empty.
  double PercentileRank(double x) const;

  // Structural constants, exposed for the boundary-targeted tests.
  static constexpr size_t kLeafCapacity = 64;  ///< split threshold
  static constexpr size_t kLeafMin = 16;       ///< merge/borrow threshold

 private:
  struct Leaf {
    double values[kLeafCapacity];
    uint32_t n = 0;
  };

  size_t LeafCount() const { return order_.size(); }
  uint32_t AllocLeaf();
  /// First order position whose leaf can receive `value` under upper-bound
  /// placement (all leaves with max <= value lie strictly before it).
  size_t FindInsertLeaf(double value) const;
  void SplitLeaf(size_t pos);
  void MergeLeaves(size_t pos);  ///< merges order_[pos] and order_[pos + 1]
  void RebalanceAfterErase(size_t pos);

  // Fenwick tree over per-leaf counts, 1-based, parallel to order_.
  void FenwickRebuild();
  void FenwickAdd(size_t pos, uint32_t delta);
  void FenwickSub(size_t pos, uint32_t delta);
  size_t FenwickPrefix(size_t pos) const;  ///< count of first `pos` leaves

  std::vector<Leaf> pool_;        ///< stable leaf slots (never move)
  std::vector<uint32_t> free_;    ///< recycled pool slots
  std::vector<uint32_t> order_;   ///< pool slot ids in global key order
  std::vector<double> max_key_;   ///< parallel to order_: leaf max value
  std::vector<uint32_t> fenwick_; ///< 1-based Fenwick over leaf counts
  size_t total_ = 0;
};

}  // namespace itrim

#endif  // ITRIM_GAME_FLAT_ORDER_BOARD_H_
