// The streaming collection-game engine (Fig 3), one round at a time.
//
// The paper's interactive trimming game is inherently online: rounds arrive
// one by one and both parties adapt to what they observed. TrimmingSession
// exposes exactly that shape — Bootstrap() fixes the clean percentile
// reference, each Step() plays one round (collector picks a threshold,
// benign data and percentile-positioned poison arrive, the round is
// trimmed, both parties observe) and returns its RoundRecord, and Finish()
// closes the book into a GameSummary.
//
// One engine serves every data setting through a ScoreModel
// (game/score_model.h): the 1-D LDP/Taxi setting, the d-dimensional
// k-means/SVM/SOM setting, and the perturbed-report LDP setting differ only
// in how payloads are generated, scored and reference-trimmed, never in the
// round protocol. The batch ScalarCollectionGame / DistanceCollectionGame
// classes (game/collection_game.h) are thin adapters over this engine and
// reproduce the seed implementation's GameSummary bit for bit at fixed
// seed (asserted by tests/game/session_test.cc).
//
// Sessions are checkpointable: Checkpoint() captures the full interaction
// state (round counter, poison quota, RNG, board, per-round records) and
// Restore() resumes a fresh session of the same configuration from it,
// continuing the stream bit-identically. Strategy state is reconstructed by
// replaying the recorded observations, which is exact for every strategy
// whose state is a function of its observation history (all the paper's
// strategies). Two components sit outside the checkpoint and would need
// their own state carried across for exact resume: a strategy drawing
// private randomness inside Observe() (GenerousTitfortatCollector) and a
// quality evaluator with internal state (NoisyDefectShareQuality's
// estimation-noise Rng advances per Evaluate() call) — with those, a
// restored stream is statistically equivalent but not bit-identical.
#ifndef ITRIM_GAME_SESSION_H_
#define ITRIM_GAME_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "game/public_board.h"
#include "game/quality.h"
#include "game/strategies.h"
#include "game/trimmer.h"

namespace itrim {

class ScoreModel;
class ReferencePolicy;

namespace obs {
class MetricSlot;
class TraceBuffer;
}  // namespace obs

/// \brief Borrowed observability sinks for a session (src/obs/). Both
/// pointers may be null (that facet is simply not recorded) and must outlive
/// the session while attached. Recording is strictly write-only telemetry —
/// it never reads back into the game, so every bit-identity and zero-alloc
/// invariant holds with sinks attached or not.
struct SessionObs {
  obs::MetricSlot* metrics = nullptr;
  obs::TraceBuffer* trace = nullptr;
  uint64_t tenant = 0;  ///< tenant id stamped on trace events
};

/// \brief Configuration shared by all collection-game variants.
struct GameConfig {
  int rounds = 20;              ///< number of collection rounds
  size_t round_size = 500;      ///< benign samples per round
  double attack_ratio = 0.1;    ///< poison count = attack_ratio * round_size
  double tth = 0.9;             ///< nominal threshold percentile
  size_t bootstrap_size = 500;  ///< clean board seed (round 0)
  size_t board_capacity = 20000;  ///< reservoir cap (0 = unbounded)
  /// Order-statistic backend behind the public board. Both backends are
  /// bit-identical for every query, so this is purely a performance knob;
  /// the flat board is the default (cache-local, measurably faster).
  BoardBackend board_backend = BoardBackend::kFlat;
  /// When true, trimming removes the top (1 - q) fraction of the received
  /// round itself instead of cutting at the board's q-quantile value.
  bool round_mass_trimming = false;
  uint64_t seed = 42;

  Status Validate() const;
};

/// \brief Per-round bookkeeping of one game run.
struct RoundRecord {
  int round = 0;
  double collector_percentile = kNoTrim;
  double injection_percentile = 0.0;  ///< mean over this round's poison
  double cutoff = 0.0;
  double quality = 1.0;
  size_t benign_received = 0;
  size_t poison_received = 0;
  size_t benign_kept = 0;
  size_t poison_kept = 0;
};

/// \brief Structure-of-arrays store of the rounds a session has played.
///
/// The per-round book is columnar: one flat vector per RoundRecord field.
/// Consumers that scan one metric across the stream (fleet aggregation,
/// telemetry reducers) read a contiguous column instead of striding
/// through an array of structs; consumers that want one round materialize
/// it with Get(). Append order is round order.
class RoundLog {
 public:
  void Clear();
  void Reserve(size_t n);
  void Append(const RoundRecord& record);
  /// \brief Replaces the contents with `records` (checkpoint restore).
  void Assign(const std::vector<RoundRecord>& records);

  size_t size() const { return round_.size(); }
  bool empty() const { return round_.empty(); }
  /// \brief Materializes round i (0-based append index) as a RoundRecord.
  RoundRecord Get(size_t i) const;
  /// \brief Materializes every round, in order (GameSummary/checkpoints).
  std::vector<RoundRecord> ToVector() const;

  // Column views, each parallel to the others (index = append order).
  std::span<const int> rounds() const { return round_; }
  std::span<const double> collector_percentiles() const {
    return collector_percentile_;
  }
  std::span<const double> injection_percentiles() const {
    return injection_percentile_;
  }
  std::span<const double> cutoffs() const { return cutoff_; }
  std::span<const double> qualities() const { return quality_; }
  std::span<const size_t> benign_received() const { return benign_received_; }
  std::span<const size_t> poison_received() const { return poison_received_; }
  std::span<const size_t> benign_kept() const { return benign_kept_; }
  std::span<const size_t> poison_kept() const { return poison_kept_; }

 private:
  std::vector<int> round_;
  std::vector<double> collector_percentile_;
  std::vector<double> injection_percentile_;
  std::vector<double> cutoff_;
  std::vector<double> quality_;
  std::vector<size_t> benign_received_;
  std::vector<size_t> poison_received_;
  std::vector<size_t> benign_kept_;
  std::vector<size_t> poison_kept_;
};

/// \brief Outcome of a full game run.
struct GameSummary {
  std::vector<RoundRecord> rounds;
  /// 0 when the collector's judgement never triggered.
  int termination_round = 0;

  /// \brief Poison kept / total kept; 0 when nothing was kept at all.
  double UntrimmedPoisonFraction() const;
  /// \brief Benign removed / benign received; 0 when no benign data
  /// arrived.
  double BenignLossFraction() const;
  /// \brief Poison kept / poison received; 0 when no poison arrived.
  double PoisonSurvivalRate() const;

  size_t TotalKept() const;
  size_t TotalPoisonKept() const;
  size_t TotalBenignKept() const;
  size_t TotalReceived() const;
  size_t TotalPoisonReceived() const;
  size_t TotalBenignReceived() const;
};

/// \brief Serializable mid-stream state of a TrimmingSession.
struct SessionCheckpoint {
  int next_round = 1;
  double poison_quota = 0.0;
  bool have_prev = false;
  RoundObservation prev;
  std::vector<RoundRecord> records;
  Rng::Snapshot rng;
  PublicBoard::Snapshot board;
};

/// \brief Incremental round-wise engine of the collection game.
///
/// All pointers are borrowed and must outlive the session. `adversary` may
/// be null (the model then materializes poison without percentile guidance,
/// e.g. the LDP report attack); `quality` may be null (rounds score 1.0);
/// `reference` may be null (the shared percentile reference — the paper's
/// board-quantile trim, bit-identical to the pre-policy engine). A
/// reference policy with internal scratch (FittedModelReference) must be
/// owned per session, like strategies are. The configuration is validated
/// at construction; Bootstrap() surfaces the validation Status (and the
/// policy's model-compatibility check) instead of silently running on a
/// bad config.
class TrimmingSession {
 public:
  TrimmingSession(GameConfig config, ScoreModel* model,
                  CollectorStrategy* collector, AdversaryStrategy* adversary,
                  QualityEvaluation* quality,
                  ReferencePolicy* reference = nullptr);

  /// \brief Resets strategies/model and seeds the board with the clean
  /// round-0 calibration sample that fixes the percentile reference.
  Status Bootstrap();

  /// \brief Plays the next round and returns its record. Requires a
  /// successful Bootstrap(); may be called past config().rounds (the
  /// session is an open-ended stream — the configured count only bounds
  /// the batch adapters).
  Result<RoundRecord> Step();

  /// \brief Summary of everything played so far (termination round from
  /// the collector's judgement). The session remains steppable.
  GameSummary Finish() const;

  /// \brief Bootstrap + config().rounds Steps + Finish, the batch shape.
  Result<GameSummary> RunToCompletion();

  /// \brief Captures the interaction state. Requires a successful
  /// Bootstrap(). The model's retained sink is not part of the checkpoint:
  /// a restored session accumulates survivors from the restore point on.
  SessionCheckpoint Checkpoint() const;

  /// \brief Resumes from a checkpoint of an identically configured
  /// session; subsequent Steps are bit-identical to the original stream.
  Status Restore(const SessionCheckpoint& checkpoint);

  /// \brief Attaches (or detaches, with default-constructed sinks)
  /// observability. Takes effect from the next Step(); checkpoint/restore
  /// does not carry sinks — owners re-attach after Restore() (the ingest
  /// layer does this on rehydration).
  void set_observability(const SessionObs& sinks) { obs_ = sinks; }
  const SessionObs& observability() const { return obs_; }

  const GameConfig& config() const { return config_; }
  const PublicBoard& board() const { return board_; }
  /// \brief Columnar book of every round played so far, in round order
  /// (materialize individual rounds with RoundLog::Get()).
  const RoundLog& round_log() const { return records_; }
  /// \brief 1-based index of the next round Step() would play.
  int next_round() const { return next_round_; }
  bool bootstrapped() const { return bootstrapped_; }

 private:
  void RecordRoundObservability(const RoundRecord& record, size_t removed,
                                bool used_reference);

  GameConfig config_;
  Status config_status_;
  ScoreModel* model_;
  CollectorStrategy* collector_;
  AdversaryStrategy* adversary_;
  QualityEvaluation* quality_;
  ReferencePolicy* reference_;
  PublicBoard board_;
  Rng rng_;
  RoundObservation prev_;
  bool have_prev_ = false;
  double poison_quota_ = 0.0;
  int next_round_ = 1;
  bool bootstrapped_ = false;
  SessionObs obs_;
  RoundLog records_;
  // Round-loop scratch, reused across Step() calls so the steady state
  // never touches the heap (tests/game/zero_alloc_test.cc holds the line).
  TrimOutcome trim_scratch_;
  std::vector<size_t> trim_idx_scratch_;
  std::vector<double> poison_pos_scratch_;  ///< NaN positions (no adversary)
};

}  // namespace itrim

#endif  // ITRIM_GAME_SESSION_H_
