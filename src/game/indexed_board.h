// Incremental order statistics for the public board.
//
// The seed PublicBoard answered every Quantile()/PercentileRank() query by
// re-sorting its entire reservoir whenever a record had invalidated the sort
// cache — O(n log n) per touched query, which collapses under streaming
// workloads that interleave records and queries (the Fig 3 game is exactly
// such a stream). IndexedBoard maintains the same multiset in a
// size-augmented treap instead, so inserts, deletions (the reservoir
// replacement path), k-th order statistics and ranks are all O(log n).
//
// Exactness contract: for any reachable multiset, Quantile() and
// PercentileRank() return bit-identical doubles to the sorted-oracle
// implementations QuantileSorted() / PercentileRankSorted() in
// stats/quantile.h. The interpolation arithmetic below is a literal
// transcription of those functions with `sorted[k]` replaced by `Kth(k)`;
// tests/game/indexed_board_test.cc pits the two against each other over
// randomized insert/replace/clear sequences.
#ifndef ITRIM_GAME_INDEXED_BOARD_H_
#define ITRIM_GAME_INDEXED_BOARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace itrim {

/// \brief Dynamic multiset of doubles with O(log n) order statistics.
class IndexedBoard {
 public:
  IndexedBoard() = default;

  /// \brief Adds one value (duplicates allowed).
  void Insert(double value);

  /// \brief Removes one instance of `value`; false when absent.
  bool EraseOne(double value);

  /// \brief Drops all values; node storage is kept for reuse.
  void Clear();

  /// \brief Pre-sizes the node pool for `n` values so the first n inserts
  /// never grow the arena (a bounded reservoir then runs allocation-free
  /// forever: replacement erases feed the free list that inserts drain).
  void Reserve(size_t n);

  /// \brief Number of values currently held.
  size_t size() const { return root_ == kNil ? 0 : nodes_[root_].count; }

  /// \brief k-th smallest value, 0-based. Requires k < size().
  double Kth(size_t k) const;

  /// \brief Number of held values <= x (NaN x counts everything, matching
  /// std::upper_bound semantics in the sorted oracle).
  size_t CountLessEqual(double x) const;

  /// \brief q-quantile with MATLAB prctile interpolation; bit-identical to
  /// QuantileSorted() over the same multiset. Errors when empty.
  Result<double> Quantile(double q) const;

  /// \brief Rank of x in [0,1]; bit-identical to PercentileRankSorted().
  /// Returns 0 when empty.
  double PercentileRank(double x) const;

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    double value = 0.0;
    uint64_t priority = 0;
    uint32_t left = kNil;
    uint32_t right = kNil;
    uint32_t count = 1;  ///< subtree size
  };

  uint32_t CountOf(uint32_t t) const { return t == kNil ? 0 : nodes_[t].count; }
  void Pull(uint32_t t);
  uint32_t NewNode(double value);
  void FreeNode(uint32_t t);
  uint32_t Merge(uint32_t a, uint32_t b);
  /// Splits t into (values <= key, values > key) when `or_equal`, else
  /// (values < key, values >= key).
  void Split(uint32_t t, double key, bool or_equal, uint32_t* a, uint32_t* b);

  std::vector<Node> nodes_;
  std::vector<uint32_t> free_;
  uint32_t root_ = kNil;
  /// Heap priorities come from a private deterministic stream so identical
  /// op sequences build identical trees on every platform.
  SplitMix64 priorities_{0x51ED2701A5E5B1C7ULL};
};

}  // namespace itrim

#endif  // ITRIM_GAME_INDEXED_BOARD_H_
