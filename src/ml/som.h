// Self-Organizing Map (Kohonen network) on a rectangular grid.
//
// Substrate for the Fig 6b / Fig 8 experiments: a 20x20 SOM is trained on
// CREDITCARD-like data and the question is whether the rare classes (the
// isolated fraud/premium points and the small "green" segment) keep distinct
// map regions after each defense scheme's sanitization.
#ifndef ITRIM_ML_SOM_H_
#define ITRIM_ML_SOM_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace itrim {

/// \brief SOM training configuration.
///
/// Training is *batch* (the MATLAB `selforgmap` style): each epoch computes
/// every node's new weight as the neighborhood-weighted mean of the samples
/// assigned to it, with the neighborhood radius shrinking across epochs.
/// Batch training lets rare, isolated samples capture their own node — the
/// property the Fig 8 experiment depends on.
struct SomConfig {
  size_t width = 20;
  size_t height = 20;
  int epochs = 10;              ///< batch passes over the training data
  double initial_radius = 0.0;  ///< 0 = max(width,height)/2
  double final_radius = 0.3;    ///< sharp enough for rare-point nodes
  uint64_t seed = 11;
};

/// \brief Trained SOM with analysis helpers.
class Som {
 public:
  /// Creates an empty (untrained) map; populate it via Train().
  Som() = default;

  /// \brief Trains a SOM on `data.rows`.
  static Result<Som> Train(const Dataset& data, const SomConfig& config);

  /// \brief Index (row-major) of the best-matching unit for `row`.
  size_t BestMatchingUnit(const std::vector<double>& row) const;

  /// \brief Mean distance from rows to their BMU weight (quantization error).
  double QuantizationError(const std::vector<std::vector<double>>& rows) const;

  /// \brief U-matrix: per-node mean distance to grid-neighbor weights
  /// (row-major, width*height entries). Dark ridges = cluster boundaries.
  std::vector<double> UMatrix() const;

  /// \brief Per-node sample counts for `rows` (hit histogram).
  std::vector<size_t> HitMap(const std::vector<std::vector<double>>& rows) const;

  /// \brief Majority label per node (-1 for empty nodes); requires labels.
  std::vector<int> LabelMap(const Dataset& data) const;

  /// \brief Number of distinct labels that own at least one map node —
  /// the "classes represented" statistic reported by the Fig 8 bench.
  size_t ClassesRepresented(const Dataset& data) const;

  size_t width() const { return width_; }
  size_t height() const { return height_; }
  const std::vector<std::vector<double>>& weights() const { return weights_; }

 private:
  size_t width_ = 0;
  size_t height_ = 0;
  std::vector<std::vector<double>> weights_;  // row-major nodes
};

}  // namespace itrim

#endif  // ITRIM_ML_SOM_H_
