#include "ml/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/math_util.h"

namespace itrim {

namespace {

// k-means++ seeding: each next center is drawn with probability
// proportional to squared distance from the nearest existing center.
std::vector<std::vector<double>> SeedPlusPlus(
    const std::vector<std::vector<double>>& points, size_t k, Rng* rng) {
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  centers.push_back(points[rng->UniformInt(points.size())]);
  std::vector<double> dist_sq(points.size(),
                              std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    const auto& last = centers.back();
    for (size_t i = 0; i < points.size(); ++i) {
      dist_sq[i] = std::min(dist_sq[i], SquaredDistance(points[i], last));
    }
    size_t chosen = rng->Categorical(dist_sq);
    if (chosen >= points.size()) {
      // All distances zero (duplicate data): fall back to uniform choice.
      chosen = static_cast<size_t>(rng->UniformInt(points.size()));
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

KMeansResult LloydRun(const std::vector<std::vector<double>>& points,
                      const KMeansConfig& config, Rng* rng) {
  const size_t n = points.size();
  const size_t dims = points[0].size();
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, config.k, rng);
  result.assignment.assign(n, 0);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    ++result.iterations;
    // Assignment step.
    for (size_t i = 0; i < n; ++i) {
      result.assignment[i] = NearestCentroid(points[i], result.centroids);
    }
    // Update step.
    std::vector<std::vector<double>> sums(config.k,
                                          std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(config.k, 0);
    for (size_t i = 0; i < n; ++i) {
      Axpy(1.0, points[i], &sums[result.assignment[i]]);
      ++counts[result.assignment[i]];
    }
    double movement = 0.0;
    for (size_t c = 0; c < config.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point to avoid collapse.
        sums[c] = points[rng->UniformInt(n)];
        counts[c] = 1;
      }
      double inv = 1.0 / static_cast<double>(counts[c]);
      for (double& v : sums[c]) v *= inv;
      movement += SquaredDistance(sums[c], result.centroids[c]);
      result.centroids[c] = std::move(sums[c]);
    }
    if (movement < config.tolerance) {
      result.converged = true;
      break;
    }
  }
  // Final assignment + SSE.
  result.sse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.assignment[i] = NearestCentroid(points[i], result.centroids);
    result.sse += SquaredDistance(points[i],
                                  result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace

size_t NearestCentroid(const std::vector<double>& point,
                       const std::vector<std::vector<double>>& centroids) {
  assert(!centroids.empty());
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    double d = SquaredDistance(point, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

double EvaluateSse(const std::vector<std::vector<double>>& points,
                   const std::vector<std::vector<double>>& centroids) {
  double acc = 0.0;
  for (const auto& p : points) {
    acc += SquaredDistance(p, centroids[NearestCentroid(p, centroids)]);
  }
  return acc;
}

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansConfig& config) {
  if (points.empty()) return Status::InvalidArgument("no points");
  if (config.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (config.k > points.size()) {
    return Status::InvalidArgument("k exceeds the number of points");
  }
  for (const auto& p : points) {
    if (p.size() != points[0].size()) {
      return Status::InvalidArgument("ragged point matrix");
    }
  }
  Rng rng(config.seed);
  KMeansResult best;
  best.sse = std::numeric_limits<double>::infinity();
  int restarts = std::max(1, config.restarts);
  for (int r = 0; r < restarts; ++r) {
    KMeansResult run = LloydRun(points, config, &rng);
    if (run.sse < best.sse) best = std::move(run);
  }
  return best;
}

}  // namespace itrim
