#include "ml/som.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/math_util.h"

namespace itrim {

Result<Som> Som::Train(const Dataset& data, const SomConfig& config) {
  if (data.rows.empty()) return Status::InvalidArgument("empty dataset");
  if (config.width == 0 || config.height == 0) {
    return Status::InvalidArgument("grid dimensions must be positive");
  }
  if (config.epochs < 1) return Status::InvalidArgument("epochs must be >= 1");
  const size_t dims = data.dims();
  const size_t nodes = config.width * config.height;

  Som som;
  som.width_ = config.width;
  som.height_ = config.height;
  som.weights_.resize(nodes);

  Rng rng(config.seed);
  // Initialize node weights from random training rows plus small jitter.
  for (auto& w : som.weights_) {
    w = data.rows[rng.UniformInt(data.rows.size())];
    for (double& v : w) v += rng.Normal(0.0, 0.01);
  }

  double radius0 = config.initial_radius > 0.0
                       ? config.initial_radius
                       : static_cast<double>(
                             std::max(config.width, config.height)) /
                             2.0;

  // Batch training: per epoch, every node's new weight is the Gaussian
  // neighborhood-weighted mean of the samples whose BMU lies nearby.
  std::vector<std::vector<double>> numerator(nodes,
                                             std::vector<double>(dims, 0.0));
  std::vector<double> denominator(nodes, 0.0);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double t = config.epochs > 1
                   ? static_cast<double>(epoch) /
                         static_cast<double>(config.epochs - 1)
                   : 1.0;
    double radius = radius0 * std::pow(config.final_radius / radius0, t);
    double radius_sq = radius * radius;
    long reach = std::max(1L, static_cast<long>(std::ceil(radius * 3.0)));

    for (auto& row : numerator) std::fill(row.begin(), row.end(), 0.0);
    std::fill(denominator.begin(), denominator.end(), 0.0);

    for (const auto& x : data.rows) {
      size_t bmu = som.BestMatchingUnit(x);
      long bmu_r = static_cast<long>(bmu / config.width);
      long bmu_c = static_cast<long>(bmu % config.width);
      long r_lo = std::max(0L, bmu_r - reach);
      long r_hi = std::min(static_cast<long>(config.height) - 1,
                           bmu_r + reach);
      long c_lo = std::max(0L, bmu_c - reach);
      long c_hi = std::min(static_cast<long>(config.width) - 1,
                           bmu_c + reach);
      for (long r = r_lo; r <= r_hi; ++r) {
        for (long c = c_lo; c <= c_hi; ++c) {
          double dr = static_cast<double>(r - bmu_r);
          double dc = static_cast<double>(c - bmu_c);
          double h = std::exp(-(dr * dr + dc * dc) / (2.0 * radius_sq));
          if (h < 1e-4) continue;
          size_t node = static_cast<size_t>(r) * config.width +
                        static_cast<size_t>(c);
          for (size_t j = 0; j < dims; ++j) numerator[node][j] += h * x[j];
          denominator[node] += h;
        }
      }
    }
    for (size_t node = 0; node < nodes; ++node) {
      if (denominator[node] <= 1e-12) continue;  // empty node keeps weights
      for (size_t j = 0; j < dims; ++j) {
        som.weights_[node][j] = numerator[node][j] / denominator[node];
      }
    }
  }
  return som;
}

size_t Som::BestMatchingUnit(const std::vector<double>& row) const {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < weights_.size(); ++i) {
    double d = SquaredDistance(row, weights_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

double Som::QuantizationError(
    const std::vector<std::vector<double>>& rows) const {
  if (rows.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& row : rows) {
    acc += EuclideanDistance(row, weights_[BestMatchingUnit(row)]);
  }
  return acc / static_cast<double>(rows.size());
}

std::vector<double> Som::UMatrix() const {
  std::vector<double> out(weights_.size(), 0.0);
  for (size_t r = 0; r < height_; ++r) {
    for (size_t c = 0; c < width_; ++c) {
      double acc = 0.0;
      int neighbors = 0;
      auto consider = [&](long rr, long cc) {
        if (rr < 0 || cc < 0 || rr >= static_cast<long>(height_) ||
            cc >= static_cast<long>(width_)) {
          return;
        }
        acc += EuclideanDistance(
            weights_[r * width_ + c],
            weights_[static_cast<size_t>(rr) * width_ +
                     static_cast<size_t>(cc)]);
        ++neighbors;
      };
      consider(static_cast<long>(r) - 1, static_cast<long>(c));
      consider(static_cast<long>(r) + 1, static_cast<long>(c));
      consider(static_cast<long>(r), static_cast<long>(c) - 1);
      consider(static_cast<long>(r), static_cast<long>(c) + 1);
      out[r * width_ + c] = neighbors > 0 ? acc / neighbors : 0.0;
    }
  }
  return out;
}

std::vector<size_t> Som::HitMap(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<size_t> hits(weights_.size(), 0);
  for (const auto& row : rows) ++hits[BestMatchingUnit(row)];
  return hits;
}

std::vector<int> Som::LabelMap(const Dataset& data) const {
  assert(data.labeled());
  std::vector<std::map<int, size_t>> votes(weights_.size());
  for (size_t i = 0; i < data.rows.size(); ++i) {
    ++votes[BestMatchingUnit(data.rows[i])][data.labels[i]];
  }
  std::vector<int> out(weights_.size(), -1);
  for (size_t n = 0; n < votes.size(); ++n) {
    size_t best = 0;
    for (const auto& [label, count] : votes[n]) {
      if (count > best) {
        best = count;
        out[n] = label;
      }
    }
  }
  return out;
}

size_t Som::ClassesRepresented(const Dataset& data) const {
  std::set<int> owned;
  for (int label : LabelMap(data)) {
    if (label >= 0) owned.insert(label);
  }
  return owned.size();
}

}  // namespace itrim
