// ScoreModel of the regression-poisoning setting: residuals against a
// reference linear fit.
//
// Observations are flat [x_0..x_{d-1}, y] rows of ObsWidth() = d + 1
// doubles; the score is the absolute residual |y - yhat| against a
// reference model fit (closed form) on the clean bootstrap sample, and the
// public board records the bootstrap sample's residual magnitudes — so the
// percentile coordinate both parties speak is a residual quantile. Poison
// "at percentile a" materializes as a response flipped across the
// reference prediction by the board's a-quantile residual (the
// flip-and-shift attack shape); the leverage variant plants it on the
// highest-leverage feature row instead of a random one.
//
// The model always materializes its round rows in a flat pooled block and
// exposes them through observations(): that is what lets a
// FittedModelReference (game/reference_policy.h) refit on the round's
// survivors — the model-in-the-loop generalization of the interactive
// protocol. With the default PercentileReference the model behaves like
// the scalar settings, trimming at the board's residual quantile.
#ifndef ITRIM_ML_RESIDUAL_SCORE_MODEL_H_
#define ITRIM_ML_RESIDUAL_SCORE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "game/public_board.h"
#include "game/score_model.h"
#include "game/trimmer.h"
#include "ml/linreg.h"

namespace itrim {

/// \brief How the residual model materializes a poison row.
enum class PoisonShape {
  /// Flip-and-shift: a random clean feature row, response flipped across
  /// the reference prediction by the positioned residual magnitude
  /// (sign ~ Bernoulli(1/2)).
  kFlipShift = 0,
  /// Leverage attack: every poison row reuses the highest-leverage clean
  /// feature row (max distance to the feature mean), response pushed
  /// upward — one consistent pull on the fit, no RNG per poison value.
  kLeverage = 1,
};

/// \brief Human-readable poison shape name ("flip_shift" / "leverage").
const char* PoisonShapeName(PoisonShape shape);

/// \brief Regression data setting of the TrimmingSession engine.
///
/// `source` is borrowed; benign arrivals sample its rows with replacement.
class ResidualScoreModel : public ScoreModel {
 public:
  explicit ResidualScoreModel(const RegressionData* source,
                              PoisonShape shape = PoisonShape::kFlipShift);

  std::string name() const override { return "residual"; }
  uint64_t BoardSeedSalt() const override { return 0x94D049BB133111EBULL; }
  Status BeginRun() override;
  Status Bootstrap(size_t bootstrap_size, Rng* rng,
                   PublicBoard* board) override;
  void BeginRound(size_t expected) override;
  void AppendBenignBatch(size_t count, Rng* rng) override;
  Status AppendBenignBatch(std::span<const double> obs) override;
  /// Positions above 1 extrapolate beyond the observed residual range (the
  /// adversary may fabricate residuals larger than any clean one).
  double InjectionCap() const override { return 1.5; }
  Status AppendPoison(double position, Rng* rng,
                      const PublicBoard& board) override;
  std::span<const double> scores() const override { return scores_; }
  std::span<const char> is_poison() const override { return is_poison_; }
  size_t ObsWidth() const override;
  bool ProvidesObservations() const override { return true; }
  std::span<const double> observations() const override {
    return {row_data_.data(), rows_used_ * width_};
  }
  Status ScoreInto(std::span<const double> obs,
                   std::span<double> out) const override;
  Status TrimAtReference(double percentile, const PublicBoard& board,
                         TrimOutcome* out) override;
  void Commit(std::span<const char> keep) override;

  /// \brief Survivor rows accumulated since BeginRun() (poison rows carry
  /// their fabricated responses).
  const RegressionData& retained_data() const { return retained_; }
  /// \brief Poison flags parallel to retained_data() rows.
  const std::vector<char>& retained_is_poison() const {
    return retained_is_poison_;
  }
  /// \brief Reference fit fixed from the clean bootstrap sample (valid
  /// after Bootstrap()).
  const LinearModel& reference_model() const { return reference_; }

 protected:
  double ScoreObservation(std::span<const double> obs) const override;

 private:
  /// Next reusable [x..., y] slot in the flat round pool (grow-only).
  std::span<double> NextRowSlot();

  const RegressionData* source_;
  PoisonShape shape_;
  size_t width_ = 0;  ///< dims + 1, fixed by BeginRun()
  LinearRegressor regressor_;
  LinearModel reference_;
  /// Source rows interleaved as [x..., y] blocks of width_, built once per
  /// run: benign arrivals are single memcpys out of it, and the batched
  /// residual kernel sweeps it directly.
  std::vector<double> flat_rows_;
  /// |residual| of every source row against the reference fit, cached at
  /// bootstrap via one kernel sweep (bit-identical to scoring on arrival).
  std::vector<double> source_scores_;
  size_t leverage_row_ = 0;  ///< argmax feature distance to the mean
  std::vector<double> fit_xs_;           ///< bootstrap fit gather scratch
  std::vector<double> fit_ys_;
  std::vector<double> row_data_;         ///< flat round pool, width_ per row
  size_t rows_used_ = 0;
  std::vector<uint64_t> index_scratch_;  ///< batched benign-draw indices
  std::vector<double> scores_;
  std::vector<char> is_poison_;
  RegressionData retained_;
  std::vector<char> retained_is_poison_;
};

}  // namespace itrim

#endif  // ITRIM_ML_RESIDUAL_SCORE_MODEL_H_
