#include "ml/svm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace itrim {

namespace {

// Dual coordinate descent for the binary L1-loss SVM:
//   min_w  ||w||^2/2 + C sum_i max(0, 1 - y_i w.x_i)
// over rows with an appended bias feature of 1. Labels y in {-1, +1}.
std::vector<double> TrainBinary(const std::vector<std::vector<double>>& rows,
                                const std::vector<double>& y,
                                const SvmConfig& config, Rng* rng) {
  const size_t n = rows.size();
  const size_t dims = rows[0].size();  // already includes bias feature
  std::vector<double> w(dims, 0.0);
  std::vector<double> alpha(n, 0.0);
  std::vector<double> q_ii(n);
  for (size_t i = 0; i < n; ++i) q_ii[i] = Dot(rows[i], rows[i]);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    rng->Shuffle(&order);
    double max_violation = 0.0;
    for (size_t idx : order) {
      if (q_ii[idx] <= 0.0) continue;
      double g = y[idx] * Dot(w, rows[idx]) - 1.0;  // gradient of dual coord
      double pg = g;                                 // projected gradient
      if (alpha[idx] <= 0.0) {
        pg = std::min(g, 0.0);
      } else if (alpha[idx] >= config.c) {
        pg = std::max(g, 0.0);
      }
      max_violation = std::max(max_violation, std::fabs(pg));
      if (pg == 0.0) continue;
      double old_alpha = alpha[idx];
      alpha[idx] = Clamp(old_alpha - g / q_ii[idx], 0.0, config.c);
      double delta = (alpha[idx] - old_alpha) * y[idx];
      if (delta != 0.0) Axpy(delta, rows[idx], &w);
    }
    if (max_violation < config.tolerance) break;
  }
  return w;
}

}  // namespace

Result<LinearSvm> LinearSvm::Train(const Dataset& data,
                                   const SvmConfig& config) {
  if (data.rows.empty()) return Status::InvalidArgument("empty dataset");
  if (!data.labeled()) return Status::InvalidArgument("unlabeled dataset");
  if (config.c <= 0.0) return Status::InvalidArgument("C must be positive");
  int max_label = 0;
  for (int label : data.labels) {
    if (label < 0) return Status::InvalidArgument("negative label");
    max_label = std::max(max_label, label);
  }
  const size_t classes = static_cast<size_t>(max_label) + 1;

  // Augment rows with a constant bias feature.
  std::vector<std::vector<double>> rows;
  rows.reserve(data.rows.size());
  for (const auto& r : data.rows) {
    std::vector<double> row = r;
    row.push_back(1.0);
    rows.push_back(std::move(row));
  }

  Rng rng(config.seed);
  LinearSvm model;
  model.weights_.resize(classes);
  std::vector<double> y(rows.size());
  for (size_t c = 0; c < classes; ++c) {
    for (size_t i = 0; i < rows.size(); ++i) {
      y[i] = data.labels[i] == static_cast<int>(c) ? 1.0 : -1.0;
    }
    model.weights_[c] = TrainBinary(rows, y, config, &rng);
  }
  return model;
}

double LinearSvm::DecisionValue(size_t c, const std::vector<double>& row) const {
  assert(c < weights_.size());
  assert(row.size() + 1 == weights_[c].size());
  double acc = weights_[c].back();  // bias
  for (size_t j = 0; j < row.size(); ++j) acc += weights_[c][j] * row[j];
  return acc;
}

int LinearSvm::Predict(const std::vector<double>& row) const {
  int best = 0;
  double best_v = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < weights_.size(); ++c) {
    double v = DecisionValue(c, row);
    if (v > best_v) {
      best_v = v;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double LinearSvm::Evaluate(const Dataset& data) const {
  if (data.rows.empty() || !data.labeled()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < data.rows.size(); ++i) {
    if (Predict(data.rows[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.rows.size());
}

}  // namespace itrim
