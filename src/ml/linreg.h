// Linear regression and the Trim / iTrim poisoning defenses.
//
// Substrate for the regression-poisoning workload: a deterministic linear
// model (closed-form normal equations plus mini-batch SGD, both driven only
// by the caller's `Rng`), the flip-and-shift training-set attack, and the
// iterative trimming defenses of the regression-poisoning literature:
//
//  * TrimDefense  — fit, keep the lowest-residual n = floor(N / (1 + eps))
//    points, refit, repeat until the mean residual change falls below `tol`
//    (one-shot Trim is the max_iters = 1 special case; eps = 0 is a
//    documented pure no-op).
//  * ITrimDefense — sweeps a grid of candidate contamination levels and
//    estimates the true one from the "knick" in kept-subset MSE: the first
//    grid point whose keep budget fits inside the clean subset drops the
//    kept MSE from poison scale to noise scale.
//
// All prediction dot products run through kernels::LaneDot (the canonical
// 4-lane association), so model evaluation here is bit-identical to the
// batched residual kernel and to the ResidualScoreModel scalar path.
#ifndef ITRIM_ML_LINREG_H_
#define ITRIM_ML_LINREG_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace itrim {

namespace obs {
class MetricSlot;
}  // namespace obs

/// \brief A fitted linear model y = w . x + b.
struct LinearModel {
  std::vector<double> weights;
  double bias = 0.0;

  /// \brief Prediction via the canonical 4-lane dot product
  /// (kernels::LaneDot), bit-identical to the batched residual kernel.
  double Predict(std::span<const double> x) const;
};

/// \brief Mini-batch SGD hyperparameters.
struct SgdOptions {
  int epochs = 50;
  size_t batch_size = 32;
  double learning_rate = 0.05;
  double l2 = 0.0;  ///< ridge penalty on the weights (not the bias)
};

/// \brief Linear-regression fitter with reusable scratch.
///
/// Both fits are deterministic: the closed form accumulates the normal
/// equations sequentially and solves by Gaussian elimination with partial
/// pivoting (no RNG at all); SGD draws only from the caller's `Rng`
/// (per-epoch Fisher-Yates shuffle, then sequential mini-batches). The
/// scratch buffers only grow, so a warm regressor refits without touching
/// the heap — the property the model-in-the-loop trim reference leans on to
/// keep the session round loop allocation-free.
class LinearRegressor {
 public:
  /// \brief Exact least-squares fit of `n = ys.size()` flat observations
  /// (`xs` holds n * dims doubles, row-major) via the normal equations.
  /// Errors with FailedPrecondition when the system is singular (e.g.
  /// fewer points than dims + 1) and InvalidArgument on shape mismatch.
  Status FitClosedForm(std::span<const double> xs, std::span<const double> ys,
                       size_t dims, LinearModel* out);

  /// \brief Mini-batch SGD fit; deterministic under `rng` (the epoch
  /// shuffles are the only draws).
  Status FitMiniBatchSgd(std::span<const double> xs,
                         std::span<const double> ys, size_t dims,
                         const SgdOptions& options, Rng* rng,
                         LinearModel* out);

 private:
  // Augmented-design scratch for the closed form: (dims+1)^2 normal matrix
  // plus right-hand side, and the SGD index permutation / gradient buffer.
  std::vector<double> normal_;    ///< (dims+1) x (dims+1), row-major
  std::vector<double> rhs_;       ///< dims+1
  std::vector<size_t> perm_;      ///< SGD epoch shuffle
  std::vector<double> gradient_;  ///< dims+1 accumulator
};

/// \brief A flat regression training set: n rows of `dims` features plus a
/// response, stored as parallel flat arrays.
struct RegressionData {
  std::string name = "regression";
  size_t dims = 0;
  std::vector<double> xs;  ///< size() * dims doubles, row-major
  std::vector<double> ys;  ///< size() doubles

  size_t size() const { return ys.size(); }
};

/// \brief Deterministic synthetic regression task: features uniform in
/// [-1, 1], response w . x + b + noise * N(0, 1) for a random true model
/// drawn from `seed` (written to `truth` when non-null).
RegressionData MakeSyntheticRegression(size_t n, size_t dims, double noise,
                                       uint64_t seed,
                                       LinearModel* truth = nullptr);

/// \brief The flip-and-shift regression-poisoning attack: appends
/// floor(eps * C) poison rows to the C clean rows of `data`. Each poison
/// row reuses a random clean feature row and flips its response across the
/// reference prediction, pushed `shift` beyond the original residual
/// magnitude: y' = yhat + sign * (|y - yhat| + shift), sign ~ Bernoulli(1/2).
/// Appending (rather than replacing) keeps the clean count intact, so the
/// true contamination eps sits exactly on iTrim's sweep grid. Returns the
/// number of rows appended (the poison rows are the tail of `data`).
size_t FlipShiftPoison(RegressionData* data, const LinearModel& reference,
                       double eps, double shift, Rng* rng);

/// \brief Trim defense knobs.
struct TrimOptions {
  double eps_hat = 0.0;  ///< assumed contamination, in [0, 1)
  double tol = 1e-4;     ///< early stop when mean |delta r^2| falls below
  int max_iters = 20;    ///< refit budget (1 = one-shot Trim)
};

/// \brief Trim defense outcome.
struct TrimResult {
  std::vector<size_t> kept;  ///< surviving row indices, ascending
  LinearModel model;         ///< final fit (on the kept subset)
  double full_mse = 0.0;     ///< mean squared residual over all rows
  double kept_mse = 0.0;     ///< mean squared residual over kept rows
  int iterations = 0;        ///< refit loop iterations actually run
};

/// \brief The iterative Trim defense: initial fit on a random subset of
/// n = floor(N / (1 + eps_hat)) rows, then repeatedly keep the n
/// lowest-squared-residual rows (ties by index) and refit until the mean
/// absolute change in per-row squared residuals falls below `tol` or
/// `max_iters` is exhausted. eps_hat = 0 is a pure no-op: every row is
/// kept and the refit loop never runs (the result carries the single
/// initial fit over all rows). `rng` is drawn only for the initial subset
/// sample — including the degenerate eps_hat = 0 sample of all N rows, so
/// the RNG stream shape does not depend on the contamination estimate.
Result<TrimResult> TrimDefense(const RegressionData& data,
                               const TrimOptions& options, Rng* rng);

/// \brief iTrim sweep knobs.
struct ITrimOptions {
  double eps_max = 0.24;   ///< top of the candidate grid
  double eps_step = 0.02;  ///< grid spacing
  /// Minimum consecutive kept-MSE drop ratio that counts as the knick;
  /// below it the sweep concludes the data is clean (eps_hat = 0).
  double knee_ratio = 2.0;
  double tol = 1e-4;  ///< forwarded to each Trim run
  int max_iters = 20;
};

/// \brief iTrim sweep outcome.
struct ITrimResult {
  double eps_hat = 0.0;          ///< estimated contamination (grid point)
  std::vector<double> grid;      ///< candidate eps values swept
  std::vector<double> kept_mse;  ///< kept-subset MSE per grid point
  TrimResult trim;               ///< the Trim run at eps_hat
};

/// \brief iTrim: runs TrimDefense at every grid eps, finds the knick (the
/// largest consecutive drop in kept-subset MSE, which lands at the first
/// grid point whose keep budget excludes all poison), and returns the Trim
/// result at the estimated contamination. When `metrics` is non-null the
/// estimate is published as the ml_eps_hat gauge (src/obs/); telemetry
/// only — the sweep itself is unaffected.
Result<ITrimResult> ITrimDefense(const RegressionData& data,
                                 const ITrimOptions& options, Rng* rng,
                                 obs::MetricSlot* metrics = nullptr);

}  // namespace itrim

#endif  // ITRIM_ML_LINREG_H_
