#include "ml/residual_score_model.h"

#include <algorithm>
#include <cmath>

#include "game/kernels.h"

namespace itrim {

const char* PoisonShapeName(PoisonShape shape) {
  return shape == PoisonShape::kLeverage ? "leverage" : "flip_shift";
}

ResidualScoreModel::ResidualScoreModel(const RegressionData* source,
                                       PoisonShape shape)
    : source_(source), shape_(shape) {}

Status ResidualScoreModel::BeginRun() {
  if (source_ == nullptr || source_->size() == 0) {
    return Status::FailedPrecondition("source regression data is empty");
  }
  if (source_->dims == 0) {
    return Status::FailedPrecondition("source regression data has no dims");
  }
  if (source_->xs.size() != source_->size() * source_->dims) {
    return Status::FailedPrecondition(
        "source regression data shape mismatch");
  }
  width_ = source_->dims + 1;
  retained_ = RegressionData{};
  retained_.name = source_->name + "/retained";
  retained_.dims = source_->dims;
  retained_is_poison_.clear();
  return Status::OK();
}

Status ResidualScoreModel::Bootstrap(size_t bootstrap_size, Rng* rng,
                                     PublicBoard* board) {
  const size_t n_source = source_->size();
  const size_t dims = source_->dims;

  // Interleave the source into [x..., y] blocks once: benign arrivals then
  // copy whole rows, and the residual kernel sweeps the block directly.
  flat_rows_.resize(n_source * width_);
  for (size_t i = 0; i < n_source; ++i) {
    double* row = flat_rows_.data() + i * width_;
    std::copy(source_->xs.data() + i * dims,
              source_->xs.data() + (i + 1) * dims, row);
    row[dims] = source_->ys[i];
  }

  // The clean calibration sample fixes the reference fit and seeds the
  // board with its residual magnitudes — the percentile coordinate of this
  // setting is a clean-residual quantile.
  fit_xs_.resize(bootstrap_size * dims);
  fit_ys_.resize(bootstrap_size);
  std::vector<double> sample_rows(bootstrap_size * width_);
  for (size_t i = 0; i < bootstrap_size; ++i) {
    const size_t idx = static_cast<size_t>(rng->UniformInt(n_source));
    const double* row = flat_rows_.data() + idx * width_;
    std::copy(row, row + dims, fit_xs_.data() + i * dims);
    fit_ys_[i] = row[dims];
    std::copy(row, row + width_, sample_rows.data() + i * width_);
  }
  ITRIM_RETURN_NOT_OK(
      regressor_.FitClosedForm(fit_xs_, fit_ys_, dims, &reference_));

  std::vector<double> sample_resid(bootstrap_size);
  kernels::AbsResidualsToModel(sample_rows.data(), bootstrap_size, width_,
                               reference_.weights.data(), reference_.bias,
                               sample_resid.data());
  for (double r : sample_resid) board->RecordOne(r);

  // Cache every source row's residual score (benign arrivals are source
  // rows sampled with replacement, so their scores become table lookups —
  // the doubles are the exact same kernel computation).
  source_scores_.resize(n_source);
  kernels::AbsResidualsToModel(flat_rows_.data(), n_source, width_,
                               reference_.weights.data(), reference_.bias,
                               source_scores_.data());

  // Highest-leverage source row (max feature distance to the mean, lowest
  // index on ties) for the leverage poison shape.
  std::vector<double> mean(dims, 0.0);
  for (size_t i = 0; i < n_source; ++i) {
    const double* x = source_->xs.data() + i * dims;
    for (size_t j = 0; j < dims; ++j) mean[j] += x[j];
  }
  for (double& m : mean) m /= static_cast<double>(n_source);
  leverage_row_ = 0;
  double best = -1.0;
  for (size_t i = 0; i < n_source; ++i) {
    const double dist = kernels::SquaredDistance(
        source_->xs.data() + i * dims, mean.data(), dims);
    if (dist > best) {
      best = dist;
      leverage_row_ = i;
    }
  }
  return Status::OK();
}

void ResidualScoreModel::BeginRound(size_t expected) {
  rows_used_ = 0;
  scores_.clear();
  is_poison_.clear();
  scores_.reserve(expected);
  is_poison_.reserve(expected);
}

std::span<double> ResidualScoreModel::NextRowSlot() {
  const size_t needed = (rows_used_ + 1) * width_;
  if (row_data_.size() < needed) row_data_.resize(needed);
  return std::span<double>(row_data_.data() + rows_used_++ * width_, width_);
}

void ResidualScoreModel::AppendBenignBatch(size_t count, Rng* rng) {
  index_scratch_.resize(count);
  rng->FillUniformInt(source_->size(), index_scratch_.data(), count);
  for (size_t i = 0; i < count; ++i) {
    const size_t idx = static_cast<size_t>(index_scratch_[i]);
    // Rows are always materialized: observations() must expose the round
    // for model-in-the-loop trim references regardless of retention.
    const double* row = flat_rows_.data() + idx * width_;
    std::span<double> slot = NextRowSlot();
    std::copy(row, row + width_, slot.begin());
    scores_.push_back(source_scores_[idx]);
    is_poison_.push_back(0);
  }
}

Status ResidualScoreModel::AppendBenignBatch(std::span<const double> obs) {
  if (width_ == 0) {
    return Status::FailedPrecondition("model is not bootstrapped");
  }
  if (obs.size() % width_ != 0) {
    return Status::InvalidArgument("obs span is not a whole number of rows");
  }
  const size_t n = obs.size() / width_;
  for (size_t i = 0; i < n; ++i) {
    std::span<double> slot = NextRowSlot();
    std::copy(obs.begin() + static_cast<ptrdiff_t>(i * width_),
              obs.begin() + static_cast<ptrdiff_t>((i + 1) * width_),
              slot.begin());
  }
  const size_t old = scores_.size();
  scores_.resize(old + n);
  ITRIM_RETURN_NOT_OK(
      ScoreInto(obs, std::span<double>(scores_).subspan(old)));
  is_poison_.insert(is_poison_.end(), n, 0);
  return Status::OK();
}

Status ResidualScoreModel::AppendPoison(double position, Rng* rng,
                                        const PublicBoard& board) {
  // Poison "at percentile a" carries the board's a-quantile residual
  // magnitude; positions above 1 extrapolate linearly beyond the largest
  // clean residual.
  double magnitude;
  if (position <= 1.0) {
    ITRIM_ASSIGN_OR_RETURN(magnitude, board.Quantile(position));
  } else {
    ITRIM_ASSIGN_OR_RETURN(magnitude, board.Quantile(1.0));
    magnitude *= position;
  }
  size_t idx;
  double sign;
  if (shape_ == PoisonShape::kFlipShift) {
    idx = static_cast<size_t>(rng->UniformInt(source_->size()));
    sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
  } else {
    idx = leverage_row_;
    sign = 1.0;
  }
  const size_t dims = width_ - 1;
  const double* x = flat_rows_.data() + idx * width_;
  std::span<double> slot = NextRowSlot();
  std::copy(x, x + dims, slot.begin());
  slot[dims] = reference_.Predict({x, dims}) + sign * magnitude;
  // Score through the scalar definition — bit-identical to the cached
  // batch scores by the LaneDot contract.
  scores_.push_back(ScoreObservation(slot));
  is_poison_.push_back(1);
  return Status::OK();
}

size_t ResidualScoreModel::ObsWidth() const {
  if (width_ > 0) return width_;
  return source_ != nullptr && source_->dims > 0 ? source_->dims + 1 : 0;
}

double ResidualScoreModel::ScoreObservation(
    std::span<const double> obs) const {
  const size_t dims = obs.size() - 1;
  const double prediction =
      kernels::LaneDot(reference_.weights.data(), obs.data(), dims) +
      reference_.bias;
  return std::fabs(obs[dims] - prediction);
}

Status ResidualScoreModel::ScoreInto(std::span<const double> obs,
                                     std::span<double> out) const {
  ITRIM_RETURN_NOT_OK(CheckScoreSpans(obs, out));
  kernels::AbsResidualsToModel(obs.data(), out.size(), ObsWidth(),
                               reference_.weights.data(), reference_.bias,
                               out.data());
  return Status::OK();
}

Status ResidualScoreModel::TrimAtReference(double percentile,
                                           const PublicBoard& board,
                                           TrimOutcome* out) {
  ITRIM_ASSIGN_OR_RETURN(double cutoff, board.Quantile(percentile));
  TrimAboveValueInto(scores_, cutoff, out);
  return Status::OK();
}

void ResidualScoreModel::Commit(std::span<const char> keep) {
  if (!retain_survivors_) return;
  const size_t dims = width_ - 1;
  for (size_t i = 0; i < rows_used_; ++i) {
    if (!keep[i]) continue;
    const double* row = row_data_.data() + i * width_;
    retained_.xs.insert(retained_.xs.end(), row, row + dims);
    retained_.ys.push_back(row[dims]);
    retained_is_poison_.push_back(is_poison_[i]);
  }
}

}  // namespace itrim
