#include "ml/linreg.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "game/kernels.h"
#include "obs/metrics.h"

namespace itrim {

namespace {

constexpr double kPivotEpsilon = 1e-12;

/// Mean squared residual of the model over all rows, written per-row into
/// `r2` (resized). Predictions go through LaneDot, so the residual stream
/// is bit-identical to the batched kernel path for the same model.
double SquaredResiduals(const RegressionData& data, const LinearModel& model,
                        std::vector<double>* r2) {
  const size_t n = data.size();
  r2->resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pred = kernels::LaneDot(model.weights.data(),
                                         data.xs.data() + i * data.dims,
                                         data.dims) +
                        model.bias;
    const double r = data.ys[i] - pred;
    (*r2)[i] = r * r;
    sum += r * r;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

/// Total order over squared residuals: NaN sorts last, ties break by index,
/// so the selected subset is independent of the sort algorithm.
void OrderByResidual(const std::vector<double>& r2,
                     std::vector<size_t>* order) {
  order->resize(r2.size());
  for (size_t i = 0; i < order->size(); ++i) (*order)[i] = i;
  const double inf = std::numeric_limits<double>::infinity();
  std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
    const double ka = std::isnan(r2[a]) ? inf : r2[a];
    const double kb = std::isnan(r2[b]) ? inf : r2[b];
    if (ka != kb) return ka < kb;
    return a < b;
  });
}

/// Copies the rows named by `indices` into flat fit buffers.
void GatherRows(const RegressionData& data, const std::vector<size_t>& indices,
                std::vector<double>* xs, std::vector<double>* ys) {
  xs->resize(indices.size() * data.dims);
  ys->resize(indices.size());
  for (size_t k = 0; k < indices.size(); ++k) {
    const double* row = data.xs.data() + indices[k] * data.dims;
    std::copy(row, row + data.dims, xs->data() + k * data.dims);
    (*ys)[k] = data.ys[indices[k]];
  }
}

Status CheckRegressionData(const RegressionData& data) {
  if (data.dims == 0) {
    return Status::InvalidArgument("regression data needs dims >= 1");
  }
  if (data.xs.size() != data.ys.size() * data.dims) {
    return Status::InvalidArgument(
        "regression data shape mismatch: xs must hold size() * dims doubles");
  }
  if (data.size() == 0) {
    return Status::InvalidArgument("regression data is empty");
  }
  return Status::OK();
}

}  // namespace

double LinearModel::Predict(std::span<const double> x) const {
  return kernels::LaneDot(weights.data(), x.data(), weights.size()) + bias;
}

Status LinearRegressor::FitClosedForm(std::span<const double> xs,
                                      std::span<const double> ys, size_t dims,
                                      LinearModel* out) {
  if (dims == 0) return Status::InvalidArgument("FitClosedForm: dims == 0");
  const size_t n = ys.size();
  if (n == 0) return Status::InvalidArgument("FitClosedForm: no rows");
  if (xs.size() != n * dims) {
    return Status::InvalidArgument(
        "FitClosedForm: xs must hold ys.size() * dims doubles");
  }

  // Normal equations over the augmented design [x, 1]: one sequential
  // accumulation pass (no kernels, no reassociation — the fit is the same
  // bits on every thread count and kernel variant).
  const size_t aug = dims + 1;
  normal_.assign(aug * aug, 0.0);
  rhs_.assign(aug, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* x = xs.data() + r * dims;
    for (size_t i = 0; i < aug; ++i) {
      const double xi = i < dims ? x[i] : 1.0;
      for (size_t j = i; j < aug; ++j) {
        const double xj = j < dims ? x[j] : 1.0;
        normal_[i * aug + j] += xi * xj;
      }
      rhs_[i] += xi * ys[r];
    }
  }
  // Mirror the upper triangle (the accumulation filled i <= j).
  for (size_t i = 0; i < aug; ++i) {
    for (size_t j = 0; j < i; ++j) normal_[i * aug + j] = normal_[j * aug + i];
  }

  // Gaussian elimination with partial pivoting, sequential and in place.
  for (size_t col = 0; col < aug; ++col) {
    size_t pivot = col;
    double best = std::fabs(normal_[col * aug + col]);
    for (size_t row = col + 1; row < aug; ++row) {
      const double mag = std::fabs(normal_[row * aug + col]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (!(best > kPivotEpsilon)) {
      return Status::FailedPrecondition(
          "FitClosedForm: singular normal equations (need more than dims "
          "independent rows)");
    }
    if (pivot != col) {
      for (size_t j = 0; j < aug; ++j) {
        std::swap(normal_[col * aug + j], normal_[pivot * aug + j]);
      }
      std::swap(rhs_[col], rhs_[pivot]);
    }
    const double inv = 1.0 / normal_[col * aug + col];
    for (size_t row = col + 1; row < aug; ++row) {
      const double factor = normal_[row * aug + col] * inv;
      if (factor == 0.0) continue;
      for (size_t j = col; j < aug; ++j) {
        normal_[row * aug + j] -= factor * normal_[col * aug + j];
      }
      rhs_[row] -= factor * rhs_[col];
    }
  }
  out->weights.resize(dims);
  double* solution = rhs_.data();
  for (size_t col = aug; col-- > 0;) {
    double acc = solution[col];
    for (size_t j = col + 1; j < aug; ++j) {
      acc -= normal_[col * aug + j] * solution[j];
    }
    solution[col] = acc / normal_[col * aug + col];
  }
  std::copy(solution, solution + dims, out->weights.begin());
  out->bias = solution[dims];
  return Status::OK();
}

Status LinearRegressor::FitMiniBatchSgd(std::span<const double> xs,
                                        std::span<const double> ys,
                                        size_t dims, const SgdOptions& options,
                                        Rng* rng, LinearModel* out) {
  if (dims == 0) return Status::InvalidArgument("FitMiniBatchSgd: dims == 0");
  const size_t n = ys.size();
  if (n == 0) return Status::InvalidArgument("FitMiniBatchSgd: no rows");
  if (xs.size() != n * dims) {
    return Status::InvalidArgument(
        "FitMiniBatchSgd: xs must hold ys.size() * dims doubles");
  }
  if (rng == nullptr) return Status::InvalidArgument("FitMiniBatchSgd: rng");
  if (options.epochs < 0 || options.batch_size == 0 ||
      !(options.learning_rate > 0.0) || options.l2 < 0.0) {
    return Status::InvalidArgument("FitMiniBatchSgd: bad options");
  }

  out->weights.assign(dims, 0.0);
  out->bias = 0.0;
  perm_.resize(n);
  for (size_t i = 0; i < n; ++i) perm_[i] = i;
  gradient_.resize(dims + 1);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng->Shuffle(&perm_);
    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t count = std::min(options.batch_size, n - start);
      std::fill(gradient_.begin(), gradient_.end(), 0.0);
      for (size_t k = 0; k < count; ++k) {
        const double* x = xs.data() + perm_[start + k] * dims;
        const double err =
            kernels::LaneDot(out->weights.data(), x, dims) + out->bias -
            ys[perm_[start + k]];
        for (size_t j = 0; j < dims; ++j) gradient_[j] += err * x[j];
        gradient_[dims] += err;
      }
      const double scale = options.learning_rate / static_cast<double>(count);
      for (size_t j = 0; j < dims; ++j) {
        out->weights[j] -=
            scale * gradient_[j] +
            options.learning_rate * options.l2 * out->weights[j];
      }
      out->bias -= scale * gradient_[dims];
    }
  }
  return Status::OK();
}

RegressionData MakeSyntheticRegression(size_t n, size_t dims, double noise,
                                       uint64_t seed, LinearModel* truth) {
  Rng rng(seed);
  LinearModel model;
  model.weights.resize(dims);
  for (size_t j = 0; j < dims; ++j) model.weights[j] = rng.Uniform(-2.0, 2.0);
  model.bias = rng.Uniform(-1.0, 1.0);

  RegressionData data;
  data.name = "synthetic";
  data.dims = dims;
  data.xs.resize(n * dims);
  data.ys.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double* row = data.xs.data() + i * dims;
    for (size_t j = 0; j < dims; ++j) row[j] = rng.Uniform(-1.0, 1.0);
    double y = model.Predict({row, dims});
    if (noise > 0.0) y += noise * rng.Normal();
    data.ys[i] = y;
  }
  if (truth != nullptr) *truth = std::move(model);
  return data;
}

size_t FlipShiftPoison(RegressionData* data, const LinearModel& reference,
                       double eps, double shift, Rng* rng) {
  const size_t clean = data->size();
  if (clean == 0 || !(eps > 0.0)) return 0;
  const size_t poison =
      static_cast<size_t>(std::floor(eps * static_cast<double>(clean)));
  const size_t dims = data->dims;
  data->xs.reserve((clean + poison) * dims);
  data->ys.reserve(clean + poison);
  for (size_t p = 0; p < poison; ++p) {
    const size_t idx = static_cast<size_t>(rng->UniformInt(clean));
    const double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
    const double* row = data->xs.data() + idx * dims;
    const double yhat = reference.Predict({row, dims});
    const double resid = std::fabs(data->ys[idx] - yhat);
    // Append the copy only after reading through `row` (the reserve above
    // guarantees no reallocation, but keep the ordering defensive anyway).
    const double poisoned_y = yhat + sign * (resid + shift);
    data->xs.insert(data->xs.end(), row, row + dims);
    data->ys.push_back(poisoned_y);
  }
  return poison;
}

Result<TrimResult> TrimDefense(const RegressionData& data,
                               const TrimOptions& options, Rng* rng) {
  ITRIM_RETURN_NOT_OK(CheckRegressionData(data));
  if (!(options.eps_hat >= 0.0) || options.eps_hat >= 1.0) {
    return Status::InvalidArgument("TrimDefense: eps_hat must be in [0, 1)");
  }
  if (!(options.tol >= 0.0)) {
    return Status::InvalidArgument("TrimDefense: tol must be >= 0");
  }
  if (options.max_iters < 1) {
    return Status::InvalidArgument("TrimDefense: max_iters must be >= 1");
  }
  if (rng == nullptr) return Status::InvalidArgument("TrimDefense: rng");

  const size_t n = data.size();
  const size_t keep_n = static_cast<size_t>(
      std::floor(static_cast<double>(n) / (1.0 + options.eps_hat)));
  if (keep_n == 0) {
    return Status::InvalidArgument("TrimDefense: keep budget is zero");
  }

  TrimResult result;
  LinearRegressor regressor;
  std::vector<double> fit_xs;
  std::vector<double> fit_ys;
  std::vector<double> r2;

  // Initial fit on a random keep_n-subset (the eps_hat = 0 case samples a
  // permutation of everything — drawn anyway so the RNG stream shape does
  // not depend on the contamination estimate).
  result.kept = rng->SampleWithoutReplacement(n, keep_n);
  std::sort(result.kept.begin(), result.kept.end());
  GatherRows(data, result.kept, &fit_xs, &fit_ys);
  ITRIM_RETURN_NOT_OK(
      regressor.FitClosedForm(fit_xs, fit_ys, data.dims, &result.model));
  result.full_mse = SquaredResiduals(data, result.model, &r2);

  if (options.eps_hat == 0.0) {
    // Pure no-op: every row survives, no refit loop (keep_n == n).
    result.kept_mse = result.full_mse;
    result.iterations = 0;
    return result;
  }

  std::vector<size_t> order;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    OrderByResidual(r2, &order);
    result.kept.assign(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(keep_n));
    std::sort(result.kept.begin(), result.kept.end());
    GatherRows(data, result.kept, &fit_xs, &fit_ys);
    ITRIM_RETURN_NOT_OK(
        regressor.FitClosedForm(fit_xs, fit_ys, data.dims, &result.model));

    std::vector<double> new_r2;
    const double new_full = SquaredResiduals(data, result.model, &new_r2);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::fabs(r2[i] - new_r2[i]);
    delta /= static_cast<double>(n);
    r2 = std::move(new_r2);
    result.full_mse = new_full;
    result.iterations = iter + 1;
    if (delta < options.tol) break;
  }

  double kept_sum = 0.0;
  for (size_t idx : result.kept) kept_sum += r2[idx];
  result.kept_mse = kept_sum / static_cast<double>(result.kept.size());
  return result;
}

Result<ITrimResult> ITrimDefense(const RegressionData& data,
                                 const ITrimOptions& options, Rng* rng,
                                 obs::MetricSlot* metrics) {
  ITRIM_RETURN_NOT_OK(CheckRegressionData(data));
  if (!(options.eps_step > 0.0) || !(options.eps_max >= options.eps_step) ||
      options.eps_max >= 1.0) {
    return Status::InvalidArgument(
        "ITrimDefense: need 0 < eps_step <= eps_max < 1");
  }
  if (!(options.knee_ratio >= 1.0)) {
    return Status::InvalidArgument("ITrimDefense: knee_ratio must be >= 1");
  }

  ITrimResult result;
  const int steps =
      static_cast<int>(std::floor(options.eps_max / options.eps_step + 1e-9));
  std::vector<TrimResult> runs;
  runs.reserve(static_cast<size_t>(steps) + 1);
  for (int i = 0; i <= steps; ++i) {
    const double eps = static_cast<double>(i) * options.eps_step;
    TrimOptions trim_options;
    trim_options.eps_hat = eps;
    trim_options.tol = options.tol;
    trim_options.max_iters = options.max_iters;
    ITRIM_ASSIGN_OR_RETURN(TrimResult run,
                           TrimDefense(data, trim_options, rng));
    result.grid.push_back(eps);
    result.kept_mse.push_back(run.kept_mse);
    runs.push_back(std::move(run));
  }

  // The knick: the largest consecutive kept-MSE drop. Below the true
  // contamination the keep budget must include poison rows (pigeonhole), so
  // kept MSE sits at poison scale; at the first grid point whose budget
  // fits inside the clean subset it falls to noise scale.
  const double inf = std::numeric_limits<double>::infinity();
  double best_ratio = 0.0;
  size_t best_index = 0;
  for (size_t i = 1; i < result.kept_mse.size(); ++i) {
    const double prev = result.kept_mse[i - 1];
    const double cur = result.kept_mse[i];
    const double ratio = cur > 0.0 ? prev / cur : (prev > 0.0 ? inf : 1.0);
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_index = i;
    }
  }
  if (best_ratio < options.knee_ratio) best_index = 0;  // no knick: clean
  result.eps_hat = result.grid[best_index];
  result.trim = std::move(runs[best_index]);
  if (metrics != nullptr) {
    metrics->Set(obs::Gauge::kMlEpsHat, result.eps_hat);
  }
  return result;
}

}  // namespace itrim
