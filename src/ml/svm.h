// Multi-class linear SVM (one-vs-rest, dual coordinate descent).
//
// Substrate for the Fig 6a / Fig 7 experiments. The binary subproblem is the
// L2-regularized L1-loss SVM dual solved by coordinate descent (Hsieh et al.
// 2008, the LIBLINEAR algorithm); the bias is absorbed as an augmented
// constant feature.
#ifndef ITRIM_ML_SVM_H_
#define ITRIM_ML_SVM_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace itrim {

/// \brief Linear SVM training configuration.
struct SvmConfig {
  double c = 1.0;          ///< soft-margin penalty
  int max_epochs = 200;    ///< dual coordinate-descent sweeps
  double tolerance = 1e-4;  ///< stop when max projected-gradient violation
  uint64_t seed = 7;       ///< permutation seed
};

/// \brief Trained one-vs-rest linear classifier.
class LinearSvm {
 public:
  /// Creates an empty (untrained) model; populate it via Train().
  LinearSvm() = default;

  /// \brief Trains on a labeled dataset with labels in [0, classes).
  static Result<LinearSvm> Train(const Dataset& data, const SvmConfig& config);

  /// \brief Predicted class of one row (argmax decision value).
  int Predict(const std::vector<double>& row) const;

  /// \brief Decision value of class `c` on `row`.
  double DecisionValue(size_t c, const std::vector<double>& row) const;

  /// \brief Accuracy over a labeled dataset.
  double Evaluate(const Dataset& data) const;

  /// \brief Number of classes.
  size_t classes() const { return weights_.size(); }
  /// \brief Feature dimensionality (without the bias term).
  size_t dims() const {
    return weights_.empty() ? 0 : weights_[0].size() - 1;
  }

 private:
  // One weight vector per class; the last component is the bias.
  std::vector<std::vector<double>> weights_;
};

}  // namespace itrim

#endif  // ITRIM_ML_SVM_H_
