// k-means clustering (Lloyd's algorithm with k-means++ seeding).
//
// Substrate for the Fig 4/5 experiments: clustering quality of the retained
// (sanitized) data is compared across defense schemes via SSE and centroid
// distance to the ground-truth clustering.
#ifndef ITRIM_ML_KMEANS_H_
#define ITRIM_ML_KMEANS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace itrim {

/// \brief k-means configuration.
struct KMeansConfig {
  size_t k = 2;
  int max_iterations = 100;
  double tolerance = 1e-6;  ///< stop when centroid movement^2 falls below
  uint64_t seed = 1;
  int restarts = 1;  ///< keep the best of this many seeded runs
};

/// \brief Clustering result.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<size_t> assignment;  ///< per input row
  double sse = 0.0;                ///< sum of squared distances to centroids
  int iterations = 0;
  bool converged = false;
};

/// \brief Runs k-means on row-major `points`.
///
/// Returns an error when points is empty, k == 0, or k > |points|.
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            const KMeansConfig& config);

/// \brief Index of the nearest centroid to `point`.
size_t NearestCentroid(const std::vector<double>& point,
                       const std::vector<std::vector<double>>& centroids);

/// \brief SSE of `points` against a fixed set of centroids (each point
/// scored against its nearest centroid). Used to evaluate a learned model
/// on a held-out evaluation set.
double EvaluateSse(const std::vector<std::vector<double>>& points,
                   const std::vector<std::vector<double>>& centroids);

}  // namespace itrim

#endif  // ITRIM_ML_KMEANS_H_
