#include "stats/quantile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace itrim {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  q = Clamp(q, 0.0, 1.0);
  const size_t n = sorted.size();
  if (n == 1) return sorted[0];
  // MATLAB prctile: breakpoints at (i - 0.5) / n for i = 1..n, clamped ends.
  double pos = q * static_cast<double>(n) - 0.5;
  if (pos <= 0.0) return sorted.front();
  if (pos >= static_cast<double>(n - 1)) return sorted.back();
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  return Lerp(sorted[lo], sorted[lo + 1], frac);
}

double Quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

std::vector<double> Quantiles(std::vector<double> values,
                              const std::vector<double>& qs) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(QuantileSorted(values, q));
  return out;
}

double EmpiricalCdf(const std::vector<double>& values, double x) {
  if (values.empty()) return 0.0;
  size_t count = 0;
  for (double v : values) {
    if (v <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double PercentileRankSorted(const std::vector<double>& sorted, double x) {
  if (sorted.empty()) return 0.0;
  auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

P2Quantile::P2Quantile(double q) : q_(Clamp(q, 1e-6, 1.0 - 1e-6)) {
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Add(double x) {
  ++count_;
  if (count_ <= 5) {
    initial_.push_back(x);
    if (count_ == 5) {
      std::sort(initial_.begin(), initial_.end());
      for (int i = 0; i < 5; ++i) heights_[i] = initial_[i];
      desired_[0] = 1;
      desired_[1] = 1 + 2 * q_;
      desired_[2] = 1 + 4 * q_;
      desired_[3] = 3 + 2 * q_;
      desired_[4] = 5;
    }
    return;
  }

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    for (int i = 1; i < 5; ++i) {
      if (x < heights_[i]) {
        k = i - 1;
        break;
      }
    }
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  AdjustMarkers();
}

void P2Quantile::AdjustMarkers() {
  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    bool up = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    bool down = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (up || down) {
      double step = up ? 1.0 : -1.0;
      double candidate = Parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, step);
      }
      positions_[i] += step;
    }
  }
}

double P2Quantile::Parabolic(int i, double d) const {
  double np1 = positions_[i + 1], nm1 = positions_[i - 1], n = positions_[i];
  return heights_[i] +
         d / (np1 - nm1) *
             ((n - nm1 + d) * (heights_[i + 1] - heights_[i]) / (np1 - n) +
              (np1 - n - d) * (heights_[i] - heights_[i - 1]) / (n - nm1));
}

double P2Quantile::Linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::vector<double> v(initial_);
    std::sort(v.begin(), v.end());
    return QuantileSorted(v, q_);
  }
  return heights_[2];
}

}  // namespace itrim
