#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace itrim {

void RunningStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace itrim
