#include "stats/histogram.h"

#include <algorithm>
#include <cassert>

namespace itrim {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  assert(bins >= 1);
  assert(lo < hi);
}

size_t Histogram::BinOf(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  size_t idx = static_cast<size_t>((x - lo_) / width_);
  return std::min(idx, counts_.size() - 1);
}

void Histogram::Add(double x) { AddWeighted(x, 1.0); }

void Histogram::AddWeighted(double x, double weight) {
  counts_[BinOf(x)] += weight;
  total_ += weight;
}

double Histogram::BinCenter(size_t i) const {
  assert(i < counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::vector<double> Histogram::Frequencies() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  total_ = 0.0;
}

}  // namespace itrim
