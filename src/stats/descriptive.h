// Streaming descriptive statistics (Welford) and summary helpers.
#ifndef ITRIM_STATS_DESCRIPTIVE_H_
#define ITRIM_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace itrim {

/// \brief One-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// \brief Absorbs one observation.
  void Add(double x);

  /// \brief Absorbs every element of `xs`.
  void AddAll(const std::vector<double>& xs);

  /// \brief Merges another accumulator (parallel reduction).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  /// \brief Mean; 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// \brief Population variance; 0 for fewer than 2 samples.
  double variance() const;
  /// \brief Sample (n-1) variance; 0 for fewer than 2 samples.
  double sample_variance() const;
  /// \brief Population standard deviation.
  double stddev() const;
  /// \brief Minimum observed; +inf when empty.
  double min() const { return min_; }
  /// \brief Maximum observed; -inf when empty.
  double max() const { return max_; }
  /// \brief Sum of observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace itrim

#endif  // ITRIM_STATS_DESCRIPTIVE_H_
