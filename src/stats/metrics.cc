#include "stats/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace itrim {

double SumSquaredError(const std::vector<double>& observed,
                       const std::vector<double>& predicted) {
  assert(observed.size() == predicted.size());
  double acc = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    double d = observed[i] - predicted[i];
    acc += d * d;
  }
  return acc;
}

double ClusteringSse(const std::vector<std::vector<double>>& points,
                     const std::vector<std::vector<double>>& centroids,
                     const std::vector<size_t>& assignment) {
  assert(points.size() == assignment.size());
  double acc = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    assert(assignment[i] < centroids.size());
    acc += SquaredDistance(points[i], centroids[assignment[i]]);
  }
  return acc;
}

double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  return SumSquaredError(a, b) / static_cast<double>(a.size());
}

double CentroidSetDistance(const std::vector<std::vector<double>>& a,
                           const std::vector<std::vector<double>>& b) {
  // Greedy minimal matching: repeatedly match the globally closest pair.
  // Exact Hungarian assignment is overkill for the k <= 26 clusters used in
  // the evaluation; greedy matching is within a constant of optimal here and
  // is what matters for comparing schemes on the same data.
  std::vector<size_t> ai(a.size()), bi(b.size());
  for (size_t i = 0; i < a.size(); ++i) ai[i] = i;
  for (size_t i = 0; i < b.size(); ++i) bi[i] = i;
  double total = 0.0;
  while (!ai.empty() && !bi.empty()) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_a = 0, best_b = 0;
    for (size_t x = 0; x < ai.size(); ++x) {
      for (size_t y = 0; y < bi.size(); ++y) {
        double d = SquaredDistance(a[ai[x]], b[bi[y]]);
        if (d < best) {
          best = d;
          best_a = x;
          best_b = y;
        }
      }
    }
    total += std::sqrt(best);
    ai.erase(ai.begin() + static_cast<long>(best_a));
    bi.erase(bi.begin() + static_cast<long>(best_b));
  }
  return total;
}

ConfusionMatrix::ConfusionMatrix(size_t classes)
    : classes_(classes), cells_(classes * classes, 0) {
  assert(classes >= 1);
}

void ConfusionMatrix::Add(size_t actual, size_t predicted) {
  assert(actual < classes_ && predicted < classes_);
  ++cells_[actual * classes_ + predicted];
  ++total_;
}

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  assert(other.classes_ == classes_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

size_t ConfusionMatrix::Count(size_t actual, size_t predicted) const {
  assert(actual < classes_ && predicted < classes_);
  return cells_[actual * classes_ + predicted];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t diag = 0;
  for (size_t c = 0; c < classes_; ++c) diag += Count(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::Ppv(size_t c) const {
  size_t col = 0;
  for (size_t r = 0; r < classes_; ++r) col += Count(r, c);
  if (col == 0) return 0.0;
  return static_cast<double>(Count(c, c)) / static_cast<double>(col);
}

double ConfusionMatrix::Fdr(size_t c) const {
  size_t col = 0;
  for (size_t r = 0; r < classes_; ++r) col += Count(r, c);
  if (col == 0) return 0.0;
  return 1.0 - Ppv(c);
}

double ConfusionMatrix::Recall(size_t c) const {
  size_t row = 0;
  for (size_t p = 0; p < classes_; ++p) row += Count(c, p);
  if (row == 0) return 0.0;
  return static_cast<double>(Count(c, c)) / static_cast<double>(row);
}

double ConfusionMatrix::MacroPpv() const {
  double acc = 0.0;
  size_t used = 0;
  for (size_t c = 0; c < classes_; ++c) {
    size_t col = 0;
    for (size_t r = 0; r < classes_; ++r) col += Count(r, c);
    if (col > 0) {
      acc += Ppv(c);
      ++used;
    }
  }
  return used == 0 ? 0.0 : acc / static_cast<double>(used);
}

}  // namespace itrim
