// Evaluation metrics used throughout the paper's experiments:
// SSE and centroid distance for k-means (Fig 4/5), accuracy and the
// PPV/FDR confusion matrix for SVM (Fig 6a/7), MSE for LDP mean estimation
// (Fig 9).
#ifndef ITRIM_STATS_METRICS_H_
#define ITRIM_STATS_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief Sum of squared errors between observations and predictions:
/// SSE = sum_i (y_i - yhat_i)^2.
double SumSquaredError(const std::vector<double>& observed,
                       const std::vector<double>& predicted);

/// \brief SSE of a clustering: sum over points of squared distance to the
/// assigned centroid.
double ClusteringSse(const std::vector<std::vector<double>>& points,
                     const std::vector<std::vector<double>>& centroids,
                     const std::vector<size_t>& assignment);

/// \brief Mean squared error between two equal-length vectors.
double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b);

/// \brief Total Euclidean distance between two centroid sets under the
/// minimal greedy matching (handles centroid permutation between runs).
double CentroidSetDistance(const std::vector<std::vector<double>>& a,
                           const std::vector<std::vector<double>>& b);

/// \brief Row-normalized confusion matrix and derived statistics.
class ConfusionMatrix {
 public:
  /// Creates a `classes` x `classes` zero matrix.
  explicit ConfusionMatrix(size_t classes);

  /// \brief Records one (actual, predicted) pair.
  void Add(size_t actual, size_t predicted);

  /// \brief Adds every cell of `other` (same class count) into this matrix.
  /// Counts are integers, so merging per-repetition matrices in any order
  /// equals one serially filled matrix.
  void Merge(const ConfusionMatrix& other);

  /// \brief Raw count in cell (actual, predicted).
  size_t Count(size_t actual, size_t predicted) const;

  /// \brief Overall accuracy: trace / total. Returns 0 when empty.
  double Accuracy() const;

  /// \brief Positive predictive value of class `c`
  /// (diagonal / column sum; 0 when the class was never predicted).
  double Ppv(size_t c) const;

  /// \brief False discovery rate of class `c` (1 - PPV; 0 when unused).
  double Fdr(size_t c) const;

  /// \brief Recall of class `c` (diagonal / row sum).
  double Recall(size_t c) const;

  /// \brief Macro-averaged PPV over classes that were predicted at least once.
  double MacroPpv() const;

  /// \brief Number of classes.
  size_t classes() const { return classes_; }

  /// \brief Total observations recorded.
  size_t total() const { return total_; }

 private:
  size_t classes_;
  size_t total_ = 0;
  std::vector<size_t> cells_;  // row-major [actual][predicted]
};

}  // namespace itrim

#endif  // ITRIM_STATS_METRICS_H_
