// Equi-width histograms over a bounded numeric domain.
//
// Used by the LDP stack (frequency recovery, EMF attack-mass estimation) and
// by quality-evaluation observables in the game core.
#ifndef ITRIM_STATS_HISTOGRAM_H_
#define ITRIM_STATS_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief Fixed-domain equi-width histogram with out-of-range clamping.
class Histogram {
 public:
  /// Creates `bins` equal-width bins covering [lo, hi). Requires bins >= 1
  /// and lo < hi.
  Histogram(double lo, double hi, size_t bins);

  /// \brief Adds one observation (clamped into the domain).
  void Add(double x);

  /// \brief Adds a weighted observation.
  void AddWeighted(double x, double weight);

  /// \brief Bin index for value `x` (clamped).
  size_t BinOf(double x) const;

  /// \brief Center value of bin `i`.
  double BinCenter(size_t i) const;

  /// \brief Raw (weighted) count of bin `i`.
  double Count(size_t i) const { return counts_[i]; }

  /// \brief Total weight added.
  double total() const { return total_; }

  /// \brief Number of bins.
  size_t bins() const { return counts_.size(); }

  /// \brief Domain bounds.
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// \brief Normalized bin frequencies (sum to 1; all-zero when empty).
  std::vector<double> Frequencies() const;

  /// \brief Resets all counts.
  void Clear();

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace itrim

#endif  // ITRIM_STATS_HISTOGRAM_H_
