// Exact quantile/percentile computation with linear interpolation.
//
// Percentile semantics follow MATLAB's `prctile` (the paper's toolchain):
// for a sorted sample x_1..x_n the q-quantile interpolates between the points
// (i - 0.5)/n, so percentile positions map stably onto data values. All
// injection and trimming positions in the paper are expressed as data
// percentiles (Section VI-A), which makes this module the numeric foundation
// of the whole defense.
#ifndef ITRIM_STATS_QUANTILE_H_
#define ITRIM_STATS_QUANTILE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief q-quantile (q in [0,1]) of `sorted` (ascending), MATLAB prctile
/// interpolation. Requires a non-empty, sorted input.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// \brief q-quantile of an unsorted sample (copies + sorts internally).
double Quantile(std::vector<double> values, double q);

/// \brief Multiple quantiles of one sample with a single sort.
std::vector<double> Quantiles(std::vector<double> values,
                              const std::vector<double>& qs);

/// \brief Fraction of `values` that are <= x (empirical CDF).
double EmpiricalCdf(const std::vector<double>& values, double x);

/// \brief Rank of `x` within `sorted` as a percentile in [0,1].
double PercentileRankSorted(const std::vector<double>& sorted, double x);

/// \brief Streaming quantile estimator (P-squared algorithm, Jain & Chlamtac
/// 1985): estimates one fixed quantile with O(1) memory.
///
/// Used on the public board so the collector's reference quantiles can be
/// maintained over an unbounded stream without retaining all observations.
class P2Quantile {
 public:
  /// Creates an estimator for quantile `q` in (0, 1).
  explicit P2Quantile(double q);

  /// \brief Absorbs one observation.
  void Add(double x);

  /// \brief Current estimate; exact until 5 samples are seen.
  /// Returns 0 when empty.
  double Estimate() const;

  /// \brief Number of samples absorbed.
  size_t count() const { return count_; }

 private:
  void AdjustMarkers();
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  size_t count_ = 0;
  // Marker heights, positions, and desired positions (P² state).
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {1, 1, 1, 1, 1};
  double increments_[5] = {0, 0, 0, 0, 0};
  std::vector<double> initial_;
};

}  // namespace itrim

#endif  // ITRIM_STATS_QUANTILE_H_
