// One tenant of a SessionFleet: a declarative spec and its materialized
// per-tenant game objects.
//
// The fleet serves many concurrent trimming games, and tenants are
// deliberately heterogeneous — a production collector fields scalar
// streams, d-dimensional ML feeds and LDP report channels side by side,
// each defended by its own strategy pair (the scenario space of randomized
// prediction games: a *population* of strategy mixes, not one matchup).
// TenantSpec is the declarative description (data setting, scheme, game
// shape); MaterializeTenant turns it into owned strategy/model/session
// objects so tenants can be stepped independently on any thread.
#ifndef ITRIM_FLEET_TENANT_H_
#define ITRIM_FLEET_TENANT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "exp/schemes.h"
#include "exp/score_model_factory.h"
#include "game/reference_policy.h"
#include "game/score_model.h"
#include "game/session.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"

namespace itrim {

/// \brief Data setting a tenant's session runs in — the fleet speaks the
/// library-wide ModelKind vocabulary (exp/score_model_factory.h).
using TenantModelKind = ModelKind;

/// \brief Display name of a model kind
/// ("scalar", "distance", "ldp", "residual").
std::string TenantModelKindName(TenantModelKind kind);

/// \brief Which trim reference the tenant's session plays against.
enum class TenantReferenceKind {
  kPercentile = 0,  ///< board-quantile cutoff (the classical protocol)
  /// Model-in-the-loop: cutoff from residuals against a model refit on the
  /// round's survivor candidates (requires TenantModelKind::kResidual).
  kFittedModel,
};

/// \brief Declarative description of one fleet tenant.
///
/// Data sources are borrowed and must outlive the fleet; they are shared
/// read-only across tenants (the LDP mechanism is const and thread-safe,
/// the attack is not promised to be — give each LDP tenant its own attack
/// instance when stepping in parallel). The per-tenant `game` seed is
/// overwritten with a derived stream when the owning fleet's
/// `derive_tenant_seeds` is set (the default), so tenants never share RNG
/// streams by accident.
struct TenantSpec {
  std::string name;  ///< optional label surfaced in summaries/errors
  TenantModelKind model = TenantModelKind::kScalar;
  SchemeId scheme = SchemeId::kElastic05;
  SchemeOptions scheme_options;
  GameConfig game;
  /// When true, the tenant's score model accumulates the sanitized
  /// survivors of every round (the batch-game behavior, reachable through
  /// SessionFleet::tenant(i).model). Fleets default it OFF: the fleet
  /// product is the per-round aggregates, and an ever-growing survivor
  /// store per tenant is an unbounded memory cost times thousands of
  /// tenants — and the one per-round heap allocation left in a
  /// steady-state Step(). Round records and aggregates are bit-identical
  /// either way.
  bool retain_survivors = false;

  // Data sources, required per model kind:
  const std::vector<double>* scalar_pool = nullptr;   ///< kScalar
  const Dataset* dataset = nullptr;                   ///< kDistance
  const std::vector<double>* ldp_population = nullptr;  ///< kLdp
  const LdpMechanism* ldp_mechanism = nullptr;          ///< kLdp
  LdpAttack* ldp_attack = nullptr;                      ///< kLdp
  const RegressionData* regression = nullptr;           ///< kResidual
  PoisonShape regression_poison = PoisonShape::kFlipShift;  ///< kResidual

  /// Trim reference the session plays against; kFittedModel requires the
  /// kResidual model kind (the only setting exposing observations).
  TenantReferenceKind reference = TenantReferenceKind::kPercentile;
  FittedModelReference::Options fitted_reference;  ///< kFittedModel only

  /// \brief Assembles the factory inputs this spec describes.
  ScoreModelInputs ModelInputs() const;

  /// \brief Checks the game config, the model kind's data sources and the
  /// reference policy options.
  Status Validate() const;
};

/// \brief Compact parked state of a hibernated tenant: the session
/// checkpoint (board values + round records + RNG) plus the one summary
/// field the checkpoint cannot reconstruct without the live collector.
/// Everything else — strategies, score-model geometry and pools, the
/// board's order-statistic index — is rebuilt on rehydration.
struct TenantHibernation {
  SessionCheckpoint checkpoint;
  int termination_round = 0;
};

/// \brief A materialized tenant: owned strategies, score model and session.
///
/// Movable, not copyable. The session borrows the other members, which are
/// heap-owned, so moving a Tenant keeps every borrowed pointer valid.
///
/// A tenant is either *resident* (session/model/strategies live,
/// `hibernated` null) or *hibernated* (live objects released, state parked
/// in `hibernated`); HibernateTenant/RehydrateTenant flip between the two.
struct Tenant {
  TenantSpec spec;             ///< the spec this tenant was built from
  GameConfig config;           ///< effective config (derived seed applied)
  SchemeInstance scheme;       ///< owned collector/adversary/quality
  std::unique_ptr<ScoreModel> model;
  /// Owned trim reference; null for kPercentile tenants (the session falls
  /// back to the shared stateless default).
  std::unique_ptr<ReferencePolicy> reference;
  std::unique_ptr<TrimmingSession> session;
  std::unique_ptr<TenantHibernation> hibernated;
  /// Borrowed observability sinks (src/obs/). Persisted here — not in the
  /// session — so hibernation keeps them and RehydrateTenant re-attaches
  /// them to the rebuilt session.
  SessionObs obs;

  bool resident() const { return session != nullptr; }
};

/// \brief Deterministic per-tenant seed stream: a pure function of the
/// fleet seed and the tenant index, so materialization order and thread
/// count never influence any tenant's randomness.
uint64_t DeriveTenantSeed(uint64_t fleet_seed, size_t tenant_index);

/// \brief Builds the tenant's strategies, score model and (un-bootstrapped)
/// session from a validated spec. `seed` becomes the session seed;
/// Groundtruth tenants run with attack_ratio forced to 0 (the clean
/// reference, as in the experiment runners). LDP tenants run without an
/// AdversaryStrategy (their attack materializes poison itself) and with
/// board-reference trimming semantics.
Result<Tenant> MaterializeTenant(const TenantSpec& spec, uint64_t seed);

/// \brief Evicts a quiet tenant to its compact checkpoint: captures the
/// session state, then releases the session, score model and strategies.
/// Requires a resident, bootstrapped tenant. The tenant's spec and
/// effective config stay behind, so rehydration needs no external input.
Status HibernateTenant(Tenant* tenant);

/// \brief Rebuilds a hibernated tenant from its spec and restores the
/// parked checkpoint; the subsequent stream is bit-identical to never
/// having hibernated (the session checkpoint/restore contract). On error
/// the tenant is left untouched (still hibernated).
Status RehydrateTenant(Tenant* tenant);

}  // namespace itrim

#endif  // ITRIM_FLEET_TENANT_H_
