#include "fleet/tenant.h"

#include <utility>

#include "common/rng.h"
#include "ldp/report_score_model.h"

namespace itrim {

std::string TenantModelKindName(TenantModelKind kind) {
  switch (kind) {
    case TenantModelKind::kScalar:
      return "scalar";
    case TenantModelKind::kDistance:
      return "distance";
    case TenantModelKind::kLdp:
      return "ldp";
  }
  return "unknown";
}

Status TenantSpec::Validate() const {
  ITRIM_RETURN_NOT_OK(game.Validate());
  switch (model) {
    case TenantModelKind::kScalar:
      if (scalar_pool == nullptr || scalar_pool->empty()) {
        return Status::InvalidArgument(
            "scalar tenant needs a non-empty scalar_pool");
      }
      break;
    case TenantModelKind::kDistance:
      if (dataset == nullptr || dataset->rows.empty()) {
        return Status::InvalidArgument(
            "distance tenant needs a non-empty dataset");
      }
      break;
    case TenantModelKind::kLdp:
      if (ldp_population == nullptr || ldp_population->empty()) {
        return Status::InvalidArgument(
            "ldp tenant needs a non-empty ldp_population");
      }
      if (ldp_mechanism == nullptr) {
        return Status::InvalidArgument("ldp tenant needs an ldp_mechanism");
      }
      // Groundtruth tenants run with attack_ratio forced to 0 at
      // materialization, so they never draw a poison report.
      if (ldp_attack == nullptr && game.attack_ratio > 0.0 &&
          scheme != SchemeId::kGroundtruth) {
        return Status::InvalidArgument(
            "ldp tenant with attack_ratio > 0 needs an ldp_attack");
      }
      break;
  }
  return Status::OK();
}

uint64_t DeriveTenantSeed(uint64_t fleet_seed, size_t tenant_index) {
  // Weyl-offset SplitMix64: distinct, well-mixed streams per index, and a
  // pure function of (fleet_seed, index) so scheduling cannot perturb it.
  uint64_t index = static_cast<uint64_t>(tenant_index) + 1;
  SplitMix64 stream(fleet_seed ^ (0x9E3779B97F4A7C15ULL * index));
  return stream.Next();
}

Result<Tenant> MaterializeTenant(const TenantSpec& spec, uint64_t seed) {
  ITRIM_RETURN_NOT_OK(spec.Validate());
  Tenant tenant;
  tenant.spec = spec;
  tenant.config = spec.game;
  tenant.config.seed = seed;
  if (spec.scheme == SchemeId::kGroundtruth) {
    // Clean reference tenant, as in the experiment runners.
    tenant.config.attack_ratio = 0.0;
  }
  tenant.scheme =
      MakeScheme(spec.scheme, tenant.config.tth, spec.scheme_options);

  AdversaryStrategy* adversary = tenant.scheme.adversary.get();
  switch (spec.model) {
    case TenantModelKind::kScalar:
      tenant.model = std::make_unique<IdentityScoreModel>(spec.scalar_pool);
      break;
    case TenantModelKind::kDistance:
      tenant.model = std::make_unique<DistanceScoreModel>(spec.dataset);
      break;
    case TenantModelKind::kLdp:
      tenant.model = std::make_unique<LdpReportScoreModel>(
          spec.ldp_population, spec.ldp_mechanism, spec.ldp_attack,
          tenant.config.tth);
      // Poison is materialized by the attack; the session runs without an
      // AdversaryStrategy, exactly like the LdpCollectionGame path (an
      // adversary would consume RNG draws the LDP stream never did).
      adversary = nullptr;
      // The symmetric band trim is defined against the board reference.
      tenant.config.round_mass_trimming = false;
      break;
  }
  tenant.model->set_retain_survivors(spec.retain_survivors);
  tenant.session = std::make_unique<TrimmingSession>(
      tenant.config, tenant.model.get(), tenant.scheme.collector.get(),
      adversary, tenant.scheme.quality.get());
  return tenant;
}

Status HibernateTenant(Tenant* tenant) {
  if (!tenant->resident()) {
    return Status::FailedPrecondition("tenant is already hibernated");
  }
  if (!tenant->session->bootstrapped()) {
    return Status::FailedPrecondition(
        "cannot hibernate an un-bootstrapped tenant");
  }
  auto parked = std::make_unique<TenantHibernation>();
  parked->checkpoint = tenant->session->Checkpoint();
  parked->termination_round = tenant->scheme.collector->termination_round();
  // Release the live objects only after the checkpoint is safely captured;
  // the session borrows the model and strategies, so it goes first.
  tenant->session.reset();
  tenant->model.reset();
  tenant->scheme = SchemeInstance{};
  tenant->hibernated = std::move(parked);
  return Status::OK();
}

Status RehydrateTenant(Tenant* tenant) {
  if (tenant->resident()) {
    return Status::FailedPrecondition("tenant is already resident");
  }
  if (tenant->hibernated == nullptr) {
    return Status::FailedPrecondition(
        "tenant was never materialized/hibernated");
  }
  // Build the fresh tenant on the side so a failed restore leaves this one
  // parked and intact. The effective config's seed is the derived seed the
  // tenant originally ran with, so the rebuilt bootstrap replays the exact
  // round-0 draws the checkpoint's stream continued from.
  ITRIM_ASSIGN_OR_RETURN(Tenant fresh,
                         MaterializeTenant(tenant->spec, tenant->config.seed));
  ITRIM_RETURN_NOT_OK(fresh.session->Restore(tenant->hibernated->checkpoint));
  *tenant = std::move(fresh);  // drops `hibernated` (fresh's is null)
  return Status::OK();
}

}  // namespace itrim
