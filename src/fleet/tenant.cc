#include "fleet/tenant.h"

#include <utility>

#include "common/rng.h"

namespace itrim {

std::string TenantModelKindName(TenantModelKind kind) {
  return ModelKindName(kind);
}

ScoreModelInputs TenantSpec::ModelInputs() const {
  ScoreModelInputs inputs;
  inputs.scalar_pool = scalar_pool;
  inputs.dataset = dataset;
  inputs.ldp_population = ldp_population;
  inputs.ldp_mechanism = ldp_mechanism;
  inputs.ldp_attack = ldp_attack;
  inputs.ldp_tth = game.tth;
  inputs.regression = regression;
  inputs.regression_poison = regression_poison;
  return inputs;
}

Status TenantSpec::Validate() const {
  ITRIM_RETURN_NOT_OK(game.Validate());
  ITRIM_RETURN_NOT_OK(ValidateScoreModelInputs(model, ModelInputs()));
  // Groundtruth tenants run with attack_ratio forced to 0 at
  // materialization, so they never draw a poison report; only the tenant
  // knows that, so the attack requirement stays here rather than in the
  // factory's per-kind check.
  if (model == TenantModelKind::kLdp && ldp_attack == nullptr &&
      game.attack_ratio > 0.0 && scheme != SchemeId::kGroundtruth) {
    return Status::InvalidArgument(
        "ldp tenant with attack_ratio > 0 needs an ldp_attack");
  }
  if (reference == TenantReferenceKind::kFittedModel) {
    if (model != TenantModelKind::kResidual) {
      return Status::InvalidArgument(
          "fitted-model reference requires the residual model kind");
    }
    if (fitted_reference.max_refits < 1) {
      return Status::InvalidArgument(
          "fitted-model reference needs max_refits >= 1");
    }
    if (!(fitted_reference.tol >= 0.0)) {
      return Status::InvalidArgument(
          "fitted-model reference needs tol >= 0");
    }
  }
  return Status::OK();
}

uint64_t DeriveTenantSeed(uint64_t fleet_seed, size_t tenant_index) {
  // Weyl-offset SplitMix64: distinct, well-mixed streams per index, and a
  // pure function of (fleet_seed, index) so scheduling cannot perturb it.
  uint64_t index = static_cast<uint64_t>(tenant_index) + 1;
  SplitMix64 stream(fleet_seed ^ (0x9E3779B97F4A7C15ULL * index));
  return stream.Next();
}

Result<Tenant> MaterializeTenant(const TenantSpec& spec, uint64_t seed) {
  ITRIM_RETURN_NOT_OK(spec.Validate());
  Tenant tenant;
  tenant.spec = spec;
  tenant.config = spec.game;
  tenant.config.seed = seed;
  if (spec.scheme == SchemeId::kGroundtruth) {
    // Clean reference tenant, as in the experiment runners.
    tenant.config.attack_ratio = 0.0;
  }
  tenant.scheme =
      MakeScheme(spec.scheme, tenant.config.tth, spec.scheme_options);

  AdversaryStrategy* adversary = tenant.scheme.adversary.get();
  ScoreModelInputs inputs = spec.ModelInputs();
  inputs.ldp_tth = tenant.config.tth;
  if (spec.model == TenantModelKind::kLdp) {
    // Poison is materialized by the attack; the session runs without an
    // AdversaryStrategy, exactly like the LdpCollectionGame path (an
    // adversary would consume RNG draws the LDP stream never did).
    adversary = nullptr;
    // The symmetric band trim is defined against the board reference.
    tenant.config.round_mass_trimming = false;
  }
  ITRIM_ASSIGN_OR_RETURN(tenant.model, MakeScoreModel(spec.model, inputs));
  tenant.model->set_retain_survivors(spec.retain_survivors);
  if (spec.reference == TenantReferenceKind::kFittedModel) {
    tenant.reference =
        std::make_unique<FittedModelReference>(spec.fitted_reference);
  }
  tenant.session = std::make_unique<TrimmingSession>(
      tenant.config, tenant.model.get(), tenant.scheme.collector.get(),
      adversary, tenant.scheme.quality.get(), tenant.reference.get());
  return tenant;
}

Status HibernateTenant(Tenant* tenant) {
  if (!tenant->resident()) {
    return Status::FailedPrecondition("tenant is already hibernated");
  }
  if (!tenant->session->bootstrapped()) {
    return Status::FailedPrecondition(
        "cannot hibernate an un-bootstrapped tenant");
  }
  auto parked = std::make_unique<TenantHibernation>();
  parked->checkpoint = tenant->session->Checkpoint();
  parked->termination_round = tenant->scheme.collector->termination_round();
  // Release the live objects only after the checkpoint is safely captured;
  // the session borrows the model, reference and strategies, so it goes
  // first.
  tenant->session.reset();
  tenant->model.reset();
  tenant->reference.reset();
  tenant->scheme = SchemeInstance{};
  tenant->hibernated = std::move(parked);
  return Status::OK();
}

Status RehydrateTenant(Tenant* tenant) {
  if (tenant->resident()) {
    return Status::FailedPrecondition("tenant is already resident");
  }
  if (tenant->hibernated == nullptr) {
    return Status::FailedPrecondition(
        "tenant was never materialized/hibernated");
  }
  // Build the fresh tenant on the side so a failed restore leaves this one
  // parked and intact. The effective config's seed is the derived seed the
  // tenant originally ran with, so the rebuilt bootstrap replays the exact
  // round-0 draws the checkpoint's stream continued from.
  ITRIM_ASSIGN_OR_RETURN(Tenant fresh,
                         MaterializeTenant(tenant->spec, tenant->config.seed));
  ITRIM_RETURN_NOT_OK(fresh.session->Restore(tenant->hibernated->checkpoint));
  // Carry the observability sinks across the rebuild (the fresh session
  // starts with none attached).
  fresh.obs = tenant->obs;
  fresh.session->set_observability(fresh.obs);
  *tenant = std::move(fresh);  // drops `hibernated` (fresh's is null)
  return Status::OK();
}

}  // namespace itrim
