#include "fleet/session_fleet.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "stats/quantile.h"

namespace itrim {

Status FleetConfig::Validate() const {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (threads < 0) return Status::InvalidArgument("threads must be >= 0");
  if (shard_size < 0) {
    return Status::InvalidArgument("shard_size must be >= 0");
  }
  return Status::OK();
}

namespace {

// Re-wraps a tenant-level error with the tenant's identity, preserving the
// status code.
Status TenantStatus(size_t index, const std::string& name,
                    const Status& status) {
  std::string msg = "tenant #" + std::to_string(index);
  if (!name.empty()) msg += " (" + name + ")";
  msg += ": " + status.message();
  return Status::WithCode(status.code(), std::move(msg));
}

// In-place p10/p50/p90: sorts `values` and interpolates exactly like
// Quantiles(values, {0.10, 0.50, 0.90}) (same sort, same QuantileSorted
// arithmetic — bit-identical), but without the copy and the result-vector
// allocation, so the per-round reduction can run entirely in fleet scratch.
FleetQuantiles QuantileTriple(std::vector<double>* values) {
  FleetQuantiles q;
  if (values->empty()) return q;
  std::sort(values->begin(), values->end());
  q.p10 = QuantileSorted(*values, 0.10);
  q.p50 = QuantileSorted(*values, 0.50);
  q.p90 = QuantileSorted(*values, 0.90);
  return q;
}

double SafeRatio(size_t num, size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

SessionFleet::SessionFleet(FleetConfig config, std::vector<TenantSpec> tenants)
    : config_(config), specs_(std::move(tenants)) {}

Status SessionFleet::Materialize() {
  // A failed (re-)build must leave the fleet un-steppable, mirroring the
  // session contract.
  bootstrapped_ = false;
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (specs_.empty()) {
    return Status::InvalidArgument("fleet needs at least one tenant");
  }
  // Materialization is cheap and allocation-heavy; run it serially so the
  // first invalid spec is reported deterministically.
  tenants_.clear();
  tenants_.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    uint64_t seed = config_.derive_tenant_seeds
                        ? DeriveTenantSeed(config_.seed, i)
                        : specs_[i].game.seed;
    Result<Tenant> tenant = MaterializeTenant(specs_[i], seed);
    if (!tenant.ok()) {
      return TenantStatus(i, specs_[i].name, tenant.status());
    }
    tenants_.push_back(std::move(tenant).ValueOrDie());
  }
  return Status::OK();
}

Status SessionFleet::Bootstrap() {
  ITRIM_RETURN_NOT_OK(Materialize());

  // Bootstraps are where the real work is (clean calibration samples,
  // PositionMap geometry): shard them across the pool. Statuses land in
  // per-tenant slots; the first failure in tenant order wins.
  const size_t n = tenants_.size();
  std::vector<Status> statuses(n);
  ParallelForShards(
      n, static_cast<size_t>(config_.shard_size),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          statuses[i] = tenants_[i].session->Bootstrap();
        }
      },
      config_.threads);
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      return TenantStatus(i, specs_[i].name, statuses[i]);
    }
  }

  round_aggregates_.clear();
  // Pre-size the lockstep book and the per-round scratch so steady-state
  // StepRounds within the configured horizon never grow them.
  round_aggregates_.reserve(static_cast<size_t>(config_.rounds));
  step_records_.resize(tenants_.size());
  step_statuses_.resize(tenants_.size());
  reduce_trim_rates_.reserve(tenants_.size());
  reduce_acceptances_.reserve(tenants_.size());
  reduce_qualities_.reserve(tenants_.size());
  next_round_ = 1;
  per_tenant_mode_ = false;
  bootstrapped_ = true;
  return Status::OK();
}

Status SessionFleet::BeginPerTenantStepping() {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("fleet is not bootstrapped");
  }
  per_tenant_mode_ = true;
  return Status::OK();
}

Result<RoundRecord> SessionFleet::StepTenant(size_t i) {
  if (!per_tenant_mode_) {
    return Status::FailedPrecondition(
        "per-tenant stepping requires BeginPerTenantStepping()");
  }
  if (i >= tenants_.size()) {
    return Status::OutOfRange("tenant index " + std::to_string(i) +
                              " out of range");
  }
  if (!tenants_[i].resident()) {
    return Status::FailedPrecondition(
        "tenant #" + std::to_string(i) + " is hibernated; rehydrate first");
  }
  Result<RoundRecord> record = tenants_[i].session->Step();
  if (!record.ok()) {
    return TenantStatus(i, specs_[i].name, record.status());
  }
  return record;
}

Status SessionFleet::HibernateTenant(size_t i) {
  if (!per_tenant_mode_) {
    return Status::FailedPrecondition(
        "hibernation requires BeginPerTenantStepping()");
  }
  if (i >= tenants_.size()) {
    return Status::OutOfRange("tenant index " + std::to_string(i) +
                              " out of range");
  }
  Status status = itrim::HibernateTenant(&tenants_[i]);
  if (!status.ok()) return TenantStatus(i, specs_[i].name, status);
  return Status::OK();
}

Status SessionFleet::RehydrateTenant(size_t i) {
  if (!per_tenant_mode_) {
    return Status::FailedPrecondition(
        "rehydration requires BeginPerTenantStepping()");
  }
  if (i >= tenants_.size()) {
    return Status::OutOfRange("tenant index " + std::to_string(i) +
                              " out of range");
  }
  Status status = itrim::RehydrateTenant(&tenants_[i]);
  if (!status.ok()) return TenantStatus(i, specs_[i].name, status);
  return Status::OK();
}

bool SessionFleet::TenantResident(size_t i) const {
  return i < tenants_.size() && tenants_[i].resident();
}

size_t SessionFleet::ResidentTenants() const {
  size_t n = 0;
  for (const Tenant& tenant : tenants_) {
    if (tenant.resident()) ++n;
  }
  return n;
}

Result<std::vector<RoundRecord>> SessionFleet::TenantRounds(size_t i) const {
  if (i >= tenants_.size()) {
    return Status::OutOfRange("tenant index " + std::to_string(i) +
                              " out of range");
  }
  if (tenants_[i].resident()) {
    return tenants_[i].session->round_log().ToVector();
  }
  if (tenants_[i].hibernated != nullptr) {
    return tenants_[i].hibernated->checkpoint.records;
  }
  return Status::FailedPrecondition("tenant #" + std::to_string(i) +
                                    " was never materialized");
}

Result<FleetRoundAggregate> SessionFleet::StepRound() {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("fleet is not bootstrapped");
  }
  if (per_tenant_mode_) {
    return Status::FailedPrecondition(
        "fleet is in per-tenant stepping mode; lockstep rounds are "
        "unavailable (re-Bootstrap() to return to lockstep)");
  }
  const int64_t obs_t0 =
      (obs::kEnabled && obs_slot_ != nullptr) ? obs::MonotonicNowNs() : 0;
  const size_t n = tenants_.size();
  step_records_.resize(n);
  step_statuses_.resize(n);
  auto step_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Result<RoundRecord> record = tenants_[i].session->Step();
      if (record.ok()) {
        step_records_[i] = std::move(record).ValueOrDie();
        step_statuses_[i] = Status::OK();
      } else {
        step_statuses_[i] = record.status();
      }
    }
  };
  // Serial fast path: stepping inline skips the type-erased ParallelFor
  // plumbing (std::function wrappers and futures), which is what keeps a
  // single-threaded steady-state StepRound off the heap entirely.
  const int jobs =
      config_.threads > 0 ? config_.threads : DefaultNumThreads();
  if (jobs <= 1 || n == 1) {
    step_range(0, n);
  } else {
    ParallelForShards(n, static_cast<size_t>(config_.shard_size), step_range,
                      config_.threads);
  }
  for (size_t i = 0; i < n; ++i) {
    if (!step_statuses_[i].ok()) {
      // A partial round breaks the lockstep invariant (some sessions have
      // advanced, this one has not); the fleet must not be steppable
      // again, or later aggregates would mix records of different rounds.
      bootstrapped_ = false;
      return TenantStatus(i, specs_[i].name, step_statuses_[i]);
    }
  }

  FleetRoundAggregate aggregate = ReduceRound(next_round_, step_records_);
  round_aggregates_.push_back(aggregate);
  ++next_round_;
  if constexpr (obs::kEnabled) {
    if (obs_slot_ != nullptr) {
      obs::MetricSlot& m = *obs_slot_;
      m.Observe(obs::Histogram::kFleetRoundWallUs,
                static_cast<double>(obs::MonotonicNowNs() - obs_t0) / 1000.0);
      m.Set(obs::Gauge::kFleetRound, static_cast<double>(aggregate.round));
      m.Set(obs::Gauge::kFleetTrimRateP10, aggregate.tenant_trim_rate.p10);
      m.Set(obs::Gauge::kFleetTrimRateP50, aggregate.tenant_trim_rate.p50);
      m.Set(obs::Gauge::kFleetTrimRateP90, aggregate.tenant_trim_rate.p90);
      m.Set(obs::Gauge::kFleetPoisonAcceptP10,
            aggregate.tenant_poison_acceptance.p10);
      m.Set(obs::Gauge::kFleetPoisonAcceptP50,
            aggregate.tenant_poison_acceptance.p50);
      m.Set(obs::Gauge::kFleetPoisonAcceptP90,
            aggregate.tenant_poison_acceptance.p90);
      m.Set(obs::Gauge::kFleetQualityP10, aggregate.tenant_quality.p10);
      m.Set(obs::Gauge::kFleetQualityP50, aggregate.tenant_quality.p50);
      m.Set(obs::Gauge::kFleetQualityP90, aggregate.tenant_quality.p90);
    }
  }
  return aggregate;
}

Status SessionFleet::AttachTenantObservability(size_t i,
                                               const SessionObs& sinks) {
  if (!bootstrapped_ && !per_tenant_mode_) {
    return Status::FailedPrecondition("fleet is not bootstrapped");
  }
  if (i >= tenants_.size()) {
    return Status::InvalidArgument("tenant index out of range");
  }
  tenants_[i].obs = sinks;
  if (tenants_[i].resident()) {
    tenants_[i].session->set_observability(sinks);
  }
  return Status::OK();
}

Result<FleetSummary> SessionFleet::RunToCompletion() {
  ITRIM_RETURN_NOT_OK(Bootstrap());
  for (int round = 1; round <= config_.rounds; ++round) {
    ITRIM_RETURN_NOT_OK(StepRound().status());
  }
  return Finish();
}

FleetSummary SessionFleet::Finish() const {
  FleetSummary summary;
  summary.rounds = round_aggregates_;
  summary.tenants.reserve(tenants_.size());
  std::vector<double> untrimmed, benign_loss, survival;
  untrimmed.reserve(tenants_.size());
  benign_loss.reserve(tenants_.size());
  survival.reserve(tenants_.size());
  for (const Tenant& tenant : tenants_) {
    GameSummary game;
    if (tenant.resident()) {
      game = tenant.session->Finish();
    } else if (tenant.hibernated != nullptr) {
      // Summarize from the parked checkpoint without waking the tenant.
      game.rounds = tenant.hibernated->checkpoint.records;
      game.termination_round = tenant.hibernated->termination_round;
    }
    untrimmed.push_back(game.UntrimmedPoisonFraction());
    benign_loss.push_back(game.BenignLossFraction());
    survival.push_back(game.PoisonSurvivalRate());
    summary.total_received += game.TotalReceived();
    summary.total_kept += game.TotalKept();
    summary.total_poison_kept += game.TotalPoisonKept();
    summary.tenants.push_back(std::move(game));
  }
  summary.untrimmed_poison_fraction = QuantileTriple(&untrimmed);
  summary.benign_loss_fraction = QuantileTriple(&benign_loss);
  summary.poison_survival_rate = QuantileTriple(&survival);
  return summary;
}

FleetCheckpoint SessionFleet::Checkpoint() const {
  assert(bootstrapped_ && "Checkpoint() before Bootstrap()");
  assert(!per_tenant_mode_ &&
         "fleet checkpoints are lockstep-only (sessions at one round)");
  FleetCheckpoint checkpoint;
  checkpoint.next_round = next_round_;
  checkpoint.sessions.reserve(tenants_.size());
  for (const Tenant& tenant : tenants_) {
    checkpoint.sessions.push_back(tenant.session->Checkpoint());
  }
  return checkpoint;
}

Status SessionFleet::Restore(const FleetCheckpoint& checkpoint) {
  // All-or-nothing: the validation phase below inspects the whole
  // checkpoint against the fleet's config and specs and touches *no*
  // mutable state — a truncated or corrupt checkpoint is rejected while
  // the fleet's current stream (if any) remains live and steppable. Only
  // a checkpoint that passes every check reaches the mutation phase.
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (specs_.empty()) {
    return Status::InvalidArgument("fleet needs at least one tenant");
  }
  for (size_t i = 0; i < specs_.size(); ++i) {
    Status status = specs_[i].Validate();
    if (!status.ok()) return TenantStatus(i, specs_[i].name, status);
  }
  if (checkpoint.sessions.size() != specs_.size()) {
    return Status::InvalidArgument(
        "checkpoint holds " + std::to_string(checkpoint.sessions.size()) +
        " sessions for a fleet of " + std::to_string(specs_.size()));
  }
  // Lockstep stepping means every session must carry exactly the rounds
  // the fleet played; a checkpoint violating that (hand-edited, corrupted,
  // or from a non-lockstep source) would index past round_log() below.
  if (checkpoint.next_round < 1) {
    return Status::InvalidArgument("checkpoint next_round must be >= 1");
  }
  const size_t rounds_played = static_cast<size_t>(checkpoint.next_round - 1);
  for (size_t i = 0; i < checkpoint.sessions.size(); ++i) {
    const SessionCheckpoint& session = checkpoint.sessions[i];
    if (session.records.size() != rounds_played ||
        session.next_round != checkpoint.next_round) {
      return Status::InvalidArgument(
          "checkpoint session #" + std::to_string(i) + " holds " +
          std::to_string(session.records.size()) +
          " round records at round " + std::to_string(session.next_round) +
          " for a fleet at round " + std::to_string(checkpoint.next_round));
    }
    for (size_t r = 0; r < session.records.size(); ++r) {
      if (session.records[r].round != static_cast<int>(r) + 1) {
        return Status::InvalidArgument(
            "checkpoint session #" + std::to_string(i) + " record " +
            std::to_string(r) + " carries round index " +
            std::to_string(session.records[r].round) +
            " (expected " + std::to_string(r + 1) + ")");
      }
    }
    // Board snapshot compatibility with this tenant's configured board —
    // the same check PublicBoard::Restore enforces, hoisted here so it
    // rejects before any session has been rebuilt.
    const size_t capacity = specs_[i].game.board_capacity;
    if (capacity != 0 && session.board.values.size() > capacity) {
      return Status::InvalidArgument(
          "checkpoint session #" + std::to_string(i) + " board snapshot "
          "holds " + std::to_string(session.board.values.size()) +
          " values for a board of capacity " + std::to_string(capacity));
    }
    if (session.board.total_recorded < session.board.values.size()) {
      return Status::InvalidArgument(
          "checkpoint session #" + std::to_string(i) + " board snapshot "
          "total_recorded " + std::to_string(session.board.total_recorded) +
          " is below its held value count " +
          std::to_string(session.board.values.size()));
    }
  }

  // Mutation phase: rebuild tenants from the specs (fresh
  // strategies/models), then drop each session onto its checkpointed
  // stream state — session Restore runs its own bootstrap internally, so
  // the fleet-level bootstrap pass is skipped here (running it too would
  // do every clean calibration twice). Session restores replay the
  // recorded observations, so strategy state is reconstructed exactly; the
  // fleet's aggregates are then recomputed from the replayed records
  // (tenant order), keeping FleetCheckpoint minimal.
  ITRIM_RETURN_NOT_OK(Materialize());
  const size_t n = tenants_.size();
  std::vector<Status> statuses(n);
  ParallelForShards(
      n, static_cast<size_t>(config_.shard_size),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          statuses[i] = tenants_[i].session->Restore(checkpoint.sessions[i]);
        }
      },
      config_.threads);
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      return TenantStatus(i, specs_[i].name, statuses[i]);
    }
  }
  next_round_ = checkpoint.next_round;
  RebuildAggregates();
  bootstrapped_ = true;
  return Status::OK();
}

FleetRoundAggregate SessionFleet::ReduceRound(
    int round, const std::vector<RoundRecord>& records) {
  FleetRoundAggregate aggregate;
  aggregate.round = round;
  aggregate.tenants = records.size();
  reduce_trim_rates_.clear();
  reduce_acceptances_.clear();
  reduce_qualities_.clear();
  for (const RoundRecord& record : records) {
    aggregate.benign_received += record.benign_received;
    aggregate.poison_received += record.poison_received;
    aggregate.benign_kept += record.benign_kept;
    aggregate.poison_kept += record.poison_kept;
    size_t received = record.benign_received + record.poison_received;
    size_t kept = record.benign_kept + record.poison_kept;
    reduce_trim_rates_.push_back(SafeRatio(received - kept, received));
    reduce_acceptances_.push_back(SafeRatio(record.poison_kept,
                                            record.poison_received));
    reduce_qualities_.push_back(record.quality);
  }
  size_t received = aggregate.benign_received + aggregate.poison_received;
  size_t kept = aggregate.benign_kept + aggregate.poison_kept;
  aggregate.trim_rate = SafeRatio(received - kept, received);
  aggregate.poison_acceptance =
      SafeRatio(aggregate.poison_kept, aggregate.poison_received);
  aggregate.tenant_trim_rate = QuantileTriple(&reduce_trim_rates_);
  aggregate.tenant_poison_acceptance = QuantileTriple(&reduce_acceptances_);
  aggregate.tenant_quality = QuantileTriple(&reduce_qualities_);
  return aggregate;
}

void SessionFleet::RebuildAggregates() {
  round_aggregates_.clear();
  const size_t rounds_played = static_cast<size_t>(next_round_ - 1);
  round_aggregates_.reserve(rounds_played);
  std::vector<RoundRecord> row(tenants_.size());
  for (size_t r = 0; r < rounds_played; ++r) {
    for (size_t i = 0; i < tenants_.size(); ++i) {
      row[i] = tenants_[i].session->round_log().Get(r);
    }
    round_aggregates_.push_back(ReduceRound(static_cast<int>(r) + 1, row));
  }
}

}  // namespace itrim
