// SessionFleet: many concurrent trimming games, stepped in lockstep.
//
// The paper defines the interactive trimming game per collector; the
// production shape is thousands of such games running at once — one per
// tenant data stream, each with its own data setting, strategy pair,
// attack intensity and RNG stream. SessionFleet owns N independent
// TrimmingSessions and advances them in batched rounds: every StepRound()
// plays round i of *all* tenants, sharded across the thread pool, then
// reduces the per-tenant RoundRecords — in tenant order — into one
// FleetRoundAggregate (arrival/keep totals, trim rate, poison acceptance,
// and cross-tenant quantiles of the per-tenant rates).
//
// Determinism contract (the PR 1 ordered-reduction discipline): every
// tenant derives its seed purely from (fleet seed, tenant index), sessions
// never share mutable state, per-tenant results land in pre-sized slots,
// and every reduction runs in tenant order on the calling thread. A
// K-thread fleet run is therefore bit-identical to the 1-thread run.
//
// Fleets are checkpointable: Checkpoint() captures every session's
// SessionCheckpoint (plus the lockstep round counter) and Restore() resumes
// an identically configured fleet bit-identically, rebuilding the per-round
// aggregates from the sessions' replayed records.
#ifndef ITRIM_FLEET_SESSION_FLEET_H_
#define ITRIM_FLEET_SESSION_FLEET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "fleet/tenant.h"
#include "game/session.h"

namespace itrim {

/// \brief Fleet-level engine configuration.
struct FleetConfig {
  int rounds = 20;   ///< lockstep rounds played by RunToCompletion()
  int threads = 0;   ///< fan-out width; 0 = ITRIM_THREADS / hardware
  int shard_size = 0;  ///< tenants per scheduling shard; 0 = auto
  uint64_t seed = 2024;  ///< root of the per-tenant seed derivation
  /// When true (default), tenant i's session seed is
  /// DeriveTenantSeed(seed, i); when false, each TenantSpec's own
  /// game.seed is used verbatim (e.g. to replay one tenant in isolation).
  bool derive_tenant_seeds = true;

  Status Validate() const;
};

/// \brief p10/p50/p90 of a per-tenant statistic, reduced across the fleet.
struct FleetQuantiles {
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

/// \brief One lockstep round, reduced over all tenants.
struct FleetRoundAggregate {
  int round = 0;
  size_t tenants = 0;
  size_t benign_received = 0;
  size_t poison_received = 0;
  size_t benign_kept = 0;
  size_t poison_kept = 0;
  /// Fleet-wide removed / received for this round.
  double trim_rate = 0.0;
  /// Fleet-wide poison kept / poison received; 0 when no poison arrived.
  double poison_acceptance = 0.0;
  /// Cross-tenant spread of the per-tenant round statistics.
  FleetQuantiles tenant_trim_rate;
  FleetQuantiles tenant_poison_acceptance;
  FleetQuantiles tenant_quality;
};

/// \brief Outcome of a fleet run: per-tenant books plus cross-tenant
/// aggregates.
struct FleetSummary {
  std::vector<GameSummary> tenants;        ///< tenant order
  std::vector<FleetRoundAggregate> rounds;  ///< lockstep round order
  /// Cross-tenant quantiles of the whole-run per-tenant fractions. Benign
  /// loss is the collector's trimming-overhead payoff proxy; poison
  /// survival is the adversary's gain proxy (Section III payoffs).
  FleetQuantiles untrimmed_poison_fraction;
  FleetQuantiles benign_loss_fraction;
  FleetQuantiles poison_survival_rate;
  size_t total_received = 0;
  size_t total_kept = 0;
  size_t total_poison_kept = 0;
};

/// \brief Serializable mid-stream state of a SessionFleet.
struct FleetCheckpoint {
  int next_round = 1;
  std::vector<SessionCheckpoint> sessions;  ///< tenant order
};

/// \brief Sharded multi-tenant engine over TrimmingSessions.
///
/// Tenant specs are copied in; their borrowed data sources must outlive
/// the fleet. Typical use mirrors the single-session API:
///
///   SessionFleet fleet(config, specs);
///   ITRIM_RETURN_NOT_OK(fleet.Bootstrap());
///   for (int r = 1; r <= config.rounds; ++r) {
///     FleetRoundAggregate agg = fleet.StepRound().ValueOrDie();
///   }
///   FleetSummary summary = fleet.Finish();
class SessionFleet {
 public:
  SessionFleet(FleetConfig config, std::vector<TenantSpec> tenants);

  /// \brief Validates the fleet config and every tenant spec, materializes
  /// the tenants, and bootstraps all sessions in parallel. Tenant errors
  /// are surfaced with the tenant index (first failing tenant in tenant
  /// order, regardless of thread count).
  Status Bootstrap();

  /// \brief Plays the next lockstep round on every tenant and returns the
  /// reduced aggregate. Like sessions, fleets are open-ended streams:
  /// StepRound() may be called past config().rounds. A tenant failure
  /// mid-round leaves the fleet un-steppable (the surviving tenants have
  /// already advanced, so the lockstep invariant is gone); re-Bootstrap()
  /// or Restore() to continue.
  Result<FleetRoundAggregate> StepRound();

  /// \brief Bootstrap + config().rounds StepRounds + Finish.
  Result<FleetSummary> RunToCompletion();

  /// \brief Summary of everything played so far; the fleet remains
  /// steppable. Hibernated tenants are summarized from their parked
  /// checkpoints without rehydration.
  FleetSummary Finish() const;

  /// \brief Captures the lockstep round counter and every session's
  /// checkpoint. Requires a successful Bootstrap() and lockstep mode.
  FleetCheckpoint Checkpoint() const;

  /// \brief Resumes from a checkpoint of an identically configured fleet;
  /// subsequent StepRounds are bit-identical to the original stream.
  ///
  /// All-or-nothing: the whole checkpoint (session count, lockstep round
  /// alignment, per-session record/board-snapshot shape against this
  /// fleet's specs) is validated *before* any session is touched, so a
  /// truncated or corrupt checkpoint is rejected with the fleet's current
  /// state — including a live, steppable stream — fully intact.
  Status Restore(const FleetCheckpoint& checkpoint);

  // -- Arrival-driven (per-tenant) stepping --------------------------------
  //
  // The ingest front-end (src/ingest/) drives tenants individually as their
  // traffic arrives instead of in lockstep rounds. Per-tenant stepping is
  // an explicit mode switch: once entered, the lockstep surface (StepRound,
  // Checkpoint, Restore) is refused — sessions advance at different rates,
  // so lockstep aggregates and fleet checkpoints would silently mix rounds.
  // Re-Bootstrap() returns the fleet to lockstep mode.
  //
  // Thread-safety contract: after BeginPerTenantStepping(), calls for
  // *distinct* tenant indices may run concurrently (each touches only that
  // tenant's objects); calls for the same index must be externally ordered
  // — the ingest service guarantees this by hashing each tenant to exactly
  // one shard worker.

  /// \brief Switches a bootstrapped fleet from lockstep rounds to
  /// per-tenant stepping.
  Status BeginPerTenantStepping();

  /// \brief Plays one round of tenant `i` only (per-tenant mode). The
  /// tenant must be resident.
  Result<RoundRecord> StepTenant(size_t i);

  /// \brief Evicts tenant `i` to its compact checkpoint, releasing its
  /// session, model and strategies (per-tenant mode).
  Status HibernateTenant(size_t i);

  /// \brief Rebuilds hibernated tenant `i` and restores its parked state;
  /// its subsequent stream is bit-identical to never having hibernated.
  Status RehydrateTenant(size_t i);

  /// \brief True when tenant `i`'s session is live (false = hibernated).
  bool TenantResident(size_t i) const;

  /// \brief Number of live (non-hibernated) tenant sessions.
  size_t ResidentTenants() const;

  /// \brief Round records tenant `i` has played so far, resident or
  /// hibernated (hibernated tenants answer from the parked checkpoint).
  Result<std::vector<RoundRecord>> TenantRounds(size_t i) const;

  // -- Observability -------------------------------------------------------

  /// \brief Attaches a borrowed fleet-level metric slot (src/obs/):
  /// StepRound then records its wall time and publishes the cross-tenant
  /// quantile payoffs (trim rate, poison acceptance, quality) as gauges.
  /// Null detaches; with no slot attached StepRound takes no timestamps.
  /// Recording is write-only telemetry — aggregates and records are
  /// bit-identical with or without it.
  void AttachObservability(obs::MetricSlot* slot) { obs_slot_ = slot; }

  /// \brief Attaches per-tenant session sinks (survives hibernation: the
  /// sinks are persisted on the Tenant and re-attached on rehydration).
  /// Requires a bootstrapped fleet and a valid index. Default-constructed
  /// sinks detach.
  Status AttachTenantObservability(size_t i, const SessionObs& sinks);

  /// \brief True when the fleet is in per-tenant stepping mode.
  bool per_tenant_mode() const { return per_tenant_mode_; }

  const FleetConfig& config() const { return config_; }
  size_t num_tenants() const { return specs_.size(); }
  /// \brief 1-based index of the next lockstep round.
  int next_round() const { return next_round_; }
  bool bootstrapped() const { return bootstrapped_; }
  /// \brief Materialized tenant i (valid after a successful Bootstrap()).
  const Tenant& tenant(size_t i) const { return tenants_[i]; }

 private:
  /// Validates config + specs and rebuilds tenants_ (un-bootstrapped);
  /// marks the fleet un-steppable until the caller finishes its pass.
  Status Materialize();
  /// Reduces one lockstep round's records (tenant order) into an aggregate.
  /// Non-const: the cross-tenant quantile reduction runs in the reduce
  /// scratch below.
  FleetRoundAggregate ReduceRound(int round,
                                  const std::vector<RoundRecord>& records);
  /// Rebuilds round_aggregates_ from the sessions' replayed records.
  void RebuildAggregates();

  FleetConfig config_;
  std::vector<TenantSpec> specs_;
  std::vector<Tenant> tenants_;
  std::vector<FleetRoundAggregate> round_aggregates_;
  int next_round_ = 1;
  bool bootstrapped_ = false;
  // Set by BeginPerTenantStepping() (single-threaded, before any worker
  // runs) and cleared by Bootstrap(); read-only while workers step.
  bool per_tenant_mode_ = false;
  // Borrowed fleet-level metric slot; null = lockstep rounds untimed.
  obs::MetricSlot* obs_slot_ = nullptr;
  // StepRound scratch, sized to the tenant count once and reused every
  // round: per-tenant result/status slots plus the reduction's rate
  // vectors. With these (and the sessions' own scratch) a steady-state
  // StepRound performs zero heap allocations at threads == 1
  // (tests/game/zero_alloc_test.cc).
  std::vector<RoundRecord> step_records_;
  std::vector<Status> step_statuses_;
  std::vector<double> reduce_trim_rates_;
  std::vector<double> reduce_acceptances_;
  std::vector<double> reduce_qualities_;
};

}  // namespace itrim

#endif  // ITRIM_FLEET_SESSION_FLEET_H_
