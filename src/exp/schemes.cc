#include "exp/schemes.h"

#include "game/score_model.h"

namespace itrim {

std::string SchemeName(SchemeId id) {
  switch (id) {
    case SchemeId::kGroundtruth:
      return "Groundtruth";
    case SchemeId::kOstrich:
      return "Ostrich";
    case SchemeId::kBaseline09:
      return "Baseline0.9";
    case SchemeId::kBaselineStatic:
      return "Baselinestatic";
    case SchemeId::kTitfortat:
      return "Titfortat";
    case SchemeId::kElastic01:
      return "Elastic0.1";
    case SchemeId::kElastic05:
      return "Elastic0.5";
  }
  return "unknown";
}

SchemeInstance MakeScheme(SchemeId id, double tth,
                          const SchemeOptions& options) {
  SchemeInstance s;
  s.id = id;
  s.name = SchemeName(id);
  switch (id) {
    case SchemeId::kGroundtruth:
      // Clean reference: no trimming; pair with a dormant adversary (the
      // runner sets attack_ratio = 0 for this scheme).
      s.collector = std::make_unique<OstrichCollector>();
      s.adversary = std::make_unique<FixedPercentileAdversary>(0.99);
      break;
    case SchemeId::kOstrich:
      s.collector = std::make_unique<OstrichCollector>();
      s.adversary = std::make_unique<FixedPercentileAdversary>(0.99);
      break;
    case SchemeId::kBaseline09:
      s.collector = std::make_unique<StaticCollector>(0.9, "Baseline0.9");
      s.adversary = std::make_unique<UniformRangeAdversary>(0.9, 1.0);
      break;
    case SchemeId::kBaselineStatic:
      s.collector = std::make_unique<StaticCollector>(tth, "Baselinestatic");
      s.adversary = std::make_unique<ThresholdOffsetAdversary>(-0.01);
      break;
    case SchemeId::kTitfortat:
      s.collector = std::make_unique<TitfortatCollector>(
          +0.01, -0.03, options.titfortat_trigger_quality);
      // The Theorem-3-compliant adversary: under the trigger threat it
      // concedes the utility compromise delta and plays the soft position
      // Tth - 3% (the same concession the Elastic equilibrium converges
      // to), keeping the quality evaluation clear of the defect band.
      s.adversary = std::make_unique<FixedPercentileAdversary>(tth - 0.03);
      // Band edges are percentile *positions* (the distance game's score
      // domain), hence the absolute cutoff mode.
      s.quality = std::make_unique<DefectShareQuality>(
          options.band_lo, options.band_hi,
          DefectShareQuality::CutoffMode::kAbsolute);
      break;
    case SchemeId::kElastic01:
      s.collector = std::make_unique<ElasticCollector>(0.1);
      s.adversary = std::make_unique<ElasticAdversary>(0.1);
      break;
    case SchemeId::kElastic05:
      s.collector = std::make_unique<ElasticCollector>(0.5);
      s.adversary = std::make_unique<ElasticAdversary>(0.5);
      break;
  }
  return s;
}

Result<GameSummary> RunSchemeSession(const GameConfig& config,
                                     SchemeInstance* scheme,
                                     ScoreModel* model,
                                     ReferencePolicy* reference) {
  TrimmingSession session(config, model, scheme->collector.get(),
                          scheme->adversary.get(), scheme->quality.get(),
                          reference);
  return session.RunToCompletion();
}

Result<GameSummary> RunSchemeSession(const GameConfig& config,
                                     SchemeInstance* scheme, ModelKind kind,
                                     const ScoreModelInputs& inputs,
                                     std::unique_ptr<ScoreModel>* model_out,
                                     ReferencePolicy* reference) {
  ITRIM_ASSIGN_OR_RETURN(std::unique_ptr<ScoreModel> model,
                         MakeScoreModel(kind, inputs));
  ITRIM_ASSIGN_OR_RETURN(
      GameSummary summary,
      RunSchemeSession(config, scheme, model.get(), reference));
  if (model_out != nullptr) *model_out = std::move(model);
  return summary;
}

std::vector<SchemeId> PlottedSchemes() {
  return {SchemeId::kOstrich,    SchemeId::kBaseline09,
          SchemeId::kBaselineStatic, SchemeId::kTitfortat,
          SchemeId::kElastic01,  SchemeId::kElastic05};
}

std::vector<SchemeId> DefenseSchemes() { return PlottedSchemes(); }

std::vector<SchemeId> AllSchemes() {
  std::vector<SchemeId> all = {SchemeId::kGroundtruth};
  for (SchemeId id : PlottedSchemes()) all.push_back(id);
  return all;
}

}  // namespace itrim
