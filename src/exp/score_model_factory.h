// The one construction seam for score models.
//
// Every place that used to new up a concrete ScoreModel from ad-hoc
// arguments (fleet tenant materialization, the experiment pipelines, bench
// drivers) goes through MakeScoreModel: a ModelKind picks the data setting,
// ScoreModelInputs carries the borrowed data sources, and
// ValidateScoreModelInputs is the shared per-kind option check — so a new
// kind (like the residual regression setting, or future vector-valued
// settings) plugs in here once and every construction site can serve it.
#ifndef ITRIM_EXP_SCORE_MODEL_FACTORY_H_
#define ITRIM_EXP_SCORE_MODEL_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "game/score_model.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"
#include "ml/linreg.h"
#include "ml/residual_score_model.h"

namespace itrim {

/// \brief Data setting a score model serves.
enum class ModelKind {
  kScalar = 0,  ///< IdentityScoreModel over a shared value pool
  kDistance,    ///< DistanceScoreModel over a shared Dataset
  kLdp,         ///< LdpReportScoreModel over population + mechanism + attack
  kResidual,    ///< ResidualScoreModel over shared RegressionData
};

/// \brief Display name of a model kind
/// ("scalar" / "distance" / "ldp" / "residual").
std::string ModelKindName(ModelKind kind);

/// \brief Borrowed data sources for MakeScoreModel; only the fields of the
/// requested kind are read. All pointers must outlive the built model.
struct ScoreModelInputs {
  const std::vector<double>* scalar_pool = nullptr;  ///< kScalar
  const Dataset* dataset = nullptr;                  ///< kDistance
  const std::vector<double>* ldp_population = nullptr;  ///< kLdp
  const LdpMechanism* ldp_mechanism = nullptr;          ///< kLdp
  /// kLdp; may stay null for attack-free runs (the kind check does not
  /// require it — whether an attack is needed depends on the game's
  /// attack_ratio and scheme, which the caller owns).
  LdpAttack* ldp_attack = nullptr;
  double ldp_tth = 0.9;  ///< kLdp: nominal threshold of the band trim
  const RegressionData* regression = nullptr;  ///< kResidual
  PoisonShape regression_poison = PoisonShape::kFlipShift;  ///< kResidual
};

/// \brief Per-kind input check (the shared half of TenantSpec::Validate):
/// verifies the kind's required data sources are present and non-empty.
Status ValidateScoreModelInputs(ModelKind kind,
                                const ScoreModelInputs& inputs);

/// \brief Builds a score model of `kind` over `inputs` (validated first).
Result<std::unique_ptr<ScoreModel>> MakeScoreModel(
    ModelKind kind, const ScoreModelInputs& inputs);

// Convenience input builders for the common single-source call sites.
inline ScoreModelInputs ScalarInputs(const std::vector<double>* pool) {
  ScoreModelInputs inputs;
  inputs.scalar_pool = pool;
  return inputs;
}
inline ScoreModelInputs DistanceInputs(const Dataset* dataset) {
  ScoreModelInputs inputs;
  inputs.dataset = dataset;
  return inputs;
}
inline ScoreModelInputs RegressionInputs(
    const RegressionData* regression,
    PoisonShape poison = PoisonShape::kFlipShift) {
  ScoreModelInputs inputs;
  inputs.regression = regression;
  inputs.regression_poison = poison;
  return inputs;
}

}  // namespace itrim

#endif  // ITRIM_EXP_SCORE_MODEL_FACTORY_H_
