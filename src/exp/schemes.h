// The six evaluation schemes of Section VI-A: each pairs a collector
// strategy with the adversary the paper specifies for it.
//
//   Groundtruth     — no poison, no trimming (reference only).
//   Ostrich         — no defense; adversary injects at the 99th percentile.
//   Baseline 0.9    — static threshold 0.9; adversary uniform in [0.9, 1].
//   Baseline static — static threshold Tth; the ideal attack at Tth - 1%.
//   Titfortat       — soft trim Tth + 1% (hard Tth - 3% once triggered);
//                     the rational adversary plays the maximum position that
//                     still survives, i.e. the collector's threshold.
//   Elastic k       — the coupled Elastic updates with strength k
//                     (k = 0.1 and 0.5 in the paper).
#ifndef ITRIM_EXP_SCHEMES_H_
#define ITRIM_EXP_SCHEMES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exp/score_model_factory.h"
#include "game/quality.h"
#include "game/session.h"
#include "game/strategies.h"

namespace itrim {

class ReferencePolicy;

/// \brief Identifier of an evaluation scheme.
enum class SchemeId {
  kGroundtruth = 0,
  kOstrich,
  kBaseline09,
  kBaselineStatic,
  kTitfortat,
  kElastic01,
  kElastic05,
};

/// \brief Display name matching the paper's legends.
std::string SchemeName(SchemeId id);

/// \brief A ready-to-run (collector, adversary, quality) triple.
struct SchemeInstance {
  SchemeId id;
  std::string name;
  std::unique_ptr<CollectorStrategy> collector;
  std::unique_ptr<AdversaryStrategy> adversary;
  std::unique_ptr<QualityEvaluation> quality;  ///< may be null
};

/// \brief Options tweaking scheme construction.
struct SchemeOptions {
  /// Titfortat trigger threshold on the quality score; the Fig 4/5 setup
  /// assumes no early termination, so the default never triggers.
  double titfortat_trigger_quality = -1.0;
  /// Quality-evaluation band (defect band lower / upper percentile).
  double band_lo = 0.90;
  double band_hi = 0.99;
  uint64_t seed = 1234;
};

/// \brief Builds the scheme's strategy objects for nominal threshold `tth`.
SchemeInstance MakeScheme(SchemeId id, double tth,
                          const SchemeOptions& options = {});

/// \brief Plays `scheme` over `model` through a TrimmingSession — the
/// round-loop shape every experiment pipeline uses. The scheme's strategy
/// objects are Reset() by the session; `model` keeps the retained
/// (sanitized) output for the caller. `reference` optionally swaps the
/// trim reference policy (borrowed; null plays the percentile default).
Result<GameSummary> RunSchemeSession(const GameConfig& config,
                                     SchemeInstance* scheme,
                                     ScoreModel* model,
                                     ReferencePolicy* reference = nullptr);

/// \brief Factory-driven variant: builds the score model from
/// (kind, inputs) via MakeScoreModel, plays the scheme, and hands the
/// model back through `model_out` (when non-null) so the caller can read
/// its retained output.
Result<GameSummary> RunSchemeSession(
    const GameConfig& config, SchemeInstance* scheme, ModelKind kind,
    const ScoreModelInputs& inputs,
    std::unique_ptr<ScoreModel>* model_out = nullptr,
    ReferencePolicy* reference = nullptr);

/// \brief All six plotted schemes, in the paper's legend order.
std::vector<SchemeId> PlottedSchemes();

/// \brief Every scheme including Groundtruth (fleet tenant populations
/// cycle through these to mix strategy pairs).
std::vector<SchemeId> AllSchemes();

/// \brief The defense schemes only (no Groundtruth).
std::vector<SchemeId> DefenseSchemes();

}  // namespace itrim

#endif  // ITRIM_EXP_SCHEMES_H_
