#include "exp/score_model_factory.h"

#include "ldp/report_score_model.h"

namespace itrim {

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kScalar:
      return "scalar";
    case ModelKind::kDistance:
      return "distance";
    case ModelKind::kLdp:
      return "ldp";
    case ModelKind::kResidual:
      return "residual";
  }
  return "unknown";
}

Status ValidateScoreModelInputs(ModelKind kind,
                                const ScoreModelInputs& inputs) {
  switch (kind) {
    case ModelKind::kScalar:
      if (inputs.scalar_pool == nullptr || inputs.scalar_pool->empty()) {
        return Status::InvalidArgument(
            "scalar model needs a non-empty scalar_pool");
      }
      break;
    case ModelKind::kDistance:
      if (inputs.dataset == nullptr || inputs.dataset->rows.empty()) {
        return Status::InvalidArgument(
            "distance model needs a non-empty dataset");
      }
      break;
    case ModelKind::kLdp:
      if (inputs.ldp_population == nullptr ||
          inputs.ldp_population->empty()) {
        return Status::InvalidArgument(
            "ldp model needs a non-empty ldp_population");
      }
      if (inputs.ldp_mechanism == nullptr) {
        return Status::InvalidArgument("ldp model needs an ldp_mechanism");
      }
      if (!(inputs.ldp_tth > 0.0 && inputs.ldp_tth < 1.0)) {
        return Status::InvalidArgument("ldp model needs ldp_tth in (0,1)");
      }
      break;
    case ModelKind::kResidual:
      if (inputs.regression == nullptr || inputs.regression->size() == 0) {
        return Status::InvalidArgument(
            "residual model needs non-empty regression data");
      }
      if (inputs.regression->dims == 0) {
        return Status::InvalidArgument(
            "residual model needs regression data with dims >= 1");
      }
      if (inputs.regression->xs.size() !=
          inputs.regression->size() * inputs.regression->dims) {
        return Status::InvalidArgument(
            "residual model regression data shape mismatch (xs must hold "
            "size() * dims doubles)");
      }
      break;
  }
  return Status::OK();
}

Result<std::unique_ptr<ScoreModel>> MakeScoreModel(
    ModelKind kind, const ScoreModelInputs& inputs) {
  ITRIM_RETURN_NOT_OK(ValidateScoreModelInputs(kind, inputs));
  std::unique_ptr<ScoreModel> model;
  switch (kind) {
    case ModelKind::kScalar:
      model = std::make_unique<IdentityScoreModel>(inputs.scalar_pool);
      break;
    case ModelKind::kDistance:
      model = std::make_unique<DistanceScoreModel>(inputs.dataset);
      break;
    case ModelKind::kLdp:
      model = std::make_unique<LdpReportScoreModel>(
          inputs.ldp_population, inputs.ldp_mechanism, inputs.ldp_attack,
          inputs.ldp_tth);
      break;
    case ModelKind::kResidual:
      model = std::make_unique<ResidualScoreModel>(inputs.regression,
                                                   inputs.regression_poison);
      break;
  }
  return model;
}

}  // namespace itrim
