// Shared experiment runners behind the bench binaries (one per paper
// table/figure). Keeping them in a library lets tests, examples and benches
// exercise the exact same pipelines.
#ifndef ITRIM_EXP_EXPERIMENTS_H_
#define ITRIM_EXP_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "exp/schemes.h"
#include "game/collection_game.h"
#include "ml/kmeans.h"

namespace itrim {

// ---------------------------------------------------------------------------
// Fig 4 / Fig 5 — k-means under poisoning
// ---------------------------------------------------------------------------

/// \brief Configuration of the k-means defense experiment.
struct KmeansExperimentConfig {
  std::string dataset = "control";  ///< control | vehicle | letter
  double dataset_scale = 1.0;       ///< instance-count scale for fast runs
  double tth = 0.9;
  std::vector<double> attack_ratios;
  int repetitions = 5;
  int rounds = 20;
  size_t round_size = 150;
  size_t eval_size = 600;  ///< held-out clean evaluation sample
  uint64_t seed = 2024;
  /// Parallel jobs across (scheme, ratio, repetition) arms; 0 = the
  /// ITRIM_THREADS / hardware default, 1 = serial. Every arm derives its
  /// own Rng stream from `seed`, and per-arm results are reduced in arm
  /// order, so the output is bit-identical at any thread count.
  int threads = 0;
};

/// \brief One (attack_ratio -> metrics) sample of a scheme's series.
struct KmeansPoint {
  double attack_ratio = 0.0;
  double sse = 0.0;       ///< eval-set SSE against the learned centroids
  double distance = 0.0;  ///< centroid-set distance to the ground truth
};

/// \brief One scheme's series across attack ratios.
struct KmeansSeries {
  std::string scheme;
  std::vector<KmeansPoint> points;
};

/// \brief Full result: per-scheme series plus the clean reference.
struct KmeansExperimentResult {
  double groundtruth_sse = 0.0;
  std::vector<KmeansSeries> series;
};

/// \brief Runs the Fig 4/5 pipeline (k-means on sanitized data).
Result<KmeansExperimentResult> RunKmeansExperiment(
    const KmeansExperimentConfig& config);

// ---------------------------------------------------------------------------
// Fig 6a / Fig 7 — SVM accuracy under poisoning
// ---------------------------------------------------------------------------

/// \brief Configuration of the SVM defense experiment (CONTROL, Tth = 0.95,
/// attack ratio 0.4 in the paper).
struct SvmExperimentConfig {
  double dataset_scale = 1.0;
  double tth = 0.95;
  double attack_ratio = 0.4;
  int repetitions = 3;
  int rounds = 20;
  size_t round_size = 150;
  uint64_t seed = 77;
  int threads = 0;  ///< parallel jobs (0 = default, 1 = serial); see
                    ///< KmeansExperimentConfig::threads for semantics
};

/// \brief Accuracy of one scheme (plus per-class PPV of the last repetition).
struct SvmSchemeResult {
  std::string scheme;
  double accuracy = 0.0;
  std::vector<double> class_ppv;
};

struct SvmExperimentResult {
  double groundtruth_accuracy = 0.0;
  std::vector<double> groundtruth_ppv;
  std::vector<SvmSchemeResult> schemes;
};

Result<SvmExperimentResult> RunSvmExperiment(const SvmExperimentConfig& c);

// ---------------------------------------------------------------------------
// Fig 6b / Fig 8 — SOM structure preservation
// ---------------------------------------------------------------------------

struct SomExperimentConfig {
  size_t dataset_size = 4000;  ///< scaled-down CREDITCARD
  double tth = 0.95;
  double attack_ratio = 0.4;
  int rounds = 20;
  size_t round_size = 200;
  size_t grid = 20;  ///< SOM is grid x grid (paper: 20x20 = 400 neurons)
  int epochs = 6;
  int repetitions = 3;  ///< games/SOM fits averaged per scheme
  uint64_t seed = 55;
  int threads = 0;  ///< parallel jobs (0 = default, 1 = serial)
};

/// \brief Class-structure metrics for one scheme's sanitized data,
/// aggregated over repetitions.
struct SomSchemeResult {
  std::string scheme;
  double classes_represented = 0.0;  ///< mean, of the 4 CREDITCARD classes
  /// Fraction of repetitions in which rows of the class survived trimming.
  double green_class_survives = 0.0;  ///< the 5-point rare segment
  double fraud_point_survives = 0.0;
  double premium_point_survives = 0.0;
  double quantization_error = 0.0;
  double untrimmed_poison_fraction = 0.0;
};

struct SomExperimentResult {
  size_t groundtruth_classes = 0;
  double groundtruth_qe = 0.0;
  std::vector<SomSchemeResult> schemes;
};

Result<SomExperimentResult> RunSomExperiment(const SomExperimentConfig& c);

// ---------------------------------------------------------------------------
// Table III — non-equilibrium mixed strategies
// ---------------------------------------------------------------------------

struct NonEquilibriumConfig {
  double attack_ratio = 0.2;
  int rounds = 25;        ///< Table III reports termination up to round 25
  size_t round_size = 4000;
  double tth = 0.9;
  double redundancy = 0.05;
  double elastic_k = 0.5;
  int repetitions = 25;
  /// Estimation-noise calibration of the quality observable (see
  /// NoisyDefectShareQuality); chosen so equilibrium play terminates around
  /// round 13, as in the paper.
  double sigma0 = 0.005;
  double sigma_tail = 0.020;
  uint64_t seed = 31;
  int threads = 0;  ///< parallel jobs (0 = default, 1 = serial)
};

struct NonEquilibriumRow {
  double p = 0.0;
  double avg_termination_round = 0.0;
  double titfortat_untrimmed = 0.0;
  double elastic_untrimmed = 0.0;
};

Result<std::vector<NonEquilibriumRow>> RunNonEquilibriumExperiment(
    const NonEquilibriumConfig& config, const std::vector<double>& ps);

// ---------------------------------------------------------------------------
// Table IV — roundwise cost of the Elastic scheme
// ---------------------------------------------------------------------------

/// \brief The deterministic Elastic recurrences of Section VI-A:
/// T(i+1) = Tth + k (A(i) - Tth - 1%), A(i+1) = Tth - 3% + k (T(i) - Tth).
struct ElasticTrace {
  std::vector<double> collector;  ///< T(1..n) as offsets from Tth
  std::vector<double> adversary;  ///< A(1..n) as offsets from Tth
  double fixed_point_adversary = 0.0;  ///< A* - Tth
  double fixed_point_collector = 0.0;  ///< T* - Tth
};

/// \brief Iterates the recurrences for `rounds` rounds.
ElasticTrace TraceElasticDynamics(double k, int rounds);

/// \brief Roundwise cost after `rounds` rounds: the mean deviation of the
/// adversary's position from its equilibrium, (1/n) Σ |A(i) - A*|.
double ElasticRoundwiseCost(double k, int rounds);

// ---------------------------------------------------------------------------
// Fig 9 — LDP mean estimation vs EMF
// ---------------------------------------------------------------------------

struct LdpExperimentConfig {
  size_t population_size = 50000;  ///< scaled-down TAXI
  std::string mechanism = "piecewise";
  std::vector<double> epsilons;
  double attack_ratio = 0.1;
  int repetitions = 5;
  int rounds = 10;
  size_t users_per_round = 1000;
  double tth = 0.9;
  uint64_t seed = 404;
  int threads = 0;  ///< parallel jobs (0 = default, 1 = serial)
};

struct LdpSeries {
  std::string scheme;  ///< Titfortat | Elastic0.1 | Elastic0.5 | EMF
  std::vector<double> mse;  ///< parallel to config.epsilons
};

struct LdpExperimentResult {
  std::vector<double> epsilons;
  std::vector<LdpSeries> series;
};

Result<LdpExperimentResult> RunLdpExperiment(const LdpExperimentConfig& c);

}  // namespace itrim

#endif  // ITRIM_EXP_EXPERIMENTS_H_
